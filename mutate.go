package legodb

import (
	"fmt"
	"strings"

	"legodb/internal/xmltree"
	"legodb/internal/xquery"
)

// Executable mutations over a store: deletes with subtree cascade and
// child inserts. These complement the advisory update costing
// (Engine.AddUpdate): a workload can be both priced and run.

// DeleteWhere removes every element instance matched by a target query —
// a FLWR expression whose RETURN is a single whole-element path — along
// with its entire subtree. It returns the number of rows removed across
// all relations.
//
//	n, err := store.DeleteWhere(
//	    `FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
//	    legodb.Params{"c1": "Fugitive, The"})
func (s *Store) DeleteWhere(text string, params Params) (int, error) {
	q, err := xquery.Parse(text)
	if err != nil {
		return 0, err
	}
	targets, err := xquery.TranslateTargets(q, s.schema, s.catalog)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	deleted := 0
	for _, tgt := range targets {
		rs, err := s.db.ExecuteBlock(tgt.Block, params.forBlocks(s.catalog, tgt.Block))
		if err != nil {
			return deleted, err
		}
		for _, row := range rs.Rows {
			pos := s.shredder.FindRowByID(tgt.TypeName, row[0].Int)
			if pos < 0 {
				continue // already cascaded away by an earlier target
			}
			n, err := s.shredder.DeleteInstance(tgt.TypeName, pos)
			if err != nil {
				return deleted, err
			}
			deleted += n
		}
	}
	return deleted, nil
}

// InsertChild shreds an XML fragment as a new child of every element
// matched by the parent query (a FLWR expression whose RETURN is a
// single whole-element path). It returns the number of parents extended.
//
//	n, err := store.InsertChild(
//	    `FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
//	    legodb.Params{"c1": "Fugitive, The"},
//	    `<aka>Le Fugitif</aka>`)
func (s *Store) InsertChild(parentQuery string, params Params, fragmentXML string) (int, error) {
	fragment, err := xmltree.Parse(strings.NewReader(fragmentXML))
	if err != nil {
		return 0, fmt.Errorf("legodb: fragment: %w", err)
	}
	q, err := xquery.Parse(parentQuery)
	if err != nil {
		return 0, err
	}
	targets, err := xquery.TranslateTargets(q, s.schema, s.catalog)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	inserted := 0
	for _, tgt := range targets {
		rs, err := s.db.ExecuteBlock(tgt.Block, params.forBlocks(s.catalog, tgt.Block))
		if err != nil {
			return inserted, err
		}
		for _, row := range rs.Rows {
			if _, err := s.shredder.InsertChild(tgt.TypeName, row[0].Int, fragment.Clone()); err != nil {
				return inserted, fmt.Errorf("legodb: %w", err)
			}
			inserted++
		}
	}
	return inserted, nil
}
