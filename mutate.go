package legodb

import (
	"fmt"
	"strings"

	"legodb/internal/xmltree"
	"legodb/internal/xquery"
)

// Executable mutations over a store: deletes with subtree cascade and
// child inserts. These complement the advisory update costing
// (Engine.AddUpdate): a workload can be both priced and run.

// DeleteWhere removes every element instance matched by a target query —
// a FLWR expression whose RETURN is a single whole-element path — along
// with its entire subtree. It returns the number of rows removed across
// all relations.
//
//	n, err := store.DeleteWhere(
//	    `FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
//	    legodb.Params{"c1": "Fugitive, The"})
func (s *Store) DeleteWhere(text string, params Params) (int, error) {
	q, err := xquery.Parse(text)
	if err != nil {
		return 0, err
	}
	// Translate under the lock: a live migration may swap the catalog,
	// and target blocks must execute against the catalog they were
	// translated for.
	s.mu.Lock()
	defer s.mu.Unlock()
	targets, err := xquery.TranslateTargets(q, s.schema, s.catalog)
	if err != nil {
		return 0, err
	}
	s.mutEpoch++
	deleted := 0
	for _, tgt := range targets {
		rs, err := s.db.ExecuteBlock(tgt.Block, params.forBlocks(s.catalog, tgt.Block))
		if err != nil {
			return deleted, err
		}
		for _, row := range rs.Rows {
			pos := s.shredder.FindRowByID(tgt.TypeName, row[0].Int)
			if pos < 0 {
				continue // already cascaded away by an earlier target
			}
			n, err := s.shredder.DeleteInstance(tgt.TypeName, pos)
			if err != nil {
				return deleted, err
			}
			deleted += n
		}
	}
	s.observeMutation(q, xquery.DeleteUpdate, "")
	return deleted, nil
}

// InsertChild shreds an XML fragment as a new child of every element
// matched by the parent query (a FLWR expression whose RETURN is a
// single whole-element path). It returns the number of parents extended.
//
//	n, err := store.InsertChild(
//	    `FOR $s IN imdb/show WHERE $s/title = c1 RETURN $s`,
//	    legodb.Params{"c1": "Fugitive, The"},
//	    `<aka>Le Fugitif</aka>`)
func (s *Store) InsertChild(parentQuery string, params Params, fragmentXML string) (int, error) {
	fragment, err := xmltree.Parse(strings.NewReader(fragmentXML))
	if err != nil {
		return 0, fmt.Errorf("legodb: fragment: %w", err)
	}
	q, err := xquery.Parse(parentQuery)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	targets, err := xquery.TranslateTargets(q, s.schema, s.catalog)
	if err != nil {
		return 0, err
	}
	s.mutEpoch++
	inserted := 0
	for _, tgt := range targets {
		rs, err := s.db.ExecuteBlock(tgt.Block, params.forBlocks(s.catalog, tgt.Block))
		if err != nil {
			return inserted, err
		}
		for _, row := range rs.Rows {
			if _, err := s.shredder.InsertChild(tgt.TypeName, row[0].Int, fragment.Clone()); err != nil {
				return inserted, fmt.Errorf("legodb: %w", err)
			}
			inserted++
		}
	}
	s.observeMutation(q, xquery.InsertUpdate, fragment.Name)
	return inserted, nil
}

// observeMutation records a mutation's shape in the observed workload as
// an update operation: the target query's RETURN path expanded to a
// document-rooted path (plus the inserted child's name for inserts).
// Mutations whose target cannot be expanded — which TranslateTargets
// would have rejected anyway — are simply not recorded.
func (s *Store) observeMutation(q *xquery.Query, kind xquery.UpdateKind, child string) {
	if len(q.Return) != 1 || q.Return[0].Path == nil {
		return
	}
	path, ok := docPath(q, *q.Return[0].Path)
	if !ok {
		return
	}
	if child != "" {
		path.Steps = append(path.Steps, child)
	}
	s.obs.observeUpdate(&xquery.Update{Kind: kind, Path: path})
}

// docPath expands a variable-rooted path to a document-rooted one by
// splicing in the binding chain ($e IN $v/episode, $v IN imdb/show
// makes $e/title into imdb/show/episode/title).
func docPath(q *xquery.Query, p xquery.Path) (xquery.Path, bool) {
	steps := append([]string(nil), p.Steps...)
	for v := p.Var; v != ""; {
		found := false
		for _, b := range q.Bindings {
			if b.Var == v {
				steps = append(append([]string(nil), b.Path.Steps...), steps...)
				v = b.Path.Var
				found = true
				break
			}
		}
		if !found {
			return xquery.Path{}, false
		}
	}
	return xquery.Path{Steps: steps}, true
}
