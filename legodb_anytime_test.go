package legodb

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func adviseEngine(t *testing.T) *Engine {
	t.Helper()
	e := newEngine(t)
	if err := e.AddQuery("lookup", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := e.AddQuery("publish", `FOR $v IN imdb/show RETURN $v`, 0.3); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestAdviseBudgetIsAnytime: MaxEvaluations stops the search through
// the façade with a usable result, the report says so, and Explain
// surfaces the truncation.
func TestAdviseBudgetIsAnytime(t *testing.T) {
	e := adviseEngine(t)
	advice, err := e.Advise(AdviseOptions{Strategy: GreedySO, MaxEvaluations: 2})
	if err != nil {
		t.Fatalf("budget-bounded Advise errored instead of returning best-so-far: %v", err)
	}
	rep := advice.Report()
	if rep.Stop != StopBudget {
		t.Fatalf("stop = %s, want %s", rep.Stop, StopBudget)
	}
	if rep.Evaluated > 2 {
		t.Fatalf("evaluated %d candidates over budget 2", rep.Evaluated)
	}
	if advice.Cost() <= 0 {
		t.Fatalf("anytime advice has no usable cost: %g", advice.Cost())
	}
	if explain := advice.Explain(); !strings.Contains(explain, "stopped: budget") {
		t.Fatalf("Explain does not surface the anytime stop:\n%s", explain)
	}
}

// TestAdviseContextPreCancelled: with no best-so-far yet, a dead
// context is a real error at the façade too.
func TestAdviseContextPreCancelled(t *testing.T) {
	e := adviseEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AdviseContext(ctx, AdviseOptions{Strategy: GreedySO}); err == nil {
		t.Fatal("AdviseContext with a pre-cancelled context succeeded")
	}
}

// TestEngineCostCacheFile: the façade's snapshot-file helpers
// round-trip a warm cache and quarantine a corrupt one non-fatally.
func TestEngineCostCacheFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "costs.gob")

	e := adviseEngine(t)
	if _, err := e.Advise(AdviseOptions{Strategy: GreedySO}); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveCostCacheFile(path); err != nil {
		t.Fatal(err)
	}

	e2 := adviseEngine(t)
	n, warning, err := e2.LoadCostCacheFile(path)
	if err != nil || warning != "" || n == 0 {
		t.Fatalf("healthy snapshot: n=%d warning=%q err=%v", n, warning, err)
	}

	if err := os.WriteFile(path, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	e3 := adviseEngine(t)
	n, warning, err = e3.LoadCostCacheFile(path)
	if err != nil {
		t.Fatalf("corrupt snapshot returned error: %v", err)
	}
	if n != 0 || warning == "" {
		t.Fatalf("corrupt snapshot: n=%d warning=%q", n, warning)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
}
