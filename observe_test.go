package legodb

import (
	"strings"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xquery"
)

// observedStore opens a small store for observation tests.
func observedStore(t *testing.T) *Store {
	t.Helper()
	eng, err := New(imdb.SchemaText)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetStatisticsText(imdb.StatsText); err != nil {
		t.Fatal(err)
	}
	if err := eng.AddQuery("pub", `FOR $v IN imdb/show RETURN $v`, 1); err != nil {
		t.Fatal(err)
	}
	advice, err := eng.EvaluateFixed("all-inlined")
	if err != nil {
		t.Fatal(err)
	}
	store, err := advice.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Load(imdb.Generate(imdb.GenOptions{Shows: 10, Seed: 3})); err != nil {
		t.Fatal(err)
	}
	return store
}

// TestObservedWorkloadAccumulates proves served queries land in the
// observed workload with frequency weights, keyed by shape: the same
// query text observed under different report names is one shape.
func TestObservedWorkloadAccumulates(t *testing.T) {
	store := observedStore(t)
	if w, n := store.ObservedWorkload(); n != 0 || len(w.Entries) != 0 {
		t.Fatalf("fresh store already observed %d shapes / %d total", len(w.Entries), n)
	}

	lookup := `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title`
	publish := `FOR $v IN imdb/show RETURN $v`
	for i := 0; i < 3; i++ {
		if _, err := store.Query(lookup, Params{"c1": "1995"}); err != nil {
			t.Fatal(err)
		}
	}
	// The same lookup under a report label must not register as a new
	// shape.
	if _, err := store.Query(`(: labeled :) `+lookup, Params{"c1": "1996"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Query(publish, nil); err != nil {
		t.Fatal(err)
	}

	w, n := store.ObservedWorkload()
	if n != 5 {
		t.Errorf("want 5 observations, got %d", n)
	}
	if len(w.Entries) != 2 {
		t.Fatalf("want 2 query shapes, got %d", len(w.Entries))
	}
	// First-observed order, weight = frequency.
	if w.Entries[0].Weight != 4 || w.Entries[1].Weight != 1 {
		t.Errorf("weights = %v, %v; want 4, 1", w.Entries[0].Weight, w.Entries[1].Weight)
	}
	for _, e := range w.Entries {
		if e.Query.Name != "" {
			t.Errorf("observed shape carries a report name %q", e.Query.Name)
		}
	}
}

// TestObservedWorkloadRecordsMutations proves DeleteWhere and
// InsertChild register as update shapes.
func TestObservedWorkloadRecordsMutations(t *testing.T) {
	store := observedStore(t)
	if _, err := store.DeleteWhere(
		`FOR $s IN imdb/show WHERE $s/year = c1 RETURN $s`, Params{"c1": "1700"}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.InsertChild(
		`FOR $s IN imdb/show RETURN $s`, nil, `<aka>x</aka>`); err != nil {
		t.Fatal(err)
	}
	w, n := store.ObservedWorkload()
	if n != 2 {
		t.Errorf("want 2 observations, got %d", n)
	}
	if len(w.Updates) != 2 {
		t.Fatalf("want 2 update shapes, got %d", len(w.Updates))
	}
}

// TestObserverDecayAndPrune drives the observer past its decay window
// and checks that weights halve and one-off shapes eventually vanish
// while the hot shape survives.
func TestObserverDecayAndPrune(t *testing.T) {
	obs := newWorkloadObserver()
	hot, _ := queryShape(mustParseQuery(t, `FOR $v IN imdb/show RETURN $v/title`))
	cold, _ := queryShape(mustParseQuery(t, `FOR $v IN imdb/show RETURN $v/year`))
	obs.observeQuery(cold)
	for i := 0; i < 2*observeWindow; i++ {
		obs.observeQuery(hot)
	}
	w, total := obs.workload()
	if total != uint64(2*observeWindow+1) {
		t.Errorf("total = %d", total)
	}
	if len(w.Entries) != 1 {
		t.Fatalf("cold shape should have decayed away: %d entries", len(w.Entries))
	}
	// Two decays happened; the hot weight must be far below the raw
	// count but still dominant.
	if hotW := w.Entries[0].Weight; hotW >= 2*observeWindow || hotW < 1 {
		t.Errorf("hot weight = %v after decay", hotW)
	}
}

// TestObservationSurvivesMigration: the observer is a property of the
// traffic, not the storage layout — a migration must not reset it.
func TestObservationSurvivesMigration(t *testing.T) {
	_, store, target := migrationFixture(t, 10)
	if _, err := store.Query(`FOR $v IN imdb/show RETURN $v/title`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := store.MigrateTo(target); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Query(`FOR $v IN imdb/show RETURN $v/title`, nil); err != nil {
		t.Fatal(err)
	}
	w, n := store.ObservedWorkload()
	if n != 2 || len(w.Entries) != 1 {
		t.Errorf("observations across migration: total=%d shapes=%d, want 2/1", n, len(w.Entries))
	}
	if w.Entries[0].Weight != 2 {
		t.Errorf("shape weight = %v, want 2", w.Entries[0].Weight)
	}
}

// TestObservedWorkloadIsAdvisable closes the loop: an observed workload
// snapshot must feed straight back into the advisor.
func TestObservedWorkloadIsAdvisable(t *testing.T) {
	eng, store, _ := migrationFixture(t, 10)
	for i := 0; i < 4; i++ {
		if _, err := store.Query(`FOR $v IN imdb/show RETURN $v`, nil); err != nil {
			t.Fatal(err)
		}
	}
	w, _ := store.ObservedWorkload()
	advice, err := eng.AdviseWorkload(t.Context(), w, AdviseOptions{Strategy: GreedySI, MaxIterations: 2})
	if err != nil {
		t.Fatalf("advising the observed workload: %v", err)
	}
	if advice.Cost() <= 0 {
		t.Errorf("advised cost = %v", advice.Cost())
	}
	if !strings.Contains(advice.PSchema(), "IMDB") {
		t.Error("advice carries no schema")
	}
}

func mustParseQuery(t *testing.T, text string) *xquery.Query {
	t.Helper()
	q, err := xquery.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestObserveUpdateStripsName is the regression test for the update-shape
// aliasing bug: a labeled update text ("(: W1 :)" report comment) must
// land on the same observed shape as its unlabeled twin, the recorded
// shape must carry no name, and recording must never mutate the caller's
// Update in place.
func TestObserveUpdateStripsName(t *testing.T) {
	store := observedStore(t)
	named := xquery.MustParseUpdate(`(: W1 :) INSERT imdb/show/aka`)
	if named.Name != "W1" {
		t.Fatalf("parsed Name = %q, want W1", named.Name)
	}
	plain := xquery.MustParseUpdate(`INSERT imdb/show/aka`)
	store.obs.observeUpdate(named)
	store.obs.observeUpdate(plain)

	if named.Name != "W1" {
		t.Errorf("observation mutated the caller's update: Name = %q", named.Name)
	}
	w, n := store.ObservedWorkload()
	if n != 2 {
		t.Errorf("want 2 observations, got %d", n)
	}
	if len(w.Updates) != 1 {
		t.Fatalf("labeled and unlabeled texts split into %d shapes, want 1", len(w.Updates))
	}
	if got := w.Updates[0].Update.Name; got != "" {
		t.Errorf("observed shape kept a report label: Name = %q", got)
	}
	if w.Updates[0].Weight != 2 {
		t.Errorf("shape weight = %v, want 2", w.Updates[0].Weight)
	}
}
