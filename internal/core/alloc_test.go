package core

import (
	"context"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xschema"
)

// Allocation budgets for the search hot path. Every AllocsPerRun budget
// here is an upper bound CI enforces (the robustness job runs these
// without -race): a regression that re-introduces per-hit allocations
// on the cache or hashing fast paths fails the build instead of
// silently eating the incremental savings. Budgets are per-operation
// averages over AllocsPerRun's internal loop.
func assertAllocs(t *testing.T, what string, budget float64, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets only hold without the race detector")
	}
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.1f", what, got, budget)
	}
}

// TestAllocsCostCacheHit: the configuration cost cache's hit path must
// not allocate — it runs once per candidate per iteration on every
// worker.
func TestAllocsCostCacheHit(t *testing.T) {
	c := NewCostCache(0)
	key := CacheKey{Workload: 42, Model: 7}
	key.Schema[0] = 1
	c.Put(key, 123.5)
	assertAllocs(t, "CostCache.Get hit", 0, func() {
		if _, ok := c.Get(key); !ok {
			t.Fatal("expected a hit")
		}
	})
}

// TestAllocsQueryStoreSnapshot: reading a per-query dependency group
// snapshot must not allocate (it runs once per workload slot per
// candidate evaluation).
func TestAllocsQueryStoreSnapshot(t *testing.T) {
	var qs queryStore
	qs.put(99, []string{"A", "B"}, queryVariant{key: 1, cost: 2}, nil)
	assertAllocs(t, "queryStore.snapshot", 0, func() {
		if gs := qs.snapshot(99); len(gs) != 1 {
			t.Fatal("expected one group")
		}
	})
}

// TestAllocsDepKeyChain: hashing a dependency list against a memoized
// dependency state must not allocate once every name is memoized — it
// is the per-group cost of every per-query cache lookup.
func TestAllocsDepKeyChain(t *testing.T) {
	ps, err := InitialSchema(annotatedIMDB(t), GreedySO)
	if err != nil {
		t.Fatal(err)
	}
	e := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1}
	digests := ps.TypeDigests()
	cat, err := e.sharedMapper().Map(ps, digests)
	if err != nil {
		t.Fatal(err)
	}
	deps := ps.Names[:4:4]
	st := e.acquireDepState(ps, cat, digests)
	defer e.releaseDepState(st)
	st.keyOf(deps) // memoize the names once
	assertAllocs(t, "depState.keyOf", 0, func() {
		st.keyOf(deps)
	})
}

// TestAllocsFingerprints bounds the schema hashing the per-candidate
// path pays: the canonical fingerprint allocates only its order scratch
// (slice and two maps), the shallow digests reuse a caller map, and the
// name-sensitive digest allocates nothing.
func TestAllocsFingerprints(t *testing.T) {
	ps, err := InitialSchema(annotatedIMDB(t), GreedySO)
	if err != nil {
		t.Fatal(err)
	}
	assertAllocs(t, "Schema.Fingerprint", 8, func() { ps.Fingerprint() })
	assertAllocs(t, "Schema.NamedDigest", 0, func() { ps.NamedDigest() })
	scratch := make(map[string]xschema.Fingerprint, len(ps.Types))
	assertAllocs(t, "Schema.TypeDigestsInto", 0, func() { ps.TypeDigestsInto(scratch) })
}

// TestAllocsEvaluateCachedHit bounds the warm EvaluateCached path: a
// repeated candidate costs one fingerprint (the cache key) plus the
// cache probe, nothing else.
func TestAllocsEvaluateCachedHit(t *testing.T) {
	ps, err := InitialSchema(annotatedIMDB(t), GreedySO)
	if err != nil {
		t.Fatal(err)
	}
	e := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: NewCostCache(0)}
	ctx := context.Background()
	if _, _, err := e.EvaluateCached(ctx, ps); err != nil {
		t.Fatal(err)
	}
	assertAllocs(t, "EvaluateCached hit", 10, func() {
		if _, hit, err := e.EvaluateCached(ctx, ps); err != nil || !hit {
			t.Fatalf("expected a hit, err=%v", err)
		}
	})
}
