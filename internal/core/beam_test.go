package core

import (
	"context"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/xquery"
)

func TestBeamSearchNeverWorseThanGreedy(t *testing.T) {
	for _, wl := range []struct {
		name string
		w    *xquery.Workload
	}{{"lookup", imdb.LookupWorkload()}, {"publish", imdb.PublishWorkload()}} {
		t.Run(wl.name, func(t *testing.T) {
			greedy, err := GreedySearch(context.Background(), imdb.Schema(), wl.w, imdb.Stats(), Options{Strategy: GreedySO})
			if err != nil {
				t.Fatal(err)
			}
			beam, err := BeamSearch(context.Background(), imdb.Schema(), wl.w, imdb.Stats(), BeamOptions{
				Options: Options{Strategy: GreedySO},
				Width:   3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if beam.Best.Cost > greedy.Best.Cost*1.0001 {
				t.Fatalf("beam (%.1f) worse than greedy (%.1f)", beam.Best.Cost, greedy.Best.Cost)
			}
			if err := pschema.Check(beam.Best.Schema); err != nil {
				t.Fatalf("beam result not physical: %v", err)
			}
		})
	}
}

func TestBeamWidthOneMatchesGreedyCost(t *testing.T) {
	w := imdb.PublishWorkload()
	greedy, err := GreedySearch(context.Background(), imdb.Schema(), w, imdb.Stats(), Options{Strategy: GreedySI})
	if err != nil {
		t.Fatal(err)
	}
	beam, err := BeamSearch(context.Background(), imdb.Schema(), w, imdb.Stats(), BeamOptions{
		Options: Options{Strategy: GreedySI},
		Width:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Width-1 beam explores the same frontier as greedy (deduplication
	// may skip revisits, so allow tiny slack).
	ratio := beam.Best.Cost / greedy.Best.Cost
	if ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("width-1 beam %.1f vs greedy %.1f", beam.Best.Cost, greedy.Best.Cost)
	}
}

func TestBeamTraceMonotone(t *testing.T) {
	res, err := BeamSearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), BeamOptions{
		Options: Options{Strategy: GreedySO},
		Width:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := res.InitialCost
	for i, it := range res.Trace {
		if it.Cost > prev {
			t.Fatalf("level %d increased best cost: %.1f -> %.1f", i, prev, it.Cost)
		}
		prev = it.Cost
	}
}

func TestBeamEmptyWorkloadRejected(t *testing.T) {
	if _, err := BeamSearch(context.Background(), imdb.Schema(), &xquery.Workload{}, imdb.Stats(), BeamOptions{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

// --- update workload extension ---

func TestUpdateWorkloadCosts(t *testing.T) {
	w := &xquery.Workload{}
	w.AddUpdate(xquery.MustParseUpdate("INSERT imdb/show"), 1)
	s := imdb.AnnotatedSchema()
	inlined, err := pschemaAllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	outlined, err := pschemaInitialOutlined(s)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := GetPSchemaCost(inlined, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	co, err := GetPSchemaCost(outlined, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting a show into the fragmented configuration writes one row
	// per outlined element: far more seeks and index updates.
	if ci >= co {
		t.Fatalf("insert cost inlined (%.1f) should be below outlined (%.1f)", ci, co)
	}
}

func TestModifyFavorsNarrowRows(t *testing.T) {
	w := &xquery.Workload{}
	w.AddUpdate(xquery.MustParseUpdate("MODIFY imdb/show/description"), 1)
	s := imdb.AnnotatedSchema()
	inlined, err := pschemaAllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	outlined, err := pschemaInitialOutlined(s)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := GetPSchemaCost(inlined, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	co, err := GetPSchemaCost(outlined, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Modifying a description rewrites the whole fixed-width row: the
	// wide inlined Show row costs more bytes than the tiny Description
	// row.
	if co >= ci {
		t.Fatalf("modify cost outlined (%.1f) should be below inlined (%.1f)", co, ci)
	}
}

func TestUpdateHeavyWorkloadChangesSearchOutcome(t *testing.T) {
	// The same lookup workload with and without a heavy insert stream
	// should produce configurations with different table counts: inserts
	// penalize fragmentation.
	queriesOnly := imdb.LookupWorkload()
	resQ, err := GreedySearch(context.Background(), imdb.Schema(), queriesOnly, imdb.Stats(), Options{Strategy: GreedySO})
	if err != nil {
		t.Fatal(err)
	}
	withUpdates := imdb.LookupWorkload()
	withUpdates.AddUpdate(xquery.MustParseUpdate("INSERT imdb/show"), 40)
	withUpdates.AddUpdate(xquery.MustParseUpdate("INSERT imdb/actor"), 40)
	resU, err := GreedySearch(context.Background(), imdb.Schema(), withUpdates, imdb.Stats(), Options{Strategy: GreedySO})
	if err != nil {
		t.Fatal(err)
	}
	if len(resU.Best.Schema.Names) > len(resQ.Best.Schema.Names) {
		t.Fatalf("insert-heavy workload kept more tables (%d) than query-only (%d)",
			len(resU.Best.Schema.Names), len(resQ.Best.Schema.Names))
	}
}
