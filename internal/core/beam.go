package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// Beam search — the paper's Section 7 lists "considering dynamic
// programming search strategies" as future work; this implements a beam
// variant: instead of committing to the single cheapest transformation
// per level (Algorithm 4.1), the search keeps the Width cheapest distinct
// configurations and expands them all, escaping local minima the greedy
// loop can fall into.
//
// Distinctness is decided by xschema.Fingerprint — the canonical
// structural hash also used as the cost-cache key — so configurations
// reached along different transformation paths are expanded (and costed)
// once.

// BeamOptions configures BeamSearch. Width 1 degenerates to the greedy
// algorithm.
type BeamOptions struct {
	Options
	// Width is the number of configurations kept per level (default 3).
	Width int
	// MaxLevels bounds the number of expansion levels (default 64).
	MaxLevels int
}

// BeamSearch explores the transformation space keeping the Width best
// configurations per level. The result's trace records the best cost at
// each level. Candidate configurations of one level are evaluated by the
// same Workers-bounded pool as the greedy search, with deterministic
// outcome (level candidates sort stably by cost in generation order).
// Like GreedySearch it is an anytime procedure: cancellation, the
// deadline and the evaluation budget stop it with the best
// configuration found so far and a SearchReport, not an error.
func BeamSearch(ctx context.Context, schema *xschema.Schema, wkld *xquery.Workload, stats *xstats.Set, opts BeamOptions) (*Result, error) {
	if len(wkld.Entries) == 0 && len(wkld.Updates) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	if opts.Width <= 0 {
		opts.Width = 3
	}
	if opts.MaxLevels <= 0 {
		opts.MaxLevels = 64
	}
	ctx, cancel := opts.searchContext(ctx)
	defer cancel()
	started := time.Now()
	annotated := schema.Clone()
	if stats != nil {
		if err := xstats.Annotate(annotated, stats); err != nil {
			return nil, fmt.Errorf("core: annotate: %w", err)
		}
	}
	ps, err := InitialSchema(annotated, opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: initial schema: %w", err)
	}
	rootCount := opts.RootCount
	if rootCount == 0 {
		rootCount = 1
	}
	cache := opts.searchCache()
	eval := &Evaluator{Workload: wkld, RootCount: rootCount, Model: opts.Model, Cache: cache,
		DisableIncremental: opts.DisableIncremental, DisableSharing: opts.DisableSharing}
	cacheStart := cache.Stats()
	initial, _, err := eval.EvaluateCached(ctx, ps)
	if err != nil {
		return nil, fmt.Errorf("core: evaluate initial schema: %w", err)
	}
	st := newSearchState(ctx, opts.Budget)
	result := &Result{InitialCost: initial.Cost, Strategy: opts.Strategy}
	tropts := transform.Options{Kinds: opts.kinds(), WildcardLabels: opts.WildcardLabels}

	beam := []Config{initial}
	best := initial
	seen := map[xschema.Fingerprint]bool{ps.Fingerprint(): true}

	stop := StopMaxLevels
	for level := 0; level < opts.MaxLevels; level++ {
		if err := ctx.Err(); err != nil {
			stop = st.stopFor(err)
			break
		}
		if st.exhausted() {
			stop = StopBudget
			break
		}
		start := time.Now()
		// Expand the beam: apply every transformation, deduplicate by
		// canonical fingerprint, then cost the distinct schemas in
		// parallel. A panicking transformation skips that expansion only.
		var nextSchemas []*xschema.Schema
		var nextFPs []xschema.Fingerprint
		for _, cfg := range beam {
			for _, tr := range transform.Candidates(cfg.Schema, tropts) {
				if next := expandOne(st, cfg.Schema, tr); next != nil {
					fp := next.Fingerprint()
					if seen[fp] {
						continue
					}
					seen[fp] = true
					nextSchemas = append(nextSchemas, next)
					nextFPs = append(nextFPs, fp)
				}
			}
		}
		results, hits, misses := evaluateSchemas(st, nextSchemas, nextFPs, eval, opts.Workers)
		var candidates []Config
		for _, cfg := range results {
			if cfg != nil {
				candidates = append(candidates, *cfg)
			}
		}
		if len(candidates) == 0 {
			switch {
			case ctx.Err() != nil:
				stop = st.stopFor(ctx.Err())
			case st.exhausted():
				stop = StopBudget
			default:
				stop = StopConverged
			}
			break
		}
		expansions := len(candidates)
		sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].Cost < candidates[j].Cost })
		if len(candidates) > opts.Width {
			candidates = candidates[:opts.Width]
		}
		improved := candidates[0].Cost < best.Cost
		if improved {
			prev := best.Cost
			best = candidates[0]
			result.Trace = append(result.Trace, Iteration{
				Cost:        best.Cost,
				Applied:     fmt.Sprintf("beam level %d (%d expansions)", level+1, expansions),
				Candidates:  expansions,
				Elapsed:     time.Since(start),
				CacheHits:   hits,
				CacheMisses: misses,
			})
			if opts.Threshold > 0 && (prev-best.Cost)/prev < opts.Threshold {
				stop = StopThreshold
				break
			}
		}
		// Continue expanding even on a non-improving level (the beam may
		// climb out of a plateau), but stop once the whole level is worse
		// than the best by a wide margin.
		if !improved && candidates[0].Cost > best.Cost*1.5 {
			stop = StopConverged
			break
		}
		beam = candidates
	}
	// Cache hits carry only schema and cost; derive the winning catalog,
	// detached from the (possibly expired) search context.
	result.Best, err = eval.Materialize(context.Background(), best)
	if err != nil {
		return nil, fmt.Errorf("core: materialize best: %w", err)
	}
	result.Report = st.report(stop, len(result.Trace), eval, time.Since(started))
	result.Cache = cache.Stats().Sub(cacheStart)
	result.Report.Cache = result.Cache
	result.Evals = eval.Evals()
	result.Translations = eval.Translations()
	result.QueryCacheHits, result.QueryCacheMisses = eval.QueryCacheStats()
	result.BlocksRequested, result.BlocksCosted = eval.BlockStats()
	return result, nil
}

// expandOne applies a single beam expansion with the same fault
// isolation as candidate evaluation: errors and panics convert to a
// recorded CandidateError and a skipped expansion.
func expandOne(st *searchState, base *xschema.Schema, tr transform.Transformation) (out *xschema.Schema) {
	defer func() {
		if r := recover(); r != nil {
			st.recordPanic(tr.String(), "apply", r, debug.Stack())
			out = nil
		}
	}()
	next, err := transform.Apply(base, tr)
	if err != nil {
		st.recordError(tr.String(), "apply", err)
		return nil
	}
	return next
}

// evaluateSchemas costs a batch of already-applied schemas, fanning out
// across workers like evaluateCandidates. fps carries the schemas'
// fingerprints, already computed by the dedup pass, so the cache-key
// path need not fingerprint again. Unanswerable schemas are nil in the
// indexed result slice; a panicking evaluation is recorded and skipped
// without wedging the pool.
func evaluateSchemas(st *searchState, schemas []*xschema.Schema, fps []xschema.Fingerprint, eval *Evaluator, workers int) ([]*Config, int, int) {
	results := make([]*Config, len(schemas))
	var hits, misses atomic.Int64
	evalAt := func(i int) {
		results[i] = evaluateSchema(st, schemas[i], fps[i], eval, &hits, &misses)
	}
	if workers == 1 || len(schemas) <= 1 {
		for i := range schemas {
			evalAt(i)
		}
		return results, int(hits.Load()), int(misses.Load())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(schemas) {
		workers = len(schemas)
	}
	// Prefilled buffered channel, no dispatcher goroutine (see
	// evaluateCandidates): cancellation is handled by st.take() per
	// pulled schema, keeping the skip accounting intact.
	var wg sync.WaitGroup
	next := make(chan int, len(schemas))
	for i := range schemas {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				evalAt(i)
			}
		}()
	}
	wg.Wait()
	return results, int(hits.Load()), int(misses.Load())
}

// evaluateSchema costs one already-applied schema under the search
// state's budget and panic isolation.
func evaluateSchema(st *searchState, ps *xschema.Schema, fp xschema.Fingerprint, eval *Evaluator, hits, misses *atomic.Int64) (out *Config) {
	if !st.take() {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			st.recordPanic("beam expansion", "evaluate", r, debug.Stack())
			out = nil
		}
	}()
	cfg, hit, err := eval.evaluateCachedFP(st.ctx, ps, fp)
	if err != nil {
		if st.ctx.Err() == nil {
			st.recordError("beam expansion", "evaluate", err)
		}
		return nil
	}
	if hit {
		hits.Add(1)
	} else {
		misses.Add(1)
	}
	return &cfg
}
