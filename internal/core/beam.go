package core

import (
	"fmt"
	"sort"
	"time"

	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// Beam search — the paper's Section 7 lists "considering dynamic
// programming search strategies" as future work; this implements a beam
// variant: instead of committing to the single cheapest transformation
// per level (Algorithm 4.1), the search keeps the Width cheapest distinct
// configurations and expands them all, escaping local minima the greedy
// loop can fall into.

// BeamOptions configures BeamSearch. Width 1 degenerates to the greedy
// algorithm.
type BeamOptions struct {
	Options
	// Width is the number of configurations kept per level (default 3).
	Width int
	// MaxLevels bounds the number of expansion levels (default 64).
	MaxLevels int
}

// BeamSearch explores the transformation space keeping the Width best
// configurations per level. The result's trace records the best cost at
// each level.
func BeamSearch(schema *xschema.Schema, wkld *xquery.Workload, stats *xstats.Set, opts BeamOptions) (*Result, error) {
	if len(wkld.Entries) == 0 && len(wkld.Updates) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	if opts.Width <= 0 {
		opts.Width = 3
	}
	if opts.MaxLevels <= 0 {
		opts.MaxLevels = 64
	}
	annotated := schema.Clone()
	if stats != nil {
		if err := xstats.Annotate(annotated, stats); err != nil {
			return nil, fmt.Errorf("core: annotate: %w", err)
		}
	}
	ps, err := InitialSchema(annotated, opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: initial schema: %w", err)
	}
	rootCount := opts.RootCount
	if rootCount == 0 {
		rootCount = 1
	}
	eval := &Evaluator{Workload: wkld, RootCount: rootCount, Model: opts.Model}
	initial, err := eval.Evaluate(ps)
	if err != nil {
		return nil, fmt.Errorf("core: evaluate initial schema: %w", err)
	}
	result := &Result{InitialCost: initial.Cost, Strategy: opts.Strategy}
	tropts := transform.Options{Kinds: opts.kinds(), WildcardLabels: opts.WildcardLabels}

	beam := []Config{initial}
	best := initial
	seen := map[string]bool{fingerprint(initial.Schema): true}

	for level := 0; level < opts.MaxLevels; level++ {
		start := time.Now()
		var candidates []Config
		expansions := 0
		for _, cfg := range beam {
			for _, tr := range transform.Candidates(cfg.Schema, tropts) {
				next, err := transform.Apply(cfg.Schema, tr)
				if err != nil {
					continue
				}
				fp := fingerprint(next)
				if seen[fp] {
					continue
				}
				seen[fp] = true
				nc, err := eval.Evaluate(next)
				if err != nil {
					continue
				}
				expansions++
				candidates = append(candidates, nc)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].Cost < candidates[j].Cost })
		if len(candidates) > opts.Width {
			candidates = candidates[:opts.Width]
		}
		improved := candidates[0].Cost < best.Cost
		if improved {
			prev := best.Cost
			best = candidates[0]
			result.Trace = append(result.Trace, Iteration{
				Cost:       best.Cost,
				Applied:    fmt.Sprintf("beam level %d (%d expansions)", level+1, expansions),
				Candidates: expansions,
				Elapsed:    time.Since(start),
			})
			if opts.Threshold > 0 && (prev-best.Cost)/prev < opts.Threshold {
				break
			}
		}
		// Continue expanding even on a non-improving level (the beam may
		// climb out of a plateau), but stop once the whole level is worse
		// than the best by a wide margin.
		if !improved && candidates[0].Cost > best.Cost*1.5 {
			break
		}
		beam = candidates
	}
	result.Best = best
	return result, nil
}

// fingerprint canonically identifies a schema's structure (statistics
// annotations included, so equivalent rewrites with different stats
// remain distinct).
func fingerprint(s *xschema.Schema) string { return s.String() }
