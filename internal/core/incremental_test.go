package core

import (
	"context"
	"testing"
	"testing/quick"

	"legodb/internal/imdb"
	"legodb/internal/relational"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// TestIncrementalMatchesFullEvaluation is the differential acceptance
// test of the incremental layers: every strategy, with incremental
// evaluation on and off and with 1 and 8 workers, must produce
// byte-identical traces, costs, chosen schemas and DDL. Evaluation
// counts and cache counters may differ (that is the point); the outcome
// may not.
func TestIncrementalMatchesFullEvaluation(t *testing.T) {
	workloads := []struct {
		name string
		make func() *xquery.Workload
	}{
		{"lookup", imdb.LookupWorkload},
		{"publish", imdb.PublishWorkload},
		{"updates", func() *xquery.Workload {
			w := imdb.LookupWorkload()
			w.AddUpdate(xquery.MustParseUpdate("INSERT imdb/show"), 10)
			return w
		}},
	}
	type variant struct {
		name        string
		incremental bool
		workers     int
	}
	variants := []variant{
		{"full-w1", false, 1},
		{"incremental-w1", true, 1},
		{"incremental-w8", true, 8},
		{"full-w8", false, 8},
	}
	for _, strategy := range []Strategy{GreedySO, GreedySI, GreedyFull} {
		for _, wl := range workloads {
			var want, wantName string
			for _, v := range variants {
				opts := Options{
					Strategy:           strategy,
					Workers:            v.workers,
					Cache:              NewCostCache(0),
					DisableIncremental: !v.incremental,
				}
				if strategy == GreedyFull {
					opts.WildcardLabels = map[string]float64{"nyt": 0.25}
				}
				res, err := GreedySearch(context.Background(), imdb.Schema(), wl.make(), imdb.Stats(), opts)
				if err != nil {
					t.Fatalf("%v/%s/%s: %v", strategy, wl.name, v.name, err)
				}
				sig := resultSignature(res)
				if want == "" {
					want, wantName = sig, v.name
					continue
				}
				if sig != want {
					t.Errorf("%v/%s: variant %s diverged from %s:\n--- %s\n%s\n--- %s\n%s",
						strategy, wl.name, v.name, wantName, wantName, want, v.name, sig)
				}
			}
		}
	}
}

// TestIncrementalMatchesFullBeam mirrors the differential test for the
// beam search.
func TestIncrementalMatchesFullBeam(t *testing.T) {
	var want, wantName string
	for _, v := range []struct {
		name        string
		incremental bool
		workers     int
	}{
		{"full-w1", false, 1},
		{"incremental-w1", true, 1},
		{"incremental-w8", true, 8},
	} {
		res, err := BeamSearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), BeamOptions{
			Options: Options{
				Strategy:           GreedySO,
				Workers:            v.workers,
				Cache:              NewCostCache(0),
				DisableIncremental: !v.incremental,
			},
			Width: 3,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		sig := resultSignature(res)
		if want == "" {
			want, wantName = sig, v.name
			continue
		}
		if sig != want {
			t.Errorf("beam variant %s diverged from %s:\n--- %s\n%s\n--- %s\n%s",
				v.name, wantName, wantName, want, v.name, sig)
		}
	}
}

// TestIncrementalSavesTranslations checks the perf claim the layers
// exist for: a fig11-style sweep (several searches over overlapping
// mixed workloads sharing one cache) must pay ≥2× fewer translations
// with incremental evaluation on, and even a single greedy search must
// save a substantial fraction.
func TestIncrementalSavesTranslations(t *testing.T) {
	sweep := func(incremental bool) uint64 {
		cache := NewCostCache(0)
		var total uint64
		for _, k := range []float64{0.25, 0.5, 0.75} {
			res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.MixedWorkload(k), imdb.Stats(), Options{
				Strategy:           GreedySI,
				Cache:              cache,
				DisableIncremental: !incremental,
			})
			if err != nil {
				t.Fatal(err)
			}
			total += res.Translations
		}
		return total
	}
	full, inc := sweep(false), sweep(true)
	if full == 0 {
		t.Fatal("full sweep reports zero translations (counter not wired?)")
	}
	if inc*2 > full {
		t.Errorf("incremental sweep paid %d translations, full %d: want ≥2× reduction", inc, full)
	}

	single := func(incremental bool) *Result {
		res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
			Strategy:           GreedySO,
			Cache:              NewCostCache(0),
			DisableIncremental: !incremental,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sfull := single(false)
	sinc := single(true)
	if sinc.Translations*3 > sfull.Translations*2 {
		t.Errorf("single search paid %d translations, full %d: want ≥1.5× reduction",
			sinc.Translations, sfull.Translations)
	}
	if sinc.QueryCacheHits == 0 {
		t.Error("incremental run reports zero per-query cache hits")
	}
	if sfull.QueryCacheHits != 0 || sfull.QueryCacheMisses != 0 {
		t.Errorf("full run touched the per-query cache: %d hits, %d misses",
			sfull.QueryCacheHits, sfull.QueryCacheMisses)
	}
}

// TestQueryCacheKeyDependsExactlyOnDeps is the property test for the
// per-query cache key: perturbing the digest of a table (or type) the
// translation examined must change the key, and perturbing anything the
// translation did not examine must not.
func TestQueryCacheKeyDependsExactlyOnDeps(t *testing.T) {
	names := []string{"A", "B", "C", "D"}
	deps := []string{"A", "B"} // what the simulated translation examined
	build := func() (map[string]xschema.Fingerprint, *relational.Catalog) {
		digests := make(map[string]xschema.Fingerprint)
		cat := &relational.Catalog{Tables: map[string]*relational.Table{}, TableOf: map[string]string{}}
		for i, n := range names {
			var fp xschema.Fingerprint
			fp[0] = byte(i + 1)
			digests[n] = fp
			tbl := &relational.Table{Name: "t_" + n, TypeName: n, Digest: uint64(i + 1)}
			cat.Tables[tbl.Name] = tbl
			cat.TableOf[n] = tbl.Name
		}
		return digests, cat
	}
	prop := func(pick uint8, delta uint64, mutateType bool) bool {
		name := names[int(pick)%len(names)]
		digests, cat := build()
		base := queryCacheKey("root", deps, digests, cat)
		if mutateType {
			fp := digests[name]
			for i := 0; i < 8; i++ {
				fp[i] ^= byte(delta >> (8 * i))
			}
			digests[name] = fp
		} else {
			cat.Table(cat.TableOf[name]).Digest ^= delta
		}
		mutated := queryCacheKey("root", deps, digests, cat)
		inDeps := name == "A" || name == "B"
		if delta == 0 || !inDeps {
			return mutated == base
		}
		return mutated != base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestMaterializeServedFromConfigCache: after an incremental evaluation,
// materializing a cost-only Config for the same schema must not pay
// another evaluator run.
func TestMaterializeServedFromConfigCache(t *testing.T) {
	ps, err := InitialSchema(annotatedIMDB(t), GreedySO)
	if err != nil {
		t.Fatal(err)
	}
	eval := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1}
	cfg, err := eval.Evaluate(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	evalsBefore := eval.Evals()
	got, err := eval.Materialize(context.Background(), Config{Schema: ps, Cost: cfg.Cost})
	if err != nil {
		t.Fatal(err)
	}
	if eval.Evals() != evalsBefore {
		t.Errorf("Materialize paid a full evaluation despite the config cache")
	}
	if got.Catalog == nil || got.Catalog.SQL() != cfg.Catalog.SQL() {
		t.Error("config cache returned a different catalog")
	}
}

func annotatedIMDB(t *testing.T) *xschema.Schema {
	t.Helper()
	s := imdb.Schema()
	if err := xstats.Annotate(s, imdb.Stats()); err != nil {
		t.Fatal(err)
	}
	return s
}
