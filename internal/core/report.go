package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// StopReason says why a search stopped. The anytime stop reasons
// (deadline, cancellation, budget) still come with a usable best-so-far
// configuration in Result.Best — only a failure before the initial
// configuration is costed surfaces as an error.
type StopReason int

const (
	// StopConverged: no candidate improved the best configuration.
	StopConverged StopReason = iota
	// StopThreshold: an iteration's relative improvement fell below
	// Options.Threshold.
	StopThreshold
	// StopMaxIterations: Options.MaxIterations bounded the loop.
	StopMaxIterations
	// StopMaxLevels: BeamOptions.MaxLevels bounded the beam expansion.
	StopMaxLevels
	// StopDeadline: Options.Deadline (or the context's own deadline)
	// expired; Result.Best is the best configuration found in time.
	StopDeadline
	// StopCancelled: the search's context was cancelled mid-search.
	StopCancelled
	// StopBudget: Options.Budget capped the candidate evaluations.
	StopBudget
)

func (r StopReason) String() string {
	switch r {
	case StopConverged:
		return "converged"
	case StopThreshold:
		return "threshold"
	case StopMaxIterations:
		return "max-iterations"
	case StopMaxLevels:
		return "max-levels"
	case StopDeadline:
		return "deadline"
	case StopCancelled:
		return "cancelled"
	case StopBudget:
		return "budget"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Interrupted reports whether the search stopped before exhausting its
// move space (deadline, cancellation or evaluation budget) — i.e.
// whether a longer run could have found a cheaper configuration.
func (r StopReason) Interrupted() bool {
	return r == StopDeadline || r == StopCancelled || r == StopBudget
}

// CandidateError records one candidate evaluation that failed (error)
// or panicked; the search skipped the candidate and carried on.
type CandidateError struct {
	// Transformation is the candidate move, rendered (or a beam-level
	// label when the originating move is no longer known).
	Transformation string
	// Stage names the pipeline stage that failed: "apply", "annotate",
	// "evaluate" or "materialize".
	Stage string
	// Err is the error text, or the recovered value for panics.
	Err string
	// Panic marks failures recovered from a worker panic.
	Panic bool
	// Stack is the goroutine stack at recovery time (panics only).
	Stack string
}

func (c CandidateError) String() string {
	kind := "error"
	if c.Panic {
		kind = "panic"
	}
	return fmt.Sprintf("%s in %s(%s): %s", kind, c.Stage, c.Transformation, c.Err)
}

// reportMaxErrors caps the CandidateErrors kept verbatim in a report;
// Failed keeps the total count either way.
const reportMaxErrors = 32

// SearchReport describes how a search ran and why it stopped. It is
// always present on a successful Result, including anytime stops.
type SearchReport struct {
	// Stop is why the search ended.
	Stop StopReason
	// Iterations is the number of completed greedy iterations (or beam
	// levels) that improved the configuration — len(Result.Trace).
	Iterations int
	// Evaluated counts candidate costings attempted (cache hits
	// included); Options.Budget bounds this number.
	Evaluated int64
	// Skipped counts candidates that were generated but never costed
	// because the deadline, cancellation or evaluation budget hit first.
	Skipped int64
	// Failed counts candidates abandoned by an error or recovered panic;
	// the first reportMaxErrors of them are in Errors.
	Failed int64
	// Errors details the failed candidates, in arrival order (capped).
	Errors []CandidateError
	// MemoFallbacks counts incremental evaluations that detected an
	// inconsistent memo state and gracefully re-ran the full pipeline.
	MemoFallbacks uint64
	// AnnotateFallbacks counts candidates whose incremental statistics
	// re-annotation failed and fell back to a full re-annotation.
	AnnotateFallbacks uint64
	// BlocksRequested and BlocksCosted mirror Result: SPJ block costings
	// asked of the logical-plan layer versus actually run — the gap is
	// the sharing the plan layer delivered during this search.
	BlocksRequested uint64
	BlocksCosted    uint64
	// Cache mirrors Result.Cache: the cost-cache activity this search
	// observed (hits, misses, singleflight dedups, evictions — the delta
	// when the cache is shared with sibling searches or, through a
	// CacheRegistry, with other engines).
	Cache CacheStats
	// Elapsed is the search's wall-clock time.
	Elapsed time.Duration
}

// searchState carries one search's interruption machinery and failure
// log across the candidate-evaluation worker pool.
type searchState struct {
	ctx       context.Context
	budget    int64 // max candidate costings; 0 = unbounded
	evaluated atomic.Int64
	skipped   atomic.Int64
	failed    atomic.Int64
	annFalls  atomic.Uint64

	mu   sync.Mutex
	errs []CandidateError
}

func newSearchState(ctx context.Context, budget int) *searchState {
	return &searchState{ctx: ctx, budget: int64(budget)}
}

// take claims one evaluation slot. It returns false — counting the
// candidate as skipped — once the context is done or the evaluation
// budget is spent.
func (st *searchState) take() bool {
	if st.ctx.Err() != nil {
		st.skipped.Add(1)
		return false
	}
	if st.budget > 0 && st.evaluated.Add(1) > st.budget {
		st.evaluated.Add(-1)
		st.skipped.Add(1)
		return false
	}
	if st.budget <= 0 {
		st.evaluated.Add(1)
	}
	return true
}

// exhausted reports whether the evaluation budget is spent.
func (st *searchState) exhausted() bool {
	return st.budget > 0 && st.evaluated.Load() >= st.budget
}

// record logs one failed candidate.
func (st *searchState) record(e CandidateError) {
	st.failed.Add(1)
	st.mu.Lock()
	if len(st.errs) < reportMaxErrors {
		st.errs = append(st.errs, e)
	}
	st.mu.Unlock()
}

func (st *searchState) recordError(transformation, stage string, err error) {
	st.record(CandidateError{Transformation: transformation, Stage: stage, Err: err.Error()})
}

func (st *searchState) recordPanic(transformation, stage string, recovered any, stack []byte) {
	st.record(CandidateError{
		Transformation: transformation,
		Stage:          stage,
		Err:            fmt.Sprint(recovered),
		Panic:          true,
		Stack:          string(stack),
	})
}

// stopFor maps a context error to its stop reason. A deadline set by
// Options.Deadline and one inherited from the caller's context both
// report StopDeadline.
func (st *searchState) stopFor(err error) StopReason {
	if errors.Is(err, context.DeadlineExceeded) {
		return StopDeadline
	}
	return StopCancelled
}

// report assembles the SearchReport for a finished search.
func (st *searchState) report(stop StopReason, iterations int, eval *Evaluator, elapsed time.Duration) SearchReport {
	st.mu.Lock()
	errs := append([]CandidateError(nil), st.errs...)
	st.mu.Unlock()
	req, costed := eval.BlockStats()
	return SearchReport{
		Stop:              stop,
		Iterations:        iterations,
		Evaluated:         st.evaluated.Load(),
		Skipped:           st.skipped.Load(),
		Failed:            st.failed.Load(),
		Errors:            errs,
		MemoFallbacks:     eval.MemoFallbacks(),
		AnnotateFallbacks: st.annFalls.Load(),
		BlocksRequested:   req,
		BlocksCosted:      costed,
		Elapsed:           elapsed,
	}
}
