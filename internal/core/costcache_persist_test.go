package core

import (
	"bytes"
	"testing"

	"legodb/internal/imdb"
)

// TestCostCacheSaveLoadRoundTrip: a cache saved and loaded into a fresh
// instance must answer the same keys, and saving twice must produce
// identical bytes (deterministic snapshot order).
func TestCostCacheSaveLoadRoundTrip(t *testing.T) {
	src := NewCostCache(0)
	res, err := GreedySearch(imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, Cache: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	if src.Stats().Entries == 0 {
		t.Fatal("search left the cache empty")
	}
	var buf1, buf2 bytes.Buffer
	if err := src.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := src.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two saves of the same cache produced different bytes")
	}

	dst := NewCostCache(0)
	n, err := dst.Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != src.Stats().Entries {
		t.Fatalf("loaded %d entries, cache had %d", n, src.Stats().Entries)
	}
	// A rerun against the loaded cache must reproduce the search without
	// a single schema-level cache miss.
	warm, err := GreedySearch(imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, Cache: dst,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 0 {
		t.Fatalf("warm run against loaded cache missed %d times", warm.Cache.Misses)
	}
	if resultSignature(res) != resultSignature(warm) {
		t.Fatal("search against loaded cache diverged from the original run")
	}
}

// TestCostCacheLoadRejectsGarbage: loading a corrupt snapshot must fail
// cleanly and leave the cache usable.
func TestCostCacheLoadRejectsGarbage(t *testing.T) {
	c := NewCostCache(0)
	if _, err := c.Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	c.Put(CacheKey{Workload: 1}, 42)
	if got, ok := c.Get(CacheKey{Workload: 1}); !ok || got != 42 {
		t.Fatal("cache unusable after failed load")
	}
}

// TestCostCacheSaveNilAndEmpty: nil and empty caches must save loadable
// snapshots.
func TestCostCacheSaveNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var nilCache *CostCache
	if err := nilCache.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := NewCostCache(0).Load(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("empty snapshot: n=%d err=%v", n, err)
	}
	if n, err := nilCache.Load(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("nil target: n=%d err=%v", n, err)
	}
}
