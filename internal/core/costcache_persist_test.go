package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"legodb/internal/imdb"
)

// TestCostCacheSaveLoadRoundTrip: a cache saved and loaded into a fresh
// instance must answer the same keys, and saving twice must produce
// identical bytes (deterministic snapshot order).
func TestCostCacheSaveLoadRoundTrip(t *testing.T) {
	src := NewCostCache(0)
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, Cache: src,
	})
	if err != nil {
		t.Fatal(err)
	}
	if src.Stats().Entries == 0 {
		t.Fatal("search left the cache empty")
	}
	var buf1, buf2 bytes.Buffer
	if err := src.Save(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := src.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two saves of the same cache produced different bytes")
	}

	dst := NewCostCache(0)
	n, err := dst.Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != src.Stats().Entries {
		t.Fatalf("loaded %d entries, cache had %d", n, src.Stats().Entries)
	}
	// A rerun against the loaded cache must reproduce the search without
	// a single schema-level cache miss.
	warm, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, Cache: dst,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Misses != 0 {
		t.Fatalf("warm run against loaded cache missed %d times", warm.Cache.Misses)
	}
	if resultSignature(res) != resultSignature(warm) {
		t.Fatal("search against loaded cache diverged from the original run")
	}
}

// TestCostCacheLoadRejectsGarbage: loading a corrupt snapshot must fail
// cleanly and leave the cache usable.
func TestCostCacheLoadRejectsGarbage(t *testing.T) {
	c := NewCostCache(0)
	if _, err := c.Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
	c.Put(CacheKey{Workload: 1}, 42)
	if got, ok := c.Get(CacheKey{Workload: 1}); !ok || got != 42 {
		t.Fatal("cache unusable after failed load")
	}
}

// TestCostCacheSaveNilAndEmpty: nil and empty caches must save loadable
// snapshots.
func TestCostCacheSaveNilAndEmpty(t *testing.T) {
	var buf bytes.Buffer
	var nilCache *CostCache
	if err := nilCache.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := NewCostCache(0).Load(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("empty snapshot: n=%d err=%v", n, err)
	}
	if n, err := nilCache.Load(bytes.NewReader(buf.Bytes())); err != nil || n != 0 {
		t.Fatalf("nil target: n=%d err=%v", n, err)
	}
}

// snapshotBytes saves a small, non-empty cache and returns its bytes.
func snapshotBytes(t *testing.T) []byte {
	t.Helper()
	c := NewCostCache(0)
	for i := uint64(1); i <= 8; i++ {
		c.Put(CacheKey{Workload: i, Model: i * 3}, float64(i)*1.5)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loadExpectingCorrupt asserts Load rejects the bytes with
// ErrCorruptSnapshot and that the merge was a no-op.
func loadExpectingCorrupt(t *testing.T, label string, data []byte) {
	t.Helper()
	dst := NewCostCache(0)
	n, err := dst.Load(bytes.NewReader(data))
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("%s: err = %v, want ErrCorruptSnapshot", label, err)
	}
	if n != 0 || dst.Stats().Entries != 0 {
		t.Fatalf("%s: corrupt snapshot merged %d entries (cache has %d)", label, n, dst.Stats().Entries)
	}
}

// TestCostCacheLoadDetectsTruncation: a snapshot cut short anywhere —
// inside the header or inside the payload — is rejected with
// ErrCorruptSnapshot and merges nothing.
func TestCostCacheLoadDetectsTruncation(t *testing.T) {
	data := snapshotBytes(t)
	for _, cut := range []int{0, 5, snapshotHeaderLen - 1, snapshotHeaderLen, len(data) / 2, len(data) - 1} {
		loadExpectingCorrupt(t, "truncated", data[:cut])
	}
}

// TestCostCacheLoadDetectsBitFlip: a single flipped bit in the payload
// trips the checksum; one in the header trips the magic, version or
// frame validation. Either way nothing merges.
func TestCostCacheLoadDetectsBitFlip(t *testing.T) {
	data := snapshotBytes(t)
	for _, pos := range []int{0, 9, snapshotHeaderLen + 1, len(data) - 1} {
		corrupt := append([]byte(nil), data...)
		corrupt[pos] ^= 0x40
		loadExpectingCorrupt(t, "bit-flipped", corrupt)
	}
}

// TestCostCacheLoadRejectsAbsurdHeader: headers declaring entry counts
// or payload sizes past the hard bounds — or entry counts the payload
// cannot plausibly hold — are rejected before any allocation.
func TestCostCacheLoadRejectsAbsurdHeader(t *testing.T) {
	data := snapshotBytes(t)
	mutate := func(f func(hdr []byte)) []byte {
		corrupt := append([]byte(nil), data...)
		f(corrupt[:snapshotHeaderLen])
		return corrupt
	}
	loadExpectingCorrupt(t, "absurd entry count", mutate(func(hdr []byte) {
		binary.LittleEndian.PutUint64(hdr[10:18], maxSnapshotEntries+1)
	}))
	loadExpectingCorrupt(t, "absurd payload size", mutate(func(hdr []byte) {
		binary.LittleEndian.PutUint64(hdr[18:26], maxSnapshotBytes+1)
	}))
	loadExpectingCorrupt(t, "implausible entry density", mutate(func(hdr []byte) {
		binary.LittleEndian.PutUint64(hdr[10:18], 1<<20)
	}))
}

// TestLoadSnapshotFileQuarantinesCorrupt: a corrupt snapshot file is
// renamed to path+".corrupt" and reported as a warning, not an error;
// a missing file is silently fine; a healthy file round-trips.
func TestLoadSnapshotFileQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "costs.gob")

	// Missing file: cold start, no warning, no error.
	if n, warning, err := NewCostCache(0).LoadSnapshotFile(path); n != 0 || warning != "" || err != nil {
		t.Fatalf("missing file: n=%d warning=%q err=%v", n, warning, err)
	}

	// Healthy round-trip through the file helpers.
	src := NewCostCache(0)
	src.Put(CacheKey{Workload: 7}, 42)
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	dst := NewCostCache(0)
	if n, warning, err := dst.LoadSnapshotFile(path); n != 1 || warning != "" || err != nil {
		t.Fatalf("healthy file: n=%d warning=%q err=%v", n, warning, err)
	}

	// Corrupt file: quarantined, warned about, not fatal.
	data := snapshotBytes(t)
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cold := NewCostCache(0)
	n, warning, err := cold.LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("corrupt file returned error: %v", err)
	}
	if n != 0 || cold.Stats().Entries != 0 {
		t.Fatalf("corrupt file merged %d entries", n)
	}
	if warning == "" {
		t.Fatal("corrupt file produced no warning")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in place: %v", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	// The next save starts clean over the quarantined name.
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if n, warning, err := NewCostCache(0).LoadSnapshotFile(path); n != 1 || warning != "" || err != nil {
		t.Fatalf("post-quarantine save: n=%d warning=%q err=%v", n, warning, err)
	}
}
