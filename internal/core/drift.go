package core

import (
	"math"

	"legodb/internal/xquery"
)

// Workload drift: the adaptation loop compares the workload a store was
// advised for against the workload it actually serves. Both are reduced
// to distributions over canonical shape texts (the same renderings
// WorkloadID digests, with query report names stripped so labels do not
// register as drift), and compared by total variation distance — half
// the L1 distance between the normalized weight vectors over the union
// of shapes. The metric is symmetric, ranges over [0, 1], and by
// construction accounts both for weight shifts on shared shapes and for
// the full mass of shapes only one side has seen: a completely disjoint
// observed workload scores 1, an identical one scores 0.

// DriftScore measures how far the observed workload has drifted from the
// advised one, in [0, 1]. A nil or empty workload counts as having no
// shape mass: two empty workloads score 0, an empty against a non-empty
// scores 1.
func DriftScore(advised, observed *xquery.Workload) float64 {
	a := shapeDistribution(advised)
	b := shapeDistribution(observed)
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 1
	}
	d := 0.0
	for k, av := range a {
		d += math.Abs(av - b[k])
	}
	for k, bv := range b {
		if _, shared := a[k]; !shared {
			d += bv
		}
	}
	return d / 2
}

// shapeDistribution normalizes a workload's weights into a distribution
// over canonical shape keys. Entries with non-positive weight carry no
// mass and are dropped.
func shapeDistribution(w *xquery.Workload) map[string]float64 {
	if w == nil {
		return nil
	}
	m := make(map[string]float64, len(w.Entries)+len(w.Updates))
	total := 0.0
	for _, e := range w.Entries {
		if e.Weight <= 0 {
			continue
		}
		c := *e.Query
		c.Name = ""
		m["q"+c.String()] += e.Weight
		total += e.Weight
	}
	for _, u := range w.Updates {
		if u.Weight <= 0 {
			continue
		}
		m["u"+u.Update.String()] += u.Weight
		total += u.Weight
	}
	if total == 0 {
		return nil
	}
	for k := range m {
		m[k] /= total
	}
	return m
}
