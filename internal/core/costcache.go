package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"legodb/internal/fsio"
	"legodb/internal/optimizer"
	"legodb/internal/plan"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

// CacheKey identifies one costed configuration: the canonical fingerprint
// of the p-schema plus digests of the workload (queries, updates, weights,
// root count) and of the optimizer cost model. Costs depend on nothing
// else, so entries are safe to share across search iterations, across the
// greedy/beam strategy variants, and across Advise calls of one engine.
type CacheKey struct {
	Schema   xschema.Fingerprint
	Workload uint64
	Model    uint64
}

// CacheStats is a point-in-time snapshot of cache activity. All counters
// are cumulative; Result carries the delta observed during one search.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	// Dedups counts evaluations that were answered by waiting on a
	// concurrent identical evaluation (singleflight): the waiter adopted
	// the leader's cost instead of paying its own pipeline run. Every
	// dedup was first counted as a miss by Get.
	Dedups    uint64
	Evictions uint64
	Entries   int
}

// Sub returns the counter deltas s minus start (Entries is kept from s).
func (s CacheStats) Sub(start CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits - start.Hits,
		Misses:    s.Misses - start.Misses,
		Dedups:    s.Dedups - start.Dedups,
		Evictions: s.Evictions - start.Evictions,
		Entries:   s.Entries,
	}
}

// Accumulate adds the counter deltas of d into s. Entries is a
// point-in-time snapshot rather than a counter, so s takes d's value.
func (s *CacheStats) Accumulate(d CacheStats) {
	s.Hits += d.Hits
	s.Misses += d.Misses
	s.Dedups += d.Dedups
	s.Evictions += d.Evictions
	s.Entries = d.Entries
}

// HitRatio is the fraction of costings answered from the cache.
func (s CacheStats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

const cacheShards = 16

// CostCache memoizes workload costs of evaluated configurations across
// an entire search (and, when shared, across searches). It is sharded
// and safe for concurrent use by the candidate-evaluation worker pool.
// Entries are small (one key and one float64), so the default capacity
// comfortably covers every configuration the IMDB searches visit; when a
// shard fills up, the oldest entries in that shard are evicted first
// (deterministic FIFO, so repeated runs behave identically).
//
// A nil *CostCache is valid and never hits: Get misses, Put is a no-op.
type CostCache struct {
	perShard  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	dedups    atomic.Uint64
	evictions atomic.Uint64
	shards    [cacheShards]costShard
	// queries memoizes per-query translate+cost outcomes so searches
	// sharing this cache reuse each other's translations (see
	// incremental.go; not persisted by Save — entries carry live SQL
	// ASTs).
	queries queryStore
	// blocks memoizes per-block costings for the logical-plan layer so
	// structurally identical SPJ blocks cost once across union branches,
	// queries, sibling candidates and searches sharing this cache (see
	// internal/plan; like queries, not persisted by Save).
	blocks plan.Store
}

// BlockStats snapshots the shared block-costing memo's counters.
func (c *CostCache) BlockStats() plan.StoreStats {
	if c == nil {
		return plan.StoreStats{}
	}
	return c.blocks.Stats()
}

type costShard struct {
	mu      sync.Mutex
	entries map[CacheKey]float64
	order   []CacheKey // insertion order, for deterministic eviction
	// flight tracks keys whose evaluation is currently in progress, so a
	// second evaluator arriving at the same key blocks on the first
	// outcome instead of paying its own pipeline run (see
	// Evaluator.EvaluateCached). Entries live only for the duration of
	// one evaluation. Sharded alongside the entries so misses arriving
	// on different shards never contend on one global flight lock.
	flight map[CacheKey]*flightCall
}

// NewCostCache returns a cache bounded to roughly capacity entries
// (0 selects the default of 64k entries, ~2 MB).
func NewCostCache(capacity int) *CostCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	perShard := capacity / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &CostCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[CacheKey]float64)
	}
	return c
}

// shardIndex mixes the full fingerprint, not just its first byte: the
// fingerprint words are FNV output and individually uniform, but at
// registry scale (many tenants' searches in one cache) whole key
// families can share a first byte, and a one-byte shard index then piles
// them onto a few shards. Folding both 64-bit words plus the workload
// and model digests — with a rotation so the two words don't cancel on
// symmetric inputs, and a downshift so the high bits reach the shard
// index — keeps occupancy balanced. The function is pure in the key, so
// per-shard FIFO eviction remains deterministic.
func shardIndex(k CacheKey) uint64 {
	lo := binary.LittleEndian.Uint64(k.Schema[0:8])
	hi := binary.LittleEndian.Uint64(k.Schema[8:16])
	h := lo ^ (hi<<31 | hi>>33) ^ k.Workload ^ k.Model
	h ^= h >> 32
	h ^= h >> 16
	return h % cacheShards
}

func (c *CostCache) shardFor(k CacheKey) *costShard {
	return &c.shards[shardIndex(k)]
}

// flightCall is one in-flight evaluation: followers block on done, then
// read the leader's outcome.
type flightCall struct {
	done chan struct{}
	cost float64
	err  error
}

// join returns the flight call for a key, creating it when none is in
// progress. The second result is true for the caller that must perform
// the evaluation (the leader) and later publish its outcome via finish;
// false means another evaluator got there first and the caller should
// wait on call.done. join on a nil cache returns a leader call so
// callers degrade to plain evaluation.
func (c *CostCache) join(k CacheKey) (*flightCall, bool) {
	if c == nil {
		return &flightCall{done: make(chan struct{})}, true
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if call, ok := s.flight[k]; ok {
		return call, false
	}
	if s.flight == nil {
		s.flight = make(map[CacheKey]*flightCall)
	}
	call := &flightCall{done: make(chan struct{})}
	s.flight[k] = call
	return call, true
}

// finish publishes a leader's outcome and releases the followers. The
// call is removed from the flight table first, so an evaluator arriving
// after finish starts fresh (normally hitting the entry Put stored just
// before).
func (c *CostCache) finish(k CacheKey, call *flightCall, cost float64, err error) {
	call.cost, call.err = cost, err
	if c != nil {
		s := c.shardFor(k)
		s.mu.Lock()
		if s.flight[k] == call {
			delete(s.flight, k)
		}
		s.mu.Unlock()
	}
	close(call.done)
}

// countDedup records one evaluation answered by an in-flight leader.
func (c *CostCache) countDedup() {
	if c != nil {
		c.dedups.Add(1)
	}
}

// Get returns the memoized cost for the key, counting a hit or miss.
func (c *CostCache) Get(k CacheKey) (float64, bool) {
	if c == nil {
		return 0, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	cost, ok := s.entries[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return cost, ok
}

// Put memoizes the cost for the key, evicting the shard's oldest entries
// when it is full.
func (c *CostCache) Put(k CacheKey, cost float64) {
	if c == nil {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if _, exists := s.entries[k]; !exists {
		s.entries[k] = cost
		s.order = append(s.order, k)
		for len(s.entries) > c.perShard {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.entries, oldest)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
}

// cacheSnapshotVersion tags the persisted cache format; Load rejects
// snapshots written by an incompatible version. Version 2 added the
// framed header (magic, entry count, payload length, CRC32) in front of
// the gob payload.
const cacheSnapshotVersion = 2

// snapshotMagic opens every cache snapshot; anything else is corrupt or
// foreign (version 1 snapshots, being raw gob, never start with it).
var snapshotMagic = [8]byte{'L', 'D', 'B', 'C', 'A', 'C', 'H', 'E'}

const (
	// maxSnapshotEntries bounds the declared entry count Load accepts —
	// far above any real search's visit count, low enough that a forged
	// or bit-flipped header cannot drive huge allocations.
	maxSnapshotEntries = 1 << 22
	// maxSnapshotBytes bounds the gob payload Load will read.
	maxSnapshotBytes = 256 << 20
	// snapshotHeaderLen is the framed header size: magic(8) version(2)
	// entries(8) payload length(8) payload CRC32(4).
	snapshotHeaderLen = 30
)

// ErrCorruptSnapshot marks a snapshot Load rejected before merging
// anything: bad magic, wrong version, truncation, an implausible entry
// count or payload size, a checksum mismatch, or a payload that does
// not decode to the declared shape. Callers can errors.Is on it to
// quarantine the file and continue cold (see LoadSnapshotFile).
var ErrCorruptSnapshot = errors.New("core: corrupt cost-cache snapshot")

// cacheEntry is one persisted cache entry.
type cacheEntry struct {
	Key  CacheKey
	Cost float64
}

// cacheSnapshot is the gob-encoded payload of a snapshot.
type cacheSnapshot struct {
	Version int
	Entries []cacheEntry
}

// Save writes the cache's entries to w: a framed header (magic,
// version, entry count, payload length, payload CRC32) followed by the
// gob-encoded entries. Entries are emitted in shard-then-insertion
// order, so saving the same cache twice produces identical bytes. Keys
// are pure digests (no schema or query text), so snapshots leak no
// workload content.
func (c *CostCache) Save(w io.Writer) error {
	snap := cacheSnapshot{Version: cacheSnapshotVersion}
	if c != nil {
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			for _, k := range s.order {
				if cost, ok := s.entries[k]; ok {
					snap.Entries = append(snap.Entries, cacheEntry{Key: k, Cost: cost})
				}
			}
			s.mu.Unlock()
		}
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return fmt.Errorf("core: encode cost cache: %w", err)
	}
	var hdr [snapshotHeaderLen]byte
	copy(hdr[:8], snapshotMagic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], cacheSnapshotVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(snap.Entries)))
	binary.LittleEndian.PutUint64(hdr[18:26], uint64(payload.Len()))
	binary.LittleEndian.PutUint32(hdr[26:30], fsio.Checksum(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("core: write cost cache header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("core: write cost cache payload: %w", err)
	}
	return nil
}

// Load merges a snapshot written by Save into the cache, preserving the
// saved insertion order (so capacity eviction stays deterministic across
// a save/load round trip). Existing entries win over loaded ones. It
// returns the number of entries inserted.
//
// Load validates the header and the payload checksum before decoding —
// a truncated or bit-flipped snapshot is rejected with
// ErrCorruptSnapshot and the merge is a no-op — and bounds both the
// declared entry count and the payload size it will allocate for, so a
// forged header cannot force absurd allocations.
func (c *CostCache) Load(r io.Reader) (int, error) {
	var hdr [snapshotHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short header: %v", ErrCorruptSnapshot, err)
	}
	if !bytes.Equal(hdr[:8], snapshotMagic[:]) {
		return 0, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != cacheSnapshotVersion {
		return 0, fmt.Errorf("%w: snapshot version %d, want %d", ErrCorruptSnapshot, v, cacheSnapshotVersion)
	}
	declared := binary.LittleEndian.Uint64(hdr[10:18])
	payloadLen := binary.LittleEndian.Uint64(hdr[18:26])
	sum := binary.LittleEndian.Uint32(hdr[26:30])
	if declared > maxSnapshotEntries {
		return 0, fmt.Errorf("%w: %d entries exceeds limit %d", ErrCorruptSnapshot, declared, maxSnapshotEntries)
	}
	if payloadLen > maxSnapshotBytes {
		return 0, fmt.Errorf("%w: %d payload bytes exceeds limit %d", ErrCorruptSnapshot, payloadLen, maxSnapshotBytes)
	}
	// Each entry costs at least its fixed fields on the wire; a header
	// declaring far more entries than the payload could hold is forged.
	if declared > 0 && payloadLen/declared < 8 {
		return 0, fmt.Errorf("%w: %d entries implausible for %d payload bytes", ErrCorruptSnapshot, declared, payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, fmt.Errorf("%w: short payload: %v", ErrCorruptSnapshot, err)
	}
	if got := fsio.Checksum(payload); got != sum {
		return 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", ErrCorruptSnapshot, got, sum)
	}
	var snap cacheSnapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return 0, fmt.Errorf("%w: decode: %v", ErrCorruptSnapshot, err)
	}
	if snap.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("%w: payload version %d, want %d", ErrCorruptSnapshot, snap.Version, cacheSnapshotVersion)
	}
	if uint64(len(snap.Entries)) != declared {
		return 0, fmt.Errorf("%w: %d entries decoded, header declared %d", ErrCorruptSnapshot, len(snap.Entries), declared)
	}
	if c == nil {
		return 0, nil
	}
	n := 0
	for _, e := range snap.Entries {
		s := c.shardFor(e.Key)
		s.mu.Lock()
		if _, exists := s.entries[e.Key]; !exists {
			s.entries[e.Key] = e.Cost
			s.order = append(s.order, e.Key)
			n++
			for len(s.entries) > c.perShard {
				oldest := s.order[0]
				s.order = s.order[1:]
				delete(s.entries, oldest)
				c.evictions.Add(1)
			}
		}
		s.mu.Unlock()
	}
	return n, nil
}

// SaveSnapshotFile writes the cache to a snapshot file
// crash-consistently: the sibling temp file is fsynced before the
// rename and the parent directory after it, so a crash leaves either
// the previous complete snapshot or the new one — never a torn image.
func (c *CostCache) SaveSnapshotFile(path string) error {
	if err := fsio.WriteFileAtomic(path, c.Save); err != nil {
		return fmt.Errorf("core: install cache snapshot: %w", err)
	}
	return nil
}

// LoadSnapshotFile merges a snapshot file into the cache with the
// lenient semantics every binary wants from a warm-start file: a
// missing file is fine (n=0), and a corrupt one is renamed aside to
// path+".corrupt" (quarantined, so the next save starts clean and the
// evidence survives) with the cache untouched. The returned warning is
// non-empty when that happened — callers log it and continue cold. Only
// I/O errors reading an existing, well-formed file are returned as err.
func (c *CostCache) LoadSnapshotFile(path string) (n int, warning string, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, "", nil
		}
		return 0, "", fmt.Errorf("core: open cache snapshot: %w", err)
	}
	defer f.Close()
	n, err = c.Load(f)
	if err == nil {
		return n, "", nil
	}
	if !errors.Is(err, ErrCorruptSnapshot) {
		return 0, "", fmt.Errorf("core: load cache snapshot %s: %w", path, err)
	}
	quarantine := path + ".corrupt"
	if renameErr := os.Rename(path, quarantine); renameErr != nil {
		return 0, fmt.Sprintf("cache snapshot %s is corrupt (%v); continuing cold (quarantine failed: %v)", path, err, renameErr), nil
	}
	return 0, fmt.Sprintf("cache snapshot %s is corrupt (%v); quarantined to %s, continuing cold", path, err, quarantine), nil
}

// Stats snapshots the cache counters and current entry count.
func (c *CostCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Dedups:    c.dedups.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// WorkloadID digests a workload and root count into a cache-key
// component: query and update texts with their weights. Two workloads
// with the same digest cost every configuration identically.
func WorkloadID(w *xquery.Workload, rootCount float64) uint64 {
	h := fnv.New64a()
	hashFloat(h, rootCount)
	for _, e := range w.Entries {
		io.WriteString(h, "q")
		io.WriteString(h, e.Query.String())
		hashFloat(h, e.Weight)
	}
	for _, u := range w.Updates {
		io.WriteString(h, "u")
		io.WriteString(h, u.Update.String())
		hashFloat(h, u.Weight)
	}
	return h.Sum64()
}

// ModelID digests a cost model into a cache-key component; nil denotes
// the default model and digests identically to it.
func ModelID(m *optimizer.CostModel) uint64 {
	if m == nil {
		d := optimizer.DefaultModel()
		m = &d
	}
	h := fnv.New64a()
	for _, v := range []float64{
		m.PageSize, m.SeekCost, m.PageIOCost, m.RandomIOPenalty,
		m.ProbeCost, m.CPUTupleCost, m.HashCost, m.OutputByteCost,
		m.DefaultEqSelectivity, m.DefaultRangeSelectivity,
		m.WriteByteCost, m.IndexWriteCost,
	} {
		hashFloat(h, v)
	}
	return h.Sum64()
}

func hashFloat(w io.Writer, v float64) {
	var b [8]byte
	bits := math.Float64bits(v)
	for i := range b {
		b[i] = byte(bits >> (8 * i))
	}
	w.Write(b[:])
}
