package core

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"legodb/internal/optimizer"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

// CacheKey identifies one costed configuration: the canonical fingerprint
// of the p-schema plus digests of the workload (queries, updates, weights,
// root count) and of the optimizer cost model. Costs depend on nothing
// else, so entries are safe to share across search iterations, across the
// greedy/beam strategy variants, and across Advise calls of one engine.
type CacheKey struct {
	Schema   xschema.Fingerprint
	Workload uint64
	Model    uint64
}

// CacheStats is a point-in-time snapshot of cache activity. All counters
// are cumulative; Result carries the delta observed during one search.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// Sub returns the counter deltas s minus start (Entries is kept from s).
func (s CacheStats) Sub(start CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits - start.Hits,
		Misses:    s.Misses - start.Misses,
		Evictions: s.Evictions - start.Evictions,
		Entries:   s.Entries,
	}
}

const cacheShards = 16

// CostCache memoizes workload costs of evaluated configurations across
// an entire search (and, when shared, across searches). It is sharded
// and safe for concurrent use by the candidate-evaluation worker pool.
// Entries are small (one key and one float64), so the default capacity
// comfortably covers every configuration the IMDB searches visit; when a
// shard fills up, the oldest entries in that shard are evicted first
// (deterministic FIFO, so repeated runs behave identically).
//
// A nil *CostCache is valid and never hits: Get misses, Put is a no-op.
type CostCache struct {
	perShard  int
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	shards    [cacheShards]costShard
	// queries memoizes per-query translate+cost outcomes so searches
	// sharing this cache reuse each other's translations (see
	// incremental.go; not persisted by Save — entries carry live SQL
	// ASTs).
	queries queryStore
}

type costShard struct {
	mu      sync.Mutex
	entries map[CacheKey]float64
	order   []CacheKey // insertion order, for deterministic eviction
}

// NewCostCache returns a cache bounded to roughly capacity entries
// (0 selects the default of 64k entries, ~2 MB).
func NewCostCache(capacity int) *CostCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	perShard := capacity / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &CostCache{perShard: perShard}
	for i := range c.shards {
		c.shards[i].entries = make(map[CacheKey]float64)
	}
	return c
}

func (c *CostCache) shardFor(k CacheKey) *costShard {
	// The fingerprint bytes are FNV output, already uniform.
	return &c.shards[(uint64(k.Schema[0])^k.Workload^k.Model)%cacheShards]
}

// Get returns the memoized cost for the key, counting a hit or miss.
func (c *CostCache) Get(k CacheKey) (float64, bool) {
	if c == nil {
		return 0, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	cost, ok := s.entries[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return cost, ok
}

// Put memoizes the cost for the key, evicting the shard's oldest entries
// when it is full.
func (c *CostCache) Put(k CacheKey, cost float64) {
	if c == nil {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if _, exists := s.entries[k]; !exists {
		s.entries[k] = cost
		s.order = append(s.order, k)
		for len(s.entries) > c.perShard {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.entries, oldest)
			c.evictions.Add(1)
		}
	}
	s.mu.Unlock()
}

// cacheSnapshotVersion tags the persisted cache format; Load rejects
// snapshots written by an incompatible version.
const cacheSnapshotVersion = 1

// cacheEntry is one persisted cache entry.
type cacheEntry struct {
	Key  CacheKey
	Cost float64
}

// cacheSnapshot is the gob-encoded on-disk form of a CostCache.
type cacheSnapshot struct {
	Version int
	Entries []cacheEntry
}

// Save writes the cache's entries to w (gob-encoded). Entries are
// emitted in shard-then-insertion order, so saving the same cache twice
// produces identical bytes. Keys are pure digests (no schema or query
// text), so snapshots leak no workload content.
func (c *CostCache) Save(w io.Writer) error {
	snap := cacheSnapshot{Version: cacheSnapshotVersion}
	if c != nil {
		for i := range c.shards {
			s := &c.shards[i]
			s.mu.Lock()
			for _, k := range s.order {
				if cost, ok := s.entries[k]; ok {
					snap.Entries = append(snap.Entries, cacheEntry{Key: k, Cost: cost})
				}
			}
			s.mu.Unlock()
		}
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load merges a snapshot written by Save into the cache, preserving the
// saved insertion order (so capacity eviction stays deterministic across
// a save/load round trip). Existing entries win over loaded ones. It
// returns the number of entries inserted.
func (c *CostCache) Load(r io.Reader) (int, error) {
	var snap cacheSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return 0, fmt.Errorf("core: decode cost cache: %w", err)
	}
	if snap.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("core: cost cache snapshot version %d, want %d", snap.Version, cacheSnapshotVersion)
	}
	if c == nil {
		return 0, nil
	}
	n := 0
	for _, e := range snap.Entries {
		s := c.shardFor(e.Key)
		s.mu.Lock()
		if _, exists := s.entries[e.Key]; !exists {
			s.entries[e.Key] = e.Cost
			s.order = append(s.order, e.Key)
			n++
			for len(s.entries) > c.perShard {
				oldest := s.order[0]
				s.order = s.order[1:]
				delete(s.entries, oldest)
				c.evictions.Add(1)
			}
		}
		s.mu.Unlock()
	}
	return n, nil
}

// Stats snapshots the cache counters and current entry count.
func (c *CostCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
	return st
}

// WorkloadID digests a workload and root count into a cache-key
// component: query and update texts with their weights. Two workloads
// with the same digest cost every configuration identically.
func WorkloadID(w *xquery.Workload, rootCount float64) uint64 {
	h := fnv.New64a()
	hashFloat(h, rootCount)
	for _, e := range w.Entries {
		io.WriteString(h, "q")
		io.WriteString(h, e.Query.String())
		hashFloat(h, e.Weight)
	}
	for _, u := range w.Updates {
		io.WriteString(h, "u")
		io.WriteString(h, u.Update.String())
		hashFloat(h, u.Weight)
	}
	return h.Sum64()
}

// ModelID digests a cost model into a cache-key component; nil denotes
// the default model and digests identically to it.
func ModelID(m *optimizer.CostModel) uint64 {
	if m == nil {
		d := optimizer.DefaultModel()
		m = &d
	}
	h := fnv.New64a()
	for _, v := range []float64{
		m.PageSize, m.SeekCost, m.PageIOCost, m.RandomIOPenalty,
		m.ProbeCost, m.CPUTupleCost, m.HashCost, m.OutputByteCost,
		m.DefaultEqSelectivity, m.DefaultRangeSelectivity,
		m.WriteByteCost, m.IndexWriteCost,
	} {
		hashFloat(h, v)
	}
	return h.Sum64()
}

func hashFloat(w io.Writer, v float64) {
	var b [8]byte
	bits := math.Float64bits(v)
	for i := range b {
		b[i] = byte(bits >> (8 * i))
	}
	w.Write(b[:])
}
