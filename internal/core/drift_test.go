package core

import (
	"math"
	"testing"

	"legodb/internal/xquery"
)

func wl(entries ...struct {
	text   string
	name   string
	weight float64
}) *xquery.Workload {
	w := &xquery.Workload{}
	for _, e := range entries {
		q := xquery.MustParse(e.text)
		q.Name = e.name
		w.Add(q, e.weight)
	}
	return w
}

type we = struct {
	text   string
	name   string
	weight float64
}

const (
	qTitle = `FOR $v IN imdb/show RETURN $v/title`
	qYear  = `FOR $v IN imdb/show RETURN $v/year`
	qBoth  = `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`
)

func TestDriftScoreIdentical(t *testing.T) {
	a := wl(we{qTitle, "Q1", 1}, we{qYear, "Q2", 3})
	b := wl(we{qTitle, "", 2}, we{qYear, "", 6}) // same distribution, scaled, unnamed
	if d := DriftScore(a, b); d != 0 {
		t.Errorf("identical distributions drift = %v, want 0 (names and scale must not register)", d)
	}
}

func TestDriftScoreDisjoint(t *testing.T) {
	a := wl(we{qTitle, "", 1})
	b := wl(we{qYear, "", 1})
	if d := DriftScore(a, b); d != 1 {
		t.Errorf("disjoint workloads drift = %v, want 1", d)
	}
}

func TestDriftScorePartialShift(t *testing.T) {
	// Advised 50/50, observed 90/10 over the same two shapes:
	// TV distance = (|0.5-0.9| + |0.5-0.1|)/2 = 0.4.
	a := wl(we{qTitle, "", 1}, we{qYear, "", 1})
	b := wl(we{qTitle, "", 9}, we{qYear, "", 1})
	if d := DriftScore(a, b); math.Abs(d-0.4) > 1e-12 {
		t.Errorf("drift = %v, want 0.4", d)
	}
}

func TestDriftScoreNewShapeMass(t *testing.T) {
	// Observed splits half its mass onto a shape the advisor never saw:
	// TV = (|1-0.5| + 0.5)/2 = 0.5.
	a := wl(we{qTitle, "", 1})
	b := wl(we{qTitle, "", 1}, we{qBoth, "", 1})
	if d := DriftScore(a, b); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("drift = %v, want 0.5", d)
	}
}

func TestDriftScoreSymmetric(t *testing.T) {
	a := wl(we{qTitle, "", 3}, we{qYear, "", 1})
	b := wl(we{qYear, "", 2}, we{qBoth, "", 5})
	if d1, d2 := DriftScore(a, b), DriftScore(b, a); d1 != d2 {
		t.Errorf("asymmetric drift: %v vs %v", d1, d2)
	}
}

func TestDriftScoreEmpty(t *testing.T) {
	full := wl(we{qTitle, "", 1})
	if d := DriftScore(nil, nil); d != 0 {
		t.Errorf("nil/nil drift = %v, want 0", d)
	}
	if d := DriftScore(&xquery.Workload{}, &xquery.Workload{}); d != 0 {
		t.Errorf("empty/empty drift = %v, want 0", d)
	}
	if d := DriftScore(nil, full); d != 1 {
		t.Errorf("nil/full drift = %v, want 1", d)
	}
	if d := DriftScore(full, nil); d != 1 {
		t.Errorf("full/nil drift = %v, want 1", d)
	}
	// Zero-weight entries carry no mass.
	zero := wl(we{qTitle, "", 0})
	if d := DriftScore(zero, full); d != 1 {
		t.Errorf("zero-mass/full drift = %v, want 1", d)
	}
}

func TestDriftScoreUpdates(t *testing.T) {
	q := xquery.MustParse(qTitle)
	upd := xquery.MustParseUpdate("DELETE imdb/show")
	a := &xquery.Workload{}
	a.Add(q, 1)
	b := &xquery.Workload{}
	b.Add(q, 1)
	b.AddUpdate(upd, 1)
	d := DriftScore(a, b)
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("update-shape drift = %v, want 0.5", d)
	}
}
