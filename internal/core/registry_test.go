package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"legodb/internal/faults"
	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/xschema"
)

func registryTestSchema(t *testing.T) *xschema.Schema {
	t.Helper()
	ps, err := pschema.AllInlined(imdb.AnnotatedSchema())
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// TestSingleflightExactlyOneEvaluation is the dedup contract: M
// evaluators (M tenant engines in miniature) concurrently costing the
// same key through one shared cache perform exactly one full pipeline
// run between them; everyone else adopts the leader's outcome (a dedup)
// or hits the entry it stored (a hit).
func TestSingleflightExactlyOneEvaluation(t *testing.T) {
	const M = 8
	ps := registryTestSchema(t)
	reg := NewCacheRegistry(0)
	start := reg.Stats().Cache

	evals := make([]*Evaluator, M)
	costs := make([]float64, M)
	var barrier, done sync.WaitGroup
	barrier.Add(1)
	for i := 0; i < M; i++ {
		evals[i] = &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: reg.Attach()}
		done.Add(1)
		go func(i int) {
			defer done.Done()
			barrier.Wait()
			cfg, _, err := evals[i].EvaluateCached(context.Background(), ps)
			if err != nil {
				t.Errorf("evaluator %d: %v", i, err)
				return
			}
			costs[i] = cfg.Cost
		}(i)
	}
	barrier.Done()
	done.Wait()

	var total uint64
	for _, e := range evals {
		total += e.Evals()
	}
	if total != 1 {
		t.Fatalf("M=%d concurrent identical evaluations ran %d pipelines, want exactly 1", M, total)
	}
	for i := 1; i < M; i++ {
		if costs[i] != costs[0] {
			t.Fatalf("evaluator %d adopted cost %g, leader computed %g", i, costs[i], costs[0])
		}
	}
	st := reg.Stats()
	if st.Engines != M {
		t.Fatalf("Engines = %d, want %d", st.Engines, M)
	}
	delta := st.Cache.Sub(start)
	if delta.Hits+delta.Dedups != M-1 {
		t.Fatalf("hits %d + dedups %d != %d non-leaders (stats %+v)", delta.Hits, delta.Dedups, M-1, delta)
	}
}

// TestSingleflightLeaderErrorReleasesWaiters: a leader whose pipeline
// fails must wake its waiters and let them evaluate independently — the
// error may be private to the leader (here a one-shot injected fault) —
// and nothing may deadlock.
func TestSingleflightLeaderErrorReleasesWaiters(t *testing.T) {
	ps := registryTestSchema(t)
	cache := NewCostCache(0)
	restore := faults.Enable(faults.SiteMap, 1, false)
	defer restore()

	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		e := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: cache,
			DisableIncremental: true}
		wg.Add(1)
		go func(i int, e *Evaluator) {
			defer wg.Done()
			_, _, err := e.EvaluateCached(context.Background(), ps)
			errs[i] = err
		}(i, e)
	}
	wg.Wait()
	failures := 0
	for _, err := range errs {
		if err != nil {
			failures++
			if !errors.Is(err, faults.ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
		}
	}
	if failures != 1 {
		t.Fatalf("one-shot fault produced %d failures, want exactly 1 (errs=%v)", failures, errs)
	}
}

// TestSingleflightLeaderPanicReleasesWaiters: the deferred finish must
// fire when the leader's evaluation panics out of EvaluateCached, so
// waiters self-evaluate instead of blocking forever.
func TestSingleflightLeaderPanicReleasesWaiters(t *testing.T) {
	ps := registryTestSchema(t)
	cache := NewCostCache(0)
	restore := faults.Enable(faults.SiteMap, 1, true)
	defer restore()

	outcomes := make([]string, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		e := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: cache,
			DisableIncremental: true}
		wg.Add(1)
		go func(i int, e *Evaluator) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					outcomes[i] = "panic"
				}
			}()
			if _, _, err := e.EvaluateCached(context.Background(), ps); err != nil {
				outcomes[i] = "error"
			} else {
				outcomes[i] = "ok"
			}
		}(i, e)
	}
	wg.Wait()
	panics, oks := 0, 0
	for _, o := range outcomes {
		switch o {
		case "panic":
			panics++
		case "ok":
			oks++
		}
	}
	if panics != 1 || oks != 1 {
		t.Fatalf("outcomes = %v, want exactly one panic and one success", outcomes)
	}
}

// TestSingleflightFlightLifecycle exercises the join/finish primitives:
// a second joiner never leads, finish removes the entry (so the next
// join leads again), and finish publishes cost and error to waiters.
func TestSingleflightFlightLifecycle(t *testing.T) {
	cache := NewCostCache(0)
	key := CacheKey{Workload: 1, Model: 2}
	call, leader := cache.join(key)
	if !leader {
		t.Fatal("expected to lead an empty flight")
	}
	follower, leads := cache.join(key)
	if leads || follower != call {
		t.Fatal("second join must follow the in-flight call")
	}
	select {
	case <-call.done:
		t.Fatal("flight completed before finish")
	default:
	}
	cache.finish(key, call, 42, nil)
	<-follower.done
	if follower.cost != 42 || follower.err != nil {
		t.Fatalf("follower saw (%g, %v), want (42, nil)", follower.cost, follower.err)
	}
	if _, leads := cache.join(key); !leads {
		t.Fatal("finished flight must be re-leadable")
	}
}

// TestRegistrySnapshotRoundTrip: one fleet's registry snapshot warms
// another registry through the framed+CRC format, byte-deterministically.
func TestRegistrySnapshotRoundTrip(t *testing.T) {
	ps := registryTestSchema(t)
	reg := NewCacheRegistry(0)
	e := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: reg.Attach()}
	if _, _, err := e.EvaluateCached(context.Background(), ps); err != nil {
		t.Fatal(err)
	}

	var snap1, snap2 bytes.Buffer
	if err := reg.Save(&snap1); err != nil {
		t.Fatal(err)
	}
	if err := reg.Save(&snap2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
		t.Fatal("registry snapshots of identical state differ")
	}

	warm := NewCacheRegistry(0)
	n, err := warm.Load(bytes.NewReader(snap1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n != reg.Stats().Cache.Entries {
		t.Fatalf("loaded %d entries, registry held %d", n, reg.Stats().Cache.Entries)
	}
	// A warmed fleet answers the same costing without any pipeline run.
	e2 := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: warm.Attach()}
	cfg, hit, err := e2.EvaluateCached(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || e2.Evals() != 0 {
		t.Fatalf("warmed registry missed (hit=%v, evals=%d)", hit, e2.Evals())
	}
	if cfg.Cost <= 0 {
		t.Fatalf("cost = %g", cfg.Cost)
	}
}

// TestNilRegistryIsInert: a nil registry hands out nil caches and zero
// stats without panicking.
func TestNilRegistryIsInert(t *testing.T) {
	var r *CacheRegistry
	if r.Cache() != nil || r.Attach() != nil {
		t.Fatal("nil registry returned a cache")
	}
	if st := r.Stats(); st.Engines != 0 || st.Cache.Entries != 0 {
		t.Fatalf("nil registry stats = %+v", st)
	}
	if n, _, err := r.LoadSnapshotFile("/nonexistent"); n != 0 || err != nil {
		t.Fatalf("nil registry load = %d, %v", n, err)
	}
}
