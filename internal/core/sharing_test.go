package core

import (
	"context"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xquery"
)

// TestPlanSharingDifferential: every search outcome — per-iteration
// costs, applied transformations, final DDL — must be byte-identical
// with shared subplan costing on and off, across strategies, workloads
// and worker counts. Sharing may only change how many optimizer block
// costings run, never what they return.
func TestPlanSharingDifferential(t *testing.T) {
	for _, strategy := range []Strategy{GreedySO, GreedySI} {
		for _, wl := range []struct {
			name string
			make func() *xquery.Workload
		}{
			{"lookup", imdb.LookupWorkload},
			{"publish", imdb.PublishWorkload},
		} {
			for _, workers := range []int{1, 8} {
				var sigs [2]string
				var reses [2]*Result
				for i, disable := range []bool{false, true} {
					res, err := GreedySearch(context.Background(), imdb.Schema(), wl.make(), imdb.Stats(), Options{
						Strategy: strategy, Workers: workers, Cache: NewCostCache(0), DisableSharing: disable,
					})
					if err != nil {
						t.Fatalf("%v/%s/workers=%d sharing=%v: %v", strategy, wl.name, workers, !disable, err)
					}
					sigs[i] = resultSignature(res)
					reses[i] = res
				}
				if sigs[0] != sigs[1] {
					t.Errorf("%v/%s/workers=%d: sharing changed the outcome:\n--- shared\n%s\n--- unshared\n%s",
						strategy, wl.name, workers, sigs[0], sigs[1])
				}
				if reses[0].BlocksCosted >= reses[0].BlocksRequested {
					t.Errorf("%v/%s/workers=%d: sharing never engaged: %d costed of %d requested",
						strategy, wl.name, workers, reses[0].BlocksCosted, reses[0].BlocksRequested)
				}
				if reses[1].BlocksRequested != 0 {
					t.Errorf("%v/%s/workers=%d: disabled sharing still routed %d blocks through the plan layer",
						strategy, wl.name, workers, reses[1].BlocksRequested)
				}
			}
		}
	}
}

// TestBeamSharingDifferential mirrors the greedy differential for beam
// search at width 3.
func TestBeamSharingDifferential(t *testing.T) {
	var sigs [2]string
	for i, disable := range []bool{false, true} {
		res, err := BeamSearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), BeamOptions{
			Options: Options{Strategy: GreedySO, Cache: NewCostCache(0), DisableSharing: disable},
			Width:   3,
		})
		if err != nil {
			t.Fatalf("sharing=%v: %v", !disable, err)
		}
		sigs[i] = resultSignature(res)
		if !disable && res.BlocksCosted >= res.BlocksRequested {
			t.Errorf("beam search never shared a block: %d costed of %d requested",
				res.BlocksCosted, res.BlocksRequested)
		}
	}
	if sigs[0] != sigs[1] {
		t.Errorf("sharing changed the beam outcome:\n--- shared\n%s\n--- unshared\n%s", sigs[0], sigs[1])
	}
}

// TestSharingCountersReachReport: the search report must carry the
// block-sharing counters so cmd/bench and cmd/experiments can surface
// them.
func TestSharingCountersReachReport(t *testing.T) {
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, Cache: NewCostCache(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRequested == 0 {
		t.Fatal("no blocks routed through the plan layer on a default search")
	}
	if res.BlocksCosted == 0 || res.BlocksCosted >= res.BlocksRequested {
		t.Fatalf("implausible sharing counters: %d costed of %d requested", res.BlocksCosted, res.BlocksRequested)
	}
}
