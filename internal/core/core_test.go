package core

import (
	"context"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

func TestEvaluatorCostsPaperWorkloads(t *testing.T) {
	s := imdb.AnnotatedSchema()
	ps, err := pschema.AllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*xquery.Workload{imdb.LookupWorkload(), imdb.PublishWorkload(), imdb.W1(), imdb.W2()} {
		cost, err := GetPSchemaCost(ps, w, 1)
		if err != nil {
			t.Fatalf("GetPSchemaCost: %v", err)
		}
		if cost <= 0 {
			t.Fatalf("cost = %g", cost)
		}
	}
}

func TestGreedySOConvergesOnLookup(t *testing.T) {
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO,
	})
	if err != nil {
		t.Fatalf("GreedySearch: %v", err)
	}
	if res.Best.Cost > res.InitialCost {
		t.Fatalf("final cost %.1f worse than initial %.1f", res.Best.Cost, res.InitialCost)
	}
	// Costs must be monotonically non-increasing per iteration.
	prev := res.InitialCost
	for i, it := range res.Trace {
		if it.Cost > prev {
			t.Fatalf("iteration %d increased cost: %.1f -> %.1f", i, prev, it.Cost)
		}
		prev = it.Cost
	}
	if err := pschema.Check(res.Best.Schema); err != nil {
		t.Fatalf("best schema not physical: %v", err)
	}
}

func TestGreedySIConvergesOnPublish(t *testing.T) {
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.PublishWorkload(), imdb.Stats(), Options{
		Strategy: GreedySI,
	})
	if err != nil {
		t.Fatalf("GreedySearch: %v", err)
	}
	if res.Best.Cost > res.InitialCost {
		t.Fatalf("final cost %.1f worse than initial %.1f", res.Best.Cost, res.InitialCost)
	}
	if err := pschema.Check(res.Best.Schema); err != nil {
		t.Fatalf("best schema not physical: %v", err)
	}
}

// TestGreedySOImprovesSubstantiallyOnLookup mirrors Figure 10: the fully
// outlined starting point costs much more than the converged lookup
// configuration.
func TestGreedySOImprovesSubstantiallyOnLookup(t *testing.T) {
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.PublishWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("greedy-so applied no inlining on the publish workload")
	}
	if res.Best.Cost >= res.InitialCost*0.9 {
		t.Fatalf("expected substantial improvement: initial %.1f, final %.1f", res.InitialCost, res.Best.Cost)
	}
}

func TestThresholdStopsEarlier(t *testing.T) {
	full, err := GreedySearch(context.Background(), imdb.Schema(), imdb.PublishWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO,
	})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := GreedySearch(context.Background(), imdb.Schema(), imdb.PublishWorkload(), imdb.Stats(), Options{
		Strategy:  GreedySO,
		Threshold: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cut.Trace) > len(full.Trace) {
		t.Fatalf("threshold search ran longer: %d vs %d iterations", len(cut.Trace), len(full.Trace))
	}
	if len(full.Trace) > 1 && len(cut.Trace) >= len(full.Trace) {
		t.Logf("threshold did not cut iterations (%d vs %d); acceptable but unusual", len(cut.Trace), len(full.Trace))
	}
}

func TestMaxIterationsBound(t *testing.T) {
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.PublishWorkload(), imdb.Stats(), Options{
		Strategy:      GreedySO,
		MaxIterations: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) > 2 {
		t.Fatalf("trace = %d iterations, want ≤ 2", len(res.Trace))
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	if _, err := GreedySearch(context.Background(), imdb.Schema(), &xquery.Workload{}, imdb.Stats(), Options{}); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestBothStrategiesConvergeToSimilarCosts(t *testing.T) {
	// Section 5.2: "both strategies converge to similar costs". Allow a
	// generous factor since the starting points differ in union handling.
	so, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{Strategy: GreedySO})
	if err != nil {
		t.Fatal(err)
	}
	si, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{Strategy: GreedySI})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := so.Best.Cost, si.Best.Cost
	if lo > hi {
		lo, hi = hi, lo
	}
	if hi > 5*lo {
		t.Fatalf("strategies diverge: greedy-so %.1f vs greedy-si %.1f", so.Best.Cost, si.Best.Cost)
	}
}

func TestGreedyFullUsesRicherMoves(t *testing.T) {
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.W2(), imdb.Stats(), Options{
		Strategy:       GreedyFull,
		WildcardLabels: map[string]float64{"nyt": 0.25},
		MaxIterations:  6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Cost > res.InitialCost {
		t.Fatalf("full search worsened cost: %.1f -> %.1f", res.InitialCost, res.Best.Cost)
	}
}

func TestCustomMoveSet(t *testing.T) {
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.W2(), imdb.Stats(), Options{
		Strategy: GreedySI,
		Kinds:    []transform.Kind{transform.KindUnionDistribute, transform.KindOutline},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
}

func TestInitialSchemaVariants(t *testing.T) {
	s := imdb.AnnotatedSchema()
	for _, st := range []Strategy{GreedySO, GreedySI, GreedyFull} {
		ps, err := InitialSchema(s, st)
		if err != nil {
			t.Errorf("%v: %v", st, err)
			continue
		}
		if err := pschema.Check(ps); err != nil {
			t.Errorf("%v initial schema not physical: %v", st, err)
		}
	}
}

func TestSearchPreservesDocumentValidity(t *testing.T) {
	// The best schema found by greedy-so (semantics-preserving moves on a
	// strictly equivalent starting point) must accept the same documents
	// as the original schema.
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{Strategy: GreedySO})
	if err != nil {
		t.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 15, Seed: 2})
	if !res.Best.Schema.Valid(doc) {
		t.Fatal("best schema rejects a valid IMDB document")
	}
	_ = xschema.Clone // keep import shape stable
}

func TestParallelSearchMatchesSequential(t *testing.T) {
	seq, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, Workers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Best.Cost != par.Best.Cost {
		t.Fatalf("parallel search diverged: %.4f vs %.4f", seq.Best.Cost, par.Best.Cost)
	}
	if len(seq.Trace) != len(par.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(seq.Trace), len(par.Trace))
	}
	for i := range seq.Trace {
		if seq.Trace[i].Applied != par.Trace[i].Applied {
			t.Fatalf("iteration %d applied different moves: %s vs %s",
				i, seq.Trace[i].Applied, par.Trace[i].Applied)
		}
	}
}
