package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/optimizer"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

func testKey(i int) CacheKey {
	var fp xschema.Fingerprint
	fp[0] = byte(i)
	fp[1] = byte(i >> 8)
	fp[2] = byte(i >> 16)
	return CacheKey{Schema: fp, Workload: 1, Model: 2}
}

func TestCostCacheGetPut(t *testing.T) {
	c := NewCostCache(0)
	k := testKey(7)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, 42.5)
	cost, ok := c.Get(k)
	if !ok || cost != 42.5 {
		t.Fatalf("Get = %v, %v; want 42.5, true", cost, ok)
	}
	// Put of an existing key keeps the first value (costs are
	// deterministic, so a second Put can only carry the same cost).
	c.Put(k, 42.5)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCostCacheNilSafe(t *testing.T) {
	var c *CostCache
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(testKey(1), 1)
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestCostCacheEvictsOldestFirst(t *testing.T) {
	// Capacity 16 → one entry per shard; each shard evicts its previous
	// occupant as soon as a second key lands there.
	c := NewCostCache(cacheShards)
	const n = 10 * cacheShards
	for i := 0; i < n; i++ {
		c.Put(testKey(i), float64(i))
	}
	st := c.Stats()
	if st.Entries > cacheShards {
		t.Fatalf("entries = %d, want ≤ %d", st.Entries, cacheShards)
	}
	if st.Evictions != uint64(n-st.Entries) {
		t.Fatalf("evictions = %d, want %d", st.Evictions, n-st.Entries)
	}
	// Whatever survived must be the newest key of its shard: re-inserting
	// all keys oldest-first and checking that early keys are gone.
	if _, ok := c.Get(testKey(0)); ok {
		t.Fatal("oldest key survived a full wrap of its shard")
	}
	if _, ok := c.Get(testKey(n - 1)); !ok {
		t.Fatal("newest key was evicted")
	}
}

func TestCostCacheConcurrent(t *testing.T) {
	// Hammer one small cache from many goroutines; run under -race this
	// verifies the sharded locking. Values are a function of the key, so
	// any hit must return the writer's value.
	c := NewCostCache(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := testKey((g*2000 + i) % 500)
				want := float64((g*2000 + i) % 500)
				if cost, ok := c.Get(k); ok && cost != want {
					panic(fmt.Sprintf("key %v: got %v want %v", k, cost, want))
				}
				c.Put(k, want)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*2000 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*2000)
	}
}

func TestWorkloadIDSeparatesWorkloads(t *testing.T) {
	lookup := WorkloadID(imdb.LookupWorkload(), 1)
	publish := WorkloadID(imdb.PublishWorkload(), 1)
	if lookup == publish {
		t.Fatal("lookup and publish workloads digest identically")
	}
	if lookup != WorkloadID(imdb.LookupWorkload(), 1) {
		t.Fatal("WorkloadID not stable across constructions")
	}
	if lookup == WorkloadID(imdb.LookupWorkload(), 2) {
		t.Fatal("root count ignored by WorkloadID")
	}
	// Weights matter: scaling one entry's weight changes the digest.
	w := imdb.LookupWorkload()
	w.Entries[0].Weight *= 2
	if WorkloadID(w, 1) == lookup {
		t.Fatal("entry weight ignored by WorkloadID")
	}
	// Updates matter.
	u := imdb.LookupWorkload()
	u.AddUpdate(xquery.MustParseUpdate("INSERT imdb/show"), 3)
	if WorkloadID(u, 1) == lookup {
		t.Fatal("updates ignored by WorkloadID")
	}
}

func TestModelIDNilMeansDefault(t *testing.T) {
	d := optimizer.DefaultModel()
	if ModelID(nil) != ModelID(&d) {
		t.Fatal("nil model digests differently from DefaultModel")
	}
	tweaked := optimizer.DefaultModel()
	tweaked.SeekCost *= 2
	if ModelID(&tweaked) == ModelID(nil) {
		t.Fatal("model fields ignored by ModelID")
	}
}

// TestCacheHitsAcrossEvaluators: two evaluators sharing one cache agree,
// and the second run is answered from memory.
func TestCacheHitsAcrossEvaluators(t *testing.T) {
	cache := NewCostCache(0)
	ps, err := InitialSchema(imdb.AnnotatedSchema(), GreedySO)
	if err != nil {
		t.Fatal(err)
	}
	e1 := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: cache}
	cfg1, hit1, err := e1.EvaluateCached(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if hit1 {
		t.Fatal("first evaluation hit an empty cache")
	}
	if cfg1.Catalog == nil {
		t.Fatal("miss did not return a full configuration")
	}
	e2 := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: cache}
	cfg2, hit2, err := e2.EvaluateCached(context.Background(), ps.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !hit2 {
		t.Fatal("identical schema+workload missed the shared cache")
	}
	if cfg2.Cost != cfg1.Cost {
		t.Fatalf("cached cost %v != evaluated cost %v", cfg2.Cost, cfg1.Cost)
	}
	if cfg2.Catalog != nil {
		t.Fatal("cache hit claimed to carry a catalog")
	}
	if e2.Evals() != 0 {
		t.Fatalf("hit ran %d full evaluations", e2.Evals())
	}
	// Materialize completes the hit and must reproduce the cost exactly.
	full, err := e2.Materialize(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cost != cfg1.Cost || full.Catalog == nil {
		t.Fatalf("materialized cost %v (catalog %v), want %v", full.Cost, full.Catalog != nil, cfg1.Cost)
	}
	if full.Catalog.SQL() != cfg1.Catalog.SQL() {
		t.Fatal("materialized catalog differs from directly evaluated catalog")
	}
}

// TestCacheKeySeparatesWorkloadsEndToEnd: the same schema under two
// workloads must never cross-hit.
func TestCacheKeySeparatesWorkloadsEndToEnd(t *testing.T) {
	cache := NewCostCache(0)
	ps, err := InitialSchema(imdb.AnnotatedSchema(), GreedySO)
	if err != nil {
		t.Fatal(err)
	}
	a := &Evaluator{Workload: imdb.LookupWorkload(), RootCount: 1, Cache: cache}
	b := &Evaluator{Workload: imdb.PublishWorkload(), RootCount: 1, Cache: cache}
	ca, _, err := a.EvaluateCached(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	cb, hit, err := b.EvaluateCached(context.Background(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different workload hit the other workload's entry")
	}
	if ca.Cost == cb.Cost {
		t.Logf("note: lookup and publish cost the same on the initial schema (%v)", ca.Cost)
	}
}

// TestShardDistributionMixesFullFingerprint regresses the one-byte shard
// index: keys whose fingerprints agree on the first word (as whole key
// families can at registry scale) must still spread across every shard,
// because shardFor folds all fingerprint words into the index.
func TestShardDistributionMixesFullFingerprint(t *testing.T) {
	const n = 1 << 12
	occupancy := make(map[uint64]int)
	for i := 0; i < n; i++ {
		var fp xschema.Fingerprint
		// First word fixed; only the second word varies (hashed so the
		// bytes are uniform, as real FNV fingerprint output is).
		h := mixUint64(fnvOffset64, uint64(i))
		for b := 0; b < 8; b++ {
			fp[8+b] = byte(h >> (8 * b))
		}
		occupancy[shardIndex(CacheKey{Schema: fp, Workload: 1, Model: 2})]++
	}
	if len(occupancy) != cacheShards {
		t.Fatalf("keys varying only past Schema[0] reached %d of %d shards", len(occupancy), cacheShards)
	}
	mean := n / cacheShards
	for shard, got := range occupancy {
		if got > 2*mean || got < mean/2 {
			t.Fatalf("shard %d holds %d of %d keys (mean %d): occupancy unbalanced", shard, got, n, mean)
		}
	}
}

// TestShardIndexDeterministic: shard placement is a pure function of the
// key (no per-cache seed), preserving deterministic per-shard FIFO
// eviction and save/load round trips.
func TestShardIndexDeterministic(t *testing.T) {
	for i := 0; i < 256; i++ {
		k := testKey(i)
		if a, b := shardIndex(k), shardIndex(k); a != b {
			t.Fatalf("key %d sharded to %d then %d", i, a, b)
		}
		if shardIndex(k) >= cacheShards {
			t.Fatalf("shard index out of range for key %d", i)
		}
	}
}
