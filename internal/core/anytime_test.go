package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"legodb/internal/faults"
	"legodb/internal/imdb"
	"legodb/internal/pschema"
)

// TestCancelMidSearchReturnsBestSoFar: cancelling the context while a
// Workers:8 search is in flight must return the best configuration
// found so far (not an error), report the cancellation, and leave no
// worker goroutines behind. The initial cost is pre-warmed into the
// cache so the cancellation always lands in candidate evaluation, never
// in the (pre-anytime) initial one. The cancel fires from a costing
// fault hook after a fixed number of optimizer calls — a deterministic
// mid-iteration point, where the old wall-clock timer raced the search
// on fast or slow machines.
func TestCancelMidSearchReturnsBestSoFar(t *testing.T) {
	wkld := imdb.LookupWorkload()
	cache := NewCostCache(0)
	warmInitialCost(t, GreedySO, wkld, cache)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var costings atomic.Int64
	restore := faults.EnableHook(faults.SiteQueryCost, -1, func() {
		if costings.Add(1) == 20 {
			cancel()
		}
	})
	defer restore()
	res, err := GreedySearch(ctx, imdb.Schema(), wkld, imdb.Stats(), Options{
		Strategy: GreedySO, Workers: 8, Cache: cache, DisableIncremental: true,
	})
	if err != nil {
		t.Fatalf("cancelled search returned error instead of best-so-far: %v", err)
	}
	if res.Report.Stop != StopCancelled {
		t.Fatalf("stop = %s, want %s", res.Report.Stop, StopCancelled)
	}
	if !res.Report.Stop.Interrupted() {
		t.Fatal("StopCancelled must report Interrupted")
	}
	if res.Best.Schema == nil || res.Best.Catalog == nil {
		t.Fatal("best-so-far configuration is incomplete")
	}
	if err := pschema.Check(res.Best.Schema); err != nil {
		t.Fatalf("best-so-far schema not physical: %v", err)
	}
	if res.Best.Cost > res.InitialCost {
		t.Fatalf("best-so-far cost %.1f worse than initial %.1f", res.Best.Cost, res.InitialCost)
	}
	// The worker pool must drain: no goroutine leak once the search
	// returns (settle loop tolerates scheduler lag).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutine leak after cancelled search: %d before, %d after", before, g)
	}
}

// TestBudgetIsAnytimeAndMonotone: Options.Budget bounds the candidate
// evaluations (anytime stop, not an error), and with Workers:1 —
// deterministic evaluation order, so a smaller budget's evaluations are
// a prefix of a larger one's — the final cost is monotone non-increasing
// in the budget.
func TestBudgetIsAnytimeAndMonotone(t *testing.T) {
	budgets := []int{4, 16, 64, 256}
	prev := -1.0
	for i, b := range budgets {
		res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
			Strategy: GreedySO, Workers: 1, Budget: b, DisableCache: true,
		})
		if err != nil {
			t.Fatalf("budget %d: %v", b, err)
		}
		if res.Report.Evaluated > int64(b) {
			t.Fatalf("budget %d: evaluated %d candidates", b, res.Report.Evaluated)
		}
		if res.Report.Stop != StopBudget && res.Report.Stop != StopConverged {
			t.Fatalf("budget %d: stop = %s", b, res.Report.Stop)
		}
		if err := pschema.Check(res.Best.Schema); err != nil {
			t.Fatalf("budget %d: best schema not physical: %v", b, err)
		}
		if i == 0 && res.Report.Stop != StopBudget {
			t.Fatalf("budget %d did not interrupt the search (stop = %s)", b, res.Report.Stop)
		}
		if i > 0 && res.Best.Cost > prev {
			t.Fatalf("cost not monotone in budget: %.4f at budget %d, %.4f at budget %d",
				prev, budgets[i-1], res.Best.Cost, b)
		}
		prev = res.Best.Cost
	}
}

// TestDeadlineStopsSearch: Options.Deadline bounds the wall clock and
// reports StopDeadline with a usable best-so-far. Every costing blocks
// on a gate a timer opens well after the deadline, so the deadline is
// guaranteed to be what stops the search — without the old approach of
// amplifying the workload until candidate evaluation happened to
// outlast the deadline on the machine at hand.
func TestDeadlineStopsSearch(t *testing.T) {
	wkld := imdb.LookupWorkload()
	cache := NewCostCache(0)
	warmInitialCost(t, GreedySO, wkld, cache)
	release := make(chan struct{})
	gate := time.AfterFunc(250*time.Millisecond, func() { close(release) })
	defer gate.Stop()
	restore := faults.EnableHook(faults.SiteQueryCost, -1, func() { <-release })
	defer restore()
	res, err := GreedySearch(context.Background(), imdb.Schema(), wkld, imdb.Stats(), Options{
		Strategy: GreedySO, Workers: 4, Deadline: 50 * time.Millisecond,
		Cache: cache, DisableIncremental: true,
	})
	if err != nil {
		t.Fatalf("deadline-bounded search returned error instead of best-so-far: %v", err)
	}
	if res.Report.Stop != StopDeadline {
		t.Fatalf("stop = %s, want %s", res.Report.Stop, StopDeadline)
	}
	if res.Report.Elapsed > 10*time.Second {
		t.Fatalf("deadline did not bound the search: elapsed %s", res.Report.Elapsed)
	}
	if err := pschema.Check(res.Best.Schema); err != nil {
		t.Fatalf("best-so-far schema not physical: %v", err)
	}
}

// TestExpiredContextBeforeInitialEvaluationIsError: with no best-so-far
// to fall back on, a context dead on arrival is a genuine error.
func TestExpiredContextBeforeInitialEvaluationIsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GreedySearch(ctx, imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
		Strategy: GreedySO, DisableCache: true,
	})
	if err == nil {
		t.Fatal("search with a pre-cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
}

// TestBeamSearchBudgetIsAnytime: the beam search honors the same budget
// machinery as the greedy loop.
func TestBeamSearchBudgetIsAnytime(t *testing.T) {
	res, err := BeamSearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), BeamOptions{
		Options: Options{Strategy: GreedySO, Workers: 2, Budget: 8, DisableCache: true},
		Width:   2,
	})
	if err != nil {
		t.Fatalf("budget-bounded beam search returned error: %v", err)
	}
	if res.Report.Evaluated > 8 {
		t.Fatalf("evaluated %d candidates over budget 8", res.Report.Evaluated)
	}
	if res.Report.Stop != StopBudget {
		t.Fatalf("stop = %s, want %s", res.Report.Stop, StopBudget)
	}
	if err := pschema.Check(res.Best.Schema); err != nil {
		t.Fatalf("best-so-far schema not physical: %v", err)
	}
}
