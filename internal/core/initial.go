package core

import (
	"legodb/internal/pschema"
	"legodb/internal/xschema"
)

// Thin indirections over package pschema, named after their role in the
// search strategies.

func pschemaInitialOutlined(s *xschema.Schema) (*xschema.Schema, error) {
	return pschema.InitialOutlined(s)
}

func pschemaAllInlined(s *xschema.Schema) (*xschema.Schema, error) {
	return pschema.AllInlined(s)
}

func pschemaInitialInlined(s *xschema.Schema) (*xschema.Schema, error) {
	return pschema.InitialInlined(s, pschema.InlineOptions{})
}
