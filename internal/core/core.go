// Package core implements LegoDB's cost-based search for an efficient
// XML-to-relational storage mapping (Section 4.2, Algorithm 4.1): starting
// from an initial physical schema, it repeatedly applies the single
// schema transformation that lowers the estimated workload cost the most,
// using the relational optimizer as the cost oracle, until no
// transformation improves the configuration.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// Strategy selects the search's starting configuration and move set.
type Strategy int

const (
	// GreedySO starts with everything outlined and applies inlining
	// moves (the paper's greedy-so).
	GreedySO Strategy = iota
	// GreedySI starts with everything inlined (unions flattened to
	// options, as in the ALL-INLINED configuration) and applies
	// outlining moves (the paper's greedy-si).
	GreedySI
	// GreedyFull starts all-inlined with unions kept and considers the
	// full transformation repertoire. Not part of the paper's prototype
	// (which explored inlining/outlining in the greedy loop and the
	// other rewritings separately); provided as the natural extension.
	GreedyFull
)

func (s Strategy) String() string {
	switch s {
	case GreedySO:
		return "greedy-so"
	case GreedySI:
		return "greedy-si"
	case GreedyFull:
		return "greedy-full"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures the search.
type Options struct {
	Strategy Strategy
	// Kinds overrides the strategy's move set when non-nil.
	Kinds []transform.Kind
	// WildcardLabels feeds wildcard materialization candidates (label →
	// estimated fraction); only used when the move set includes it.
	WildcardLabels map[string]float64
	// Threshold stops the search early when the relative improvement of
	// an iteration falls below it (Section 5.2 suggests this
	// optimization); 0 disables.
	Threshold float64
	// MaxIterations bounds the loop (0 = unbounded).
	MaxIterations int
	// RootCount is the number of stored documents (default 1).
	RootCount float64
	// Model overrides the optimizer cost model when non-nil.
	Model *optimizer.CostModel
	// Workers bounds the goroutines evaluating candidate configurations
	// per iteration (0 = GOMAXPROCS, 1 = sequential). The outcome is
	// deterministic regardless: ties break on candidate order.
	Workers int
	// Cache memoizes configuration costs across iterations. When nil, the
	// search creates a private cache (still deduplicating re-visited
	// configurations within the run); pass a shared cache to also reuse
	// costs across the greedy/beam strategy variants and repeated runs.
	Cache *CostCache
	// DisableCache turns memoization off entirely (every candidate pays a
	// full evaluator pipeline run, as the paper's prototype did); it is
	// ignored when Cache is non-nil.
	DisableCache bool
	// DisableIncremental turns off the evaluator's incremental layers
	// (delta re-mapping, per-query cost reuse, materialized-configuration
	// reuse): every evaluation then re-maps the schema and re-translates
	// and re-costs the whole workload. Results are byte-identical either
	// way; the flag exists for benchmarking and differential testing.
	DisableIncremental bool
	// Reannotate re-derives statistics annotations on every candidate
	// schema after its transformation is applied, via the incremental
	// delta annotation (xstats.AnnotateDelta): only types that can reach
	// the rewritten definition are re-walked. Off by default — the
	// rewritings maintain their own statistics, and re-annotation can
	// (intentionally) change costs where a rewriting's estimate differs
	// from the measured statistics (e.g. wildcard-materialize label
	// fractions). Greedy search only.
	Reannotate bool
}

// searchCache resolves the cache the search should use (possibly nil).
func (o *Options) searchCache() *CostCache {
	if o.Cache != nil {
		return o.Cache
	}
	if o.DisableCache {
		return nil
	}
	return NewCostCache(0)
}

func (o *Options) kinds() []transform.Kind {
	if o.Kinds != nil {
		return o.Kinds
	}
	switch o.Strategy {
	case GreedySO:
		return []transform.Kind{transform.KindInline}
	case GreedySI:
		return []transform.Kind{transform.KindOutline}
	default:
		return transform.AllKinds
	}
}

// Config is one evaluated storage configuration.
type Config struct {
	Schema  *xschema.Schema
	Catalog *relational.Catalog
	Queries []*sqlast.Query
	Cost    float64
}

// Iteration records one step of the greedy loop, for the Figure 10
// convergence plots.
type Iteration struct {
	Cost       float64
	Applied    string
	Candidates int
	Elapsed    time.Duration
	// CacheHits and CacheMisses count how many of this iteration's
	// candidate costings were answered from the cost cache versus paid a
	// full evaluator pipeline run. (With Workers > 1 two workers may race
	// to fill the same entry, so the split can vary slightly between
	// runs; costs and choices never do.)
	CacheHits   int
	CacheMisses int
}

// Result is the outcome of a search.
type Result struct {
	Best        Config
	InitialCost float64
	Trace       []Iteration
	Strategy    Strategy
	// Cache is the cost-cache activity observed during this search (the
	// delta when the cache is shared with other searches).
	Cache CacheStats
	// Evals counts full evaluator pipeline runs (relational mapping +
	// translation + optimizer costing) performed by this search.
	Evals uint64
	// Translations counts per-query translate+cost pipeline runs (one
	// per workload slot that missed the per-query cost cache; with
	// incremental evaluation disabled, one per slot per evaluation).
	Translations uint64
	// QueryCacheHits and QueryCacheMisses count the per-query cost
	// cache's traffic during this search (both zero when incremental
	// evaluation is disabled).
	QueryCacheHits   uint64
	QueryCacheMisses uint64
}

// Evaluator costs physical schemas against a fixed workload. It is the
// GetPSchemaCost of Algorithm 4.1.
type Evaluator struct {
	Workload  *xquery.Workload
	RootCount float64
	Model     *optimizer.CostModel
	// Cache, when non-nil, memoizes workload costs keyed by the schema's
	// canonical fingerprint (plus workload and cost-model digests).
	Cache *CostCache
	// DisableIncremental turns off the incremental reuse layers (delta
	// re-mapping, per-query cost cache, materialized-configuration
	// cache); every Evaluate then pays the full pipeline. Costs, queries
	// and catalogs are byte-identical either way.
	DisableIncremental bool

	keyOnce    sync.Once
	workloadID uint64
	modelID    uint64
	evals      atomic.Uint64

	// Incremental-layer state (see incremental.go).
	translations   atomic.Uint64
	qhits, qmisses atomic.Uint64
	mapperOnce     sync.Once
	mapper         *relational.Mapper
	qdigOnce       sync.Once
	qdigests       []uint64
	localQueries   queryStore
	matMu          sync.Mutex
	matCache       map[xschema.Fingerprint]*Config
	matOrder       []xschema.Fingerprint
}

// Evals returns how many full (uncached) evaluations this evaluator ran.
func (e *Evaluator) Evals() uint64 { return e.evals.Load() }

// Translations returns how many per-query translate+cost pipeline runs
// this evaluator paid (per-query cache hits skip them).
func (e *Evaluator) Translations() uint64 { return e.translations.Load() }

// QueryCacheStats returns the per-query cost cache's hit and miss
// counts (zero when incremental evaluation is disabled).
func (e *Evaluator) QueryCacheStats() (hits, misses uint64) {
	return e.qhits.Load(), e.qmisses.Load()
}

// cacheKey builds the cache key for a p-schema, computing the workload
// and model digests once per evaluator.
func (e *Evaluator) cacheKey(ps *xschema.Schema) CacheKey {
	e.keyOnce.Do(func() {
		e.workloadID = WorkloadID(e.Workload, e.RootCount)
		e.modelID = ModelID(e.Model)
	})
	return CacheKey{Schema: ps.Fingerprint(), Workload: e.workloadID, Model: e.modelID}
}

// Evaluate maps the p-schema to relations, translates the workload and
// returns the weighted-average estimated cost together with the derived
// configuration. By default the incremental layers reuse unchanged
// per-definition column templates and per-query costs from earlier
// evaluations of this evaluator (byte-identical outcome, see
// incremental.go); DisableIncremental selects the full pipeline.
func (e *Evaluator) Evaluate(ps *xschema.Schema) (Config, error) {
	e.evals.Add(1)
	if e.DisableIncremental {
		return e.evaluateFull(ps)
	}
	return e.evaluateIncremental(ps)
}

// evaluateFull is the non-incremental pipeline: re-map, re-translate
// and re-cost everything.
func (e *Evaluator) evaluateFull(ps *xschema.Schema) (Config, error) {
	cat, err := relational.MapWith(ps, relational.Options{RootCount: e.RootCount})
	if err != nil {
		return Config{}, err
	}
	opt := optimizer.New(cat)
	if e.Model != nil {
		opt.Model = *e.Model
	}
	queries := make([]*sqlast.Query, len(e.Workload.Entries))
	weights := make([]float64, len(e.Workload.Entries))
	for i, entry := range e.Workload.Entries {
		sq, err := xquery.Translate(entry.Query, ps, cat)
		if err != nil {
			return Config{}, err
		}
		queries[i] = sq
		weights[i] = entry.Weight
	}
	// Weighted average over queries and update operations together.
	total, wsum := 0.0, 0.0
	for i, q := range queries {
		est, err := opt.QueryCost(q)
		if err != nil {
			return Config{}, err
		}
		e.translations.Add(1)
		total += est.Cost * weights[i]
		wsum += weights[i]
	}
	for _, ue := range e.Workload.Updates {
		targets, err := xquery.ResolveUpdate(ue.Update, ps, cat)
		if err != nil {
			return Config{}, err
		}
		c, err := opt.UpdateCost(ue.Update, targets)
		if err != nil {
			return Config{}, err
		}
		e.translations.Add(1)
		total += c * ue.Weight
		wsum += ue.Weight
	}
	if wsum == 0 {
		return Config{}, fmt.Errorf("core: workload has zero total weight")
	}
	return Config{Schema: ps, Catalog: cat, Queries: queries, Cost: total / wsum}, nil
}

// EvaluateCached costs a p-schema through the evaluator's cache. On a
// hit the returned Config carries only the schema and its cost (Catalog
// and Queries are nil — derive them with Evaluate when the configuration
// is actually chosen); on a miss it runs the full pipeline, memoizes the
// cost, and returns the complete configuration. The boolean reports a
// hit. With a nil cache it degenerates to Evaluate.
func (e *Evaluator) EvaluateCached(ps *xschema.Schema) (Config, bool, error) {
	if e.Cache == nil {
		cfg, err := e.Evaluate(ps)
		return cfg, false, err
	}
	key := e.cacheKey(ps)
	if cost, ok := e.Cache.Get(key); ok {
		return Config{Schema: ps, Cost: cost}, true, nil
	}
	cfg, err := e.Evaluate(ps)
	if err != nil {
		return Config{}, false, err
	}
	e.Cache.Put(key, cfg.Cost)
	return cfg, false, nil
}

// Materialize completes a configuration whose catalog and translated
// queries were skipped by a cache hit. With incremental evaluation on,
// configurations this evaluator fully evaluated before are returned
// from the materialization cache without re-running the pipeline.
func (e *Evaluator) Materialize(cfg Config) (Config, error) {
	if cfg.Catalog != nil {
		return cfg, nil
	}
	if !e.DisableIncremental {
		if hit := e.lookupConfig(cfg.Schema); hit != nil {
			return *hit, nil
		}
	}
	return e.Evaluate(cfg.Schema)
}

// GetPSchemaCost returns just the estimated workload cost of a p-schema.
func GetPSchemaCost(ps *xschema.Schema, wkld *xquery.Workload, rootCount float64) (float64, error) {
	return GetPSchemaCostWith(ps, wkld, rootCount, nil, nil)
}

// GetPSchemaCostWith is GetPSchemaCost with an explicit cost model
// (nil = default) and cost cache (nil = uncached).
func GetPSchemaCostWith(ps *xschema.Schema, wkld *xquery.Workload, rootCount float64, model *optimizer.CostModel, cache *CostCache) (float64, error) {
	e := &Evaluator{Workload: wkld, RootCount: rootCount, Model: model, Cache: cache}
	cfg, _, err := e.EvaluateCached(ps)
	if err != nil {
		return 0, err
	}
	return cfg.Cost, nil
}

// InitialSchema builds the starting p-schema for a strategy from an
// annotated schema.
func InitialSchema(s *xschema.Schema, strategy Strategy) (*xschema.Schema, error) {
	switch strategy {
	case GreedySO:
		return pschemaInitialOutlined(s)
	case GreedySI:
		return pschemaAllInlined(s)
	default:
		return pschemaInitialInlined(s)
	}
}

// GreedySearch runs Algorithm 4.1: annotate the schema with statistics,
// build the strategy's initial physical schema, then iteratively apply
// the single cheapest transformation until no candidate improves the
// cost (or the threshold / iteration bound fires).
func GreedySearch(schema *xschema.Schema, wkld *xquery.Workload, stats *xstats.Set, opts Options) (*Result, error) {
	if len(wkld.Entries) == 0 && len(wkld.Updates) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	annotated := schema.Clone()
	if stats != nil {
		if err := xstats.Annotate(annotated, stats); err != nil {
			return nil, fmt.Errorf("core: annotate: %w", err)
		}
	}
	ps, err := InitialSchema(annotated, opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: initial schema: %w", err)
	}
	rootCount := opts.RootCount
	if rootCount == 0 {
		rootCount = 1
	}
	cache := opts.searchCache()
	eval := &Evaluator{Workload: wkld, RootCount: rootCount, Model: opts.Model, Cache: cache,
		DisableIncremental: opts.DisableIncremental}
	// Reannotate mode: keep candidate schemas' statistics exact by
	// re-annotating after every transformation, incrementally via the
	// memo of the previous full annotation.
	var memo *xstats.Memo
	if opts.Reannotate && stats != nil {
		if memo, err = xstats.AnnotateMemo(ps, stats); err != nil {
			return nil, fmt.Errorf("core: annotate initial schema: %w", err)
		}
	}
	cacheStart := cache.Stats()
	best, _, err := eval.EvaluateCached(ps)
	if err != nil {
		return nil, fmt.Errorf("core: evaluate initial schema: %w", err)
	}
	result := &Result{InitialCost: best.Cost, Strategy: opts.Strategy}
	tropts := transform.Options{Kinds: opts.kinds(), WildcardLabels: opts.WildcardLabels}

	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		start := time.Now()
		cands := transform.Candidates(best.Schema, tropts)
		results, hits, misses := evaluateCandidates(best.Schema, cands, eval, opts.Workers, stats, memo)
		var bestCand Config
		bestCand.Cost = best.Cost
		applied := ""
		for i, cfg := range results {
			if cfg != nil && cfg.Cost < bestCand.Cost {
				bestCand = *cfg
				applied = cands[i].String()
			}
		}
		if applied == "" {
			break
		}
		// The winner's catalog may have been skipped by a cache hit;
		// derive it now (one pipeline run instead of one per candidate).
		bestCand, err = eval.Materialize(bestCand)
		if err != nil {
			return nil, fmt.Errorf("core: materialize %s: %w", applied, err)
		}
		if memo != nil {
			// Rebuild the memo on the winner (a full walk once per
			// iteration; the per-candidate walks above were deltas).
			if memo, err = xstats.AnnotateMemo(bestCand.Schema, stats); err != nil {
				return nil, fmt.Errorf("core: annotate %s: %w", applied, err)
			}
		}
		improvement := (best.Cost - bestCand.Cost) / best.Cost
		best = bestCand
		result.Trace = append(result.Trace, Iteration{
			Cost:        best.Cost,
			Applied:     applied,
			Candidates:  len(cands),
			Elapsed:     time.Since(start),
			CacheHits:   hits,
			CacheMisses: misses,
		})
		if opts.Threshold > 0 && improvement < opts.Threshold {
			break
		}
	}
	// The best configuration's catalog may still be missing when the
	// initial evaluation hit the cache and no iteration improved on it.
	result.Best, err = eval.Materialize(best)
	if err != nil {
		return nil, fmt.Errorf("core: materialize best: %w", err)
	}
	result.Cache = cache.Stats().Sub(cacheStart)
	result.Evals = eval.Evals()
	result.Translations = eval.Translations()
	result.QueryCacheHits, result.QueryCacheMisses = eval.QueryCacheStats()
	return result, nil
}

// evaluateCandidates applies and costs every candidate transformation of
// one schema, fanning out across workers. The result slice is indexed
// like cands; inapplicable or unanswerable candidates are nil (skipped,
// as the paper's engine does). It also reports how many costings were
// cache hits and misses. A non-nil memo switches on per-candidate
// re-annotation (Options.Reannotate) using xstats.AnnotateDelta.
func evaluateCandidates(base *xschema.Schema, cands []transform.Transformation, eval *Evaluator, workers int, stats *xstats.Set, memo *xstats.Memo) ([]*Config, int, int) {
	results := make([]*Config, len(cands))
	var hits, misses atomic.Int64
	if workers == 1 || len(cands) <= 1 {
		for i := range cands {
			results[i] = evaluateOne(base, cands[i], eval, &hits, &misses, stats, memo)
		}
		return results, int(hits.Load()), int(misses.Load())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = evaluateOne(base, cands[i], eval, &hits, &misses, stats, memo)
			}
		}()
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, int(hits.Load()), int(misses.Load())
}

func evaluateOne(base *xschema.Schema, tr transform.Transformation, eval *Evaluator, hits, misses *atomic.Int64, stats *xstats.Set, memo *xstats.Memo) *Config {
	nextSchema, err := transform.Apply(base, tr)
	if err != nil {
		return nil
	}
	if memo != nil {
		// Reannotate mode: refresh statistics on the transformed schema.
		// The memo is read-only here, so concurrent workers may share it.
		if _, err := xstats.AnnotateDelta(nextSchema, stats, memo); err != nil {
			return nil
		}
	}
	cfg, hit, err := eval.EvaluateCached(nextSchema)
	if err != nil {
		return nil
	}
	if hit {
		hits.Add(1)
	} else {
		misses.Add(1)
	}
	return &cfg
}
