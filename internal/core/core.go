// Package core implements LegoDB's cost-based search for an efficient
// XML-to-relational storage mapping (Section 4.2, Algorithm 4.1): starting
// from an initial physical schema, it repeatedly applies the single
// schema transformation that lowers the estimated workload cost the most,
// using the relational optimizer as the cost oracle, until no
// transformation improves the configuration.
//
// The search is an anytime procedure, as the paper requires of a search
// over an in-principle unbounded transformation space: it honors
// context cancellation, a wall-clock deadline (Options.Deadline) and an
// evaluation budget (Options.Budget), and on any of them returns the
// best configuration found so far together with a SearchReport saying
// why it stopped. Candidate evaluations are fault-isolated: a panic or
// error in one candidate's pipeline is recorded as a CandidateError and
// the candidate skipped — it never aborts the search or wedges the
// worker pool.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"legodb/internal/optimizer"
	"legodb/internal/plan"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// Strategy selects the search's starting configuration and move set.
type Strategy int

const (
	// GreedySO starts with everything outlined and applies inlining
	// moves (the paper's greedy-so).
	GreedySO Strategy = iota
	// GreedySI starts with everything inlined (unions flattened to
	// options, as in the ALL-INLINED configuration) and applies
	// outlining moves (the paper's greedy-si).
	GreedySI
	// GreedyFull starts all-inlined with unions kept and considers the
	// full transformation repertoire. Not part of the paper's prototype
	// (which explored inlining/outlining in the greedy loop and the
	// other rewritings separately); provided as the natural extension.
	GreedyFull
)

func (s Strategy) String() string {
	switch s {
	case GreedySO:
		return "greedy-so"
	case GreedySI:
		return "greedy-si"
	case GreedyFull:
		return "greedy-full"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures the search.
type Options struct {
	Strategy Strategy
	// Kinds overrides the strategy's move set when non-nil.
	Kinds []transform.Kind
	// WildcardLabels feeds wildcard materialization candidates (label →
	// estimated fraction); only used when the move set includes it.
	WildcardLabels map[string]float64
	// Threshold stops the search early when the relative improvement of
	// an iteration falls below it (Section 5.2 suggests this
	// optimization); 0 disables.
	Threshold float64
	// MaxIterations bounds the loop (0 = unbounded).
	MaxIterations int
	// Deadline bounds the search's wall-clock time (0 = none). On
	// expiry the search stops dispatching candidates and returns the
	// best configuration found so far with Report.Stop = StopDeadline —
	// anytime semantics, not an error. A tighter deadline on the
	// caller's context wins.
	Deadline time.Duration
	// Budget bounds the number of candidate evaluations (cache hits
	// included; 0 = unbounded). Like Deadline, exhausting it is an
	// anytime stop (StopBudget), not an error.
	Budget int
	// RootCount is the number of stored documents (default 1).
	RootCount float64
	// Model overrides the optimizer cost model when non-nil.
	Model *optimizer.CostModel
	// Workers bounds the goroutines evaluating candidate configurations
	// per iteration (0 = GOMAXPROCS, 1 = sequential). The outcome is
	// deterministic regardless: ties break on candidate order.
	Workers int
	// Cache memoizes configuration costs across iterations. When nil, the
	// search creates a private cache (still deduplicating re-visited
	// configurations within the run); pass a shared cache to also reuse
	// costs across the greedy/beam strategy variants and repeated runs.
	Cache *CostCache
	// DisableCache turns memoization off entirely (every candidate pays a
	// full evaluator pipeline run, as the paper's prototype did); it is
	// ignored when Cache is non-nil.
	DisableCache bool
	// DisableIncremental turns off the evaluator's incremental layers
	// (delta re-mapping, per-query cost reuse, materialized-configuration
	// reuse): every evaluation then re-maps the schema and re-translates
	// and re-costs the whole workload. Results are byte-identical either
	// way; the flag exists for benchmarking and differential testing.
	DisableIncremental bool
	// DisableSharing turns off the logical-plan layer (internal/plan):
	// every translated SPJ block is then costed by the optimizer
	// directly, instead of structurally identical blocks sharing one
	// costing across union branches, queries and sibling candidates.
	// Costs are bit-identical either way (the plan memo keys on
	// everything block costing reads); the flag exists for benchmarking
	// and differential testing. Implied by DisableIncremental, which
	// bypasses the per-query pipeline the plan layer lives in.
	DisableSharing bool
	// Reannotate re-derives statistics annotations on every candidate
	// schema after its transformation is applied, via the incremental
	// delta annotation (xstats.AnnotateDelta): only types that can reach
	// the rewritten definition are re-walked. Off by default — the
	// rewritings maintain their own statistics, and re-annotation can
	// (intentionally) change costs where a rewriting's estimate differs
	// from the measured statistics (e.g. wildcard-materialize label
	// fractions). Greedy search only.
	Reannotate bool
}

// searchCache resolves the cache the search should use (possibly nil).
func (o *Options) searchCache() *CostCache {
	if o.Cache != nil {
		return o.Cache
	}
	if o.DisableCache {
		return nil
	}
	return NewCostCache(0)
}

// searchContext derives the search's context from the caller's: nil is
// promoted to Background, and Options.Deadline attaches a timeout.
func (o *Options) searchContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Deadline > 0 {
		return context.WithTimeout(ctx, o.Deadline)
	}
	return context.WithCancel(ctx)
}

func (o *Options) kinds() []transform.Kind {
	if o.Kinds != nil {
		return o.Kinds
	}
	switch o.Strategy {
	case GreedySO:
		return []transform.Kind{transform.KindInline}
	case GreedySI:
		return []transform.Kind{transform.KindOutline}
	default:
		return transform.AllKinds
	}
}

// Config is one evaluated storage configuration.
type Config struct {
	Schema  *xschema.Schema
	Catalog *relational.Catalog
	Queries []*sqlast.Query
	Cost    float64
}

// Iteration records one step of the greedy loop, for the Figure 10
// convergence plots.
type Iteration struct {
	Cost       float64
	Applied    string
	Candidates int
	Elapsed    time.Duration
	// CacheHits and CacheMisses count how many of this iteration's
	// candidate costings were answered from the cost cache versus paid a
	// full evaluator pipeline run. (With Workers > 1 two workers may race
	// to fill the same entry, so the split can vary slightly between
	// runs; costs and choices never do.)
	CacheHits   int
	CacheMisses int
}

// Result is the outcome of a search.
type Result struct {
	Best        Config
	InitialCost float64
	Trace       []Iteration
	Strategy    Strategy
	// Report says why the search stopped and what it skipped or
	// recovered from along the way.
	Report SearchReport
	// Cache is the cost-cache activity observed during this search (the
	// delta when the cache is shared with other searches).
	Cache CacheStats
	// Evals counts full evaluator pipeline runs (relational mapping +
	// translation + optimizer costing) performed by this search.
	Evals uint64
	// Translations counts per-query translate+cost pipeline runs (one
	// per workload slot that missed the per-query cost cache; with
	// incremental evaluation disabled, one per slot per evaluation).
	Translations uint64
	// QueryCacheHits and QueryCacheMisses count the per-query cost
	// cache's traffic during this search (both zero when incremental
	// evaluation is disabled).
	QueryCacheHits   uint64
	QueryCacheMisses uint64
	// BlocksRequested counts the SPJ block costings translated queries
	// asked the logical-plan layer for during this search;
	// BlocksCosted counts the subset that ran the optimizer — the gap is
	// work absorbed by structural sharing across union branches, queries
	// and candidates. Both zero when sharing is disabled.
	BlocksRequested uint64
	BlocksCosted    uint64
}

// Evaluator costs physical schemas against a fixed workload. It is the
// GetPSchemaCost of Algorithm 4.1.
type Evaluator struct {
	Workload  *xquery.Workload
	RootCount float64
	Model     *optimizer.CostModel
	// Cache, when non-nil, memoizes workload costs keyed by the schema's
	// canonical fingerprint (plus workload and cost-model digests).
	Cache *CostCache
	// DisableIncremental turns off the incremental reuse layers (delta
	// re-mapping, per-query cost cache, materialized-configuration
	// cache); every Evaluate then pays the full pipeline. Costs, queries
	// and catalogs are byte-identical either way.
	DisableIncremental bool
	// DisableSharing turns off the logical-plan layer: translated
	// queries are costed block by block through optimizer.QueryCost
	// instead of through a plan.Space that dedups structurally identical
	// blocks. Bit-identical costs either way.
	DisableSharing bool

	keyOnce    sync.Once
	workloadID uint64
	modelID    uint64
	evals      atomic.Uint64

	// Incremental-layer state (see incremental.go).
	translations   atomic.Uint64
	qhits, qmisses atomic.Uint64
	memoFalls      atomic.Uint64
	// Plan-layer counters (see incremental.go): block costings the plan
	// spaces were asked for, and the subset that missed every memo and
	// ran the optimizer.
	blocksReq    atomic.Uint64
	blocksCosted atomic.Uint64
	localBlocks  plan.Store
	mapperOnce   sync.Once
	mapper       *relational.Mapper
	qdigOnce     sync.Once
	qdigests     []uint64
	localQueries queryStore
	matMu        sync.Mutex
	matCache     map[xschema.Fingerprint]*Config
	matOrder     []xschema.Fingerprint
	// matBest is the cheapest cost remembered so far; rememberConfig
	// drops configurations above it (only iteration winners — cheapest-
	// so-far by construction — are ever materialized).
	matBest float64
	// depPool and digPool recycle per-evaluation scratch (the
	// dependency-state hash memo and the shallow-digest map) across
	// candidates, so the incremental hot path allocates per evaluation
	// only what it returns.
	depPool sync.Pool
	digPool sync.Pool
}

// Evals returns how many full (uncached) evaluations this evaluator ran.
func (e *Evaluator) Evals() uint64 { return e.evals.Load() }

// Translations returns how many per-query translate+cost pipeline runs
// this evaluator paid (per-query cache hits skip them).
func (e *Evaluator) Translations() uint64 { return e.translations.Load() }

// QueryCacheStats returns the per-query cost cache's hit and miss
// counts (zero when incremental evaluation is disabled).
func (e *Evaluator) QueryCacheStats() (hits, misses uint64) {
	return e.qhits.Load(), e.qmisses.Load()
}

// MemoFallbacks returns how many incremental evaluations detected an
// inconsistent memo state and fell back to the full pipeline.
func (e *Evaluator) MemoFallbacks() uint64 { return e.memoFalls.Load() }

// BlockStats returns the logical-plan layer's traffic: block costings
// requested by translated queries, and the subset that actually ran the
// optimizer (the rest replayed a structurally identical block's memoized
// costing). Both zero when sharing or incremental evaluation is off.
func (e *Evaluator) BlockStats() (requested, costed uint64) {
	return e.blocksReq.Load(), e.blocksCosted.Load()
}

// cacheKeyFor builds the cache key for an already-computed schema
// fingerprint, computing the workload and model digests once per
// evaluator. Callers that have the fingerprint in hand (the beam
// search's dedup set) use this to avoid fingerprinting twice.
func (e *Evaluator) cacheKeyFor(fp xschema.Fingerprint) CacheKey {
	e.keyOnce.Do(func() {
		e.workloadID = WorkloadID(e.Workload, e.RootCount)
		e.modelID = ModelID(e.Model)
	})
	return CacheKey{Schema: fp, Workload: e.workloadID, Model: e.modelID}
}

// cacheKey builds the cache key for a p-schema.
func (e *Evaluator) cacheKey(ps *xschema.Schema) CacheKey {
	return e.cacheKeyFor(ps.Fingerprint())
}

// Evaluate maps the p-schema to relations, translates the workload and
// returns the weighted-average estimated cost together with the derived
// configuration. By default the incremental layers reuse unchanged
// per-definition column templates and per-query costs from earlier
// evaluations of this evaluator (byte-identical outcome, see
// incremental.go); DisableIncremental selects the full pipeline. An
// incremental evaluation that detects an inconsistent memo state falls
// back to the full pipeline instead of trusting it (counted by
// MemoFallbacks). Cancelling ctx aborts between pipeline stages.
func (e *Evaluator) Evaluate(ctx context.Context, ps *xschema.Schema) (Config, error) {
	e.evals.Add(1)
	if e.DisableIncremental {
		return e.evaluateFull(ctx, ps)
	}
	cfg, err := e.evaluateIncremental(ctx, ps, false)
	if errors.Is(err, errMemoInconsistent) {
		e.memoFalls.Add(1)
		return e.evaluateFull(ctx, ps)
	}
	return cfg, err
}

// evaluateFull is the non-incremental pipeline: re-map, re-translate
// and re-cost everything.
func (e *Evaluator) evaluateFull(ctx context.Context, ps *xschema.Schema) (Config, error) {
	if err := ctx.Err(); err != nil {
		return Config{}, err
	}
	cat, err := relational.MapWith(ps, relational.Options{RootCount: e.RootCount})
	if err != nil {
		return Config{}, err
	}
	opt := optimizer.New(cat)
	if e.Model != nil {
		opt.Model = *e.Model
	}
	queries := make([]*sqlast.Query, len(e.Workload.Entries))
	weights := make([]float64, len(e.Workload.Entries))
	for i, entry := range e.Workload.Entries {
		if err := ctx.Err(); err != nil {
			return Config{}, err
		}
		sq, err := xquery.Translate(entry.Query, ps, cat)
		if err != nil {
			return Config{}, err
		}
		queries[i] = sq
		weights[i] = entry.Weight
	}
	// Weighted average over queries and update operations together.
	total, wsum := 0.0, 0.0
	for i, q := range queries {
		est, err := opt.QueryCost(q)
		if err != nil {
			return Config{}, err
		}
		e.translations.Add(1)
		total += est.Cost * weights[i]
		wsum += weights[i]
	}
	for _, ue := range e.Workload.Updates {
		targets, err := xquery.ResolveUpdate(ue.Update, ps, cat)
		if err != nil {
			return Config{}, err
		}
		c, err := opt.UpdateCost(ue.Update, targets)
		if err != nil {
			return Config{}, err
		}
		e.translations.Add(1)
		total += c * ue.Weight
		wsum += ue.Weight
	}
	if wsum == 0 {
		return Config{}, fmt.Errorf("core: workload has zero total weight")
	}
	return Config{Schema: ps, Catalog: cat, Queries: queries, Cost: total / wsum}, nil
}

// EvaluateCached costs a p-schema through the evaluator's cache. On a
// hit the returned Config carries only the schema and its cost (Catalog
// and Queries are nil — derive them with Evaluate when the configuration
// is actually chosen); on a miss it runs the full pipeline, memoizes the
// cost, and returns the complete configuration. The boolean reports a
// hit. With a nil cache it degenerates to Evaluate.
//
// Misses are deduplicated singleflight-style across every evaluator
// sharing the cache (the search's own worker pool, sibling searches,
// and — through a CacheRegistry — other engines' searches): the first
// evaluator to arrive at a key runs the pipeline while later arrivals
// block on its outcome and adopt the cost (counted as a dedup, returned
// as a hit). Costs are a pure function of the key, so the adopted value
// is bit-identical to what the waiter would have computed. A waiter
// whose own context is cancelled stops waiting; a leader that fails
// releases its waiters to evaluate independently (the leader's error may
// be private to its context, e.g. a cancelled sibling search).
func (e *Evaluator) EvaluateCached(ctx context.Context, ps *xschema.Schema) (Config, bool, error) {
	if e.Cache == nil {
		cfg, err := e.Evaluate(ctx, ps)
		return cfg, false, err
	}
	return e.evaluateCachedKey(ctx, ps, e.cacheKey(ps))
}

// evaluateCachedFP is EvaluateCached for callers that already computed
// the schema's fingerprint.
func (e *Evaluator) evaluateCachedFP(ctx context.Context, ps *xschema.Schema, fp xschema.Fingerprint) (Config, bool, error) {
	if e.Cache == nil {
		cfg, err := e.Evaluate(ctx, ps)
		return cfg, false, err
	}
	return e.evaluateCachedKey(ctx, ps, e.cacheKeyFor(fp))
}

func (e *Evaluator) evaluateCachedKey(ctx context.Context, ps *xschema.Schema, key CacheKey) (Config, bool, error) {
	if cost, ok := e.Cache.Get(key); ok {
		return Config{Schema: ps, Cost: cost}, true, nil
	}
	call, leader := e.Cache.join(key)
	if !leader {
		select {
		case <-call.done:
			if call.err == nil {
				e.Cache.countDedup()
				return Config{Schema: ps, Cost: call.cost}, true, nil
			}
		case <-ctx.Done():
			return Config{}, false, ctx.Err()
		}
		// The leader failed; evaluate independently under our context.
		cfg, err := e.Evaluate(ctx, ps)
		if err != nil {
			return Config{}, false, err
		}
		e.Cache.Put(key, cfg.Cost)
		return cfg, false, nil
	}
	cfg, err := e.evaluateAsLeader(ctx, ps, key, call)
	if err != nil {
		return Config{}, false, err
	}
	return cfg, false, nil
}

// evaluateAsLeader runs the pipeline for a key this evaluator owns the
// flight for, publishing the outcome (cost or error) to any waiters. The
// deferred finish also fires when the evaluation panics — the search's
// per-candidate isolation recovers the panic above us, and the waiters
// must be released to evaluate for themselves rather than block forever.
func (e *Evaluator) evaluateAsLeader(ctx context.Context, ps *xschema.Schema, key CacheKey, call *flightCall) (cfg Config, err error) {
	published := false
	defer func() {
		if !published {
			e.Cache.finish(key, call, 0, errLeaderAbandoned)
		}
	}()
	cfg, err = e.Evaluate(ctx, ps)
	if err == nil {
		e.Cache.Put(key, cfg.Cost)
	}
	e.Cache.finish(key, call, cfg.Cost, err)
	published = true
	return cfg, err
}

// errLeaderAbandoned is published to singleflight waiters when their
// leader's evaluation panicked out of the pipeline.
var errLeaderAbandoned = errors.New("core: in-flight evaluation abandoned")

// Materialize completes a configuration whose catalog and translated
// queries were skipped by a cache hit. With incremental evaluation on,
// configurations this evaluator fully evaluated before are returned
// from the materialization cache without re-running the pipeline.
func (e *Evaluator) Materialize(ctx context.Context, cfg Config) (Config, error) {
	if cfg.Catalog != nil {
		return cfg, nil
	}
	if e.DisableIncremental {
		return e.Evaluate(ctx, cfg.Schema)
	}
	if hit := e.lookupConfig(cfg.Schema); hit != nil {
		return *hit, nil
	}
	// Evaluate in materialize mode: hit slots whose translation is no
	// longer retained re-translate (their cached costs stand), so the
	// result always carries the complete catalog and query set.
	e.evals.Add(1)
	out, err := e.evaluateIncremental(ctx, cfg.Schema, true)
	if errors.Is(err, errMemoInconsistent) {
		e.memoFalls.Add(1)
		return e.evaluateFull(ctx, cfg.Schema)
	}
	return out, err
}

// GetPSchemaCost returns just the estimated workload cost of a p-schema.
func GetPSchemaCost(ps *xschema.Schema, wkld *xquery.Workload, rootCount float64) (float64, error) {
	return GetPSchemaCostWith(ps, wkld, rootCount, nil, nil)
}

// GetPSchemaCostWith is GetPSchemaCost with an explicit cost model
// (nil = default) and cost cache (nil = uncached).
func GetPSchemaCostWith(ps *xschema.Schema, wkld *xquery.Workload, rootCount float64, model *optimizer.CostModel, cache *CostCache) (float64, error) {
	e := &Evaluator{Workload: wkld, RootCount: rootCount, Model: model, Cache: cache}
	cfg, _, err := e.EvaluateCached(context.Background(), ps)
	if err != nil {
		return 0, err
	}
	return cfg.Cost, nil
}

// InitialSchema builds the starting p-schema for a strategy from an
// annotated schema.
func InitialSchema(s *xschema.Schema, strategy Strategy) (*xschema.Schema, error) {
	switch strategy {
	case GreedySO:
		return pschemaInitialOutlined(s)
	case GreedySI:
		return pschemaAllInlined(s)
	default:
		return pschemaInitialInlined(s)
	}
}

// GreedySearch runs Algorithm 4.1: annotate the schema with statistics,
// build the strategy's initial physical schema, then iteratively apply
// the single cheapest transformation until no candidate improves the
// cost (or the threshold / iteration bound / deadline / budget fires,
// or ctx is cancelled — the anytime stops, which return the best
// configuration found so far rather than an error). A nil ctx is
// treated as context.Background().
func GreedySearch(ctx context.Context, schema *xschema.Schema, wkld *xquery.Workload, stats *xstats.Set, opts Options) (*Result, error) {
	if len(wkld.Entries) == 0 && len(wkld.Updates) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	ctx, cancel := opts.searchContext(ctx)
	defer cancel()
	started := time.Now()
	annotated := schema.Clone()
	if stats != nil {
		if err := xstats.Annotate(annotated, stats); err != nil {
			return nil, fmt.Errorf("core: annotate: %w", err)
		}
	}
	ps, err := InitialSchema(annotated, opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: initial schema: %w", err)
	}
	rootCount := opts.RootCount
	if rootCount == 0 {
		rootCount = 1
	}
	cache := opts.searchCache()
	eval := &Evaluator{Workload: wkld, RootCount: rootCount, Model: opts.Model, Cache: cache,
		DisableIncremental: opts.DisableIncremental, DisableSharing: opts.DisableSharing}
	// Reannotate mode: keep candidate schemas' statistics exact by
	// re-annotating after every transformation, incrementally via the
	// memo of the previous full annotation.
	var memo *xstats.Memo
	if opts.Reannotate && stats != nil {
		if memo, err = xstats.AnnotateMemo(ps, stats); err != nil {
			return nil, fmt.Errorf("core: annotate initial schema: %w", err)
		}
	}
	cacheStart := cache.Stats()
	// The initial configuration is evaluated before anytime semantics
	// kick in: without it there is no best-so-far to return. (A context
	// cancelled this early is a genuine error.)
	best, _, err := eval.EvaluateCached(ctx, ps)
	if err != nil {
		return nil, fmt.Errorf("core: evaluate initial schema: %w", err)
	}
	st := newSearchState(ctx, opts.Budget)
	result := &Result{InitialCost: best.Cost, Strategy: opts.Strategy}
	tropts := transform.Options{Kinds: opts.kinds(), WildcardLabels: opts.WildcardLabels}

	stop := StopConverged
	for iter := 0; ; iter++ {
		if opts.MaxIterations > 0 && iter >= opts.MaxIterations {
			stop = StopMaxIterations
			break
		}
		if err := ctx.Err(); err != nil {
			stop = st.stopFor(err)
			break
		}
		if st.exhausted() {
			stop = StopBudget
			break
		}
		start := time.Now()
		cands := transform.Candidates(best.Schema, tropts)
		results, hits, misses := evaluateCandidates(st, best.Schema, cands, eval, opts.Workers, stats, memo)
		var bestCand Config
		bestCand.Cost = best.Cost
		applied := ""
		for i, cfg := range results {
			if cfg != nil && cfg.Cost < bestCand.Cost {
				bestCand = *cfg
				applied = cands[i].String()
			}
		}
		if applied == "" {
			// No improving candidate. If the iteration was cut short the
			// move space was not exhausted — report the interruption, not
			// convergence.
			switch {
			case ctx.Err() != nil:
				stop = st.stopFor(ctx.Err())
			case st.exhausted():
				stop = StopBudget
			}
			break
		}
		// The winner's catalog may have been skipped by a cache hit;
		// derive it now (one pipeline run instead of one per candidate).
		// An interrupted materialization keeps the previous best (its
		// catalog is already derived or re-derivable) — anytime
		// semantics over a half-applied winner.
		bestCand, err = eval.Materialize(ctx, bestCand)
		if err != nil {
			if ctx.Err() != nil {
				stop = st.stopFor(ctx.Err())
				break
			}
			st.recordError(applied, "materialize", err)
			break
		}
		if memo != nil {
			// Rebuild the memo on the winner (a full walk once per
			// iteration; the per-candidate walks above were deltas).
			if memo, err = xstats.AnnotateMemo(bestCand.Schema, stats); err != nil {
				return nil, fmt.Errorf("core: annotate %s: %w", applied, err)
			}
		}
		improvement := (best.Cost - bestCand.Cost) / best.Cost
		best = bestCand
		result.Trace = append(result.Trace, Iteration{
			Cost:        best.Cost,
			Applied:     applied,
			Candidates:  len(cands),
			Elapsed:     time.Since(start),
			CacheHits:   hits,
			CacheMisses: misses,
		})
		if opts.Threshold > 0 && improvement < opts.Threshold {
			stop = StopThreshold
			break
		}
	}
	// The best configuration's catalog may still be missing when the
	// initial evaluation hit the cache and no iteration improved on it.
	// Materialize detached from the search context: an expired deadline
	// must not cost the caller the configuration the search already
	// earned.
	result.Best, err = eval.Materialize(context.Background(), best)
	if err != nil {
		return nil, fmt.Errorf("core: materialize best: %w", err)
	}
	result.Report = st.report(stop, len(result.Trace), eval, time.Since(started))
	result.Cache = cache.Stats().Sub(cacheStart)
	result.Report.Cache = result.Cache
	result.Evals = eval.Evals()
	result.Translations = eval.Translations()
	result.QueryCacheHits, result.QueryCacheMisses = eval.QueryCacheStats()
	result.BlocksRequested, result.BlocksCosted = eval.BlockStats()
	return result, nil
}

// evaluateCandidates applies and costs every candidate transformation of
// one schema, fanning out across workers. The result slice is indexed
// like cands; inapplicable or unanswerable candidates are nil (skipped,
// as the paper's engine does, with failures recorded in the search
// state). It also reports how many costings were cache hits and misses.
// A non-nil memo switches on per-candidate re-annotation
// (Options.Reannotate) using xstats.AnnotateDelta. Cancellation stops
// the dispatch loop; workers always drain and the WaitGroup always
// settles, even when a candidate's evaluation panics.
func evaluateCandidates(st *searchState, base *xschema.Schema, cands []transform.Transformation, eval *Evaluator, workers int, stats *xstats.Set, memo *xstats.Memo) ([]*Config, int, int) {
	results := make([]*Config, len(cands))
	var hits, misses atomic.Int64
	if workers == 1 || len(cands) <= 1 {
		for i := range cands {
			results[i] = evaluateOne(st, base, cands[i], eval, &hits, &misses, stats, memo)
		}
		return results, int(hits.Load()), int(misses.Load())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	// Prefill a buffered channel and close it: workers pull indices with
	// no dispatcher goroutine in the loop. The old unbuffered dispatch
	// serialized the pool on a rendezvous per candidate, which the
	// worker-scaling benchmark exposed as a flat spot at high worker
	// counts. Cancellation is handled by st.take() inside evaluateOne —
	// every candidate pulled after the context dies is counted skipped,
	// preserving the report's accounting.
	var wg sync.WaitGroup
	next := make(chan int, len(cands))
	for i := range cands {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = evaluateOne(st, base, cands[i], eval, &hits, &misses, stats, memo)
			}
		}()
	}
	wg.Wait()
	return results, int(hits.Load()), int(misses.Load())
}

// evaluateOne applies and costs a single candidate. Every failure mode
// — transformation error, annotation error, evaluation error, worker
// panic — converts to a nil result plus a CandidateError in the search
// state; nothing escapes to the worker goroutine.
func evaluateOne(st *searchState, base *xschema.Schema, tr transform.Transformation, eval *Evaluator, hits, misses *atomic.Int64, stats *xstats.Set, memo *xstats.Memo) (out *Config) {
	if !st.take() {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			st.recordPanic(tr.String(), "evaluate", r, debug.Stack())
			out = nil
		}
	}()
	nextSchema, err := transform.Apply(base, tr)
	if err != nil {
		st.recordError(tr.String(), "apply", err)
		return nil
	}
	if memo != nil {
		// Reannotate mode: refresh statistics on the transformed schema.
		// The memo is read-only here, so concurrent workers may share it.
		// A failed delta falls back to a full re-annotation before the
		// candidate is given up on.
		if _, err := xstats.AnnotateDelta(nextSchema, stats, memo); err != nil {
			st.annFalls.Add(1)
			if err := xstats.Annotate(nextSchema, stats); err != nil {
				st.recordError(tr.String(), "annotate", err)
				return nil
			}
		}
	}
	cfg, hit, err := eval.EvaluateCached(st.ctx, nextSchema)
	if err != nil {
		// A cancellation mid-evaluation is a skip, not a failure.
		if st.ctx.Err() == nil {
			st.recordError(tr.String(), "evaluate", err)
		}
		return nil
	}
	if hit {
		hits.Add(1)
	} else {
		misses.Add(1)
	}
	return &cfg
}
