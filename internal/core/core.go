// Package core implements LegoDB's cost-based search for an efficient
// XML-to-relational storage mapping (Section 4.2, Algorithm 4.1): starting
// from an initial physical schema, it repeatedly applies the single
// schema transformation that lowers the estimated workload cost the most,
// using the relational optimizer as the cost oracle, until no
// transformation improves the configuration.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// Strategy selects the search's starting configuration and move set.
type Strategy int

const (
	// GreedySO starts with everything outlined and applies inlining
	// moves (the paper's greedy-so).
	GreedySO Strategy = iota
	// GreedySI starts with everything inlined (unions flattened to
	// options, as in the ALL-INLINED configuration) and applies
	// outlining moves (the paper's greedy-si).
	GreedySI
	// GreedyFull starts all-inlined with unions kept and considers the
	// full transformation repertoire. Not part of the paper's prototype
	// (which explored inlining/outlining in the greedy loop and the
	// other rewritings separately); provided as the natural extension.
	GreedyFull
)

func (s Strategy) String() string {
	switch s {
	case GreedySO:
		return "greedy-so"
	case GreedySI:
		return "greedy-si"
	case GreedyFull:
		return "greedy-full"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures the search.
type Options struct {
	Strategy Strategy
	// Kinds overrides the strategy's move set when non-nil.
	Kinds []transform.Kind
	// WildcardLabels feeds wildcard materialization candidates (label →
	// estimated fraction); only used when the move set includes it.
	WildcardLabels map[string]float64
	// Threshold stops the search early when the relative improvement of
	// an iteration falls below it (Section 5.2 suggests this
	// optimization); 0 disables.
	Threshold float64
	// MaxIterations bounds the loop (0 = unbounded).
	MaxIterations int
	// RootCount is the number of stored documents (default 1).
	RootCount float64
	// Model overrides the optimizer cost model when non-nil.
	Model *optimizer.CostModel
	// Workers bounds the goroutines evaluating candidate configurations
	// per iteration (0 = GOMAXPROCS, 1 = sequential). The outcome is
	// deterministic regardless: ties break on candidate order.
	Workers int
}

func (o *Options) kinds() []transform.Kind {
	if o.Kinds != nil {
		return o.Kinds
	}
	switch o.Strategy {
	case GreedySO:
		return []transform.Kind{transform.KindInline}
	case GreedySI:
		return []transform.Kind{transform.KindOutline}
	default:
		return transform.AllKinds
	}
}

// Config is one evaluated storage configuration.
type Config struct {
	Schema  *xschema.Schema
	Catalog *relational.Catalog
	Queries []*sqlast.Query
	Cost    float64
}

// Iteration records one step of the greedy loop, for the Figure 10
// convergence plots.
type Iteration struct {
	Cost       float64
	Applied    string
	Candidates int
	Elapsed    time.Duration
}

// Result is the outcome of a search.
type Result struct {
	Best        Config
	InitialCost float64
	Trace       []Iteration
	Strategy    Strategy
}

// Evaluator costs physical schemas against a fixed workload. It is the
// GetPSchemaCost of Algorithm 4.1.
type Evaluator struct {
	Workload  *xquery.Workload
	RootCount float64
	Model     *optimizer.CostModel
}

// Evaluate maps the p-schema to relations, translates the workload and
// returns the weighted-average estimated cost together with the derived
// configuration.
func (e *Evaluator) Evaluate(ps *xschema.Schema) (Config, error) {
	cat, err := relational.MapWith(ps, relational.Options{RootCount: e.RootCount})
	if err != nil {
		return Config{}, err
	}
	opt := optimizer.New(cat)
	if e.Model != nil {
		opt.Model = *e.Model
	}
	queries := make([]*sqlast.Query, len(e.Workload.Entries))
	weights := make([]float64, len(e.Workload.Entries))
	for i, entry := range e.Workload.Entries {
		sq, err := xquery.Translate(entry.Query, ps, cat)
		if err != nil {
			return Config{}, err
		}
		queries[i] = sq
		weights[i] = entry.Weight
	}
	// Weighted average over queries and update operations together.
	total, wsum := 0.0, 0.0
	for i, q := range queries {
		est, err := opt.QueryCost(q)
		if err != nil {
			return Config{}, err
		}
		total += est.Cost * weights[i]
		wsum += weights[i]
	}
	for _, ue := range e.Workload.Updates {
		targets, err := xquery.ResolveUpdate(ue.Update, ps, cat)
		if err != nil {
			return Config{}, err
		}
		c, err := opt.UpdateCost(ue.Update, targets)
		if err != nil {
			return Config{}, err
		}
		total += c * ue.Weight
		wsum += ue.Weight
	}
	if wsum == 0 {
		return Config{}, fmt.Errorf("core: workload has zero total weight")
	}
	return Config{Schema: ps, Catalog: cat, Queries: queries, Cost: total / wsum}, nil
}

// GetPSchemaCost returns just the estimated workload cost of a p-schema.
func GetPSchemaCost(ps *xschema.Schema, wkld *xquery.Workload, rootCount float64) (float64, error) {
	e := &Evaluator{Workload: wkld, RootCount: rootCount}
	cfg, err := e.Evaluate(ps)
	if err != nil {
		return 0, err
	}
	return cfg.Cost, nil
}

// InitialSchema builds the starting p-schema for a strategy from an
// annotated schema.
func InitialSchema(s *xschema.Schema, strategy Strategy) (*xschema.Schema, error) {
	switch strategy {
	case GreedySO:
		return pschemaInitialOutlined(s)
	case GreedySI:
		return pschemaAllInlined(s)
	default:
		return pschemaInitialInlined(s)
	}
}

// GreedySearch runs Algorithm 4.1: annotate the schema with statistics,
// build the strategy's initial physical schema, then iteratively apply
// the single cheapest transformation until no candidate improves the
// cost (or the threshold / iteration bound fires).
func GreedySearch(schema *xschema.Schema, wkld *xquery.Workload, stats *xstats.Set, opts Options) (*Result, error) {
	if len(wkld.Entries) == 0 && len(wkld.Updates) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	annotated := schema.Clone()
	if stats != nil {
		if err := xstats.Annotate(annotated, stats); err != nil {
			return nil, fmt.Errorf("core: annotate: %w", err)
		}
	}
	ps, err := InitialSchema(annotated, opts.Strategy)
	if err != nil {
		return nil, fmt.Errorf("core: initial schema: %w", err)
	}
	rootCount := opts.RootCount
	if rootCount == 0 {
		rootCount = 1
	}
	eval := &Evaluator{Workload: wkld, RootCount: rootCount, Model: opts.Model}
	best, err := eval.Evaluate(ps)
	if err != nil {
		return nil, fmt.Errorf("core: evaluate initial schema: %w", err)
	}
	result := &Result{InitialCost: best.Cost, Strategy: opts.Strategy}
	tropts := transform.Options{Kinds: opts.kinds(), WildcardLabels: opts.WildcardLabels}

	for iter := 0; opts.MaxIterations == 0 || iter < opts.MaxIterations; iter++ {
		start := time.Now()
		cands := transform.Candidates(best.Schema, tropts)
		results := evaluateCandidates(best.Schema, cands, eval, opts.Workers)
		var bestCand Config
		bestCand.Cost = best.Cost
		applied := ""
		for i, cfg := range results {
			if cfg != nil && cfg.Cost < bestCand.Cost {
				bestCand = *cfg
				applied = cands[i].String()
			}
		}
		if applied == "" {
			break
		}
		improvement := (best.Cost - bestCand.Cost) / best.Cost
		best = bestCand
		result.Trace = append(result.Trace, Iteration{
			Cost:       best.Cost,
			Applied:    applied,
			Candidates: len(cands),
			Elapsed:    time.Since(start),
		})
		if opts.Threshold > 0 && improvement < opts.Threshold {
			break
		}
	}
	result.Best = best
	return result, nil
}

// evaluateCandidates applies and costs every candidate transformation of
// one schema, fanning out across workers. The result slice is indexed
// like cands; inapplicable or unanswerable candidates are nil (skipped,
// as the paper's engine does).
func evaluateCandidates(base *xschema.Schema, cands []transform.Transformation, eval *Evaluator, workers int) []*Config {
	results := make([]*Config, len(cands))
	if workers == 1 || len(cands) <= 1 {
		for i, tr := range cands {
			results[i] = evaluateOne(base, tr, eval)
		}
		return results
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = evaluateOne(base, cands[i], eval)
			}
		}()
	}
	for i := range cands {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

func evaluateOne(base *xschema.Schema, tr transform.Transformation, eval *Evaluator) *Config {
	nextSchema, err := transform.Apply(base, tr)
	if err != nil {
		return nil
	}
	cfg, err := eval.Evaluate(nextSchema)
	if err != nil {
		return nil
	}
	return &cfg
}
