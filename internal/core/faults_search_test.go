package core

import (
	"context"
	"fmt"
	"testing"

	"legodb/internal/faults"
	"legodb/internal/imdb"
	"legodb/internal/xquery"
	"legodb/internal/xstats"
)

// warmInitialCost puts the strategy's initial-schema cost into the
// cache, reproducing exactly what GreedySearch evaluates first, so a
// fault armed before the search fires on a candidate evaluation rather
// than on the (unguarded, pre-anytime) initial one.
func warmInitialCost(t *testing.T, strategy Strategy, wkld *xquery.Workload, cache *CostCache) {
	t.Helper()
	annotated := imdb.Schema().Clone()
	if err := xstats.Annotate(annotated, imdb.Stats()); err != nil {
		t.Fatal(err)
	}
	ps, err := InitialSchema(annotated, strategy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GetPSchemaCostWith(ps, wkld, 1, nil, cache); err != nil {
		t.Fatal(err)
	}
}

// finalSignature renders just the search's outcome (winning cost and
// schema), ignoring the trajectory — transient faults may reorder the
// applied moves without changing where greedy converges.
func finalSignature(res *Result) string {
	return fmt.Sprintf("%x\n%s", res.Best.Cost, res.Best.Schema.String())
}

// TestInjectedPanicIsIsolatedFromSearch: a candidate whose relational
// mapping panics is recorded and skipped; the search terminates, the
// worker pool settles, and the winner matches the fault-free run.
func TestInjectedPanicIsIsolatedFromSearch(t *testing.T) {
	opts := func(cache *CostCache) Options {
		return Options{Strategy: GreedySO, Workers: 1, Cache: cache, DisableIncremental: true}
	}
	baseline, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), opts(NewCostCache(0)))
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCostCache(0)
	warmInitialCost(t, GreedySO, imdb.LookupWorkload(), cache)
	restore := faults.Enable(faults.SiteMap, 1, true)
	defer restore()
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), opts(cache))
	if err != nil {
		t.Fatalf("search with an injected panic returned error: %v", err)
	}
	if hits := faults.Hits(faults.SiteMap); hits != 1 {
		t.Fatalf("failpoint fired %d times, want 1 (did the initial evaluation hit the cache?)", hits)
	}
	if res.Report.Failed != 1 {
		t.Fatalf("report.Failed = %d, want 1", res.Report.Failed)
	}
	ce := res.Report.Errors[0]
	if !ce.Panic || ce.Stage != "evaluate" || ce.Stack == "" {
		t.Fatalf("candidate error does not describe a recovered evaluation panic: %+v", ce)
	}
	if got, want := finalSignature(res), finalSignature(baseline); got != want {
		t.Fatalf("fault-injected search diverged from the fault-free winner:\n got %s\nwant %s", got, want)
	}
}

// TestTransientFaultsConvergeToFaultFreeWinner: error-mode faults that
// poison the first few candidate translations are skipped; the moves
// are regenerated on later iterations and greedy converges to the same
// winner as the fault-free baseline.
func TestTransientFaultsConvergeToFaultFreeWinner(t *testing.T) {
	opts := func(cache *CostCache) Options {
		return Options{Strategy: GreedySO, Workers: 1, Cache: cache, DisableIncremental: true}
	}
	baseline, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), opts(NewCostCache(0)))
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCostCache(0)
	warmInitialCost(t, GreedySO, imdb.LookupWorkload(), cache)
	restore := faults.Enable(faults.SiteTranslate, 3, false)
	defer restore()
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), opts(cache))
	if err != nil {
		t.Fatalf("search with transient faults returned error: %v", err)
	}
	if hits := faults.Hits(faults.SiteTranslate); hits != 3 {
		t.Fatalf("failpoint fired %d times, want 3", hits)
	}
	if res.Report.Failed != 3 {
		t.Fatalf("report.Failed = %d, want 3", res.Report.Failed)
	}
	for _, ce := range res.Report.Errors {
		if ce.Panic || ce.Stage != "evaluate" {
			t.Fatalf("unexpected candidate error: %+v", ce)
		}
	}
	if got, want := finalSignature(res), finalSignature(baseline); got != want {
		t.Fatalf("fault-injected search diverged from the fault-free winner:\n got %s\nwant %s", got, want)
	}
}

// TestMemoInconsistencyFallsBackToFullEvaluation: an inconsistent
// incremental memo state (forced via the core.memo failpoint) makes
// every evaluation fall back to the full pipeline — counted in the
// report, byte-identical outcome.
func TestMemoInconsistencyFallsBackToFullEvaluation(t *testing.T) {
	opts := Options{Strategy: GreedySO, Workers: 1, DisableCache: true}
	baseline, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), opts)
	if err != nil {
		t.Fatal(err)
	}
	restore := faults.Enable(faults.SiteMemo, -1, false)
	defer restore()
	res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), opts)
	if err != nil {
		t.Fatalf("search with a poisoned memo returned error: %v", err)
	}
	if res.Report.MemoFallbacks == 0 {
		t.Fatal("no memo fallbacks counted")
	}
	if res.Report.Failed != 0 {
		t.Fatalf("fallbacks must not count as failures: Failed = %d", res.Report.Failed)
	}
	if got, want := resultSignature(res), resultSignature(baseline); got != want {
		t.Fatalf("fallback evaluation diverged from the incremental baseline:\n got %s\nwant %s", got, want)
	}
}
