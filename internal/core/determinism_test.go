package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xquery"
)

// resultSignature renders everything observable about a search outcome —
// per-iteration costs and applied transformation names, the final cost,
// the chosen physical schema and its relational DDL — into one string, so
// runs can be compared byte for byte. Cache counters and timings are
// deliberately excluded: they are allowed to vary with scheduling, the
// outcome is not.
func resultSignature(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "initial %x\n", res.InitialCost)
	for i, it := range res.Trace {
		fmt.Fprintf(&b, "iter %d cost %x applied %s candidates %d\n", i, it.Cost, it.Applied, it.Candidates)
	}
	fmt.Fprintf(&b, "best %x\n", res.Best.Cost)
	b.WriteString(res.Best.Schema.String())
	b.WriteString("\n")
	b.WriteString(res.Best.Catalog.SQL())
	return b.String()
}

type searchVariant struct {
	name    string
	workers int
	cache   bool
}

func determinismVariants() []searchVariant {
	return []searchVariant{
		{"workers1-cache", 1, true},
		{"workers8-cache", 8, true},
		{"workers1-nocache", 1, false},
		{"workers8-nocache", 8, false},
	}
}

func variantOptions(v searchVariant, strategy Strategy) Options {
	opts := Options{Strategy: strategy, Workers: v.workers}
	if v.cache {
		opts.Cache = NewCostCache(0) // fresh cache per run
	} else {
		opts.DisableCache = true
	}
	return opts
}

// TestGreedyDeterministicAcrossWorkersAndCache: greedy search must pick
// the same transformations, costs and DDL whether candidates are costed
// sequentially or by 8 workers, and whether the memoization layer is on
// or off.
func TestGreedyDeterministicAcrossWorkersAndCache(t *testing.T) {
	for _, strategy := range []Strategy{GreedySO, GreedySI} {
		for _, wl := range []struct {
			name string
			w    *xquery.Workload
		}{
			{"lookup", imdb.LookupWorkload()},
			{"publish", imdb.PublishWorkload()},
		} {
			var want string
			var wantName string
			for _, v := range determinismVariants() {
				res, err := GreedySearch(context.Background(), imdb.Schema(), wl.w, imdb.Stats(), variantOptions(v, strategy))
				if err != nil {
					t.Fatalf("%v/%s/%s: %v", strategy, wl.name, v.name, err)
				}
				sig := resultSignature(res)
				if want == "" {
					want, wantName = sig, v.name
					continue
				}
				if sig != want {
					t.Errorf("%v/%s: variant %s diverged from %s:\n--- %s\n%s\n--- %s\n%s",
						strategy, wl.name, v.name, wantName, wantName, want, v.name, sig)
				}
			}
		}
	}
}

// TestBeamDeterministicAcrossWorkersAndCache mirrors the greedy test for
// the beam search at width 3.
func TestBeamDeterministicAcrossWorkersAndCache(t *testing.T) {
	var want, wantName string
	for _, v := range determinismVariants() {
		res, err := BeamSearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), BeamOptions{
			Options: variantOptions(v, GreedySO),
			Width:   3,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		sig := resultSignature(res)
		if want == "" {
			want, wantName = sig, v.name
			continue
		}
		if sig != want {
			t.Errorf("beam variant %s diverged from %s:\n--- %s\n%s\n--- %s\n%s",
				v.name, wantName, wantName, want, v.name, sig)
		}
	}
}

// TestDeterministicAcrossWorkerSweep is the worker-scaling determinism
// gate: with every reuse layer on — incremental evaluation, the
// logical-plan sharing layer and a registry-attached shared cache —
// greedy and beam searches must produce byte-identical traces, winners
// and DDL at 1, 2, 4, 8 and 16 workers. This is what licenses the
// worker-scaling benchmark scenario: throughput may scale with the
// pool, the outcome may not.
func TestDeterministicAcrossWorkerSweep(t *testing.T) {
	reg := NewCacheRegistry(0)
	opts := func(workers int) Options {
		return Options{Strategy: GreedySO, Workers: workers, Cache: reg.Attach()}
	}
	var wantG, wantB string
	for _, workers := range []int{1, 2, 4, 8, 16} {
		res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), opts(workers))
		if err != nil {
			t.Fatalf("greedy workers=%d: %v", workers, err)
		}
		if sig := resultSignature(res); wantG == "" {
			wantG = sig
		} else if sig != wantG {
			t.Errorf("greedy workers=%d diverged from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, wantG, workers, sig)
		}
		bres, err := BeamSearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), BeamOptions{
			Options: opts(workers), Width: 3,
		})
		if err != nil {
			t.Fatalf("beam workers=%d: %v", workers, err)
		}
		if sig := resultSignature(bres); wantB == "" {
			wantB = sig
		} else if sig != wantB {
			t.Errorf("beam workers=%d diverged from workers=1:\n--- workers=1\n%s\n--- workers=%d\n%s",
				workers, wantB, workers, sig)
		}
	}
}

// TestWarmCacheSameOutcomeFewerEvals: rerunning a search against an
// already-populated shared cache must reproduce the result exactly while
// paying far fewer full evaluator runs.
func TestWarmCacheSameOutcomeFewerEvals(t *testing.T) {
	shared := NewCostCache(0)
	run := func() *Result {
		res, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{
			Strategy: GreedySO, Cache: shared,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	warm := run()
	if resultSignature(cold) != resultSignature(warm) {
		t.Fatalf("warm rerun diverged:\ncold:\n%s\nwarm:\n%s", resultSignature(cold), resultSignature(warm))
	}
	if cold.Cache.Hits >= cold.Cache.Misses {
		t.Logf("cold run already hit-heavy: %+v (schemas revisited within the run)", cold.Cache)
	}
	if warm.Cache.Misses != 0 {
		t.Fatalf("warm run missed the cache %d times", warm.Cache.Misses)
	}
	// Warm run still materializes the winner of each improving iteration
	// plus the final best, but no more than that.
	maxEvals := uint64(len(warm.Trace) + 1)
	if warm.Evals > maxEvals {
		t.Fatalf("warm run paid %d full evaluations, want ≤ %d", warm.Evals, maxEvals)
	}
	if warm.Evals >= cold.Evals {
		t.Fatalf("warm run (%d evals) not cheaper than cold (%d)", warm.Evals, cold.Evals)
	}
}

// TestCacheSharedAcrossStrategiesIsSafe: greedy-so, greedy-si and beam
// sharing one cache must each match their private-cache outcome — the
// key includes the workload digest, so cross-strategy reuse can change
// only how many evaluations are paid, never which configuration wins.
func TestCacheSharedAcrossStrategiesIsSafe(t *testing.T) {
	shared := NewCostCache(0)
	for _, strategy := range []Strategy{GreedySO, GreedySI} {
		private, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		viaShared, err := GreedySearch(context.Background(), imdb.Schema(), imdb.LookupWorkload(), imdb.Stats(), Options{Strategy: strategy, Cache: shared})
		if err != nil {
			t.Fatal(err)
		}
		if resultSignature(private) != resultSignature(viaShared) {
			t.Errorf("%v via shared cache diverged from private-cache run", strategy)
		}
	}
}

// TestDeterminismWithUpdatesAndStats exercises the digesting of updates
// and document counts: a workload with updates searched twice (cache on,
// different worker counts) must agree.
func TestDeterminismWithUpdatesAndStats(t *testing.T) {
	makeWorkload := func() *xquery.Workload {
		w := imdb.LookupWorkload()
		w.AddUpdate(xquery.MustParseUpdate("INSERT imdb/show"), 10)
		return w
	}
	var want string
	for _, workers := range []int{1, 8} {
		res, err := GreedySearch(context.Background(), imdb.Schema(), makeWorkload(), imdb.Stats(), Options{
			Strategy: GreedySO, Workers: workers, RootCount: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		sig := resultSignature(res)
		if want == "" {
			want = sig
		} else if sig != want {
			t.Fatal("update workload search not deterministic across worker counts")
		}
	}
}
