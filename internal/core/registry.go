package core

import (
	"io"
	"sync/atomic"
)

// CacheRegistry shares one cost-cache family across every engine of a
// process. A multi-tenant XML-to-relational service holds one engine per
// tenant schema; near-identical tenants search overlapping configuration
// spaces, and without sharing each engine re-pays every costing the
// fleet has already performed. Engines attached to a registry search
// through a single CostCache — the configuration-cost memo plus the
// per-query and per-block stores riding inside it — keyed by the same
// (schema fingerprint, workload digest, model digest) CacheKey as
// engine-private caches, so identical candidates across tenants hit for
// free and entries can never be confused between tenants whose schemas,
// workloads or cost models differ.
//
// Concurrency: the registry and its cache are safe for concurrent use by
// any number of engines. Concurrent evaluations of the same key are
// deduplicated singleflight-style inside EvaluateCached — one engine
// runs the pipeline, the others block on its outcome (CacheStats.Dedups
// counts the adoptions).
//
// Capacity: the capacity passed to NewCacheRegistry is a global budget
// over all attached engines; when a shard fills, its oldest entries are
// evicted first (deterministic FIFO — shard placement and insertion
// order are pure functions of the keys, so repeated fleet runs evict
// identically).
type CacheRegistry struct {
	cache   *CostCache
	engines atomic.Int64
}

// NewCacheRegistry returns a registry whose shared cache is bounded to
// roughly capacity entries across all attached engines (0 selects the
// CostCache default of 64k entries).
func NewCacheRegistry(capacity int) *CacheRegistry {
	return &CacheRegistry{cache: NewCostCache(capacity)}
}

// Cache returns the registry's shared cost cache. A nil registry returns
// a nil cache (valid, never hits).
func (r *CacheRegistry) Cache() *CostCache {
	if r == nil {
		return nil
	}
	return r.cache
}

// Attach registers one engine with the registry and returns the shared
// cache it should evaluate through. Attaching is cheap — the counter
// feeds Stats().Engines — and engines never detach: the registry's
// lifetime is the process's.
func (r *CacheRegistry) Attach() *CostCache {
	if r == nil {
		return nil
	}
	r.engines.Add(1)
	return r.cache
}

// RegistryStats is the fleet-wide observability view: how many engines
// share the cache, and the aggregated hit/miss/dedup/eviction counters
// across all of them (per-engine deltas live in each search's
// Result.Cache and SearchReport.Cache).
type RegistryStats struct {
	Engines int
	Cache   CacheStats
}

// Stats snapshots the registry's fleet-wide counters.
func (r *CacheRegistry) Stats() RegistryStats {
	if r == nil {
		return RegistryStats{}
	}
	return RegistryStats{
		Engines: int(r.engines.Load()),
		Cache:   r.cache.Stats(),
	}
}

// Save writes the registry's shared cache to w in the framed snapshot
// format (magic, version, entry count, payload length, CRC32 — see
// CostCache.Save): one snapshot warms a whole fleet.
func (r *CacheRegistry) Save(w io.Writer) error {
	return r.Cache().Save(w)
}

// Load merges a snapshot written by Save (or by any CostCache.Save) into
// the registry's shared cache, returning the number of entries added.
// Corrupt snapshots are rejected with ErrCorruptSnapshot before anything
// merges.
func (r *CacheRegistry) Load(rd io.Reader) (int, error) {
	if r == nil {
		return 0, nil
	}
	return r.cache.Load(rd)
}

// SaveSnapshotFile writes the shared cache to a snapshot file atomically
// (temp file + rename).
func (r *CacheRegistry) SaveSnapshotFile(path string) error {
	return r.Cache().SaveSnapshotFile(path)
}

// LoadSnapshotFile merges a snapshot file into the shared cache with the
// lenient warm-start semantics of CostCache.LoadSnapshotFile: a missing
// file loads nothing, a corrupt one is quarantined to path+".corrupt"
// and reported in the warning, and the fleet continues cold.
func (r *CacheRegistry) LoadSnapshotFile(path string) (n int, warning string, err error) {
	if r == nil {
		return 0, "", nil
	}
	return r.cache.LoadSnapshotFile(path)
}
