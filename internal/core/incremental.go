package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"legodb/internal/faults"
	"legodb/internal/optimizer"
	"legodb/internal/plan"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

// Incremental evaluation (the per-evaluator reuse layers).
//
// A greedy move rewrites exactly one named type, yet the baseline
// pipeline re-maps the whole p-schema and re-translates and re-costs the
// whole workload per candidate. The layers here exploit the locality:
//
//   - delta re-mapping: the evaluator's relational.Mapper memoizes
//     column templates per shallow definition digest, so an unchanged
//     definition's columns are reused by pointer (see relational.Mapper);
//   - per-query cost reuse: each workload slot memoizes its recent
//     translate+cost outcomes keyed by the dependency state the
//     translation actually read (queryCacheKey below), so queries
//     untouched by a transformation skip xquery.Translate and
//     optimizer.QueryCost entirely;
//   - materialized-configuration reuse: every full evaluation is
//     remembered under the schema's name-sensitive digest, so a
//     cost-cache hit that wins an iteration no longer pays a
//     re-evaluation just to recover its catalog and DDL.
//
// Hard invariant: incremental and full evaluation produce bit-identical
// costs (cached floats are the stored outputs of an identical
// computation, and the weighted summation order never changes),
// byte-identical traces and byte-identical DDL (the materialization
// cache keys on a name-sensitive schema digest, which pins type and
// table names).

const (
	// queryVariantsCap bounds the memoized outcomes per dependency group
	// (greedy neighborhoods revisit a bounded set of dependency states).
	queryVariantsCap = 16
	// queryGroupsCap bounds the distinct dependency lists per workload
	// slot. Successive candidates mostly reuse a few lists (a rewrite
	// far from the query's path leaves its dependency list intact), but
	// inlining and outlining near the path rename the examined types, so
	// a search accumulates dozens of lists per query.
	queryGroupsCap = 64
	// matCacheCap bounds the materialized-configuration cache.
	matCacheCap = 256
)

// queryVariant is one memoized translate+cost outcome for a workload
// query: the key its dependency state hashed to, and the cost. Variants
// deliberately do NOT retain the translated AST: a search stores
// hundreds of variants, and a pointer-dense AST graph per variant turns
// every GC cycle into a scan of the whole translation history — the
// scan time was measured eating the entire incremental saving on small
// heaps. The AST a shape hit needs to re-cost lives once per group
// (depsGroup.shapeAST), bounding retained ASTs by distinct dependency
// lists instead of distinct dependency states.
type queryVariant struct {
	key  uint64 // full dependency-state key: structure + statistics
	skey uint64 // shape key: structure only (see depKey)
	cost float64
}

// depsGroup collects the variants whose translations examined the same
// named types. Grouping makes lookups cheap: the dependency-state key is
// a pure function of (root, deps, digests, catalog), so one hash per
// group decides every variant in it — a lookup costs one hash per
// distinct dependency list plus uint64 compares, not one hash per
// stored variant. shapeAST is the most recently stored translation for
// this dependency list together with its shape key: when a lookup's
// shape key matches, the AST is exactly what re-translation would
// produce and only re-costing is paid.
type depsGroup struct {
	deps     []string
	variants []queryVariant
	shapeKey uint64
	shapeAST *sqlast.Query // nil for update slots
}

// queryShardCount shards the per-query store by query digest: every
// worker consults the store for every workload slot of every candidate,
// so a single mutex would serialize the pool's hottest read path.
const queryShardCount = 16

// queryStore holds memoized translate+cost outcomes grouped by query
// digest. It lives inside a shared CostCache when the evaluator has one
// (so searches over the same queries reuse each other's translations),
// falling back to an evaluator-local store otherwise. Races store
// identical values (the key determines the outputs), so last-write-wins
// is sound. The zero value is ready to use.
//
// Mutation is copy-on-write on the group slice: put reassigns m[qdig]
// with a fresh header and never shrinks or rewrites array elements a
// concurrent snapshot can see (appends past a reader's len are
// invisible; evictions copy), so snapshots are scanned without the lock.
type queryStore struct {
	shards [queryShardCount]queryShard
}

type queryShard struct {
	mu sync.Mutex
	m  map[uint64][]depsGroup
}

func (qs *queryStore) shard(qdig uint64) *queryShard {
	return &qs.shards[(qdig^qdig>>32)&(queryShardCount-1)]
}

// snapshot returns the dependency groups stored under a query digest.
func (qs *queryStore) snapshot(qdig uint64) []depsGroup {
	sh := qs.shard(qdig)
	sh.mu.Lock()
	gs := sh.m[qdig]
	sh.mu.Unlock()
	return gs
}

// put stores a variant under a query digest and its dependency list,
// evicting the oldest variant (or group) on overflow. q, when non-nil,
// becomes the group's shape AST (the translation matching v.skey).
func (qs *queryStore) put(qdig uint64, deps []string, v queryVariant, q *sqlast.Query) {
	sh := qs.shard(qdig)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[uint64][]depsGroup)
	}
	gs := append(sh.m[qdig][:0:0], sh.m[qdig]...)
	gi := -1
	for i := range gs {
		if slicesEqual(gs[i].deps, deps) {
			gi = i
			break
		}
	}
	switch {
	case gi < 0:
		// New dependency lists go to the front: lookups scan in order, and
		// a search's hits cluster in recently created groups. The oldest
		// list falls off the tail.
		if len(gs) >= queryGroupsCap {
			gs = gs[:queryGroupsCap-1]
		}
		g := depsGroup{deps: deps, variants: []queryVariant{v}}
		if q != nil {
			g.shapeKey, g.shapeAST = v.skey, q
		}
		gs = append(append(gs[:0:0], g), gs...)
	default:
		g := gs[gi]
		if q != nil && g.shapeKey != v.skey {
			g.shapeKey, g.shapeAST = v.skey, q
		}
		for _, old := range g.variants {
			if old.key == v.key {
				gs[gi] = g
				sh.m[qdig] = gs
				return
			}
		}
		if len(g.variants) >= queryVariantsCap {
			vs := make([]queryVariant, 0, len(g.variants))
			g.variants = append(vs, g.variants[1:]...)
		}
		g.variants = append(g.variants, v)
		gs[gi] = g
	}
	sh.m[qdig] = gs
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fnv64a primitives, inlined to keep the dependency-key hash
// allocation-free (hash/fnv's New64a escapes to the heap, and the key
// is computed once per dependency group per slot per evaluation — the
// hottest loop of the incremental path).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return fnvByte(h, 0) // terminator keeps the encoding unambiguous
}

// mixUint64 folds one 64-bit word into the chain. Its inputs are
// already-hashed words (table digests, per-name state hashes), so a
// single multiply-xor-shift round diffuses them fully — much cheaper
// than the byte-at-a-time fnv loop, which dominated the dependency-key
// hash (the hottest per-candidate loop of the incremental path).
func mixUint64(h, v uint64) uint64 {
	h ^= v
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 32
	return h
}

// depState is the dependency-state view of one evaluation: the schema's
// shallow digests and the catalog, with each named type's 64-bit state
// hash memoized on first use. One evaluation consults the cache for
// every workload slot against many stored dependency lists, and those
// lists overlap heavily — memoizing per name turns each group key into
// a handful of multiplies per dependency.
// depKey is the pair of dependency-state hashes for one translation:
// full covers everything translate+cost reads (type structure and table
// statistics), shape covers only what translate reads (structure). A
// full match reuses the stored cost and query outright; a shape-only
// match reuses the stored query AST — the expensive half — and pays
// only re-costing against the current catalog. Shape-only matches are
// common in a search: a transformation's cardinality effects cascade
// into descendant tables' row estimates without touching their
// structure.
type depKey struct {
	full, shape uint64
}

type depState struct {
	root    uint64 // fnv state after hashing the root name
	digests map[string]xschema.Fingerprint
	cat     *relational.Catalog
	names   map[string]depKey
}

// acquireDepState returns a depState initialized for one evaluation,
// reusing a pooled instance (and its per-name memo map) when one is
// free. Release with releaseDepState when the evaluation is done.
func (e *Evaluator) acquireDepState(ps *xschema.Schema, cat *relational.Catalog, digests map[string]xschema.Fingerprint) *depState {
	st, _ := e.depPool.Get().(*depState)
	if st == nil {
		st = &depState{names: make(map[string]depKey, len(digests))}
	} else {
		clear(st.names)
	}
	st.root = fnvStr(fnvOffset64, ps.Root)
	st.digests = digests
	st.cat = cat
	return st
}

// releaseDepState returns a depState to the pool, dropping references
// to the evaluation's schema state.
func (e *Evaluator) releaseDepState(st *depState) {
	st.digests, st.cat = nil, nil
	e.depPool.Put(st)
}

// acquireDigests computes the schema's shallow type digests into a
// pooled map; release with releaseDigests.
func (e *Evaluator) acquireDigests(ps *xschema.Schema) map[string]xschema.Fingerprint {
	m, _ := e.digPool.Get().(map[string]xschema.Fingerprint)
	if m == nil {
		m = make(map[string]xschema.Fingerprint, len(ps.Types))
	}
	return ps.TypeDigestsInto(m)
}

func (e *Evaluator) releaseDigests(m map[string]xschema.Fingerprint) {
	e.digPool.Put(m)
}

// stateOf hashes everything a translation can read about one named
// type: its name, its shallow definition digest and its table's content
// digest (with explicit markers for aliases and absent names or
// tables). The full hash chains the table's complete digest; the shape
// hash chains only its structural ShapeDigest, so it is stable across
// statistics-only table changes.
func (st *depState) stateOf(name string) depKey {
	if v, ok := st.names[name]; ok {
		return v
	}
	h := fnvStr(fnvOffset64, name)
	if dig, ok := st.digests[name]; ok {
		for _, b := range dig {
			h = fnvByte(h, b)
		}
	} else {
		h = fnvByte(h, 0xFF) // name undefined in this schema
	}
	k := depKey{}
	tblName, mapped := st.cat.TableOf[name]
	switch {
	case !mapped:
		h = fnvByte(h, 'n') // type unknown to the catalog
		k = depKey{full: h, shape: h}
	case tblName == "":
		h = fnvByte(h, 'a') // alias: no table of its own
		k = depKey{full: h, shape: h}
	default:
		tbl := st.cat.Table(tblName)
		if tbl == nil {
			h = fnvByte(h, 'm') // mapped but missing (malformed)
			k = depKey{full: h, shape: h}
		} else {
			h = fnvByte(h, 't')
			k = depKey{full: mixUint64(h, tbl.Digest), shape: mixUint64(h, tbl.ShapeDigest)}
		}
	}
	st.names[name] = k
	return k
}

// keyOf hashes the dependency state of one translation: the root name
// plus the state of every examined type, in examination order.
// Translation is a deterministic function whose only schema reads are
// the root name and the examined definitions, and whose only catalog
// reads are those types' tables; query and update costing read only the
// tables the translation referenced. So if a stored variant's key
// matches the current state, re-running translate+cost would reproduce
// the stored result bit for bit.
func (st *depState) keyOf(deps []string) depKey {
	k := depKey{full: st.root, shape: st.root}
	for _, name := range deps {
		s := st.stateOf(name)
		k.full = mixUint64(k.full, s.full)
		k.shape = mixUint64(k.shape, s.shape)
	}
	return k
}

// queryCacheKey is keyOf over a one-shot depState (test seam); it
// returns the full key.
func queryCacheKey(root string, deps []string, digests map[string]xschema.Fingerprint, cat *relational.Catalog) uint64 {
	st := &depState{root: fnvStr(fnvOffset64, root), digests: digests, cat: cat, names: map[string]depKey{}}
	return st.keyOf(deps).full
}

// blockStoreFor returns the block-costing memo the evaluator's plan
// spaces feed: the shared cache's when one is attached (so sibling
// candidates and repeated searches share block costings for tables whose
// statistics did not change), the evaluator's own otherwise.
func (e *Evaluator) blockStoreFor() *plan.Store {
	if e.Cache != nil {
		return &e.Cache.blocks
	}
	return &e.localBlocks
}

// sharedMapper returns the evaluator's memoizing relational mapper.
func (e *Evaluator) sharedMapper() *relational.Mapper {
	e.mapperOnce.Do(func() {
		e.mapper = relational.NewMapper(relational.Options{RootCount: e.RootCount})
	})
	return e.mapper
}

// slotDigests computes each workload slot's identity digest once: the
// query or update text plus the cost-model digest (outcomes under a
// different cost model must never be reused). Together with the
// per-variant dependency-state key, this is the full cache identity —
// weights and root counts stay out (raw per-slot costs are stored;
// root-count effects reach costs only through table statistics, which
// the dependency key covers).
func (e *Evaluator) slotDigests() []uint64 {
	e.qdigOnce.Do(func() {
		mid := ModelID(e.Model)
		digest := func(tag byte, text string) uint64 {
			h := fnv.New64a()
			var b [9]byte
			b[0] = tag
			for i := 0; i < 8; i++ {
				b[i+1] = byte(mid >> (8 * i))
			}
			h.Write(b[:])
			h.Write([]byte(text))
			return h.Sum64()
		}
		out := make([]uint64, 0, len(e.Workload.Entries)+len(e.Workload.Updates))
		for _, en := range e.Workload.Entries {
			out = append(out, digest('q', en.Query.String()))
		}
		for _, u := range e.Workload.Updates {
			out = append(out, digest('u', u.Update.String()))
		}
		e.qdigests = out
	})
	return e.qdigests
}

// queryStoreFor returns the per-query memoization store: the shared
// cache's when one is attached (cross-search reuse), the evaluator's
// own otherwise.
func (e *Evaluator) queryStoreFor() *queryStore {
	if e.Cache != nil {
		return &e.Cache.queries
	}
	return &e.localQueries
}

// qhitKind classifies a per-query cache lookup: a full hit reuses the
// stored cost and translation, a shape hit reuses only the translation
// (the dependency structure matched but some table statistics changed,
// so the caller must re-cost the stored AST), a miss reuses nothing.
type qhitKind int

const (
	qmiss qhitKind = iota
	qhitShape
	qhitFull
)

// cachedQueryCost scans a workload slot's stored variants for one whose
// dependency state matches the current schema and catalog: one hash per
// dependency group, one uint64 compare per variant. A full-key match
// anywhere wins (the returned AST is the group's shape AST when its
// shape key still matches, nil otherwise — hits intentionally do not
// guarantee an AST, see queryVariant); failing that, the first
// shape-key match with a stored translation is returned for re-costing,
// together with its dependency list and the keys the new costing
// should be stored under.
func (e *Evaluator) cachedQueryCost(slot int, st *depState) (float64, *sqlast.Query, []string, depKey, qhitKind) {
	groups := e.queryStoreFor().snapshot(e.slotDigests()[slot])
	var shapeQ *sqlast.Query
	var shapeDeps []string
	var shapeKey depKey
	for gi := range groups {
		g := &groups[gi]
		key := st.keyOf(g.deps)
		for vi := range g.variants {
			v := &g.variants[vi]
			if v.key == key.full {
				e.qhits.Add(1)
				var ast *sqlast.Query
				if g.shapeAST != nil && g.shapeKey == key.shape {
					ast = g.shapeAST
				}
				return v.cost, ast, g.deps, key, qhitFull
			}
		}
		if shapeQ == nil && g.shapeAST != nil && g.shapeKey == key.shape {
			shapeQ, shapeDeps, shapeKey = g.shapeAST, g.deps, key
		}
	}
	if shapeQ != nil {
		e.qhits.Add(1)
		return 0, shapeQ, shapeDeps, shapeKey, qhitShape
	}
	e.qmisses.Add(1)
	return 0, nil, nil, depKey{}, qmiss
}

// storeQueryCost memoizes a slot's translate+cost outcome.
func (e *Evaluator) storeQueryCost(slot int, key depKey, deps []string, cost float64, q *sqlast.Query) {
	e.queryStoreFor().put(e.slotDigests()[slot], deps, queryVariant{key: key.full, skey: key.shape, cost: cost}, q)
}

// namedKeyFrom derives a name-sensitive schema key from the shallow
// digest map the evaluation already computed: the root, the definition
// order, and each definition's shallow digest. Shallow digests encode
// Refs by target name, so this triple determines the schema's rendered
// form exactly as xschema.NamedDigest does — without re-walking the
// definition trees.
func namedKeyFrom(ps *xschema.Schema, digests map[string]xschema.Fingerprint) xschema.Fingerprint {
	h := xschema.NewHash128()
	h.Str(ps.Root)
	h.Byte(0)
	for _, name := range ps.Names {
		h.Str(name)
		h.Byte(0)
		if d, ok := digests[name]; ok {
			h.Bytes(d[:])
		} else {
			h.Byte('?')
		}
	}
	return h.Sum()
}

// rememberConfig stores a fully evaluated configuration under its
// schema's derived name-sensitive key (FIFO-bounded). Only
// configurations at least as cheap as the cheapest seen are kept: a
// search only ever materializes iteration winners, which are cheapest-
// so-far by construction, and each remembered Config pins its schema,
// catalog and translated queries — retaining one per candidate turns
// every GC cycle into a scan of the search's whole history.
func (e *Evaluator) rememberConfig(ps *xschema.Schema, digests map[string]xschema.Fingerprint, cfg Config) {
	e.matMu.Lock()
	defer e.matMu.Unlock()
	if len(e.matCache) > 0 && cfg.Cost > e.matBest {
		return
	}
	e.matBest = cfg.Cost
	key := namedKeyFrom(ps, digests)
	if e.matCache == nil {
		e.matCache = make(map[xschema.Fingerprint]*Config)
	}
	if _, ok := e.matCache[key]; ok {
		return
	}
	e.matCache[key] = &cfg
	e.matOrder = append(e.matOrder, key)
	for len(e.matCache) > matCacheCap {
		oldest := e.matOrder[0]
		e.matOrder = e.matOrder[1:]
		delete(e.matCache, oldest)
	}
}

// lookupConfig returns the remembered configuration for a schema, or
// nil. The returned config's schema renders byte-identically to ps (the
// key pins root, definition order, names and annotated bodies), so
// substituting it preserves traces and DDL exactly.
func (e *Evaluator) lookupConfig(ps *xschema.Schema) *Config {
	digests := e.acquireDigests(ps)
	key := namedKeyFrom(ps, digests)
	e.releaseDigests(digests)
	e.matMu.Lock()
	defer e.matMu.Unlock()
	return e.matCache[key]
}

// errMemoInconsistent reports an incremental evaluation that found its
// memoized state out of step with the schema in hand (e.g. a cached
// per-query variant without its translated query). The evaluator treats
// it as a signal to fall back to the full pipeline for this candidate —
// a counted graceful degradation, never a trusted-but-wrong cost.
var errMemoInconsistent = errors.New("core: inconsistent memo state")

// evaluateIncremental is the incremental counterpart of evaluateFull:
// same pipeline, same summation order, but each workload slot first
// consults its per-query cost cache and only re-translates and re-costs
// on a dependency-state change.
//
// materialize selects what a hit without a retained translation does:
// during the search (false) the slot's cached cost is used as-is and
// the evaluation returns a cost-only Config — candidates only race on
// cost, so translations for hit slots are pure overhead there; when
// materializing a winner (true) such slots re-translate so the returned
// Config carries the complete catalog and query set.
func (e *Evaluator) evaluateIncremental(ctx context.Context, ps *xschema.Schema, materialize bool) (Config, error) {
	if err := faults.Inject(faults.SiteMemo); err != nil {
		return Config{}, errMemoInconsistent
	}
	digests := e.acquireDigests(ps)
	defer e.releaseDigests(digests)
	cat, err := e.sharedMapper().Map(ps, digests)
	if err != nil {
		return Config{}, err
	}
	var opt *optimizer.Optimizer
	getOpt := func() *optimizer.Optimizer {
		if opt == nil {
			opt = optimizer.New(cat)
			if e.Model != nil {
				opt.Model = *e.Model
			}
		}
		return opt
	}
	// The plan space is per-evaluation (it threads this catalog's table
	// digests into its memo keys); the store behind it outlives the
	// evaluation. Lazily built: evaluations fully answered by the
	// per-query cache never cost a block.
	var space *plan.Space
	getSpace := func() *plan.Space {
		if space == nil {
			space = plan.NewSpace(getOpt(), ModelID(e.Model), e.blockStoreFor())
		}
		return space
	}
	defer func() {
		if space != nil {
			e.blocksReq.Add(space.Requested)
			e.blocksCosted.Add(space.Computed)
		}
	}()
	queries := make([]*sqlast.Query, len(e.Workload.Entries))
	st := e.acquireDepState(ps, cat, digests)
	defer e.releaseDepState(st)
	total, wsum := 0.0, 0.0
	complete := true
	for i, entry := range e.Workload.Entries {
		if err := ctx.Err(); err != nil {
			return Config{}, err
		}
		cost, sq, deps, key, kind := e.cachedQueryCost(i, st)
		if kind == qhitFull && sq == nil {
			// A hit whose group no longer holds this state's translation:
			// the cost stands.
			if !materialize {
				// The returned Config will be cost-only (Materialize
				// re-derives the winner's queries; see below).
				complete = false
			} else {
				// Re-derive just the translation; re-storing it refreshes
				// the group's shape AST for later materializations.
				sq, deps, err = xquery.TranslateDeps(entry.Query, ps, cat)
				if err != nil {
					return Config{}, err
				}
				key = st.keyOf(deps)
				e.translations.Add(1)
				e.storeQueryCost(i, key, deps, cost, sq)
			}
		}
		if kind != qhitFull {
			if kind == qmiss {
				sq, deps, err = xquery.TranslateDeps(entry.Query, ps, cat)
				if err != nil {
					return Config{}, err
				}
				key = st.keyOf(deps)
				e.translations.Add(1)
			}
			// On a shape hit the stored AST is what re-translation would
			// produce (translation reads only the structure the shape key
			// covers), so only the costing below is paid.
			if e.DisableSharing {
				est, err := getOpt().QueryCost(sq)
				if err != nil {
					return Config{}, err
				}
				cost = est.Cost
			} else {
				cost, err = getSpace().QueryCost(sq)
				if err != nil {
					return Config{}, err
				}
			}
			e.storeQueryCost(i, key, deps, cost, sq)
		}
		queries[i] = sq
		total += cost * entry.Weight
		wsum += entry.Weight
	}
	for j, ue := range e.Workload.Updates {
		if err := ctx.Err(); err != nil {
			return Config{}, err
		}
		slot := len(e.Workload.Entries) + j
		// Update variants store no query AST, so shape hits never fire
		// for them (cachedQueryCost requires a stored translation): kind
		// is qhitFull or qmiss.
		cost, _, _, _, kind := e.cachedQueryCost(slot, st)
		if kind != qhitFull {
			targets, deps, err := xquery.ResolveUpdateDeps(ue.Update, ps, cat)
			if err != nil {
				return Config{}, err
			}
			cost, err = getOpt().UpdateCost(ue.Update, targets)
			if err != nil {
				return Config{}, err
			}
			e.translations.Add(1)
			e.storeQueryCost(slot, st.keyOf(deps), deps, cost, nil)
		}
		total += cost * ue.Weight
		wsum += ue.Weight
	}
	if wsum == 0 {
		return Config{}, fmt.Errorf("core: workload has zero total weight")
	}
	if !complete {
		// Cost-only result: some slot's cost came from a variant whose
		// translation is no longer retained. The search only compares
		// costs; the winning configuration's catalog and queries are
		// derived once by Materialize, which refuses cost-only configs.
		return Config{Schema: ps, Cost: total / wsum}, nil
	}
	cfg := Config{Schema: ps, Catalog: cat, Queries: queries, Cost: total / wsum}
	e.rememberConfig(ps, digests, cfg)
	return cfg, nil
}
