package core

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"

	"legodb/internal/faults"
	"legodb/internal/optimizer"
	"legodb/internal/plan"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

// Incremental evaluation (the per-evaluator reuse layers).
//
// A greedy move rewrites exactly one named type, yet the baseline
// pipeline re-maps the whole p-schema and re-translates and re-costs the
// whole workload per candidate. The layers here exploit the locality:
//
//   - delta re-mapping: the evaluator's relational.Mapper memoizes
//     column templates per shallow definition digest, so an unchanged
//     definition's columns are reused by pointer (see relational.Mapper);
//   - per-query cost reuse: each workload slot memoizes its recent
//     translate+cost outcomes keyed by the dependency state the
//     translation actually read (queryCacheKey below), so queries
//     untouched by a transformation skip xquery.Translate and
//     optimizer.QueryCost entirely;
//   - materialized-configuration reuse: every full evaluation is
//     remembered under the schema's name-sensitive digest, so a
//     cost-cache hit that wins an iteration no longer pays a
//     re-evaluation just to recover its catalog and DDL.
//
// Hard invariant: incremental and full evaluation produce bit-identical
// costs (cached floats are the stored outputs of an identical
// computation, and the weighted summation order never changes),
// byte-identical traces and byte-identical DDL (the materialization
// cache keys on a name-sensitive schema digest, which pins type and
// table names).

const (
	// queryVariantsCap bounds the memoized outcomes per dependency group
	// (greedy neighborhoods revisit a bounded set of dependency states).
	queryVariantsCap = 16
	// queryGroupsCap bounds the distinct dependency lists per workload
	// slot. Successive candidates mostly reuse a few lists (a rewrite
	// far from the query's path leaves its dependency list intact), but
	// inlining and outlining near the path rename the examined types, so
	// a search accumulates dozens of lists per query.
	queryGroupsCap = 64
	// matCacheCap bounds the materialized-configuration cache.
	matCacheCap = 256
)

// queryVariant is one memoized translate+cost outcome for a workload
// query: the key its dependency state hashed to, and the outputs.
type queryVariant struct {
	key   uint64
	cost  float64
	query *sqlast.Query // nil for update slots
}

// depsGroup collects the variants whose translations examined the same
// named types. Grouping makes lookups cheap: the dependency-state key is
// a pure function of (root, deps, digests, catalog), so one hash per
// group decides every variant in it — a lookup costs one hash per
// distinct dependency list plus uint64 compares, not one hash per
// stored variant.
type depsGroup struct {
	deps     []string
	variants []queryVariant
}

// queryStore holds memoized translate+cost outcomes grouped by query
// digest. It lives inside a shared CostCache when the evaluator has one
// (so searches over the same queries reuse each other's translations),
// falling back to an evaluator-local store otherwise. Races store
// identical values (the key determines the outputs), so last-write-wins
// is sound.
//
// Mutation is copy-on-write on the group slice: put reassigns m[qdig]
// with a fresh header and never shrinks or rewrites array elements a
// concurrent snapshot can see (appends past a reader's len are
// invisible; evictions copy), so snapshots are scanned without the lock.
type queryStore struct {
	mu sync.Mutex
	m  map[uint64][]depsGroup
}

// snapshot returns the dependency groups stored under a query digest.
func (qs *queryStore) snapshot(qdig uint64) []depsGroup {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	return qs.m[qdig]
}

// put stores a variant under a query digest and its dependency list,
// evicting the oldest variant (or group) on overflow.
func (qs *queryStore) put(qdig uint64, deps []string, v queryVariant) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if qs.m == nil {
		qs.m = make(map[uint64][]depsGroup)
	}
	gs := append(qs.m[qdig][:0:0], qs.m[qdig]...)
	gi := -1
	for i := range gs {
		if slicesEqual(gs[i].deps, deps) {
			gi = i
			break
		}
	}
	switch {
	case gi < 0:
		// New dependency lists go to the front: lookups scan in order, and
		// a search's hits cluster in recently created groups. The oldest
		// list falls off the tail.
		if len(gs) >= queryGroupsCap {
			gs = gs[:queryGroupsCap-1]
		}
		gs = append(append(gs[:0:0], depsGroup{deps: deps, variants: []queryVariant{v}}), gs...)
	default:
		g := gs[gi]
		for _, old := range g.variants {
			if old.key == v.key {
				return
			}
		}
		if len(g.variants) >= queryVariantsCap {
			vs := make([]queryVariant, 0, len(g.variants))
			g.variants = append(vs, g.variants[1:]...)
		}
		g.variants = append(g.variants, v)
		gs[gi] = g
	}
	qs.m[qdig] = gs
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fnv64a primitives, inlined to keep the dependency-key hash
// allocation-free (hash/fnv's New64a escapes to the heap, and the key
// is computed once per dependency group per slot per evaluation — the
// hottest loop of the incremental path).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return fnvByte(h, 0) // terminator keeps the encoding unambiguous
}

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v >> (8 * i) & 0xFF)) * fnvPrime64
	}
	return h
}

// depState is the dependency-state view of one evaluation: the schema's
// shallow digests and the catalog, with each named type's 64-bit state
// hash memoized on first use. One evaluation consults the cache for
// every workload slot against many stored dependency lists, and those
// lists overlap heavily — memoizing per name turns each group key into
// a handful of multiplies per dependency.
type depState struct {
	root    uint64 // fnv state after hashing the root name
	digests map[string]xschema.Fingerprint
	cat     *relational.Catalog
	names   map[string]uint64
}

func newDepState(ps *xschema.Schema, cat *relational.Catalog, digests map[string]xschema.Fingerprint) *depState {
	return &depState{
		root:    fnvStr(fnvOffset64, ps.Root),
		digests: digests,
		cat:     cat,
		names:   make(map[string]uint64, len(digests)),
	}
}

// stateOf hashes everything a translation can read about one named
// type: its name, its shallow definition digest and its table's content
// digest (with explicit markers for aliases and absent names or
// tables).
func (st *depState) stateOf(name string) uint64 {
	if v, ok := st.names[name]; ok {
		return v
	}
	h := fnvStr(fnvOffset64, name)
	if dig, ok := st.digests[name]; ok {
		for _, b := range dig {
			h = fnvByte(h, b)
		}
	} else {
		h = fnvByte(h, 0xFF) // name undefined in this schema
	}
	tblName, mapped := st.cat.TableOf[name]
	switch {
	case !mapped:
		h = fnvByte(h, 'n') // type unknown to the catalog
	case tblName == "":
		h = fnvByte(h, 'a') // alias: no table of its own
	default:
		tbl := st.cat.Table(tblName)
		if tbl == nil {
			h = fnvByte(h, 'm') // mapped but missing (malformed)
		} else {
			h = fnvUint64(fnvByte(h, 't'), tbl.Digest)
		}
	}
	st.names[name] = h
	return h
}

// keyOf hashes the dependency state of one translation: the root name
// plus the state of every examined type, in examination order.
// Translation is a deterministic function whose only schema reads are
// the root name and the examined definitions, and whose only catalog
// reads are those types' tables; query and update costing read only the
// tables the translation referenced. So if a stored variant's key
// matches the current state, re-running translate+cost would reproduce
// the stored result bit for bit.
func (st *depState) keyOf(deps []string) uint64 {
	h := st.root
	for _, name := range deps {
		h = fnvUint64(h, st.stateOf(name))
	}
	return h
}

// queryCacheKey is keyOf over a one-shot depState (test seam).
func queryCacheKey(root string, deps []string, digests map[string]xschema.Fingerprint, cat *relational.Catalog) uint64 {
	st := &depState{root: fnvStr(fnvOffset64, root), digests: digests, cat: cat, names: map[string]uint64{}}
	return st.keyOf(deps)
}

// blockStoreFor returns the block-costing memo the evaluator's plan
// spaces feed: the shared cache's when one is attached (so sibling
// candidates and repeated searches share block costings for tables whose
// statistics did not change), the evaluator's own otherwise.
func (e *Evaluator) blockStoreFor() *plan.Store {
	if e.Cache != nil {
		return &e.Cache.blocks
	}
	return &e.localBlocks
}

// sharedMapper returns the evaluator's memoizing relational mapper.
func (e *Evaluator) sharedMapper() *relational.Mapper {
	e.mapperOnce.Do(func() {
		e.mapper = relational.NewMapper(relational.Options{RootCount: e.RootCount})
	})
	return e.mapper
}

// slotDigests computes each workload slot's identity digest once: the
// query or update text plus the cost-model digest (outcomes under a
// different cost model must never be reused). Together with the
// per-variant dependency-state key, this is the full cache identity —
// weights and root counts stay out (raw per-slot costs are stored;
// root-count effects reach costs only through table statistics, which
// the dependency key covers).
func (e *Evaluator) slotDigests() []uint64 {
	e.qdigOnce.Do(func() {
		mid := ModelID(e.Model)
		digest := func(tag byte, text string) uint64 {
			h := fnv.New64a()
			var b [9]byte
			b[0] = tag
			for i := 0; i < 8; i++ {
				b[i+1] = byte(mid >> (8 * i))
			}
			h.Write(b[:])
			h.Write([]byte(text))
			return h.Sum64()
		}
		out := make([]uint64, 0, len(e.Workload.Entries)+len(e.Workload.Updates))
		for _, en := range e.Workload.Entries {
			out = append(out, digest('q', en.Query.String()))
		}
		for _, u := range e.Workload.Updates {
			out = append(out, digest('u', u.Update.String()))
		}
		e.qdigests = out
	})
	return e.qdigests
}

// queryStoreFor returns the per-query memoization store: the shared
// cache's when one is attached (cross-search reuse), the evaluator's
// own otherwise.
func (e *Evaluator) queryStoreFor() *queryStore {
	if e.Cache != nil {
		return &e.Cache.queries
	}
	return &e.localQueries
}

// cachedQueryCost scans a workload slot's stored variants for one whose
// dependency state matches the current schema and catalog: one hash per
// dependency group, one uint64 compare per variant.
func (e *Evaluator) cachedQueryCost(slot int, st *depState) (float64, *sqlast.Query, bool) {
	groups := e.queryStoreFor().snapshot(e.slotDigests()[slot])
	for gi := range groups {
		g := &groups[gi]
		key := st.keyOf(g.deps)
		for vi := range g.variants {
			if g.variants[vi].key == key {
				e.qhits.Add(1)
				return g.variants[vi].cost, g.variants[vi].query, true
			}
		}
	}
	e.qmisses.Add(1)
	return 0, nil, false
}

// storeQueryCost memoizes a slot's translate+cost outcome.
func (e *Evaluator) storeQueryCost(slot int, key uint64, deps []string, cost float64, q *sqlast.Query) {
	e.queryStoreFor().put(e.slotDigests()[slot], deps, queryVariant{key: key, cost: cost, query: q})
}

// namedKeyFrom derives a name-sensitive schema key from the shallow
// digest map the evaluation already computed: the root, the definition
// order, and each definition's shallow digest. Shallow digests encode
// Refs by target name, so this triple determines the schema's rendered
// form exactly as xschema.NamedDigest does — without re-walking the
// definition trees.
func namedKeyFrom(ps *xschema.Schema, digests map[string]xschema.Fingerprint) xschema.Fingerprint {
	h := fnv.New128a()
	buf := make([]byte, 0, 64)
	write := func(s string) {
		buf = append(buf[:0], s...)
		buf = append(buf, 0)
		h.Write(buf)
	}
	write(ps.Root)
	for _, name := range ps.Names {
		write(name)
		if d, ok := digests[name]; ok {
			h.Write(d[:])
		} else {
			h.Write([]byte{'?'})
		}
	}
	var fp xschema.Fingerprint
	h.Sum(fp[:0])
	return fp
}

// rememberConfig stores a fully evaluated configuration under its
// schema's derived name-sensitive key (FIFO-bounded).
func (e *Evaluator) rememberConfig(ps *xschema.Schema, digests map[string]xschema.Fingerprint, cfg Config) {
	key := namedKeyFrom(ps, digests)
	e.matMu.Lock()
	defer e.matMu.Unlock()
	if e.matCache == nil {
		e.matCache = make(map[xschema.Fingerprint]*Config)
	}
	if _, ok := e.matCache[key]; ok {
		return
	}
	e.matCache[key] = &cfg
	e.matOrder = append(e.matOrder, key)
	for len(e.matCache) > matCacheCap {
		oldest := e.matOrder[0]
		e.matOrder = e.matOrder[1:]
		delete(e.matCache, oldest)
	}
}

// lookupConfig returns the remembered configuration for a schema, or
// nil. The returned config's schema renders byte-identically to ps (the
// key pins root, definition order, names and annotated bodies), so
// substituting it preserves traces and DDL exactly.
func (e *Evaluator) lookupConfig(ps *xschema.Schema) *Config {
	key := namedKeyFrom(ps, ps.TypeDigests())
	e.matMu.Lock()
	defer e.matMu.Unlock()
	return e.matCache[key]
}

// errMemoInconsistent reports an incremental evaluation that found its
// memoized state out of step with the schema in hand (e.g. a cached
// per-query variant without its translated query). The evaluator treats
// it as a signal to fall back to the full pipeline for this candidate —
// a counted graceful degradation, never a trusted-but-wrong cost.
var errMemoInconsistent = errors.New("core: inconsistent memo state")

// evaluateIncremental is the incremental counterpart of evaluateFull:
// same pipeline, same summation order, but each workload slot first
// consults its per-query cost cache and only re-translates and re-costs
// on a dependency-state change.
func (e *Evaluator) evaluateIncremental(ctx context.Context, ps *xschema.Schema) (Config, error) {
	if err := faults.Inject(faults.SiteMemo); err != nil {
		return Config{}, errMemoInconsistent
	}
	digests := ps.TypeDigests()
	cat, err := e.sharedMapper().Map(ps, digests)
	if err != nil {
		return Config{}, err
	}
	var opt *optimizer.Optimizer
	getOpt := func() *optimizer.Optimizer {
		if opt == nil {
			opt = optimizer.New(cat)
			if e.Model != nil {
				opt.Model = *e.Model
			}
		}
		return opt
	}
	// The plan space is per-evaluation (it threads this catalog's table
	// digests into its memo keys); the store behind it outlives the
	// evaluation. Lazily built: evaluations fully answered by the
	// per-query cache never cost a block.
	var space *plan.Space
	getSpace := func() *plan.Space {
		if space == nil {
			space = plan.NewSpace(getOpt(), ModelID(e.Model), e.blockStoreFor())
		}
		return space
	}
	defer func() {
		if space != nil {
			e.blocksReq.Add(space.Requested)
			e.blocksCosted.Add(space.Computed)
		}
	}()
	queries := make([]*sqlast.Query, len(e.Workload.Entries))
	st := newDepState(ps, cat, digests)
	total, wsum := 0.0, 0.0
	for i, entry := range e.Workload.Entries {
		if err := ctx.Err(); err != nil {
			return Config{}, err
		}
		cost, sq, ok := e.cachedQueryCost(i, st)
		if ok && sq == nil {
			// A hit without its translated query cannot rebuild Config
			// .Queries — the memo is inconsistent for this slot.
			return Config{}, errMemoInconsistent
		}
		if !ok {
			var deps []string
			sq, deps, err = xquery.TranslateDeps(entry.Query, ps, cat)
			if err != nil {
				return Config{}, err
			}
			if e.DisableSharing {
				est, err := getOpt().QueryCost(sq)
				if err != nil {
					return Config{}, err
				}
				cost = est.Cost
			} else {
				cost, err = getSpace().QueryCost(sq)
				if err != nil {
					return Config{}, err
				}
			}
			e.translations.Add(1)
			e.storeQueryCost(i, st.keyOf(deps), deps, cost, sq)
		}
		queries[i] = sq
		total += cost * entry.Weight
		wsum += entry.Weight
	}
	for j, ue := range e.Workload.Updates {
		if err := ctx.Err(); err != nil {
			return Config{}, err
		}
		slot := len(e.Workload.Entries) + j
		cost, _, ok := e.cachedQueryCost(slot, st)
		if !ok {
			targets, deps, err := xquery.ResolveUpdateDeps(ue.Update, ps, cat)
			if err != nil {
				return Config{}, err
			}
			cost, err = getOpt().UpdateCost(ue.Update, targets)
			if err != nil {
				return Config{}, err
			}
			e.translations.Add(1)
			e.storeQueryCost(slot, st.keyOf(deps), deps, cost, nil)
		}
		total += cost * ue.Weight
		wsum += ue.Weight
	}
	if wsum == 0 {
		return Config{}, fmt.Errorf("core: workload has zero total weight")
	}
	cfg := Config{Schema: ps, Catalog: cat, Queries: queries, Cost: total / wsum}
	e.rememberConfig(ps, digests, cfg)
	return cfg, nil
}
