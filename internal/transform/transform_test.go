package transform

import (
	"math/rand"
	"testing"
	"testing/quick"

	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/xschema"
)

// showSchema is the Figure 2(b) p-schema.
const showSchema = `
type Show = show [ @type[ String ],
    title[ String ],
    year[ Integer ],
    Aka{1,10},
    Review*,
    ( Movie | TV ) ]
type Aka = aka[ String ]
type Review = review[ ~[ String ] ]
type Movie = box_office[ Integer ], video_sales[ Integer ]
type TV = seasons[ Integer ], description[ String ], Episode*
type Episode = episode[ name[ String ], guest_director[ String ] ]
`

func parse(t *testing.T, src string) *xschema.Schema {
	t.Helper()
	s := xschema.MustParseSchema(src)
	if err := pschema.Check(s); err != nil {
		t.Fatalf("fixture not physical: %v", err)
	}
	return s
}

func findCandidate(t *testing.T, s *xschema.Schema, kind Kind, opts Options) Transformation {
	t.Helper()
	opts.Kinds = []Kind{kind}
	cands := Candidates(s, opts)
	if len(cands) == 0 {
		t.Fatalf("no %v candidates in\n%s", kind, s)
	}
	return cands[0]
}

func TestUnionDistributeShow(t *testing.T) {
	s := parse(t, showSchema)
	tr := findCandidate(t, s, KindUnionDistribute, Options{})
	out, err := Apply(s, tr)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	p1, ok1 := out.Lookup("Show_Part1")
	p2, ok2 := out.Lookup("Show_Part2")
	if !ok1 || !ok2 {
		t.Fatalf("partitions missing; types = %v", out.Names)
	}
	if !pschema.IsAlias(out.Types["Show"]) {
		t.Fatalf("Show should be an alias union, got %s", out.Types["Show"])
	}
	// Part1 contains Movie, Part2 contains TV (in place of the union).
	if el := p1.(*xschema.Element); el.Name != "show" {
		t.Fatalf("Part1 = %s", p1)
	}
	hasRef := func(body xschema.Type, name string) bool {
		found := false
		xschema.Visit(body, func(t xschema.Type) {
			if r, ok := t.(*xschema.Ref); ok && r.Name == name {
				found = true
			}
		})
		return found
	}
	if !hasRef(p1, "Movie") || hasRef(p1, "TV") {
		t.Errorf("Part1 should hold Movie only: %s", p1)
	}
	if !hasRef(p2, "TV") || hasRef(p2, "Movie") {
		t.Errorf("Part2 should hold TV only: %s", p2)
	}
	// Relational mapping: no Show table, two partition tables (Fig 4(c)).
	cat, err := relational.Map(out)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	if cat.Table("Show") != nil {
		t.Error("alias Show produced a table")
	}
	if cat.Table("Show_Part1") == nil || cat.Table("Show_Part2") == nil {
		t.Errorf("partition tables missing:\n%s", cat)
	}
}

func TestUnionDistributePreservesValidity(t *testing.T) {
	s := parse(t, showSchema)
	tr := findCandidate(t, s, KindUnionDistribute, Options{})
	out, err := Apply(s, tr)
	if err != nil {
		t.Fatal(err)
	}
	checkSameLanguage(t, s, out)
}

// checkSameLanguage verifies random documents of a validate under b and
// vice versa.
func checkSameLanguage(t *testing.T, a, b *xschema.Schema) {
	t.Helper()
	fwd := func(seed int64) bool {
		g := xschema.NewGenerator(a, rand.New(rand.NewSource(seed)))
		doc, err := g.Generate()
		if err != nil {
			return false
		}
		return b.Valid(doc)
	}
	if err := quick.Check(fwd, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("forward language check: %v", err)
	}
	back := func(seed int64) bool {
		g := xschema.NewGenerator(b, rand.New(rand.NewSource(seed)))
		doc, err := g.Generate()
		if err != nil {
			return false
		}
		return a.Valid(doc)
	}
	if err := quick.Check(back, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("backward language check: %v", err)
	}
}

func TestUnionFactorizeInvertsDistribute(t *testing.T) {
	s := parse(t, showSchema)
	dist := findCandidate(t, s, KindUnionDistribute, Options{})
	mid, err := Apply(s, dist)
	if err != nil {
		t.Fatal(err)
	}
	fact := findCandidate(t, mid, KindUnionFactorize, Options{})
	if fact.Loc.Type != "Show" {
		t.Fatalf("factorize target = %v", fact.Loc)
	}
	back, err := Apply(mid, fact)
	if err != nil {
		t.Fatalf("Apply factorize: %v", err)
	}
	if pschema.IsAlias(back.Types["Show"]) {
		t.Fatalf("Show still an alias: %s", back.Types["Show"])
	}
	checkSameLanguage(t, s, back)
}

func TestRepetitionSplitAka(t *testing.T) {
	s := parse(t, showSchema)
	tr := findCandidate(t, s, KindRepetitionSplit, Options{})
	out, err := Apply(s, tr)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	// Show body now holds Aka, Aka{0,9}.
	show := out.Types["Show"].(*xschema.Element)
	seq := show.Content.(*xschema.Sequence)
	first, ok := seq.Items[3].(*xschema.Ref)
	if !ok || first.Name != "Aka" {
		t.Fatalf("first occurrence = %v", seq.Items[3])
	}
	rest, ok := seq.Items[4].(*xschema.Repeat)
	if !ok || rest.Min != 0 || rest.Max != 9 {
		t.Fatalf("rest = %v", seq.Items[4])
	}
	checkSameLanguage(t, s, out)
	// After splitting, the first occurrence can be inlined as a column.
	inl := findInlineOf(t, out, "Aka")
	out2, err := Apply(out, inl)
	if err != nil {
		t.Fatalf("inline after split: %v", err)
	}
	cat, err := relational.Map(out2)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Table("Show").Column("aka") == nil {
		t.Errorf("Show lacks inlined aka column:\n%s", cat)
	}
	if cat.Table("Aka") == nil {
		t.Error("Aka table removed; the starred occurrences still need it")
	}
}

func findInlineOf(t *testing.T, s *xschema.Schema, target string) Transformation {
	t.Helper()
	for _, tr := range Candidates(s, Options{Kinds: []Kind{KindInline}}) {
		node, err := pschema.Resolve(s, tr.Loc)
		if err != nil {
			continue
		}
		if r, ok := node.(*xschema.Ref); ok && r.Name == target {
			return tr
		}
	}
	t.Fatalf("no inline candidate for %s", target)
	return Transformation{}
}

func TestRepetitionMergeInvertsSplit(t *testing.T) {
	s := parse(t, showSchema)
	split := findCandidate(t, s, KindRepetitionSplit, Options{})
	mid, err := Apply(s, split)
	if err != nil {
		t.Fatal(err)
	}
	merge := findCandidate(t, mid, KindRepetitionMerge, Options{})
	back, err := Apply(mid, merge)
	if err != nil {
		t.Fatalf("Apply merge: %v", err)
	}
	if !xschema.DeepEqual(back.Types["Show"], s.Types["Show"]) {
		t.Fatalf("merge(split(x)) != x:\n%s\nvs\n%s", back.Types["Show"], s.Types["Show"])
	}
}

func TestRepetitionMergeAfterInline(t *testing.T) {
	// Inline the first occurrence, then merge should still recognize the
	// inlined element as one occurrence of Aka.
	s := parse(t, showSchema)
	mid, err := Apply(s, findCandidate(t, s, KindRepetitionSplit, Options{}))
	if err != nil {
		t.Fatal(err)
	}
	mid2, err := Apply(mid, findInlineOf(t, mid, "Aka"))
	if err != nil {
		t.Fatal(err)
	}
	merge := findCandidate(t, mid2, KindRepetitionMerge, Options{})
	back, err := Apply(mid2, merge)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	checkSameLanguage(t, s, back)
}

func TestWildcardMaterialize(t *testing.T) {
	s := parse(t, showSchema)
	opts := Options{WildcardLabels: map[string]float64{"nyt": 0.25}}
	tr := findCandidate(t, s, KindWildcardMaterialize, opts)
	out, err := Apply(s, tr)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	nyt, ok := out.Lookup("Nyt")
	if !ok {
		t.Fatalf("Nyt type missing; types = %v", out.Names)
	}
	if el := nyt.(*xschema.Element); el.Name != "nyt" {
		t.Fatalf("Nyt = %s", nyt)
	}
	other, ok := out.Lookup("OtherNyt")
	if !ok {
		t.Fatalf("OtherNyt missing; types = %v", out.Names)
	}
	w := other.(*xschema.Wildcard)
	if len(w.Exclude) != 1 || w.Exclude[0] != "nyt" {
		t.Fatalf("exclusion = %v", w.Exclude)
	}
	// Review's content is now a union of the two partitions.
	review := out.Types["Review"].(*xschema.Element)
	choice, ok := review.Content.(*xschema.Choice)
	if !ok {
		t.Fatalf("Review content = %s", review.Content)
	}
	if choice.Fractions[0] != 0.25 || choice.Fractions[1] != 0.75 {
		t.Fatalf("fractions = %v", choice.Fractions)
	}
	// Relational: NYT reviews land in their own table (Fig 4(b)).
	cat, err := relational.Map(out)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Table("Nyt") == nil || cat.Table("OtherNyt") == nil {
		t.Fatalf("partition tables missing:\n%s", cat)
	}
	checkSameLanguage(t, s, out)
}

func TestUnionToOptions(t *testing.T) {
	s := parse(t, showSchema)
	tr := findCandidate(t, s, KindUnionToOptions, Options{})
	out, err := Apply(s, tr)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if _, ok := out.Lookup("Movie"); ok {
		t.Errorf("Movie should be flattened away; types = %v", out.Names)
	}
	cat, err := relational.Map(out)
	if err != nil {
		t.Fatal(err)
	}
	show := cat.Table("Show")
	bo := show.Column("box_office")
	if bo == nil || !bo.Nullable {
		t.Fatalf("box_office not a nullable column: %+v", bo)
	}
	// Union→options widens the language: originals remain valid.
	fwd := func(seed int64) bool {
		g := xschema.NewGenerator(s, rand.New(rand.NewSource(seed)))
		doc, err := g.Generate()
		if err != nil {
			return false
		}
		return out.Valid(doc)
	}
	if err := quick.Check(fwd, &quick.Config{MaxCount: 50}); err != nil {
		t.Errorf("widened schema rejects original documents: %v", err)
	}
}

func TestInlineOutlineViaApply(t *testing.T) {
	s := parse(t, showSchema)
	out, err := Apply(s, findCandidate(t, s, KindOutline, Options{}))
	if err != nil {
		t.Fatalf("outline: %v", err)
	}
	if len(out.Names) != len(s.Names)+1 {
		t.Fatalf("outline did not add a type: %v", out.Names)
	}
	checkSameLanguage(t, s, out)
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	s := parse(t, showSchema)
	before := s.String()
	for _, kind := range AllKinds {
		opts := Options{Kinds: []Kind{kind}, WildcardLabels: map[string]float64{"nyt": 0.5}}
		for _, tr := range Candidates(s, opts) {
			if _, err := Apply(s, tr); err != nil {
				t.Errorf("Apply(%s): %v", tr, err)
			}
		}
	}
	if s.String() != before {
		t.Fatal("Apply mutated its input schema")
	}
}

// TestPropertyAllTransformationsPreserveLanguage is the paper's central
// invariant: every rewriting except union-to-options preserves the set of
// valid documents exactly.
func TestPropertyAllTransformationsPreserveLanguage(t *testing.T) {
	s := parse(t, showSchema)
	preserving := []Kind{
		KindInline, KindOutline, KindUnionDistribute, KindUnionFactorize,
		KindRepetitionSplit, KindRepetitionMerge, KindWildcardMaterialize,
	}
	for _, kind := range preserving {
		opts := Options{Kinds: []Kind{kind}, WildcardLabels: map[string]float64{"nyt": 0.5}}
		cands := Candidates(s, opts)
		for i, tr := range cands {
			if i >= 4 { // bound runtime; candidates per kind can be many
				break
			}
			out, err := Apply(s, tr)
			if err != nil {
				t.Errorf("Apply(%s): %v", tr, err)
				continue
			}
			f := func(seed int64) bool {
				g := xschema.NewGenerator(s, rand.New(rand.NewSource(seed)))
				doc, err := g.Generate()
				if err != nil {
					return false
				}
				return out.Valid(doc)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Errorf("%s does not preserve validity: %v", tr, err)
			}
		}
	}
}

// TestPropertyTransformedSchemasStayPhysical verifies closure: applying
// any candidate to a p-schema yields a p-schema (Apply checks this
// internally; here we also re-map to relations).
func TestPropertyTransformedSchemasStayPhysical(t *testing.T) {
	s := parse(t, showSchema)
	opts := Options{WildcardLabels: map[string]float64{"nyt": 0.5}}
	for _, tr := range Candidates(s, opts) {
		out, err := Apply(s, tr)
		if err != nil {
			t.Errorf("Apply(%s): %v", tr, err)
			continue
		}
		if _, err := relational.Map(out); err != nil {
			t.Errorf("mapping after %s: %v", tr, err)
		}
	}
}

func TestCandidateCounts(t *testing.T) {
	s := parse(t, showSchema)
	opts := Options{WildcardLabels: map[string]float64{"nyt": 0.5}}
	byKind := make(map[Kind]int)
	for _, tr := range Candidates(s, opts) {
		byKind[tr.Kind]++
	}
	if byKind[KindUnionDistribute] != 1 {
		t.Errorf("union-distribute candidates = %d, want 1", byKind[KindUnionDistribute])
	}
	if byKind[KindRepetitionSplit] != 1 {
		t.Errorf("repetition-split candidates = %d, want 1 (Aka{1,10})", byKind[KindRepetitionSplit])
	}
	if byKind[KindWildcardMaterialize] != 1 {
		t.Errorf("wildcard candidates = %d, want 1", byKind[KindWildcardMaterialize])
	}
	if byKind[KindOutline] == 0 || byKind[KindInline] != 0 {
		t.Errorf("inline/outline candidates = %d/%d", byKind[KindInline], byKind[KindOutline])
	}
}

func TestApplyErrors(t *testing.T) {
	s := parse(t, showSchema)
	cases := []Transformation{
		{Kind: KindInline, Loc: pschema.Loc{Type: "Nope"}},
		{Kind: KindUnionDistribute, Loc: pschema.Loc{Type: "Show"}},
		{Kind: KindWildcardMaterialize, Loc: pschema.Loc{Type: "Show", Path: pschema.Path{0, 0}}},
		{Kind: KindRepetitionSplit, Loc: pschema.Loc{Type: "Show", Path: pschema.Path{0, 4}}}, // Review*: min 0
	}
	for _, tr := range cases {
		if _, err := Apply(s, tr); err == nil {
			t.Errorf("Apply(%s) succeeded, want error", tr)
		}
	}
}
