package transform

import (
	"fmt"
	"strings"

	"legodb/internal/pschema"
	"legodb/internal/xschema"
)

// unionDistribute applies both distribution laws of Section 4.1 in one
// step: for a union inside a type body, the host type becomes a union of
// fresh partition types, each holding the body with the union replaced by
// one alternative:
//
//	type Show = show[ c, (Movie|TV) ]
//	  =>
//	type Show = ( Show_Part1 | Show_Part2 )
//	type Show_Part1 = show[ c, Movie ]
//	type Show_Part2 = show[ c, TV ]
//
// This is the horizontal-partitioning rewriting behind Figure 4(c).
func unionDistribute(s *xschema.Schema, loc pschema.Loc) error {
	node, err := pschema.Resolve(s, loc)
	if err != nil {
		return err
	}
	choice, ok := node.(*xschema.Choice)
	if !ok {
		return fmt.Errorf("node at %s is not a union", loc)
	}
	if len(loc.Path) == 0 {
		return fmt.Errorf("type %s is already a union of types", loc.Type)
	}
	if hasRepeatAncestor(s.Types[loc.Type], loc.Path) {
		return fmt.Errorf("union at %s is inside a repetition", loc)
	}
	body := s.Types[loc.Type]
	refs := make([]xschema.Type, len(choice.Alts))
	for i, alt := range choice.Alts {
		part := xschema.Clone(body)
		tmp := s.Types[loc.Type]
		s.Types[loc.Type] = part
		if err := pschema.ReplaceAt(s, loc, xschema.Clone(alt)); err != nil {
			s.Types[loc.Type] = tmp
			return err
		}
		s.Types[loc.Type] = tmp
		partName := s.FreshName(fmt.Sprintf("%s_Part%d", loc.Type, i+1))
		s.Define(partName, xschema.Normalize(part))
		refs[i] = &xschema.Ref{Name: partName}
	}
	s.Types[loc.Type] = &xschema.Choice{
		Alts:      refs,
		Fractions: append([]float64(nil), choice.Fractions...),
	}
	return nil
}

func hasRepeatAncestor(body xschema.Type, path pschema.Path) bool {
	t := body
	for _, i := range path {
		if _, ok := t.(*xschema.Repeat); ok {
			return true
		}
		var err error
		t, err = pschema.Child(t, i)
		if err != nil {
			return true
		}
	}
	return false
}

func unionDistributeCandidates(s *xschema.Schema) []pschema.Loc {
	var out []pschema.Loc
	for _, name := range s.Names {
		name := name
		if pschema.IsAlias(s.Types[name]) {
			continue
		}
		pschema.WalkBody(s.Types[name], func(path pschema.Path, t xschema.Type) bool {
			if _, ok := t.(*xschema.Choice); ok && len(path) > 0 {
				if !hasRepeatAncestor(s.Types[name], path) {
					out = append(out, pschema.Loc{Type: name, Path: path})
				}
				return false
			}
			return true
		})
	}
	return out
}

// unionFactorize is the inverse of unionDistribute: a type defined as a
// union of single-use element types with the same tag is merged back into
// one element whose content factors the common prefix and suffix and
// keeps a union of the differing middles.
func unionFactorize(s *xschema.Schema, loc pschema.Loc) error {
	if len(loc.Path) != 0 {
		return fmt.Errorf("factorization targets whole type bodies, got %s", loc)
	}
	body, ok := s.Lookup(loc.Type)
	if !ok {
		return fmt.Errorf("type %q not defined", loc.Type)
	}
	choice, ok := body.(*xschema.Choice)
	if !ok {
		return fmt.Errorf("type %s is not a union of types", loc.Type)
	}
	parts, tag, err := factorizableParts(s, choice)
	if err != nil {
		return err
	}
	contents := make([][]xschema.Type, len(parts))
	for i, p := range parts {
		contents[i] = sequenceItems(p.Content)
	}
	prefix := commonPrefix(contents)
	suffix := commonSuffix(contents, prefix)
	alts := make([]xschema.Type, len(contents))
	for i, items := range contents {
		middle := items[prefix : len(items)-suffix]
		alt := xschema.Type(&xschema.Sequence{Items: cloneAll(middle)})
		alt = xschema.Normalize(alt)
		if pschema.IsNamedExpr(alt) {
			if _, isSeq := alt.(*xschema.Sequence); !isSeq {
				alts[i] = alt
				continue
			}
		}
		groupName := s.FreshName(fmt.Sprintf("%s_Group%d", loc.Type, i+1))
		s.Define(groupName, alt)
		alts[i] = &xschema.Ref{Name: groupName}
	}
	var items []xschema.Type
	items = append(items, cloneAll(contents[0][:prefix])...)
	if len(alts) > 0 {
		items = append(items, &xschema.Choice{
			Alts:      alts,
			Fractions: append([]float64(nil), choice.Fractions...),
		})
	}
	items = append(items, cloneAll(contents[0][len(contents[0])-suffix:])...)
	for _, alt := range choice.Alts {
		s.Remove(alt.(*xschema.Ref).Name)
	}
	s.Types[loc.Type] = xschema.Normalize(&xschema.Element{
		Name:    tag,
		Content: &xschema.Sequence{Items: items},
	})
	return nil
}

// factorizableParts verifies the union alternatives are references to
// single-use element types sharing one tag and returns their bodies.
func factorizableParts(s *xschema.Schema, choice *xschema.Choice) ([]*xschema.Element, string, error) {
	refCounts := s.RefCounts()
	var parts []*xschema.Element
	tag := ""
	for _, alt := range choice.Alts {
		ref, ok := alt.(*xschema.Ref)
		if !ok {
			return nil, "", fmt.Errorf("union alternative %s is not a reference", alt)
		}
		if refCounts[ref.Name] != 1 {
			return nil, "", fmt.Errorf("partition type %s is shared", ref.Name)
		}
		def, ok := s.Lookup(ref.Name)
		if !ok {
			return nil, "", fmt.Errorf("undefined type %q", ref.Name)
		}
		el, ok := def.(*xschema.Element)
		if !ok {
			return nil, "", fmt.Errorf("partition type %s is not an element", ref.Name)
		}
		if tag == "" {
			tag = el.Name
		} else if tag != el.Name {
			return nil, "", fmt.Errorf("partitions have different tags %q and %q", tag, el.Name)
		}
		parts = append(parts, el)
	}
	return parts, tag, nil
}

func sequenceItems(t xschema.Type) []xschema.Type {
	if seq, ok := t.(*xschema.Sequence); ok {
		return seq.Items
	}
	return []xschema.Type{t}
}

func cloneAll(items []xschema.Type) []xschema.Type {
	out := make([]xschema.Type, len(items))
	for i, it := range items {
		out[i] = xschema.Clone(it)
	}
	return out
}

func commonPrefix(contents [][]xschema.Type) int {
	n := 0
	for {
		if len(contents[0]) <= n {
			return n
		}
		probe := contents[0][n]
		for _, items := range contents[1:] {
			if len(items) <= n || !xschema.DeepEqual(items[n], probe) {
				return n
			}
		}
		n++
	}
}

func commonSuffix(contents [][]xschema.Type, prefix int) int {
	n := 0
	for {
		ok := true
		for _, items := range contents {
			if len(items)-n-1 < prefix {
				ok = false
				break
			}
		}
		if !ok {
			return n
		}
		probe := contents[0][len(contents[0])-n-1]
		for _, items := range contents[1:] {
			if !xschema.DeepEqual(items[len(items)-n-1], probe) {
				return n
			}
		}
		n++
	}
}

func unionFactorizeCandidates(s *xschema.Schema) []pschema.Loc {
	var out []pschema.Loc
	for _, name := range s.Names {
		choice, ok := s.Types[name].(*xschema.Choice)
		if !ok {
			continue
		}
		if _, _, err := factorizableParts(s, choice); err == nil {
			out = append(out, pschema.Loc{Type: name})
		}
	}
	return out
}

// repetitionSplit applies a+ == a,a* (Section 4.1, Repetition Merge/
// Split): the repetition at loc, with lower bound ≥ 1, is split into a
// mandatory first occurrence followed by the shortened repetition. The
// first occurrence can then be inlined as a column by the inline
// rewriting.
func repetitionSplit(s *xschema.Schema, loc pschema.Loc) error {
	node, err := pschema.Resolve(s, loc)
	if err != nil {
		return err
	}
	rep, ok := node.(*xschema.Repeat)
	if !ok {
		return fmt.Errorf("node at %s is not a repetition", loc)
	}
	if rep.Min < 1 || rep.Max == 1 {
		return fmt.Errorf("repetition %s cannot be split (needs min ≥ 1 and max > 1)", rep)
	}
	rest := &xschema.Repeat{
		Inner: xschema.Clone(rep.Inner),
		Min:   rep.Min - 1,
	}
	if rep.Max == xschema.Unbounded {
		rest.Max = xschema.Unbounded
	} else {
		rest.Max = rep.Max - 1
	}
	// Statistics: the mandatory first occurrence absorbs one unit of the
	// average count. A known-zero remainder is recorded as a tiny epsilon
	// (AvgCount 0 means "unknown" elsewhere).
	if rep.AvgCount > 0 {
		rest.AvgCount = rep.AvgCount - 1
		if rest.AvgCount <= 0 {
			rest.AvgCount = 0.001
		}
	}
	repl := &xschema.Sequence{Items: []xschema.Type{xschema.Clone(rep.Inner), rest}}
	if err := pschema.ReplaceAt(s, loc, repl); err != nil {
		return err
	}
	s.Types[loc.Type] = xschema.Normalize(s.Types[loc.Type])
	return nil
}

func repetitionSplitCandidates(s *xschema.Schema) []pschema.Loc {
	var out []pschema.Loc
	for _, name := range s.Names {
		name := name
		pschema.WalkBody(s.Types[name], func(path pschema.Path, t xschema.Type) bool {
			if rep, ok := t.(*xschema.Repeat); ok {
				if rep.Min >= 1 && rep.Max != 1 && pschema.IsNamedExpr(rep.Inner) {
					out = append(out, pschema.Loc{Type: name, Path: path})
				}
			}
			return true
		})
	}
	return out
}

// repetitionMerge is the inverse of repetitionSplit: a repetition
// preceded by a sibling equal to its inner expression (either the same
// reference, or an inlined copy of the referenced body) absorbs that
// sibling, raising its bounds by one.
func repetitionMerge(s *xschema.Schema, loc pschema.Loc) error {
	if len(loc.Path) == 0 {
		return fmt.Errorf("merge targets a repetition inside a sequence, got %s", loc)
	}
	idx := loc.Path[len(loc.Path)-1]
	if idx == 0 {
		return fmt.Errorf("repetition at %s has no preceding sibling", loc)
	}
	parent, err := pschema.Resolve(s, pschema.Loc{Type: loc.Type, Path: loc.Path[:len(loc.Path)-1]})
	if err != nil {
		return err
	}
	seq, ok := parent.(*xschema.Sequence)
	if !ok {
		return fmt.Errorf("parent of %s is not a sequence", loc)
	}
	rep, ok := seq.Items[idx].(*xschema.Repeat)
	if !ok {
		return fmt.Errorf("node at %s is not a repetition", loc)
	}
	if !mergeableSibling(s, seq.Items[idx-1], rep.Inner) {
		return fmt.Errorf("sibling before %s does not match the repetition body", loc)
	}
	rep.Min++
	if rep.Max != xschema.Unbounded {
		rep.Max++
	}
	if rep.AvgCount > 0 {
		rep.AvgCount++
	}
	seq.Items = append(seq.Items[:idx-1], seq.Items[idx:]...)
	s.Types[loc.Type] = xschema.Normalize(s.Types[loc.Type])
	return nil
}

// mergeableSibling reports whether prev is one occurrence of inner: the
// identical expression, or an inlined copy of the type inner references.
func mergeableSibling(s *xschema.Schema, prev, inner xschema.Type) bool {
	if xschema.DeepEqual(prev, inner) {
		return true
	}
	if ref, ok := inner.(*xschema.Ref); ok {
		if def, found := s.Lookup(ref.Name); found && xschema.DeepEqual(prev, def) {
			return true
		}
	}
	return false
}

func repetitionMergeCandidates(s *xschema.Schema) []pschema.Loc {
	var out []pschema.Loc
	for _, name := range s.Names {
		name := name
		pschema.WalkBody(s.Types[name], func(path pschema.Path, t xschema.Type) bool {
			seq, ok := t.(*xschema.Sequence)
			if !ok {
				return true
			}
			for i := 1; i < len(seq.Items); i++ {
				rep, ok := seq.Items[i].(*xschema.Repeat)
				if !ok || (rep.Min == 0 && rep.Max == 1) {
					continue
				}
				if mergeableSibling(s, seq.Items[i-1], rep.Inner) {
					out = append(out, pschema.Loc{Type: name, Path: append(path, i)})
				}
			}
			return true
		})
	}
	return out
}

// wildcardMaterialize partitions the wildcard at loc on a label:
//
//	~[ t ]  =>  ( Label | Other )   with
//	type Label = label[ t ]
//	type Other = (~!label)[ t ]
//
// following the wildcard rewriting of Section 4.1 (~ = nyt | ~!nyt).
func wildcardMaterialize(s *xschema.Schema, loc pschema.Loc, label string, fraction float64) error {
	if label == "" {
		return fmt.Errorf("wildcard materialization needs a label")
	}
	node, err := pschema.Resolve(s, loc)
	if err != nil {
		return err
	}
	w, ok := node.(*xschema.Wildcard)
	if !ok {
		return fmt.Errorf("node at %s is not a wildcard", loc)
	}
	for _, ex := range w.Exclude {
		if ex == label {
			return fmt.Errorf("label %q is already excluded by the wildcard", label)
		}
	}
	if fraction <= 0 || fraction >= 1 {
		fraction = 0.5
	}
	labelName := s.FreshName(exportName(label))
	otherName := s.FreshName("Other" + exportName(label))
	s.Define(labelName, &xschema.Element{Name: label, Content: xschema.Clone(w.Content)})
	s.Define(otherName, &xschema.Wildcard{
		Exclude: append(append([]string(nil), w.Exclude...), label),
		Content: xschema.Clone(w.Content),
	})
	choice := &xschema.Choice{
		Alts:      []xschema.Type{&xschema.Ref{Name: labelName}, &xschema.Ref{Name: otherName}},
		Fractions: []float64{fraction, 1 - fraction},
	}
	if err := pschema.ReplaceAt(s, loc, choice); err != nil {
		return err
	}
	s.Types[loc.Type] = xschema.Normalize(s.Types[loc.Type])
	return nil
}

func exportName(label string) string {
	if label == "" {
		return "T"
	}
	return strings.ToUpper(label[:1]) + label[1:]
}

func wildcardCandidates(s *xschema.Schema) []pschema.Loc {
	var out []pschema.Loc
	for _, name := range s.Names {
		name := name
		pschema.WalkBody(s.Types[name], func(path pschema.Path, t xschema.Type) bool {
			if _, ok := t.(*xschema.Wildcard); ok {
				out = append(out, pschema.Loc{Type: name, Path: path})
				return false
			}
			return true
		})
	}
	return out
}

func unionToOptionsCandidates(s *xschema.Schema) []pschema.Loc {
	var out []pschema.Loc
	for _, name := range s.Names {
		name := name
		pschema.WalkBody(s.Types[name], func(path pschema.Path, t xschema.Type) bool {
			if c, ok := t.(*xschema.Choice); ok {
				if !pschema.UnderRepetition(s.Types[name], path) && pschema.Flattenable(s, c) {
					out = append(out, pschema.Loc{Type: name, Path: path})
				}
				return false
			}
			return true
		})
	}
	return out
}
