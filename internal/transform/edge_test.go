package transform

import (
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/xschema"
)

func TestFactorizeRejectsNonFactorable(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"different tags", `
type T = ( A | B )
type A = a[ x[ String ] ]
type B = b[ x[ String ] ]`},
		{"shared partition", `
type T = ( A | B )
type R = r[ T, A ]
type A = s[ x[ String ] ]
type B = s[ y[ String ] ]`},
		{"non-element partition", `
type T = ( A | B )
type A = x[ String ], y[ String ]
type B = z[ String ], w[ String ]`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := xschema.MustParseSchema(c.src)
			cands := unionFactorizeCandidates(s)
			for _, loc := range cands {
				if loc.Type == "T" {
					t.Fatalf("T reported factorizable")
				}
			}
			if _, err := Apply(s, Transformation{Kind: KindUnionFactorize, Loc: pschema.Loc{Type: "T"}}); err == nil {
				t.Fatal("factorize applied to non-factorable union")
			}
		})
	}
}

func TestFactorizeDegenerateMiddle(t *testing.T) {
	// One branch's middle is empty after factoring the common prefix.
	s := xschema.MustParseSchema(`
type T = ( A | B )
type A = s[ x[ String ] ]
type B = s[ x[ String ], y[ String ] ]`)
	out, err := Apply(s, Transformation{Kind: KindUnionFactorize, Loc: pschema.Loc{Type: "T"}})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := pschema.Check(out); err != nil {
		t.Fatalf("result not physical: %v", err)
	}
	body := out.Types["T"]
	el, ok := body.(*xschema.Element)
	if !ok || el.Name != "s" {
		t.Fatalf("factorized body = %s", body)
	}
}

func TestMergeRequiresMatchingSibling(t *testing.T) {
	s := xschema.MustParseSchema(`
type T = e[ a[ String ], B{0,*} ]
type B = b[ String ]`)
	// The preceding sibling is a different element: no merge candidates.
	if got := repetitionMergeCandidates(s); len(got) != 0 {
		t.Fatalf("candidates = %v", got)
	}
	// Direct application errors.
	tr := Transformation{Kind: KindRepetitionMerge, Loc: pschema.Loc{Type: "T", Path: pschema.Path{0, 1}}}
	if _, err := Apply(s, tr); err == nil {
		t.Fatal("merge applied with non-matching sibling")
	}
}

func TestMergeAtSequenceStartRejected(t *testing.T) {
	s := xschema.MustParseSchema(`
type T = e[ B{0,*}, a[ String ] ]
type B = b[ String ]`)
	tr := Transformation{Kind: KindRepetitionMerge, Loc: pschema.Loc{Type: "T", Path: pschema.Path{0, 0}}}
	if _, err := Apply(s, tr); err == nil {
		t.Fatal("merge applied without a preceding sibling")
	}
}

func TestSplitBoundsArithmetic(t *testing.T) {
	s := xschema.MustParseSchema(`
type T = e[ B{3,7}<#5> ]
type B = b[ String ]`)
	out, err := Apply(s, Transformation{Kind: KindRepetitionSplit, Loc: pschema.Loc{Type: "T", Path: pschema.Path{0}}})
	if err != nil {
		t.Fatal(err)
	}
	seq := out.Types["T"].(*xschema.Element).Content.(*xschema.Sequence)
	rep := seq.Items[1].(*xschema.Repeat)
	if rep.Min != 2 || rep.Max != 6 {
		t.Fatalf("bounds = {%d,%d}, want {2,6}", rep.Min, rep.Max)
	}
	if rep.AvgCount != 4 {
		t.Fatalf("avg = %g, want 4", rep.AvgCount)
	}
}

func TestSplitKnownZeroRemainder(t *testing.T) {
	s := xschema.MustParseSchema(`
type T = e[ B{1,10}<#1> ]
type B = b[ String ]`)
	out, err := Apply(s, Transformation{Kind: KindRepetitionSplit, Loc: pschema.Loc{Type: "T", Path: pschema.Path{0}}})
	if err != nil {
		t.Fatal(err)
	}
	seq := out.Types["T"].(*xschema.Element).Content.(*xschema.Sequence)
	rep := seq.Items[1].(*xschema.Repeat)
	if rep.AvgCount <= 0 || rep.AvgCount > 0.01 {
		t.Fatalf("known-zero remainder should be epsilon, got %g", rep.AvgCount)
	}
}

func TestDistributeRejectsUnionUnderRepetition(t *testing.T) {
	s := xschema.MustParseSchema(`
type T = e[ (A | B)* ]
type A = a[ String ]
type B = b[ String ]`)
	if got := unionDistributeCandidates(s); len(got) != 0 {
		t.Fatalf("candidates under repetition = %v", got)
	}
}

func TestDistributeThreeWayUnion(t *testing.T) {
	s := xschema.MustParseSchema(`
type T = e[ x[ String ], (A | B | C) ]
type A = a[ String ]
type B = b[ String ]
type C = c[ String ]`)
	cands := unionDistributeCandidates(s)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v", cands)
	}
	out, err := Apply(s, Transformation{Kind: KindUnionDistribute, Loc: cands[0]})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"T_Part1", "T_Part2", "T_Part3"} {
		if _, ok := out.Lookup(part); !ok {
			t.Errorf("%s missing; types = %v", part, out.Names)
		}
	}
}

func TestWildcardMaterializeTwice(t *testing.T) {
	// Materializing nyt, then variety out of the remainder: chained
	// partitioning with accumulated exclusions.
	s := xschema.MustParseSchema(`type R = r[ ~[ String ] ]`)
	first, err := Apply(s, Transformation{
		Kind: KindWildcardMaterialize, Loc: pschema.Loc{Type: "R", Path: pschema.Path{0}},
		Label: "nyt", LabelFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(first, Options{
		Kinds:          []Kind{KindWildcardMaterialize},
		WildcardLabels: map[string]float64{"variety": 0.2},
	})
	if len(cands) != 1 {
		t.Fatalf("second-round candidates = %v", cands)
	}
	second, err := Apply(first, cands[0])
	if err != nil {
		t.Fatal(err)
	}
	other, ok := second.Lookup("OtherVariety")
	if !ok {
		t.Fatalf("OtherVariety missing; types = %v", second.Names)
	}
	w := other.(*xschema.Wildcard)
	if len(w.Exclude) != 2 {
		t.Fatalf("exclusions = %v, want [nyt variety]", w.Exclude)
	}
	// Materializing an excluded label again must fail.
	if _, err := Apply(second, Transformation{
		Kind:  KindWildcardMaterialize,
		Loc:   pschema.Loc{Type: "OtherVariety"},
		Label: "nyt",
	}); err == nil {
		t.Fatal("re-materializing an excluded label succeeded")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range AllKinds {
		if k.String() == "" || k.String()[0] == 'K' {
			t.Errorf("kind %d renders as %q", int(k), k.String())
		}
	}
	tr := Transformation{Kind: KindWildcardMaterialize, Loc: pschema.Loc{Type: "R"}, Label: "nyt"}
	if got := tr.String(); got != `wildcard-materialize(R[], "nyt")` {
		t.Errorf("transformation string = %q", got)
	}
}
