package transform_test

import (
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/transform"
	"legodb/internal/xschema"
)

// TestTransformsMoveTheFingerprint is the search-side contract of the
// cost cache: applying a transformation changes the canonical fingerprint
// exactly when it changes the schema. If a rewriting ever produced an
// Equivalent schema under a different fingerprint, the cache would cost
// it twice (wasteful); the converse — a different schema under the same
// fingerprint — would serve a wrong cost (incorrect).
func TestTransformsMoveTheFingerprint(t *testing.T) {
	annotated := imdb.AnnotatedSchema()
	starts := map[string]func(*xschema.Schema) (*xschema.Schema, error){
		"outlined": pschema.InitialOutlined,
		"inlined":  pschema.AllInlined,
		"initial": func(s *xschema.Schema) (*xschema.Schema, error) {
			return pschema.InitialInlined(s, pschema.InlineOptions{})
		},
	}
	opts := transform.Options{
		Kinds:          transform.AllKinds,
		WildcardLabels: map[string]float64{"nyt": 0.25},
	}
	total := 0
	for name, init := range starts {
		base, err := init(annotated.Clone())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		baseFP := base.Fingerprint()
		for _, tr := range transform.Candidates(base, opts) {
			next, err := transform.Apply(base, tr)
			if err != nil {
				// Inapplicable candidates are skipped by the search too.
				continue
			}
			total++
			changed := next.Fingerprint() != baseFP
			equivalent := xschema.Equivalent(base, next)
			if changed == equivalent {
				t.Errorf("%s: %s: fingerprint changed=%v but Equivalent=%v\nbefore:\n%s\nafter:\n%s",
					name, tr, changed, equivalent, base, next)
			}
			// Apply must not mutate its input.
			if base.Fingerprint() != baseFP {
				t.Fatalf("%s: %s mutated the input schema", name, tr)
			}
		}
	}
	if total < 10 {
		t.Fatalf("only %d applicable transformations exercised; expected a rich candidate set", total)
	}
}

// TestSecondLevelTransformsMoveTheFingerprint walks one level deeper:
// distinct two-step rewriting paths that reconverge to the same schema
// must fingerprint identically (this is what lets the beam search and
// the cost cache deduplicate them), and paths that do not reconverge
// must not collide.
func TestSecondLevelTransformsMoveTheFingerprint(t *testing.T) {
	base, err := pschema.InitialOutlined(imdb.AnnotatedSchema())
	if err != nil {
		t.Fatal(err)
	}
	opts := transform.Options{Kinds: []transform.Kind{transform.KindInline}}
	type reached struct {
		schema *xschema.Schema
		path   string
	}
	byFP := map[xschema.Fingerprint]reached{}
	checked := 0
	for _, tr1 := range transform.Candidates(base, opts) {
		mid, err := transform.Apply(base, tr1)
		if err != nil {
			continue
		}
		for _, tr2 := range transform.Candidates(mid, opts) {
			next, err := transform.Apply(mid, tr2)
			if err != nil {
				continue
			}
			fp := next.Fingerprint()
			path := tr1.String() + " ; " + tr2.String()
			if prev, ok := byFP[fp]; ok {
				if !xschema.Equivalent(prev.schema, next) {
					t.Fatalf("fingerprint collision between inequivalent schemas:\npath A: %s\npath B: %s", prev.path, path)
				}
				checked++
				continue
			}
			byFP[fp] = reached{next, path}
		}
	}
	if checked == 0 {
		t.Log("no reconverging two-step paths found (collision check vacuous)")
	}
	if len(byFP) < 5 {
		t.Fatalf("only %d distinct two-step outcomes; expected a rich space", len(byFP))
	}
}
