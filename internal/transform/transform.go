// Package transform implements the XML Schema rewritings of Section 4.1
// of the paper. Each transformation is a semantics-preserving rewriting
// of a physical schema (Union→Options widens the language, exactly as in
// the paper), and applying one produces a new p-schema — and therefore,
// through the fixed mapping, a new relational configuration. The set of
// transformations applicable to a schema defines the search space
// explored by the greedy algorithm.
package transform

import (
	"fmt"

	"legodb/internal/pschema"
	"legodb/internal/xschema"
)

// Kind enumerates the rewriting families of Section 4.1.
type Kind int

const (
	// KindInline replaces a type reference with the referenced body
	// (vertical merge: one table fewer, wider parent).
	KindInline Kind = iota
	// KindOutline gives a nested element its own type (vertical split).
	KindOutline
	// KindUnionDistribute splits a type on a union, a form of horizontal
	// partitioning: show[...(Movie|TV)] becomes (Show_Part1|Show_Part2).
	KindUnionDistribute
	// KindUnionFactorize is the inverse of distribution.
	KindUnionFactorize
	// KindRepetitionSplit rewrites a+ to a,a* so the first occurrence can
	// be inlined as a column.
	KindRepetitionSplit
	// KindRepetitionMerge is the inverse of splitting.
	KindRepetitionMerge
	// KindWildcardMaterialize partitions a wildcard on a concrete label:
	// ~ becomes (label | ~!label).
	KindWildcardMaterialize
	// KindUnionToOptions inlines a union as optional (nullable) content;
	// the only rewriting that widens the schema's language.
	KindUnionToOptions
)

var kindNames = map[Kind]string{
	KindInline:              "inline",
	KindOutline:             "outline",
	KindUnionDistribute:     "union-distribute",
	KindUnionFactorize:      "union-factorize",
	KindRepetitionSplit:     "repetition-split",
	KindRepetitionMerge:     "repetition-merge",
	KindWildcardMaterialize: "wildcard-materialize",
	KindUnionToOptions:      "union-to-options",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// AllKinds lists every transformation family.
var AllKinds = []Kind{
	KindInline, KindOutline, KindUnionDistribute, KindUnionFactorize,
	KindRepetitionSplit, KindRepetitionMerge, KindWildcardMaterialize,
	KindUnionToOptions,
}

// Transformation is one applicable rewriting: a kind and its target
// location. WildcardMaterialize additionally carries the label to split
// out and the estimated fraction of instances bearing that label.
type Transformation struct {
	Kind  Kind
	Loc   pschema.Loc
	Label string
	// LabelFraction estimates the fraction of wildcard instances with
	// the materialized label (0 means unknown; 0.5 is assumed).
	LabelFraction float64
}

func (t Transformation) String() string {
	if t.Kind == KindWildcardMaterialize {
		return fmt.Sprintf("%s(%s, %q)", t.Kind, t.Loc, t.Label)
	}
	return fmt.Sprintf("%s(%s)", t.Kind, t.Loc)
}

// Apply clones the schema, applies the transformation, and verifies the
// result is still a physical schema. The input is never modified.
func Apply(s *xschema.Schema, tr Transformation) (*xschema.Schema, error) {
	out := s.Clone()
	var err error
	switch tr.Kind {
	case KindInline:
		_, err = pschema.Inline(out, tr.Loc)
	case KindOutline:
		_, err = pschema.Outline(out, tr.Loc)
	case KindUnionDistribute:
		err = unionDistribute(out, tr.Loc)
	case KindUnionFactorize:
		err = unionFactorize(out, tr.Loc)
	case KindRepetitionSplit:
		err = repetitionSplit(out, tr.Loc)
	case KindRepetitionMerge:
		err = repetitionMerge(out, tr.Loc)
	case KindWildcardMaterialize:
		err = wildcardMaterialize(out, tr.Loc, tr.Label, tr.LabelFraction)
	case KindUnionToOptions:
		err = pschema.FlattenUnionAt(out, tr.Loc)
	default:
		err = fmt.Errorf("transform: unknown kind %v", tr.Kind)
	}
	if err != nil {
		return nil, fmt.Errorf("transform: %s: %w", tr, err)
	}
	out.GarbageCollect()
	if err := pschema.Check(out); err != nil {
		return nil, fmt.Errorf("transform: %s left a non-physical schema: %w", tr, err)
	}
	return out, nil
}

// Options configures candidate enumeration.
type Options struct {
	// Kinds restricts enumeration to the given families (nil = AllKinds).
	Kinds []Kind
	// WildcardLabels lists element names worth materializing out of
	// wildcards (typically the names the query workload mentions), with
	// their estimated instance fractions.
	WildcardLabels map[string]float64
}

// Candidates enumerates every applicable transformation of the requested
// kinds on the given p-schema.
func Candidates(s *xschema.Schema, opts Options) []Transformation {
	kinds := opts.Kinds
	if kinds == nil {
		kinds = AllKinds
	}
	var out []Transformation
	for _, k := range kinds {
		switch k {
		case KindInline:
			for _, loc := range pschema.InlineCandidates(s) {
				out = append(out, Transformation{Kind: k, Loc: loc})
			}
		case KindOutline:
			for _, loc := range pschema.OutlineCandidates(s) {
				out = append(out, Transformation{Kind: k, Loc: loc})
			}
		case KindUnionDistribute:
			for _, loc := range unionDistributeCandidates(s) {
				out = append(out, Transformation{Kind: k, Loc: loc})
			}
		case KindUnionFactorize:
			for _, loc := range unionFactorizeCandidates(s) {
				out = append(out, Transformation{Kind: k, Loc: loc})
			}
		case KindRepetitionSplit:
			for _, loc := range repetitionSplitCandidates(s) {
				out = append(out, Transformation{Kind: k, Loc: loc})
			}
		case KindRepetitionMerge:
			for _, loc := range repetitionMergeCandidates(s) {
				out = append(out, Transformation{Kind: k, Loc: loc})
			}
		case KindWildcardMaterialize:
			for _, loc := range wildcardCandidates(s) {
				for label, frac := range opts.WildcardLabels {
					out = append(out, Transformation{Kind: k, Loc: loc, Label: label, LabelFraction: frac})
				}
			}
		case KindUnionToOptions:
			for _, loc := range unionToOptionsCandidates(s) {
				out = append(out, Transformation{Kind: k, Loc: loc})
			}
		}
	}
	return out
}
