// Package relational defines relational schemas (catalogs) and the fixed
// mapping from physical XML schemas to relations described in Section 3.2
// and Table 1 of the paper:
//
//   - one relation per named type (alias types — pure named-type
//     expressions such as `type Show = (Show_Part1 | Show_Part2)` —
//     produce no relation and are looked through);
//   - a key column <Table>_id per relation;
//   - a foreign key parent_<P> per (transitive, alias-collapsed) parent
//     type P;
//   - one column per physical subelement, attribute or wildcard, with
//     nested elements prefix-joined (a_b) and optional content nullable.
//
// Statistics from the p-schema (scalar sizes/distributions, repetition
// counts, union fractions) propagate into table cardinalities, row
// widths, column distinct counts and null fractions — the relational
// catalog the cost-based optimizer consumes.
package relational

import (
	"fmt"
	"math"
	"strings"

	"legodb/internal/xschema"
)

// ColumnType enumerates the SQL column types produced by the mapping.
type ColumnType int

const (
	// IntCol is a 4-byte INTEGER.
	IntCol ColumnType = iota
	// CharCol is a fixed-size CHAR(n).
	CharCol
	// VarCharCol is a variable-size string with an estimated average
	// width (used when the schema carries no size statistics).
	VarCharCol
)

func (t ColumnType) String() string {
	switch t {
	case IntCol:
		return "INT"
	case CharCol:
		return "CHAR"
	case VarCharCol:
		return "STRING"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column is one relational attribute with its statistics.
type Column struct {
	Name     string
	Type     ColumnType
	Size     int // average stored width in bytes
	Nullable bool
	// NullFraction is the estimated fraction of NULL values (optional
	// content inlined from unions or ?-elements).
	NullFraction float64
	// Distinct is the estimated number of distinct non-null values
	// (0 = unknown).
	Distinct float64
	// Min/Max bound integer columns when known.
	Min, Max int64
	// Hist, when present, is an equi-width histogram over [Min, Max]:
	// the fraction of values per bucket (improves range selectivity on
	// skewed data; an extension beyond the paper's uniform assumption).
	Hist []float64
	// Key marks the table's id column; FKRef names the referenced table
	// for foreign keys.
	Key   bool
	FKRef string
	// XMLPath records the element path of this column inside its type's
	// content (used by the query translator and the shredder).
	XMLPath []string
}

// SQL renders the column as a DDL fragment.
func (c *Column) SQL() string {
	var typ string
	switch c.Type {
	case IntCol:
		typ = "INT"
	case CharCol:
		typ = fmt.Sprintf("CHAR(%d)", c.Size)
	default:
		typ = "STRING"
	}
	s := fmt.Sprintf("%s %s", c.Name, typ)
	if c.Nullable {
		s += " NULL"
	}
	return s
}

// Table is one relation produced by the mapping.
type Table struct {
	Name     string
	TypeName string // originating p-schema type
	Columns  []*Column
	// Rows is the estimated cardinality.
	Rows float64
	// Parents lists FK edges to parent tables.
	Parents []*Edge
	// TypeDigest is the shallow digest of the p-schema definition this
	// table derives from (xschema.TypeDigests), threaded through by the
	// mapper.
	TypeDigest xschema.Fingerprint
	// Digest hashes the table's complete content — name, cardinality,
	// every column field the translator or optimizer reads, and the
	// parent edges. Two tables with equal digests translate and cost
	// identically; the per-query cost cache keys on it.
	Digest uint64
	// ShapeDigest hashes only what the query translator reads: the table
	// and column names, column types, key/FK structure and XML paths —
	// no cardinalities, sizes or null fractions. Two tables with equal
	// shape digests translate identically even when their statistics
	// differ, so the per-query cache can reuse a stored translation and
	// pay only re-costing when a transformation elsewhere in the schema
	// shifted this table's row estimates.
	ShapeDigest uint64
}

// Edge is a parent-child relationship: rows of Child carry a foreign key
// to rows of Parent.
type Edge struct {
	Child, Parent string // table names
	FKColumn      string
	// AvgPerParent is the average number of child rows per parent row
	// along this edge.
	AvgPerParent float64
}

// Key returns the table's id column name.
func (t *Table) Key() string { return t.Name + "_id" }

// fnv64a primitives for the table digests, inlined so computeDigest —
// run once per table per mapped candidate schema — neither heap-
// allocates a hash state nor copies strings into byte slices.
const (
	tblFNVOffset uint64 = 14695981039346656037
	tblFNVPrime  uint64 = 1099511628211
)

func tblHashByte(h uint64, c byte) uint64 { return (h ^ uint64(c)) * tblFNVPrime }

func tblHashStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * tblFNVPrime
	}
	return tblHashByte(h, 0) // terminator keeps the encoding unambiguous
}

func tblHashFloat(h uint64, v float64) uint64 {
	bits := math.Float64bits(v)
	for i := 0; i < 64; i += 8 {
		h = (h ^ (bits >> i & 0xFF)) * tblFNVPrime
	}
	return h
}

func tblHashBool(h uint64, b bool) uint64 {
	if b {
		return tblHashByte(h, 1)
	}
	return tblHashByte(h, 0)
}

// computeDigest fills t.Digest and t.ShapeDigest from the table's
// content in one pass. Digest covers every field a downstream consumer
// (query translator, optimizer, DDL renderer) reads: if two tables
// digest equal, substituting one for the other must be unobservable.
// ShapeDigest covers only the translator's read set — names, column
// types, key/FK structure and XML paths — so it is invariant under
// statistics-only changes (row counts, sizes, null fractions,
// histograms).
func (t *Table) computeDigest() {
	full, shape := tblFNVOffset, tblFNVOffset
	full = tblHashStr(full, t.Name)
	full = tblHashStr(full, t.TypeName)
	full = tblHashFloat(full, t.Rows)
	shape = tblHashStr(shape, t.Name)
	shape = tblHashStr(shape, t.TypeName)
	for _, c := range t.Columns {
		full = tblHashStr(full, c.Name)
		full = tblHashFloat(full, float64(c.Type))
		full = tblHashFloat(full, float64(c.Size))
		full = tblHashBool(full, c.Nullable)
		full = tblHashFloat(full, c.NullFraction)
		full = tblHashFloat(full, c.Distinct)
		full = tblHashFloat(full, float64(c.Min))
		full = tblHashFloat(full, float64(c.Max))
		for _, b := range c.Hist {
			full = tblHashFloat(full, b)
		}
		full = tblHashBool(full, c.Key)
		full = tblHashStr(full, c.FKRef)
		for _, p := range c.XMLPath {
			full = tblHashStr(full, p)
		}
		full = tblHashStr(full, "|")

		shape = tblHashStr(shape, c.Name)
		shape = tblHashFloat(shape, float64(c.Type))
		shape = tblHashBool(shape, c.Key)
		shape = tblHashStr(shape, c.FKRef)
		for _, p := range c.XMLPath {
			shape = tblHashStr(shape, p)
		}
		shape = tblHashStr(shape, "|")
	}
	for _, e := range t.Parents {
		full = tblHashStr(full, e.Child)
		full = tblHashStr(full, e.Parent)
		full = tblHashStr(full, e.FKColumn)
		full = tblHashFloat(full, e.AvgPerParent)

		shape = tblHashStr(shape, e.Child)
		shape = tblHashStr(shape, e.Parent)
		shape = tblHashStr(shape, e.FKColumn)
	}
	t.Digest = full
	t.ShapeDigest = shape
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// RowBytes estimates the stored width of one row: column payloads plus a
// per-column presence byte and a row header. Storage is fixed-width, as
// in the paper's target system (SQL Server 6.5 CHAR columns): NULL values
// still occupy their column's full width. This is what makes the
// ALL-INLINED configuration's Show relation "wider than necessary"
// (Section 2) — inlined union branches cost width in every row.
func (t *Table) RowBytes() float64 {
	const rowHeader = 8
	total := float64(rowHeader)
	for _, c := range t.Columns {
		total += float64(c.Size) + 1
	}
	return total
}

// SQL renders a CREATE TABLE statement.
func (t *Table) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE %s (\n", t.Name)
	for i, c := range t.Columns {
		sep := ","
		if i == len(t.Columns)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "  %s%s\n", c.SQL(), sep)
	}
	b.WriteString(")")
	return b.String()
}

// Catalog is a relational schema with statistics: the output of the fixed
// mapping and the input of the optimizer.
type Catalog struct {
	Tables map[string]*Table
	Order  []string // table creation order (stable)
	// TableOf maps p-schema type names to table names; alias types map to
	// "".
	TableOf map[string]string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{Tables: make(map[string]*Table), TableOf: make(map[string]string)}
}

// Add registers a table.
func (c *Catalog) Add(t *Table) {
	if _, exists := c.Tables[t.Name]; !exists {
		c.Order = append(c.Order, t.Name)
	}
	c.Tables[t.Name] = t
	if t.TypeName != "" {
		c.TableOf[t.TypeName] = t.Name
	}
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.Tables[name] }

// TotalBytes estimates the stored size of the whole database.
func (c *Catalog) TotalBytes() float64 {
	total := 0.0
	for _, name := range c.Order {
		t := c.Tables[name]
		total += t.Rows * t.RowBytes()
	}
	return total
}

// SQL renders the whole catalog as DDL.
func (c *Catalog) SQL() string {
	var b strings.Builder
	for _, name := range c.Order {
		b.WriteString(c.Tables[name].SQL())
		b.WriteString("\n\n")
	}
	return b.String()
}

// String summarizes the catalog: one line per table with cardinality and
// width.
func (c *Catalog) String() string {
	var b strings.Builder
	for _, name := range c.Order {
		t := c.Tables[name]
		cols := make([]string, len(t.Columns))
		for i, col := range t.Columns {
			cols[i] = col.Name
		}
		fmt.Fprintf(&b, "%-24s rows=%-10.0f width=%-5.0f (%s)\n",
			name, t.Rows, t.RowBytes(), strings.Join(cols, ", "))
	}
	return b.String()
}
