// Package relational defines relational schemas (catalogs) and the fixed
// mapping from physical XML schemas to relations described in Section 3.2
// and Table 1 of the paper:
//
//   - one relation per named type (alias types — pure named-type
//     expressions such as `type Show = (Show_Part1 | Show_Part2)` —
//     produce no relation and are looked through);
//   - a key column <Table>_id per relation;
//   - a foreign key parent_<P> per (transitive, alias-collapsed) parent
//     type P;
//   - one column per physical subelement, attribute or wildcard, with
//     nested elements prefix-joined (a_b) and optional content nullable.
//
// Statistics from the p-schema (scalar sizes/distributions, repetition
// counts, union fractions) propagate into table cardinalities, row
// widths, column distinct counts and null fractions — the relational
// catalog the cost-based optimizer consumes.
package relational

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"legodb/internal/xschema"
)

// ColumnType enumerates the SQL column types produced by the mapping.
type ColumnType int

const (
	// IntCol is a 4-byte INTEGER.
	IntCol ColumnType = iota
	// CharCol is a fixed-size CHAR(n).
	CharCol
	// VarCharCol is a variable-size string with an estimated average
	// width (used when the schema carries no size statistics).
	VarCharCol
)

func (t ColumnType) String() string {
	switch t {
	case IntCol:
		return "INT"
	case CharCol:
		return "CHAR"
	case VarCharCol:
		return "STRING"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column is one relational attribute with its statistics.
type Column struct {
	Name     string
	Type     ColumnType
	Size     int // average stored width in bytes
	Nullable bool
	// NullFraction is the estimated fraction of NULL values (optional
	// content inlined from unions or ?-elements).
	NullFraction float64
	// Distinct is the estimated number of distinct non-null values
	// (0 = unknown).
	Distinct float64
	// Min/Max bound integer columns when known.
	Min, Max int64
	// Hist, when present, is an equi-width histogram over [Min, Max]:
	// the fraction of values per bucket (improves range selectivity on
	// skewed data; an extension beyond the paper's uniform assumption).
	Hist []float64
	// Key marks the table's id column; FKRef names the referenced table
	// for foreign keys.
	Key   bool
	FKRef string
	// XMLPath records the element path of this column inside its type's
	// content (used by the query translator and the shredder).
	XMLPath []string
}

// SQL renders the column as a DDL fragment.
func (c *Column) SQL() string {
	var typ string
	switch c.Type {
	case IntCol:
		typ = "INT"
	case CharCol:
		typ = fmt.Sprintf("CHAR(%d)", c.Size)
	default:
		typ = "STRING"
	}
	s := fmt.Sprintf("%s %s", c.Name, typ)
	if c.Nullable {
		s += " NULL"
	}
	return s
}

// Table is one relation produced by the mapping.
type Table struct {
	Name     string
	TypeName string // originating p-schema type
	Columns  []*Column
	// Rows is the estimated cardinality.
	Rows float64
	// Parents lists FK edges to parent tables.
	Parents []*Edge
	// TypeDigest is the shallow digest of the p-schema definition this
	// table derives from (xschema.TypeDigests), threaded through by the
	// mapper.
	TypeDigest xschema.Fingerprint
	// Digest hashes the table's complete content — name, cardinality,
	// every column field the translator or optimizer reads, and the
	// parent edges. Two tables with equal digests translate and cost
	// identically; the per-query cost cache keys on it.
	Digest uint64
}

// Edge is a parent-child relationship: rows of Child carry a foreign key
// to rows of Parent.
type Edge struct {
	Child, Parent string // table names
	FKColumn      string
	// AvgPerParent is the average number of child rows per parent row
	// along this edge.
	AvgPerParent float64
}

// Key returns the table's id column name.
func (t *Table) Key() string { return t.Name + "_id" }

// computeDigest fills t.Digest from the table's content. Every field a
// downstream consumer (query translator, optimizer, DDL renderer) reads
// must be covered: if two tables digest equal, substituting one for the
// other must be unobservable.
func (t *Table) computeDigest() {
	h := fnv.New64a()
	w := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	f := func(v float64) {
		var b [8]byte
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	w(t.Name)
	w(t.TypeName)
	f(t.Rows)
	for _, c := range t.Columns {
		w(c.Name)
		f(float64(c.Type))
		f(float64(c.Size))
		if c.Nullable {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
		f(c.NullFraction)
		f(c.Distinct)
		f(float64(c.Min))
		f(float64(c.Max))
		for _, b := range c.Hist {
			f(b)
		}
		if c.Key {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
		w(c.FKRef)
		for _, p := range c.XMLPath {
			w(p)
		}
		w("|")
	}
	for _, e := range t.Parents {
		w(e.Child)
		w(e.Parent)
		w(e.FKColumn)
		f(e.AvgPerParent)
	}
	t.Digest = h.Sum64()
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// RowBytes estimates the stored width of one row: column payloads plus a
// per-column presence byte and a row header. Storage is fixed-width, as
// in the paper's target system (SQL Server 6.5 CHAR columns): NULL values
// still occupy their column's full width. This is what makes the
// ALL-INLINED configuration's Show relation "wider than necessary"
// (Section 2) — inlined union branches cost width in every row.
func (t *Table) RowBytes() float64 {
	const rowHeader = 8
	total := float64(rowHeader)
	for _, c := range t.Columns {
		total += float64(c.Size) + 1
	}
	return total
}

// SQL renders a CREATE TABLE statement.
func (t *Table) SQL() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE %s (\n", t.Name)
	for i, c := range t.Columns {
		sep := ","
		if i == len(t.Columns)-1 {
			sep = ""
		}
		fmt.Fprintf(&b, "  %s%s\n", c.SQL(), sep)
	}
	b.WriteString(")")
	return b.String()
}

// Catalog is a relational schema with statistics: the output of the fixed
// mapping and the input of the optimizer.
type Catalog struct {
	Tables map[string]*Table
	Order  []string // table creation order (stable)
	// TableOf maps p-schema type names to table names; alias types map to
	// "".
	TableOf map[string]string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{Tables: make(map[string]*Table), TableOf: make(map[string]string)}
}

// Add registers a table.
func (c *Catalog) Add(t *Table) {
	if _, exists := c.Tables[t.Name]; !exists {
		c.Order = append(c.Order, t.Name)
	}
	c.Tables[t.Name] = t
	if t.TypeName != "" {
		c.TableOf[t.TypeName] = t.Name
	}
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table { return c.Tables[name] }

// TotalBytes estimates the stored size of the whole database.
func (c *Catalog) TotalBytes() float64 {
	total := 0.0
	for _, name := range c.Order {
		t := c.Tables[name]
		total += t.Rows * t.RowBytes()
	}
	return total
}

// SQL renders the whole catalog as DDL.
func (c *Catalog) SQL() string {
	var b strings.Builder
	for _, name := range c.Order {
		b.WriteString(c.Tables[name].SQL())
		b.WriteString("\n\n")
	}
	return b.String()
}

// String summarizes the catalog: one line per table with cardinality and
// width.
func (c *Catalog) String() string {
	var b strings.Builder
	for _, name := range c.Order {
		t := c.Tables[name]
		cols := make([]string, len(t.Columns))
		for i, col := range t.Columns {
			cols[i] = col.Name
		}
		fmt.Fprintf(&b, "%-24s rows=%-10.0f width=%-5.0f (%s)\n",
			name, t.Rows, t.RowBytes(), strings.Join(cols, ", "))
	}
	return b.String()
}
