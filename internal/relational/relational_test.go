package relational

import (
	"strings"
	"testing"

	"legodb/internal/xschema"
)

func TestColumnSQLVariants(t *testing.T) {
	cases := []struct {
		col  Column
		want string
	}{
		{Column{Name: "a", Type: IntCol, Size: 4}, "a INT"},
		{Column{Name: "b", Type: CharCol, Size: 50}, "b CHAR(50)"},
		{Column{Name: "c", Type: VarCharCol, Size: 30}, "c STRING"},
		{Column{Name: "d", Type: IntCol, Size: 4, Nullable: true}, "d INT NULL"},
	}
	for _, c := range cases {
		if got := c.col.SQL(); got != c.want {
			t.Errorf("SQL = %q, want %q", got, c.want)
		}
	}
}

func TestColumnTypeStrings(t *testing.T) {
	if IntCol.String() != "INT" || CharCol.String() != "CHAR" || VarCharCol.String() != "STRING" {
		t.Fatal("type strings broken")
	}
	if got := ColumnType(42).String(); !strings.Contains(got, "42") {
		t.Fatalf("unknown type = %q", got)
	}
}

func TestDedupeColumnNames(t *testing.T) {
	// Two union branches with equally-named fields flattened to options
	// must not collide.
	s := xschema.MustParseSchema(`
type Show = show[ (info[ String<#10,#3> ])?, (info[ Integer ])? ]`)
	cat, err := Map(s)
	if err != nil {
		t.Fatal(err)
	}
	show := cat.Table("Show")
	names := map[string]bool{}
	for _, c := range show.Columns {
		if names[c.Name] {
			t.Fatalf("duplicate column %q", c.Name)
		}
		names[c.Name] = true
	}
	if !names["info"] || !names["info_2"] {
		t.Fatalf("columns = %v", names)
	}
}

func TestSanitizeTypeNames(t *testing.T) {
	s := xschema.NewSchema("Weird")
	s.Define("Weird", &xschema.Element{Name: "weird", Content: &xschema.Scalar{}})
	cat, err := Map(s)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Table("Weird") == nil {
		t.Fatalf("catalog = %v", cat.Order)
	}
	if got := sanitize("a-b.c d"); got != "a_b_c_d" {
		t.Fatalf("sanitize = %q", got)
	}
	if got := sanitize(""); got != "T" {
		t.Fatalf("sanitize empty = %q", got)
	}
}

func TestEffectiveCountDefaults(t *testing.T) {
	cases := []struct {
		rep  xschema.Repeat
		want float64
	}{
		{xschema.Repeat{Min: 0, Max: 1}, 0.5},
		{xschema.Repeat{Min: 0, Max: xschema.Unbounded}, 1},
		{xschema.Repeat{Min: 2, Max: xschema.Unbounded}, 3},
		{xschema.Repeat{Min: 2, Max: 6}, 4},
		{xschema.Repeat{Min: 0, Max: 1, AvgCount: 0.9}, 0.9},
	}
	for _, c := range cases {
		if got := effectiveCount(&c.rep); got != c.want {
			t.Errorf("effectiveCount(%+v) = %g, want %g", c.rep, got, c.want)
		}
	}
}

func TestFKNullFractionOnPartitions(t *testing.T) {
	s := xschema.MustParseSchema(`
type R = r[ Show{0,*}<#100> ]
type Show = ( P1 | P2 )
type P1 = show[ a[ String ], Kid* ]
type P2 = show[ b[ String ], Kid* ]
type Kid = kid[ String ]`)
	// Give the union explicit fractions.
	choice := s.Types["Show"].(*xschema.Choice)
	choice.Fractions = []float64{0.75, 0.25}
	cat, err := Map(s)
	if err != nil {
		t.Fatal(err)
	}
	kid := cat.Table("Kid")
	fk1 := kid.Column("parent_P1")
	fk2 := kid.Column("parent_P2")
	if fk1 == nil || fk2 == nil {
		t.Fatalf("kid columns: %v", kid.Columns)
	}
	if fk1.NullFraction < 0.2 || fk1.NullFraction > 0.3 {
		t.Errorf("parent_P1 null fraction = %g, want ~0.25", fk1.NullFraction)
	}
	if fk2.NullFraction < 0.7 || fk2.NullFraction > 0.8 {
		t.Errorf("parent_P2 null fraction = %g, want ~0.75", fk2.NullFraction)
	}
}

func TestCatalogHelpers(t *testing.T) {
	s := xschema.MustParseSchema(`
type R = r[ X*<#10> ]
type X = x[ a[ String<#5,#3> ] ]`)
	cat, err := Map(s)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Table("Missing") != nil {
		t.Fatal("phantom table")
	}
	if cat.TotalBytes() <= 0 {
		t.Fatal("TotalBytes must be positive")
	}
	if !strings.Contains(cat.String(), "rows=") {
		t.Fatalf("String = %q", cat.String())
	}
	// Re-adding a table keeps Order stable.
	n := len(cat.Order)
	cat.Add(cat.Table("X"))
	if len(cat.Order) != n {
		t.Fatal("Add duplicated the order entry")
	}
}

func TestMapWithOptions(t *testing.T) {
	s := xschema.MustParseSchema(`
type R = r[ X*<#10> ]
type X = x[ a[ String ] ]`)
	cat, err := MapWith(s, Options{RootCount: 5, DefaultStringSize: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.Table("R").Rows; got != 5 {
		t.Fatalf("R rows = %g", got)
	}
	if got := cat.Table("X").Rows; got != 50 {
		t.Fatalf("X rows = %g", got)
	}
	if got := cat.Table("X").Column("a").Size; got != 99 {
		t.Fatalf("default string size = %d", got)
	}
}
