package relational

import (
	"strings"
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// figure3Schema is the fragment used in Figure 3 of the paper.
const figure3Schema = `
type IMDB = imdb[ Show{0,*}<#1000> ]
type Show = show [ @type[ String<#8,#2> ],
    title[ String<#50,#1000> ],
    year[ Integer<#4,#1800,#2100,#300> ],
    Aka{1,10}<#3> ]
type Aka = aka[ String<#40,#900> ]
`

func mapSchema(t *testing.T, src string) *Catalog {
	t.Helper()
	s := xschema.MustParseSchema(src)
	cat, err := Map(s)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return cat
}

func TestFigure3Mapping(t *testing.T) {
	cat := mapSchema(t, figure3Schema)
	show := cat.Table("Show")
	if show == nil {
		t.Fatalf("no Show table; catalog:\n%s", cat)
	}
	for _, want := range []string{"Show_id", "type", "title", "year", "parent_IMDB"} {
		if show.Column(want) == nil {
			t.Errorf("Show lacks column %s; has %v", want, colNames(show))
		}
	}
	aka := cat.Table("Aka")
	if aka == nil {
		t.Fatal("no Aka table")
	}
	for _, want := range []string{"Aka_id", "aka", "parent_Show"} {
		if aka.Column(want) == nil {
			t.Errorf("Aka lacks column %s; has %v", want, colNames(aka))
		}
	}
	if fk := aka.Column("parent_Show"); fk.FKRef != "Show" {
		t.Errorf("parent_Show FKRef = %q", fk.FKRef)
	}
}

func colNames(t *Table) []string {
	names := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		names[i] = c.Name
	}
	return names
}

func TestCardinalityPropagation(t *testing.T) {
	cat := mapSchema(t, figure3Schema)
	if got := cat.Table("IMDB").Rows; got != 1 {
		t.Errorf("IMDB rows = %g", got)
	}
	if got := cat.Table("Show").Rows; got != 1000 {
		t.Errorf("Show rows = %g", got)
	}
	if got := cat.Table("Aka").Rows; got != 3000 {
		t.Errorf("Aka rows = %g (3 per show)", got)
	}
	if e := cat.Table("Aka").Parents[0]; e.AvgPerParent != 3 {
		t.Errorf("Aka fanout = %g", e.AvgPerParent)
	}
}

func TestColumnStatistics(t *testing.T) {
	cat := mapSchema(t, figure3Schema)
	show := cat.Table("Show")
	year := show.Column("year")
	if year.Type != IntCol || year.Min != 1800 || year.Max != 2100 || year.Distinct != 300 {
		t.Errorf("year column = %+v", year)
	}
	title := show.Column("title")
	if title.Type != CharCol || title.Size != 50 || title.Distinct != 1000 {
		t.Errorf("title column = %+v", title)
	}
	id := show.Column("Show_id")
	if !id.Key || id.Distinct != 1000 {
		t.Errorf("id column = %+v", id)
	}
	fk := cat.Table("Aka").Column("parent_Show")
	if fk.Distinct != 1000 {
		t.Errorf("fk distinct = %g, want 1000", fk.Distinct)
	}
}

func TestAliasTypesProduceNoTable(t *testing.T) {
	// Union distribution result: Show is an alias over two partitions.
	cat := mapSchema(t, `
type IMDB = imdb[ Show{0,*}<#100> ]
type Show = ( Show_Part1 | Show_Part2 )
type Show_Part1 = show[ title[ String<#50,#90> ], box_office[ Integer ] ]
type Show_Part2 = show[ title[ String<#50,#10> ], seasons[ Integer ] ]
`)
	if _, ok := cat.Tables["Show"]; ok {
		t.Fatal("alias type Show produced a table")
	}
	if cat.TableOf["Show"] != "" {
		t.Fatalf("TableOf[Show] = %q", cat.TableOf["Show"])
	}
	p1 := cat.Table("Show_Part1")
	if p1 == nil || p1.Column("parent_IMDB") == nil {
		t.Fatalf("partition did not attach to grandparent: %v", cat)
	}
	// Without fractions, each branch gets half of the 100 shows.
	if p1.Rows != 50 {
		t.Errorf("partition rows = %g, want 50", p1.Rows)
	}
}

func TestUnionFractionsSplitCardinality(t *testing.T) {
	s := xschema.MustParseSchema(`
type IMDB = imdb[ Show{0,*} ]
type Show = ( Movie | TV )
type Movie = show[ box_office[ Integer ] ]
type TV = show[ seasons[ Integer ] ]
`)
	stats := xstats.NewSet()
	stats.SetCount(1, "imdb")
	stats.SetCount(10000, "imdb", "show")
	stats.SetCount(7000, "imdb", "show", "box_office")
	stats.SetCount(3000, "imdb", "show", "seasons")
	if err := xstats.Annotate(s, stats); err != nil {
		t.Fatal(err)
	}
	cat, err := Map(s)
	if err != nil {
		t.Fatal(err)
	}
	// Fractions cannot be derived at the alias (both branches are <show>),
	// so they fall back to equal split; verify the split sums to total.
	total := cat.Table("Movie").Rows + cat.Table("TV").Rows
	if total != 10000 {
		t.Errorf("partition rows sum = %g, want 10000", total)
	}
}

func TestOptionalContentNullable(t *testing.T) {
	cat := mapSchema(t, `
type Show = show[ title[ String<#50,#10> ],
    (box_office[ Integer ], video_sales[ Integer ])?<#0.7>,
    (seasons[ Integer ], description[ String<#120,#5> ])?<#0.3> ]`)
	show := cat.Table("Show")
	bo := show.Column("box_office")
	if bo == nil || !bo.Nullable {
		t.Fatalf("box_office = %+v", bo)
	}
	if bo.NullFraction < 0.29 || bo.NullFraction > 0.31 {
		t.Errorf("box_office null fraction = %g, want 0.3", bo.NullFraction)
	}
	seasons := show.Column("seasons")
	if seasons.NullFraction < 0.69 || seasons.NullFraction > 0.71 {
		t.Errorf("seasons null fraction = %g, want 0.7", seasons.NullFraction)
	}
	if title := show.Column("title"); title.Nullable {
		t.Error("title should not be nullable")
	}
}

func TestWildcardMapping(t *testing.T) {
	cat := mapSchema(t, `
type Show = show[ title[ String ], Review*<#10> ]
type Review = review[ ~[ String<#800,#100> ] ]`)
	review := cat.Table("Review")
	if review == nil {
		t.Fatal("no Review table")
	}
	tilde := review.Column("tilde")
	if tilde == nil || tilde.Type != CharCol {
		t.Fatalf("tilde column = %+v", tilde)
	}
	data := review.Column("data")
	if data == nil || data.Size != 800 {
		t.Fatalf("data column = %+v", data)
	}
}

func TestRootWildcardType(t *testing.T) {
	cat := mapSchema(t, `
type Show = show[ Tilde{0,*}<#4> ]
type Tilde = ~[ String<#100,#7> ]`)
	tl := cat.Table("Tilde")
	if tl == nil {
		t.Fatal("no Tilde table")
	}
	if tl.Column("tilde") == nil || tl.Column("data") == nil {
		t.Fatalf("Tilde columns = %v", colNames(tl))
	}
	if got := tl.Column("tilde").XMLPath; len(got) != 1 || got[0] != "#tag" {
		t.Errorf("tilde XMLPath = %v", got)
	}
}

func TestNestedElementPrefixing(t *testing.T) {
	cat := mapSchema(t, `
type Actor = actor[ name[ String ],
    biography[ birthday[ String ], text[ String ] ]? ]`)
	actor := cat.Table("Actor")
	for _, want := range []string{"name", "biography_birthday", "biography_text"} {
		if actor.Column(want) == nil {
			t.Errorf("missing column %s; have %v", want, colNames(actor))
		}
	}
	bb := actor.Column("biography_birthday")
	if !bb.Nullable {
		t.Error("optional nested content should be nullable")
	}
	if got := strings.Join(bb.XMLPath, "/"); got != "biography/birthday" {
		t.Errorf("XMLPath = %q", got)
	}
}

func TestScalarTypeBody(t *testing.T) {
	cat := mapSchema(t, `
type Doc = d[ Value*<#5> ]
type Value = String<#20,#9>`)
	v := cat.Table("Value")
	if v == nil {
		t.Fatal("no Value table")
	}
	data := v.Column("data")
	if data == nil || data.Size != 20 {
		t.Fatalf("data column = %+v", data)
	}
	if got := data.XMLPath; len(got) != 1 || got[0] != "#text" {
		t.Errorf("XMLPath = %v", got)
	}
}

func TestRecursiveSchemaMapping(t *testing.T) {
	s := xschema.MustParseSchema(`
type AnyElement = ~[ (AnyElement | AnyScalar)*<#0.5> ]
type AnyScalar = String`)
	cat, err := Map(s)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	any := cat.Table("AnyElement")
	if any == nil {
		t.Fatal("no AnyElement table")
	}
	// Recursive type references itself: FK to its own table.
	foundSelf := false
	for _, e := range any.Parents {
		if e.Parent == "AnyElement" {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Errorf("AnyElement lacks self FK; parents = %+v", any.Parents)
	}
}

func TestMultipleParents(t *testing.T) {
	cat := mapSchema(t, `
type Root = r[ A*, B* ]
type A = a[ Shared? ]
type B = b[ Shared? ]
type Shared = s[ String ]`)
	shared := cat.Table("Shared")
	if len(shared.Parents) != 2 {
		t.Fatalf("Shared parents = %+v", shared.Parents)
	}
	if shared.Column("parent_A") == nil || shared.Column("parent_B") == nil {
		t.Fatalf("Shared columns = %v", colNames(shared))
	}
}

func TestRejectsNonPhysicalSchema(t *testing.T) {
	s := xschema.MustParseSchema(`type A = a[ b[ String ]* ]`)
	if _, err := Map(s); err == nil {
		t.Fatal("Map accepted unstratified schema")
	}
}

func TestDDLOutput(t *testing.T) {
	cat := mapSchema(t, figure3Schema)
	ddl := cat.SQL()
	for _, want := range []string{"TABLE Show", "Show_id INT", "title CHAR(50)", "parent_Show INT"} {
		if !strings.Contains(ddl, want) {
			t.Errorf("DDL missing %q:\n%s", want, ddl)
		}
	}
}

func TestRowBytesAndTotal(t *testing.T) {
	cat := mapSchema(t, figure3Schema)
	show := cat.Table("Show")
	w := show.RowBytes()
	// id(4) + type(8) + title(50) + year(4) + fk(4) = 70 payload + 5
	// presence bytes + 8 header = 83.
	if w < 80 || w > 86 {
		t.Errorf("Show row bytes = %g", w)
	}
	if cat.TotalBytes() <= 0 {
		t.Error("TotalBytes not positive")
	}
}

func TestInitialSchemasMapCleanly(t *testing.T) {
	src := `
type IMDB = imdb [ Show{0,*} ]
type Show = show [ @type[ String ], title [ String ],
    aka [ String ]{1,10},
    reviews[ ~[ String ] ]{0,*},
    (box_office [ Integer ], video_sales [ Integer ]
     | seasons[ Integer ], description [ String ], episodes [ name[String] ]{0,*}) ]`
	s := xschema.MustParseSchema(src)
	for _, build := range []struct {
		name string
		fn   func(*xschema.Schema) (*xschema.Schema, error)
	}{
		{"outlined", pschema.InitialOutlined},
		{"all-inlined", pschema.AllInlined},
	} {
		t.Run(build.name, func(t *testing.T) {
			ps, err := build.fn(s)
			if err != nil {
				t.Fatal(err)
			}
			cat, err := Map(ps)
			if err != nil {
				t.Fatalf("Map: %v", err)
			}
			if len(cat.Order) == 0 {
				t.Fatal("empty catalog")
			}
			// FK targets must exist.
			for _, name := range cat.Order {
				for _, e := range cat.Tables[name].Parents {
					if cat.Table(e.Parent) == nil {
						t.Errorf("table %s references missing parent %s", name, e.Parent)
					}
				}
			}
		})
	}
}
