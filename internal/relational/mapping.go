package relational

import (
	"fmt"
	"strings"
	"sync"

	"legodb/internal/faults"
	"legodb/internal/pschema"
	"legodb/internal/xschema"
)

// Options tunes the fixed mapping.
type Options struct {
	// RootCount is the number of root-element instances stored (number of
	// documents); default 1.
	RootCount float64
	// DefaultStringSize is the assumed width of strings without size
	// statistics; default 30 bytes.
	DefaultStringSize int
}

func (o *Options) setDefaults() {
	if o.RootCount == 0 {
		o.RootCount = 1
	}
	if o.DefaultStringSize == 0 {
		o.DefaultStringSize = 30
	}
}

// Map applies the fixed mapping of Section 3.2 to a physical schema,
// producing a relational catalog with statistics. rel(ps) in the paper.
func Map(s *xschema.Schema) (*Catalog, error) {
	return MapWith(s, Options{})
}

// MapWith is Map with explicit options (a one-shot Mapper).
func MapWith(s *xschema.Schema, opts Options) (*Catalog, error) {
	return NewMapper(opts).Map(s, nil)
}

// Mapper maps p-schemas to catalogs, memoizing the inline-column
// template of each type definition across calls. Column layout depends
// only on a definition's own body (the walk stops at named-expression
// boundaries — Refs and Choices contribute FK edges, not columns), so
// the template is keyed by the definition's shallow digest
// (xschema.TypeDigests). In the search hot path each candidate rewrites
// one definition, so a delta re-map rebuilds one column template and
// reuses every other, recomputing only the global parts (cardinalities,
// FK columns, row counts).
//
// Memoized columns are shared by pointer between catalogs; all mapping
// consumers treat built catalogs as immutable. A Mapper is safe for
// concurrent use.
type Mapper struct {
	opts Options
	// mu is an RWMutex because the memo is read-mostly: in the search's
	// steady state every worker re-maps candidates whose definitions are
	// almost all unchanged, so lookups dominate stores and must not
	// serialize the worker pool.
	mu   sync.RWMutex
	cols map[xschema.Fingerprint]colTemplate
}

// colTemplate is one memoized column set with its content hash
// (folded into Table.Digest without rehashing every field).
type colTemplate struct {
	cols []*Column
}

// mapperMemoCap bounds the template memo; on overflow the memo resets
// (deterministic: the memo affects sharing and speed, never values).
const mapperMemoCap = 4096

// NewMapper returns a Mapper with the given options.
func NewMapper(opts Options) *Mapper {
	opts.setDefaults()
	return &Mapper{opts: opts, cols: make(map[xschema.Fingerprint]colTemplate)}
}

// Map builds the catalog for one p-schema. digests are the schema's
// shallow per-type digests (xschema.TypeDigests); pass nil to have Map
// compute them. Every produced table carries its TypeDigest and a
// content Digest.
func (mp *Mapper) Map(s *xschema.Schema, digests map[string]xschema.Fingerprint) (*Catalog, error) {
	if err := faults.Inject(faults.SiteMap); err != nil {
		return nil, err
	}
	if err := pschema.Check(s); err != nil {
		return nil, err
	}
	if digests == nil {
		digests = s.TypeDigests()
	}
	m := &mapper{schema: s, opts: mp.opts, alias: make(map[string]bool), mp: mp, digests: digests}
	for _, name := range s.Names {
		m.alias[name] = pschema.IsAlias(s.Types[name])
	}
	edges, err := m.collectEdges()
	if err != nil {
		return nil, err
	}
	cards := m.cardinalities(edges)
	cat := NewCatalog()
	for _, name := range s.Names {
		if m.alias[name] {
			cat.TableOf[name] = ""
			continue
		}
		t, err := m.buildTable(name, cards[name], edges, cards)
		if err != nil {
			return nil, err
		}
		cat.Add(t)
	}
	return cat, nil
}

// template returns the memoized column set for a definition digest.
func (mp *Mapper) template(dig xschema.Fingerprint) (colTemplate, bool) {
	mp.mu.RLock()
	tmpl, ok := mp.cols[dig]
	mp.mu.RUnlock()
	return tmpl, ok
}

// storeTemplate memoizes a column set. On a race the first stored
// template wins, so all tables of equal digest share one column slice.
func (mp *Mapper) storeTemplate(dig xschema.Fingerprint, tmpl colTemplate) colTemplate {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	if prev, ok := mp.cols[dig]; ok {
		return prev
	}
	if len(mp.cols) >= mapperMemoCap {
		mp.cols = make(map[xschema.Fingerprint]colTemplate)
	}
	mp.cols[dig] = tmpl
	return tmpl
}

type mapper struct {
	schema  *xschema.Schema
	opts    Options
	alias   map[string]bool
	mp      *Mapper
	digests map[string]xschema.Fingerprint
}

// refEdge is a raw type-to-type reference with its multiplicity.
type refEdge struct {
	parent, child string // type names (non-alias)
	avg           float64
}

// collectEdges walks every non-alias type body and records, for each
// reachable non-alias referenced type, the average number of instances
// per parent instance. Alias types are looked through, multiplying
// repetition counts and union fractions along the way.
func (m *mapper) collectEdges() ([]refEdge, error) {
	var edges []refEdge
	for _, name := range m.schema.Names {
		if m.alias[name] {
			continue
		}
		acc := make(map[string]float64)
		seen := make(map[string]int)
		if err := m.edgeWalk(m.schema.Types[name], 1, acc, seen); err != nil {
			return nil, fmt.Errorf("relational: type %s: %w", name, err)
		}
		for child, avg := range acc {
			edges = append(edges, refEdge{parent: name, child: child, avg: avg})
		}
	}
	return edges, nil
}

func (m *mapper) edgeWalk(t xschema.Type, mult float64, acc map[string]float64, seen map[string]int) error {
	switch t := t.(type) {
	case *xschema.Ref:
		if m.alias[t.Name] {
			if seen[t.Name] >= 2 {
				return nil
			}
			seen[t.Name]++
			def, ok := m.schema.Lookup(t.Name)
			if !ok {
				return fmt.Errorf("undefined type %q", t.Name)
			}
			err := m.edgeWalk(def, mult, acc, seen)
			seen[t.Name]--
			return err
		}
		acc[t.Name] += mult
		return nil
	case *xschema.Repeat:
		return m.edgeWalk(t.Inner, mult*effectiveCount(t), acc, seen)
	case *xschema.Choice:
		// Without annotated fractions the alternatives split uniformly.
		// The uniform prior ranges over the flattened alternative list
		// (fraction-less nested choices spliced in), so that associatively
		// re-grouped unions — which match, map and translate identically —
		// also cost identically. This is the invariant that lets the
		// canonical fingerprint flatten fraction-less choice nesting.
		alts := t.Alts
		if len(t.Fractions) == 0 {
			alts = xschema.FlattenChoice(t)
		}
		for i, alt := range alts {
			frac := 1.0 / float64(len(alts))
			if len(t.Fractions) == len(alts) {
				frac = t.Fractions[i]
			}
			if err := m.edgeWalk(alt, mult*frac, acc, seen); err != nil {
				return err
			}
		}
		return nil
	case *xschema.Sequence:
		for _, it := range t.Items {
			if err := m.edgeWalk(it, mult, acc, seen); err != nil {
				return err
			}
		}
		return nil
	case *xschema.Element:
		return m.edgeWalk(t.Content, mult, acc, seen)
	case *xschema.Wildcard:
		return m.edgeWalk(t.Content, mult, acc, seen)
	default:
		return nil
	}
}

// effectiveCount estimates the average occurrence count of a repetition:
// the annotated statistic when present, the bound midpoint otherwise.
func effectiveCount(r *xschema.Repeat) float64 {
	if r.AvgCount > 0 {
		return r.AvgCount
	}
	switch {
	case r.Min == 0 && r.Max == 1:
		return 0.5
	case r.Max == xschema.Unbounded:
		return float64(r.Min) + 1
	default:
		return float64(r.Min+r.Max) / 2
	}
}

// cardinalities solves card(C) = Σ_P card(P)·fanout(P→C) with the root at
// Options.RootCount. Acyclic schemas converge in one topological pass;
// recursive schemas are approximated by bounded iteration.
func (m *mapper) cardinalities(edges []refEdge) map[string]float64 {
	cards := make(map[string]float64, len(m.schema.Names))
	next := make(map[string]float64, len(m.schema.Names))
	rounds := len(m.schema.Names) + 2
	if rounds < 16 {
		rounds = 16
	}
	for i := 0; i < rounds; i++ {
		clear(next)
		next[m.schema.Root] = m.opts.RootCount
		for _, e := range edges {
			next[e.child] += cards[e.parent] * e.avg
		}
		converged := len(next) == len(cards)
		if converged {
			for k, v := range next {
				if diff := v - cards[k]; diff > 0.001 || diff < -0.001 {
					converged = false
					break
				}
			}
		}
		cards, next = next, cards
		if converged {
			break
		}
	}
	return cards
}

// buildTable constructs the relation for one non-alias type. The inline
// columns (everything except the key and FK columns, which depend on
// global cardinalities and names) come from the Mapper's per-digest
// template memo: a definition unchanged since the last Map call reuses
// its column objects outright.
func (m *mapper) buildTable(name string, rows float64, edges []refEdge, cards map[string]float64) (*Table, error) {
	dig := m.digests[name]
	t := &Table{Name: sanitize(name), TypeName: name, Rows: rows, TypeDigest: dig}
	t.Columns = append(t.Columns, &Column{
		Name: t.Key(), Type: IntCol, Size: 4, Key: true, Distinct: rows,
	})
	tmpl, ok := m.mp.template(dig)
	if !ok {
		cols, err := m.rootColumns(m.schema.Types[name])
		if err != nil {
			return nil, fmt.Errorf("relational: type %s: %w", name, err)
		}
		tmpl = m.mp.storeTemplate(dig, colTemplate{cols: dedupe(cols)})
	}
	t.Columns = append(t.Columns, tmpl.cols...)
	// Each FK column is NULL on rows that belong to a different parent
	// type (e.g. Aka rows under Show_Part2 have a NULL parent_Show_Part1
	// after union distribution); record the share so join estimates stay
	// accurate.
	totalIn := 0.0
	for _, e := range edges {
		if e.child == name {
			totalIn += cards[e.parent] * e.avg
		}
	}
	for _, e := range edges {
		if e.child != name {
			continue
		}
		parentTable := sanitize(e.parent)
		share := 1.0
		if totalIn > 0 {
			share = cards[e.parent] * e.avg / totalIn
		}
		fk := &Column{
			Name:         "parent_" + parentTable,
			Type:         IntCol,
			Size:         4,
			Distinct:     cards[e.parent],
			FKRef:        parentTable,
			Nullable:     share < 0.9999,
			NullFraction: 1 - share,
		}
		t.Columns = append(t.Columns, fk)
		t.Parents = append(t.Parents, &Edge{
			Child: t.Name, Parent: parentTable, FKColumn: fk.Name, AvgPerParent: e.avg,
		})
	}
	t.computeDigest()
	return t, nil
}

// rootColumns maps a type body to columns. The body-root element names
// the entity the table stores; its tag does not prefix column names
// (TABLE Show has column title, not show_title), matching Figure 3.
//
// XMLPath conventions (consumed by the shredder and the query
// translator): plain components navigate to a named child and the value
// is that child's text; "@a" reads attribute a; "~" steps into the
// wildcard child element; "#tag" reads the current node's tag name;
// "#text" reads the current node's own text.
func (m *mapper) rootColumns(body xschema.Type) ([]*Column, error) {
	switch b := body.(type) {
	case *xschema.Element:
		if sc, ok := b.Content.(*xschema.Scalar); ok {
			col := m.scalarColumn(sc, nil, b.Name, false, 0)
			col.XMLPath = []string{"#text"}
			return []*Column{col}, nil
		}
		return m.columns(b.Content, nil, false, 0)
	case *xschema.Wildcard:
		tag := &Column{
			Name: "tilde", Type: CharCol, Size: 20,
			XMLPath: []string{"#tag"},
		}
		if sc, ok := b.Content.(*xschema.Scalar); ok {
			col := m.scalarColumn(sc, nil, "data", false, 0)
			col.XMLPath = []string{"#text"}
			return []*Column{tag, col}, nil
		}
		inner, err := m.columns(b.Content, nil, false, 0)
		if err != nil {
			return nil, err
		}
		return append([]*Column{tag}, inner...), nil
	case *xschema.Scalar:
		col := m.scalarColumn(b, nil, "data", false, 0)
		col.XMLPath = []string{"#text"}
		return []*Column{col}, nil
	default:
		return m.columns(body, nil, false, 0)
	}
}

// columns maps physical content to relational columns per Table 1 (μ and
// μ_o). prefix is the element-name path inside the type; nullable/nullFrac
// track optionality.
func (m *mapper) columns(t xschema.Type, prefix []string, nullable bool, nullFrac float64) ([]*Column, error) {
	switch t := t.(type) {
	case *xschema.Scalar:
		col := m.scalarColumn(t, prefix, "", nullable, nullFrac)
		col.XMLPath = extend(prefix, "#text")
		return []*Column{col}, nil
	case *xschema.Attribute:
		sc, ok := t.Content.(*xschema.Scalar)
		if !ok {
			return nil, fmt.Errorf("attribute @%s content is not scalar", t.Name)
		}
		col := m.scalarColumn(sc, prefix, t.Name, nullable, nullFrac)
		col.XMLPath = extend(prefix, "@"+t.Name)
		return []*Column{col}, nil
	case *xschema.Element:
		if sc, ok := t.Content.(*xschema.Scalar); ok {
			col := m.scalarColumn(sc, prefix, t.Name, nullable, nullFrac)
			col.XMLPath = extend(prefix, t.Name)
			return []*Column{col}, nil
		}
		return m.columns(t.Content, extend(prefix, t.Name), nullable, nullFrac)
	case *xschema.Wildcard:
		tag := &Column{
			Name:         joinName(prefix, "tilde"),
			Type:         CharCol,
			Size:         20,
			Nullable:     nullable,
			NullFraction: nullFrac,
			XMLPath:      extend(extend(prefix, "~"), "#tag"),
		}
		cols := []*Column{tag}
		if sc, ok := t.Content.(*xschema.Scalar); ok {
			col := m.scalarColumn(sc, prefix, "data", nullable, nullFrac)
			col.XMLPath = extend(extend(prefix, "~"), "#text")
			cols = append(cols, col)
			return cols, nil
		}
		inner, err := m.columns(t.Content, extend(prefix, "~"), nullable, nullFrac)
		if err != nil {
			return nil, err
		}
		return append(cols, inner...), nil
	case *xschema.Sequence:
		var out []*Column
		for _, it := range t.Items {
			cols, err := m.columns(it, prefix, nullable, nullFrac)
			if err != nil {
				return nil, err
			}
			out = append(out, cols...)
		}
		return out, nil
	case *xschema.Repeat:
		if t.Min == 0 && t.Max == 1 && !pschema.IsNamedExpr(t.Inner) {
			presence := t.AvgCount
			if presence <= 0 || presence > 1 {
				presence = 0.5
			}
			newNull := 1 - (1-nullFrac)*presence
			return m.columns(t.Inner, prefix, true, newNull)
		}
		return nil, nil // named expression: FK edge only
	case *xschema.Choice, *xschema.Ref:
		return nil, nil // named expression: FK edge only
	case *xschema.Empty:
		return nil, nil
	default:
		return nil, fmt.Errorf("cannot map %s to columns", t)
	}
}

// scalarColumn builds a column for a scalar value reached under prefix
// with the final component name (empty for bare scalar type bodies).
func (m *mapper) scalarColumn(sc *xschema.Scalar, prefix []string, name string, nullable bool, nullFrac float64) *Column {
	colName := joinName(prefix, name)
	if colName == "" {
		colName = "data"
	}
	col := &Column{
		Name:         colName,
		Nullable:     nullable,
		NullFraction: nullFrac,
		Distinct:     float64(sc.Distinct),
		Min:          sc.Min,
		Max:          sc.Max,
		Hist:         append([]float64(nil), sc.Hist...),
	}
	switch sc.Kind {
	case xschema.IntegerKind:
		col.Type = IntCol
		col.Size = 4
	default:
		if sc.Size > 0 {
			col.Type = CharCol
			col.Size = sc.Size
		} else {
			col.Type = VarCharCol
			col.Size = m.opts.DefaultStringSize
		}
	}
	return col
}

// extend returns prefix + component in fresh storage (so sibling walks
// never share backing arrays).
func extend(prefix []string, component string) []string {
	out := make([]string, 0, len(prefix)+1)
	out = append(out, prefix...)
	return append(out, component)
}

func joinName(prefix []string, name string) string {
	parts := make([]string, 0, len(prefix)+1)
	for _, p := range prefix {
		if p == "~" {
			p = "tilde"
		}
		parts = append(parts, p)
	}
	if name != "" {
		parts = append(parts, name)
	}
	return strings.Join(parts, "_")
}

// dedupe renames duplicate column names (a, a_2, a_3, ...), which can
// arise when unions with equally-named branches are flattened.
func dedupe(cols []*Column) []*Column {
	seen := make(map[string]int, len(cols))
	for _, c := range cols {
		seen[c.Name]++
		if n := seen[c.Name]; n > 1 {
			c.Name = fmt.Sprintf("%s_%d", c.Name, n)
		}
	}
	return cols
}

// sanitize converts a type name to a legal SQL identifier.
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "T"
	}
	return b.String()
}
