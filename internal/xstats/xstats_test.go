package xstats

import (
	"math/rand"
	"strings"
	"testing"

	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

const appendixSample = `
(["imdb"], STcnt(1));
(["imdb";"show"], STcnt(34798));
(["imdb";"show";"title"], STsize(50));
(["imdb";"show";"year"], STbase(1800,2100,300));
(["imdb";"show";"aka"], STcnt(13641));
(["imdb";"show";"aka"], STsize(40));
(["imdb";"show";"type"], STsize(8));
(["imdb";"show";"reviews"], STcnt(11250));
(["imdb";"show";"reviews";"TILDE"], STsize(800));
(["imdb";"show";"box_office"], STcnt(7000));
(["imdb";"show";"box_office"], STbase(10000,100000000,7000));
(["imdb";"show";"seasons"], STcnt(3500));
`

func TestParseAppendixNotation(t *testing.T) {
	set, err := Parse(appendixSample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := set.Count("imdb", "show"); got != 34798 {
		t.Fatalf("show count = %g", got)
	}
	aka := set.Lookup("imdb", "show", "aka")
	if aka == nil || aka.Count != 13641 || aka.Size != 40 {
		t.Fatalf("aka merged stat = %+v", aka)
	}
	bo := set.Lookup("imdb", "show", "box_office")
	if bo.Min != 10000 || bo.Max != 100000000 || bo.Distinct != 7000 {
		t.Fatalf("box_office base = %+v", bo)
	}
	year := set.Lookup("imdb", "show", "year")
	if year.Min != 1800 || year.Max != 2100 || year.Distinct != 300 {
		t.Fatalf("year base = %+v", year)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"no entries here",
		`(["a"], STcnt(x));`,
		`(["a"], STbase(1,2));`,
		`(["a"], STweird(1));`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	set := MustParse(appendixSample)
	printed := set.String()
	set2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if got := set2.Count("imdb", "show"); got != 34798 {
		t.Fatalf("count lost in round trip: %g", got)
	}
	if got := set2.Lookup("imdb", "show", "year"); got.Max != 2100 {
		t.Fatalf("base lost in round trip: %+v", got)
	}
}

func TestScaleCounts(t *testing.T) {
	set := MustParse(appendixSample)
	set.ScaleCounts(10, "imdb", "show", "reviews")
	if got := set.Count("imdb", "show", "reviews"); got != 112500 {
		t.Fatalf("scaled reviews = %g", got)
	}
	if got := set.Count("imdb", "show"); got != 34798 {
		t.Fatalf("sibling count changed: %g", got)
	}
}

func TestCloneIndependent(t *testing.T) {
	set := MustParse(appendixSample)
	cp := set.Clone()
	cp.SetCount(1, "imdb", "show")
	if set.Count("imdb", "show") != 34798 {
		t.Fatal("Clone shares stats")
	}
}

func TestCollectFromDocument(t *testing.T) {
	doc, err := xmltree.ParseString(`<imdb>
	  <show type="Movie"><title>A</title><year>1993</year><aka>x</aka><aka>y</aka></show>
	  <show type="Movie"><title>B</title><year>1995</year><aka>z</aka></show>
	</imdb>`)
	if err != nil {
		t.Fatal(err)
	}
	set := Collect(doc)
	if got := set.Count("imdb", "show"); got != 2 {
		t.Fatalf("show count = %g", got)
	}
	if got := set.Count("imdb", "show", "aka"); got != 3 {
		t.Fatalf("aka count = %g", got)
	}
	year := set.Lookup("imdb", "show", "year")
	if year.Min != 1993 || year.Max != 1995 || year.Distinct != 2 {
		t.Fatalf("year stats = %+v", year)
	}
	typ := set.Lookup("imdb", "show", "type")
	if typ == nil || typ.Count != 2 || typ.Distinct != 1 {
		t.Fatalf("attr stats = %+v", typ)
	}
	title := set.Lookup("imdb", "show", "title")
	if title.Size != 1 {
		t.Fatalf("title avg size = %d", title.Size)
	}
}

const showSchema = `
type Show = show [ @type[ String ],
    title[ String ],
    year[ Integer ],
    Aka{1,10},
    Review*,
    ( Movie | TV ) ]
type Aka = aka[ String ]
type Review = review[ ~[ String ] ]
type Movie = box_office[ Integer ], video_sales[ Integer ]
type TV = seasons[ Integer ], description[ String ]
`

func TestAnnotateSchema(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	set := MustParse(`
(["show"], STcnt(1000));
(["show";"type"], STsize(8));
(["show";"title"], STsize(50));
(["show";"year"], STbase(1800,2100,300));
(["show";"aka"], STcnt(4000));
(["show";"aka"], STsize(40));
(["show";"review"], STcnt(10000));
(["show";"review";"TILDE"], STsize(800));
(["show";"box_office"], STcnt(700));
(["show";"seasons"], STcnt(300));
`)
	if err := Annotate(s, set); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	show := s.Types["Show"].(*xschema.Element)
	seq := show.Content.(*xschema.Sequence)
	title := seq.Items[1].(*xschema.Element).Content.(*xschema.Scalar)
	if title.Size != 50 {
		t.Fatalf("title size = %d", title.Size)
	}
	year := seq.Items[2].(*xschema.Element).Content.(*xschema.Scalar)
	if year.Min != 1800 || year.Max != 2100 || year.Distinct != 300 {
		t.Fatalf("year = %+v", year)
	}
	akaRep := seq.Items[3].(*xschema.Repeat)
	if akaRep.AvgCount != 4 {
		t.Fatalf("aka avg = %g", akaRep.AvgCount)
	}
	reviewRep := seq.Items[4].(*xschema.Repeat)
	if reviewRep.AvgCount != 10 {
		t.Fatalf("review avg = %g", reviewRep.AvgCount)
	}
	choice := seq.Items[5].(*xschema.Choice)
	if len(choice.Fractions) != 2 || choice.Fractions[0] != 0.7 || choice.Fractions[1] != 0.3 {
		t.Fatalf("fractions = %v", choice.Fractions)
	}
	// Scalar inside the wildcard gets the TILDE-path size.
	review := s.Types["Review"].(*xschema.Element)
	wc := review.Content.(*xschema.Wildcard)
	if sc := wc.Content.(*xschema.Scalar); sc.Size != 800 {
		t.Fatalf("wildcard content size = %d", sc.Size)
	}
}

func TestAnnotateWildcardAggregation(t *testing.T) {
	// No TILDE entry: the annotator aggregates concrete children counts.
	s := xschema.MustParseSchema(`type Review = review[ Tilde{0,*} ]
type Tilde = ~[ String ]`)
	set := NewSet()
	set.SetCount(100, "review")
	set.SetCount(300, "review", "nyt")
	set.SetCount(500, "review", "suntimes")
	if err := Annotate(s, set); err != nil {
		t.Fatal(err)
	}
	review := s.Types["Review"].(*xschema.Element)
	rep := review.Content.(*xschema.Repeat)
	if rep.AvgCount != 8 { // (300+500)/100
		t.Fatalf("aggregated wildcard avg = %g", rep.AvgCount)
	}
}

func TestCollectThenAnnotateFromGeneratedData(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	g := xschema.NewGenerator(s, rand.New(rand.NewSource(42)))
	var docs []*xmltree.Node
	for i := 0; i < 50; i++ {
		d, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	set := Collect(docs...)
	if set.Count("show") != 50 {
		t.Fatalf("collected %g shows", set.Count("show"))
	}
	if err := Annotate(s, set); err != nil {
		t.Fatal(err)
	}
	show := s.Types["Show"].(*xschema.Element)
	seq := show.Content.(*xschema.Sequence)
	akaRep := seq.Items[3].(*xschema.Repeat)
	if akaRep.AvgCount < 1 || akaRep.AvgCount > 10 {
		t.Fatalf("aka avg out of schema bounds: %g", akaRep.AvgCount)
	}
	choice := seq.Items[5].(*xschema.Choice)
	if len(choice.Fractions) == 2 {
		sum := choice.Fractions[0] + choice.Fractions[1]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("fractions do not sum to 1: %v", choice.Fractions)
		}
	}
}

func TestAnnotateRecursiveSchemaTerminates(t *testing.T) {
	s := xschema.MustParseSchema(`type Any = ~[ (Any | String)* ]`)
	set := NewSet()
	set.SetCount(10, Tilde)
	if err := Annotate(s, set); err != nil {
		t.Fatal(err)
	}
}

func TestStatStringFormat(t *testing.T) {
	set := NewSet()
	set.SetCount(5, "a", "b")
	set.SetSize(40, "a", "b")
	out := set.String()
	if !strings.Contains(out, "STcnt(5)") || !strings.Contains(out, "STsize(40)") {
		t.Fatalf("format = %q", out)
	}
}
