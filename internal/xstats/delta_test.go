package xstats_test

import (
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/transform"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// TestAnnotateDeltaMatchesFullWalk drives AnnotateDelta along greedy-like
// transformation trajectories and checks the hard invariant: a schema
// re-annotated incrementally must be indistinguishable — per-type digest
// for per-type digest — from the same schema annotated by a full walk.
func TestAnnotateDeltaMatchesFullWalk(t *testing.T) {
	stats := imdb.Stats()
	for _, start := range []struct {
		name string
		make func(*xschema.Schema) (*xschema.Schema, error)
	}{
		{"outlined", pschema.InitialOutlined},
		{"inlined", pschema.AllInlined},
	} {
		annotated := imdb.Schema()
		if err := xstats.Annotate(annotated, stats); err != nil {
			t.Fatal(err)
		}
		base, err := start.make(annotated)
		if err != nil {
			t.Fatalf("%s: %v", start.name, err)
		}
		memo, err := xstats.AnnotateMemo(base, stats)
		if err != nil {
			t.Fatalf("%s: %v", start.name, err)
		}
		tropts := transform.Options{Kinds: transform.AllKinds}
		for iter := 0; iter < 4; iter++ {
			cands := transform.Candidates(base, tropts)
			if len(cands) == 0 {
				break
			}
			if len(cands) > 40 {
				cands = cands[:40]
			}
			for _, tr := range cands {
				viaDelta, err := transform.Apply(base, tr)
				if err != nil {
					continue
				}
				viaFull, err := transform.Apply(base, tr)
				if err != nil {
					t.Fatalf("%s: apply not deterministic for %s", start.name, tr)
				}
				if _, err := xstats.AnnotateDelta(viaDelta, stats, memo); err != nil {
					t.Fatalf("%s/%s: delta: %v", start.name, tr, err)
				}
				if err := xstats.Annotate(viaFull, stats); err != nil {
					t.Fatalf("%s/%s: full: %v", start.name, tr, err)
				}
				if !digestsEqual(viaDelta.TypeDigests(), viaFull.TypeDigests()) {
					t.Fatalf("%s iter %d: delta annotation diverged from full walk after %s\ndelta:\n%s\nfull:\n%s",
						start.name, iter, tr, viaDelta.String(), viaFull.String())
				}
			}
			// Walk one step: commit the first applicable candidate and
			// rebuild the memo, as the greedy loop does per iteration.
			next, err := transform.Apply(base, cands[0])
			if err != nil {
				break
			}
			if _, err := xstats.AnnotateDelta(next, stats, memo); err != nil {
				t.Fatal(err)
			}
			base = next
			if memo, err = xstats.AnnotateMemo(base, stats); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestAnnotateDeltaIdempotent: re-annotating an unchanged schema through
// the delta path must leave every digest alone (everything skippable).
func TestAnnotateDeltaIdempotent(t *testing.T) {
	stats := imdb.Stats()
	annotated := imdb.Schema()
	if err := xstats.Annotate(annotated, stats); err != nil {
		t.Fatal(err)
	}
	base, err := pschema.InitialOutlined(annotated)
	if err != nil {
		t.Fatal(err)
	}
	memo, err := xstats.AnnotateMemo(base, stats)
	if err != nil {
		t.Fatal(err)
	}
	before := base.TypeDigests()
	if _, err := xstats.AnnotateDelta(base, stats, memo); err != nil {
		t.Fatal(err)
	}
	if !digestsEqual(before, base.TypeDigests()) {
		t.Fatal("delta re-annotation of an unchanged schema moved a digest")
	}
}

// TestAnnotateDeltaNilMemoFallsBack: a nil memo must behave exactly like
// a full annotation.
func TestAnnotateDeltaNilMemoFallsBack(t *testing.T) {
	stats := imdb.Stats()
	a, b := imdb.Schema(), imdb.Schema()
	if _, err := xstats.AnnotateDelta(a, stats, nil); err != nil {
		t.Fatal(err)
	}
	if err := xstats.Annotate(b, stats); err != nil {
		t.Fatal(err)
	}
	if !digestsEqual(a.TypeDigests(), b.TypeDigests()) {
		t.Fatal("nil-memo delta diverged from full annotation")
	}
}

func digestsEqual(a, b map[string]xschema.Fingerprint) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
