package xstats

import (
	"testing"

	"legodb/internal/xschema"
)

// TestDeltaActuallySkips is a white-box check that AnnotateDelta's skip
// machinery engages: on an unchanged schema with independent subtrees,
// the delta walk must skip (not silently fall back to re-walking
// everything).
func TestDeltaActuallySkips(t *testing.T) {
	s := xschema.MustParseSchema(`
type Root = r [ A, B ]
type A = a [ x[ Integer ] ]
type B = b [ y[ Integer ] ]
`)
	set := &Set{}
	memo, err := AnnotateMemo(s, set)
	if err != nil {
		t.Fatal(err)
	}
	a := &annotator{schema: s, set: set, onStack: map[string]int{},
		memo:    &Memo{setSig: memo.setSig, visits: map[string][]visitCtx{}},
		prev:    memo,
		taint:   map[string]bool{},
		skipped: map[string]bool{},
		live:    map[string]bool{}}
	root, _ := s.Lookup(s.Root)
	a.walk(root, nil, 1)
	if !a.skipped["A"] || !a.skipped["B"] {
		t.Fatalf("clean subtrees not skipped: skipped=%v visits=%v", a.skipped, memo.visits)
	}
	// Dirtying B must keep A skippable while B is re-walked.
	a2 := &annotator{schema: s, set: set, onStack: map[string]int{},
		memo:    &Memo{setSig: memo.setSig, visits: map[string][]visitCtx{}},
		prev:    memo,
		taint:   map[string]bool{"B": true},
		skipped: map[string]bool{},
		live:    map[string]bool{}}
	a2.walk(root, nil, 1)
	if !a2.skipped["A"] {
		t.Fatalf("untainted subtree A not skipped: skipped=%v", a2.skipped)
	}
	if a2.skipped["B"] || !a2.live["B"] {
		t.Fatalf("tainted subtree B not re-walked: skipped=%v live=%v", a2.skipped, a2.live)
	}
}
