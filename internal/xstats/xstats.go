// Package xstats implements LegoDB's XML data statistics: counts, sizes
// and value distributions attached to element paths, exactly as in the
// paper's Appendix A notation:
//
//	(["imdb";"show"], STcnt(34798));
//	(["imdb";"show";"title"], STsize(50));
//	(["imdb";"show";"year"], STbase(1800,2100,300));
//
// Statistics are either parsed from that notation, or collected from an
// example document. Annotate pushes them onto a schema's type tree, which
// turns a plain schema into the statistics-carrying physical schema the
// rest of the system consumes.
package xstats

import (
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"legodb/internal/faults"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// Tilde is the path component used for wildcard elements, following the
// paper's Appendix A ("TILDE").
const Tilde = "TILDE"

// Stat aggregates all statistics known for one element path.
type Stat struct {
	Path  []string
	Count float64 // STcnt: number of instances in the whole dataset
	Size  int     // STsize: average value width in bytes
	// STbase(min, max, distinct) for integer-valued content.
	Min, Max, Distinct int64
	// Hist is an equi-width histogram over [Min, Max]: per-bucket value
	// counts (SThist; an extension beyond the paper's Appendix A).
	Hist []int64
}

func (st *Stat) String() string {
	var parts []string
	if st.Count > 0 {
		parts = append(parts, fmt.Sprintf("STcnt(%g)", st.Count))
	}
	if st.Size > 0 {
		parts = append(parts, fmt.Sprintf("STsize(%d)", st.Size))
	}
	if st.Distinct > 0 || st.Min != 0 || st.Max != 0 {
		parts = append(parts, fmt.Sprintf("STbase(%d,%d,%d)", st.Min, st.Max, st.Distinct))
	}
	if len(st.Hist) > 0 {
		cells := make([]string, len(st.Hist))
		for i, b := range st.Hist {
			cells[i] = fmt.Sprintf("%d", b)
		}
		parts = append(parts, fmt.Sprintf("SThist(%s)", strings.Join(cells, ",")))
	}
	return fmt.Sprintf("([%q], %s)", strings.Join(st.Path, ";"), strings.Join(parts, " "))
}

// Set is a collection of path statistics with O(1) lookup by path.
type Set struct {
	byPath map[string]*Stat
	order  []string
}

// NewSet returns an empty statistics set.
func NewSet() *Set { return &Set{byPath: make(map[string]*Stat)} }

func key(path []string) string { return strings.Join(path, "/") }

// get returns (creating if needed) the Stat for a path.
func (s *Set) get(path []string) *Stat {
	k := key(path)
	if st, ok := s.byPath[k]; ok {
		return st
	}
	st := &Stat{Path: append([]string(nil), path...)}
	s.byPath[k] = st
	s.order = append(s.order, k)
	return st
}

// Lookup returns the Stat for a path, or nil.
func (s *Set) Lookup(path ...string) *Stat {
	return s.byPath[key(path)]
}

// Count returns the instance count for a path (0 if unknown).
func (s *Set) Count(path ...string) float64 {
	if st := s.byPath[key(path)]; st != nil {
		return st.Count
	}
	return 0
}

// SetCount records an instance count for a path.
func (s *Set) SetCount(count float64, path ...string) { s.get(path).Count = count }

// SetSize records an average value size for a path.
func (s *Set) SetSize(size int, path ...string) { s.get(path).Size = size }

// SetBase records an integer value distribution for a path.
func (s *Set) SetBase(min, max, distinct int64, path ...string) {
	st := s.get(path)
	st.Min, st.Max, st.Distinct = min, max, distinct
}

// Paths returns all recorded paths in insertion order.
func (s *Set) Paths() [][]string {
	out := make([][]string, len(s.order))
	for i, k := range s.order {
		out[i] = s.byPath[k].Path
	}
	return out
}

// Clone returns a deep copy, so experiments can scale statistics without
// mutating the original.
func (s *Set) Clone() *Set {
	cp := NewSet()
	for _, k := range s.order {
		st := *s.byPath[k]
		st.Path = append([]string(nil), st.Path...)
		st.Hist = append([]int64(nil), st.Hist...)
		cp.byPath[k] = &st
		cp.order = append(cp.order, k)
	}
	return cp
}

// ScaleCounts multiplies every instance count under (and including) the
// given path prefix by factor. Used by the parameter sweeps (e.g. "total
// reviews = 10,000 vs 100,000").
func (s *Set) ScaleCounts(factor float64, prefix ...string) {
	pk := key(prefix)
	for _, k := range s.order {
		if k == pk || strings.HasPrefix(k, pk+"/") {
			s.byPath[k].Count *= factor
		}
	}
}

// String renders the set in the Appendix A notation, one entry per line.
func (s *Set) String() string {
	var b strings.Builder
	for _, k := range s.order {
		fmt.Fprintf(&b, "%s;\n", s.byPath[k])
	}
	return b.String()
}

// Parse reads statistics in the paper's Appendix A notation. Multiple
// entries for the same path merge into one Stat. Whitespace and trailing
// punctuation are forgiving; lines starting with // are comments.
func Parse(src string) (*Set, error) {
	set := NewSet()
	rest := src
	for {
		start := strings.IndexByte(rest, '(')
		if start < 0 {
			break
		}
		rest = rest[start:]
		entry, remainder, err := parseEntry(rest)
		if err != nil {
			return nil, err
		}
		merge(set.get(entry.Path), entry)
		rest = remainder
	}
	if len(set.order) == 0 {
		return nil, fmt.Errorf("xstats: no statistics entries found")
	}
	return set, nil
}

// MustParse is Parse that panics on error; for embedded statistic tables.
func MustParse(src string) *Set {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func merge(dst, src *Stat) {
	if src.Count > 0 {
		dst.Count = src.Count
	}
	if src.Size > 0 {
		dst.Size = src.Size
	}
	if src.Distinct > 0 || src.Min != 0 || src.Max != 0 {
		dst.Min, dst.Max, dst.Distinct = src.Min, src.Max, src.Distinct
	}
	if len(src.Hist) > 0 {
		dst.Hist = append([]int64(nil), src.Hist...)
	}
}

// parseEntry parses one `(["a";"b"], STcnt(1))` entry and returns the
// remaining input.
func parseEntry(src string) (*Stat, string, error) {
	orig := src
	src = strings.TrimPrefix(src, "(")
	src = skipSpace(src)
	if !strings.HasPrefix(src, "[") {
		return nil, "", fmt.Errorf("xstats: expected path list in %.40q", orig)
	}
	end := strings.IndexByte(src, ']')
	if end < 0 {
		return nil, "", fmt.Errorf("xstats: unterminated path list in %.40q", orig)
	}
	var path []string
	for _, part := range strings.Split(src[1:end], ";") {
		part = strings.TrimSpace(part)
		part = strings.Trim(part, `"`)
		if part != "" {
			path = append(path, part)
		}
	}
	src = skipSpace(src[end+1:])
	src = strings.TrimPrefix(src, ",")
	src = skipSpace(src)
	st := &Stat{Path: path}
	for strings.HasPrefix(src, "ST") {
		name := src[:strings.IndexByte(src, '(')]
		open := strings.IndexByte(src, '(')
		closing := strings.IndexByte(src, ')')
		if open < 0 || closing < open {
			return nil, "", fmt.Errorf("xstats: malformed %s in %.40q", name, orig)
		}
		args := strings.Split(src[open+1:closing], ",")
		nums := make([]int64, 0, len(args))
		for _, a := range args {
			n, err := strconv.ParseInt(strings.TrimSpace(a), 10, 64)
			if err != nil {
				return nil, "", fmt.Errorf("xstats: bad number %q in %s", a, name)
			}
			nums = append(nums, n)
		}
		switch name {
		case "STcnt":
			if len(nums) != 1 {
				return nil, "", fmt.Errorf("xstats: STcnt wants 1 arg, got %d", len(nums))
			}
			st.Count = float64(nums[0])
		case "STsize":
			if len(nums) != 1 {
				return nil, "", fmt.Errorf("xstats: STsize wants 1 arg, got %d", len(nums))
			}
			st.Size = int(nums[0])
		case "STbase":
			if len(nums) != 3 {
				return nil, "", fmt.Errorf("xstats: STbase wants 3 args, got %d", len(nums))
			}
			st.Min, st.Max, st.Distinct = nums[0], nums[1], nums[2]
		case "SThist":
			if len(nums) == 0 {
				return nil, "", fmt.Errorf("xstats: SThist wants at least 1 bucket")
			}
			st.Hist = append([]int64(nil), nums...)
		default:
			return nil, "", fmt.Errorf("xstats: unknown statistic %q", name)
		}
		src = skipSpace(src[closing+1:])
	}
	src = strings.TrimPrefix(src, ")")
	src = strings.TrimPrefix(skipSpace(src), ";")
	return st, src, nil
}

func skipSpace(s string) string { return strings.TrimLeft(s, " \t\r\n") }

// Collect derives path statistics from one or more example documents:
// instance counts, average text sizes, and integer min/max/distinct.
// Wildcard positions are not known without a schema, so paths use the
// concrete tag names; Annotate aggregates them under wildcards as needed.
func Collect(docs ...*xmltree.Node) *Set {
	set := NewSet()
	sizes := make(map[string][2]int) // total bytes, samples
	ints := make(map[string]*intAgg)
	distinct := make(map[string]map[string]bool)
	for _, doc := range docs {
		doc.Walk(func(path []string, n *xmltree.Node) {
			k := key(path)
			set.get(path).Count++
			if n.Text != "" {
				acc := sizes[k]
				acc[0] += len(n.Text)
				acc[1]++
				sizes[k] = acc
				if distinct[k] == nil {
					distinct[k] = make(map[string]bool)
				}
				distinct[k][n.Text] = true
				if v, err := strconv.ParseInt(strings.TrimSpace(n.Text), 10, 64); err == nil {
					agg := ints[k]
					if agg == nil {
						agg = &intAgg{min: v, max: v}
						ints[k] = agg
					}
					agg.add(v)
				}
			}
			for _, a := range n.Attrs {
				ap := append(append([]string(nil), path...), a.Name)
				ak := key(ap)
				set.get(ap).Count++
				acc := sizes[ak]
				acc[0] += len(a.Value)
				acc[1]++
				sizes[ak] = acc
				if distinct[ak] == nil {
					distinct[ak] = make(map[string]bool)
				}
				distinct[ak][a.Value] = true
			}
		})
	}
	for k, acc := range sizes {
		if acc[1] > 0 {
			set.byPath[k].Size = (acc[0] + acc[1] - 1) / acc[1]
		}
	}
	for k, agg := range ints {
		st := set.byPath[k]
		// Only treat as integer-valued if every sample parsed.
		if float64(agg.n) == st.Count {
			st.Min, st.Max = agg.min, agg.max
			st.Distinct = int64(len(distinct[k]))
			st.Hist = bucketize(agg.samples, agg.min, agg.max, HistogramBuckets)
		}
	}
	for k, vals := range distinct {
		st := set.byPath[k]
		if st.Distinct == 0 {
			st.Distinct = int64(len(vals))
		}
	}
	sort.Strings(set.order)
	return set
}

// HistogramBuckets is the number of equi-width buckets Collect builds
// for integer-valued paths.
const HistogramBuckets = 20

// maxHistogramSamples caps the values retained per path for histogram
// construction.
const maxHistogramSamples = 100000

type intAgg struct {
	min, max int64
	n        int
	samples  []int64
}

func (a *intAgg) add(v int64) {
	if v < a.min {
		a.min = v
	}
	if v > a.max {
		a.max = v
	}
	a.n++
	if len(a.samples) < maxHistogramSamples {
		a.samples = append(a.samples, v)
	}
}

// bucketize builds an equi-width histogram of the samples over
// [min, max].
func bucketize(samples []int64, min, max int64, buckets int) []int64 {
	if len(samples) == 0 || max <= min || buckets <= 0 {
		return nil
	}
	hist := make([]int64, buckets)
	span := float64(max-min) + 1
	for _, v := range samples {
		b := int(float64(v-min) / span * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		hist[b]++
	}
	return hist
}

// Annotate pushes the path statistics onto the schema's type tree:
// scalar sizes and distributions, repetition average counts, and choice
// branch fractions. The schema is modified in place; it becomes the
// "p-schema with statistics" of Section 3.1.
//
// The walk follows element names from the schema root; wildcards look up
// the TILDE component first and otherwise aggregate the collected
// children at that position.
func Annotate(s *xschema.Schema, set *Set) error {
	root, ok := s.Lookup(s.Root)
	if !ok {
		return fmt.Errorf("xstats: schema root %q undefined", s.Root)
	}
	a := &annotator{schema: s, set: set, onStack: make(map[string]int)}
	a.walk(root, nil, 1)
	return nil
}

// Memo records one annotation run over a schema: the shallow per-type
// digests of the annotated result (xschema.TypeDigests) and the walk
// context — element path and enclosing instance count — every named
// type was expanded under. AnnotateDelta diffs a derived schema against
// it to re-annotate only what a transformation could have changed.
type Memo struct {
	setSig  uint64
	digests map[string]xschema.Fingerprint
	visits  map[string][]visitCtx
}

// visitCtx is one Ref-expansion context of the annotation walk: the
// element path, the enclosing instance count, and a signature of the
// recursion stack (which governs how recursive re-expansions inside the
// subtree are truncated).
type visitCtx struct {
	path  string
	count float64
	stack uint64
}

// setSignature digests a statistics set (delta annotation requires the
// same set the memo was built with).
func setSignature(set *Set) uint64 {
	h := fnv.New64a()
	io.WriteString(h, set.String())
	return h.Sum64()
}

// AnnotateMemo is Annotate, additionally returning a Memo for later
// incremental re-annotation of schemas derived from this one.
func AnnotateMemo(s *xschema.Schema, set *Set) (*Memo, error) {
	root, ok := s.Lookup(s.Root)
	if !ok {
		return nil, fmt.Errorf("xstats: schema root %q undefined", s.Root)
	}
	memo := &Memo{setSig: setSignature(set), visits: make(map[string][]visitCtx)}
	a := &annotator{schema: s, set: set, onStack: make(map[string]int), memo: memo}
	a.walk(root, nil, 1)
	memo.digests = s.TypeDigests()
	return memo, nil
}

// AnnotateDelta re-annotates a schema derived from the one prev was
// built on (e.g. by transform.Apply), descending only where needed:
// when the walk reaches a named type whose reachable definitions are
// all unchanged since prev and whose visit context matches the memoized
// one, the entire subtree walk is skipped — its annotations are already
// what a full walk would write. Types that can reach a changed
// ("dirty") definition, or whose visit contexts changed, are re-walked
// normally. The result is exactly Annotate(s, set): schemas annotated
// by AnnotateDelta and by a fresh full walk are byte-identical. Falls
// back to a full walk when the statistics set differs from the memo's
// or when skip-safety cannot be proven (types visited under multiple
// contexts, overlaps between skipped and re-walked regions).
func AnnotateDelta(s *xschema.Schema, set *Set, prev *Memo) (*Memo, error) {
	if err := faults.Inject(faults.SiteAnnotate); err != nil {
		return nil, err
	}
	if prev == nil || prev.setSig != setSignature(set) {
		return AnnotateMemo(s, set)
	}
	root, ok := s.Lookup(s.Root)
	if !ok {
		return nil, fmt.Errorf("xstats: schema root %q undefined", s.Root)
	}
	cur := s.TypeDigests()
	dirty := make(map[string]bool)
	for name, d := range cur {
		if pd, ok := prev.digests[name]; !ok || pd != d {
			dirty[name] = true
		}
	}
	memo := &Memo{setSig: prev.setSig, visits: make(map[string][]visitCtx)}
	a := &annotator{
		schema:  s,
		set:     set,
		onStack: make(map[string]int),
		memo:    memo,
		prev:    prev,
		taint:   dirtyReach(s, dirty),
		skipped: make(map[string]bool),
		live:    make(map[string]bool),
	}
	a.walk(root, nil, 1)
	// Skip-safety post-check: a type inside a skipped subtree must not
	// also have been re-annotated live (a full walk could interleave the
	// writes in a different order) and must not be tainted. Violations
	// are rare; fall back to the full walk.
	reach := skippedReach(s, a.skipped)
	for name := range reach {
		if a.live[name] || a.taint[name] {
			return AnnotateMemo(s, set)
		}
	}
	// Types seen only inside skipped subtrees keep their memoized visit
	// records: the skipped walk would have reproduced them exactly.
	for name := range reach {
		if _, seen := memo.visits[name]; !seen {
			if vs, ok := prev.visits[name]; ok {
				memo.visits[name] = vs
			}
		}
	}
	// Digests of the annotated result (re-annotated types changed).
	memo.digests = s.TypeDigests()
	return memo, nil
}

// dirtyReach returns every name that can reach a dirty definition
// through type references (including the dirty names themselves):
// reverse reachability over the reference graph.
func dirtyReach(s *xschema.Schema, dirty map[string]bool) map[string]bool {
	rev := make(map[string][]string)
	for name, def := range s.Types {
		xschema.Visit(def, func(t xschema.Type) {
			if r, ok := t.(*xschema.Ref); ok {
				rev[r.Name] = append(rev[r.Name], name)
			}
		})
	}
	taint := make(map[string]bool, len(dirty))
	queue := make([]string, 0, len(dirty))
	for d := range dirty {
		taint[d] = true
		queue = append(queue, d)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, p := range rev[n] {
			if !taint[p] {
				taint[p] = true
				queue = append(queue, p)
			}
		}
	}
	return taint
}

// skippedReach returns every name reachable from a skipped type
// (including the skipped names themselves).
func skippedReach(s *xschema.Schema, skipped map[string]bool) map[string]bool {
	reach := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if reach[name] {
			return
		}
		reach[name] = true
		if def, ok := s.Types[name]; ok {
			xschema.Visit(def, func(t xschema.Type) {
				if r, ok := t.(*xschema.Ref); ok {
					visit(r.Name)
				}
			})
		}
	}
	for name := range skipped {
		visit(name)
	}
	return reach
}

type annotator struct {
	schema *xschema.Schema
	set    *Set
	// onStack counts how often each named type occurs on the current walk
	// branch; recursive types are expanded at most twice so that
	// annotation terminates on schemas like AnyElement.
	onStack map[string]int
	// memo, when non-nil, records Ref-expansion contexts; prev enables
	// delta mode (skip clean subtrees), with taint/skipped/live backing
	// the skip decision and its safety post-check.
	memo    *Memo
	prev    *Memo
	taint   map[string]bool
	skipped map[string]bool
	live    map[string]bool
}

// record notes one Ref-expansion context in the memo.
func (a *annotator) record(name string, path []string, count float64) {
	if a.memo == nil {
		return
	}
	a.memo.visits[name] = append(a.memo.visits[name],
		visitCtx{path: key(path), count: count, stack: a.stackSig()})
}

// stackSig digests the current recursion-stack state (named types with
// live expansions on this walk branch).
func (a *annotator) stackSig() uint64 {
	var names []string
	for n, c := range a.onStack {
		if c > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, n := range names {
		io.WriteString(h, n)
		h.Write([]byte{0, byte(a.onStack[n])})
	}
	return h.Sum64()
}

// skippable reports whether the walk may skip descending into the named
// type: nothing it can reach changed since the memo was built, the memo
// saw it expanded exactly once, this run has not expanded it yet, and
// the context (path and instance count) is bit-identical to the
// memoized one — so the subtree's annotations are already exactly what
// this walk would write.
func (a *annotator) skippable(name string, path []string, count float64) bool {
	if a.taint[name] {
		return false
	}
	if len(a.memo.visits[name]) != 0 {
		return false
	}
	pv := a.prev.visits[name]
	if len(pv) != 1 {
		return false
	}
	return pv[0].path == key(path) &&
		math.Float64bits(pv[0].count) == math.Float64bits(count) &&
		pv[0].stack == a.stackSig()
}

// walk annotates t in the context of the given element path; parentCount
// is the instance count of the enclosing element.
func (a *annotator) walk(t xschema.Type, path []string, parentCount float64) {
	switch t := t.(type) {
	case *xschema.Element:
		childPath := append(append([]string(nil), path...), t.Name)
		count := a.set.Count(childPath...)
		if count == 0 {
			count = parentCount
		}
		a.annotateScalar(t.Content, childPath)
		a.walk(t.Content, childPath, count)
	case *xschema.Attribute:
		attrPath := append(append([]string(nil), path...), t.Name)
		a.annotateScalar(t.Content, attrPath)
	case *xschema.Wildcard:
		childPath := append(append([]string(nil), path...), Tilde)
		count := a.set.Count(childPath...)
		if count == 0 {
			count = a.aggregateWildcard(path, t)
		}
		if count == 0 {
			count = parentCount
		}
		a.annotateScalar(t.Content, childPath)
		a.walk(t.Content, childPath, count)
	case *xschema.Sequence:
		for _, it := range t.Items {
			a.walk(it, path, parentCount)
		}
	case *xschema.Choice:
		total := 0.0
		fracs := make([]float64, len(t.Alts))
		for i, alt := range t.Alts {
			if name, ok := representative(a.schema, alt); ok {
				fracs[i] = a.set.Count(append(append([]string(nil), path...), name)...)
				total += fracs[i]
			}
		}
		if total > 0 {
			for i := range fracs {
				fracs[i] /= total
			}
			t.Fractions = fracs
		}
		for i, alt := range t.Alts {
			branchCount := parentCount
			if total > 0 {
				branchCount = parentCount * fracs[i]
			}
			a.walk(alt, path, branchCount)
		}
	case *xschema.Repeat:
		cnt := 0.0
		for _, name := range representatives(a.schema, t.Inner, nil) {
			childPath := append(append([]string(nil), path...), name)
			c := a.set.Count(childPath...)
			if c == 0 && name == Tilde {
				if w := a.wildcardOf(t.Inner); w != nil {
					c = a.aggregateWildcard(path, w)
				}
			}
			cnt += c
		}
		if cnt > 0 && parentCount > 0 {
			t.AvgCount = cnt / parentCount
		}
		a.walk(t.Inner, path, parentCount)
	case *xschema.Ref:
		// Guard against revisiting recursive types; each named type is
		// expanded at most twice along one walk branch.
		if a.onStack[t.Name] >= 2 {
			return
		}
		if a.prev != nil && a.skippable(t.Name, path, parentCount) {
			// Delta mode: the whole subtree walk would rewrite exactly the
			// annotations it already carries — record the visit and skip.
			a.skipped[t.Name] = true
			a.record(t.Name, path, parentCount)
			return
		}
		a.record(t.Name, path, parentCount)
		if a.live != nil {
			a.live[t.Name] = true
		}
		a.onStack[t.Name]++
		if def, ok := a.schema.Lookup(t.Name); ok {
			a.walk(def, path, parentCount)
		}
		a.onStack[t.Name]--
	}
}

// annotateScalar applies size/base statistics when the content of an
// element or attribute at the given path is a scalar.
func (a *annotator) annotateScalar(content xschema.Type, path []string) {
	sc, ok := content.(*xschema.Scalar)
	if !ok {
		return
	}
	st := a.set.Lookup(path...)
	if st == nil {
		return
	}
	if st.Size > 0 {
		sc.Size = st.Size
	}
	if st.Distinct > 0 {
		sc.Distinct = st.Distinct
	}
	if sc.Kind == xschema.IntegerKind {
		sc.Min, sc.Max = st.Min, st.Max
		if sc.Size == 0 {
			sc.Size = 4
		}
		if len(st.Hist) > 0 {
			total := int64(0)
			for _, b := range st.Hist {
				total += b
			}
			if total > 0 {
				sc.Hist = make([]float64, len(st.Hist))
				for i, b := range st.Hist {
					sc.Hist[i] = float64(b) / float64(total)
				}
			}
		}
	}
}

// wildcardOf resolves a type to the wildcard node it denotes, following
// references; nil if the type is not a (reference to a) wildcard.
func (a *annotator) wildcardOf(t xschema.Type) *xschema.Wildcard {
	for i := 0; i < 100; i++ {
		switch n := t.(type) {
		case *xschema.Wildcard:
			return n
		case *xschema.Ref:
			def, ok := a.schema.Lookup(n.Name)
			if !ok {
				return nil
			}
			t = def
		default:
			return nil
		}
	}
	return nil
}

// aggregateWildcard sums collected counts of concrete children at the
// wildcard's position (excluding names the wildcard itself excludes).
func (a *annotator) aggregateWildcard(path []string, w *xschema.Wildcard) float64 {
	prefix := key(path)
	excluded := make(map[string]bool, len(w.Exclude))
	for _, e := range w.Exclude {
		excluded[e] = true
	}
	total := 0.0
	for _, k := range a.set.order {
		if !strings.HasPrefix(k, prefix+"/") {
			continue
		}
		rest := k[len(prefix)+1:]
		if strings.Contains(rest, "/") || excluded[rest] {
			continue
		}
		total += a.set.byPath[k].Count
	}
	return total
}

// representatives returns the distinct element names a type can expand
// to first: the path components used to look up its statistics. A union
// contributes the representatives of every alternative.
func representatives(s *xschema.Schema, t xschema.Type, seen map[string]bool) []string {
	if seen == nil {
		seen = make(map[string]bool)
	}
	switch t := t.(type) {
	case *xschema.Choice:
		var out []string
		have := make(map[string]bool)
		for _, alt := range t.Alts {
			for _, n := range representatives(s, alt, seen) {
				if !have[n] {
					have[n] = true
					out = append(out, n)
				}
			}
		}
		return out
	case *xschema.Ref:
		if seen[t.Name] {
			return nil
		}
		seen[t.Name] = true
		def, ok := s.Lookup(t.Name)
		if !ok {
			return nil
		}
		return representatives(s, def, seen)
	default:
		if n, ok := representative(s, t); ok {
			return []string{n}
		}
		return nil
	}
}

// representative returns the element name a type expands to first: the
// path component used to look up its statistics. Choices have no single
// representative.
func representative(s *xschema.Schema, t xschema.Type) (string, bool) {
	switch t := t.(type) {
	case *xschema.Element:
		return t.Name, true
	case *xschema.Wildcard:
		return Tilde, true
	case *xschema.Ref:
		def, ok := s.Lookup(t.Name)
		if !ok {
			return "", false
		}
		return representative(s, def)
	case *xschema.Sequence:
		if len(t.Items) > 0 {
			return representative(s, t.Items[0])
		}
	case *xschema.Repeat:
		return representative(s, t.Inner)
	}
	return "", false
}
