package pschema

import (
	"fmt"

	"legodb/internal/xschema"
)

// Stratify rewrites an arbitrary schema into an equivalent physical
// schema by introducing type names where the stratified grammar requires
// them: under repetitions other than {0,1} and inside unions. This is the
// constructive half of the paper's claim that "any XML Schema has an
// equivalent physical schema". The input is not modified.
func Stratify(s *xschema.Schema) (*xschema.Schema, error) {
	out := s.Clone()
	xschema.NormalizeSchema(out)
	for guard := 0; ; guard++ {
		if guard > 10000 {
			return nil, fmt.Errorf("pschema: stratification did not converge")
		}
		repaired, err := repairOne(out)
		if err != nil {
			return nil, err
		}
		if !repaired {
			break
		}
	}
	if err := Check(out); err != nil {
		return nil, fmt.Errorf("pschema: stratification left violations: %w", err)
	}
	return out, nil
}

// repairOne finds the first stratification violation and fixes it by
// outlining or wrapping. It reports whether a repair was made.
func repairOne(s *xschema.Schema) (bool, error) {
	for _, name := range s.Names {
		var fixLoc *Loc
		var fixErr error
		WalkBody(s.Types[name], func(path Path, t xschema.Type) bool {
			if fixLoc != nil || fixErr != nil {
				return false
			}
			switch t := t.(type) {
			case *xschema.Repeat:
				if t.Min == 0 && t.Max == 1 {
					return true
				}
				if !IsNamedExpr(t.Inner) {
					loc := Loc{Type: name, Path: append(path, 0)}
					fixLoc = &loc
					return false
				}
				return false // named expr below; nothing to visit
			case *xschema.Choice:
				if !IsNamedExpr(t) {
					for i, alt := range t.Alts {
						if !IsNamedExpr(alt) {
							loc := Loc{Type: name, Path: append(path, i)}
							fixLoc = &loc
							return false
						}
					}
				}
				return false
			}
			return true
		})
		if fixErr != nil {
			return false, fixErr
		}
		if fixLoc != nil {
			if err := wrapAsNamed(s, *fixLoc); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	return false, nil
}

// wrapAsNamed gives the node at loc its own named type: elements and
// wildcards are outlined; sequences, choices and scalars are wrapped in a
// fresh group type.
func wrapAsNamed(s *xschema.Schema, loc Loc) error {
	node, err := Resolve(s, loc)
	if err != nil {
		return err
	}
	switch node.(type) {
	case *xschema.Element, *xschema.Wildcard:
		_, err := Outline(s, loc)
		return err
	case *xschema.Ref:
		return fmt.Errorf("pschema: node at %s is already a reference", loc)
	default:
		name := TypeNameFor(s, node)
		if err := ReplaceAt(s, loc, &xschema.Ref{Name: name}); err != nil {
			return err
		}
		s.Define(name, node)
		return nil
	}
}

// InitialOutlined builds the starting configuration of the greedy-so
// search: a p-schema in which every element and wildcard has its own
// named type (and therefore its own relation), except base types.
func InitialOutlined(s *xschema.Schema) (*xschema.Schema, error) {
	out, err := Stratify(s)
	if err != nil {
		return nil, err
	}
	for guard := 0; ; guard++ {
		if guard > 100000 {
			return nil, fmt.Errorf("pschema: outlining did not converge")
		}
		cands := OutlineCandidates(out)
		if len(cands) == 0 {
			break
		}
		if _, err := Outline(out, cands[0]); err != nil {
			return nil, err
		}
	}
	if err := Check(out); err != nil {
		return nil, err
	}
	return out, nil
}

// InlineOptions controls InitialInlined.
type InlineOptions struct {
	// FlattenUnions additionally applies the union-to-options rewriting
	// everywhere (Section 4.1, "From union to options"), inlining union
	// branches as optional, null-able content. This reproduces the
	// ALL-INLINED configuration of Figure 4(a). It widens the language of
	// the schema (t1|t2 ⊂ t1?,t2?), as in the paper.
	FlattenUnions bool
}

// InitialInlined builds the starting configuration of the greedy-si
// search: a p-schema in which every element is inlined into its parent
// except elements with multiple occurrences and recursive types.
func InitialInlined(s *xschema.Schema, opts InlineOptions) (*xschema.Schema, error) {
	out, err := Stratify(s)
	if err != nil {
		return nil, err
	}
	if opts.FlattenUnions {
		if err := flattenUnions(out); err != nil {
			return nil, err
		}
	}
	for guard := 0; ; guard++ {
		if guard > 100000 {
			return nil, fmt.Errorf("pschema: inlining did not converge")
		}
		cands := InlineCandidates(out)
		if len(cands) == 0 {
			break
		}
		if _, err := Inline(out, cands[0]); err != nil {
			return nil, err
		}
	}
	out.GarbageCollect()
	if err := Check(out); err != nil {
		return nil, err
	}
	return out, nil
}

// AllInlined is shorthand for the paper's ALL-INLINED rule-of-thumb
// configuration: inline as much as possible, flattening unions into
// optional columns.
func AllInlined(s *xschema.Schema) (*xschema.Schema, error) {
	return InitialInlined(s, InlineOptions{FlattenUnions: true})
}

// flattenUnions rewrites every union whose branches can be inlined into a
// sequence of optionals. Unions whose branches are recursive or whose
// bodies are not physical content (e.g. wildcard partitions that must
// stay separate types) are left alone.
func flattenUnions(s *xschema.Schema) error {
	for guard := 0; guard < 10000; guard++ {
		loc, ok := findFlattenableUnion(s)
		if !ok {
			return nil
		}
		if err := FlattenUnionAt(s, loc); err != nil {
			return err
		}
		s.GarbageCollect()
	}
	return fmt.Errorf("pschema: union flattening did not converge")
}

func findFlattenableUnion(s *xschema.Schema) (Loc, bool) {
	for _, name := range s.Names {
		var found *Loc
		WalkBody(s.Types[name], func(path Path, t xschema.Type) bool {
			if found != nil {
				return false
			}
			if c, ok := t.(*xschema.Choice); ok {
				// Only unions at unit positions (not under repetitions)
				// can become optional columns.
				if UnderRepetition(s.Types[name], path) {
					return false
				}
				if Flattenable(s, c) {
					loc := Loc{Type: name, Path: path}
					found = &loc
					return false
				}
			}
			return true
		})
		if found != nil {
			return *found, true
		}
	}
	return Loc{}, false
}

// UnderRepetition reports whether the node at path sits inside a
// repetition other than the optional {0,1}.
func UnderRepetition(body xschema.Type, path Path) bool {
	t := body
	for _, i := range path {
		if r, ok := t.(*xschema.Repeat); ok && !(r.Min == 0 && r.Max == 1) {
			return true
		}
		var err error
		t, err = Child(t, i)
		if err != nil {
			return true
		}
	}
	return false
}

// Flattenable reports whether every branch of the union resolves to
// physical content that can be made optional: no wildcards at top level
// and no recursive references.
func Flattenable(s *xschema.Schema, c *xschema.Choice) bool {
	for _, alt := range c.Alts {
		body := alt
		if ref, ok := alt.(*xschema.Ref); ok {
			def, found := s.Lookup(ref.Name)
			if !found || Recursive(s, ref.Name) {
				return false
			}
			body = def
		}
		switch body.(type) {
		case *xschema.Element, *xschema.Sequence, *xschema.Attribute, *xschema.Empty:
		default:
			return false
		}
		if checkOptBody(body) != nil {
			return false
		}
	}
	return true
}

// FlattenUnionAt replaces the union at loc with a sequence of optionals,
// one per branch, resolving branch references to their bodies.
func FlattenUnionAt(s *xschema.Schema, loc Loc) error {
	node, err := Resolve(s, loc)
	if err != nil {
		return err
	}
	c, ok := node.(*xschema.Choice)
	if !ok {
		return fmt.Errorf("pschema: node at %s is not a union", loc)
	}
	items := make([]xschema.Type, 0, len(c.Alts))
	for i, alt := range c.Alts {
		body := alt
		if ref, isRef := alt.(*xschema.Ref); isRef {
			def, found := s.Lookup(ref.Name)
			if !found {
				return fmt.Errorf("pschema: union branch references undefined %q", ref.Name)
			}
			body = xschema.Clone(def)
		}
		opt := &xschema.Repeat{Inner: body, Min: 0, Max: 1}
		if len(c.Fractions) == len(c.Alts) {
			opt.AvgCount = c.Fractions[i]
		}
		items = append(items, opt)
	}
	repl := xschema.Type(&xschema.Sequence{Items: items})
	if len(items) == 1 {
		repl = items[0]
	}
	if err := ReplaceAt(s, loc, repl); err != nil {
		return err
	}
	s.Types[loc.Type] = xschema.Normalize(s.Types[loc.Type])
	return nil
}
