package pschema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"legodb/internal/xschema"
)

// showSchema mirrors Figure 2(b) of the paper.
const showSchema = `
type Show = show [ @type[ String ],
    title[ String ],
    Year,
    Aka{1,10},
    Review*,
    ( Movie | TV ) ]
type Year = year[ Integer ]
type Aka = aka[ String ]
type Review = review[ ~[ String ] ]
type Movie = box_office[ Integer ], video_sales[ Integer ]
type TV = seasons[ Integer ], description[ String ], Episode*
type Episode = episode[ name[ String ], guest_director[ String ] ]
`

func TestCheckAcceptsPaperSchema(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	if err := Check(s); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCheckRejectsUnstratified(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"element under star", `type A = a[ b[ String ]* ]`},
		{"element in union", `type A = a[ ( b[String] | C ) ]
type C = c[ String ]`},
		{"sequence under plus", `type A = a[ (b[String], c[String])+ ]`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := xschema.MustParseSchema(c.src)
			if err := Check(s); err == nil {
				t.Fatalf("Check accepted unstratified schema:\n%s", c.src)
			}
		})
	}
}

func TestCheckAcceptsOptionalLayer(t *testing.T) {
	// Union-to-options output: optional sequences with nested collections.
	s := xschema.MustParseSchema(`
type Show = show[ title[String],
    (box_office[Integer], video_sales[Integer])?,
    (seasons[Integer], Episode*)? ]
type Episode = episode[ name[String] ]`)
	if err := Check(s); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestIsAlias(t *testing.T) {
	cases := []struct {
		src   string
		alias bool
	}{
		{`( A | B )`, true},
		{`A*`, true},
		{`A, B`, true},
		{`a[ String ]`, false},
		{`@x[ String ]`, false},
		{`A, b[ String ]`, false},
		{`String`, false},
	}
	for _, c := range cases {
		typ, err := xschema.ParseType(c.src)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", c.src, err)
		}
		if got := IsAlias(typ); got != c.alias {
			t.Errorf("IsAlias(%s) = %v, want %v", c.src, got, c.alias)
		}
	}
}

func TestRecursive(t *testing.T) {
	s := xschema.MustParseSchema(`
type Any = ~[ (Any | Str)* ]
type Str = String
type Plain = p[ String ]`)
	if !Recursive(s, "Any") {
		t.Error("Any should be recursive")
	}
	if Recursive(s, "Str") || Recursive(s, "Plain") {
		t.Error("non-recursive types reported recursive")
	}
	mutual := xschema.MustParseSchema(`
type A = a[ B* ]
type B = b[ A* ]`)
	if !Recursive(mutual, "A") || !Recursive(mutual, "B") {
		t.Error("mutual recursion not detected")
	}
}

func TestOutlineInlineRoundTrip(t *testing.T) {
	s := xschema.MustParseSchema(`type TV = tv[ seasons[ Integer ], description[ String ] ]`)
	orig := s.Clone()
	// Outline description (body -> content(0) -> sequence item 1).
	name, err := Outline(s, Loc{Type: "TV", Path: Path{0, 1}})
	if err != nil {
		t.Fatalf("Outline: %v", err)
	}
	if name != "Description" {
		t.Fatalf("outlined type name = %q", name)
	}
	def, ok := s.Lookup("Description")
	if !ok {
		t.Fatal("outlined type not defined")
	}
	if el, ok := def.(*xschema.Element); !ok || el.Name != "description" {
		t.Fatalf("outlined body = %v", def)
	}
	if err := Check(s); err != nil {
		t.Fatalf("outlined schema not physical: %v", err)
	}
	// Inline it back.
	locs := InlineCandidates(s)
	if len(locs) != 1 {
		t.Fatalf("inline candidates = %v", locs)
	}
	mode, err := Inline(s, locs[0])
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	if mode != InlineMoved {
		t.Fatalf("mode = %v, want moved", mode)
	}
	if !xschema.DeepEqual(s.Types["TV"], orig.Types["TV"]) {
		t.Fatalf("inline(outline(x)) != x:\n%s\nvs\n%s", s.Types["TV"], orig.Types["TV"])
	}
	if _, stillThere := s.Lookup("Description"); stillThere {
		t.Fatal("moved type not removed")
	}
}

func TestInlineSharedCopies(t *testing.T) {
	s := xschema.MustParseSchema(`
type Show = show[ Aka, Aka{0,*} ]
type Aka = aka[ String ]`)
	// First Aka ref is singleton and inlinable even though Aka is shared.
	cands := InlineCandidates(s)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v (the starred ref must not be inlinable)", cands)
	}
	mode, err := Inline(s, cands[0])
	if err != nil {
		t.Fatalf("Inline: %v", err)
	}
	if mode != InlineCopied {
		t.Fatalf("mode = %v, want copied", mode)
	}
	if _, ok := s.Lookup("Aka"); !ok {
		t.Fatal("shared type removed on copy-inline")
	}
	if err := Check(s); err != nil {
		t.Fatalf("result not physical: %v", err)
	}
}

func TestInlineRestrictions(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	// Refs inside unions are not inlinable.
	for _, loc := range InlineCandidates(s) {
		node, err := Resolve(s, loc)
		if err != nil {
			t.Fatal(err)
		}
		ref := node.(*xschema.Ref)
		if ref.Name == "Movie" || ref.Name == "TV" || ref.Name == "Aka" || ref.Name == "Review" {
			t.Errorf("ref %s in collection/union reported inlinable", ref.Name)
		}
	}
	// Recursive types are not inlinable.
	rec := xschema.MustParseSchema(`
type A = a[ B? ]
type B = b[ A? ]`)
	if got := InlineCandidates(rec); len(got) != 0 {
		t.Errorf("recursive refs reported inlinable: %v", got)
	}
}

func TestStratifyPaperAppendixSchema(t *testing.T) {
	// Appendix B: elements directly under repetitions and unions of raw
	// sequences.
	src := `
type IMDB = imdb [ Show{0,*} ]
type Show = show [ @type[ String ],
    title [ String ],
    year[ Integer ],
    aka [ String ]{0,*},
    reviews[ ~[ String ] ]{0,*},
    (box_office [ Integer ], video_sales [ Integer ]
     | seasons[ Integer ], description [ String ],
       episodes [ name[String], guest_director[ String ] ]{0,*}) ]`
	s := xschema.MustParseSchema(src)
	if Check(s) == nil {
		t.Fatal("appendix schema should not already be physical")
	}
	ps, err := Stratify(s)
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if err := Check(ps); err != nil {
		t.Fatalf("stratified schema fails Check: %v", err)
	}
	if _, ok := ps.Lookup("Aka"); !ok {
		t.Errorf("aka was not outlined; types: %v", ps.Names)
	}
}

func TestStratifyPreservesValidity(t *testing.T) {
	src := `
type IMDB = imdb [ Show{0,*} ]
type Show = show [ @type[ String ], title [ String ],
    aka [ String ]{0,3},
    (box_office [ Integer ] | seasons[ Integer ], episodes [ name[String] ]{0,2}) ]`
	s := xschema.MustParseSchema(src)
	ps, err := Stratify(s)
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	f := func(seed int64) bool {
		g := xschema.NewGenerator(s, rand.New(rand.NewSource(seed)))
		doc, err := g.Generate()
		if err != nil {
			return false
		}
		return ps.Valid(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Errorf("stratified schema rejects valid documents: %v", err)
	}
	// And the reverse: documents of the p-schema validate under the
	// original.
	g := func(seed int64) bool {
		gen := xschema.NewGenerator(ps, rand.New(rand.NewSource(seed)))
		doc, err := gen.Generate()
		if err != nil {
			return false
		}
		return s.Valid(doc)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 80}); err != nil {
		t.Errorf("original schema rejects p-schema documents: %v", err)
	}
}

func TestInitialOutlined(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	out, err := InitialOutlined(s)
	if err != nil {
		t.Fatalf("InitialOutlined: %v", err)
	}
	if err := Check(out); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Every element got a type: title, year, aka, review, box_office,
	// video_sales, seasons, description, episode, name, guest_director...
	if len(out.Names) < 12 {
		t.Fatalf("expected a table per element, got %v", out.Names)
	}
	if len(OutlineCandidates(out)) != 0 {
		t.Fatalf("outline candidates remain: %v", OutlineCandidates(out))
	}
}

func TestInitialInlined(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	out, err := InitialInlined(s, InlineOptions{})
	if err != nil {
		t.Fatalf("InitialInlined: %v", err)
	}
	if err := Check(out); err != nil {
		t.Fatalf("Check: %v", err)
	}
	// Year inlines into Show; Aka, Review stay (multi-occurrence); the
	// union branches stay named (no flattening).
	if _, ok := out.Lookup("Year"); ok {
		t.Error("Year not inlined")
	}
	for _, want := range []string{"Show", "Aka", "Review", "Movie", "TV", "Episode"} {
		if _, ok := out.Lookup(want); !ok {
			t.Errorf("type %s missing; have %v", want, out.Names)
		}
	}
	if len(InlineCandidates(out)) != 0 {
		t.Fatalf("inline candidates remain: %v", InlineCandidates(out))
	}
}

func TestAllInlinedFlattensUnions(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	out, err := AllInlined(s)
	if err != nil {
		t.Fatalf("AllInlined: %v", err)
	}
	if err := Check(out); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if _, ok := out.Lookup("Movie"); ok {
		t.Errorf("Movie survived flattening; types: %v", out.Names)
	}
	if _, ok := out.Lookup("TV"); ok {
		t.Errorf("TV survived flattening; types: %v", out.Names)
	}
	// Episode must survive: it is multi-occurrence inside the TV branch.
	if _, ok := out.Lookup("Episode"); !ok {
		t.Errorf("Episode missing after flattening; types: %v", out.Names)
	}
	// A movie document (no seasons/description) must still validate:
	// union widened to options.
	movie := xschema.MustParseSchema(showSchema)
	g := xschema.NewGenerator(movie, rand.New(rand.NewSource(3)))
	for i := 0; i < 40; i++ {
		doc, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !out.Valid(doc) {
			t.Fatalf("document valid under original rejected by ALL-INLINED:\n%s", doc)
		}
	}
}

func TestInitialSchemasOnRecursiveSchema(t *testing.T) {
	s := xschema.MustParseSchema(`
type Any = ~[ (Any | Str)* ]
type Str = String`)
	out, err := InitialInlined(s, InlineOptions{FlattenUnions: true})
	if err != nil {
		t.Fatalf("InitialInlined: %v", err)
	}
	if err := Check(out); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if _, ok := out.Lookup("Any"); !ok {
		t.Error("recursive type removed")
	}
}

func TestResolveReplaceAt(t *testing.T) {
	s := xschema.MustParseSchema(`type A = a[ b[ String ], c[ Integer ] ]`)
	node, err := Resolve(s, Loc{Type: "A", Path: Path{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if el, ok := node.(*xschema.Element); !ok || el.Name != "c" {
		t.Fatalf("Resolve = %v", node)
	}
	if err := ReplaceAt(s, Loc{Type: "A", Path: Path{0, 1}}, &xschema.Ref{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	node, _ = Resolve(s, Loc{Type: "A", Path: Path{0, 1}})
	if _, ok := node.(*xschema.Ref); !ok {
		t.Fatalf("ReplaceAt did not replace: %v", node)
	}
	if _, err := Resolve(s, Loc{Type: "A", Path: Path{0, 9}}); err == nil {
		t.Fatal("bad path resolved")
	}
	if _, err := Resolve(s, Loc{Type: "Nope"}); err == nil {
		t.Fatal("unknown type resolved")
	}
}

// TestPropertyInitialSchemasAreEquivalent: random documents generated
// from the original schema validate under both initial p-schemas (and
// vice versa for the outlined one, which is strictly equivalent).
func TestPropertyInitialSchemasAreEquivalent(t *testing.T) {
	s := xschema.MustParseSchema(showSchema)
	outlined, err := InitialOutlined(s)
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := InitialInlined(s, InlineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		g := xschema.NewGenerator(s, rand.New(rand.NewSource(seed)))
		doc, err := g.Generate()
		if err != nil {
			return false
		}
		return outlined.Valid(doc) && inlined.Valid(doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	back := func(seed int64) bool {
		g := xschema.NewGenerator(outlined, rand.New(rand.NewSource(seed)))
		doc, err := g.Generate()
		if err != nil {
			return false
		}
		return s.Valid(doc)
	}
	if err := quick.Check(back, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestChildAndSetChildErrors(t *testing.T) {
	el := &xschema.Element{Name: "a", Content: &xschema.Scalar{}}
	if _, err := Child(el, 1); err == nil {
		t.Error("out-of-range Child accepted")
	}
	if err := SetChild(el, 5, &xschema.Empty{}); err == nil {
		t.Error("out-of-range SetChild accepted")
	}
	if got := ChildCount(&xschema.Scalar{}); got != 0 {
		t.Errorf("scalar child count = %d", got)
	}
	seq := &xschema.Sequence{Items: []xschema.Type{el, el}}
	if got := ChildCount(seq); got != 2 {
		t.Errorf("sequence child count = %d", got)
	}
}

func TestTypeNameFor(t *testing.T) {
	s := xschema.NewSchema("X")
	s.Define("X", &xschema.Empty{})
	el := &xschema.Element{Name: "box_office", Content: &xschema.Scalar{}}
	if got := TypeNameFor(s, el); got != "Box_office" {
		t.Errorf("TypeNameFor element = %q", got)
	}
	w := &xschema.Wildcard{Content: &xschema.Scalar{}}
	if got := TypeNameFor(s, w); got != "Tilde" {
		t.Errorf("TypeNameFor wildcard = %q", got)
	}
	if got := TypeNameFor(s, &xschema.Sequence{}); got != "Group" {
		t.Errorf("TypeNameFor group = %q", got)
	}
}

func TestOutlineErrors(t *testing.T) {
	s := xschema.MustParseSchema(`type A = a[ b[ String ] ]`)
	if _, err := Outline(s, Loc{Type: "A"}); err == nil {
		t.Error("outlining the whole body accepted")
	}
	if _, err := Outline(s, Loc{Type: "A", Path: Path{0, 0}}); err == nil {
		t.Error("outlining a scalar accepted")
	}
	if _, err := Outline(s, Loc{Type: "Nope", Path: Path{0}}); err == nil {
		t.Error("outlining in unknown type accepted")
	}
}

func TestInlineErrors(t *testing.T) {
	s := xschema.MustParseSchema(`
type IMDB = imdb[ Show{0,*} ]
type Show = show[ title[ String ] ]`)
	// Inlining the root via a self-loc and inlining non-refs fail.
	if err := CanInline(s, Loc{Type: "IMDB", Path: Path{0}}); err == nil {
		t.Error("inlining a repetition node accepted")
	}
	if _, err := Inline(s, Loc{Type: "Show", Path: Path{0, 0}}); err == nil {
		t.Error("inlining an element accepted")
	}
}
