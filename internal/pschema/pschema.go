// Package pschema implements LegoDB's physical XML schemas (Section 3.1):
// schemas whose named types follow the stratified grammar of Figure 9, so
// that each type maps directly onto one relation. It provides
//
//   - Check, the stratification validator;
//   - the inline/outline primitive rewritings (shared by the initial
//     schema construction and the transformation search space);
//   - InitialOutlined and InitialInlined, the two starting points of the
//     greedy search (greedy-so and greedy-si in Section 5.2);
//   - structural analyses used by the relational mapping (alias types,
//     parent edges with cardinalities).
package pschema

import (
	"fmt"
	"strings"

	"legodb/internal/xschema"
)

// Check verifies that every named type of the schema conforms to the
// stratified physical grammar: type bodies are scalars or sequences of
// "units", where a unit is an attribute, an element with physical
// content, a wildcard, an optional over units, or a named-type expression
// (type names combined with repetition and union only).
func Check(s *xschema.Schema) error {
	if err := s.Validate(); err != nil {
		return err
	}
	for _, name := range s.Names {
		if err := checkTypeBody(s.Types[name]); err != nil {
			return fmt.Errorf("pschema: type %s is not stratified: %w", name, err)
		}
	}
	return nil
}

// IsPhysical reports whether the schema is a valid p-schema.
func IsPhysical(s *xschema.Schema) bool { return Check(s) == nil }

func checkTypeBody(t xschema.Type) error {
	if _, ok := t.(*xschema.Scalar); ok {
		return nil
	}
	return checkOptBody(t)
}

// checkOptBody accepts a unit or a sequence of units.
func checkOptBody(t xschema.Type) error {
	if seq, ok := t.(*xschema.Sequence); ok {
		for _, it := range seq.Items {
			if err := checkUnit(it); err != nil {
				return err
			}
		}
		return nil
	}
	return checkUnit(t)
}

func checkUnit(t xschema.Type) error {
	switch t := t.(type) {
	case *xschema.Empty:
		return nil
	case *xschema.Attribute:
		if _, ok := t.Content.(*xschema.Scalar); !ok {
			return fmt.Errorf("attribute @%s content must be scalar", t.Name)
		}
		return nil
	case *xschema.Element:
		return checkElemContent(t.Content)
	case *xschema.Wildcard:
		return checkElemContent(t.Content)
	case *xschema.Repeat:
		if t.Min == 0 && t.Max == 1 {
			// Optional layer: optionals over physical content are columns
			// with nulls; optionals over named expressions are fine too.
			if IsNamedExpr(t.Inner) {
				return nil
			}
			return checkOptBody(t.Inner)
		}
		if !IsNamedExpr(t) {
			return fmt.Errorf("repetition %s must contain only type names", t)
		}
		return nil
	case *xschema.Choice:
		if !IsNamedExpr(t) {
			return fmt.Errorf("union %s must contain only type names", t)
		}
		return nil
	case *xschema.Ref:
		return nil
	default:
		return fmt.Errorf("%s cannot appear as a unit", t)
	}
}

// checkElemContent accepts element content: a scalar or physical content.
func checkElemContent(t xschema.Type) error {
	if _, ok := t.(*xschema.Scalar); ok {
		return nil
	}
	return checkOptBody(t)
}

// IsNamedExpr reports whether t belongs to the named-types layer: type
// references combined only with repetition, union and sequencing.
func IsNamedExpr(t xschema.Type) bool {
	switch t := t.(type) {
	case *xschema.Ref:
		return true
	case *xschema.Repeat:
		return IsNamedExpr(t.Inner)
	case *xschema.Choice:
		for _, a := range t.Alts {
			if !IsNamedExpr(a) {
				return false
			}
		}
		return true
	case *xschema.Sequence:
		for _, it := range t.Items {
			if !IsNamedExpr(it) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// IsAlias reports whether a type body carries no physical content of its
// own (it is purely a named-type expression). Alias types produce no
// relation; their children attach to the alias's own parents. The Show
// type after union distribution — type Show = (Show_Part1 | Show_Part2) —
// is the canonical example.
func IsAlias(t xschema.Type) bool {
	switch t := t.(type) {
	case *xschema.Ref:
		return true
	case *xschema.Repeat:
		return IsAlias(t.Inner)
	case *xschema.Choice:
		for _, a := range t.Alts {
			if !IsAlias(a) {
				return false
			}
		}
		return true
	case *xschema.Sequence:
		for _, it := range t.Items {
			if !IsAlias(it) {
				return false
			}
		}
		return true
	case *xschema.Empty:
		return true
	default:
		return false
	}
}

// Recursive reports whether the named type can reach itself through type
// references.
func Recursive(s *xschema.Schema, name string) bool {
	seen := make(map[string]bool)
	var reach func(from string) bool
	reach = func(from string) bool {
		def, ok := s.Types[from]
		if !ok {
			return false
		}
		found := false
		xschema.Visit(def, func(t xschema.Type) {
			if found {
				return
			}
			if r, ok := t.(*xschema.Ref); ok {
				if r.Name == name {
					found = true
					return
				}
				if !seen[r.Name] {
					seen[r.Name] = true
					if reach(r.Name) {
						found = true
					}
				}
			}
		})
		return found
	}
	return reach(name)
}

// TypeNameFor derives a readable fresh type name from an element tag:
// "box_office" becomes "Box_office", wildcards become "Tilde".
func TypeNameFor(s *xschema.Schema, t xschema.Type) string {
	var base string
	switch t := t.(type) {
	case *xschema.Element:
		base = capitalize(t.Name)
	case *xschema.Wildcard:
		base = "Tilde"
	default:
		base = "Group"
	}
	return s.FreshName(base)
}

func capitalize(name string) string {
	if name == "" {
		return "T"
	}
	return strings.ToUpper(name[:1]) + name[1:]
}
