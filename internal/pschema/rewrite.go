package pschema

import (
	"fmt"

	"legodb/internal/xschema"
)

// Path addresses a node inside a type body as a sequence of child
// indexes. Element, Attribute, Wildcard and Repeat nodes have one child
// (index 0); Sequence and Choice nodes have one child per item.
type Path []int

// Loc identifies a node inside a schema: the named type and a path into
// its body.
type Loc struct {
	Type string
	Path Path
}

func (l Loc) String() string { return fmt.Sprintf("%s%v", l.Type, []int(l.Path)) }

// ChildCount returns the number of addressable children of a type node.
func ChildCount(t xschema.Type) int {
	switch t := t.(type) {
	case *xschema.Element, *xschema.Attribute, *xschema.Wildcard, *xschema.Repeat:
		return 1
	case *xschema.Sequence:
		return len(t.Items)
	case *xschema.Choice:
		return len(t.Alts)
	default:
		return 0
	}
}

// Child returns the i-th child of a type node.
func Child(t xschema.Type, i int) (xschema.Type, error) {
	switch t := t.(type) {
	case *xschema.Element:
		if i == 0 {
			return t.Content, nil
		}
	case *xschema.Attribute:
		if i == 0 {
			return t.Content, nil
		}
	case *xschema.Wildcard:
		if i == 0 {
			return t.Content, nil
		}
	case *xschema.Repeat:
		if i == 0 {
			return t.Inner, nil
		}
	case *xschema.Sequence:
		if i >= 0 && i < len(t.Items) {
			return t.Items[i], nil
		}
	case *xschema.Choice:
		if i >= 0 && i < len(t.Alts) {
			return t.Alts[i], nil
		}
	}
	return nil, fmt.Errorf("pschema: node %s has no child %d", t, i)
}

// SetChild replaces the i-th child of a type node.
func SetChild(t xschema.Type, i int, c xschema.Type) error {
	switch t := t.(type) {
	case *xschema.Element:
		if i == 0 {
			t.Content = c
			return nil
		}
	case *xschema.Attribute:
		if i == 0 {
			t.Content = c
			return nil
		}
	case *xschema.Wildcard:
		if i == 0 {
			t.Content = c
			return nil
		}
	case *xschema.Repeat:
		if i == 0 {
			t.Inner = c
			return nil
		}
	case *xschema.Sequence:
		if i >= 0 && i < len(t.Items) {
			t.Items[i] = c
			return nil
		}
	case *xschema.Choice:
		if i >= 0 && i < len(t.Alts) {
			t.Alts[i] = c
			return nil
		}
	}
	return fmt.Errorf("pschema: node %s has no child %d", t, i)
}

// Resolve returns the node at loc in the schema.
func Resolve(s *xschema.Schema, loc Loc) (xschema.Type, error) {
	t, ok := s.Lookup(loc.Type)
	if !ok {
		return nil, fmt.Errorf("pschema: type %q not defined", loc.Type)
	}
	for _, i := range loc.Path {
		var err error
		t, err = Child(t, i)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ReplaceAt substitutes the node at loc with repl.
func ReplaceAt(s *xschema.Schema, loc Loc, repl xschema.Type) error {
	if len(loc.Path) == 0 {
		if _, ok := s.Lookup(loc.Type); !ok {
			return fmt.Errorf("pschema: type %q not defined", loc.Type)
		}
		s.Types[loc.Type] = repl
		return nil
	}
	parent, err := Resolve(s, Loc{Type: loc.Type, Path: loc.Path[:len(loc.Path)-1]})
	if err != nil {
		return err
	}
	return SetChild(parent, loc.Path[len(loc.Path)-1], repl)
}

// WalkBody traverses a type body in preorder, calling fn with each node's
// path. Returning false from fn prunes the subtree.
func WalkBody(body xschema.Type, fn func(path Path, t xschema.Type) bool) {
	var rec func(t xschema.Type, path Path)
	rec = func(t xschema.Type, path Path) {
		if !fn(append(Path(nil), path...), t) {
			return
		}
		for i := 0; i < ChildCount(t); i++ {
			c, err := Child(t, i)
			if err == nil {
				rec(c, append(path, i))
			}
		}
	}
	rec(body, nil)
}

// Outline gives the element or wildcard node at loc its own named type
// and replaces the node with a reference, as in Section 4.1:
//
//	type TV = seasons[Integer], Description, Episode*
//	type Description = description[String]
//
// The new type's name is returned. Outlining is always
// semantics-preserving; the node must not be the entire body (that would
// create a useless alias).
func Outline(s *xschema.Schema, loc Loc) (string, error) {
	if len(loc.Path) == 0 {
		return "", fmt.Errorf("pschema: cannot outline the whole body of %s", loc.Type)
	}
	node, err := Resolve(s, loc)
	if err != nil {
		return "", err
	}
	switch node.(type) {
	case *xschema.Element, *xschema.Wildcard:
	default:
		return "", fmt.Errorf("pschema: only elements and wildcards can be outlined, got %s", node)
	}
	name := TypeNameFor(s, node)
	if err := ReplaceAt(s, loc, &xschema.Ref{Name: name}); err != nil {
		return "", err
	}
	s.Define(name, node)
	return name, nil
}

// InlineMode describes how Inline handled the target type.
type InlineMode int

const (
	// InlineMoved means the target had a single reference: its body moved
	// into the host and the definition was removed.
	InlineMoved InlineMode = iota
	// InlineCopied means the target is shared: the host received a copy
	// and the definition remains for the other references.
	InlineCopied
)

// CanInline reports whether the reference at loc may be inlined: the
// node must be a Ref in an inlinable position (not inside a repetition
// other than {0,1}, not inside a union), the target must not be the
// schema root, must not be recursive, and its body must be physical
// content (not a bare scalar).
func CanInline(s *xschema.Schema, loc Loc) error {
	node, err := Resolve(s, loc)
	if err != nil {
		return err
	}
	ref, ok := node.(*xschema.Ref)
	if !ok {
		return fmt.Errorf("pschema: node at %s is not a type reference", loc)
	}
	if ref.Name == s.Root {
		return fmt.Errorf("pschema: cannot inline the root type %s", ref.Name)
	}
	if ref.Name == loc.Type {
		return fmt.Errorf("pschema: cannot inline %s into itself", ref.Name)
	}
	// Position check: walk the path and reject collection/union contexts.
	t, _ := s.Lookup(loc.Type)
	for _, i := range loc.Path {
		switch n := t.(type) {
		case *xschema.Repeat:
			if !(n.Min == 0 && n.Max == 1) {
				return fmt.Errorf("pschema: reference inside repetition %s cannot be inlined", n)
			}
		case *xschema.Choice:
			return fmt.Errorf("pschema: reference inside a union cannot be inlined")
		}
		t, err = Child(t, i)
		if err != nil {
			return err
		}
	}
	def, ok := s.Lookup(ref.Name)
	if !ok {
		return fmt.Errorf("pschema: type %q not defined", ref.Name)
	}
	if _, isScalar := def.(*xschema.Scalar); isScalar {
		return fmt.Errorf("pschema: scalar type %s cannot be inlined", ref.Name)
	}
	if Recursive(s, ref.Name) {
		return fmt.Errorf("pschema: recursive type %s cannot be inlined", ref.Name)
	}
	return nil
}

// Inline replaces the type reference at loc with the referenced type's
// body. If the target type is referenced only once it is removed (the
// usual case); shared targets are copied, which preserves semantics but
// duplicates structure (used by the repetition-split rewriting).
func Inline(s *xschema.Schema, loc Loc) (InlineMode, error) {
	if err := CanInline(s, loc); err != nil {
		return 0, err
	}
	node, _ := Resolve(s, loc)
	ref := node.(*xschema.Ref)
	def, _ := s.Lookup(ref.Name)
	refs := s.RefCounts()[ref.Name]
	mode := InlineMoved
	body := def
	if refs > 1 {
		mode = InlineCopied
		body = xschema.Clone(def)
	}
	if err := ReplaceAt(s, loc, body); err != nil {
		return 0, err
	}
	if mode == InlineMoved {
		s.Remove(ref.Name)
	}
	s.Types[loc.Type] = xschema.Normalize(s.Types[loc.Type])
	return mode, nil
}

// InlineCandidates returns every location holding an inlinable type
// reference.
func InlineCandidates(s *xschema.Schema) []Loc {
	var out []Loc
	for _, name := range s.Names {
		name := name
		WalkBody(s.Types[name], func(path Path, t xschema.Type) bool {
			if _, ok := t.(*xschema.Ref); ok {
				loc := Loc{Type: name, Path: path}
				if CanInline(s, loc) == nil {
					out = append(out, loc)
				}
			}
			return true
		})
	}
	return out
}

// OutlineCandidates returns every location holding an element or wildcard
// that can be outlined (every such node except type-body roots).
func OutlineCandidates(s *xschema.Schema) []Loc {
	var out []Loc
	for _, name := range s.Names {
		name := name
		WalkBody(s.Types[name], func(path Path, t xschema.Type) bool {
			if len(path) == 0 {
				return true
			}
			switch t.(type) {
			case *xschema.Element, *xschema.Wildcard:
				out = append(out, Loc{Type: name, Path: path})
			}
			return true
		})
	}
	return out
}
