package imdb

import (
	"fmt"
	"math/rand"

	"legodb/internal/xmltree"
)

// GenOptions scales the synthetic dataset. The defaults reproduce the
// Appendix A ratios: per show there are ~0.75 directors and ~4.76 actors,
// ~0.39 akas and ~0.32 reviews; 2/3 of typed shows are movies; TV shows
// carry ~8.9 episodes; directors directed ~4 titles; actors played ~4
// roles and ~12% have a biography.
type GenOptions struct {
	Shows int
	// Seed makes generation reproducible.
	Seed int64
	// NYTFraction is the fraction of reviews from the New York Times
	// (wildcard tag "nyt"); default 0.25.
	NYTFraction float64
	// AkasPerShow overrides the average akas per show when > 0.
	AkasPerShow float64
	// ReviewsPerShow overrides the average reviews per show when > 0.
	ReviewsPerShow float64
}

// Generate builds a synthetic IMDB document valid under Schema() whose
// statistics match Appendix A at the requested scale.
func Generate(opts GenOptions) *xmltree.Node {
	if opts.Shows <= 0 {
		opts.Shows = 100
	}
	if opts.NYTFraction == 0 {
		opts.NYTFraction = 0.25
	}
	akaAvg := 13641.0 / 34798
	if opts.AkasPerShow > 0 {
		akaAvg = opts.AkasPerShow
	}
	reviewAvg := 11250.0 / 34798
	if opts.ReviewsPerShow > 0 {
		reviewAvg = opts.ReviewsPerShow
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	g := &generator{rng: rng}

	root := xmltree.NewElement("imdb")
	titles := make([]string, opts.Shows)
	movieFraction := 7000.0 / 10500 // box_office count vs typed shows

	for i := 0; i < opts.Shows; i++ {
		titles[i] = fmt.Sprintf("%s %s %d", g.word(), g.word(), i)
		show := xmltree.NewElement("show")
		isMovie := rng.Float64() < movieFraction
		if isMovie {
			show.SetAttr("type", "Movie")
		} else {
			show.SetAttr("type", "TVseries")
		}
		show.Append(
			xmltree.NewText("title", titles[i]),
			xmltree.NewText("year", fmt.Sprintf("%d", 1800+rng.Intn(301))),
		)
		for k := 0; k < g.count(akaAvg); k++ {
			show.Append(xmltree.NewText("aka", g.word()+" "+g.word()))
		}
		for k := 0; k < g.count(reviewAvg); k++ {
			source := "nyt"
			if rng.Float64() >= opts.NYTFraction {
				source = reviewSources[rng.Intn(len(reviewSources))]
			}
			show.Append(xmltree.NewElement("reviews").Append(
				xmltree.NewText(source, g.sentence(8)),
			))
		}
		if isMovie {
			show.Append(
				xmltree.NewText("box_office", fmt.Sprintf("%d", 10000+rng.Int63n(99990000))),
				xmltree.NewText("video_sales", fmt.Sprintf("%d", 10000+rng.Int63n(99990000))),
			)
		} else {
			show.Append(
				xmltree.NewText("seasons", fmt.Sprintf("%d", 1+rng.Intn(60))),
				xmltree.NewText("description", g.sentence(12)),
			)
			for k := 0; k < g.count(31250.0/3500); k++ {
				show.Append(xmltree.NewElement("episodes").Append(
					xmltree.NewText("name", g.word()+" "+g.word()),
					xmltree.NewText("guest_director", g.personName()),
				))
			}
		}
		root.Append(show)
	}

	nDirectors := scaled(opts.Shows, 26251, 34798)
	for i := 0; i < nDirectors; i++ {
		d := xmltree.NewElement("director")
		d.Append(xmltree.NewText("name", g.personName()))
		for k := 0; k < g.count(105004.0/26251); k++ {
			directed := xmltree.NewElement("directed").Append(
				xmltree.NewText("title", titles[rng.Intn(len(titles))]),
				xmltree.NewText("year", fmt.Sprintf("%d", 1800+rng.Intn(301))),
			)
			if rng.Float64() < 50000.0/105004 {
				directed.Append(xmltree.NewText("info", g.sentence(4)))
			}
			d.Append(directed)
		}
		root.Append(d)
	}

	nActors := scaled(opts.Shows, 165786, 34798)
	for i := 0; i < nActors; i++ {
		a := xmltree.NewElement("actor")
		a.Append(xmltree.NewText("name", g.personName()))
		for k := 0; k < g.count(663144.0/165786); k++ {
			played := xmltree.NewElement("played").Append(
				xmltree.NewText("title", titles[rng.Intn(len(titles))]),
				xmltree.NewText("year", fmt.Sprintf("%d", 1800+rng.Intn(301))),
				xmltree.NewText("character", g.word()+" "+g.word()),
				xmltree.NewText("order_of_appearance", fmt.Sprintf("%d", 1+rng.Intn(300))),
			)
			for aw := 0; aw < g.count(0.1) && aw < 5; aw++ {
				played.Append(xmltree.NewElement("award").Append(
					xmltree.NewText("result", "won"),
					xmltree.NewText("award_name", g.word()+" award"),
				))
			}
			a.Append(played)
		}
		if rng.Float64() < 20000.0/165786*8 { // biography presence
			a.Append(xmltree.NewElement("biography").Append(
				xmltree.NewText("birthday", fmt.Sprintf("19%02d-%02d-%02d", rng.Intn(100), 1+rng.Intn(12), 1+rng.Intn(28))),
				xmltree.NewText("text", g.sentence(5)),
			))
		}
		root.Append(a)
	}
	return root
}

func scaled(shows, num, den int) int {
	n := shows * num / den
	if n < 1 {
		n = 1
	}
	return n
}

var reviewSources = []string{"suntimes", "variety", "guardian", "post"}

var vocabulary = []string{
	"fugitive", "files", "paranoia", "agent", "alien", "river", "shadow",
	"summer", "ghost", "machine", "angel", "frontier", "network", "signal",
	"harbor", "empire", "velvet", "cascade", "meridian", "atlas",
}

var firstNames = []string{"Roger", "Gillian", "David", "Harrison", "Jodie", "Larry", "Agnes", "Kiyoshi"}
var lastNames = []string{"Ebert", "Anderson", "Duchovny", "Ford", "Foster", "Shaw", "Varda", "Kurosawa"}

type generator struct {
	rng *rand.Rand
}

func (g *generator) word() string {
	return vocabulary[g.rng.Intn(len(vocabulary))]
}

func (g *generator) sentence(words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += g.word()
	}
	return out
}

func (g *generator) personName() string {
	return firstNames[g.rng.Intn(len(firstNames))] + " " + lastNames[g.rng.Intn(len(lastNames))]
}

// count draws an occurrence count with the given average: the integer
// part plus a Bernoulli fractional remainder.
func (g *generator) count(avg float64) int {
	n := int(avg)
	if g.rng.Float64() < avg-float64(n) {
		n++
	}
	return n
}
