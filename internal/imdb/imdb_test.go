package imdb

import (
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

func TestSchemaParsesAndStratifies(t *testing.T) {
	s := Schema()
	if s.Root != "IMDB" {
		t.Fatalf("root = %q", s.Root)
	}
	ps, err := pschema.Stratify(s)
	if err != nil {
		t.Fatalf("Stratify: %v", err)
	}
	if _, err := relational.Map(ps); err != nil {
		t.Fatalf("Map: %v", err)
	}
}

func TestStatsParseAndAnnotate(t *testing.T) {
	s := Schema()
	stats := Stats()
	if got := stats.Count("imdb", "show"); got != 34798 {
		t.Fatalf("show count = %g", got)
	}
	if err := xstats.Annotate(s, stats); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	// The annotated schema maps with paper-scale cardinalities.
	ps, err := pschema.AllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	show := cat.Table("Show")
	if show == nil {
		t.Fatalf("no Show table:\n%s", cat)
	}
	if show.Rows < 34000 || show.Rows > 35500 {
		t.Fatalf("Show rows = %g, want ~34798", show.Rows)
	}
	if c := show.Column("title"); c == nil || c.Distinct != 34798 {
		t.Fatalf("title column = %+v", c)
	}
}

func TestAllQueriesParseAndTranslate(t *testing.T) {
	s := AnnotatedSchema()
	for _, variant := range []struct {
		name  string
		build func(*xschema.Schema) (*xschema.Schema, error)
	}{
		{"all-inlined", pschema.AllInlined},
		{"outlined", pschema.InitialOutlined},
	} {
		t.Run(variant.name, func(t *testing.T) {
			ps, err := variant.build(s)
			if err != nil {
				t.Fatal(err)
			}
			cat, err := relational.Map(ps)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range QueryNames() {
				q := Query(name)
				sq, err := xquery.Translate(q, ps, cat)
				if err != nil {
					t.Errorf("%s: %v", name, err)
					continue
				}
				if len(sq.Blocks) == 0 {
					t.Errorf("%s: no blocks", name)
				}
			}
		})
	}
}

func TestWorkloads(t *testing.T) {
	if got := len(LookupWorkload().Entries); got != 5 {
		t.Errorf("lookup workload size = %d", got)
	}
	if got := len(PublishWorkload().Entries); got != 3 {
		t.Errorf("publish workload size = %d", got)
	}
	w := MixedWorkload(0.25)
	if tw := w.TotalWeight(); tw < 0.999 || tw > 1.001 {
		t.Errorf("mixed workload total weight = %g", tw)
	}
	if got := W1().TotalWeight(); got < 0.999 || got > 1.001 {
		t.Errorf("W1 weight = %g", got)
	}
	if got := W2().TotalWeight(); got < 0.999 || got > 1.001 {
		t.Errorf("W2 weight = %g", got)
	}
}

func TestGenerateValidatesAgainstSchema(t *testing.T) {
	doc := Generate(GenOptions{Shows: 40, Seed: 7})
	s := Schema()
	if err := s.ValidateDocument(doc); err != nil {
		t.Fatalf("generated data invalid: %v", err)
	}
}

func TestGenerateMatchesStatisticsShape(t *testing.T) {
	doc := Generate(GenOptions{Shows: 400, Seed: 11})
	collected := xstats.Collect(doc)
	shows := collected.Count("imdb", "show")
	if shows != 400 {
		t.Fatalf("shows = %g", shows)
	}
	// Ratios should be near Appendix A: directors ~0.754x, actors ~4.76x.
	directors := collected.Count("imdb", "director")
	if ratio := directors / shows; ratio < 0.6 || ratio > 0.9 {
		t.Errorf("director ratio = %g, want ~0.75", ratio)
	}
	actors := collected.Count("imdb", "actor")
	if ratio := actors / shows; ratio < 4 || ratio > 5.5 {
		t.Errorf("actor ratio = %g, want ~4.76", ratio)
	}
	akas := collected.Count("imdb", "show", "aka")
	if ratio := akas / shows; ratio < 0.2 || ratio > 0.6 {
		t.Errorf("aka ratio = %g, want ~0.39", ratio)
	}
	episodes := collected.Count("imdb", "show", "episodes")
	seasons := collected.Count("imdb", "show", "seasons")
	if seasons == 0 {
		t.Fatal("no TV shows generated")
	}
	if ratio := episodes / seasons; ratio < 6 || ratio > 12 {
		t.Errorf("episodes per TV show = %g, want ~8.9", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenOptions{Shows: 20, Seed: 5})
	b := Generate(GenOptions{Shows: 20, Seed: 5})
	if a.Size() != b.Size() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Size(), b.Size())
	}
}

func TestGenerateNYTFraction(t *testing.T) {
	doc := Generate(GenOptions{Shows: 300, Seed: 3, ReviewsPerShow: 3, NYTFraction: 0.5})
	nyt, other := 0, 0
	for _, show := range doc.ChildrenNamed("show") {
		for _, r := range show.ChildrenNamed("reviews") {
			if len(r.Children) == 0 {
				continue
			}
			if r.Children[0].Name == "nyt" {
				nyt++
			} else {
				other++
			}
		}
	}
	total := nyt + other
	if total < 500 {
		t.Fatalf("too few reviews: %d", total)
	}
	frac := float64(nyt) / float64(total)
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("nyt fraction = %g, want ~0.5", frac)
	}
}
