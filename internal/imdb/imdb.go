// Package imdb embeds the paper's experimental application: the IMDB
// schema of Appendix B, the data statistics of Appendix A, the query
// workloads of Appendix C and Figure 5, and a synthetic data generator
// whose output matches the Appendix A statistics at a configurable scale
// (the paper used data derived from the real Internet Movie Database,
// which is substituted here — see DESIGN.md).
package imdb

import (
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// SchemaText is the Appendix B schema in XML Query Algebra notation. Two
// deviations from the appendix figure, both required by the appendix's
// own statistics: aka repeats {0,*} (13,641 akas over 34,798 shows), and
// info and the wildcard inside directed are optional (50,000 infos over
// 105,004 directed entries).
const SchemaText = `
type IMDB = imdb [ Show{0,*}, Director{0,*}, Actor{0,*} ]
type Show = show [ @type[ String ],
    title [ String ],
    year [ Integer ],
    aka [ String ]{0,*},
    reviews [ ~[ String ] ]{0,*},
    ( box_office [ Integer ], video_sales [ Integer ]
    | seasons [ Integer ], description [ String ],
      episodes [ name[ String ], guest_director[ String ] ]{0,*} ) ]
type Director = director [ name [ String ],
    directed [ title[ String ], year[ Integer ],
               info[ String ]?, (~[ String ])? ]{0,*} ]
type Actor = actor [ name [ String ],
    played [ title[ String ], year[ Integer ], character[ String ],
             order_of_appearance[ Integer ],
             award [ result[ String ], award_name[ String ] ]{0,5} ]{0,*},
    biography [ birthday[ String ], text[ String ] ]? ]
`

// StatsText is the Appendix A statistics table, verbatim.
const StatsText = `
(["imdb"], STcnt(1));
(["imdb";"director"], STcnt(26251));
(["imdb";"director";"name"], STsize(40));
(["imdb";"director";"directed"], STcnt(105004));
(["imdb";"director";"directed";"title"], STsize(40));
(["imdb";"director";"directed";"year"], STbase(1800,2100,300));
(["imdb";"director";"directed";"info"], STcnt(50000));
(["imdb";"director";"directed";"info"], STsize(100));
(["imdb";"director";"directed";"TILDE"], STsize(255));
(["imdb";"show"], STcnt(34798));
(["imdb";"show";"title"], STsize(50));
(["imdb";"show";"year"], STbase(1800,2100,300));
(["imdb";"show";"aka"], STcnt(13641));
(["imdb";"show";"aka"], STsize(40));
(["imdb";"show";"type"], STsize(8));
(["imdb";"show";"reviews"], STcnt(11250));
(["imdb";"show";"reviews";"TILDE"], STsize(800));
(["imdb";"show";"box_office"], STcnt(7000));
(["imdb";"show";"box_office"], STbase(10000,100000000,7000));
(["imdb";"show";"video_sales"], STcnt(7000));
(["imdb";"show";"video_sales"], STbase(10000,100000000,7000));
(["imdb";"show";"seasons"], STcnt(3500));
(["imdb";"show";"description"], STsize(120));
(["imdb";"show";"episodes"], STcnt(31250));
(["imdb";"show";"episodes";"name"], STsize(40));
(["imdb";"show";"episodes";"guest_director"], STsize(40));
(["imdb";"actor"], STcnt(165786));
(["imdb";"actor";"name"], STsize(40));
(["imdb";"actor";"played"], STcnt(663144));
(["imdb";"actor";"played";"title"], STsize(40));
(["imdb";"actor";"played";"year"], STbase(1800,2100,200));
(["imdb";"actor";"played";"character"], STsize(40));
(["imdb";"actor";"played";"order_of_appearance"], STbase(1,300,300));
(["imdb";"actor";"played";"award";"result"], STsize(3));
(["imdb";"actor";"played";"award";"award_name"], STsize(40));
(["imdb";"actor";"biography";"birthday"], STsize(10));
(["imdb";"actor";"biography";"text"], STcnt(20000));
(["imdb";"actor";"biography";"text"], STsize(30));
`

// supplementalStats adds distinct-value counts the appendix leaves
// implicit but the selectivity model needs: titles and names are
// near-unique, characters nearly so, and guest directors repeat. (For
// string columns only the third STbase argument — the distinct count —
// matters.)
const supplementalStats = `
(["imdb";"show";"title"], STbase(0,0,34798));
(["imdb";"show";"seasons"], STbase(1,60,50));
(["imdb";"show";"episodes";"name"], STbase(0,0,31250));
(["imdb";"show";"episodes";"guest_director"], STbase(0,0,5000));
(["imdb";"show";"aka"], STbase(0,0,13641));
(["imdb";"show";"description"], STbase(0,0,3500));
(["imdb";"show";"reviews";"TILDE"], STbase(0,0,11250));
(["imdb";"director";"name"], STbase(0,0,26251));
(["imdb";"director";"directed";"title"], STbase(0,0,34798));
(["imdb";"director";"directed";"info"], STbase(0,0,50000));
(["imdb";"actor";"name"], STbase(0,0,165786));
(["imdb";"actor";"played";"title"], STbase(0,0,34798));
(["imdb";"actor";"played";"character"], STbase(0,0,400000));
(["imdb";"actor";"played";"award";"result"], STbase(0,0,3));
(["imdb";"actor";"played";"award";"award_name"], STbase(0,0,200));
(["imdb";"actor";"biography";"birthday"], STbase(0,0,40000));
(["imdb";"actor";"biography";"text"], STbase(0,0,20000));
(["imdb";"show";"type"], STbase(0,0,2));
`

// Schema parses the IMDB schema.
func Schema() *xschema.Schema { return xschema.MustParseSchema(SchemaText) }

// Stats parses the IMDB statistics: Appendix A plus the distinct counts
// the selectivity model needs.
func Stats() *xstats.Set {
	return xstats.MustParse(StatsText + supplementalStats)
}

// AnnotatedSchema returns the IMDB schema with statistics pushed onto the
// type tree.
func AnnotatedSchema() *xschema.Schema {
	s := Schema()
	if err := xstats.Annotate(s, Stats()); err != nil {
		panic(err)
	}
	return s
}

// queriesText holds Appendix C in this repository's XQuery subset, one
// entry per query.
var queriesText = map[string]string{
	// C.1 Lookup queries.
	"Q1": `FOR $v IN document("imdbdata")/imdb/show WHERE $v/title = c1
	       RETURN $v/title, $v/year, $v/type`,
	"Q2": `FOR $v IN document("imdbdata")/imdb/show WHERE $v/title = c1
	       RETURN $v/title, $v/year`,
	"Q3": `FOR $v IN document("imdbdata")/imdb/show WHERE $v/year = c1
	       RETURN $v/title, $v/year`,
	"Q4": `FOR $v IN document("imdbdata")/imdb/show WHERE $v/title = c1
	       RETURN $v/title, $v/year, $v/description`,
	"Q5": `FOR $v IN document("imdbdata")/imdb/show WHERE $v/title = c1
	       RETURN $v/title, $v/year, $v/box_office`,
	"Q6": `FOR $v IN document("imdbdata")/imdb/show WHERE $v/title = c1
	       RETURN $v/title, $v/year, $v/box_office, $v/description`,
	"Q7": `FOR $v IN document("imdbdata")/imdb/show
	       RETURN <result> $v/title, $v/year
	         FOR $e IN $v/episodes WHERE $e/guest_director = c1 RETURN $e/name
	       </result>`,
	"Q8": `FOR $v IN document("imdbdata")/imdb/actor WHERE $v/name = c1
	       RETURN $v/biography/birthday`,
	"Q9": `FOR $v IN document("imdbdata")/imdb/actor
	       RETURN <result> $v/name
	         FOR $b IN $v/biography WHERE $b/birthday = c1 RETURN $b/text
	       </result>`,
	"Q10": `FOR $v IN document("imdbdata")/imdb/actor
	        RETURN <result> $v/name
	          FOR $b IN $v/biography WHERE $b/birthday = c1 RETURN $b/text, $b/birthday
	        </result>`,
	"Q11": `FOR $v IN document("imdbdata")/imdb/actor
	        RETURN <result> $v/name
	          FOR $p IN $v/played WHERE $p/character = c1 RETURN $p/order_of_appearance
	        </result>`,
	"Q12": `FOR $i IN document("imdbdata")/imdb, $a IN $i/actor, $m1 IN $a/played,
	            $d IN $i/director, $m2 IN $d/directed
	        WHERE $a/name = $d/name AND $m1/title = $m2/title
	        RETURN $a/name, $m1/title, $m1/year`,
	"Q13": `FOR $i IN document("imdbdata")/imdb, $s IN $i/show, $a IN $i/actor,
	            $m1 IN $a/played, $d IN $i/director, $m2 IN $d/directed
	        WHERE $a/name = $d/name AND $m1/title = $m2/title AND $m1/title = $s/title
	        RETURN <result> $a/name, $m1/title, $m1/year
	          FOR $k IN $s/aka RETURN $k
	        </result>`,
	"Q14": `FOR $i IN document("imdbdata")/imdb, $a IN $i/actor, $m1 IN $a/played,
	            $d IN $i/director, $m2 IN $d/directed
	        WHERE $a/name = c1 AND $m1/title = $m2/title
	        RETURN $d/name, $m1/title, $m1/year`,
	// C.2 Publish queries.
	"Q15": `FOR $a IN document("imdbdata")/imdb/actor RETURN $a`,
	"Q16": `FOR $s IN document("imdbdata")/imdb/show RETURN $s`,
	"Q17": `FOR $d IN document("imdbdata")/imdb/director RETURN $d`,
	"Q18": `FOR $a IN document("imdbdata")/imdb/actor WHERE $a/name = c1 RETURN $a`,
	"Q19": `FOR $s IN document("imdbdata")/imdb/show WHERE $s/title = c1 RETURN $s`,
	"Q20": `FOR $d IN document("imdbdata")/imdb/director WHERE $d/name = c1 RETURN $d`,

	// Figure 5 queries (Section 2's motivating workloads W1/W2).
	"F1": `FOR $v IN imdb/show WHERE $v/year = 1999
	       RETURN $v/title, $v/year, $v/reviews/nyt`,
	"F2": `FOR $v IN imdb/show RETURN $v`,
	"F3": `FOR $v IN imdb/show WHERE $v/title = c2 RETURN $v/description`,
	"F4": `FOR $v IN imdb/show
	       RETURN <result> $v/title, $v/year
	         FOR $e IN $v/episodes WHERE $e/guest_director = c4 RETURN $e/name
	       </result>`,
}

// Query returns a named workload query (Q1..Q20, F1..F4), parsed and
// labeled. It panics on unknown names (the name set is fixed).
func Query(name string) *xquery.Query {
	src, ok := queriesText[name]
	if !ok {
		panic("imdb: unknown query " + name)
	}
	q := xquery.MustParse(src)
	q.Name = name
	return q
}

// QueryNames lists all embedded queries in order.
func QueryNames() []string {
	return []string{
		"Q1", "Q2", "Q3", "Q4", "Q5", "Q6", "Q7", "Q8", "Q9", "Q10",
		"Q11", "Q12", "Q13", "Q14", "Q15", "Q16", "Q17", "Q18", "Q19", "Q20",
		"F1", "F2", "F3", "F4",
	}
}

// LookupWorkload is the Section 5.2 lookup workload: Q8, Q9, Q11, Q12,
// Q13, equally weighted.
func LookupWorkload() *xquery.Workload {
	w := &xquery.Workload{}
	for _, name := range []string{"Q8", "Q9", "Q11", "Q12", "Q13"} {
		w.Add(Query(name), 1)
	}
	return w
}

// PublishWorkload is the Section 5.2 publish workload: Q15, Q16, Q17.
func PublishWorkload() *xquery.Workload {
	w := &xquery.Workload{}
	for _, name := range []string{"Q15", "Q16", "Q17"} {
		w.Add(Query(name), 1)
	}
	return w
}

// MixedWorkload blends lookup and publish queries in the ratio
// k : (1-k), as in the Figure 11 sensitivity experiment.
func MixedWorkload(k float64) *xquery.Workload {
	w := &xquery.Workload{}
	lookup := []string{"Q8", "Q9", "Q11", "Q12", "Q13"}
	publish := []string{"Q15", "Q16", "Q17"}
	for _, name := range lookup {
		w.Add(Query(name), k/float64(len(lookup)))
	}
	for _, name := range publish {
		w.Add(Query(name), (1-k)/float64(len(publish)))
	}
	return w
}

// W1 is the Section 2 publishing-heavy workload over the Figure 5
// queries: {F1: 0.4, F2: 0.4, F3: 0.1, F4: 0.1}.
func W1() *xquery.Workload {
	w := &xquery.Workload{}
	w.Add(Query("F1"), 0.4)
	w.Add(Query("F2"), 0.4)
	w.Add(Query("F3"), 0.1)
	w.Add(Query("F4"), 0.1)
	return w
}

// W2 is the Section 2 lookup-heavy workload:
// {F1: 0.1, F2: 0.1, F3: 0.4, F4: 0.4}.
func W2() *xquery.Workload {
	w := &xquery.Workload{}
	w.Add(Query("F1"), 0.1)
	w.Add(Query("F2"), 0.1)
	w.Add(Query("F3"), 0.4)
	w.Add(Query("F4"), 0.4)
	return w
}
