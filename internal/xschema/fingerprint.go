package xschema

import (
	"encoding/binary"
	"encoding/hex"
	"math"
	"math/bits"
	"sort"
)

// Fingerprint is a 128-bit canonical structural hash of a schema. Two
// schemas receive the same fingerprint exactly when they are Equivalent:
// same reachable structure and statistics annotations, regardless of how
// the named types are called or in which order they are defined. It is
// the cache key of the search-wide cost memoization (core.CostCache) —
// workload cost depends only on the structure and statistics of a
// p-schema, never on its type names, so alpha-equivalent configurations
// may share one cache entry.
type Fingerprint [16]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// CanonicalOrder returns the named types reachable from the root in
// first-visit preorder: the root first, then referenced types in the
// order their references appear in already-visited bodies. The order
// depends only on the schema's structure — not on definition order or on
// what the types are called — which is what makes the fingerprint
// canonical.
func (s *Schema) CanonicalOrder() []string {
	order := make([]string, 0, len(s.Names))
	seen := make(map[string]bool, len(s.Names))
	var visitName func(name string)
	visitName = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		order = append(order, name)
		t, ok := s.Types[name]
		if !ok {
			return
		}
		Visit(t, func(t Type) {
			if r, ok := t.(*Ref); ok {
				visitName(r.Name)
			}
		})
	}
	visitName(s.Root)
	return order
}

// Fingerprint computes the schema's canonical fingerprint in one pass:
// each reachable named type's body is hashed in canonical order, with Ref
// nodes encoded as canonical indices (name-insensitive) and wildcard
// exclusion lists sorted (order-normalized). Statistics annotations
// (scalar sizes/bounds/distincts/histograms, repetition counts, choice
// fractions) are part of the hash, so equivalent rewrites with different
// statistics remain distinct. Cost is O(size of the reachable schema);
// no intermediate serialization is built (unlike the former
// fingerprint(s) = s.String() approach).
func (s *Schema) Fingerprint() Fingerprint {
	order := s.CanonicalOrder()
	canon := make(map[string]int, len(order))
	for i, n := range order {
		canon[n] = i
	}
	var w hashWriter
	w.h = newFNV128()
	for _, name := range order {
		w.byte('T')
		if t, ok := s.Types[name]; ok {
			w.hashType(t, canon)
		} else {
			// Dangling root/ref in a not-yet-validated schema.
			w.byte('?')
			w.str(name)
		}
	}
	return w.h.sum()
}

// TypeDigests returns a shallow digest for every defined type: the hash
// of the definition body alone, with Ref nodes encoded by target name
// (never followed). A definition's digest changes exactly when its own
// body — structure or statistics annotations — changes; rewriting one
// type leaves every other definition's digest intact. This is the
// invalidation unit of the incremental evaluation pipeline: the
// relational mapper memoizes column templates per digest, and the
// per-query cost cache keys on the digests of the types a translation
// examined. (Subtree digests would be useless there: every query
// examines the root type, so any rewrite anywhere would invalidate
// everything.)
func (s *Schema) TypeDigests() map[string]Fingerprint {
	return s.TypeDigestsInto(make(map[string]Fingerprint, len(s.Types)))
}

// TypeDigestsInto is TypeDigests writing into a caller-provided map
// (cleared first), so per-candidate evaluation loops can recycle one
// map instead of allocating a fresh one per evaluation.
func (s *Schema) TypeDigestsInto(out map[string]Fingerprint) map[string]Fingerprint {
	clear(out)
	for name, t := range s.Types {
		out[name] = typeDigest(t)
	}
	return out
}

// typeDigest hashes one definition body shallowly (Refs by name).
func typeDigest(t Type) Fingerprint {
	var w hashWriter
	w.h = newFNV128()
	// A nil canon map sends every Ref through the by-name ('U') encoding.
	w.hashType(t, nil)
	return w.h.sum()
}

// NamedDigest is the name-sensitive counterpart of Fingerprint: it
// hashes the root name, the definition order and every definition with
// its name (Refs by name). Two schemas with equal NamedDigest render
// byte-identical String() output and map to byte-identical DDL — which
// Fingerprint, being alpha-invariant, deliberately does not guarantee.
// It keys the evaluator's materialized-configuration cache, where the
// cached catalog's table names must match the requesting schema exactly.
func (s *Schema) NamedDigest() Fingerprint {
	var w hashWriter
	w.h = newFNV128()
	w.str(s.Root)
	for _, name := range s.Names {
		w.byte('T')
		w.str(name)
		if t, ok := s.Types[name]; ok {
			w.hashType(t, nil)
		} else {
			w.byte('?')
		}
	}
	return w.h.sum()
}

// fnv128 is an inline FNV-128a state, byte-compatible with the stdlib
// hash/fnv.New128a but a plain value: no hash.Hash interface, no
// io.Writer indirection, so hashing a schema allocates nothing beyond
// the result. Fingerprinting runs once per candidate configuration in
// the search inner loop, which is why it is hand-rolled here.
type fnv128 struct{ hi, lo uint64 }

const (
	fnvOffset128Hi   = 0x6c62272e07bb0142
	fnvOffset128Lo   = 0x62b821756295c58d
	fnvPrime128Lo    = 0x13b
	fnvPrime128Shift = 24
)

func newFNV128() fnv128 { return fnv128{hi: fnvOffset128Hi, lo: fnvOffset128Lo} }

func (h *fnv128) byte(c byte) {
	h.lo ^= uint64(c)
	s0, s1 := bits.Mul64(fnvPrime128Lo, h.lo)
	s0 += h.lo<<fnvPrime128Shift + fnvPrime128Lo*h.hi
	h.lo, h.hi = s1, s0
}

func (h *fnv128) bytes(p []byte) {
	for _, c := range p {
		h.byte(c)
	}
}

func (h *fnv128) string(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// sum renders the state big-endian, matching fnv.New128a().Sum(nil).
func (h *fnv128) sum() Fingerprint {
	var fp Fingerprint
	binary.BigEndian.PutUint64(fp[:8], h.hi)
	binary.BigEndian.PutUint64(fp[8:], h.lo)
	return fp
}

// Hash128 exposes the allocation-free FNV-128a state to sibling
// packages that derive Fingerprint-compatible keys (e.g. the
// evaluator's name-sensitive configuration key) without going through
// hash.Hash and its heap-escaping io.Writer path. The zero value is
// not ready; start with NewHash128.
type Hash128 struct{ h fnv128 }

// NewHash128 returns a fresh FNV-128a state.
func NewHash128() Hash128 { return Hash128{h: newFNV128()} }

// Byte folds one byte into the state.
func (h *Hash128) Byte(c byte) { h.h.byte(c) }

// Bytes folds a byte slice into the state.
func (h *Hash128) Bytes(p []byte) { h.h.bytes(p) }

// Str folds a string into the state without converting it to bytes.
func (h *Hash128) Str(s string) { h.h.string(s) }

// Sum returns the current state as a Fingerprint.
func (h *Hash128) Sum() Fingerprint { return h.h.sum() }

// hashWriter serializes type trees into a hash state with an unambiguous
// tagged encoding (every node writes a kind byte, every variable-length
// field a length prefix).
type hashWriter struct {
	h   fnv128
	buf [binary.MaxVarintLen64]byte
}

func (w *hashWriter) byte(b byte) { w.h.byte(b) }

func (w *hashWriter) uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.h.bytes(w.buf[:n])
}

func (w *hashWriter) varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.h.bytes(w.buf[:n])
}

func (w *hashWriter) float(v float64) {
	binary.LittleEndian.PutUint64(w.buf[:8], math.Float64bits(v))
	w.h.bytes(w.buf[:8])
}

func (w *hashWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	w.h.string(s)
}

func (w *hashWriter) hashType(t Type, canon map[string]int) {
	switch t := t.(type) {
	case *Scalar:
		w.byte('S')
		w.uvarint(uint64(t.Kind))
		w.varint(int64(t.Size))
		w.varint(t.Min)
		w.varint(t.Max)
		w.varint(t.Distinct)
		w.uvarint(uint64(len(t.Hist)))
		for _, b := range t.Hist {
			w.float(b)
		}
	case *Element:
		w.byte('E')
		w.str(t.Name)
		w.hashType(t.Content, canon)
	case *Attribute:
		w.byte('A')
		w.str(t.Name)
		w.hashType(t.Content, canon)
	case *Wildcard:
		w.byte('W')
		excl := t.Exclude
		if !sort.StringsAreSorted(excl) {
			excl = append([]string(nil), excl...)
			sort.Strings(excl)
		}
		w.uvarint(uint64(len(excl)))
		for _, e := range excl {
			w.str(e)
		}
		w.hashType(t.Content, canon)
	case *Sequence:
		// Sequence composition is associative — (a, (b, c)) has the same
		// content model, printing and relational mapping as (a, b, c) — so
		// nested sequences are flattened and singletons unwrapped before
		// hashing. The flattening copy is only paid when an item really is
		// a nested sequence: hashing runs once per candidate per type in
		// the search inner loop, and the common case is already flat.
		flat := t.Items
		if hasNestedSeq(flat) {
			flat = flattenSeqItems(flat, nil)
		}
		if len(flat) == 1 {
			w.hashType(flat[0], canon)
			return
		}
		w.byte('Q')
		w.uvarint(uint64(len(flat)))
		for _, it := range flat {
			w.hashType(it, canon)
		}
	case *Choice:
		// Union composition without fractions is associative: the uniform
		// split and every structural consumer (matching, mapping, update
		// resolution) treat (a | (b | c)) like (a | b | c), so fraction-less
		// nesting is flattened before hashing — mirroring the sequence
		// normalization above. Annotated fractions pin the nesting (they
		// are per-alternative), so fractioned choices hash as-is.
		alts := FlattenChoice(t)
		w.byte('C')
		w.uvarint(uint64(len(alts)))
		for _, a := range alts {
			w.hashType(a, canon)
		}
		w.uvarint(uint64(len(t.Fractions)))
		for _, f := range t.Fractions {
			w.float(f)
		}
	case *Repeat:
		w.byte('R')
		w.varint(int64(t.Min))
		w.varint(int64(t.Max))
		w.float(t.AvgCount)
		w.hashType(t.Inner, canon)
	case *Ref:
		if idx, ok := canon[t.Name]; ok {
			w.byte('F')
			w.uvarint(uint64(idx))
		} else {
			// Undefined reference: fall back to the raw name.
			w.byte('U')
			w.str(t.Name)
		}
	case *Empty:
		w.byte('Z')
	}
}

// Equivalent reports whether two schemas have identical reachable
// structure and statistics, up to renaming of the named types and up to
// definition order — exactly the relation Fingerprint captures (two
// schemas fingerprint equal iff they are Equivalent, modulo hash
// collisions).
func Equivalent(a, b *Schema) bool {
	ao, bo := a.CanonicalOrder(), b.CanonicalOrder()
	if len(ao) != len(bo) {
		return false
	}
	amap := make(map[string]int, len(ao))
	bmap := make(map[string]int, len(bo))
	for i := range ao {
		amap[ao[i]] = i
		bmap[bo[i]] = i
	}
	for i := range ao {
		at, aok := a.Types[ao[i]]
		bt, bok := b.Types[bo[i]]
		if aok != bok {
			return false
		}
		if aok && !equalCanonical(at, bt, amap, bmap) {
			return false
		}
	}
	return true
}

// hasNestedSeq reports whether any item is itself a sequence (the only
// case flattening changes anything).
func hasNestedSeq(items []Type) bool {
	for _, it := range items {
		if _, ok := it.(*Sequence); ok {
			return true
		}
	}
	return false
}

// flattenSeqItems appends items to out, expanding nested sequences.
func flattenSeqItems(items []Type, out []Type) []Type {
	for _, it := range items {
		if sq, ok := it.(*Sequence); ok {
			out = flattenSeqItems(sq.Items, out)
		} else {
			out = append(out, it)
		}
	}
	return out
}

// FlattenChoice returns the choice's alternatives with nested
// fraction-less choices spliced into the list (singleton sequence
// wrappers looked through, like hashType does). A choice that carries
// fractions keeps its alternatives untouched — the fractions are
// per-alternative, so its nesting is meaningful. Alternatives are never
// unwrapped below the splice (a single non-choice alternative stays a
// one-alternative union: it maps differently from its bare content).
//
// The uniform split of the relational mapping's edge walk uses the same
// flattened view, which is what keeps the fingerprint's associativity
// normalization cost-sound: two schemas that flatten identically are
// costed identically.
func FlattenChoice(t *Choice) []Type {
	if len(t.Fractions) != 0 {
		return t.Alts
	}
	if !hasNestedChoice(t.Alts) {
		return t.Alts
	}
	return flattenChoiceAlts(t.Alts, make([]Type, 0, len(t.Alts)+2))
}

func hasNestedChoice(alts []Type) bool {
	for _, a := range alts {
		if ch, ok := normalizeSeq(a).(*Choice); ok && len(ch.Fractions) == 0 {
			return true
		}
	}
	return false
}

func flattenChoiceAlts(alts []Type, out []Type) []Type {
	for _, a := range alts {
		if ch, ok := normalizeSeq(a).(*Choice); ok && len(ch.Fractions) == 0 {
			out = flattenChoiceAlts(ch.Alts, out)
		} else {
			out = append(out, a)
		}
	}
	return out
}

// normalizeSeq collapses sequence nesting (and singleton sequences) the
// same way hashType does, so Equivalent matches Fingerprint.
func normalizeSeq(t Type) Type {
	sq, ok := t.(*Sequence)
	if !ok {
		return t
	}
	flat := flattenSeqItems(sq.Items, nil)
	if len(flat) == 1 {
		return flat[0]
	}
	return &Sequence{Items: flat}
}

// normalizeChoice flattens fraction-less nested choices the same way
// hashType does, so Equivalent matches Fingerprint.
func normalizeChoice(t Type) Type {
	ch, ok := t.(*Choice)
	if !ok || len(ch.Fractions) != 0 {
		return t
	}
	flat := FlattenChoice(ch)
	if len(flat) == len(ch.Alts) {
		return t
	}
	return &Choice{Alts: flat}
}

// equalCanonical compares two type trees including statistics, with Ref
// targets compared by canonical index (so type names do not matter) and
// sequence and fraction-less choice nesting normalized.
func equalCanonical(a, b Type, amap, bmap map[string]int) bool {
	a, b = normalizeSeq(a), normalizeSeq(b)
	a, b = normalizeChoice(a), normalizeChoice(b)
	switch a := a.(type) {
	case *Scalar:
		b, ok := b.(*Scalar)
		if !ok || a.Kind != b.Kind || a.Size != b.Size || a.Min != b.Min ||
			a.Max != b.Max || a.Distinct != b.Distinct || len(a.Hist) != len(b.Hist) {
			return false
		}
		for i := range a.Hist {
			if math.Float64bits(a.Hist[i]) != math.Float64bits(b.Hist[i]) {
				return false
			}
		}
		return true
	case *Element:
		b, ok := b.(*Element)
		return ok && a.Name == b.Name && equalCanonical(a.Content, b.Content, amap, bmap)
	case *Attribute:
		b, ok := b.(*Attribute)
		return ok && a.Name == b.Name && equalCanonical(a.Content, b.Content, amap, bmap)
	case *Wildcard:
		b, ok := b.(*Wildcard)
		if !ok || len(a.Exclude) != len(b.Exclude) {
			return false
		}
		ae := append([]string(nil), a.Exclude...)
		be := append([]string(nil), b.Exclude...)
		sort.Strings(ae)
		sort.Strings(be)
		for i := range ae {
			if ae[i] != be[i] {
				return false
			}
		}
		return equalCanonical(a.Content, b.Content, amap, bmap)
	case *Sequence:
		b, ok := b.(*Sequence)
		if !ok || len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !equalCanonical(a.Items[i], b.Items[i], amap, bmap) {
				return false
			}
		}
		return true
	case *Choice:
		b, ok := b.(*Choice)
		if !ok || len(a.Alts) != len(b.Alts) || len(a.Fractions) != len(b.Fractions) {
			return false
		}
		for i := range a.Alts {
			if !equalCanonical(a.Alts[i], b.Alts[i], amap, bmap) {
				return false
			}
		}
		for i := range a.Fractions {
			if math.Float64bits(a.Fractions[i]) != math.Float64bits(b.Fractions[i]) {
				return false
			}
		}
		return true
	case *Repeat:
		b, ok := b.(*Repeat)
		return ok && a.Min == b.Min && a.Max == b.Max &&
			math.Float64bits(a.AvgCount) == math.Float64bits(b.AvgCount) &&
			equalCanonical(a.Inner, b.Inner, amap, bmap)
	case *Ref:
		b, ok := b.(*Ref)
		if !ok {
			return false
		}
		ai, aok := amap[a.Name]
		bi, bok := bmap[b.Name]
		if aok != bok {
			return false
		}
		if !aok {
			return a.Name == b.Name
		}
		return ai == bi
	case *Empty:
		_, ok := b.(*Empty)
		return ok
	default:
		return false
	}
}
