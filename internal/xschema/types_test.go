package xschema

import (
	"math/rand"
	"strings"
	"testing"

	"legodb/internal/xmltree"
)

func TestTypeStringRenderings(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`a[ String ]`, "a[ String ]"},
		{`@id[ Integer ]`, "@id[ Integer"},
		{`~[ String ]`, "~[ String ]"},
		{`(~!nyt)[ String ]`, "(~!nyt)[ String ]"},
		{`A | B`, "( A | B )"},
		{`A, B`, "A, B"},
		{`A?`, "A?"},
		{`A*`, "A*"},
		{`A+`, "A+"},
		{`A{2,5}`, "A{2,5}"},
		{`A{2,*}`, "A{2,*}"},
		{`(A, B)*`, "(A, B)*"},
	}
	schemaDefs := `
type A = x[ String ]
type B = y[ String ]
`
	for _, c := range cases {
		full := schemaDefs + "type T = " + c.src
		s, err := ParseSchema(full)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		got := s.Types["T"].String()
		if !strings.Contains(got, c.want) {
			t.Errorf("String(%q) = %q, want substring %q", c.src, got, c.want)
		}
	}
}

func TestScalarStatString(t *testing.T) {
	s := &Scalar{Kind: IntegerKind, Size: 4, Min: 1, Max: 9, Distinct: 5}
	if got := s.String(); got != "Integer<#4,#1,#9,#5>" {
		t.Errorf("integer stats = %q", got)
	}
	str := &Scalar{Kind: StringKind, Size: 40, Distinct: 7}
	if got := str.String(); got != "String<#40,#7>" {
		t.Errorf("string stats = %q", got)
	}
	bare := &Scalar{Kind: StringKind}
	if got := bare.String(); got != "String" {
		t.Errorf("bare = %q", got)
	}
}

func TestDeepEqualNegatives(t *testing.T) {
	parse := func(src string) Type {
		typ, err := ParseType(src)
		if err != nil {
			t.Fatalf("ParseType(%q): %v", src, err)
		}
		return typ
	}
	pairs := [][2]string{
		{`a[ String ]`, `b[ String ]`},
		{`a[ String ]`, `a[ Integer ]`},
		{`@x[ String ]`, `@y[ String ]`},
		{`~[ String ]`, `(~!a)[ String ]`},
		{`A, B`, `A`},
		{`A | B`, `A, B`},
		{`A{1,2}`, `A{1,3}`},
		{`a[ String ]`, `A`},
	}
	defs := `type A = x[String]
type B = y[String]
`
	_ = defs
	for _, p := range pairs {
		if DeepEqual(parse(p[0]), parse(p[1])) {
			t.Errorf("DeepEqual(%q, %q) = true", p[0], p[1])
		}
	}
	// Stats are ignored.
	if !DeepEqual(parse(`a[ String<#5,#2> ]`), parse(`a[ String ]`)) {
		t.Error("DeepEqual should ignore statistics")
	}
}

func TestCloneAllNodeKinds(t *testing.T) {
	src := `type T = e[ @a[ String<#3,#2> ], (~!x)[ Integer ], (A | B){2,7}, () ]
type A = p[ String ]
type B = q[ String ]`
	s := MustParseSchema(src)
	cp := Clone(s.Types["T"])
	if !DeepEqual(cp, s.Types["T"]) {
		t.Fatalf("clone differs: %s vs %s", cp, s.Types["T"])
	}
	// Mutating the clone must not touch the original.
	cp.(*Element).Content.(*Sequence).Items[0].(*Attribute).Name = "z"
	if s.Types["T"].(*Element).Content.(*Sequence).Items[0].(*Attribute).Name != "a" {
		t.Fatal("clone shares attribute")
	}
}

func TestValidateErrorBranches(t *testing.T) {
	s := NewSchema("Root")
	if err := s.Validate(); err == nil {
		t.Error("undefined root accepted")
	}
	s.Define("Root", &Element{Name: "r", Content: &Ref{Name: "Nope"}})
	if err := s.Validate(); err == nil {
		t.Error("dangling ref accepted")
	}
	s2 := NewSchema("Root")
	s2.Define("Root", &Element{Name: "r", Content: &Attribute{Name: "a", Content: &Element{Name: "x", Content: &Scalar{}}}})
	if err := s2.Validate(); err == nil {
		t.Error("non-scalar attribute accepted")
	}
	s3 := NewSchema("Root")
	s3.Define("Root", &Element{Name: "r", Content: &Repeat{Inner: &Scalar{}, Min: 5, Max: 2}})
	if err := s3.Validate(); err == nil {
		t.Error("inverted repetition bounds accepted")
	}
}

func TestRemoveAndDefine(t *testing.T) {
	s := NewSchema("A")
	s.Define("A", &Empty{})
	s.Define("B", &Empty{})
	s.Remove("A")
	if _, ok := s.Lookup("A"); ok {
		t.Fatal("Remove failed")
	}
	if len(s.Names) != 1 || s.Names[0] != "B" {
		t.Fatalf("names = %v", s.Names)
	}
	s.Remove("A") // removing twice is a no-op
	s.Define("B", &Scalar{})
	if len(s.Names) != 1 {
		t.Fatal("redefinition duplicated name")
	}
}

func TestMatchesType(t *testing.T) {
	s := MustParseSchema(`
type Movie = show[ title[ String ], box_office[ Integer ] ]
type TV = show[ title[ String ], seasons[ Integer ] ]`)
	movie, _ := xmltree.ParseString(`<show><title>X</title><box_office>5</box_office></show>`)
	tv, _ := xmltree.ParseString(`<show><title>Y</title><seasons>3</seasons></show>`)
	mt, _ := s.Lookup("Movie")
	tt, _ := s.Lookup("TV")
	if !s.MatchesType(mt, movie) || s.MatchesType(mt, tv) {
		t.Error("Movie matching broken")
	}
	if !s.MatchesType(tt, tv) || s.MatchesType(tt, movie) {
		t.Error("TV matching broken")
	}
}

func TestParsePathHelper(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`imdb/show/title`, "imdb show title"},
		{`/imdb/show`, "imdb show"},
		{`document("x")/imdb`, "imdb"},
		{``, ""},
	}
	for _, c := range cases {
		got := strings.Join(ParsePath(c.src), " ")
		if got != c.want {
			t.Errorf("ParsePath(%q) = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestGeneratorRespectsBounds(t *testing.T) {
	s := MustParseSchema(`type R = r[ a[ String ]{2,4} ]`)
	for seed := int64(0); seed < 30; seed++ {
		g := NewGenerator(s, rand.New(rand.NewSource(seed)))
		doc, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		n := len(doc.ChildrenNamed("a"))
		if n < 2 || n > 4 {
			t.Fatalf("seed %d: %d occurrences, want 2..4", seed, n)
		}
	}
}

func TestGeneratorIntegerRanges(t *testing.T) {
	s := MustParseSchema(`type R = r[ v[ Integer<#4,#10,#20,#11> ] ]`)
	g := NewGenerator(s, rand.New(rand.NewSource(1)))
	for i := 0; i < 50; i++ {
		doc, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		v := doc.Child("v").Text
		if v < "10" && len(v) >= 2 {
			t.Fatalf("value %q below range", v)
		}
	}
}

func TestGeneratorWildcardExclusion(t *testing.T) {
	s := MustParseSchema(`type R = (~!nyt)[ String ]`)
	g := NewGenerator(s, rand.New(rand.NewSource(3)))
	for i := 0; i < 40; i++ {
		doc, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if doc.Name == "nyt" {
			t.Fatal("generator produced an excluded wildcard name")
		}
	}
}

func TestGeneratorChoiceFractions(t *testing.T) {
	s := MustParseSchema(`
type R = r[ (A | B) ]
type A = a[ String ]
type B = b[ String ]`)
	// Force a 90/10 split and verify the generator follows it roughly.
	r := s.Types["R"].(*Element)
	choice := r.Content.(*Choice)
	choice.Fractions = []float64{0.9, 0.1}
	g := NewGenerator(s, rand.New(rand.NewSource(5)))
	countA := 0
	const n = 300
	for i := 0; i < n; i++ {
		doc, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if doc.Child("a") != nil {
			countA++
		}
	}
	if frac := float64(countA) / n; frac < 0.8 || frac > 0.98 {
		t.Fatalf("A fraction = %g, want ~0.9", frac)
	}
}

func TestVisitCoversAllNodes(t *testing.T) {
	s := MustParseSchema(`type T = e[ @a[ String ], (~)[ Integer ], (A | B)*, x[ y[ String ] ] ]
type A = p[ String ]
type B = q[ String ]`)
	count := 0
	Visit(s.Types["T"], func(Type) { count++ })
	if count < 10 {
		t.Fatalf("Visit touched only %d nodes", count)
	}
}
