package xschema

import (
	"math/rand"
	"testing"
	"testing/quick"

	"legodb/internal/xmltree"
)

const showSchema = `
type Show = show [ @type[ String ],
    title[ String ],
    year[ Integer ],
    aka[ String ]{1,10},
    Review*,
    ( Movie | TV ) ]
type Review = review[ ~[ String ] ]
type Movie = box_office[ Integer ], video_sales[ Integer ]
type TV = seasons[ Integer ], description[ String ], Episode*
type Episode = episode[ name[ String ], guest_director[ String ] ]
`

func movieDoc() *xmltree.Node {
	show := xmltree.NewElement("show")
	show.SetAttr("type", "Movie")
	show.Append(
		xmltree.NewText("title", "Fugitive, The"),
		xmltree.NewText("year", "1993"),
		xmltree.NewText("aka", "Auf der Flucht"),
		xmltree.NewText("aka", "Fuggitivo, Il"),
		xmltree.NewElement("review").Append(xmltree.NewText("suntimes", "Two thumbs up!")),
		xmltree.NewText("box_office", "183752965"),
		xmltree.NewText("video_sales", "72450220"),
	)
	return show
}

func tvDoc() *xmltree.Node {
	show := xmltree.NewElement("show")
	show.SetAttr("type", "TV series")
	show.Append(
		xmltree.NewText("title", "X Files, The"),
		xmltree.NewText("year", "1994"),
		xmltree.NewText("aka", "Aux frontieres du Reel"),
		xmltree.NewText("seasons", "10"),
		xmltree.NewText("description", "A paranoic FBI agent"),
		xmltree.NewElement("episode").Append(
			xmltree.NewText("name", "Ghost in the Machine"),
			xmltree.NewText("guest_director", "Jerrold Freedman"),
		),
	)
	return show
}

func TestValidateMovieAndTV(t *testing.T) {
	s := MustParseSchema(showSchema)
	if err := s.ValidateDocument(movieDoc()); err != nil {
		t.Fatalf("movie: %v", err)
	}
	if err := s.ValidateDocument(tvDoc()); err != nil {
		t.Fatalf("tv: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	s := MustParseSchema(showSchema)

	noTitle := movieDoc()
	noTitle.Children = noTitle.Children[1:]
	if s.Valid(noTitle) {
		t.Error("missing required title accepted")
	}

	badYear := movieDoc()
	badYear.Child("year").Text = "not-a-year"
	if s.Valid(badYear) {
		t.Error("non-integer year accepted")
	}

	mixed := movieDoc()
	mixed.Append(xmltree.NewText("seasons", "3")) // movie + tv content
	if s.Valid(mixed) {
		t.Error("movie with TV fields accepted")
	}

	tooManyAka := movieDoc()
	for i := 0; i < 12; i++ {
		tooManyAka.Append(xmltree.NewText("aka", "x"))
	}
	// aka must appear contiguously after year; rebuild in order.
	rebuilt := xmltree.NewElement("show")
	rebuilt.SetAttr("type", "Movie")
	rebuilt.Append(xmltree.NewText("title", "t"), xmltree.NewText("year", "1993"))
	for i := 0; i < 11; i++ {
		rebuilt.Append(xmltree.NewText("aka", "x"))
	}
	rebuilt.Append(xmltree.NewText("box_office", "1"), xmltree.NewText("video_sales", "2"))
	if s.Valid(rebuilt) {
		t.Error("11 aka elements accepted, max is 10")
	}

	noAka := xmltree.NewElement("show")
	noAka.SetAttr("type", "Movie")
	noAka.Append(xmltree.NewText("title", "t"), xmltree.NewText("year", "1993"),
		xmltree.NewText("box_office", "1"), xmltree.NewText("video_sales", "2"))
	if s.Valid(noAka) {
		t.Error("zero aka elements accepted, min is 1")
	}

	wrongRoot := xmltree.NewElement("movie")
	if s.Valid(wrongRoot) {
		t.Error("wrong root element accepted")
	}

	missingAttr := movieDoc()
	missingAttr.Attrs = nil
	if s.Valid(missingAttr) {
		t.Error("missing @type accepted")
	}
}

func TestValidateWildcardExclusion(t *testing.T) {
	s := MustParseSchema(`
type Reviews = reviews[ (NYT | Other)* ]
type NYT = nyt[ String ]
type Other = (~!nyt)[ String ]`)
	ok := xmltree.NewElement("reviews").Append(
		xmltree.NewText("nyt", "good"),
		xmltree.NewText("suntimes", "better"),
	)
	if err := s.ValidateDocument(ok); err != nil {
		t.Fatalf("valid reviews rejected: %v", err)
	}
	// A nyt element can only match the NYT branch, never Other; structure
	// where Other would be forced to match nyt must still be valid via NYT.
	onlyNyt := xmltree.NewElement("reviews").Append(xmltree.NewText("nyt", "x"))
	if !s.Valid(onlyNyt) {
		t.Fatal("nyt-only reviews rejected")
	}
}

func TestValidateRecursiveAnyElement(t *testing.T) {
	s := MustParseSchema(`
type Any = ~[ (Any | String)* ]`)
	doc := xmltree.NewElement("anything").Append(
		xmltree.NewElement("nested").Append(
			xmltree.NewText("deep", "value"),
		),
	)
	if err := s.ValidateDocument(doc); err != nil {
		t.Fatalf("recursive wildcard: %v", err)
	}
}

func TestValidateOptional(t *testing.T) {
	s := MustParseSchema(`
type Actor = actor[ name[String], biography[ birthday[String] ]? ]`)
	with := xmltree.NewElement("actor").Append(
		xmltree.NewText("name", "Harrison Ford"),
		xmltree.NewElement("biography").Append(xmltree.NewText("birthday", "1942-07-13")),
	)
	without := xmltree.NewElement("actor").Append(xmltree.NewText("name", "Harrison Ford"))
	if !s.Valid(with) || !s.Valid(without) {
		t.Fatalf("optional content handling broken: with=%v without=%v", s.Valid(with), s.Valid(without))
	}
	double := xmltree.NewElement("actor").Append(
		xmltree.NewText("name", "x"),
		xmltree.NewElement("biography").Append(xmltree.NewText("birthday", "a")),
		xmltree.NewElement("biography").Append(xmltree.NewText("birthday", "b")),
	)
	if s.Valid(double) {
		t.Fatal("two optional biographies accepted")
	}
}

// TestGeneratorProducesValidDocuments is the core property test: for many
// seeds, the random generator's output must validate against the schema
// that produced it.
func TestGeneratorProducesValidDocuments(t *testing.T) {
	schemas := []string{showSchema, imdbAlgebra, `
type Any = ~[ (Any | String)* ]`}
	for si, src := range schemas {
		s := MustParseSchema(src)
		f := func(seed int64) bool {
			g := NewGenerator(s, rand.New(rand.NewSource(seed)))
			doc, err := g.Generate()
			if err != nil {
				t.Logf("schema %d seed %d: generate: %v", si, seed, err)
				return false
			}
			if err := s.ValidateDocument(doc); err != nil {
				t.Logf("schema %d seed %d: %v\n%s", si, seed, err, doc)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("schema %d: %v", si, err)
		}
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	s := MustParseSchema(showSchema)
	g1 := NewGenerator(s, rand.New(rand.NewSource(7)))
	g2 := NewGenerator(s, rand.New(rand.NewSource(7)))
	d1, err1 := g1.Generate()
	d2, err2 := g2.Generate()
	if err1 != nil || err2 != nil {
		t.Fatalf("generate: %v / %v", err1, err2)
	}
	if !xmltree.Equal(d1, d2) {
		t.Fatal("same seed produced different documents")
	}
}
