// Package xschema implements the XML Query Algebra type system used by
// LegoDB (Fankhauser et al., "The XML Query Algebra"): named types whose
// bodies are regular expressions over elements, attributes, wildcards and
// scalars. The package provides the abstract syntax, a parser for the
// paper's algebra notation, a document validator, and a random document
// generator used by property-based tests.
//
// Statistics ride directly on the type tree (scalar sizes and value
// distributions, average repetition counts), which is exactly the paper's
// notion of a physical schema "extended with statistics about the
// underlying XML data".
package xschema

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Unbounded marks a repetition with no upper bound, as in Aka{1,*}.
const Unbounded = -1

// Type is a node in the type algebra. The concrete types are Scalar,
// Element, Attribute, Wildcard, Sequence, Choice, Repeat, Ref and Empty.
type Type interface {
	isType()
	// String renders the type in the paper's algebra notation.
	String() string
}

// ScalarKind enumerates atomic data types.
type ScalarKind int

// Scalar kinds supported by the algebra subset used in the paper.
const (
	StringKind ScalarKind = iota
	IntegerKind
)

func (k ScalarKind) String() string {
	switch k {
	case StringKind:
		return "String"
	case IntegerKind:
		return "Integer"
	default:
		return fmt.Sprintf("ScalarKind(%d)", int(k))
	}
}

// Scalar is an atomic data type, optionally annotated with statistics:
// Size is the average value width in bytes, Min/Max bound integer values,
// and Distinct counts distinct values (0 means unknown). Hist, when
// present, is an equi-width histogram over [Min, Max]: the fraction of
// values falling in each bucket (an extension beyond the paper's
// uniform-distribution statistics).
type Scalar struct {
	Kind     ScalarKind
	Size     int
	Min, Max int64
	Distinct int64
	Hist     []float64
}

// Element describes a named element with the given content type.
type Element struct {
	Name    string
	Content Type
}

// Attribute describes an attribute; Content must be a scalar.
type Attribute struct {
	Name    string
	Content Type
}

// Wildcard describes an element with an arbitrary name (the paper's ~
// notation) or any name except those in Exclude (~!a).
type Wildcard struct {
	Exclude []string
	Content Type
}

// Sequence is ordered concatenation: t1, t2, ..., tn.
type Sequence struct {
	Items []Type
}

// Choice is a union of alternatives: t1 | t2 | ... | tn. Fractions, when
// known, give the fraction of instances matching each alternative (used
// for statistics propagation); len(Fractions) is 0 or len(Alts).
type Choice struct {
	Alts      []Type
	Fractions []float64
}

// Repeat is a bounded or unbounded repetition t{Min,Max}. Max==Unbounded
// means no upper bound. AvgCount is the average number of occurrences per
// parent instance (0 means unknown); for Repeat{0,1} it doubles as the
// presence probability.
type Repeat struct {
	Inner    Type
	Min, Max int
	AvgCount float64
}

// Ref is a reference to a named type.
type Ref struct {
	Name string
}

// Empty matches the empty sequence.
type Empty struct{}

func (*Scalar) isType()    {}
func (*Element) isType()   {}
func (*Attribute) isType() {}
func (*Wildcard) isType()  {}
func (*Sequence) isType()  {}
func (*Choice) isType()    {}
func (*Repeat) isType()    {}
func (*Ref) isType()       {}
func (*Empty) isType()     {}

func (s *Scalar) String() string {
	var ann string
	switch {
	case s.Kind == IntegerKind && s.Distinct > 0:
		ann = fmt.Sprintf("<#%d,#%d,#%d,#%d>", s.Size, s.Min, s.Max, s.Distinct)
	case s.Kind == StringKind && s.Distinct > 0:
		ann = fmt.Sprintf("<#%d,#%d>", s.Size, s.Distinct)
	case s.Size > 0:
		ann = fmt.Sprintf("<#%d>", s.Size)
	}
	return s.Kind.String() + ann
}

func (e *Element) String() string   { return fmt.Sprintf("%s[ %s ]", e.Name, e.Content) }
func (a *Attribute) String() string { return fmt.Sprintf("@%s[ %s ]", a.Name, a.Content) }

func (w *Wildcard) String() string {
	name := "~"
	if len(w.Exclude) > 0 {
		name = "(~!" + strings.Join(w.Exclude, ",!") + ")"
	}
	return fmt.Sprintf("%s[ %s ]", name, w.Content)
}

func (s *Sequence) String() string {
	parts := make([]string, len(s.Items))
	for i, t := range s.Items {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

func (c *Choice) String() string {
	parts := make([]string, len(c.Alts))
	for i, t := range c.Alts {
		s := t.String()
		if _, ok := t.(*Sequence); ok {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return "( " + strings.Join(parts, " | ") + " )"
}

func (r *Repeat) String() string {
	inner := r.Inner.String()
	if _, ok := r.Inner.(*Sequence); ok {
		inner = "(" + inner + ")"
	}
	if _, ok := r.Inner.(*Choice); ok && !strings.HasPrefix(inner, "(") {
		inner = "(" + inner + ")"
	}
	var count string
	if r.AvgCount > 0 {
		// Plain decimal, never scientific notation — the printed schema
		// must re-parse, and the annotation lexer reads only digits.
		count = "<#" + strconv.FormatFloat(r.AvgCount, 'f', -1, 64) + ">"
	}
	switch {
	case r.Min == 0 && r.Max == 1:
		return inner + "?" + count
	case r.Min == 0 && r.Max == Unbounded:
		return inner + "*" + count
	case r.Min == 1 && r.Max == Unbounded:
		return inner + "+" + count
	case r.Max == Unbounded:
		return fmt.Sprintf("%s{%d,*}%s", inner, r.Min, count)
	default:
		return fmt.Sprintf("%s{%d,%d}%s", inner, r.Min, r.Max, count)
	}
}

func (r *Ref) String() string { return r.Name }
func (*Empty) String() string { return "()" }

// Clone returns a deep copy of a type tree.
func Clone(t Type) Type {
	switch t := t.(type) {
	case *Scalar:
		cp := *t
		cp.Hist = append([]float64(nil), t.Hist...)
		return &cp
	case *Element:
		return &Element{Name: t.Name, Content: Clone(t.Content)}
	case *Attribute:
		return &Attribute{Name: t.Name, Content: Clone(t.Content)}
	case *Wildcard:
		return &Wildcard{Exclude: append([]string(nil), t.Exclude...), Content: Clone(t.Content)}
	case *Sequence:
		items := make([]Type, len(t.Items))
		for i, it := range t.Items {
			items[i] = Clone(it)
		}
		return &Sequence{Items: items}
	case *Choice:
		alts := make([]Type, len(t.Alts))
		for i, a := range t.Alts {
			alts[i] = Clone(a)
		}
		return &Choice{Alts: alts, Fractions: append([]float64(nil), t.Fractions...)}
	case *Repeat:
		return &Repeat{Inner: Clone(t.Inner), Min: t.Min, Max: t.Max, AvgCount: t.AvgCount}
	case *Ref:
		return &Ref{Name: t.Name}
	case *Empty:
		return &Empty{}
	default:
		panic(fmt.Sprintf("xschema: unknown type %T", t))
	}
}

// DeepEqual reports whether two type trees are structurally identical,
// ignoring statistics annotations.
func DeepEqual(a, b Type) bool {
	switch a := a.(type) {
	case *Scalar:
		b, ok := b.(*Scalar)
		return ok && a.Kind == b.Kind
	case *Element:
		b, ok := b.(*Element)
		return ok && a.Name == b.Name && DeepEqual(a.Content, b.Content)
	case *Attribute:
		b, ok := b.(*Attribute)
		return ok && a.Name == b.Name && DeepEqual(a.Content, b.Content)
	case *Wildcard:
		b, ok := b.(*Wildcard)
		if !ok || len(a.Exclude) != len(b.Exclude) {
			return false
		}
		ae := append([]string(nil), a.Exclude...)
		be := append([]string(nil), b.Exclude...)
		sort.Strings(ae)
		sort.Strings(be)
		for i := range ae {
			if ae[i] != be[i] {
				return false
			}
		}
		return DeepEqual(a.Content, b.Content)
	case *Sequence:
		b, ok := b.(*Sequence)
		if !ok || len(a.Items) != len(b.Items) {
			return false
		}
		for i := range a.Items {
			if !DeepEqual(a.Items[i], b.Items[i]) {
				return false
			}
		}
		return true
	case *Choice:
		b, ok := b.(*Choice)
		if !ok || len(a.Alts) != len(b.Alts) {
			return false
		}
		for i := range a.Alts {
			if !DeepEqual(a.Alts[i], b.Alts[i]) {
				return false
			}
		}
		return true
	case *Repeat:
		b, ok := b.(*Repeat)
		return ok && a.Min == b.Min && a.Max == b.Max && DeepEqual(a.Inner, b.Inner)
	case *Ref:
		b, ok := b.(*Ref)
		return ok && a.Name == b.Name
	case *Empty:
		_, ok := b.(*Empty)
		return ok
	default:
		return false
	}
}

// Schema is a set of named type definitions with a designated root type.
// Names preserves definition order for deterministic iteration and
// printing.
type Schema struct {
	Root  string
	Names []string
	Types map[string]Type
}

// NewSchema returns an empty schema with the given root type name.
func NewSchema(root string) *Schema {
	return &Schema{Root: root, Types: make(map[string]Type)}
}

// Define adds or replaces a named type definition.
func (s *Schema) Define(name string, t Type) {
	if _, ok := s.Types[name]; !ok {
		s.Names = append(s.Names, name)
	}
	s.Types[name] = t
}

// Lookup returns the definition of a named type.
func (s *Schema) Lookup(name string) (Type, bool) {
	t, ok := s.Types[name]
	return t, ok
}

// Remove deletes a named type definition.
func (s *Schema) Remove(name string) {
	if _, ok := s.Types[name]; !ok {
		return
	}
	delete(s.Types, name)
	for i, n := range s.Names {
		if n == name {
			s.Names = append(s.Names[:i], s.Names[i+1:]...)
			break
		}
	}
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cp := NewSchema(s.Root)
	for _, name := range s.Names {
		cp.Define(name, Clone(s.Types[name]))
	}
	return cp
}

// String renders the schema in the algebra notation, one type per
// definition, in definition order.
func (s *Schema) String() string {
	var b strings.Builder
	for _, name := range s.Names {
		fmt.Fprintf(&b, "type %s = %s\n", name, s.Types[name])
	}
	return b.String()
}

// FreshName returns a type name not yet used in the schema, derived from
// base (base, base2, base3, ...).
func (s *Schema) FreshName(base string) string {
	if _, ok := s.Types[base]; !ok {
		return base
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s%d", base, i)
		if _, ok := s.Types[name]; !ok {
			return name
		}
	}
}

// RefCounts returns, for every named type, the number of Ref nodes in the
// schema that point to it (the root type gets an implicit extra
// reference so it is never considered unreferenced).
func (s *Schema) RefCounts() map[string]int {
	counts := make(map[string]int, len(s.Names))
	for _, name := range s.Names {
		counts[name] = 0
	}
	for _, name := range s.Names {
		Visit(s.Types[name], func(t Type) {
			if r, ok := t.(*Ref); ok {
				counts[r.Name]++
			}
		})
	}
	counts[s.Root]++
	return counts
}

// Parents returns, for every named type, the sorted set of named types in
// whose definitions it is referenced. The root type has no parents.
func (s *Schema) Parents() map[string][]string {
	set := make(map[string]map[string]bool)
	for _, name := range s.Names {
		name := name
		Visit(s.Types[name], func(t Type) {
			if r, ok := t.(*Ref); ok {
				if set[r.Name] == nil {
					set[r.Name] = make(map[string]bool)
				}
				set[r.Name][name] = true
			}
		})
	}
	out := make(map[string][]string, len(set))
	for child, parents := range set {
		for p := range parents {
			out[child] = append(out[child], p)
		}
		sort.Strings(out[child])
	}
	return out
}

// Visit walks the type tree in preorder, calling fn on every node. It
// does not follow Ref nodes into their definitions.
func Visit(t Type, fn func(Type)) {
	fn(t)
	switch t := t.(type) {
	case *Element:
		Visit(t.Content, fn)
	case *Attribute:
		Visit(t.Content, fn)
	case *Wildcard:
		Visit(t.Content, fn)
	case *Sequence:
		for _, it := range t.Items {
			Visit(it, fn)
		}
	case *Choice:
		for _, a := range t.Alts {
			Visit(a, fn)
		}
	case *Repeat:
		Visit(t.Inner, fn)
	}
}

// Reachable returns the set of type names reachable from the root via
// Ref nodes (including the root itself).
func (s *Schema) Reachable() map[string]bool {
	seen := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		t, ok := s.Types[name]
		if !ok {
			return
		}
		Visit(t, func(t Type) {
			if r, ok := t.(*Ref); ok {
				visit(r.Name)
			}
		})
	}
	visit(s.Root)
	return seen
}

// GarbageCollect removes definitions not reachable from the root.
func (s *Schema) GarbageCollect() {
	reach := s.Reachable()
	var names []string
	for _, n := range s.Names {
		if reach[n] {
			names = append(names, n)
		} else {
			delete(s.Types, n)
		}
	}
	s.Names = names
}

// Validate checks basic well-formedness: the root is defined, every Ref
// resolves, attributes have scalar content, and repetition bounds are
// sane.
func (s *Schema) Validate() error {
	if _, ok := s.Types[s.Root]; !ok {
		return fmt.Errorf("xschema: root type %q is not defined", s.Root)
	}
	for _, name := range s.Names {
		var err error
		Visit(s.Types[name], func(t Type) {
			if err != nil {
				return
			}
			switch t := t.(type) {
			case *Ref:
				if _, ok := s.Types[t.Name]; !ok {
					err = fmt.Errorf("xschema: type %s references undefined type %q", name, t.Name)
				}
			case *Attribute:
				if _, ok := t.Content.(*Scalar); !ok {
					err = fmt.Errorf("xschema: attribute @%s in type %s must have scalar content", t.Name, name)
				}
			case *Repeat:
				if t.Min < 0 || (t.Max != Unbounded && t.Max < t.Min) {
					err = fmt.Errorf("xschema: bad repetition bounds {%d,%d} in type %s", t.Min, t.Max, name)
				}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}
