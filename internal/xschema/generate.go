package xschema

import (
	"fmt"
	"math/rand"
	"strings"

	"legodb/internal/xmltree"
)

// Generator produces random documents valid under a schema. It is the
// engine behind the property-based tests ("a random valid document stays
// valid under every semantics-preserving transformation") and the
// synthetic data generators.
type Generator struct {
	Schema *Schema
	Rand   *rand.Rand
	// MaxDepth bounds recursion through named types; past this depth the
	// generator picks minimal expansions (Min occurrences, cheapest
	// choice alternative).
	MaxDepth int
	// MaxRepeat caps how many occurrences an unbounded repetition may
	// produce (default 3).
	MaxRepeat int

	depthCost map[string]int
}

// NewGenerator returns a generator over the schema using the given
// pseudo-random source.
func NewGenerator(s *Schema, r *rand.Rand) *Generator {
	g := &Generator{Schema: s, Rand: r, MaxDepth: 12, MaxRepeat: 3}
	g.depthCost = computeDepthCosts(s)
	return g
}

// Generate produces a random document valid under the schema root.
func (g *Generator) Generate() (*xmltree.Node, error) {
	root, ok := g.Schema.Types[g.Schema.Root]
	if !ok {
		return nil, fmt.Errorf("xschema: root type %q not defined", g.Schema.Root)
	}
	nodes, _, _, err := g.gen(root, 0, false)
	if err != nil {
		return nil, err
	}
	if len(nodes) != 1 {
		return nil, fmt.Errorf("xschema: root type %q does not describe a single element", g.Schema.Root)
	}
	return nodes[0], nil
}

// gen expands a type into content contributions: element children,
// attributes and text. minimal forces minimal expansions to guarantee
// termination under recursion.
func (g *Generator) gen(t Type, depth int, minimal bool) (nodes []*xmltree.Node, attrs []xmltree.Attr, text string, err error) {
	if depth > 4*g.MaxDepth {
		return nil, nil, "", fmt.Errorf("xschema: generation exceeded recursion budget (schema requires unbounded nesting?)")
	}
	if depth > g.MaxDepth {
		minimal = true
	}
	switch t := t.(type) {
	case *Empty:
		return nil, nil, "", nil
	case *Scalar:
		return nil, nil, g.genScalar(t), nil
	case *Attribute:
		sc, ok := t.Content.(*Scalar)
		if !ok {
			return nil, nil, "", fmt.Errorf("xschema: attribute @%s without scalar content", t.Name)
		}
		return nil, []xmltree.Attr{{Name: t.Name, Value: g.genScalar(sc)}}, "", nil
	case *Element:
		n := xmltree.NewElement(t.Name)
		kids, kattrs, ktext, err := g.gen(t.Content, depth+1, minimal)
		if err != nil {
			return nil, nil, "", err
		}
		n.Children = kids
		n.Attrs = kattrs
		n.Text = ktext
		return []*xmltree.Node{n}, nil, "", nil
	case *Wildcard:
		name := g.wildcardName(t)
		n := xmltree.NewElement(name)
		kids, kattrs, ktext, err := g.gen(t.Content, depth+1, minimal)
		if err != nil {
			return nil, nil, "", err
		}
		n.Children = kids
		n.Attrs = kattrs
		n.Text = ktext
		return []*xmltree.Node{n}, nil, "", nil
	case *Sequence:
		for _, part := range t.Items {
			kn, ka, kt, err := g.gen(part, depth, minimal)
			if err != nil {
				return nil, nil, "", err
			}
			nodes = append(nodes, kn...)
			attrs = append(attrs, ka...)
			text += kt
		}
		return nodes, attrs, text, nil
	case *Choice:
		alt := g.pickAlternative(t, minimal)
		return g.gen(alt, depth, minimal)
	case *Repeat:
		count := t.Min
		if !minimal {
			max := t.Max
			if max == Unbounded {
				max = t.Min + g.MaxRepeat
			}
			if max > t.Min+g.MaxRepeat {
				max = t.Min + g.MaxRepeat
			}
			if max > count {
				count += g.Rand.Intn(max - count + 1)
			}
		}
		for k := 0; k < count; k++ {
			kn, ka, kt, err := g.gen(t.Inner, depth+1, minimal)
			if err != nil {
				return nil, nil, "", err
			}
			nodes = append(nodes, kn...)
			attrs = append(attrs, ka...)
			text += kt
		}
		return nodes, attrs, text, nil
	case *Ref:
		def, ok := g.Schema.Types[t.Name]
		if !ok {
			return nil, nil, "", fmt.Errorf("xschema: undefined type %q", t.Name)
		}
		return g.gen(def, depth+1, minimal)
	default:
		return nil, nil, "", fmt.Errorf("xschema: cannot generate from %T", t)
	}
}

var words = []string{
	"fugitive", "files", "paranoia", "agent", "alien", "river", "shadow",
	"summer", "ghost", "machine", "angel", "frontier", "network", "signal",
}

func (g *Generator) genScalar(s *Scalar) string {
	switch s.Kind {
	case IntegerKind:
		lo, hi := s.Min, s.Max
		if hi <= lo {
			lo, hi = 0, 10000
		}
		return fmt.Sprintf("%d", lo+g.Rand.Int63n(hi-lo+1))
	default:
		n := 1 + g.Rand.Intn(3)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = words[g.Rand.Intn(len(words))]
		}
		return strings.Join(parts, " ")
	}
}

var wildcardNames = []string{"nyt", "suntimes", "variety", "guardian", "post"}

func (g *Generator) wildcardName(w *Wildcard) string {
	excluded := make(map[string]bool, len(w.Exclude))
	for _, e := range w.Exclude {
		excluded[e] = true
	}
	for tries := 0; tries < 50; tries++ {
		name := wildcardNames[g.Rand.Intn(len(wildcardNames))]
		if !excluded[name] {
			return name
		}
	}
	return "anonelem"
}

// pickAlternative selects a choice branch; under minimal expansion it
// prefers the branch with the lowest recursion cost so that recursive
// schemas (like AnyElement) terminate.
func (g *Generator) pickAlternative(c *Choice, minimal bool) Type {
	if !minimal {
		if len(c.Fractions) == len(c.Alts) {
			r := g.Rand.Float64()
			acc := 0.0
			for i, f := range c.Fractions {
				acc += f
				if r < acc {
					return c.Alts[i]
				}
			}
		}
		return c.Alts[g.Rand.Intn(len(c.Alts))]
	}
	best := c.Alts[0]
	bestCost := g.cost(best)
	for _, alt := range c.Alts[1:] {
		if cost := g.cost(alt); cost < bestCost {
			best, bestCost = alt, cost
		}
	}
	return best
}

const infiniteCost = 1 << 20

// cost estimates the minimal expansion depth of a type under the current
// depth-cost table.
func (g *Generator) cost(t Type) int {
	switch t := t.(type) {
	case *Empty, *Scalar, *Attribute:
		return 0
	case *Element:
		return 1 + g.cost(t.Content)
	case *Wildcard:
		return 1 + g.cost(t.Content)
	case *Sequence:
		total := 0
		for _, it := range t.Items {
			c := g.cost(it)
			if c >= infiniteCost {
				return infiniteCost
			}
			if c > total {
				total = c
			}
		}
		return total
	case *Choice:
		best := infiniteCost
		for _, a := range t.Alts {
			if c := g.cost(a); c < best {
				best = c
			}
		}
		return best
	case *Repeat:
		if t.Min == 0 {
			return 0
		}
		return g.cost(t.Inner)
	case *Ref:
		if c, ok := g.depthCost[t.Name]; ok {
			return c
		}
		return infiniteCost
	default:
		return infiniteCost
	}
}

// RandomSchema produces a random valid schema (Validate passes) with up
// to maxTypes named type definitions, for property-based tests of
// fingerprinting and transformations. Bodies are depth-bounded random
// type trees that may reference any named type (including cycles);
// statistics annotations are generated with positive probability so the
// fingerprint's stats-sensitivity is exercised.
func RandomSchema(r *rand.Rand, maxTypes int) *Schema {
	if maxTypes < 1 {
		maxTypes = 1
	}
	n := 1 + r.Intn(maxTypes)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("T%d", i)
	}
	s := NewSchema(names[0])
	for _, name := range names {
		s.Define(name, randomType(r, names, 0))
	}
	return s
}

var randomLabels = []string{"show", "title", "year", "review", "aka", "name", "box", "text"}

func randomType(r *rand.Rand, names []string, depth int) Type {
	if depth >= 4 {
		// Leaves only, so trees stay small.
		switch r.Intn(3) {
		case 0:
			return randomScalar(r)
		case 1:
			return &Ref{Name: names[r.Intn(len(names))]}
		default:
			return &Empty{}
		}
	}
	switch r.Intn(9) {
	case 0:
		return randomScalar(r)
	case 1:
		return &Element{Name: randomLabels[r.Intn(len(randomLabels))], Content: randomType(r, names, depth+1)}
	case 2:
		return &Attribute{Name: randomLabels[r.Intn(len(randomLabels))], Content: randomScalar(r)}
	case 3:
		var excl []string
		for _, l := range randomLabels[:r.Intn(3)] {
			excl = append(excl, l)
		}
		return &Wildcard{Exclude: excl, Content: randomType(r, names, depth+1)}
	case 4:
		items := make([]Type, 1+r.Intn(3))
		for i := range items {
			items[i] = randomType(r, names, depth+1)
		}
		return &Sequence{Items: items}
	case 5:
		alts := make([]Type, 2+r.Intn(2))
		for i := range alts {
			alts[i] = randomType(r, names, depth+1)
		}
		c := &Choice{Alts: alts}
		if r.Intn(2) == 0 {
			c.Fractions = make([]float64, len(alts))
			for i := range c.Fractions {
				c.Fractions[i] = 1 / float64(len(alts))
			}
		}
		return c
	case 6:
		min := r.Intn(3)
		max := min + r.Intn(4)
		if r.Intn(3) == 0 {
			max = Unbounded
		}
		rep := &Repeat{Inner: randomType(r, names, depth+1), Min: min, Max: max}
		if r.Intn(2) == 0 {
			rep.AvgCount = float64(1+r.Intn(20)) / 2
		}
		return rep
	case 7:
		return &Ref{Name: names[r.Intn(len(names))]}
	default:
		return &Empty{}
	}
}

func randomScalar(r *rand.Rand) *Scalar {
	s := &Scalar{Kind: ScalarKind(r.Intn(2))}
	if r.Intn(2) == 0 {
		s.Size = 1 + r.Intn(100)
	}
	if s.Kind == IntegerKind && r.Intn(2) == 0 {
		s.Min = int64(r.Intn(100))
		s.Max = s.Min + int64(r.Intn(10000))
		s.Distinct = 1 + int64(r.Intn(1000))
		if r.Intn(3) == 0 {
			s.Hist = make([]float64, 4)
			for i := range s.Hist {
				s.Hist[i] = 0.25
			}
		}
	}
	return s
}

// computeDepthCosts runs a fixpoint over the schema computing the minimal
// expansion depth of each named type; truly non-terminating types keep
// infiniteCost.
func computeDepthCosts(s *Schema) map[string]int {
	costs := make(map[string]int, len(s.Names))
	for _, n := range s.Names {
		costs[n] = infiniteCost
	}
	g := &Generator{Schema: s, depthCost: costs}
	for iter := 0; iter < len(s.Names)+2; iter++ {
		changed := false
		for _, n := range s.Names {
			c := g.cost(s.Types[n])
			if c < costs[n] {
				costs[n] = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return costs
}
