package xschema

import (
	"strings"
	"testing"
)

// imdbAlgebra is the paper's Appendix B schema in algebra notation.
const imdbAlgebra = `
type IMDB = imdb [ Show{0,*}, Director{0,*}, Actor{0,*} ]
type Show = show [ @type[ String ],
    title [ String ],
    year[ Integer ],
    aka [ String ]{0,*},
    reviews[ ~[ String ] ]{0,*},
    (box_office [ Integer ], video_sales [ Integer ]
     | seasons[ Integer ], description [ String ],
       episodes [ name[String], guest_director[ String ] ]{0,*}) ]
type Director = director [ name [String],
    directed [ title[ String ], year[ Integer ], info[ String ], ~[ String ] ]{0,*} ]
type Actor = actor [ name [String],
    played[ title[ String ], year[ Integer ], character[String],
            order_of_appearance[Integer],
            award[ result [String], award_name[String] ]{0,5} ]{0,*},
    biography[ birthday[ String ], text[String] ]? ]
`

func TestParseIMDBSchema(t *testing.T) {
	s, err := ParseSchema(imdbAlgebra)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if s.Root != "IMDB" {
		t.Fatalf("root = %q, want IMDB", s.Root)
	}
	if len(s.Names) != 4 {
		t.Fatalf("types = %v, want 4", s.Names)
	}
	show, ok := s.Lookup("Show")
	if !ok {
		t.Fatal("Show not defined")
	}
	el, ok := show.(*Element)
	if !ok || el.Name != "show" {
		t.Fatalf("Show body = %T %v", show, show)
	}
	seq, ok := el.Content.(*Sequence)
	if !ok {
		t.Fatalf("Show content = %T", el.Content)
	}
	if _, ok := seq.Items[0].(*Attribute); !ok {
		t.Fatalf("first item should be attribute, got %T", seq.Items[0])
	}
	last := seq.Items[len(seq.Items)-1]
	if _, ok := last.(*Choice); !ok {
		t.Fatalf("last item should be union, got %T", last)
	}
}

func TestParseStatsAnnotations(t *testing.T) {
	src := `type Show = show [ @type[ String<#8,#2> ],
	    year[ Integer<#4,#1800,#2100,#300> ],
	    title[ String<#50,#34798> ],
	    Review*<#10> ]
	type Review = review[ String<#800> ]`
	s, err := ParseSchema(src)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	show := s.Types["Show"].(*Element)
	seq := show.Content.(*Sequence)
	year := seq.Items[1].(*Element).Content.(*Scalar)
	if year.Kind != IntegerKind || year.Size != 4 || year.Min != 1800 || year.Max != 2100 || year.Distinct != 300 {
		t.Fatalf("year stats = %+v", year)
	}
	title := seq.Items[2].(*Element).Content.(*Scalar)
	if title.Size != 50 || title.Distinct != 34798 {
		t.Fatalf("title stats = %+v", title)
	}
	rep := seq.Items[3].(*Repeat)
	if rep.AvgCount != 10 {
		t.Fatalf("review avg count = %v", rep.AvgCount)
	}
	if _, ok := rep.Inner.(*Ref); !ok {
		t.Fatalf("review inner = %T", rep.Inner)
	}
}

func TestParseWildcards(t *testing.T) {
	s, err := ParseSchema(`
type Reviews = review[ (NYTReview | OtherReview)* ]
type NYTReview = nyt[ String ]
type OtherReview = (~!nyt) [ String ]`)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	other := s.Types["OtherReview"].(*Wildcard)
	if len(other.Exclude) != 1 || other.Exclude[0] != "nyt" {
		t.Fatalf("exclusion = %v", other.Exclude)
	}
	bare, err := ParseType(`~[ String ]`)
	if err != nil {
		t.Fatalf("ParseType: %v", err)
	}
	if w, ok := bare.(*Wildcard); !ok || len(w.Exclude) != 0 {
		t.Fatalf("bare wildcard = %#v", bare)
	}
}

func TestParseRecursiveAnyElement(t *testing.T) {
	s, err := ParseSchema(`
type AnyElement = ~[ (AnyElement | AnyScalar)* ]
type AnyScalar = Integer | String`)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestParseRepetitionForms(t *testing.T) {
	cases := []struct {
		src      string
		min, max int
	}{
		{"A*", 0, Unbounded},
		{"A+", 1, Unbounded},
		{"A?", 0, 1},
		{"A{1,10}", 1, 10},
		{"A{2,*}", 2, Unbounded},
	}
	for _, c := range cases {
		t.Run(c.src, func(t *testing.T) {
			typ, err := ParseType(c.src)
			if err != nil {
				t.Fatalf("ParseType(%q): %v", c.src, err)
			}
			r, ok := typ.(*Repeat)
			if !ok {
				t.Fatalf("got %T", typ)
			}
			if r.Min != c.min || r.Max != c.max {
				t.Fatalf("bounds = {%d,%d}, want {%d,%d}", r.Min, r.Max, c.min, c.max)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"type = show[String]",
		"type A = ",
		"type A = a[ String",
		"type A = a[ Undefined ]",
		"type A = a[ String ]{3,1}",
		"type A = a[ String ] type A = b[ String ]",
		"type A = @attr[ b[ String ] ]",
	}
	for _, src := range cases {
		if _, err := ParseSchema(src); err == nil {
			t.Errorf("ParseSchema(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	s := MustParseSchema(imdbAlgebra)
	printed := s.String()
	s2, err := ParseSchema(printed)
	if err != nil {
		t.Fatalf("reparse printed schema: %v\n%s", err, printed)
	}
	for _, name := range s.Names {
		if !DeepEqual(s.Types[name], s2.Types[name]) {
			t.Fatalf("type %s changed after print+parse:\n%s\nvs\n%s", name, s.Types[name], s2.Types[name])
		}
	}
}

func TestNormalize(t *testing.T) {
	typ, err := ParseType("(a[String])")
	if err != nil {
		t.Fatal(err)
	}
	n := Normalize(typ)
	if _, ok := n.(*Element); !ok {
		t.Fatalf("normalized paren elem = %T", n)
	}
	seq := &Sequence{Items: []Type{
		&Empty{},
		&Sequence{Items: []Type{&Ref{Name: "A"}, &Ref{Name: "B"}}},
		&Repeat{Inner: &Ref{Name: "C"}, Min: 1, Max: 1},
	}}
	n = Normalize(seq)
	got, ok := n.(*Sequence)
	if !ok || len(got.Items) != 3 {
		t.Fatalf("normalize = %v", n)
	}
	if r, ok := got.Items[2].(*Ref); !ok || r.Name != "C" {
		t.Fatalf("Repeat{1,1} not unwrapped: %v", got.Items[2])
	}
}

func TestFreshName(t *testing.T) {
	s := NewSchema("A")
	s.Define("A", &Empty{})
	s.Define("A2", &Empty{})
	if got := s.FreshName("A"); got != "A3" {
		t.Fatalf("FreshName = %q", got)
	}
	if got := s.FreshName("B"); got != "B" {
		t.Fatalf("FreshName = %q", got)
	}
}

func TestRefCountsAndParents(t *testing.T) {
	s := MustParseSchema(`
type IMDB = imdb[ Show{0,*} ]
type Show = show[ title[String], Review* ]
type Review = review[ String ]`)
	counts := s.RefCounts()
	if counts["Show"] != 1 || counts["Review"] != 1 || counts["IMDB"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	parents := s.Parents()
	if len(parents["Show"]) != 1 || parents["Show"][0] != "IMDB" {
		t.Fatalf("parents[Show] = %v", parents["Show"])
	}
	if len(parents["Review"]) != 1 || parents["Review"][0] != "Show" {
		t.Fatalf("parents[Review] = %v", parents["Review"])
	}
}

func TestGarbageCollect(t *testing.T) {
	s := MustParseSchema(`
type IMDB = imdb[ Show{0,*} ]
type Show = show[ title[String] ]`)
	s.Define("Orphan", &Element{Name: "x", Content: &Scalar{}})
	s.GarbageCollect()
	if _, ok := s.Lookup("Orphan"); ok {
		t.Fatal("orphan survived GC")
	}
	if _, ok := s.Lookup("Show"); !ok {
		t.Fatal("reachable type collected")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustParseSchema(`type A = a[ b[String], C* ]
type C = c[ Integer ]`)
	cp := s.Clone()
	el := cp.Types["A"].(*Element)
	el.Name = "changed"
	if s.Types["A"].(*Element).Name != "a" {
		t.Fatal("clone shares nodes")
	}
	if !strings.Contains(s.String(), "a[") {
		t.Fatal("original mutated")
	}
}
