package xschema_test

import (
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xschema"
)

// FuzzParseSchema drives the algebra-notation parser with arbitrary
// inputs. Three guarantees are checked on every input the parser
// accepts:
//
//  1. no panic anywhere in parse → validate → print → fingerprint;
//  2. the printed form re-parses (String is a faithful serialization);
//  3. the re-parsed schema fingerprints identically — the canonical
//     fingerprint used as the cost-cache key survives a round trip.
func FuzzParseSchema(f *testing.F) {
	seeds := []string{
		imdb.SchemaText,
		`type A = a [ String ]`,
		`type Root = root [ Item* ]
type Item = item [ String ]`,
		`type Show = show [ @type[ String<#8,#2> ],
    year[ Integer<#4,#1800,#2100,#300> ],
    title[ String<#50,#34798> ],
    Review*<#10> ]
type Review = review[ String<#800> ]`,
		`type Reviews = review[ (NYTReview | OtherReview)* ]
type NYTReview = nyt[ String ]
type OtherReview = (~!nyt) [ String ]`,
		`type AnyElement = ~[ (AnyElement | AnyScalar)* ]
type AnyScalar = Integer | String`,
		`type A = a [ B{2,*} ]
type B = b [ Integer | String ]`,
		// Near-miss inputs steer the fuzzer toward error paths.
		`type A = a[ String`,
		`type A = a[ Undefined ]`,
		`type = show[String]`,
		`type A = a[ String ]{3,1}`,
		`type A = a [ ~!x!y [ String ]? ]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := xschema.ParseSchema(src)
		if err != nil {
			return // rejected input; only panics count as failures
		}
		if err := s.Validate(); err != nil {
			// The parser resolves references and checks bounds itself, so
			// anything it accepts must validate.
			t.Fatalf("parsed schema fails Validate: %v\ninput: %q", err, src)
		}
		fp := s.Fingerprint()
		printed := s.String()
		s2, err := xschema.ParseSchema(printed)
		if err != nil {
			t.Fatalf("printed schema does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if s2.Fingerprint() != fp {
			t.Fatalf("fingerprint not stable across print/re-parse\ninput: %q\nprinted: %q", src, printed)
		}
	})
}
