package xschema

import (
	"fmt"
	"strconv"
	"strings"

	"legodb/internal/xmltree"
)

// ValidationError reports why a document failed to validate.
type ValidationError struct {
	Path   string
	Reason string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("xschema: validation failed at %s: %s", e.Path, e.Reason)
}

// ValidateDocument checks that doc conforms to the schema's root type.
//
// The matcher treats an element's attributes as pseudo-items placed (in
// document order) before the element's children, followed by an optional
// text item when the element carries character data. This matches the
// paper's schemas, where attributes are declared ahead of element content.
func (s *Schema) ValidateDocument(doc *xmltree.Node) error {
	root, ok := s.Types[s.Root]
	if !ok {
		return fmt.Errorf("xschema: root type %q not defined", s.Root)
	}
	m := &matcher{schema: s}
	if !m.matchSingle(root, doc, "/") {
		if m.firstErr != nil {
			return m.firstErr
		}
		return &ValidationError{Path: "/", Reason: "document does not match root type"}
	}
	return nil
}

// Valid reports whether doc conforms to the schema.
func (s *Schema) Valid(doc *xmltree.Node) bool { return s.ValidateDocument(doc) == nil }

// MatchesType reports whether a single element node conforms to the given
// type expression (an element, wildcard, reference or union thereof).
// Used by the shredder to decide which named type an element instantiates.
func (s *Schema) MatchesType(t Type, node *xmltree.Node) bool {
	m := &matcher{schema: s}
	return m.matchSingle(t, node, "/")
}

// item is one unit of element content seen by the regular-expression
// matcher: an attribute, a child element, or character data.
type itemKind int

const (
	itemAttr itemKind = iota
	itemElem
	itemText
)

type contentItem struct {
	kind  itemKind
	name  string
	value string
	node  *xmltree.Node
}

type matcher struct {
	schema   *Schema
	firstErr *ValidationError
}

// matchSingle matches a type expected to describe exactly one element (or
// a named alias thereof) against a concrete element node.
func (m *matcher) matchSingle(t Type, node *xmltree.Node, path string) bool {
	switch t := t.(type) {
	case *Element:
		if t.Name != node.Name {
			m.fail(path, fmt.Sprintf("expected element <%s>, found <%s>", t.Name, node.Name))
			return false
		}
		return m.matchContent(t.Content, node, path+node.Name+"/")
	case *Wildcard:
		for _, ex := range t.Exclude {
			if node.Name == ex {
				m.fail(path, fmt.Sprintf("element <%s> excluded by wildcard", node.Name))
				return false
			}
		}
		return m.matchContent(t.Content, node, path+node.Name+"/")
	case *Ref:
		def, ok := m.schema.Types[t.Name]
		if !ok {
			m.fail(path, fmt.Sprintf("undefined type %q", t.Name))
			return false
		}
		return m.matchSingle(def, node, path)
	case *Choice:
		for _, alt := range t.Alts {
			if m.matchSingle(alt, node, path) {
				return true
			}
		}
		return false
	case *Sequence:
		// A sequence can describe a single element only if it has one
		// effective item.
		if len(t.Items) == 1 {
			return m.matchSingle(t.Items[0], node, path)
		}
		m.fail(path, "sequence type cannot describe a single element")
		return false
	default:
		m.fail(path, fmt.Sprintf("type %s cannot describe an element", t))
		return false
	}
}

// matchContent matches an element's content model against its attributes,
// children and text.
func (m *matcher) matchContent(t Type, node *xmltree.Node, path string) bool {
	items := make([]contentItem, 0, len(node.Attrs)+len(node.Children)+1)
	for _, a := range node.Attrs {
		items = append(items, contentItem{kind: itemAttr, name: a.Name, value: a.Value})
	}
	if node.Text != "" {
		items = append(items, contentItem{kind: itemText, value: node.Text})
	}
	for _, c := range node.Children {
		items = append(items, contentItem{kind: itemElem, name: c.Name, node: c})
	}
	ends := m.match(t, items, 0, path)
	for _, e := range ends {
		if e == len(items) {
			return true
		}
	}
	m.fail(path, fmt.Sprintf("content does not match %s", t))
	return false
}

// match returns the set of positions the matcher can reach after matching
// t against items starting at position i. Duplicate positions are pruned.
func (m *matcher) match(t Type, items []contentItem, i int, path string) []int {
	switch t := t.(type) {
	case *Empty:
		return []int{i}
	case *Scalar:
		if i < len(items) && items[i].kind == itemText {
			if t.Kind == IntegerKind {
				if _, err := strconv.ParseInt(strings.TrimSpace(items[i].value), 10, 64); err != nil {
					return nil
				}
			}
			return []int{i + 1}
		}
		// An absent text node is an empty string; integers require text.
		if t.Kind == StringKind {
			return []int{i}
		}
		return nil
	case *Attribute:
		if i < len(items) && items[i].kind == itemAttr && items[i].name == t.Name {
			if sc, ok := t.Content.(*Scalar); ok && sc.Kind == IntegerKind {
				if _, err := strconv.ParseInt(strings.TrimSpace(items[i].value), 10, 64); err != nil {
					return nil
				}
			}
			return []int{i + 1}
		}
		return nil
	case *Element:
		if i < len(items) && items[i].kind == itemElem && items[i].name == t.Name {
			if m.matchSingle(t, items[i].node, path) {
				return []int{i + 1}
			}
		}
		return nil
	case *Wildcard:
		if i < len(items) && items[i].kind == itemElem {
			if m.matchSingle(t, items[i].node, path) {
				return []int{i + 1}
			}
		}
		return nil
	case *Ref:
		def, ok := m.schema.Types[t.Name]
		if !ok {
			return nil
		}
		return m.match(def, items, i, path)
	case *Sequence:
		positions := []int{i}
		for _, part := range t.Items {
			var next []int
			for _, p := range positions {
				next = union(next, m.match(part, items, p, path))
			}
			if len(next) == 0 {
				return nil
			}
			positions = next
		}
		return positions
	case *Choice:
		var out []int
		for _, alt := range t.Alts {
			out = union(out, m.match(alt, items, i, path))
		}
		return out
	case *Repeat:
		// Standard bounded-repetition matching with progress guard:
		// repetitions that consume nothing are not iterated.
		current := []int{i}
		var accepted []int
		if t.Min == 0 {
			accepted = append(accepted, i)
		}
		for count := 1; t.Max == Unbounded || count <= t.Max; count++ {
			var next []int
			for _, p := range current {
				for _, q := range m.match(t.Inner, items, p, path) {
					if q > p { // progress guard
						next = appendUnique(next, q)
					}
				}
			}
			if len(next) == 0 {
				break
			}
			if count >= t.Min {
				accepted = union(accepted, next)
			}
			current = next
		}
		return accepted
	default:
		return nil
	}
}

func (m *matcher) fail(path, reason string) {
	if m.firstErr == nil {
		m.firstErr = &ValidationError{Path: path, Reason: reason}
	}
}

func union(a, b []int) []int {
	for _, v := range b {
		a = appendUnique(a, v)
	}
	return a
}

func appendUnique(a []int, v int) []int {
	for _, x := range a {
		if x == v {
			return a
		}
	}
	return append(a, v)
}
