package xschema

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// renameTypes returns a copy of s with every named type renamed by fn,
// Ref targets and the root included.
func renameTypes(s *Schema, fn func(string) string) *Schema {
	out := NewSchema(fn(s.Root))
	for _, name := range s.Names {
		body := Clone(s.Types[name])
		Visit(body, func(t Type) {
			if r, ok := t.(*Ref); ok {
				r.Name = fn(r.Name)
			}
		})
		out.Define(fn(name), body)
	}
	return out
}

// permuteDefs returns a copy of s with the definition order permuted.
func permuteDefs(s *Schema, r *rand.Rand) *Schema {
	names := append([]string(nil), s.Names...)
	r.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	out := NewSchema(s.Root)
	for _, name := range names {
		out.Define(name, Clone(s.Types[name]))
	}
	return out
}

func TestFingerprintInvariantUnderRenamingAndReordering(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := RandomSchema(r, 6)
		fp := s.Fingerprint()
		renamed := renameTypes(s, func(n string) string { return "Renamed_" + n + "_x" })
		permuted := permuteDefs(s, r)
		clone := s.Clone()
		if renamed.Fingerprint() != fp || !Equivalent(s, renamed) {
			t.Logf("alpha-renaming changed fingerprint of:\n%s", s)
			return false
		}
		if permuted.Fingerprint() != fp || !Equivalent(s, permuted) {
			t.Logf("definition reordering changed fingerprint of:\n%s", s)
			return false
		}
		if clone.Fingerprint() != fp {
			t.Logf("clone changed fingerprint of:\n%s", s)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintEqualityMatchesEquivalence is the central property:
// random schema pairs fingerprint equal exactly when they are Equivalent
// (independent pairs are almost always different; derived pairs are
// equivalent by construction and exercised above).
func TestFingerprintEqualityMatchesEquivalence(t *testing.T) {
	property := func(seedA, seedB int64) bool {
		a := RandomSchema(rand.New(rand.NewSource(seedA)), 5)
		b := RandomSchema(rand.New(rand.NewSource(seedB)), 5)
		return Equivalent(a, b) == (a.Fingerprint() == b.Fingerprint())
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintSensitivity flips individual structural and statistical
// details and requires the fingerprint to move.
func TestFingerprintSensitivity(t *testing.T) {
	base := MustParseSchema(`
type Imdb = imdb [ Show* ]
type Show = show [ @type[ String ], title[ String<#50,#100> ], year[ Integer<#4,#1900,#2050,#150> ], Aka{1,10}, ( Movie | TV ) ]
type Aka = aka [ String<#20> ]
type Movie = movie [ box_office[ Integer ] ]
type TV = tv [ seasons[ Integer ] ]
`)
	fp := base.Fingerprint()
	mutations := []struct {
		name string
		mut  func(s *Schema)
	}{
		{"element name", func(s *Schema) {
			s.Types["Aka"].(*Element).Name = "alias"
		}},
		{"scalar size", func(s *Schema) {
			s.Types["Aka"].(*Element).Content.(*Scalar).Size = 21
		}},
		{"scalar distinct", func(s *Schema) {
			show := s.Types["Show"].(*Element).Content.(*Sequence)
			show.Items[1].(*Element).Content.(*Scalar).Distinct = 101
		}},
		{"repeat bounds", func(s *Schema) {
			show := s.Types["Show"].(*Element).Content.(*Sequence)
			show.Items[3].(*Repeat).Max = 11
		}},
		{"repeat avg count", func(s *Schema) {
			show := s.Types["Show"].(*Element).Content.(*Sequence)
			show.Items[3].(*Repeat).AvgCount = 2.5
		}},
		{"choice fractions", func(s *Schema) {
			show := s.Types["Show"].(*Element).Content.(*Sequence)
			show.Items[4].(*Choice).Fractions = []float64{0.8, 0.2}
		}},
		{"swap choice alternatives", func(s *Schema) {
			show := s.Types["Show"].(*Element).Content.(*Sequence)
			alts := show.Items[4].(*Choice).Alts
			alts[0], alts[1] = alts[1], alts[0]
		}},
		{"drop a definition use", func(s *Schema) {
			show := s.Types["Show"].(*Element).Content.(*Sequence)
			show.Items = show.Items[:4]
		}},
	}
	for _, m := range mutations {
		s := base.Clone()
		m.mut(s)
		if s.Fingerprint() == fp {
			t.Errorf("mutation %q did not change the fingerprint", m.name)
		}
		if Equivalent(base, s) {
			t.Errorf("mutation %q left schema Equivalent", m.name)
		}
	}
}

// TestFingerprintIgnoresUnreachable: garbage definitions do not affect
// the fingerprint (the relational mapping never sees them either).
func TestFingerprintIgnoresUnreachable(t *testing.T) {
	s := MustParseSchema(`
type Root = root [ Item* ]
type Item = item [ String ]
`)
	fp := s.Fingerprint()
	withGarbage := s.Clone()
	withGarbage.Define("Orphan", &Element{Name: "orphan", Content: &Empty{}})
	if withGarbage.Fingerprint() != fp {
		t.Fatal("unreachable definition changed the fingerprint")
	}
	if !Equivalent(s, withGarbage) {
		t.Fatal("unreachable definition broke equivalence")
	}
}

// TestFingerprintDistinguishesSharingFromCopies: two references to one
// named type map to one relation; two identical but distinct named types
// map to two — the fingerprints must differ.
func TestFingerprintDistinguishesSharingFromCopies(t *testing.T) {
	shared := MustParseSchema(`
type Root = root [ A, A ]
type A = a [ String ]
`)
	copied := MustParseSchema(`
type Root = root [ A, B ]
type A = a [ String ]
type B = a [ String ]
`)
	if shared.Fingerprint() == copied.Fingerprint() {
		t.Fatal("shared-reference and copied-definition schemas fingerprint equal")
	}
}

func TestCanonicalOrderRootFirstAndReachableOnly(t *testing.T) {
	s := MustParseSchema(`
type B = b [ C ]
type C = c [ String ]
type A = a [ B ]
`)
	// Parser makes the first definition (B) the root.
	order := s.CanonicalOrder()
	want := []string{"B", "C"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("CanonicalOrder = %v, want %v", order, want)
	}
}
