package xschema

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseSchema parses a schema written in the paper's XML Query Algebra
// notation, e.g.
//
//	type Show = show [ @type[ String ], title[ String<#50,#34798> ],
//	                   Aka{1,10}, Review*<#10>, ( Movie | TV ) ]
//	type Aka = aka[ String ]
//	...
//
// The first defined type becomes the schema root. Statistics annotations
// (<#...>) are optional everywhere.
func ParseSchema(src string) (*Schema, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var schema *Schema
	for p.tok.kind != tokEOF {
		if p.tok.kind != tokIdent || p.tok.text != "type" {
			return nil, p.errorf("expected 'type', got %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected type name, got %q", p.tok.text)
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokEquals); err != nil {
			return nil, err
		}
		body, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if schema == nil {
			schema = NewSchema(name)
		}
		if _, dup := schema.Types[name]; dup {
			return nil, fmt.Errorf("xschema: duplicate type definition %q", name)
		}
		schema.Define(name, body)
	}
	if schema == nil {
		return nil, fmt.Errorf("xschema: empty schema source")
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return schema, nil
}

// MustParseSchema is ParseSchema that panics on error; for tests and
// embedded schema literals.
func MustParseSchema(src string) *Schema {
	s, err := ParseSchema(src)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseType parses a single type expression in algebra notation.
func ParseType(src string) (Type, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errorf("trailing input %q", p.tok.text)
	}
	return t, nil
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokEquals   // =
	tokLBracket // [
	tokRBracket // ]
	tokLParen   // (
	tokRParen   // )
	tokLBrace   // {
	tokRBrace   // }
	tokComma    // ,
	tokPipe     // |
	tokStar     // *
	tokPlus     // +
	tokQuestion // ?
	tokAt       // @
	tokTilde    // ~
	tokBang     // !
	tokLAngle   // <
	tokRAngle   // >
	tokHash     // #
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments with //.
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	single := map[byte]tokKind{
		'=': tokEquals, '[': tokLBracket, ']': tokRBracket,
		'(': tokLParen, ')': tokRParen, '{': tokLBrace, '}': tokRBrace,
		',': tokComma, '|': tokPipe, '*': tokStar, '+': tokPlus,
		'?': tokQuestion, '@': tokAt, '~': tokTilde, '!': tokBang,
		'<': tokLAngle, '>': tokRAngle, '#': tokHash,
	}
	if kind, ok := single[c]; ok {
		l.pos++
		return token{kind: kind, text: string(c), pos: start}, nil
	}
	if isIdentStart(rune(c)) {
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	}
	if c == '-' || (c >= '0' && c <= '9') {
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	}
	return token{}, fmt.Errorf("xschema: unexpected character %q at offset %d", c, start)
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokKind) error {
	if p.tok.kind != kind {
		return p.errorf("unexpected token %q", p.tok.text)
	}
	return p.advance()
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("xschema: parse error at offset %d: %s", p.tok.pos, fmt.Sprintf(format, args...))
}

// parseType parses a full type expression (choice level).
func (p *parser) parseType() (Type, error) {
	first, err := p.parseSequence()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokPipe {
		return first, nil
	}
	alts := []Type{first}
	for p.tok.kind == tokPipe {
		if err := p.advance(); err != nil {
			return nil, err
		}
		alt, err := p.parseSequence()
		if err != nil {
			return nil, err
		}
		alts = append(alts, alt)
	}
	return &Choice{Alts: alts}, nil
}

func (p *parser) parseSequence() (Type, error) {
	first, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokComma {
		return first, nil
	}
	items := []Type{first}
	for p.tok.kind == tokComma {
		if err := p.advance(); err != nil {
			return nil, err
		}
		item, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	return &Sequence{Items: items}, nil
}

func (p *parser) parsePostfix() (Type, error) {
	t, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var min, max int
		switch p.tok.kind {
		case tokStar:
			min, max = 0, Unbounded
		case tokPlus:
			min, max = 1, Unbounded
		case tokQuestion:
			min, max = 0, 1
		case tokLBrace:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokNumber {
				return nil, p.errorf("expected repetition lower bound")
			}
			min, err = strconv.Atoi(p.tok.text)
			if err != nil {
				return nil, p.errorf("bad repetition bound %q", p.tok.text)
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expect(tokComma); err != nil {
				return nil, err
			}
			switch p.tok.kind {
			case tokStar:
				max = Unbounded
			case tokNumber:
				max, err = strconv.Atoi(p.tok.text)
				if err != nil {
					return nil, p.errorf("bad repetition bound %q", p.tok.text)
				}
			default:
				return nil, p.errorf("expected repetition upper bound")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokRBrace {
				return nil, p.errorf("expected '}'")
			}
		default:
			return t, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rep := &Repeat{Inner: t, Min: min, Max: max}
		if p.tok.kind == tokLAngle {
			nums, err := p.parseAnnotation()
			if err != nil {
				return nil, err
			}
			if len(nums) > 0 {
				rep.AvgCount = nums[0]
			}
		}
		t = rep
	}
}

func (p *parser) parsePrimary() (Type, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Empty sequence: ().
		if p.tok.kind == tokRParen {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Empty{}, nil
		}
		// Parenthesized wildcards: (~!a)[ t ] and (~[ t ]).
		if p.tok.kind == tokTilde {
			w, err := p.parseWildcardName()
			if err != nil {
				return nil, err
			}
			if p.tok.kind == tokLBracket {
				t, err := p.parseWildcardBody(w)
				if err != nil {
					return nil, err
				}
				if err := p.expect(tokRParen); err != nil {
					return nil, err
				}
				return t, nil
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return p.parseWildcardBody(w)
		}
		inner, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	case tokTilde:
		w, err := p.parseWildcardName()
		if err != nil {
			return nil, err
		}
		return p.parseWildcardBody(w)
	case tokAt:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected attribute name")
		}
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		content, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return &Attribute{Name: name, Content: content}, nil
	case tokIdent:
		name := p.tok.text
		if name == "String" || name == "Integer" {
			return p.parseScalar(name)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLBracket {
			if err := p.advance(); err != nil {
				return nil, err
			}
			content, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			return &Element{Name: name, Content: content}, nil
		}
		return &Ref{Name: name}, nil
	default:
		return nil, p.errorf("unexpected token %q", p.tok.text)
	}
}

// parseWildcardName consumes '~' with an optional '!name' exclusion list.
func (p *parser) parseWildcardName() (*Wildcard, error) {
	if err := p.advance(); err != nil { // consume ~
		return nil, err
	}
	w := &Wildcard{}
	for p.tok.kind == tokBang {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokIdent {
			return nil, p.errorf("expected excluded element name after ~!")
		}
		w.Exclude = append(w.Exclude, p.tok.text)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokComma {
			break
		}
		// peek: ',!' continues the exclusion list; a plain ',' belongs to
		// the enclosing sequence and is not consumed here.
		save := *p.lex
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokBang {
			*p.lex = save
			p.tok = saveTok
			break
		}
	}
	return w, nil
}

func (p *parser) parseWildcardBody(w *Wildcard) (Type, error) {
	if err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	content, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	w.Content = content
	return w, nil
}

func (p *parser) parseScalar(kindName string) (Type, error) {
	s := &Scalar{}
	if kindName == "Integer" {
		s.Kind = IntegerKind
		s.Size = 4
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokLAngle {
		nums, err := p.parseAnnotation()
		if err != nil {
			return nil, err
		}
		// Zero annotation values mean "unspecified" and normalize to the
		// defaults, and Integer min/max travel only with a distinct count —
		// the printed form cannot represent the other combinations, and
		// parse → print → parse must not lose statistics.
		switch s.Kind {
		case StringKind:
			if len(nums) > 0 && nums[0] > 0 {
				s.Size = int(nums[0])
			}
			if len(nums) > 1 && nums[1] > 0 {
				s.Distinct = int64(nums[1])
			}
		case IntegerKind:
			if len(nums) > 0 && nums[0] > 0 {
				s.Size = int(nums[0])
			}
			if len(nums) > 3 && nums[3] > 0 {
				s.Min, s.Max = int64(nums[1]), int64(nums[2])
				s.Distinct = int64(nums[3])
			}
		}
	}
	return s, nil
}

// parseAnnotation parses a statistics annotation <#n,#n,...> and returns
// the numbers in order.
func (p *parser) parseAnnotation() ([]float64, error) {
	if err := p.expect(tokLAngle); err != nil {
		return nil, err
	}
	var nums []float64
	for {
		if err := p.expect(tokHash); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errorf("expected number in statistics annotation")
		}
		n, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", p.tok.text)
		}
		nums = append(nums, n)
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expect(tokRAngle); err != nil {
		return nil, err
	}
	return nums, nil
}

// Normalize simplifies a type tree: single-item sequences/choices are
// unwrapped, nested sequences are flattened, Empty items are dropped from
// sequences, and Repeat{1,1} is unwrapped. It never changes the language
// of the type.
func Normalize(t Type) Type {
	switch t := t.(type) {
	case *Element:
		t.Content = Normalize(t.Content)
		return t
	case *Attribute:
		t.Content = Normalize(t.Content)
		return t
	case *Wildcard:
		t.Content = Normalize(t.Content)
		return t
	case *Sequence:
		var items []Type
		for _, it := range t.Items {
			it = Normalize(it)
			if _, ok := it.(*Empty); ok {
				continue
			}
			if seq, ok := it.(*Sequence); ok {
				items = append(items, seq.Items...)
				continue
			}
			items = append(items, it)
		}
		switch len(items) {
		case 0:
			return &Empty{}
		case 1:
			return items[0]
		default:
			t.Items = items
			return t
		}
	case *Choice:
		for i, a := range t.Alts {
			t.Alts[i] = Normalize(a)
		}
		if len(t.Alts) == 1 {
			return t.Alts[0]
		}
		return t
	case *Repeat:
		t.Inner = Normalize(t.Inner)
		if t.Min == 1 && t.Max == 1 {
			return t.Inner
		}
		return t
	default:
		return t
	}
}

// NormalizeSchema applies Normalize to every definition in place.
func NormalizeSchema(s *Schema) {
	for _, name := range s.Names {
		s.Types[name] = Normalize(s.Types[name])
	}
}

// ParsePath splits a slash-separated path expression like
// "imdb/show/title" into its steps. Leading "document(...)" wrappers and
// leading slashes are ignored.
var _ = strings.TrimPrefix // keep strings imported for ParsePath below

// ParsePath parses "a/b/c" into []string{"a","b","c"}.
func ParsePath(s string) []string {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, ")"); strings.HasPrefix(s, "document(") && i >= 0 {
		s = s[i+1:]
	}
	s = strings.TrimPrefix(s, "/")
	if s == "" {
		return nil
	}
	return strings.Split(s, "/")
}
