package optimizer

import (
	"strings"
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

const imdbFixture = `
type IMDB = imdb[ Show{0,*}<#34798> ]
type Show = show [ @type[ String<#8,#2> ],
    title[ String<#50,#34798> ],
    year[ Integer<#4,#1800,#2100,#300> ],
    Aka{1,10}<#3>,
    Review*<#2>,
    ( Movie | TV ) ]
type Aka = aka[ String<#40,#13641> ]
type Review = review[ ~[ String<#800,#11000> ] ]
type Movie = box_office[ Integer<#4,#10000,#100000000,#7000> ], video_sales[ Integer<#4,#10000,#100000000,#7000> ]
type TV = seasons[ Integer<#4,#1,#60,#50> ], description[ String<#120,#3500> ], Episode*<#9>
type Episode = episode[ name[ String<#40,#31250> ], guest_director[ String<#40,#5000> ] ]
`

type env struct {
	schema *xschema.Schema
	cat    *relational.Catalog
	opt    *Optimizer
}

func buildEnv(t *testing.T, src string) *env {
	t.Helper()
	s := xschema.MustParseSchema(src)
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return &env{schema: s, cat: cat, opt: New(cat)}
}

func (e *env) cost(t *testing.T, query string) float64 {
	t.Helper()
	q := xquery.MustParse(query)
	sq, err := xquery.Translate(q, e.schema, e.cat)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	est, err := e.opt.QueryCost(sq)
	if err != nil {
		t.Fatalf("QueryCost: %v", err)
	}
	if est.Cost <= 0 {
		t.Fatalf("non-positive cost %g for %s", est.Cost, query)
	}
	return est.Cost
}

func TestSelectiveLookupCheaperThanPublish(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	lookup := e.cost(t, `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`)
	publish := e.cost(t, `FOR $v IN imdb/show RETURN $v`)
	if lookup >= publish {
		t.Fatalf("lookup (%.1f) should cost less than publish-all (%.1f)", lookup, publish)
	}
	if publish < 10*lookup {
		t.Fatalf("publish (%.1f) should dominate lookup (%.1f) by a wide margin", publish, lookup)
	}
}

func TestMoreSelectiveFilterCostsLess(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	// title has 34798 distinct values; year only 300. A title lookup
	// returns fewer rows, so downstream work is cheaper.
	byTitle := e.cost(t, `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year, $v/aka`)
	byYear := e.cost(t, `FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/year, $v/aka`)
	if byTitle >= byYear {
		t.Fatalf("title lookup (%.1f) should be cheaper than year lookup (%.1f)", byTitle, byYear)
	}
}

func TestJoinUsesIndexNestedLoopThroughKey(t *testing.T) {
	// A selective filter on Episode makes the plan start there and probe
	// its parents through their (indexed) key columns.
	e := buildEnv(t, imdbFixture)
	q := xquery.MustParse(`FOR $v IN imdb/show, $e IN $v/episode WHERE $e/name = c1 RETURN $v/title`)
	sq, err := xquery.Translate(q, e.schema, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.opt.QueryCost(sq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(est.Plan, "inl") {
		t.Fatalf("selective child-to-parent join should use index nested-loop: %s", est.Plan)
	}
}

func TestPublishUsesHashJoins(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	q := xquery.MustParse(`FOR $v IN imdb/show, $a IN $v/aka RETURN $v/title, $a`)
	sq, err := xquery.Translate(q, e.schema, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.opt.QueryCost(sq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(est.Plan, "hash") {
		t.Fatalf("unselective join should use hash join somewhere: %s", est.Plan)
	}
}

func TestWiderTablesCostMoreToScan(t *testing.T) {
	narrow := buildEnv(t, `
type R = r[ X*<#10000> ]
type X = x[ a[ String<#10,#100> ] ]`)
	wide := buildEnv(t, `
type R = r[ X*<#10000> ]
type X = x[ a[ String<#10,#100> ], b[ String<#500,#100> ] ]`)
	nc := narrow.cost(t, `FOR $x IN r/x WHERE $x/a = c1 RETURN $x/a`)
	wc := wide.cost(t, `FOR $x IN r/x WHERE $x/a = c1 RETURN $x/a`)
	if nc >= wc {
		t.Fatalf("narrow scan (%.1f) should cost less than wide scan (%.1f)", nc, wc)
	}
}

func TestWorkloadCostWeighting(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	lookup := xquery.MustParse(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`)
	publish := xquery.MustParse(`FOR $v IN imdb/show RETURN $v`)
	lq, err := xquery.Translate(lookup, e.schema, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := xquery.Translate(publish, e.schema, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := e.opt.WorkloadCost([]*sqlast.Query{lq, pq}, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	light, err := e.opt.WorkloadCost([]*sqlast.Query{lq, pq}, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if heavy >= light {
		t.Fatalf("lookup-heavy workload (%.1f) should cost less than publish-heavy (%.1f)", heavy, light)
	}
	if _, err := e.opt.WorkloadCost([]*sqlast.Query{lq}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched weights accepted")
	}
}

func TestRangeSelectivity(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	// year in [1800, 2100]: "< 2099" passes almost everything, "< 1801"
	// almost nothing, so the cheaper query is the selective one.
	narrow := e.cost(t, `FOR $v IN imdb/show WHERE $v/year < 1801 RETURN $v/title, $v/aka`)
	broad := e.cost(t, `FOR $v IN imdb/show WHERE $v/year < 2099 RETURN $v/title, $v/aka`)
	if narrow >= broad {
		t.Fatalf("selective range (%.1f) should cost less than broad range (%.1f)", narrow, broad)
	}
}

func TestAllInlinedPublishVsOutlinedPublish(t *testing.T) {
	// The central trade-off of Figure 10: fully outlined configurations
	// pay many joins on publishing; the all-inlined configuration pays
	// wide scans but far fewer joins. For the publish-everything query
	// the outlined configuration must cost more.
	s := xschema.MustParseSchema(imdbFixture)
	outlined, err := pschema.InitialOutlined(s)
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := pschema.AllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	costOn := func(ps *xschema.Schema) float64 {
		cat, err := relational.Map(ps)
		if err != nil {
			t.Fatal(err)
		}
		opt := New(cat)
		q := xquery.MustParse(`FOR $v IN imdb/show RETURN $v`)
		sq, err := xquery.Translate(q, ps, cat)
		if err != nil {
			t.Fatal(err)
		}
		est, err := opt.QueryCost(sq)
		if err != nil {
			t.Fatal(err)
		}
		return est.Cost
	}
	oc, ic := costOn(outlined), costOn(inlined)
	if oc <= ic {
		t.Fatalf("outlined publish (%.1f) should cost more than inlined publish (%.1f)", oc, ic)
	}
}

func TestBlockCostErrors(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	if _, err := e.opt.BlockCost(&sqlast.Block{}); err == nil {
		t.Error("empty block accepted")
	}
	bad := &sqlast.Block{}
	bad.AddTable("NoSuch", "t1")
	if _, err := e.opt.BlockCost(bad); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestExplainOutput(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	q := xquery.MustParse(`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title`)
	sq, err := xquery.Translate(q, e.schema, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.opt.Explain(sq)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "block 1") || !strings.Contains(out, "total:") {
		t.Fatalf("Explain = %q", out)
	}
}

func TestDeterministicEstimates(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	q := `FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/aka, $v/review/nyt`
	c1 := e.cost(t, q)
	c2 := e.cost(t, q)
	if c1 != c2 {
		t.Fatalf("estimates differ across runs: %g vs %g", c1, c2)
	}
}

// TestQueryCostComposesFromBlockCosts: QueryCost over a union query must
// equal, bit for bit, the sum of BlockCostShared over its blocks with
// the scan-state map threaded across them — the contract the plan
// layer's per-block memoization is built on.
func TestQueryCostComposesFromBlockCosts(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	for _, query := range []string{
		`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`,
		`FOR $v IN imdb/show, $x IN $v/episode WHERE $x/name = c1 RETURN $v/title`,
		`FOR $v IN imdb/show RETURN $v`,
		`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/aka, $v/review/nyt`,
	} {
		sq, err := xquery.Translate(xquery.MustParse(query), e.schema, e.cat)
		if err != nil {
			t.Fatalf("Translate %s: %v", query, err)
		}
		want, err := e.opt.QueryCost(sq)
		if err != nil {
			t.Fatalf("QueryCost %s: %v", query, err)
		}
		scanned := make(map[string]bool)
		var sum float64
		for _, b := range sq.Blocks {
			est, err := e.opt.BlockCostShared(b, scanned)
			if err != nil {
				t.Fatalf("BlockCostShared %s: %v", query, err)
			}
			sum += est.Cost
		}
		if sum != want.Cost {
			t.Errorf("%s: composed block costs %x, QueryCost %x", query, sum, want.Cost)
		}
	}
}

// TestBlockCostAliasInvariant: renaming every alias consistently must
// not move the cost — the property that licenses keying the block memo
// on the alias-invariant shape.
func TestBlockCostAliasInvariant(t *testing.T) {
	e := buildEnv(t, imdbFixture)
	sq, err := xquery.Translate(
		xquery.MustParse(`FOR $v IN imdb/show, $x IN $v/episode WHERE $x/name = c1 RETURN $v/title`),
		e.schema, e.cat)
	if err != nil {
		t.Fatal(err)
	}
	b := sq.Blocks[0]
	base, err := e.opt.BlockCostShared(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ren := b.Clone()
	names := map[string]string{}
	for i := range ren.Tables {
		names[ren.Tables[i].Alias] = "zz_" + ren.Tables[i].Alias
		ren.Tables[i].Alias = "zz_" + ren.Tables[i].Alias
	}
	fix := func(c *sqlast.ColumnRef) {
		if n, ok := names[c.Alias]; ok {
			c.Alias = n
		}
	}
	for i := range ren.Joins {
		fix(&ren.Joins[i].Left)
		fix(&ren.Joins[i].Right)
	}
	for i := range ren.Filters {
		fix(&ren.Filters[i].Col)
		if ren.Filters[i].RightCol != nil {
			fix(ren.Filters[i].RightCol)
		}
	}
	for i := range ren.Projects {
		fix(&ren.Projects[i])
	}
	got, err := e.opt.BlockCostShared(ren, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != base.Cost {
		t.Fatalf("alias renaming moved the block cost: %x vs %x", got.Cost, base.Cost)
	}
	if b.ShapeKey() != ren.ShapeKey() {
		t.Fatal("renamed block changed shape; the invariant test is vacuous")
	}
}
