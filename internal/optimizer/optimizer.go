// Package optimizer implements the relational cost model LegoDB uses to
// rank storage configurations. Like the Volcano-derived optimizer of the
// paper (Section 5), it estimates, for each SPJ block, the cost of the
// best plan it can find — accounting for the number of seeks, the amount
// of data read and written, and CPU time — using the catalog statistics
// produced by the fixed mapping.
//
// Physical assumptions, documented for reproducibility:
//
//   - rows are stored fixed-width (CHAR semantics; NULL columns still
//     occupy space), as in the paper's SQL Server 6.5 validation target;
//   - each relation is indexed on its key (<T>_id) column only, so a
//     join can run as an index nested-loop when it enters the new
//     relation through its key; joins entering through a foreign key and
//     selections on data columns cost a scan (this matches Table 2 of
//     the paper, where the cost over the un-partitioned reviews table
//     does not change with the NYT percentage);
//   - join orders are chosen greedily from the most selective base
//     relation, choosing per step between index nested-loop and hash
//     join.
package optimizer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"legodb/internal/faults"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
)

// CostModel holds the constants of the cost function. Units are
// arbitrary "cost units"; experiments report ratios.
type CostModel struct {
	// PageSize is the IO unit in bytes.
	PageSize float64
	// SeekCost is charged per random IO (starting a scan, one index
	// probe miss).
	SeekCost float64
	// PageIOCost is charged per page read sequentially.
	PageIOCost float64
	// RandomIOPenalty multiplies page IO fetched through an index.
	RandomIOPenalty float64
	// ProbeCost is the CPU+IO cost of one index probe (descending the
	// index, warm caches).
	ProbeCost float64
	// CPUTupleCost is charged per tuple handled.
	CPUTupleCost float64
	// HashCost is charged per tuple hashed (build or probe).
	HashCost float64
	// OutputByteCost is charged per result byte materialized.
	OutputByteCost float64
	// DefaultEqSelectivity applies when no distinct count is known.
	DefaultEqSelectivity float64
	// DefaultRangeSelectivity applies to <, <=, >, >= without bounds.
	DefaultRangeSelectivity float64
	// WriteByteCost is charged per row byte written by update operations
	// (fixed-width rows rewrite whole rows).
	WriteByteCost float64
	// IndexWriteCost is charged per index maintained per row written.
	IndexWriteCost float64
}

// DefaultModel returns the calibrated constants used in the experiments.
func DefaultModel() CostModel {
	return CostModel{
		PageSize:                4096,
		SeekCost:                8,
		PageIOCost:              1,
		RandomIOPenalty:         4,
		ProbeCost:               0.5,
		CPUTupleCost:            0.01,
		HashCost:                0.012,
		OutputByteCost:          0.0004,
		DefaultEqSelectivity:    0.05,
		DefaultRangeSelectivity: 1.0 / 3,
		WriteByteCost:           0.002,
		IndexWriteCost:          1,
	}
}

// Optimizer estimates query costs over one catalog.
type Optimizer struct {
	Model CostModel
	Cat   *relational.Catalog
}

// New returns an optimizer over the catalog with the default cost model.
func New(cat *relational.Catalog) *Optimizer {
	return &Optimizer{Model: DefaultModel(), Cat: cat}
}

// Estimate is the optimizer's verdict on a block or query.
type Estimate struct {
	Cost float64
	Rows float64
	// Plan is a human-readable join order, for debugging and reports.
	Plan string
}

// QueryCost sums the best-plan costs of all blocks. Blocks of one query
// share scans: a table already read by an earlier block costs only CPU
// when read again (the paper's optimizer descends from the multi-query
// optimizer of Roy et al. [16], which shares common sub-expressions; a
// sorted-outer-union publishing query re-reads its hub relations in
// every block).
func (o *Optimizer) QueryCost(q *sqlast.Query) (Estimate, error) {
	if err := faults.Inject(faults.SiteQueryCost); err != nil {
		return Estimate{}, err
	}
	var total Estimate
	var plans []string
	scanned := make(map[string]bool)
	for _, b := range q.Blocks {
		est, err := o.BlockCostShared(b, scanned)
		if err != nil {
			return Estimate{}, fmt.Errorf("optimizer: %s: %w", q.Name, err)
		}
		total.Cost += est.Cost
		total.Rows += est.Rows
		plans = append(plans, est.Plan)
	}
	total.Plan = strings.Join(plans, " UNION ")
	return total, nil
}

// WorkloadCost returns the weighted average cost of translated queries:
// Σ weight_i · cost_i / Σ weight_i.
func (o *Optimizer) WorkloadCost(queries []*sqlast.Query, weights []float64) (float64, error) {
	if len(queries) != len(weights) {
		return 0, fmt.Errorf("optimizer: %d queries, %d weights", len(queries), len(weights))
	}
	total, wsum := 0.0, 0.0
	for i, q := range queries {
		est, err := o.QueryCost(q)
		if err != nil {
			return 0, err
		}
		total += est.Cost * weights[i]
		wsum += weights[i]
	}
	if wsum == 0 {
		return 0, fmt.Errorf("optimizer: zero total weight")
	}
	return total / wsum, nil
}

// rel is the per-alias working state during block costing.
type rel struct {
	alias   string
	table   *relational.Table
	rows    float64 // after local selections
	rawRows float64
	width   float64
	// eqFiltered marks that a local equality selection applies (affects
	// nothing else; scans are still scans on data columns).
	filters int
}

// edge is a join predicate between two aliases.
type edge struct {
	a, b       string // aliases
	aCol, bCol string
}

// BlockCost estimates the best plan cost for a block in isolation.
func (o *Optimizer) BlockCost(b *sqlast.Block) (Estimate, error) {
	return o.blockCost(b, make(map[string]bool))
}

// BlockCostShared is the block-level costing unit that QueryCost composes:
// it estimates the best plan for one block given the tables already read
// by earlier blocks of the same query, and records into scanned the tables
// (and shared hash builds, under "hash:"-prefixed entries) the chosen plan
// reads. The estimate depends on the scanned set only through the entries
// for the block's own table names, and the entries it adds are likewise
// confined to those names — the invariant that lets the logical-plan layer
// (internal/plan) memoize (cost, added entries) across structurally
// identical blocks and replay them into a different query's scan state.
func (o *Optimizer) BlockCostShared(b *sqlast.Block, scanned map[string]bool) (Estimate, error) {
	if scanned == nil {
		scanned = make(map[string]bool)
	}
	return o.blockCost(b, scanned)
}

// blockCost estimates a block's cost; scanned carries the tables already
// read by earlier blocks of the same query (their re-scans cost CPU
// only).
func (o *Optimizer) blockCost(b *sqlast.Block, scanned map[string]bool) (Estimate, error) {
	if len(b.Tables) == 0 {
		return Estimate{}, fmt.Errorf("block has no tables")
	}
	rels := make(map[string]*rel, len(b.Tables))
	var order []string
	for _, tref := range b.Tables {
		t := o.Cat.Table(tref.Table)
		if t == nil {
			return Estimate{}, fmt.Errorf("unknown table %q", tref.Table)
		}
		r := &rel{alias: tref.Alias, table: t, rows: t.Rows, rawRows: t.Rows, width: t.RowBytes()}
		if r.rows < 1 {
			r.rows = 1
		}
		if r.rawRows < 1 {
			r.rawRows = 1
		}
		rels[tref.Alias] = r
		order = append(order, tref.Alias)
	}
	// Local selections reduce the estimated rows of their alias.
	var edges []edge
	for _, j := range b.Joins {
		edges = append(edges, edge{a: j.Left.Alias, aCol: j.Left.Column, b: j.Right.Alias, bCol: j.Right.Column})
	}
	for _, f := range b.Filters {
		if f.RightCol != nil {
			if f.RightCol.Alias != f.Col.Alias {
				edges = append(edges, edge{a: f.Col.Alias, aCol: f.Col.Column, b: f.RightCol.Alias, bCol: f.RightCol.Column})
				continue
			}
		}
		r := rels[f.Col.Alias]
		if r == nil {
			return Estimate{}, fmt.Errorf("filter on unknown alias %q", f.Col.Alias)
		}
		r.rows *= o.selectivity(r.table, f)
		if r.rows < 0.01 {
			r.rows = 0.01
		}
		r.filters++
	}
	est := o.greedyJoin(rels, order, edges, scanned)
	// Output cost: result rows times projected width.
	projWidth := 0.0
	for _, p := range b.Projects {
		r := rels[p.Alias]
		if r == nil {
			return Estimate{}, fmt.Errorf("projection on unknown alias %q", p.Alias)
		}
		if c := r.table.Column(p.Column); c != nil {
			projWidth += float64(c.Size)
		}
	}
	est.Cost += est.Rows * projWidth * o.Model.OutputByteCost
	return est, nil
}

// selectivity estimates the fraction of rows passing a constant filter.
func (o *Optimizer) selectivity(t *relational.Table, f sqlast.Filter) float64 {
	col := t.Column(f.Col.Column)
	switch f.Op {
	case sqlast.OpEq:
		if f.RightCol != nil { // same-alias column equality
			return o.Model.DefaultEqSelectivity
		}
		if col != nil && col.Distinct > 0 {
			return 1 / col.Distinct
		}
		return o.Model.DefaultEqSelectivity
	case sqlast.OpNe:
		if col != nil && col.Distinct > 0 {
			return 1 - 1/col.Distinct
		}
		return 1 - o.Model.DefaultEqSelectivity
	default:
		if col != nil && col.Max > col.Min && f.Value.IsInt {
			below := cumulativeBelow(col, float64(f.Value.Int))
			switch f.Op {
			case sqlast.OpLt, sqlast.OpLe:
				return math.Max(below, 0.001)
			default:
				return math.Max(1-below, 0.001)
			}
		}
		return o.Model.DefaultRangeSelectivity
	}
}

// cumulativeBelow estimates the fraction of column values below v: from
// the equi-width histogram when present (with linear interpolation inside
// the boundary bucket), else assuming a uniform distribution over
// [Min, Max].
func cumulativeBelow(col *relational.Column, v float64) float64 {
	lo, hi := float64(col.Min), float64(col.Max)
	pos := (v - lo) / (hi - lo)
	pos = math.Max(0, math.Min(1, pos))
	if len(col.Hist) == 0 {
		return pos
	}
	buckets := float64(len(col.Hist))
	exact := pos * buckets
	full := int(exact)
	below := 0.0
	for i := 0; i < full && i < len(col.Hist); i++ {
		below += col.Hist[i]
	}
	if full < len(col.Hist) {
		below += col.Hist[full] * (exact - float64(full))
	}
	return below
}

// scanCost is the cost of reading a relation sequentially. Tables in the
// scanned set have been read earlier in the same query and cost only
// CPU. The set is not modified; callers commit a scan with markScanned
// once a plan step is actually chosen.
func (o *Optimizer) scanCost(r *rel, scanned map[string]bool) float64 {
	if scanned != nil && scanned[r.table.Name] {
		return r.rawRows * o.Model.CPUTupleCost
	}
	pages := math.Ceil(r.rawRows * r.width / o.Model.PageSize)
	return o.Model.SeekCost + pages*o.Model.PageIOCost + r.rawRows*o.Model.CPUTupleCost
}

func markScanned(scanned map[string]bool, r *rel) {
	if scanned != nil {
		scanned[r.table.Name] = true
	}
}

// greedyJoin orders the join greedily: start from the cheapest filtered
// relation, then repeatedly attach the connected relation with the
// lowest incremental cost, choosing between index nested-loop (when the
// join enters the new relation through its key) and hash join. Every
// remaining join predicate whose sides are both bound applies as a
// selectivity reduction as soon as it becomes applicable.
func (o *Optimizer) greedyJoin(rels map[string]*rel, order []string, edges []edge, scanned map[string]bool) Estimate {
	if len(order) == 1 {
		r := rels[order[0]]
		c := o.scanCost(r, scanned)
		markScanned(scanned, r)
		return Estimate{Cost: c, Rows: r.rows, Plan: r.alias}
	}
	// Candidate start relations: the globally smallest, and the smallest
	// among locally-filtered relations (starting at a filtered child lets
	// the plan probe ancestors through their keys). Keep the cheaper
	// resulting plan; side effects on the shared scan cache commit only
	// for the winner.
	minRows := order[0]
	var minFiltered string
	for _, a := range order {
		if rels[a].rows < rels[minRows].rows {
			minRows = a
		}
		if rels[a].filters > 0 && (minFiltered == "" || rels[a].rows < rels[minFiltered].rows) {
			minFiltered = a
		}
	}
	starts := []string{minRows}
	if minFiltered != "" && minFiltered != minRows {
		starts = append(starts, minFiltered)
	}
	best := Estimate{Cost: math.Inf(1)}
	var bestCache map[string]bool
	for _, start := range starts {
		cache := cloneCache(scanned)
		est := o.greedyJoinFrom(rels, order, edges, cache, start)
		if est.Cost < best.Cost {
			best = est
			bestCache = cache
		}
	}
	if scanned != nil {
		for k, v := range bestCache {
			if v {
				scanned[k] = true
			}
		}
	}
	return best
}

func cloneCache(scanned map[string]bool) map[string]bool {
	out := make(map[string]bool, len(scanned))
	for k, v := range scanned {
		out[k] = v
	}
	return out
}

// greedyJoinFrom runs the greedy join ordering from a fixed start
// relation.
func (o *Optimizer) greedyJoinFrom(rels map[string]*rel, order []string, edges []edge, scanned map[string]bool, start string) Estimate {
	joined := map[string]bool{start: true}
	cost := o.scanCost(rels[start], scanned)
	markScanned(scanned, rels[start])
	rows := rels[start].rows
	plan := []string{rels[start].alias}
	consumed := make([]bool, len(edges))
	for len(joined) < len(order) {
		bestAlias := ""
		var bestEdges []int
		bestCost := math.Inf(1)
		bestRows := 0.0
		bestHow := ""
		for _, a := range order {
			if joined[a] {
				continue
			}
			connecting := connectingEdges(edges, consumed, joined, a)
			if len(connecting) == 0 {
				continue
			}
			stepCost, stepRows, how := o.joinStep(rels, rows, a, edges, connecting, scanned)
			if stepCost < bestCost {
				bestAlias, bestEdges, bestCost, bestRows, bestHow = a, connecting, stepCost, stepRows, how
			}
		}
		if bestAlias == "" {
			// Disconnected component: fall back to a cartesian-ish merge
			// with the smallest remaining relation.
			for _, a := range order {
				if joined[a] {
					continue
				}
				r := rels[a]
				stepCost := o.scanCost(r, scanned) + rows*r.rows*o.Model.CPUTupleCost
				if stepCost < bestCost {
					bestAlias, bestEdges, bestCost = a, nil, stepCost
					bestRows = rows * r.rows
					bestHow = "cartesian"
				}
			}
		}
		joined[bestAlias] = true
		if bestHow == "hash" || bestHow == "cartesian" {
			markScanned(scanned, rels[bestAlias])
			if bestHow == "hash" && scanned != nil {
				scanned["hash:"+rels[bestAlias].table.Name] = true
			}
		}
		for _, i := range bestEdges {
			consumed[i] = true
		}
		cost += bestCost
		rows = bestRows
		plan = append(plan, bestHow+" "+bestAlias)
	}
	return Estimate{Cost: cost, Rows: rows, Plan: strings.Join(plan, " -> ")}
}

// connectingEdges returns the indexes of every unconsumed edge linking
// the joined set to alias a.
func connectingEdges(edges []edge, consumed []bool, joined map[string]bool, a string) []int {
	var out []int
	for i, e := range edges {
		if consumed[i] {
			continue
		}
		if (joined[e.a] && e.b == a) || (joined[e.b] && e.a == a) {
			out = append(out, i)
		}
	}
	return out
}

// joinStep costs attaching relation a to the current intermediate result,
// applying every connecting predicate jointly (independent selectivities
// multiply). The scanned set is consulted read-only.
func (o *Optimizer) joinStep(rels map[string]*rel, curRows float64, a string, edges []edge, connecting []int, scanned map[string]bool) (float64, float64, string) {
	r := rels[a]
	outRows := curRows * r.rows
	keyJoin := false
	for _, i := range connecting {
		e := edges[i]
		aCol := e.aCol
		if e.b == a {
			aCol = e.bCol
		}
		bCol := e.bCol
		otherAlias := e.b
		if e.b == a {
			bCol = e.aCol
			otherAlias = e.a
		}
		den := math.Max(colDistinct(r, aCol), colDistinct(rels[otherAlias], bCol))
		if den > 1 {
			outRows /= den
		}
		// NULL join keys never match: scale by the non-null share of
		// both sides (partitioned FK columns carry a null fraction).
		if col := r.table.Column(aCol); col != nil {
			if col.NullFraction > 0 {
				outRows *= 1 - col.NullFraction
			}
			if col.Key {
				keyJoin = true
			}
		}
		if col := rels[otherAlias].table.Column(bCol); col != nil && col.NullFraction > 0 {
			outRows *= 1 - col.NullFraction
		}
	}
	if outRows < 0.01 {
		outRows = 0.01
	}

	// Hash join: scan + build the new relation, probe with current rows.
	// Like scans, hash builds are shared across the blocks of one query.
	buildCPU := r.rows * o.Model.HashCost
	if scanned != nil && scanned["hash:"+r.table.Name] {
		buildCPU = 0
	}
	hash := o.scanCost(r, scanned) +
		buildCPU +
		curRows*o.Model.HashCost +
		outRows*o.Model.CPUTupleCost

	// Index nested-loop: available when some join predicate enters r
	// through its key (relations are indexed on their id column only;
	// joins entering a child table through its foreign key run as hash
	// joins, matching the scan-based plans of the paper's Table 2).
	inl := math.Inf(1)
	if keyJoin {
		inl = curRows*(o.Model.ProbeCost+
			r.width/o.Model.PageSize*o.Model.PageIOCost*o.Model.RandomIOPenalty+
			o.Model.CPUTupleCost) +
			outRows*o.Model.CPUTupleCost
	}
	if inl < hash {
		return inl, outRows, "inl"
	}
	return hash, outRows, "hash"
}

func colDistinct(r *rel, colName string) float64 {
	if c := r.table.Column(colName); c != nil && c.Distinct > 0 {
		return c.Distinct
	}
	return math.Max(1, r.rawRows/10)
}

// Explain renders the estimates of all blocks of a query, for reports.
func (o *Optimizer) Explain(q *sqlast.Query) (string, error) {
	var b strings.Builder
	total := 0.0
	for i, blk := range q.Blocks {
		est, err := o.BlockCost(blk)
		if err != nil {
			return "", err
		}
		total += est.Cost
		fmt.Fprintf(&b, "block %d: cost=%.1f rows=%.0f plan=%s\n", i+1, est.Cost, est.Rows, est.Plan)
	}
	fmt.Fprintf(&b, "total: %.1f\n", total)
	return b.String(), nil
}

// TableSizes returns "table rows width" lines sorted by name; a debugging
// aid for experiments.
func (o *Optimizer) TableSizes() string {
	names := append([]string(nil), o.Cat.Order...)
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		t := o.Cat.Tables[n]
		fmt.Fprintf(&b, "%-24s %12.0f %8.0f\n", n, t.Rows, t.RowBytes())
	}
	return b.String()
}
