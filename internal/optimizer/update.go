package optimizer

import (
	"fmt"

	"legodb/internal/xquery"
)

// UpdateCost prices one update operation, averaged over the schema
// alternatives its path binds to (a document element lives in exactly
// one partition of a union-distributed type).
//
// The model exposes the inline-vs-fragment tension the paper's future
// work points at:
//
//   - inserting or deleting an element writes one row in its own
//     relation and one in each relation holding descendant content —
//     fragmented configurations pay one seek and one index update per
//     relation;
//   - modifying a value rewrites the (fixed-width) row that holds it —
//     wide inlined relations pay more bytes per rewrite.
func (o *Optimizer) UpdateCost(u *xquery.Update, targets []xquery.UpdateTarget) (float64, error) {
	if len(targets) == 0 {
		return 0, fmt.Errorf("optimizer: update %s has no targets", u)
	}
	total := 0.0
	for _, tgt := range targets {
		total += o.targetCost(u.Kind, tgt)
	}
	return total / float64(len(targets)), nil
}

func (o *Optimizer) targetCost(kind xquery.UpdateKind, tgt xquery.UpdateTarget) float64 {
	m := o.Model
	rowWrite := func(table string) float64 {
		t := o.Cat.Table(table)
		if t == nil {
			return 0
		}
		indexes := 1.0 // key index
		for _, c := range t.Columns {
			if c.FKRef != "" {
				indexes++
			}
		}
		return m.SeekCost + t.RowBytes()*m.WriteByteCost + indexes*m.IndexWriteCost
	}
	switch kind {
	case xquery.ModifyUpdate:
		// Rewrite the row holding the value; indexes on data columns do
		// not exist, so no index maintenance.
		t := o.Cat.Table(tgt.Table)
		if t == nil {
			return 0
		}
		return m.SeekCost + t.RowBytes()*m.WriteByteCost
	default: // insert, delete
		cost := rowWrite(tgt.Table)
		if tgt.Inlined {
			// The element has no row of its own: the ancestor row is
			// rewritten rather than inserted, so no index maintenance on
			// it.
			t := o.Cat.Table(tgt.Table)
			if t != nil {
				cost = m.SeekCost + t.RowBytes()*m.WriteByteCost
			}
		}
		for _, sub := range tgt.Subtree {
			cost += rowWrite(sub)
		}
		return cost
	}
}
