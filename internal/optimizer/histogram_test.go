package optimizer

import (
	"fmt"
	"math/rand"
	"testing"

	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// TestHistogramImprovesSkewedRangeSelectivity builds skewed data (90% of
// years in a narrow recent band), collects statistics with histograms,
// and checks the histogram-based estimate tracks reality where the
// uniform assumption is far off.
func TestHistogramImprovesSkewedRangeSelectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	root := xmltree.NewElement("r")
	const n = 2000
	recent := 0
	for i := 0; i < n; i++ {
		year := 1990 + rng.Intn(11) // 90%: 1990..2000
		if rng.Intn(10) == 0 {
			year = 1800 + rng.Intn(190) // 10%: 1800..1989
		}
		if year >= 1985 {
			recent++
		}
		x := xmltree.NewElement("x")
		x.Append(xmltree.NewText("year", fmt.Sprintf("%d", year)))
		root.Append(x)
	}
	s := xschema.MustParseSchema(`
type R = r[ X{0,*} ]
type X = x[ year[ Integer ] ]`)
	stats := xstats.Collect(root)
	if err := xstats.Annotate(s, stats); err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatal(err)
	}
	x := cat.Table("X")
	col := x.Column("year")
	if len(col.Hist) == 0 {
		t.Fatalf("no histogram on year: %+v", col)
	}

	opt := New(cat)
	trueFrac := float64(recent) / n // ~0.9
	filter := sqlast.Filter{
		Col:   sqlast.ColumnRef{Alias: "t", Column: "year"},
		Op:    sqlast.OpGe,
		Value: sqlast.Literal{IsInt: true, Int: 1985},
	}
	withHist := opt.selectivity(x, filter)
	// Remove the histogram: the uniform assumption estimates ~0.57.
	col.Hist = nil
	uniform := opt.selectivity(x, filter)

	errHist := abs(withHist - trueFrac)
	errUniform := abs(uniform - trueFrac)
	if errHist >= errUniform {
		t.Fatalf("histogram estimate %.3f no better than uniform %.3f (truth %.3f)",
			withHist, uniform, trueFrac)
	}
	if errHist > 0.15 {
		t.Fatalf("histogram estimate %.3f too far from truth %.3f", withHist, trueFrac)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func TestCumulativeBelowInterpolation(t *testing.T) {
	col := &relational.Column{
		Min: 0, Max: 99,
		Hist: []float64{0.5, 0.5}, // half below 50, half above
	}
	if got := cumulativeBelow(col, 50); got < 0.49 || got > 0.51 {
		t.Fatalf("midpoint = %g", got)
	}
	if got := cumulativeBelow(col, 25); got < 0.24 || got > 0.26 {
		t.Fatalf("quarter = %g", got)
	}
	if got := cumulativeBelow(col, -5); got != 0 {
		t.Fatalf("below min = %g", got)
	}
	if got := cumulativeBelow(col, 1000); got < 0.999 {
		t.Fatalf("above max = %g", got)
	}
}

func TestHistogramRoundTripsThroughStatsText(t *testing.T) {
	set := xstats.NewSet()
	set.SetCount(10, "r", "x")
	set.SetBase(0, 99, 50, "r", "x", "year")
	st := set.Lookup("r", "x", "year")
	st.Hist = []int64{1, 2, 3, 4}
	printed := set.String()
	back, err := xstats.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	got := back.Lookup("r", "x", "year")
	if len(got.Hist) != 4 || got.Hist[2] != 3 {
		t.Fatalf("histogram lost: %+v", got)
	}
}
