package optimizer

import (
	"strings"
	"testing"

	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

func updateEnv(t *testing.T, src string) (*xschema.Schema, *Optimizer) {
	t.Helper()
	s := xschema.MustParseSchema(src)
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatal(err)
	}
	return s, New(cat)
}

func TestUpdateCostInsertPaysPerRelation(t *testing.T) {
	outlined, optOut := updateEnv(t, `
type R = r[ X*<#100> ]
type X = x[ A, B, C ]
type A = a[ String<#10,#5> ]
type B = b[ String<#10,#5> ]
type C = c[ String<#10,#5> ]`)
	inlined, optIn := updateEnv(t, `
type R = r[ X*<#100> ]
type X = x[ a[ String<#10,#5> ], b[ String<#10,#5> ], c[ String<#10,#5> ] ]`)
	u := xquery.MustParseUpdate("INSERT r/x")
	to, err := xquery.ResolveUpdate(u, outlined, optOut.Cat)
	if err != nil {
		t.Fatal(err)
	}
	co, err := optOut.UpdateCost(u, to)
	if err != nil {
		t.Fatal(err)
	}
	ti, err := xquery.ResolveUpdate(u, inlined, optIn.Cat)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := optIn.UpdateCost(u, ti)
	if err != nil {
		t.Fatal(err)
	}
	if co <= ci {
		t.Fatalf("fragmented insert (%.2f) should cost more than inlined (%.2f)", co, ci)
	}
	// Roughly one extra seek + index per extra relation.
	if co < ci+3*optOut.Model.SeekCost {
		t.Fatalf("insert gap too small: %.2f vs %.2f", co, ci)
	}
}

func TestUpdateCostModifyPaysWidth(t *testing.T) {
	wide, optWide := updateEnv(t, `
type R = r[ X*<#100> ]
type X = x[ v[ String<#10,#5> ], pad[ String<#1000,#5> ] ]`)
	narrow, optNarrow := updateEnv(t, `
type R = r[ X*<#100> ]
type X = x[ v[ String<#10,#5> ] ]`)
	u := xquery.MustParseUpdate("MODIFY r/x/v")
	tw, err := xquery.ResolveUpdate(u, wide, optWide.Cat)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := optWide.UpdateCost(u, tw)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := xquery.ResolveUpdate(u, narrow, optNarrow.Cat)
	if err != nil {
		t.Fatal(err)
	}
	cn, err := optNarrow.UpdateCost(u, tn)
	if err != nil {
		t.Fatal(err)
	}
	if cw <= cn {
		t.Fatalf("modifying a wide row (%.2f) should cost more than a narrow one (%.2f)", cw, cn)
	}
}

func TestUpdateCostNoTargets(t *testing.T) {
	_, opt := updateEnv(t, `type R = r[ x[ String ] ]`)
	u := xquery.MustParseUpdate("INSERT r/x")
	if _, err := opt.UpdateCost(u, nil); err == nil {
		t.Fatal("empty targets accepted")
	}
}

func TestUpdateKindStrings(t *testing.T) {
	if xquery.InsertUpdate.String() != "INSERT" ||
		xquery.DeleteUpdate.String() != "DELETE" ||
		xquery.ModifyUpdate.String() != "MODIFY" {
		t.Fatal("kind strings broken")
	}
}

func TestTableSizesOutput(t *testing.T) {
	_, opt := updateEnv(t, `
type R = r[ X*<#100> ]
type X = x[ a[ String<#10,#5> ] ]`)
	out := opt.TableSizes()
	if !strings.Contains(out, "X") || !strings.Contains(out, "100") {
		t.Fatalf("TableSizes = %q", out)
	}
}

func TestSelectivityBranches(t *testing.T) {
	s := xschema.MustParseSchema(`
type R = r[ X*<#1000> ]
type X = x[ v[ Integer<#4,#0,#100,#100> ], s[ String ] ]`)
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatal(err)
	}
	opt := New(cat)
	tbl := cat.Table("X")
	sel := func(col string, op sqlast.CmpOp, val int64) float64 {
		return opt.selectivity(tbl, sqlast.Filter{
			Col:   sqlast.ColumnRef{Alias: "t", Column: col},
			Op:    op,
			Value: sqlast.Literal{IsInt: true, Int: val},
		})
	}
	if got := sel("v", sqlast.OpEq, 50); got != 0.01 { // eq with distinct 100
		t.Errorf("eq sel = %g", got)
	}
	if got := sel("v", sqlast.OpNe, 50); got != 0.99 { // ne
		t.Errorf("ne sel = %g", got)
	}
	lt := sel("v", sqlast.OpLt, 25)
	if lt < 0.2 || lt > 0.3 { // 25% of [0,100]
		t.Errorf("lt sel = %g", lt)
	}
	gt := sel("v", sqlast.OpGt, 25)
	if gt < 0.7 || gt > 0.8 {
		t.Errorf("gt sel = %g", gt)
	}
	// Unknown distinct string column: defaults.
	if got := sel("s", sqlast.OpEq, 0); got != opt.Model.DefaultEqSelectivity {
		t.Errorf("default eq sel = %g", got)
	}
}
