package shred

import (
	"testing"

	"legodb/internal/engine"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

func mutationFixture(t *testing.T) (*Shredder, *Publisher, *engine.Database) {
	t.Helper()
	ps := xschema.MustParseSchema(showSchema)
	cat, db := build(t, ps, sampleDoc(t))
	return New(ps, cat, db), NewPublisher(ps, cat, db), db
}

func TestDeleteInstanceCascade(t *testing.T) {
	sh, pub, db := mutationFixture(t)
	// Delete the TV show (position 1 in Show): its Aka, TV row and both
	// episodes must cascade.
	n, err := sh.DeleteInstance("Show", 1)
	if err != nil {
		t.Fatalf("DeleteInstance: %v", err)
	}
	if n != 6 { // show + aka + tv + 2 episodes + description? (desc inlined) => show,aka,tv,2 episodes = 5? count below
		// Show row, 1 Aka, TV group row, 2 Episodes = 5... review rows
		// belong to the movie only. Accept 5 or 6 depending on grouping.
		if n != 5 {
			t.Fatalf("cascade deleted %d rows", n)
		}
	}
	if got := db.Table("Episode").LiveRows(); got != 0 {
		t.Fatalf("episodes remain: %d", got)
	}
	if got := db.Table("Show").LiveRows(); got != 1 {
		t.Fatalf("shows remain: %d", got)
	}
	// The movie's data is untouched.
	if got := db.Table("Review").LiveRows(); got != 2 {
		t.Fatalf("reviews = %d", got)
	}
	docs, err := pub.PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs[0].ChildrenNamed("show")) != 1 {
		t.Fatalf("published shows = %d", len(docs[0].ChildrenNamed("show")))
	}
	// Deleting again is a no-op.
	n, err = sh.DeleteInstance("Show", 1)
	if err != nil || n != 0 {
		t.Fatalf("re-delete = %d, %v", n, err)
	}
}

func TestDeleteInstanceErrors(t *testing.T) {
	sh, _, _ := mutationFixture(t)
	if _, err := sh.DeleteInstance("Nope", 0); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := sh.DeleteInstance("Show", 99); err == nil {
		t.Error("out-of-range position accepted")
	}
}

func TestInsertChildDirect(t *testing.T) {
	sh, pub, db := mutationFixture(t)
	aka, _ := xmltree.ParseString(`<aka>New Alias</aka>`)
	id, err := sh.InsertChild("Show", 1, aka) // movie show has id 1
	if err != nil {
		t.Fatalf("InsertChild: %v", err)
	}
	if id == 0 {
		t.Fatal("zero id")
	}
	if got := db.Table("Aka").LiveRows(); got != 4 {
		t.Fatalf("akas = %d", got)
	}
	docs, err := pub.PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range docs[0].Path("show", "aka") {
		if a.Text == "New Alias" {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted aka missing from published document")
	}
}

func TestInsertChildMatchesWildcardType(t *testing.T) {
	sh, _, db := mutationFixture(t)
	review, _ := xmltree.ParseString(`<review><variety>fresh take</variety></review>`)
	if _, err := sh.InsertChild("Show", 1, review); err != nil {
		t.Fatalf("InsertChild review: %v", err)
	}
	if got := db.Table("Review").LiveRows(); got != 3 {
		t.Fatalf("reviews = %d", got)
	}
}

func TestInsertChildRejectsNonChild(t *testing.T) {
	sh, _, _ := mutationFixture(t)
	bogus, _ := xmltree.ParseString(`<bogus>x</bogus>`)
	if _, err := sh.InsertChild("Show", 1, bogus); err == nil {
		t.Error("non-child fragment accepted")
	}
	aka, _ := xmltree.ParseString(`<aka>x</aka>`)
	if _, err := sh.InsertChild("Nope", 1, aka); err == nil {
		t.Error("unknown parent type accepted")
	}
}

func TestFindRowByID(t *testing.T) {
	sh, _, _ := mutationFixture(t)
	if pos := sh.FindRowByID("Show", 2); pos != 1 {
		t.Fatalf("pos = %d", pos)
	}
	if pos := sh.FindRowByID("Show", 999); pos != -1 {
		t.Fatalf("phantom id found at %d", pos)
	}
	if pos := sh.FindRowByID("Nope", 1); pos != -1 {
		t.Fatalf("unknown type found at %d", pos)
	}
	// Deleted rows are not found.
	if _, err := sh.DeleteInstance("Show", 1); err != nil {
		t.Fatal(err)
	}
	if pos := sh.FindRowByID("Show", 2); pos != -1 {
		t.Fatalf("deleted row found at %d", pos)
	}
}
