package shred

import (
	"fmt"

	"legodb/internal/engine"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// Mutation support: executable inserts and deletes over a shredded
// database, complementing the cost model's update pricing.

// DeleteInstance tombstones the row at pos in typeName's relation and,
// recursively, every descendant row reachable through parent foreign
// keys. It returns the number of rows deleted.
func (sh *Shredder) DeleteInstance(typeName string, pos int) (int, error) {
	tableName := sh.Cat.TableOf[typeName]
	t := sh.DB.Table(tableName)
	if t == nil {
		return 0, fmt.Errorf("shred: no table for type %q", typeName)
	}
	if pos < 0 || pos >= t.NumRows() {
		return 0, fmt.Errorf("shred: position %d out of range for %s", pos, tableName)
	}
	if !t.Alive(pos) {
		return 0, nil
	}
	keyIdx := t.ColumnIndex(t.Def.Key())
	id := t.Cell(pos, keyIdx)
	t.MarkDeleted(pos)
	deleted := 1
	for _, childName := range sh.Cat.Order {
		child := sh.DB.Table(childName)
		for _, e := range child.Def.Parents {
			if e.Parent != tableName {
				continue
			}
			positions, _ := child.Lookup(e.FKColumn, id)
			for _, p := range positions {
				n, err := sh.DeleteInstance(child.Def.TypeName, p)
				if err != nil {
					return deleted, err
				}
				deleted += n
			}
		}
	}
	return deleted, nil
}

// InsertChild shreds node as a new child instance of the parent row
// identified by (parentType, parentID): the node is matched against the
// concrete child types the parent's content references, and inserted
// into the first type it instantiates. It returns the new row's id.
func (sh *Shredder) InsertChild(parentType string, parentID int64, node *xmltree.Node) (int64, error) {
	parentTable := sh.Cat.TableOf[parentType]
	if sh.DB.Table(parentTable) == nil {
		return 0, fmt.Errorf("shred: no table for parent type %q", parentType)
	}
	for _, childName := range sh.Cat.Order {
		child := sh.DB.Table(childName)
		hasEdge := false
		for _, e := range child.Def.Parents {
			if e.Parent == parentTable {
				hasEdge = true
			}
		}
		if !hasEdge {
			continue
		}
		def, ok := sh.Schema.Lookup(child.Def.TypeName)
		if !ok {
			continue
		}
		switch def.(type) {
		case *xschema.Element, *xschema.Wildcard:
			if sh.Schema.MatchesType(def, node) {
				return sh.shredInstance(child.Def.TypeName, node, parentTable, parentID)
			}
		}
	}
	return 0, fmt.Errorf("shred: <%s> does not instantiate any child type of %s", node.Name, parentType)
}

// FindRowByID returns the live position of the row with the given key in
// typeName's relation (-1 when absent).
func (sh *Shredder) FindRowByID(typeName string, id int64) int {
	t := sh.DB.Table(sh.Cat.TableOf[typeName])
	if t == nil {
		return -1
	}
	positions, ok := t.Lookup(t.Def.Key(), engine.IntVal(id))
	if !ok || len(positions) == 0 {
		return -1
	}
	return positions[0]
}
