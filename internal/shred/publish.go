package shred

import (
	"fmt"

	"legodb/internal/engine"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// Publisher reconstructs documents from a shredded database: the inverse
// of the fixed mapping.
type Publisher struct {
	Schema *xschema.Schema
	Cat    *relational.Catalog
	DB     *engine.Database
}

// NewPublisher builds a publisher over schema, catalog and database.
func NewPublisher(s *xschema.Schema, cat *relational.Catalog, db *engine.Database) *Publisher {
	return &Publisher{Schema: s, Cat: cat, DB: db}
}

// PublishAll reconstructs every stored document (one per row of the root
// type's relation), in insertion order.
func (p *Publisher) PublishAll() ([]*xmltree.Node, error) {
	rootTable := p.DB.Table(p.Cat.TableOf[p.Schema.Root])
	if rootTable == nil {
		return nil, fmt.Errorf("publish: no table for root type %q", p.Schema.Root)
	}
	docs := make([]*xmltree.Node, 0, rootTable.NumRows())
	for pos := 0; pos < rootTable.NumRows(); pos++ {
		if !rootTable.Alive(pos) {
			continue
		}
		doc, err := p.publishInstance(p.Schema.Root, pos)
		if err != nil {
			return nil, err
		}
		docs = append(docs, doc)
	}
	return docs, nil
}

// publishInstance reconstructs the element for one row of a named type.
func (p *Publisher) publishInstance(typeName string, pos int) (*xmltree.Node, error) {
	body, ok := p.Schema.Lookup(typeName)
	if !ok {
		return nil, fmt.Errorf("publish: undefined type %q", typeName)
	}
	table := p.DB.Table(p.Cat.TableOf[typeName])
	if table == nil {
		return nil, fmt.Errorf("publish: no table for type %q", typeName)
	}
	row := table.Row(pos)
	id := p.rowID(table, row)
	switch b := body.(type) {
	case *xschema.Element:
		node := xmltree.NewElement(b.Name)
		if _, isScalar := b.Content.(*xschema.Scalar); isScalar {
			node.Text = p.columnValue(table, row, "#text")
			return node, nil
		}
		if err := p.emitContent(b.Content, nil, node, table, row, id); err != nil {
			return nil, err
		}
		return node, nil
	case *xschema.Wildcard:
		tag := p.columnValue(table, row, "#tag")
		if tag == "" {
			tag = "anonelem"
		}
		node := xmltree.NewElement(tag)
		if _, isScalar := b.Content.(*xschema.Scalar); isScalar {
			node.Text = p.columnValue(table, row, "#text")
			return node, nil
		}
		if err := p.emitContent(b.Content, nil, node, table, row, id); err != nil {
			return nil, err
		}
		return node, nil
	default:
		return nil, fmt.Errorf("publish: type %s has no element instance (group or scalar type)", typeName)
	}
}

// emitContent writes the content of a type body into out, in schema
// order: columns become attributes and scalar children, named-type
// expressions fetch child rows via the parent's foreign key.
func (p *Publisher) emitContent(t xschema.Type, prefix []string, out *xmltree.Node, table *engine.Table, row engine.Row, id int64) error {
	switch t := t.(type) {
	case *xschema.Empty:
		return nil
	case *xschema.Scalar:
		out.Text += p.columnValue(table, row, pathKey(prefix, "#text"))
		return nil
	case *xschema.Attribute:
		if v := p.columnRaw(table, row, pathKey(prefix, "@"+t.Name)); !v.IsNull() {
			out.SetAttr(t.Name, v.String())
		}
		return nil
	case *xschema.Element:
		if _, isScalar := t.Content.(*xschema.Scalar); isScalar {
			if v := p.columnRaw(table, row, pathKey(prefix, t.Name)); !v.IsNull() {
				out.Append(xmltree.NewText(t.Name, v.String()))
			}
			return nil
		}
		child := xmltree.NewElement(t.Name)
		if err := p.emitContent(t.Content, extend(prefix, t.Name), child, table, row, id); err != nil {
			return err
		}
		if len(child.Children) > 0 || len(child.Attrs) > 0 || child.Text != "" {
			out.Append(child)
		}
		return nil
	case *xschema.Wildcard:
		tagv := p.columnRaw(table, row, pathKey(extend(prefix, "~"), "#tag"))
		if tagv.IsNull() {
			return nil
		}
		child := xmltree.NewElement(tagv.String())
		if _, isScalar := t.Content.(*xschema.Scalar); isScalar {
			child.Text = p.columnValue(table, row, pathKey(extend(prefix, "~"), "#text"))
		} else if err := p.emitContent(t.Content, extend(prefix, "~"), child, table, row, id); err != nil {
			return err
		}
		out.Append(child)
		return nil
	case *xschema.Sequence:
		for _, it := range t.Items {
			if err := p.emitContent(it, prefix, out, table, row, id); err != nil {
				return err
			}
		}
		return nil
	case *xschema.Repeat:
		if t.Min == 0 && t.Max == 1 && !pschema.IsNamedExpr(t.Inner) {
			return p.emitContent(t.Inner, prefix, out, table, row, id)
		}
		return p.emitChildren(t.Inner, out, table, id)
	case *xschema.Choice, *xschema.Ref:
		return p.emitChildren(t, out, table, id)
	default:
		return fmt.Errorf("publish: cannot emit %s", t)
	}
}

// emitChildren appends the instances of every concrete type referenced by
// a named expression, fetched via the parent foreign key, in row order.
func (p *Publisher) emitChildren(expr xschema.Type, out *xmltree.Node, parent *engine.Table, id int64) error {
	var types []string
	p.concreteRefs(expr, &types, map[string]bool{})
	for _, typeName := range types {
		childTable := p.DB.Table(p.Cat.TableOf[typeName])
		if childTable == nil {
			return fmt.Errorf("publish: no table for type %q", typeName)
		}
		fk := "parent_" + parent.Def.Name
		positions, ok := childTable.Lookup(fk, engine.IntVal(id))
		if !ok {
			continue // type never stores children of this parent
		}
		def, _ := p.Schema.Lookup(typeName)
		for _, pos := range positions {
			switch def.(type) {
			case *xschema.Element, *xschema.Wildcard:
				node, err := p.publishInstance(typeName, pos)
				if err != nil {
					return err
				}
				out.Append(node)
			case *xschema.Scalar:
				out.Text += p.columnValue(childTable, childTable.Row(pos), "#text")
			default:
				// Group type: splice its columns and children into the
				// current element.
				row := childTable.Row(pos)
				gid := p.rowID(childTable, row)
				if err := p.emitContent(def, nil, out, childTable, row, gid); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// concreteRefs collects the non-alias types referenced by a named
// expression, in schema order, looking through aliases.
func (p *Publisher) concreteRefs(t xschema.Type, out *[]string, seen map[string]bool) {
	switch t := t.(type) {
	case *xschema.Ref:
		if seen[t.Name] {
			return
		}
		def, ok := p.Schema.Lookup(t.Name)
		if !ok {
			return
		}
		if pschema.IsAlias(def) {
			seen[t.Name] = true
			p.concreteRefs(def, out, seen)
			return
		}
		for _, existing := range *out {
			if existing == t.Name {
				return
			}
		}
		*out = append(*out, t.Name)
	case *xschema.Repeat:
		p.concreteRefs(t.Inner, out, seen)
	case *xschema.Choice:
		for _, alt := range t.Alts {
			p.concreteRefs(alt, out, seen)
		}
	case *xschema.Sequence:
		for _, it := range t.Items {
			p.concreteRefs(it, out, seen)
		}
	}
}

func (p *Publisher) rowID(t *engine.Table, row engine.Row) int64 {
	if i := t.ColumnIndex(t.Def.Key()); i >= 0 {
		return row[i].Int
	}
	return 0
}

func (p *Publisher) columnRaw(t *engine.Table, row engine.Row, path string) engine.Value {
	if i := columnFor(t.Def, path); i >= 0 {
		return row[i]
	}
	return engine.Null
}

func (p *Publisher) columnValue(t *engine.Table, row engine.Row, path string) string {
	v := p.columnRaw(t, row, path)
	if v.IsNull() {
		return ""
	}
	return v.String()
}
