// Package shred loads XML documents into the relational image of a
// physical schema (the document half of the fixed mapping, Section 3.2)
// and reconstructs documents from that image (publishing). Together the
// two directions give the round-trip property the tests rely on:
// publish(shred(doc)) is the original document up to the interleaving
// order of differently-typed siblings, which the relational image does
// not record.
package shred

import (
	"fmt"
	"strconv"
	"strings"

	"legodb/internal/engine"
	"legodb/internal/faults"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// Shredder maps documents of one physical schema into an engine database.
type Shredder struct {
	Schema *xschema.Schema
	Cat    *relational.Catalog
	DB     *engine.Database

	// Restrict, when non-nil, limits materialization to the named
	// tables: rows destined for any other table are matched and id'd but
	// not inserted. Because every instance still burns its table's
	// NextID, ids assigned under any restriction are identical to an
	// unrestricted shred of the same documents in the same order — the
	// property live migration relies on to rebuild a store
	// table-group-by-table-group across separate passes.
	Restrict map[string]bool
}

// New builds a shredder over schema, catalog and database (all three must
// derive from the same p-schema).
func New(s *xschema.Schema, cat *relational.Catalog, db *engine.Database) *Shredder {
	return &Shredder{Schema: s, Cat: cat, DB: db}
}

// Shred inserts one document. It can be called repeatedly to load
// multiple documents into the same database.
func (sh *Shredder) Shred(doc *xmltree.Node) error {
	if err := faults.Inject(faults.SiteShred); err != nil {
		return err
	}
	_, err := sh.shredInstance(sh.Schema.Root, doc, "", 0)
	return err
}

// piece is one unit of a successful structural match: either a column
// value (path non-empty) or a child-type instance.
type piece struct {
	// Column value, keyed by the XMLPath join.
	path  string
	value string
	// Child instance of a named type.
	refName string
	node    *xmltree.Node // element/wildcard-bodied types
	text    string        // scalar-bodied types
	isText  bool
	sub     []piece // group-bodied types: their columns and children
	isGroup bool
}

type itemKind int

const (
	itemAttr itemKind = iota
	itemElem
	itemText
)

type item struct {
	kind  itemKind
	name  string
	value string
	node  *xmltree.Node
}

func itemsOf(n *xmltree.Node) []item {
	items := make([]item, 0, len(n.Attrs)+len(n.Children)+1)
	for _, a := range n.Attrs {
		items = append(items, item{kind: itemAttr, name: a.Name, value: a.Value})
	}
	if n.Text != "" {
		items = append(items, item{kind: itemText, value: n.Text})
	}
	for _, c := range n.Children {
		items = append(items, item{kind: itemElem, name: c.Name, node: c})
	}
	return items
}

// mres is one partial match: the position reached and the pieces captured.
type mres struct {
	end    int
	pieces []piece
}

// shredInstance inserts the row for one instance of a named type and
// recursively shreds its children. It returns the new row's id.
func (sh *Shredder) shredInstance(typeName string, node *xmltree.Node, parentTable string, parentID int64) (int64, error) {
	body, ok := sh.Schema.Lookup(typeName)
	if !ok {
		return 0, fmt.Errorf("shred: undefined type %q", typeName)
	}
	var pieces []piece
	switch b := body.(type) {
	case *xschema.Element:
		if b.Name != node.Name {
			return 0, fmt.Errorf("shred: node <%s> does not instantiate type %s", node.Name, typeName)
		}
		if _, isScalar := b.Content.(*xschema.Scalar); isScalar {
			pieces = []piece{{path: "#text", value: node.Text}}
		} else {
			p, ok := sh.matchContent(b.Content, node, nil)
			if !ok {
				return 0, fmt.Errorf("shred: content of <%s> does not match type %s", node.Name, typeName)
			}
			pieces = p
		}
	case *xschema.Wildcard:
		pieces = []piece{{path: "#tag", value: node.Name}}
		if _, isScalar := b.Content.(*xschema.Scalar); isScalar {
			pieces = append(pieces, piece{path: "#text", value: node.Text})
		} else {
			p, ok := sh.matchContent(b.Content, node, nil)
			if !ok {
				return 0, fmt.Errorf("shred: wildcard content does not match type %s", typeName)
			}
			pieces = append(pieces, p...)
		}
	case *xschema.Scalar:
		pieces = []piece{{path: "#text", value: node.Text}}
	default:
		p, ok := sh.matchContent(body, node, nil)
		if !ok {
			return 0, fmt.Errorf("shred: node <%s> does not match group type %s", node.Name, typeName)
		}
		pieces = p
	}
	return sh.insertRow(typeName, pieces, parentTable, parentID)
}

// matchContent matches all items of a node against a content type.
func (sh *Shredder) matchContent(content xschema.Type, node *xmltree.Node, prefix []string) ([]piece, bool) {
	items := itemsOf(node)
	for _, r := range sh.match(content, items, 0, prefix) {
		if r.end == len(items) {
			return r.pieces, true
		}
	}
	return nil, false
}

// match is the assignment-producing regular-expression matcher: like the
// validator, but each successful alternative carries the pieces captured
// along the way. Results are deduplicated by end position (first parse
// wins, as in ordered alternation).
func (sh *Shredder) match(t xschema.Type, items []item, i int, prefix []string) []mres {
	switch t := t.(type) {
	case *xschema.Empty:
		return []mres{{end: i}}
	case *xschema.Scalar:
		if i < len(items) && items[i].kind == itemText {
			if t.Kind == xschema.IntegerKind && !parsesInt(items[i].value) {
				return nil
			}
			return []mres{{end: i + 1, pieces: []piece{{path: pathKey(prefix, "#text"), value: items[i].value}}}}
		}
		if t.Kind == xschema.StringKind {
			return []mres{{end: i}}
		}
		return nil
	case *xschema.Attribute:
		if i < len(items) && items[i].kind == itemAttr && items[i].name == t.Name {
			if sc, ok := t.Content.(*xschema.Scalar); ok && sc.Kind == xschema.IntegerKind && !parsesInt(items[i].value) {
				return nil
			}
			return []mres{{end: i + 1, pieces: []piece{{path: pathKey(prefix, "@"+t.Name), value: items[i].value}}}}
		}
		return nil
	case *xschema.Element:
		if i >= len(items) || items[i].kind != itemElem || items[i].name != t.Name {
			return nil
		}
		node := items[i].node
		if sc, ok := t.Content.(*xschema.Scalar); ok {
			if len(node.Children) > 0 {
				return nil
			}
			if sc.Kind == xschema.IntegerKind && !parsesInt(node.Text) {
				return nil
			}
			return []mres{{end: i + 1, pieces: []piece{{path: pathKey(prefix, t.Name), value: node.Text}}}}
		}
		sub, ok := sh.matchContent(t.Content, node, extend(prefix, t.Name))
		if !ok {
			return nil
		}
		return []mres{{end: i + 1, pieces: sub}}
	case *xschema.Wildcard:
		if i >= len(items) || items[i].kind != itemElem {
			return nil
		}
		node := items[i].node
		for _, ex := range t.Exclude {
			if node.Name == ex {
				return nil
			}
		}
		tagPiece := piece{path: pathKey(extend(prefix, "~"), "#tag"), value: node.Name}
		if _, ok := t.Content.(*xschema.Scalar); ok {
			if len(node.Children) > 0 {
				return nil
			}
			return []mres{{end: i + 1, pieces: []piece{
				tagPiece,
				{path: pathKey(extend(prefix, "~"), "#text"), value: node.Text},
			}}}
		}
		sub, ok := sh.matchContent(t.Content, node, extend(prefix, "~"))
		if !ok {
			return nil
		}
		return []mres{{end: i + 1, pieces: append([]piece{tagPiece}, sub...)}}
	case *xschema.Sequence:
		results := []mres{{end: i}}
		for _, part := range t.Items {
			var next []mres
			for _, r := range results {
				for _, s := range sh.match(part, items, r.end, prefix) {
					merged := mres{end: s.end, pieces: append(append([]piece(nil), r.pieces...), s.pieces...)}
					next = addResult(next, merged)
				}
			}
			if len(next) == 0 {
				return nil
			}
			results = next
		}
		return results
	case *xschema.Choice:
		var out []mres
		for _, alt := range t.Alts {
			for _, r := range sh.match(alt, items, i, prefix) {
				out = addResult(out, r)
			}
		}
		return out
	case *xschema.Repeat:
		current := []mres{{end: i}}
		var accepted []mres
		if t.Min == 0 {
			accepted = append(accepted, mres{end: i})
		}
		for count := 1; t.Max == xschema.Unbounded || count <= t.Max; count++ {
			var next []mres
			for _, r := range current {
				for _, s := range sh.match(t.Inner, items, r.end, prefix) {
					if s.end <= r.end {
						continue // progress guard
					}
					merged := mres{end: s.end, pieces: append(append([]piece(nil), r.pieces...), s.pieces...)}
					next = addResult(next, merged)
				}
			}
			if len(next) == 0 {
				break
			}
			if count >= t.Min {
				for _, r := range next {
					accepted = addResult(accepted, r)
				}
			}
			current = next
		}
		return accepted
	case *xschema.Ref:
		def, ok := sh.Schema.Lookup(t.Name)
		if !ok {
			return nil
		}
		if pschema.IsAlias(def) {
			return sh.match(def, items, i, prefix)
		}
		switch body := def.(type) {
		case *xschema.Element, *xschema.Wildcard:
			if i >= len(items) || items[i].kind != itemElem {
				return nil
			}
			if !sh.Schema.MatchesType(body, items[i].node) {
				return nil
			}
			return []mres{{end: i + 1, pieces: []piece{{refName: t.Name, node: items[i].node}}}}
		case *xschema.Scalar:
			if i < len(items) && items[i].kind == itemText {
				if body.Kind == xschema.IntegerKind && !parsesInt(items[i].value) {
					return nil
				}
				return []mres{{end: i + 1, pieces: []piece{{refName: t.Name, text: items[i].value, isText: true}}}}
			}
			return nil
		default:
			// Group type: its content splices into the parent element;
			// the captured pieces become one row of the group's table.
			var out []mres
			for _, r := range sh.match(def, items, i, nil) {
				out = addResult(out, mres{end: r.end, pieces: []piece{{refName: t.Name, sub: r.pieces, isGroup: true}}})
			}
			return out
		}
	default:
		return nil
	}
}

// addResult appends r unless a result with the same end already exists
// (ordered alternation: first parse wins).
func addResult(results []mres, r mres) []mres {
	for _, existing := range results {
		if existing.end == r.end {
			return results
		}
	}
	return append(results, r)
}

// insertRow materializes one instance: assigns an id, fills columns from
// value pieces, sets the parent foreign key, and recurses into child
// pieces.
func (sh *Shredder) insertRow(typeName string, pieces []piece, parentTable string, parentID int64) (int64, error) {
	tableName := sh.Cat.TableOf[typeName]
	table := sh.DB.Table(tableName)
	if table == nil {
		return 0, fmt.Errorf("shred: no table for type %q", typeName)
	}
	id := table.NextID()
	row := make(engine.Row, len(table.Def.Columns))
	for ci, col := range table.Def.Columns {
		switch {
		case col.Key:
			row[ci] = engine.IntVal(id)
		case col.FKRef != "":
			if col.FKRef == parentTable {
				row[ci] = engine.IntVal(parentID)
			} else {
				row[ci] = engine.Null
			}
		default:
			row[ci] = engine.Null
		}
	}
	var children []piece
	for _, p := range pieces {
		if p.path == "" {
			children = append(children, p)
			continue
		}
		ci := columnFor(table.Def, p.path)
		if ci < 0 {
			return 0, fmt.Errorf("shred: type %s has no column for path %q", typeName, p.path)
		}
		v, err := coerce(table.Def.Columns[ci], p.value)
		if err != nil {
			return 0, fmt.Errorf("shred: %s.%s: %w", tableName, table.Def.Columns[ci].Name, err)
		}
		row[ci] = v
	}
	if sh.Restrict == nil || sh.Restrict[tableName] {
		if err := table.Insert(row); err != nil {
			return 0, err
		}
	}
	for _, c := range children {
		switch {
		case c.isGroup:
			if _, err := sh.insertRow(c.refName, c.sub, tableName, id); err != nil {
				return 0, err
			}
		case c.isText:
			if _, err := sh.insertRow(c.refName, []piece{{path: "#text", value: c.text}}, tableName, id); err != nil {
				return 0, err
			}
		default:
			if _, err := sh.shredInstance(c.refName, c.node, tableName, id); err != nil {
				return 0, err
			}
		}
	}
	return id, nil
}

func columnFor(def *relational.Table, path string) int {
	for i, c := range def.Columns {
		if strings.Join(c.XMLPath, "/") == path {
			return i
		}
	}
	return -1
}

func coerce(col *relational.Column, raw string) (engine.Value, error) {
	if col.Type == relational.IntCol {
		n, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return engine.Null, fmt.Errorf("value %q is not an integer", raw)
		}
		return engine.IntVal(n), nil
	}
	return engine.StrVal(raw), nil
}

func pathKey(prefix []string, last string) string {
	if len(prefix) == 0 {
		return last
	}
	return strings.Join(prefix, "/") + "/" + last
}

func extend(prefix []string, comp string) []string {
	out := make([]string, 0, len(prefix)+1)
	out = append(out, prefix...)
	return append(out, comp)
}

func parsesInt(s string) bool {
	_, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	return err == nil
}
