package shred

import (
	"strings"
	"testing"

	"legodb/internal/engine"
	"legodb/internal/relational"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

func TestRecursiveAnyElementRoundTrip(t *testing.T) {
	// The Section 3.2 untyped-document mapping: recursive wildcard types
	// produce self-referencing tables; shred and publish must handle the
	// recursion.
	ps := xschema.MustParseSchema(`
type AnyElement = ~[ AnyElement* ]`)
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<root><a><b/><c><d/></c></a><e/></root>`)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(cat)
	if err := New(ps, cat, db).Shred(doc); err != nil {
		t.Fatalf("Shred: %v", err)
	}
	if got := len(db.Table("AnyElement").Rows); got != 6 {
		t.Fatalf("AnyElement rows = %d, want 6", got)
	}
	docs, err := NewPublisher(ps, cat, db).PublishAll()
	if err != nil {
		t.Fatalf("PublishAll: %v", err)
	}
	// PublishAll emits one document per root-table row; the true root is
	// the one with a NULL parent — it is the first inserted.
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatalf("recursive round trip differs:\n%s\nvs\n%s", doc, docs[0])
	}
}

func TestScalarTypedRefRoundTrip(t *testing.T) {
	// A scalar-bodied named type under a repetition: text content rows.
	ps := xschema.MustParseSchema(`
type Doc = d[ Value* ]
type Value = String`)
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString(`<d>hello world</d>`)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(cat)
	if err := New(ps, cat, db).Shred(doc); err != nil {
		t.Fatalf("Shred: %v", err)
	}
	if got := len(db.Table("Value").Rows); got != 1 {
		t.Fatalf("Value rows = %d", got)
	}
	docs, err := NewPublisher(ps, cat, db).PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(docs[0].Text); got != "hello world" {
		t.Fatalf("published text = %q", got)
	}
}

func TestPublisherErrorPaths(t *testing.T) {
	ps := xschema.MustParseSchema(`type D = d[ a[ String ] ]`)
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(cat)
	pub := NewPublisher(ps, cat, db)
	// Empty database publishes zero documents.
	docs, err := pub.PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 0 {
		t.Fatalf("published %d docs from empty db", len(docs))
	}
	// Unknown type errors.
	if _, err := pub.publishInstance("Nope", 0); err == nil {
		t.Fatal("unknown type published")
	}
}

func TestShredderErrorPaths(t *testing.T) {
	ps := xschema.MustParseSchema(`type D = d[ a[ Integer ] ]`)
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(cat)
	sh := New(ps, cat, db)
	wrongRoot, _ := xmltree.ParseString(`<x><a>1</a></x>`)
	if err := sh.Shred(wrongRoot); err == nil {
		t.Error("wrong root element accepted")
	}
	badInt, _ := xmltree.ParseString(`<d><a>xyz</a></d>`)
	if err := sh.Shred(badInt); err == nil {
		t.Error("non-integer content accepted")
	}
	extra, _ := xmltree.ParseString(`<d><a>1</a><zz/></d>`)
	if err := sh.Shred(extra); err == nil {
		t.Error("extra child accepted")
	}
}

func TestOptionalGroupAbsentColumnsNull(t *testing.T) {
	ps := xschema.MustParseSchema(`
type D = d[ t[ String ], (x[ Integer ], y[ Integer ])? ]`)
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase(cat)
	sh := New(ps, cat, db)
	with, _ := xmltree.ParseString(`<d><t>a</t><x>1</x><y>2</y></d>`)
	without, _ := xmltree.ParseString(`<d><t>b</t></d>`)
	if err := sh.Shred(with); err != nil {
		t.Fatal(err)
	}
	if err := sh.Shred(without); err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("D")
	xi := tbl.ColumnIndex("x")
	if tbl.Rows[0][xi].IsNull() || !tbl.Rows[1][xi].IsNull() {
		t.Fatalf("optional column nullness wrong: %v / %v", tbl.Rows[0][xi], tbl.Rows[1][xi])
	}
	docs, err := NewPublisher(ps, cat, db).PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("docs = %d", len(docs))
	}
	if docs[1].Child("x") != nil {
		t.Fatal("absent optional content resurrected")
	}
}

func TestDeepNestingRoundTrip(t *testing.T) {
	ps := xschema.MustParseSchema(`
type D = d[ l1[ l2[ l3[ v[ String ] ] ] ] ]`)
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<d><l1><l2><l3><v>deep</v></l3></l2></l1></d>`)
	db := engine.NewDatabase(cat)
	if err := New(ps, cat, db).Shred(doc); err != nil {
		t.Fatal(err)
	}
	tbl := db.Table("D")
	ci := columnFor(tbl.Def, "l1/l2/l3/v")
	if ci < 0 {
		t.Fatalf("no deep column; columns: %v", tbl.Def.Columns)
	}
	if got := tbl.Rows[0][ci].Str; got != "deep" {
		t.Fatalf("deep value = %q", got)
	}
	docs, err := NewPublisher(ps, cat, db).PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatalf("deep round trip differs:\n%s", docs[0])
	}
}
