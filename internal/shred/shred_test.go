package shred

import (
	"math/rand"
	"testing"
	"testing/quick"

	"legodb/internal/engine"
	"legodb/internal/imdb"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/transform"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// build maps a p-schema and loads docs, returning the parts.
func build(t *testing.T, ps *xschema.Schema, docs ...*xmltree.Node) (*relational.Catalog, *engine.Database) {
	t.Helper()
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	db := engine.NewDatabase(cat)
	sh := New(ps, cat, db)
	for _, d := range docs {
		if err := sh.Shred(d); err != nil {
			t.Fatalf("Shred: %v", err)
		}
	}
	return cat, db
}

const showSchema = `
type IMDB = imdb[ Show{0,*} ]
type Show = show [ @type[ String ],
    title[ String ],
    year[ Integer ],
    Aka{0,*},
    Review*,
    ( Movie | TV ) ]
type Aka = aka[ String ]
type Review = review[ ~[ String ] ]
type Movie = box_office[ Integer ], video_sales[ Integer ]
type TV = seasons[ Integer ], description[ String ], Episode*
type Episode = episode[ name[ String ], guest_director[ String ] ]
`

func sampleDoc(t *testing.T) *xmltree.Node {
	t.Helper()
	doc, err := xmltree.ParseString(`<imdb>
  <show type="Movie">
    <title>Fugitive, The</title><year>1993</year>
    <aka>Auf der Flucht</aka><aka>Fuggitivo, Il</aka>
    <review><suntimes>Two thumbs up!</suntimes></review>
    <review><nyt>standard summer fare</nyt></review>
    <box_office>183752965</box_office><video_sales>72450220</video_sales>
  </show>
  <show type="TVseries">
    <title>X Files, The</title><year>1994</year>
    <aka>Aux frontieres du Reel</aka>
    <seasons>10</seasons>
    <description>paranoia and aliens</description>
    <episode><name>Ghost in the Machine</name><guest_director>Jerrold Freedman</guest_director></episode>
    <episode><name>Fallen Angel</name><guest_director>Larry Shaw</guest_director></episode>
  </show>
</imdb>`)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestShredCounts(t *testing.T) {
	ps := xschema.MustParseSchema(showSchema)
	_, db := build(t, ps, sampleDoc(t))
	want := map[string]int{
		"IMDB": 1, "Show": 2, "Aka": 3, "Review": 2,
		"Movie": 1, "TV": 1, "Episode": 2,
	}
	for table, n := range want {
		if got := len(db.Table(table).Rows); got != n {
			t.Errorf("%s rows = %d, want %d\n%s", table, got, n, db)
		}
	}
}

func TestShredColumnValues(t *testing.T) {
	ps := xschema.MustParseSchema(showSchema)
	_, db := build(t, ps, sampleDoc(t))
	show := db.Table("Show")
	title := show.ColumnIndex("title")
	year := show.ColumnIndex("year")
	typ := show.ColumnIndex("type")
	if got := show.Rows[0][title].Str; got != "Fugitive, The" {
		t.Errorf("title = %q", got)
	}
	if got := show.Rows[0][year].Int; got != 1993 {
		t.Errorf("year = %d", got)
	}
	if got := show.Rows[1][typ].Str; got != "TVseries" {
		t.Errorf("type = %q", got)
	}
	review := db.Table("Review")
	tilde := review.ColumnIndex("tilde")
	data := review.ColumnIndex("data")
	if got := review.Rows[1][tilde].Str; got != "nyt" {
		t.Errorf("tilde = %q", got)
	}
	if got := review.Rows[0][data].Str; got != "Two thumbs up!" {
		t.Errorf("review text = %q", got)
	}
	movie := db.Table("Movie")
	bo := movie.ColumnIndex("box_office")
	if got := movie.Rows[0][bo].Int; got != 183752965 {
		t.Errorf("box_office = %d", got)
	}
	fk := movie.ColumnIndex("parent_Show")
	if got := movie.Rows[0][fk].Int; got != 1 {
		t.Errorf("movie parent = %d", got)
	}
	episode := db.Table("Episode")
	efk := episode.ColumnIndex("parent_TV")
	if got := episode.Rows[0][efk].Int; got != 1 {
		t.Errorf("episode parent TV id = %d", got)
	}
}

func TestShredRejectsInvalidDocument(t *testing.T) {
	ps := xschema.MustParseSchema(showSchema)
	cat, _ := relational.Map(ps)
	db := engine.NewDatabase(cat)
	sh := New(ps, cat, db)
	bad, _ := xmltree.ParseString(`<imdb><show type="Movie"><year>1993</year></show></imdb>`)
	if err := sh.Shred(bad); err == nil {
		t.Fatal("invalid document shredded without error")
	}
}

func TestPublishRoundTrip(t *testing.T) {
	ps := xschema.MustParseSchema(showSchema)
	doc := sampleDoc(t)
	cat, db := build(t, ps, doc)
	pub := NewPublisher(ps, cat, db)
	docs, err := pub.PublishAll()
	if err != nil {
		t.Fatalf("PublishAll: %v", err)
	}
	if len(docs) != 1 {
		t.Fatalf("published %d documents", len(docs))
	}
	if !ps.Valid(docs[0]) {
		t.Fatalf("published document invalid:\n%s", docs[0])
	}
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatalf("round trip differs:\n--- original ---\n%s\n--- published ---\n%s", doc, docs[0])
	}
}

// TestPropertyRoundTripAcrossConfigurations: for random documents and
// several storage configurations (outlined, inlined, union-distributed,
// wildcard-materialized), publish(shred(doc)) is canonically equal to
// doc.
func TestPropertyRoundTripAcrossConfigurations(t *testing.T) {
	base := xschema.MustParseSchema(showSchema)
	configs := map[string]*xschema.Schema{"base": base}
	if out, err := pschema.InitialOutlined(base); err == nil {
		configs["outlined"] = out
	} else {
		t.Fatal(err)
	}
	if inl, err := pschema.AllInlined(base); err == nil {
		configs["all-inlined"] = inl
	} else {
		t.Fatal(err)
	}
	if cands := transform.Candidates(base, transform.Options{Kinds: []transform.Kind{transform.KindUnionDistribute}}); len(cands) > 0 {
		dist, err := transform.Apply(base, cands[0])
		if err != nil {
			t.Fatal(err)
		}
		configs["distributed"] = dist
	}
	if cands := transform.Candidates(base, transform.Options{
		Kinds:          []transform.Kind{transform.KindWildcardMaterialize},
		WildcardLabels: map[string]float64{"nyt": 0.25},
	}); len(cands) > 0 {
		wild, err := transform.Apply(base, cands[0])
		if err != nil {
			t.Fatal(err)
		}
		configs["wildcard"] = wild
	}
	for name, ps := range configs {
		ps := ps
		t.Run(name, func(t *testing.T) {
			cat, err := relational.Map(ps)
			if err != nil {
				t.Fatal(err)
			}
			f := func(seed int64) bool {
				gen := xschema.NewGenerator(base, rand.New(rand.NewSource(seed)))
				doc, err := gen.Generate()
				if err != nil {
					return false
				}
				db := engine.NewDatabase(cat)
				if err := New(ps, cat, db).Shred(doc); err != nil {
					t.Logf("seed %d: shred: %v\n%s", seed, err, doc)
					return false
				}
				docs, err := NewPublisher(ps, cat, db).PublishAll()
				if err != nil || len(docs) != 1 {
					t.Logf("seed %d: publish: %v", seed, err)
					return false
				}
				if !xmltree.EqualCanonical(doc, docs[0]) {
					t.Logf("seed %d: round trip differs:\n%s\nvs\n%s", seed, doc, docs[0])
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestShredMultipleDocuments(t *testing.T) {
	ps := xschema.MustParseSchema(showSchema)
	d1 := sampleDoc(t)
	d2 := sampleDoc(t)
	cat, db := build(t, ps, d1, d2)
	if got := len(db.Table("IMDB").Rows); got != 2 {
		t.Fatalf("IMDB rows = %d", got)
	}
	if got := len(db.Table("Show").Rows); got != 4 {
		t.Fatalf("Show rows = %d", got)
	}
	pub := NewPublisher(ps, cat, db)
	docs, err := pub.PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("published %d docs", len(docs))
	}
	for _, d := range docs {
		if !xmltree.EqualCanonical(d1, d) {
			t.Fatal("multi-document round trip differs")
		}
	}
}

func TestShredIMDBGeneratedData(t *testing.T) {
	s := imdb.Schema()
	ps, err := pschema.AllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	doc := imdb.Generate(imdb.GenOptions{Shows: 30, Seed: 9})
	cat, db := build(t, ps, doc)
	if got := len(db.Table("Show").Rows); got != 30 {
		t.Fatalf("Show rows = %d", got)
	}
	pub := NewPublisher(ps, cat, db)
	docs, err := pub.PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatal("IMDB round trip differs")
	}
	_ = cat
}

func TestRepetitionSplitShredding(t *testing.T) {
	// After split + inline, the first aka lands in the Show column and
	// the rest in the Aka table.
	base := xschema.MustParseSchema(`
type IMDB = imdb[ Show{0,*} ]
type Show = show[ title[ String ], Aka{1,10} ]
type Aka = aka[ String ]`)
	split, err := transform.Apply(base, transform.Candidates(base,
		transform.Options{Kinds: []transform.Kind{transform.KindRepetitionSplit}})[0])
	if err != nil {
		t.Fatal(err)
	}
	var inl *transform.Transformation
	for _, tr := range transform.Candidates(split, transform.Options{Kinds: []transform.Kind{transform.KindInline}}) {
		tr := tr
		inl = &tr
		break
	}
	if inl == nil {
		t.Fatal("no inline candidate after split")
	}
	ps, err := transform.Apply(split, *inl)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<imdb><show><title>T</title><aka>a1</aka><aka>a2</aka><aka>a3</aka></show></imdb>`)
	cat, db := build(t, ps, doc)
	show := db.Table("Show")
	akaCol := show.ColumnIndex("aka")
	if akaCol < 0 {
		t.Fatalf("no aka column: %v", show.Def.Columns)
	}
	if got := show.Rows[0][akaCol].Str; got != "a1" {
		t.Errorf("inlined aka = %q, want a1", got)
	}
	if got := len(db.Table("Aka").Rows); got != 2 {
		t.Errorf("Aka rows = %d, want 2", got)
	}
	// Round trip restores all three akas.
	docs, err := NewPublisher(ps, cat, db).PublishAll()
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.EqualCanonical(doc, docs[0]) {
		t.Fatalf("split round trip differs:\n%s\nvs\n%s", doc, docs[0])
	}
}
