// Package dtd parses Document Type Definitions and converts them into
// the XML Query Algebra schemas the rest of the system consumes. The
// paper's Figure 2 contrasts a DTD with an XML Schema for the same
// documents and builds its argument on the differences; this package
// makes that comparison runnable:
//
//   - DTDs carry no data types, so every value imports as String (the
//     paper's point 3 in Section 3.1) — storage is correspondingly less
//     efficient than with a typed XML Schema;
//   - DTDs do not separate elements from types, so the importer derives
//     one named type per element declaration, the convention of the
//     Shanmugasundaram et al. baseline;
//   - ANY content imports as the recursive wildcard AnyElement type of
//     Section 3.2.
package dtd

import (
	"fmt"
	"strings"
	"unicode"

	"legodb/internal/xschema"
)

// Parse reads a DTD (either bare declarations or wrapped in
// <!DOCTYPE root [ ... ]>) and returns the equivalent schema. The root
// type is the DOCTYPE name when present, else the first declared
// element.
func Parse(src string) (*xschema.Schema, error) {
	p := &parser{src: src}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.build()
}

// MustParse is Parse that panics on error.
func MustParse(src string) *xschema.Schema {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

// elementDecl is one <!ELEMENT> declaration with its attributes.
type elementDecl struct {
	name    string
	content contentModel
	attrs   []attrDecl
}

type attrDecl struct {
	name     string
	required bool
}

// contentModel is the parsed right-hand side of an ELEMENT declaration.
type contentKind int

const (
	contentEmpty contentKind = iota
	contentAny
	contentPCData
	contentMixed    // (#PCDATA | a | b)*
	contentChildren // regular expression over element names
)

type contentModel struct {
	kind     contentKind
	mixed    []string // element names of a mixed model
	children *particle
}

// particle is a node of a children content model.
type particleKind int

const (
	particleName particleKind = iota
	particleSeq
	particleChoice
)

type particle struct {
	kind     particleKind
	name     string
	parts    []*particle
	min, max int // 1,1 default; ? = 0,1; * = 0,unbounded; + = 1,unbounded
}

type parser struct {
	src      string
	pos      int
	root     string
	order    []string
	elements map[string]*elementDecl
}

func (p *parser) run() error {
	p.elements = make(map[string]*elementDecl)
	for {
		start := strings.Index(p.src[p.pos:], "<!")
		if start < 0 {
			break
		}
		p.pos += start
		switch {
		case strings.HasPrefix(p.src[p.pos:], "<!--"):
			end := strings.Index(p.src[p.pos:], "-->")
			if end < 0 {
				return fmt.Errorf("dtd: unterminated comment")
			}
			p.pos += end + 3
		case strings.HasPrefix(p.src[p.pos:], "<!DOCTYPE"):
			p.pos += len("<!DOCTYPE")
			name, err := p.name()
			if err != nil {
				return fmt.Errorf("dtd: DOCTYPE: %w", err)
			}
			p.root = name
			// Skip to the internal subset bracket or declaration end.
			for p.pos < len(p.src) && p.src[p.pos] != '[' && p.src[p.pos] != '>' {
				p.pos++
			}
			if p.pos < len(p.src) && p.src[p.pos] == '[' {
				p.pos++
			}
		case strings.HasPrefix(p.src[p.pos:], "<!ELEMENT"):
			p.pos += len("<!ELEMENT")
			if err := p.elementDecl(); err != nil {
				return err
			}
		case strings.HasPrefix(p.src[p.pos:], "<!ATTLIST"):
			p.pos += len("<!ATTLIST")
			if err := p.attlistDecl(); err != nil {
				return err
			}
		case strings.HasPrefix(p.src[p.pos:], "<!ENTITY"), strings.HasPrefix(p.src[p.pos:], "<!NOTATION"):
			end := strings.IndexByte(p.src[p.pos:], '>')
			if end < 0 {
				return fmt.Errorf("dtd: unterminated declaration")
			}
			p.pos += end + 1
		default:
			return fmt.Errorf("dtd: unexpected declaration at %q", snippet(p.src[p.pos:]))
		}
	}
	if len(p.order) == 0 {
		return fmt.Errorf("dtd: no element declarations found")
	}
	if p.root == "" {
		p.root = p.order[0]
	}
	if _, ok := p.elements[p.root]; !ok {
		return fmt.Errorf("dtd: root element %q is not declared", p.root)
	}
	return nil
}

func snippet(s string) string {
	if len(s) > 30 {
		return s[:30]
	}
	return s
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		break
	}
}

func isNameByte(c byte) bool {
	return c == '_' || c == '-' || c == '.' || c == ':' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *parser) name() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("expected name at %q", snippet(p.src[p.pos:]))
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(lit string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], lit) {
		return fmt.Errorf("dtd: expected %q at %q", lit, snippet(p.src[p.pos:]))
	}
	p.pos += len(lit)
	return nil
}

func (p *parser) decl(name string) *elementDecl {
	if d, ok := p.elements[name]; ok {
		return d
	}
	d := &elementDecl{name: name}
	p.elements[name] = d
	p.order = append(p.order, name)
	return d
}

func (p *parser) elementDecl() error {
	name, err := p.name()
	if err != nil {
		return fmt.Errorf("dtd: ELEMENT: %w", err)
	}
	d := p.decl(name)
	p.skipSpace()
	switch {
	case strings.HasPrefix(p.src[p.pos:], "EMPTY"):
		p.pos += len("EMPTY")
		d.content = contentModel{kind: contentEmpty}
	case strings.HasPrefix(p.src[p.pos:], "ANY"):
		p.pos += len("ANY")
		d.content = contentModel{kind: contentAny}
	default:
		cm, err := p.contentModel()
		if err != nil {
			return fmt.Errorf("dtd: ELEMENT %s: %w", name, err)
		}
		d.content = cm
	}
	return p.expect(">")
}

// contentModel parses a parenthesized content specification.
func (p *parser) contentModel() (contentModel, error) {
	if err := p.expect("("); err != nil {
		return contentModel{}, err
	}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "#PCDATA") {
		p.pos += len("#PCDATA")
		var mixed []string
		for {
			p.skipSpace()
			if p.pos < len(p.src) && p.src[p.pos] == '|' {
				p.pos++
				n, err := p.name()
				if err != nil {
					return contentModel{}, err
				}
				mixed = append(mixed, n)
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return contentModel{}, err
		}
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '*' {
			p.pos++
		}
		if len(mixed) == 0 {
			return contentModel{kind: contentPCData}, nil
		}
		return contentModel{kind: contentMixed, mixed: mixed}, nil
	}
	part, err := p.groupBody()
	if err != nil {
		return contentModel{}, err
	}
	part = p.suffix(part)
	return contentModel{kind: contentChildren, children: part}, nil
}

// groupBody parses the inside of '(' ... ')' as a sequence or choice,
// consuming the closing parenthesis.
func (p *parser) groupBody() (*particle, error) {
	var parts []*particle
	sep := byte(0)
	for {
		cp, err := p.cp()
		if err != nil {
			return nil, err
		}
		parts = append(parts, cp)
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("unterminated group")
		}
		switch p.src[p.pos] {
		case ')':
			p.pos++
			group := &particle{min: 1, max: 1, parts: parts}
			if sep == '|' {
				group.kind = particleChoice
			} else {
				group.kind = particleSeq
			}
			if len(parts) == 1 && sep == 0 {
				return parts[0], nil
			}
			return group, nil
		case ',', '|':
			if sep != 0 && p.src[p.pos] != sep {
				return nil, fmt.Errorf("mixed ',' and '|' in one group")
			}
			sep = p.src[p.pos]
			p.pos++
		default:
			return nil, fmt.Errorf("unexpected %q in group", p.src[p.pos])
		}
	}
}

// cp parses one content particle: a name or nested group with an
// optional occurrence suffix.
func (p *parser) cp() (*particle, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		inner, err := p.groupBody()
		if err != nil {
			return nil, err
		}
		return p.suffix(inner), nil
	}
	n, err := p.name()
	if err != nil {
		return nil, err
	}
	return p.suffix(&particle{kind: particleName, name: n, min: 1, max: 1}), nil
}

func (p *parser) suffix(part *particle) *particle {
	if p.pos >= len(p.src) {
		return part
	}
	switch p.src[p.pos] {
	case '?':
		p.pos++
		return &particle{kind: particleSeq, parts: []*particle{part}, min: 0, max: 1}
	case '*':
		p.pos++
		return &particle{kind: particleSeq, parts: []*particle{part}, min: 0, max: xschema.Unbounded}
	case '+':
		p.pos++
		return &particle{kind: particleSeq, parts: []*particle{part}, min: 1, max: xschema.Unbounded}
	}
	return part
}

func (p *parser) attlistDecl() error {
	elemName, err := p.name()
	if err != nil {
		return fmt.Errorf("dtd: ATTLIST: %w", err)
	}
	d := p.decl(elemName)
	for {
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '>' {
			p.pos++
			return nil
		}
		attrName, err := p.name()
		if err != nil {
			return fmt.Errorf("dtd: ATTLIST %s: %w", elemName, err)
		}
		// Attribute type: CDATA, ID, IDREF(S), NMTOKEN(S), ENTITY|ies,
		// or an enumeration — all import as String.
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			end := strings.IndexByte(p.src[p.pos:], ')')
			if end < 0 {
				return fmt.Errorf("dtd: ATTLIST %s: unterminated enumeration", elemName)
			}
			p.pos += end + 1
		} else {
			if _, err := p.name(); err != nil {
				return fmt.Errorf("dtd: ATTLIST %s: %w", elemName, err)
			}
		}
		// Default declaration.
		p.skipSpace()
		required := false
		switch {
		case strings.HasPrefix(p.src[p.pos:], "#REQUIRED"):
			p.pos += len("#REQUIRED")
			required = true
		case strings.HasPrefix(p.src[p.pos:], "#IMPLIED"):
			p.pos += len("#IMPLIED")
		case strings.HasPrefix(p.src[p.pos:], "#FIXED"):
			p.pos += len("#FIXED")
			p.skipSpace()
			p.skipQuoted()
		default:
			p.skipQuoted()
		}
		d.attrs = append(d.attrs, attrDecl{name: attrName, required: required})
	}
}

func (p *parser) skipQuoted() {
	if p.pos >= len(p.src) {
		return
	}
	quote := p.src[p.pos]
	if quote != '"' && quote != '\'' {
		return
	}
	p.pos++
	for p.pos < len(p.src) && p.src[p.pos] != quote {
		p.pos++
	}
	if p.pos < len(p.src) {
		p.pos++
	}
}

// build converts the parsed declarations into a schema: one named type
// per element, Shanmugasundaram-style.
func (p *parser) build() (*xschema.Schema, error) {
	typeNames := make(map[string]string, len(p.order))
	s := xschema.NewSchema("")
	for _, name := range p.order {
		typeNames[name] = s.FreshName(exportName(name))
		s.Define(typeNames[name], &xschema.Empty{}) // placeholder, reserves the name
	}
	s.Root = typeNames[p.root]
	needAny := false
	for _, name := range p.order {
		d := p.elements[name]
		var items []xschema.Type
		for _, a := range d.attrs {
			attr := xschema.Type(&xschema.Attribute{Name: a.name, Content: &xschema.Scalar{}})
			if !a.required {
				attr = &xschema.Repeat{Inner: attr, Min: 0, Max: 1}
			}
			items = append(items, attr)
		}
		content, any, err := p.convertContent(d.content, typeNames)
		if err != nil {
			return nil, fmt.Errorf("dtd: element %s: %w", name, err)
		}
		needAny = needAny || any
		if content != nil {
			items = append(items, content)
		}
		var body xschema.Type
		switch len(items) {
		case 0:
			body = &xschema.Empty{}
		case 1:
			body = items[0]
		default:
			body = &xschema.Sequence{Items: items}
		}
		s.Types[typeNames[name]] = xschema.Normalize(&xschema.Element{Name: name, Content: body})
	}
	if needAny {
		s.Define("AnyElement", &xschema.Wildcard{Content: &xschema.Repeat{
			Inner: &xschema.Choice{Alts: []xschema.Type{
				&xschema.Ref{Name: "AnyElement"},
				&xschema.Ref{Name: "AnyScalar"},
			}},
			Min: 0, Max: xschema.Unbounded,
		}})
		s.Define("AnyScalar", &xschema.Scalar{})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) convertContent(cm contentModel, typeNames map[string]string) (xschema.Type, bool, error) {
	switch cm.kind {
	case contentEmpty:
		return nil, false, nil
	case contentPCData:
		return &xschema.Scalar{}, false, nil
	case contentAny:
		return &xschema.Repeat{
			Inner: &xschema.Ref{Name: "AnyElement"},
			Min:   0, Max: xschema.Unbounded,
		}, true, nil
	case contentMixed:
		alts := make([]xschema.Type, 0, len(cm.mixed)+1)
		for _, n := range cm.mixed {
			tn, ok := typeNames[n]
			if !ok {
				return nil, false, fmt.Errorf("undeclared element %q in mixed content", n)
			}
			alts = append(alts, &xschema.Ref{Name: tn})
		}
		alts = append(alts, &xschema.Scalar{})
		return &xschema.Repeat{
			Inner: &xschema.Choice{Alts: alts},
			Min:   0, Max: xschema.Unbounded,
		}, false, nil
	default:
		t, err := p.convertParticle(cm.children, typeNames)
		return t, false, err
	}
}

func (p *parser) convertParticle(part *particle, typeNames map[string]string) (xschema.Type, error) {
	var inner xschema.Type
	switch part.kind {
	case particleName:
		tn, ok := typeNames[part.name]
		if !ok {
			return nil, fmt.Errorf("undeclared element %q in content model", part.name)
		}
		inner = &xschema.Ref{Name: tn}
	case particleSeq:
		items := make([]xschema.Type, len(part.parts))
		for i, sub := range part.parts {
			t, err := p.convertParticle(sub, typeNames)
			if err != nil {
				return nil, err
			}
			items[i] = t
		}
		inner = &xschema.Sequence{Items: items}
	case particleChoice:
		alts := make([]xschema.Type, len(part.parts))
		for i, sub := range part.parts {
			t, err := p.convertParticle(sub, typeNames)
			if err != nil {
				return nil, err
			}
			alts[i] = t
		}
		inner = &xschema.Choice{Alts: alts}
	}
	if part.min == 1 && part.max == 1 {
		return xschema.Normalize(inner), nil
	}
	return &xschema.Repeat{Inner: xschema.Normalize(inner), Min: part.min, Max: part.max}, nil
}

func exportName(name string) string {
	clean := strings.Map(func(r rune) rune {
		if r == '-' || r == '.' || r == ':' {
			return '_'
		}
		return r
	}, name)
	if clean == "" {
		return "T"
	}
	return strings.ToUpper(clean[:1]) + clean[1:]
}
