package dtd

import (
	"math/rand"
	"strings"
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/xmltree"
	"legodb/internal/xschema"
)

// figure2a is the paper's Figure 2(a) DTD for the IMDB subset.
const figure2a = `
<!DOCTYPE imdb [
<!ELEMENT imdb (show*, director*, actor*)>
<!ELEMENT show
   (title, year, aka+, review*,
    ((box_office, video_sales) | (seasons, description, episode*)))>
<!ATTLIST show type CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT year (#PCDATA)>
<!ELEMENT aka (#PCDATA)>
<!ELEMENT review (#PCDATA)>
<!ELEMENT box_office (#PCDATA)>
<!ELEMENT video_sales (#PCDATA)>
<!ELEMENT seasons (#PCDATA)>
<!ELEMENT description (#PCDATA)>
<!ELEMENT episode (name, guest_director)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT guest_director (#PCDATA)>
<!ELEMENT director (name)>
<!ELEMENT actor (name)>
]>
`

func TestParseFigure2a(t *testing.T) {
	s, err := Parse(figure2a)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Root != "Imdb" {
		t.Fatalf("root = %q", s.Root)
	}
	show, ok := s.Lookup("Show")
	if !ok {
		t.Fatalf("Show missing; types = %v", s.Names)
	}
	el := show.(*xschema.Element)
	seq := el.Content.(*xschema.Sequence)
	// @type attribute first, then title, year, aka+, review*, union.
	if _, isAttr := seq.Items[0].(*xschema.Attribute); !isAttr {
		t.Fatalf("first item = %T", seq.Items[0])
	}
	last := seq.Items[len(seq.Items)-1]
	if _, isChoice := last.(*xschema.Choice); !isChoice {
		t.Fatalf("last item = %s", last)
	}
	// DTDs have no types: everything is a String scalar.
	title, _ := s.Lookup("Title")
	if sc, ok := title.(*xschema.Element).Content.(*xschema.Scalar); !ok || sc.Kind != xschema.StringKind {
		t.Fatalf("title content = %s", title)
	}
}

func TestDTDSchemaValidatesDocuments(t *testing.T) {
	s := MustParse(figure2a)
	doc, err := xmltree.ParseString(`<imdb>
  <show type="Movie">
    <title>Fugitive, The</title><year>1993</year>
    <aka>Auf der Flucht</aka>
    <review>Two thumbs up</review>
    <box_office>183752965</box_office><video_sales>72450220</video_sales>
  </show>
  <director><name>Andrew Davis</name></director>
  <actor><name>Harrison Ford</name></actor>
</imdb>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ValidateDocument(doc); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	bad, _ := xmltree.ParseString(`<imdb><show type="m"><title>x</title></show></imdb>`)
	if s.Valid(bad) {
		t.Fatal("document missing required children accepted")
	}
}

func TestDTDFullPipeline(t *testing.T) {
	// DTD -> schema -> p-schema -> relations -> documents round-trip.
	s := MustParse(figure2a)
	ps, err := pschema.AllInlined(s)
	if err != nil {
		t.Fatalf("AllInlined: %v", err)
	}
	cat, err := relational.Map(ps)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	show := cat.Table("Show")
	if show == nil {
		t.Fatalf("no Show table:\n%s", cat)
	}
	// Everything stringly-typed: year is a STRING column under a DTD.
	if year := show.Column("year"); year == nil || year.Type == relational.IntCol {
		t.Fatalf("year column = %+v (DTDs carry no integer types)", year)
	}
	g := xschema.NewGenerator(s, rand.New(rand.NewSource(4)))
	for i := 0; i < 20; i++ {
		doc, err := g.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if !ps.Valid(doc) {
			t.Fatalf("p-schema rejects DTD-generated document:\n%s", doc)
		}
	}
}

func TestMixedContent(t *testing.T) {
	s := MustParse(`
<!ELEMENT para (#PCDATA | em | strong)*>
<!ELEMENT em (#PCDATA)>
<!ELEMENT strong (#PCDATA)>`)
	doc, _ := xmltree.ParseString(`<para>hello <em>world</em></para>`)
	// The xmltree model concatenates text; mixed validation accepts text
	// plus element children in any arrangement.
	if !s.Valid(doc) {
		t.Fatal("mixed content rejected")
	}
}

func TestAnyContent(t *testing.T) {
	s := MustParse(`
<!ELEMENT container ANY>
<!ELEMENT other (#PCDATA)>`)
	if _, ok := s.Lookup("AnyElement"); !ok {
		t.Fatalf("AnyElement not synthesized; types = %v", s.Names)
	}
	doc, _ := xmltree.ParseString(`<container><whatever><deep>x</deep></whatever></container>`)
	if !s.Valid(doc) {
		t.Fatal("ANY content rejected arbitrary children")
	}
}

func TestEmptyElement(t *testing.T) {
	s := MustParse(`
<!ELEMENT br EMPTY>
<!ELEMENT doc (br*)>
<!ATTLIST br kind CDATA #IMPLIED>`)
	// DOCTYPE absent: first declared element is the root.
	if s.Root != "Br" {
		t.Fatalf("root = %q", s.Root)
	}
	doc, _ := xmltree.ParseString(`<br/>`)
	if !s.Valid(doc) {
		t.Fatal("empty element rejected")
	}
	withAttr, _ := xmltree.ParseString(`<br kind="page"/>`)
	if !s.Valid(withAttr) {
		t.Fatal("optional attribute rejected")
	}
}

func TestAttributeDefaults(t *testing.T) {
	s := MustParse(`
<!ELEMENT e (#PCDATA)>
<!ATTLIST e
  req CDATA #REQUIRED
  imp CDATA #IMPLIED
  fix CDATA #FIXED "v"
  def (a|b) "a">`)
	e, _ := s.Lookup("E")
	seq := e.(*xschema.Element).Content.(*xschema.Sequence)
	if len(seq.Items) != 5 { // 4 attributes + scalar
		t.Fatalf("items = %d: %s", len(seq.Items), e)
	}
	if _, ok := seq.Items[0].(*xschema.Attribute); !ok {
		t.Fatalf("required attribute should be mandatory: %s", seq.Items[0])
	}
	for i := 1; i <= 3; i++ {
		rep, ok := seq.Items[i].(*xschema.Repeat)
		if !ok || rep.Min != 0 || rep.Max != 1 {
			t.Fatalf("attribute %d should be optional: %s", i, seq.Items[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`<!ELEMENT a (b)>`,                       // undeclared child
		`<!ELEMENT a (#PCDATA) <!ELEMENT b (a)>`, // missing '>'
		`<!ELEMENT a (b, c | d)> <!ELEMENT b (#PCDATA)> <!ELEMENT c (#PCDATA)> <!ELEMENT d (#PCDATA)>`, // mixed separators
		`<!DOCTYPE nope [ <!ELEMENT a (#PCDATA)> ]>`,                                                   // root not declared
		`<!-- unterminated`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSkipsEntitiesAndComments(t *testing.T) {
	s := MustParse(`
<!-- a comment with <!ELEMENT fake (#PCDATA)> inside -->
<!ENTITY % common "title">
<!ELEMENT doc (#PCDATA)>`)
	if _, ok := s.Lookup("Fake"); ok {
		t.Fatal("declaration inside comment parsed")
	}
	if len(s.Names) != 1 {
		t.Fatalf("types = %v", s.Names)
	}
}

func TestNameSanitization(t *testing.T) {
	s := MustParse(`<!ELEMENT x-y.z (#PCDATA)>`)
	if _, ok := s.Lookup("X_y_z"); !ok {
		t.Fatalf("types = %v", s.Names)
	}
	el := s.Types["X_y_z"].(*xschema.Element)
	if el.Name != "x-y.z" {
		t.Fatalf("element tag = %q", el.Name)
	}
	if !strings.Contains(s.String(), "x-y.z") {
		t.Fatal("tag lost in rendering")
	}
}
