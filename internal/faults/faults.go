// Package faults provides failpoints: named sites in the evaluation
// pipeline (relational mapping, workload translation, optimizer costing,
// statistics annotation, memo validation) and the serving path (block
// execution, document shredding, request dispatch) where tests can
// inject errors or panics to exercise the search's and the server's
// fault isolation.
//
// Production code never arms a site — the package is inert unless a test
// calls Enable, and the disarmed fast path is a single atomic load, so
// leaving the Inject calls compiled into release binaries costs nothing
// measurable. Sites can be armed to fail every hit or only the next N
// hits (transient faults, for convergence-under-recovery tests).
package faults

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Site names. Each constant marks one Inject call in the pipeline.
const (
	// SiteMap fires in relational.Mapper.Map / relational.MapWith,
	// before the schema is mapped to a catalog.
	SiteMap = "relational.map"
	// SiteTranslate fires in xquery.Translate / TranslateDeps, before a
	// query is translated to SQL.
	SiteTranslate = "xquery.translate"
	// SiteQueryCost fires in optimizer.QueryCost, before a translated
	// query is costed.
	SiteQueryCost = "optimizer.querycost"
	// SiteAnnotate fires in xstats.AnnotateDelta, before an incremental
	// re-annotation.
	SiteAnnotate = "xstats.annotate"
	// SiteMemo fires in the evaluator's incremental path; arming it makes
	// incremental evaluation report an inconsistent memo state, forcing
	// the graceful fallback to full evaluation.
	SiteMemo = "core.memo"
	// SiteExec fires in engine.Database execution before each SPJ block
	// runs — the serving path's executor seam. Hook mode doubles as a
	// deterministic way to make a served query slow or gated.
	SiteExec = "engine.exec"
	// SiteShred fires in shred.Shredder.Shred before a document is
	// shredded into the relational image.
	SiteShred = "shred.shred"
	// SiteServe fires in the legodbd request path after admission and
	// before dispatch; hook mode holds an admitted request in flight for
	// drain and saturation tests.
	SiteServe = "server.serve"
	// SiteMigrate fires in Store.MigrateTo before each table-group
	// rebuild and once more immediately before the cutover swap; arming
	// it aborts a live migration mid-flight, proving the old image stays
	// intact and serving.
	SiteMigrate = "store.migrate"
	// SiteSnapshot fires in fsio.WriteFileAtomic after the temp file is
	// written and fsynced but before it is renamed into place; arming it
	// simulates a crash mid-save, proving the canonical path never holds
	// a torn image.
	SiteSnapshot = "store.snapshot"
)

// ErrInjected is the error returned (wrapped) by error-mode failpoints.
var ErrInjected = errors.New("faults: injected fault")

// armed counts enabled sites; zero keeps Inject on its one-load fast
// path.
var armed atomic.Int32

type failure struct {
	panicMode bool
	hook      func()
	remaining int64 // < 0 = every hit
	hits      int64
}

var (
	mu    sync.Mutex
	sites map[string]*failure
)

// Enable arms a site to fail its next `times` hits (times < 0 = every
// hit until disabled): error-mode sites return ErrInjected from Inject,
// panic-mode sites panic. It returns a restore func that disarms the
// site; tests must call it (defer it) to leave the registry clean.
func Enable(site string, times int, panicMode bool) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*failure)
	}
	if _, exists := sites[site]; !exists {
		armed.Add(1)
	}
	sites[site] = &failure{panicMode: panicMode, remaining: int64(times)}
	return func() { Disable(site) }
}

// EnableHook arms a site to run fn on each of its next `times` hits
// (times < 0 = every hit until disabled) instead of failing: Inject
// calls fn and returns nil. Hooks give tests and benchmarks a
// deterministic seam at pipeline sites — blocking a costing call on a
// channel instead of sleeping wall-clock time, or simulating the
// round-trip latency of an out-of-process cost oracle. fn runs on the
// injecting goroutine with no locks held, so it may block.
func EnableHook(site string, times int, fn func()) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	if sites == nil {
		sites = make(map[string]*failure)
	}
	if _, exists := sites[site]; !exists {
		armed.Add(1)
	}
	sites[site] = &failure{hook: fn, remaining: int64(times)}
	return func() { Disable(site) }
}

// Disable disarms a site (no-op when not armed).
func Disable(site string) {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := sites[site]; exists {
		delete(sites, site)
		armed.Add(-1)
	}
}

// Hits reports how many times an armed site fired since Enable. Zero
// once the site is disabled.
func Hits(site string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if f := sites[site]; f != nil {
		return f.hits
	}
	return 0
}

// Inject fires the failure armed at a site: panic-mode sites panic,
// error-mode sites return an error wrapping ErrInjected. It returns nil
// when the site is disarmed or its transient budget is spent.
func Inject(site string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	f := sites[site]
	if f == nil || f.remaining == 0 {
		mu.Unlock()
		return nil
	}
	if f.remaining > 0 {
		f.remaining--
	}
	f.hits++
	panicMode := f.panicMode
	hook := f.hook
	mu.Unlock()
	if hook != nil {
		hook()
		return nil
	}
	if panicMode {
		panic(fmt.Sprintf("faults: injected panic at %s", site))
	}
	return fmt.Errorf("%w at %s", ErrInjected, site)
}
