package faults

import (
	"errors"
	"testing"
)

func TestDisarmedInjectIsNil(t *testing.T) {
	if err := Inject("nowhere"); err != nil {
		t.Fatalf("disarmed site injected %v", err)
	}
}

func TestErrorModeTransient(t *testing.T) {
	restore := Enable("site.a", 2, false)
	defer restore()
	for i := 0; i < 2; i++ {
		if err := Inject("site.a"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := Inject("site.a"); err != nil {
		t.Fatalf("transient budget spent but still failing: %v", err)
	}
	if Hits("site.a") != 2 {
		t.Fatalf("Hits = %d, want 2", Hits("site.a"))
	}
}

func TestPanicMode(t *testing.T) {
	defer Enable("site.b", -1, true)()
	defer func() {
		if recover() == nil {
			t.Fatal("panic-mode site did not panic")
		}
	}()
	Inject("site.b")
}

func TestRestoreDisarms(t *testing.T) {
	restore := Enable("site.c", -1, false)
	restore()
	if err := Inject("site.c"); err != nil {
		t.Fatalf("restored site still armed: %v", err)
	}
	if Hits("site.c") != 0 {
		t.Fatal("Hits nonzero after restore")
	}
	// Double restore must not unbalance the armed counter.
	restore()
	if armed.Load() != 0 {
		t.Fatalf("armed counter = %d after restores, want 0", armed.Load())
	}
}
