package xmltree

import (
	"strings"
	"testing"
)

const sampleDoc = `<imdb>
  <show type="Movie">
    <title>Fugitive, The</title>
    <year>1993</year>
    <aka>Auf der Flucht</aka>
    <aka>Fuggitivo, Il</aka>
    <review>
      <suntimes>
        <reviewer>Roger Ebert</reviewer>
        <rating>Two thumbs up!</rating>
      </suntimes>
    </review>
    <box_office>183752965</box_office>
  </show>
</imdb>`

func mustParse(t *testing.T, s string) *Node {
	t.Helper()
	n, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return n
}

func TestParseBasic(t *testing.T) {
	root := mustParse(t, sampleDoc)
	if root.Name != "imdb" {
		t.Fatalf("root name = %q, want imdb", root.Name)
	}
	show := root.Child("show")
	if show == nil {
		t.Fatal("missing show child")
	}
	if v, ok := show.Attr("type"); !ok || v != "Movie" {
		t.Fatalf("show/@type = %q, %v", v, ok)
	}
	if got := show.Child("title").Text; got != "Fugitive, The" {
		t.Fatalf("title = %q", got)
	}
	if got := len(show.ChildrenNamed("aka")); got != 2 {
		t.Fatalf("aka count = %d, want 2", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></b>"},
		{"garbage", "not xml at all < >"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseString(c.src); err == nil {
				t.Fatalf("ParseString(%q) succeeded, want error", c.src)
			}
		})
	}
}

func TestPath(t *testing.T) {
	root := mustParse(t, sampleDoc)
	titles := root.Path("show", "title")
	if len(titles) != 1 || titles[0].Text != "Fugitive, The" {
		t.Fatalf("Path(show,title) = %v", titles)
	}
	reviewers := root.Path("show", "review", "suntimes", "reviewer")
	if len(reviewers) != 1 || reviewers[0].Text != "Roger Ebert" {
		t.Fatalf("deep path = %v", reviewers)
	}
	if got := root.Path("show", "nosuch"); len(got) != 0 {
		t.Fatalf("missing path returned %v", got)
	}
}

func TestRoundTrip(t *testing.T) {
	root := mustParse(t, sampleDoc)
	reparsed := mustParse(t, root.String())
	if !Equal(root, reparsed) {
		t.Fatalf("serialize+parse is not identity:\n%s\nvs\n%s", root, reparsed)
	}
}

func TestEscaping(t *testing.T) {
	n := NewElement("note")
	n.SetAttr("title", `a "quoted" <tag> & more`)
	n.Text = "5 < 6 && 7 > 2"
	reparsed := mustParse(t, n.String())
	if v, _ := reparsed.Attr("title"); v != `a "quoted" <tag> & more` {
		t.Fatalf("attr round trip = %q", v)
	}
	if reparsed.Text != "5 < 6 && 7 > 2" {
		t.Fatalf("text round trip = %q", reparsed.Text)
	}
}

func TestCloneIsDeep(t *testing.T) {
	root := mustParse(t, sampleDoc)
	cp := root.Clone()
	if !Equal(root, cp) {
		t.Fatal("clone differs from original")
	}
	cp.Child("show").Child("title").Text = "changed"
	if root.Child("show").Child("title").Text == "changed" {
		t.Fatal("clone shares nodes with original")
	}
}

func TestEqualDistinguishes(t *testing.T) {
	a := mustParse(t, sampleDoc)
	b := mustParse(t, sampleDoc)
	if !Equal(a, b) {
		t.Fatal("identical parses not Equal")
	}
	b.Child("show").SetAttr("type", "TV series")
	if Equal(a, b) {
		t.Fatal("Equal ignored attribute difference")
	}
	c := mustParse(t, sampleDoc)
	c.Child("show").Children = c.Child("show").Children[:3]
	if Equal(a, c) {
		t.Fatal("Equal ignored missing children")
	}
}

func TestEqualAttrOrderInsensitive(t *testing.T) {
	a := NewElement("e")
	a.SetAttr("x", "1")
	a.SetAttr("y", "2")
	b := NewElement("e")
	b.SetAttr("y", "2")
	b.SetAttr("x", "1")
	if !Equal(a, b) {
		t.Fatal("Equal is attribute-order sensitive")
	}
}

func TestSizeAndWalk(t *testing.T) {
	root := mustParse(t, sampleDoc)
	if got := root.Size(); got != 11 {
		t.Fatalf("Size = %d, want 11", got)
	}
	var paths []string
	root.Walk(func(path []string, n *Node) {
		paths = append(paths, strings.Join(path, "/"))
	})
	if paths[0] != "imdb" || paths[1] != "imdb/show" {
		t.Fatalf("walk order wrong: %v", paths[:2])
	}
	found := false
	for _, p := range paths {
		if p == "imdb/show/review/suntimes/reviewer" {
			found = true
		}
	}
	if !found {
		t.Fatalf("walk missed deep path; got %v", paths)
	}
}

func TestMultipleRootsRejected(t *testing.T) {
	if _, err := ParseString("<a/><b/>"); err == nil {
		t.Fatal("multiple roots accepted")
	}
}

func TestNewTextAndAppend(t *testing.T) {
	n := NewElement("show").Append(NewText("title", "X Files"), NewText("year", "1993"))
	if len(n.Children) != 2 || n.Children[0].Text != "X Files" {
		t.Fatalf("Append/NewText produced %v", n)
	}
}

func TestCanonicalize(t *testing.T) {
	a := mustParse(t, `<r><b>2</b><a>1</a><a>0</a></r>`)
	b := mustParse(t, `<r><a>0</a><b>2</b><a>1</a></r>`)
	if Equal(a, b) {
		t.Fatal("differently ordered documents should not be Equal")
	}
	if !EqualCanonical(a, b) {
		t.Fatal("EqualCanonical should ignore sibling order")
	}
	c := mustParse(t, `<r><a>0</a><b>3</b><a>1</a></r>`)
	if EqualCanonical(a, c) {
		t.Fatal("EqualCanonical ignored a content difference")
	}
	// Attributes sort too.
	x := NewElement("e")
	x.SetAttr("z", "1")
	x.SetAttr("a", "2")
	y := NewElement("e")
	y.SetAttr("a", "2")
	y.SetAttr("z", "1")
	if !EqualCanonical(x, y) {
		t.Fatal("attribute order should not matter")
	}
}

func TestCanonicalizeDoesNotMutate(t *testing.T) {
	a := mustParse(t, `<r><b>2</b><a>1</a></r>`)
	_ = Canonicalize(a)
	if a.Children[0].Name != "b" {
		t.Fatal("Canonicalize mutated its input")
	}
}
