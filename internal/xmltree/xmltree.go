// Package xmltree provides an ordered-tree document model for XML, with a
// parser built on encoding/xml and a serializer. It is the document
// substrate used by the validator, the statistics collector, the shredder
// and the publisher.
//
// The model is deliberately small: elements carry a name, attributes, and
// an ordered list of children; leaves carry character data. Mixed content
// is represented by interleaving Text nodes between child elements.
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is an element node in an XML document tree.
type Node struct {
	Name     string
	Attrs    []Attr
	Children []*Node
	// Text is the concatenated character data directly inside this
	// element (excluding descendants). For a leaf like <year>1993</year>
	// Text is "1993" and Children is empty.
	Text string
}

// Attr is a single attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// NewElement returns an element node with the given name.
func NewElement(name string) *Node { return &Node{Name: name} }

// NewText returns a leaf element with the given name and character data.
func NewText(name, text string) *Node { return &Node{Name: name, Text: text} }

// SetAttr sets (or replaces) an attribute value.
func (n *Node) SetAttr(name, value string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Value = value
			return
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// Append adds children to the node and returns the node for chaining.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// Child returns the first child element with the given name, or nil.
func (n *Node) Child(name string) *Node {
	for _, c := range n.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ChildrenNamed returns all child elements with the given name, in order.
func (n *Node) ChildrenNamed(name string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Name == name {
			out = append(out, c)
		}
	}
	return out
}

// Path returns the descendants reached by following the given element
// names from n (n itself is the context: Path("a","b") returns all b
// children of all a children of n).
func (n *Node) Path(names ...string) []*Node {
	ctx := []*Node{n}
	for _, name := range names {
		var next []*Node
		for _, c := range ctx {
			next = append(next, c.ChildrenNamed(name)...)
		}
		ctx = next
	}
	return ctx
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	cp := &Node{Name: n.Name, Text: n.Text}
	cp.Attrs = append([]Attr(nil), n.Attrs...)
	cp.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = c.Clone()
	}
	return cp
}

// Equal reports whether two subtrees are structurally identical: same
// names, same attributes (order-insensitive), same text, and the same
// children in the same order.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || strings.TrimSpace(a.Text) != strings.TrimSpace(b.Text) {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	aa := append([]Attr(nil), a.Attrs...)
	ba := append([]Attr(nil), b.Attrs...)
	sort.Slice(aa, func(i, j int) bool { return aa[i].Name < aa[j].Name })
	sort.Slice(ba, func(i, j int) bool { return ba[i].Name < ba[j].Name })
	for i := range aa {
		if aa[i] != ba[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// Canonicalize returns a copy of the subtree in canonical form: trimmed
// text, attributes sorted by name, and children sorted stably by their
// serialized canonical form. Two documents that differ only in the
// interleaving order of repeated children canonicalize identically; used
// by shred/publish round-trip comparisons, where the relational image
// does not record the interleaving of differently-typed siblings.
func Canonicalize(n *Node) *Node {
	cp := &Node{Name: n.Name, Text: strings.TrimSpace(n.Text)}
	cp.Attrs = append([]Attr(nil), n.Attrs...)
	sort.Slice(cp.Attrs, func(i, j int) bool { return cp.Attrs[i].Name < cp.Attrs[j].Name })
	cp.Children = make([]*Node, len(n.Children))
	for i, c := range n.Children {
		cp.Children[i] = Canonicalize(c)
	}
	sort.SliceStable(cp.Children, func(i, j int) bool {
		return cp.Children[i].String() < cp.Children[j].String()
	})
	return cp
}

// EqualCanonical reports whether two subtrees are equal up to sibling
// reordering (see Canonicalize).
func EqualCanonical(a, b *Node) bool {
	return Equal(Canonicalize(a), Canonicalize(b))
}

// Size returns the number of element nodes in the subtree.
func (n *Node) Size() int {
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// Walk calls fn for every element in the subtree in document order. The
// path argument holds the element names from the root down to (and
// including) the visited node.
func (n *Node) Walk(fn func(path []string, node *Node)) {
	var rec func(node *Node, path []string)
	rec = func(node *Node, path []string) {
		path = append(path, node.Name)
		fn(path, node)
		for _, c := range node.Children {
			rec(c, path)
		}
	}
	rec(n, nil)
}

// Parse reads an XML document from r and returns its root element.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewElement(t.Name.Local)
			for _, a := range t.Attr {
				n.SetAttr(a.Name.Local, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				top := stack[len(stack)-1]
				top.Children = append(top.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end element %q", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := string(t)
				if strings.TrimSpace(text) != "" {
					stack[len(stack)-1].Text += strings.TrimSpace(text)
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: empty document")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unclosed elements")
	}
	return root, nil
}

// ParseString parses an XML document held in a string.
func ParseString(s string) (*Node, error) { return Parse(strings.NewReader(s)) }

// Encode serializes the subtree as XML with two-space indentation.
func (n *Node) Encode(w io.Writer) error {
	return n.write(w, 0)
}

func (n *Node) write(w io.Writer, depth int) error {
	indent := strings.Repeat("  ", depth)
	var b strings.Builder
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Name)
	for _, a := range n.Attrs {
		fmt.Fprintf(&b, " %s=\"%s\"", a.Name, escapeAttr(a.Value))
	}
	switch {
	case len(n.Children) == 0 && n.Text == "":
		b.WriteString("/>\n")
		_, err := io.WriteString(w, b.String())
		return err
	case len(n.Children) == 0:
		b.WriteByte('>')
		b.WriteString(escapeText(n.Text))
		fmt.Fprintf(&b, "</%s>\n", n.Name)
		_, err := io.WriteString(w, b.String())
		return err
	default:
		b.WriteString(">")
		if n.Text != "" {
			b.WriteString(escapeText(n.Text))
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := c.write(w, depth+1); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "%s</%s>\n", indent, n.Name)
		return err
	}
}

// String renders the subtree as indented XML.
func (n *Node) String() string {
	var b strings.Builder
	if err := n.Encode(&b); err != nil {
		return fmt.Sprintf("<!-- serialize error: %v -->", err)
	}
	return b.String()
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}
