// Package colfile is the binary on-disk table format: a versioned,
// CRC32C-checksummed, column-chunked encoding of one relation whose
// on-disk unit is the engine's 1024-row columnar batch. A file (or a
// segment inside a store snapshot) is laid out as
//
//	header  magic "LGDBCOLF" (8) + version uint16            10 bytes
//	chunks  per-column chunk payloads, column-major order
//	footer  table metadata + chunk index (see below)
//	tail    footerLen uint64 + footerCRC uint32 + fileCRC uint32
//
// Each chunk payload is one column of ≤ BatchSize rows in a typed
// encoding — int64 words, length-prefixed strings, a tagged mixed
// fallback, or all-NULL — preceded by a null bitmap. The footer indexes
// every chunk (column, row count, offset, size, CRC32C), so a reader
// verifies and decodes chunks straight into engine.ColumnChunk storage
// that engine.Table scans gather into Vectors without ever building
// rows. Integrity is checked outside-in: file CRC, then footer CRC,
// then per-chunk CRCs; any mismatch, truncation or implausible declared
// size is ErrCorrupt — the caller quarantines, never partially loads.
package colfile

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"legodb/internal/engine"
	"legodb/internal/fsio"
)

// Version is the current colfile format version.
const Version = 1

// magic identifies a colfile image ("LGDBCOLF").
var magic = [8]byte{'L', 'G', 'D', 'B', 'C', 'O', 'L', 'F'}

const (
	headerLen = 10
	tailLen   = 16
	// maxCols bounds the declared column count (catalog tables have
	// tens of columns; a footer claiming more is forged).
	maxCols = 1 << 12
	// maxRows bounds the declared row count.
	maxRows = 1 << 40
)

// Chunk payload encodings (first payload byte).
const (
	encAllNull = 0
	encInt     = 1
	encStr     = 2
	encMixed   = 3
)

// Mixed-encoding value tags.
const (
	tagNull = 0
	tagInt  = 1
	tagStr  = 2
)

// ErrCorrupt marks a file Decode rejected: bad magic or version,
// truncation, a checksum mismatch at any level, or an index that does
// not describe the bytes present. Callers quarantine on errors.Is.
var ErrCorrupt = errors.New("colfile: corrupt table file")

// Table is one relation's decoded image.
type Table struct {
	Name    string
	Columns []string
	Rows    int
	NextID  int64
	// Cols holds the decoded chunks, one sequence per column in
	// definition order, directly installable as an engine.ColumnBase.
	Cols [][]engine.ColumnChunk
	// DataBytes is the encoded size of all chunk payloads — the IO a
	// scan of this image reads.
	DataBytes int64
}

type chunkEntry struct {
	col  int
	n    int
	off  uint64
	size uint64
	crc  uint32
}

// Encode serializes a table image.
func Encode(t *Table) ([]byte, error) {
	if len(t.Cols) != len(t.Columns) {
		return nil, fmt.Errorf("colfile: %s: %d chunk columns, %d names", t.Name, len(t.Cols), len(t.Columns))
	}
	if len(t.Columns) > maxCols {
		return nil, fmt.Errorf("colfile: %s: %d columns exceeds limit %d", t.Name, len(t.Columns), maxCols)
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	le16(&buf, Version)

	var entries []chunkEntry
	dataBytes := int64(0)
	for ci, chunks := range t.Cols {
		rows := 0
		for k := range chunks {
			ch := &chunks[k]
			off := uint64(buf.Len())
			payload := encodeChunk(ch)
			buf.Write(payload)
			entries = append(entries, chunkEntry{
				col: ci, n: ch.N, off: off,
				size: uint64(len(payload)),
				crc:  fsio.Checksum(payload),
			})
			dataBytes += int64(len(payload))
			rows += ch.N
		}
		if rows != t.Rows {
			return nil, fmt.Errorf("colfile: %s: column %d holds %d rows, table declares %d", t.Name, ci, rows, t.Rows)
		}
	}
	t.DataBytes = dataBytes

	var footer bytes.Buffer
	writeString16(&footer, t.Name)
	le64(&footer, uint64(t.Rows))
	le64(&footer, uint64(t.NextID))
	le16(&footer, uint16(len(t.Columns)))
	for _, c := range t.Columns {
		writeString16(&footer, c)
	}
	le32(&footer, uint32(len(entries)))
	for _, e := range entries {
		le16(&footer, uint16(e.col))
		le32(&footer, uint32(e.n))
		le64(&footer, e.off)
		le64(&footer, e.size)
		le32(&footer, e.crc)
	}
	fb := footer.Bytes()
	buf.Write(fb)
	le64(&buf, uint64(len(fb)))
	le32(&buf, fsio.Checksum(fb))
	le32(&buf, fsio.Checksum(buf.Bytes()))
	return buf.Bytes(), nil
}

// encodeChunk serializes one chunk payload: encoding byte, null bitmap
// (absent for all-NULL chunks), then the typed values.
func encodeChunk(ch *engine.ColumnChunk) []byte {
	var b bytes.Buffer
	nulls := func() {
		nw := (ch.N + 63) / 64
		bitmap := make([]uint64, nw)
		copy(bitmap, ch.Nulls)
		for _, w := range bitmap {
			le64(&b, w)
		}
	}
	switch {
	case ch.Ints != nil:
		b.WriteByte(encInt)
		nulls()
		for _, v := range ch.Ints {
			le64(&b, uint64(v))
		}
	case ch.Strs != nil:
		b.WriteByte(encStr)
		nulls()
		end := uint32(0)
		for _, s := range ch.Strs {
			end += uint32(len(s))
			le32(&b, end)
		}
		for _, s := range ch.Strs {
			b.WriteString(s)
		}
	case ch.Vals != nil:
		b.WriteByte(encMixed)
		// The bitmap must cover every NULL, including boxed NULL values
		// a caller stored without setting the bitmap bit, so the tag
		// stream and the bitmap agree on decode.
		bitmap := make([]uint64, (ch.N+63)/64)
		copy(bitmap, ch.Nulls)
		for i := 0; i < ch.N; i++ {
			if ch.Vals[i].Kind == engine.NullValue {
				bitmap[i>>6] |= 1 << (i & 63)
			}
		}
		for _, w := range bitmap {
			le64(&b, w)
		}
		for i := 0; i < ch.N; i++ {
			if bitmap[i>>6]&(1<<(i&63)) != 0 {
				b.WriteByte(tagNull)
				continue
			}
			v := ch.Vals[i]
			switch v.Kind {
			case engine.IntValue:
				b.WriteByte(tagInt)
				le64(&b, uint64(v.Int))
			default:
				b.WriteByte(tagStr)
				le32(&b, uint32(len(v.Str)))
				b.WriteString(v.Str)
			}
		}
	default:
		b.WriteByte(encAllNull)
	}
	return b.Bytes()
}

// Decode parses and verifies a table image. Every returned error on a
// malformed input wraps ErrCorrupt.
func Decode(data []byte) (*Table, error) {
	if len(data) < headerLen+tailLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than frame", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != Version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, Version)
	}
	// Outside-in: whole-file checksum first.
	fileCRC := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := fsio.Checksum(data[:len(data)-4]); got != fileCRC {
		return nil, fmt.Errorf("%w: file checksum mismatch (%08x != %08x)", ErrCorrupt, got, fileCRC)
	}
	footerLen := binary.LittleEndian.Uint64(data[len(data)-tailLen : len(data)-8])
	footerCRC := binary.LittleEndian.Uint32(data[len(data)-8 : len(data)-4])
	if footerLen > uint64(len(data)-headerLen-tailLen) {
		return nil, fmt.Errorf("%w: footer length %d exceeds file", ErrCorrupt, footerLen)
	}
	footerStart := uint64(len(data)-tailLen) - footerLen
	footer := data[footerStart:uint64(len(data)-tailLen)]
	if got := fsio.Checksum(footer); got != footerCRC {
		return nil, fmt.Errorf("%w: footer checksum mismatch (%08x != %08x)", ErrCorrupt, got, footerCRC)
	}

	r := &reader{buf: footer}
	t := &Table{}
	t.Name = r.string16()
	rows := r.u64()
	nextID := r.u64()
	ncols := int(r.u16())
	if rows > maxRows {
		return nil, fmt.Errorf("%w: %d rows exceeds limit", ErrCorrupt, rows)
	}
	if ncols > maxCols {
		return nil, fmt.Errorf("%w: %d columns exceeds limit %d", ErrCorrupt, ncols, maxCols)
	}
	if r.err {
		return nil, fmt.Errorf("%w: truncated footer", ErrCorrupt)
	}
	t.Rows = int(rows)
	t.NextID = int64(nextID)
	t.Columns = make([]string, ncols)
	for i := range t.Columns {
		t.Columns[i] = r.string16()
	}
	nchunks := int(r.u32())
	if r.err {
		return nil, fmt.Errorf("%w: truncated footer", ErrCorrupt)
	}
	const entryLen = 2 + 4 + 8 + 8 + 4
	if nchunks > ncols*(int(rows)/engine.BatchSize+1) || nchunks*entryLen > len(r.buf) {
		return nil, fmt.Errorf("%w: %d chunks is implausible for %d×%d", ErrCorrupt, nchunks, ncols, rows)
	}
	entries := make([]chunkEntry, nchunks)
	for i := range entries {
		entries[i] = chunkEntry{
			col:  int(r.u16()),
			n:    int(r.u32()),
			off:  r.u64(),
			size: r.u64(),
			crc:  r.u32(),
		}
	}
	if r.err {
		return nil, fmt.Errorf("%w: truncated footer", ErrCorrupt)
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing footer bytes", ErrCorrupt, len(r.buf))
	}

	t.Cols = make([][]engine.ColumnChunk, ncols)
	colRows := make([]int, ncols)
	for i := range entries {
		e := &entries[i]
		if e.col >= ncols {
			return nil, fmt.Errorf("%w: chunk %d indexes column %d of %d", ErrCorrupt, i, e.col, ncols)
		}
		if e.n <= 0 || e.n > engine.BatchSize {
			return nil, fmt.Errorf("%w: chunk %d declares %d rows (batch size %d)", ErrCorrupt, i, e.n, engine.BatchSize)
		}
		if e.off < headerLen || e.off > footerStart || e.size > footerStart-e.off {
			return nil, fmt.Errorf("%w: chunk %d at [%d,+%d) escapes the data section", ErrCorrupt, i, e.off, e.size)
		}
		payload := data[e.off : e.off+e.size]
		if got := fsio.Checksum(payload); got != e.crc {
			return nil, fmt.Errorf("%w: chunk %d checksum mismatch (%08x != %08x)", ErrCorrupt, i, got, e.crc)
		}
		ch, err := decodeChunk(payload, e.n)
		if err != nil {
			return nil, err
		}
		t.Cols[e.col] = append(t.Cols[e.col], ch)
		colRows[e.col] += e.n
		t.DataBytes += int64(e.size)
	}
	for ci, n := range colRows {
		if n != t.Rows {
			return nil, fmt.Errorf("%w: column %d holds %d rows, table declares %d", ErrCorrupt, ci, n, t.Rows)
		}
		// Chunking must be uniform — full BatchSize chunks, a short one
		// only last — so global positions map to chunk/offset by
		// division.
		for k, ch := range t.Cols[ci] {
			if ch.N != engine.BatchSize && k != len(t.Cols[ci])-1 {
				return nil, fmt.Errorf("%w: column %d chunk %d is short (%d rows) but not last", ErrCorrupt, ci, k, ch.N)
			}
		}
	}
	return t, nil
}

// decodeChunk parses one verified chunk payload into typed storage.
func decodeChunk(payload []byte, n int) (engine.ColumnChunk, error) {
	ch := engine.ColumnChunk{N: n}
	if len(payload) < 1 {
		return ch, fmt.Errorf("%w: empty chunk payload", ErrCorrupt)
	}
	enc := payload[0]
	body := payload[1:]
	if enc == encAllNull {
		if len(body) != 0 {
			return ch, fmt.Errorf("%w: all-null chunk carries %d payload bytes", ErrCorrupt, len(body))
		}
		ch.Nulls = make([]uint64, (n+63)/64)
		for i := 0; i < n; i++ {
			ch.Nulls[i>>6] |= 1 << (i & 63)
		}
		return ch, nil
	}
	nw := (n + 63) / 64
	if len(body) < nw*8 {
		return ch, fmt.Errorf("%w: chunk truncated before null bitmap", ErrCorrupt)
	}
	bitmap := make([]uint64, nw)
	anyNull := false
	for i := range bitmap {
		bitmap[i] = binary.LittleEndian.Uint64(body[i*8:])
		anyNull = anyNull || bitmap[i] != 0
	}
	// Bits past the last row must be clear, or the same logical chunk
	// would admit multiple encodings.
	if n%64 != 0 && bitmap[nw-1]>>(n%64) != 0 {
		return ch, fmt.Errorf("%w: null bitmap sets bits past row %d", ErrCorrupt, n)
	}
	if anyNull {
		ch.Nulls = bitmap
	}
	body = body[nw*8:]

	switch enc {
	case encInt:
		if len(body) != n*8 {
			return ch, fmt.Errorf("%w: int chunk has %d value bytes for %d rows", ErrCorrupt, len(body), n)
		}
		ch.Ints = make([]int64, n)
		for i := range ch.Ints {
			ch.Ints[i] = int64(binary.LittleEndian.Uint64(body[i*8:]))
		}
	case encStr:
		if len(body) < n*4 {
			return ch, fmt.Errorf("%w: string chunk truncated before offsets", ErrCorrupt)
		}
		text := body[n*4:]
		ch.Strs = make([]string, n)
		prev := uint32(0)
		for i := 0; i < n; i++ {
			end := binary.LittleEndian.Uint32(body[i*4:])
			if end < prev || end > uint32(len(text)) {
				return ch, fmt.Errorf("%w: string chunk offset %d out of order", ErrCorrupt, i)
			}
			ch.Strs[i] = string(text[prev:end])
			prev = end
		}
		if int(prev) != len(text) {
			return ch, fmt.Errorf("%w: string chunk has %d unclaimed bytes", ErrCorrupt, len(text)-int(prev))
		}
	case encMixed:
		ch.Vals = make([]engine.Value, n)
		for i := 0; i < n; i++ {
			if len(body) < 1 {
				return ch, fmt.Errorf("%w: mixed chunk truncated at row %d", ErrCorrupt, i)
			}
			tag := body[0]
			body = body[1:]
			isNull := ch.Nulls != nil && ch.Nulls[i>>6]&(1<<(i&63)) != 0
			switch {
			case tag == tagNull:
				if !isNull {
					return ch, fmt.Errorf("%w: mixed chunk row %d tagged null outside bitmap", ErrCorrupt, i)
				}
			case isNull:
				return ch, fmt.Errorf("%w: mixed chunk row %d carries a value but is null", ErrCorrupt, i)
			case tag == tagInt:
				if len(body) < 8 {
					return ch, fmt.Errorf("%w: mixed chunk truncated in row %d", ErrCorrupt, i)
				}
				ch.Vals[i] = engine.IntVal(int64(binary.LittleEndian.Uint64(body)))
				body = body[8:]
			case tag == tagStr:
				if len(body) < 4 {
					return ch, fmt.Errorf("%w: mixed chunk truncated in row %d", ErrCorrupt, i)
				}
				l := binary.LittleEndian.Uint32(body)
				body = body[4:]
				if uint64(l) > uint64(len(body)) {
					return ch, fmt.Errorf("%w: mixed chunk string overruns payload", ErrCorrupt)
				}
				ch.Vals[i] = engine.StrVal(string(body[:l]))
				body = body[l:]
			default:
				return ch, fmt.Errorf("%w: mixed chunk row %d has tag %d", ErrCorrupt, i, tag)
			}
		}
		if len(body) != 0 {
			return ch, fmt.Errorf("%w: mixed chunk has %d trailing bytes", ErrCorrupt, len(body))
		}
	default:
		return ch, fmt.Errorf("%w: unknown chunk encoding %d", ErrCorrupt, enc)
	}
	return ch, nil
}

// WriteFile writes a table image to path crash-consistently (temp file,
// fsync, rename, parent-directory fsync).
func WriteFile(path string, t *Table) error {
	data, err := Encode(t)
	if err != nil {
		return err
	}
	return fsio.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// ReadFile reads and verifies a table image. Corruption surfaces as
// ErrCorrupt; the caller decides whether to quarantine.
func ReadFile(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// reader is a bounds-checked little-endian cursor over the footer.
type reader struct {
	buf []byte
	err bool
}

func (r *reader) take(n int) []byte {
	if r.err || len(r.buf) < n {
		r.err = true
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *reader) u16() uint16 {
	if b := r.take(2); b != nil {
		return binary.LittleEndian.Uint16(b)
	}
	return 0
}

func (r *reader) u32() uint32 {
	if b := r.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if b := r.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (r *reader) string16() string {
	n := int(r.u16())
	if b := r.take(n); b != nil {
		return string(b)
	}
	return ""
}

func writeString16(b *bytes.Buffer, s string) {
	le16(b, uint16(len(s)))
	b.WriteString(s)
}

func le16(b *bytes.Buffer, v uint16) {
	var w [2]byte
	binary.LittleEndian.PutUint16(w[:], v)
	b.Write(w[:])
}

func le32(b *bytes.Buffer, v uint32) {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	b.Write(w[:])
}

func le64(b *bytes.Buffer, v uint64) {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	b.Write(w[:])
}
