package colfile

import (
	"encoding/binary"
	"errors"
	"testing"

	"legodb/internal/fsio"
)

// FuzzColfileDecode drives Decode with arbitrary bytes. Two guarantees
// on every input:
//
//  1. Decode never panics — a forged footer, an implausible chunk
//     count, an overflowing offset or a bitmap with stray bits must all
//     fail through validation, not through an out-of-range index or a
//     giant allocation;
//  2. every rejection wraps ErrCorrupt, so the store layer's quarantine
//     logic (errors.Is) sees one sentinel no matter which layer of the
//     format objected.
//
// Inputs that decode are re-encoded and decoded again: the second
// decode must succeed with identical metadata (Encode of a decoded
// table is itself valid).
func FuzzColfileDecode(f *testing.F) {
	// Seeds: valid files of several shapes, plus targeted near-misses —
	// a bit-flipped body, a truncated tail, and a forged footer whose
	// chunk entries point outside the data region.
	for _, rows := range []int{1, 100, 1024, 1500} {
		f.Add(encodeFixture(f, rows))
	}
	valid := encodeFixture(f, 64)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x80
	f.Add(flipped)
	f.Add(valid[:len(valid)-9])
	f.Add(valid[:11])
	forged := append([]byte(nil), valid...)
	// Overwrite the footer-length word with a huge value and re-stamp
	// the trailing file CRC so only footer validation can object.
	binary.LittleEndian.PutUint64(forged[len(forged)-16:], 1<<50)
	binary.LittleEndian.PutUint32(forged[len(forged)-4:], fsio.Checksum(forged[:len(forged)-4]))
	f.Add(forged)
	f.Add([]byte("LGDBCOLF"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		re, err := Encode(tbl)
		if err != nil {
			t.Fatalf("decoded table does not re-encode: %v", err)
		}
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded table does not decode: %v", err)
		}
		if back.Name != tbl.Name || back.Rows != tbl.Rows || back.NextID != tbl.NextID ||
			len(back.Columns) != len(tbl.Columns) {
			t.Fatalf("round trip changed the table: %+v vs %+v", back, tbl)
		}
	})
}
