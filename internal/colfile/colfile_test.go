package colfile

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"legodb/internal/engine"
)

// fixtureTable builds a table exercising every chunk encoding: a pure
// int column, a pure string column, an all-null column and a mixed
// column, spanning more than one chunk so the short-last-chunk rule is
// exercised too.
func fixtureTable(rows int) *Table {
	ints := make([]engine.Value, rows)
	strs := make([]engine.Value, rows)
	nulls := make([]engine.Value, rows)
	mixed := make([]engine.Value, rows)
	for i := 0; i < rows; i++ {
		ints[i] = engine.IntVal(int64(i * 3))
		strs[i] = engine.StrVal(fmt.Sprintf("row-%d", i))
		nulls[i] = engine.Value{}
		switch i % 4 {
		case 0:
			mixed[i] = engine.IntVal(int64(-i))
		case 1:
			mixed[i] = engine.StrVal(strings.Repeat("x", i%7))
		case 2:
			mixed[i] = engine.Value{}
		default:
			mixed[i] = engine.StrVal("")
		}
	}
	return &Table{
		Name:    "fixture",
		Columns: []string{"id", "name", "gap", "mixed"},
		Rows:    rows,
		NextID:  int64(rows + 1),
		Cols: [][]engine.ColumnChunk{
			engine.BuildColumnChunks(ints),
			engine.BuildColumnChunks(strs),
			engine.BuildColumnChunks(nulls),
			engine.BuildColumnChunks(mixed),
		},
	}
}

func encodeFixture(t testing.TB, rows int) []byte {
	t.Helper()
	data, err := Encode(fixtureTable(rows))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, rows := range []int{1, 2, engine.BatchSize - 1, engine.BatchSize, engine.BatchSize + 1, engine.BatchSize*2 + 500} {
		t.Run(fmt.Sprint(rows), func(t *testing.T) {
			orig := fixtureTable(rows)
			data, err := Encode(orig)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if got.Name != orig.Name || got.Rows != orig.Rows || got.NextID != orig.NextID {
				t.Fatalf("metadata: %q/%d/%d, want %q/%d/%d",
					got.Name, got.Rows, got.NextID, orig.Name, orig.Rows, orig.NextID)
			}
			if len(got.Columns) != len(orig.Columns) {
				t.Fatalf("columns: %v", got.Columns)
			}
			for ci := range orig.Cols {
				for pos := 0; pos < rows; pos++ {
					oc := &orig.Cols[ci][pos/engine.BatchSize]
					gc := &got.Cols[ci][pos/engine.BatchSize]
					i := pos % engine.BatchSize
					ov, gv := oc.Value(i), gc.Value(i)
					if ov != gv {
						t.Fatalf("col %d row %d: %v != %v", ci, pos, gv, ov)
					}
				}
			}
			if got.DataBytes <= 0 || got.DataBytes > int64(len(data)) {
				t.Errorf("DataBytes = %d with %d file bytes", got.DataBytes, len(data))
			}
		})
	}
}

func TestEncodeRejectsInconsistentTable(t *testing.T) {
	bad := fixtureTable(10)
	bad.Columns = bad.Columns[:2] // name count != column count
	if _, err := Encode(bad); err == nil {
		t.Error("column-count mismatch encoded")
	}
	bad = fixtureTable(10)
	bad.Rows = 11 // declared rows != chunk totals
	if _, err := Encode(bad); err == nil {
		t.Error("row-count mismatch encoded")
	}
}

func TestZeroRowTable(t *testing.T) {
	empty := &Table{Name: "empty", Columns: []string{"id"}, Rows: 0, NextID: 1,
		Cols: [][]engine.ColumnChunk{nil}}
	data, err := Encode(empty)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != 0 || len(got.Columns) != 1 || got.Name != "empty" {
		t.Fatalf("got %+v", got)
	}
}

// TestDecodeDetectsEveryBitFlip flips each byte of a small valid file in
// turn: every mutation must be rejected with ErrCorrupt (CRCs cover the
// entire file) and none may panic.
func TestDecodeDetectsEveryBitFlip(t *testing.T) {
	data := encodeFixture(t, 40)
	for i := range data {
		b := append([]byte(nil), data...)
		b[i] ^= 0x10
		tbl, err := Decode(b)
		if err == nil {
			t.Fatalf("bit flip at byte %d/%d accepted (decoded %q)", i, len(data), tbl.Name)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: error does not wrap ErrCorrupt: %v", i, err)
		}
	}
}

func TestDecodeDetectsEveryTruncation(t *testing.T) {
	data := encodeFixture(t, 40)
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: %v", cut, err)
		}
	}
	if _, err := Decode(append(append([]byte(nil), data...), 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing garbage accepted: %v", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.colfile")
	orig := fixtureTable(100)
	if err := WriteFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != orig.Rows || got.Name != orig.Name {
		t.Fatalf("got %q/%d", got.Name, got.Rows)
	}
	// A truncated file on disk is rejected with ErrCorrupt so callers
	// can quarantine it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated file: %v", err)
	}
}
