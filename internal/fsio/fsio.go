// Package fsio centralizes the two disciplines every on-disk artifact in
// this repo shares: Castagnoli checksums (one package-level table instead
// of a crc32.MakeTable per call) and crash-consistent file replacement.
//
// The durability contract WriteFileAtomic enforces is the classic
// fsync-before-rename protocol: the bytes are written to a sibling temp
// file, fsynced to media, renamed over the canonical path, and the parent
// directory is fsynced so the rename itself survives a crash. A reader
// that finds a file at the canonical path may therefore assume it is a
// complete image some writer finished — torn or empty files can only ever
// exist under the .tmp name, which the next save overwrites.
package fsio

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"legodb/internal/faults"
)

// castagnoli is the CRC32C table shared by every checksum in the repo
// (store snapshots, cost-cache snapshots, colfile chunks). MakeTable is
// cheap but not free; building it once here keeps checksumming off the
// allocator entirely.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of b.
func Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoli)
}

// Update continues a running CRC32C over b.
func Update(crc uint32, b []byte) uint32 {
	return crc32.Update(crc, castagnoli, b)
}

// WriteFileAtomic replaces path with the bytes produced by write,
// crash-consistently: temp file, fsync, rename, parent-directory fsync.
// On any error the canonical path is untouched and the temp file is
// removed. The faults.SiteSnapshot failpoint fires between the temp-file
// fsync and the rename, so tests can simulate a crash at the most
// dangerous instant and prove the canonical path never holds a torn
// image.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := faults.Inject(faults.SiteSnapshot); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsio: snapshot write aborted: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-completed rename inside it is
// durable. Filesystems that cannot fsync a directory (EINVAL/ENOTSUP on
// some platforms) are forgiven: the rename itself is still atomic, only
// its durability ordering is weaker.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return fmt.Errorf("fsio: fsync %s: %w", dir, err)
	}
	return nil
}
