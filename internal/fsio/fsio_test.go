package fsio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"legodb/internal/faults"
)

func writeBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// listDir returns the directory's entry names, to prove temp files never
// outlive a WriteFileAtomic call.
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	if err := WriteFileAtomic(path, writeBytes([]byte("first"))); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); string(got) != "first" {
		t.Fatalf("content = %q", got)
	}
	if err := WriteFileAtomic(path, writeBytes([]byte("second"))); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); string(got) != "second" {
		t.Fatalf("content after replace = %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("directory holds leftovers: %v", names)
	}
}

// TestWriteFileAtomicWriterError proves a failing writer leaves the
// previous file untouched and no temp file behind — the torn-temp-file
// scenario: the write aborted partway, so nothing may reach the
// canonical path.
func TestWriteFileAtomicWriterError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	if err := WriteFileAtomic(path, writeBytes([]byte("durable"))); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		// A truncated temp: some bytes land, then the writer dies.
		if _, werr := w.Write([]byte("par")); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the writer's error, got %v", err)
	}
	if got := readFile(t, path); string(got) != "durable" {
		t.Fatalf("previous content lost: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "data.bin" {
		t.Errorf("temp file leaked: %v", names)
	}
}

// TestWriteFileAtomicCrashBeforeRename arms the snapshot failpoint —
// the instant between the temp fsync and the rename — and proves the
// canonical path still holds the previous complete file, with the temp
// cleaned up.
func TestWriteFileAtomicCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	if err := WriteFileAtomic(path, writeBytes([]byte("v1"))); err != nil {
		t.Fatal(err)
	}
	defer faults.Enable(faults.SiteSnapshot, 1, false)()
	err := WriteFileAtomic(path, writeBytes([]byte("v2")))
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if got := readFile(t, path); string(got) != "v1" {
		t.Fatalf("canonical path changed across an aborted save: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 || names[0] != "data.bin" {
		t.Errorf("temp file leaked: %v", names)
	}
	// The failpoint budget is spent; the retry lands.
	if err := WriteFileAtomic(path, writeBytes([]byte("v2"))); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, path); string(got) != "v2" {
		t.Fatalf("retry content = %q", got)
	}
}

func TestWriteFileAtomicFirstWriteAborted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.bin")
	defer faults.Enable(faults.SiteSnapshot, 1, false)()
	if err := WriteFileAtomic(path, writeBytes([]byte("never"))); err == nil {
		t.Fatal("aborted first write reported success")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("aborted first write left a file at the canonical path")
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Errorf("temp file leaked: %v", names)
	}
}

func TestChecksum(t *testing.T) {
	b := []byte("the quick brown fox")
	full := Checksum(b)
	if full == 0 {
		t.Error("checksum of non-empty input is zero")
	}
	split := Update(Update(0, b[:7]), b[7:])
	if split != full {
		t.Errorf("incremental checksum %08x != one-shot %08x", split, full)
	}
	if Checksum([]byte("the quick brown fix")) == full {
		t.Error("single-bit-different input collides")
	}
}

func TestWriteFileAtomicConcurrentDistinctPaths(t *testing.T) {
	dir := t.TempDir()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			path := filepath.Join(dir, fmt.Sprintf("f%d.bin", i))
			done <- WriteFileAtomic(path, writeBytes([]byte(strings.Repeat("x", i+1))))
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if names := listDir(t, dir); len(names) != 8 {
		t.Errorf("want 8 files, got %v", names)
	}
}
