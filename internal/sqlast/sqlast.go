// Package sqlast holds the logical SQL representation that the XQuery
// translator emits and the cost-based optimizer consumes: a query is a
// set of select-project-join blocks (publishing queries expand into one
// block per reachable relation, in the style of SilkRoute's sorted outer
// union; queries over union-partitioned types expand into one block per
// partition combination). The total cost of a query is the sum of its
// block costs.
package sqlast

import (
	"fmt"
	"strconv"
	"strings"
)

// Query is a union of SPJ blocks.
type Query struct {
	// Name labels the query for reports (e.g. "Q13").
	Name   string
	Blocks []*Block
}

// Block is one select-project-join block.
type Block struct {
	Tables   []TableRef
	Joins    []Join
	Filters  []Filter
	Projects []ColumnRef
}

// TableRef is a FROM entry: a base table under a block-unique alias.
type TableRef struct {
	Table string
	Alias string
}

// ColumnRef names a column of an aliased table.
type ColumnRef struct {
	Alias  string
	Column string
}

func (c ColumnRef) String() string { return c.Alias + "." + c.Column }

// Join is an equi-join between two aliased columns (in the mapping's
// schemas, always a key/foreign-key pair).
type Join struct {
	Left, Right ColumnRef
}

// CmpOp enumerates comparison operators in filters.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Literal is a constant operand. Unbound parameters (the paper's c1, c2,
// ...) carry IsParam and estimate like an unknown equality constant.
type Literal struct {
	IsParam bool
	Param   string
	IsInt   bool
	Int     int64
	Str     string
}

func (l Literal) String() string {
	switch {
	case l.IsParam:
		return ":" + l.Param
	case l.IsInt:
		return fmt.Sprintf("%d", l.Int)
	default:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	}
}

// appendString appends the literal rendered exactly as String() would,
// without allocating.
func (l Literal) appendString(dst []byte) []byte {
	switch {
	case l.IsParam:
		dst = append(dst, ':')
		return append(dst, l.Param...)
	case l.IsInt:
		return strconv.AppendInt(dst, l.Int, 10)
	default:
		dst = append(dst, '\'')
		for i := 0; i < len(l.Str); i++ {
			if l.Str[i] == '\'' {
				dst = append(dst, '\'')
			}
			dst = append(dst, l.Str[i])
		}
		return append(dst, '\'')
	}
}

// Filter is a selection predicate: column op literal, or column op column
// when RightCol is set.
type Filter struct {
	Col      ColumnRef
	Op       CmpOp
	Value    Literal
	RightCol *ColumnRef
}

func (f Filter) String() string {
	if f.RightCol != nil {
		return fmt.Sprintf("%s %s %s", f.Col, f.Op, *f.RightCol)
	}
	return fmt.Sprintf("%s %s %s", f.Col, f.Op, f.Value)
}

// AddTable appends a FROM entry and returns its alias.
func (b *Block) AddTable(table, alias string) string {
	b.Tables = append(b.Tables, TableRef{Table: table, Alias: alias})
	return alias
}

// HasTable reports whether the alias is already bound in the block.
func (b *Block) HasTable(alias string) bool {
	for _, t := range b.Tables {
		if t.Alias == alias {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the block.
func (b *Block) Clone() *Block {
	cp := &Block{
		Tables:   append([]TableRef(nil), b.Tables...),
		Joins:    append([]Join(nil), b.Joins...),
		Projects: append([]ColumnRef(nil), b.Projects...),
	}
	cp.Filters = make([]Filter, len(b.Filters))
	for i, f := range b.Filters {
		cp.Filters[i] = f
		if f.RightCol != nil {
			rc := *f.RightCol
			cp.Filters[i].RightCol = &rc
		}
	}
	return cp
}

// ShapeKey returns the block's canonical positional encoding: the block
// rendered with every alias replaced by its table's position in the FROM
// list. Alias names never reach the encoding, so two blocks that differ
// only in how their aliases were numbered share a key, while everything
// that can influence costing — table names, join edges, filter columns,
// operators and constants, projections, and their order — is encoded
// exactly. The logical-plan layer (internal/plan) keys interned blocks
// and memoized block costs on this encoding.
func (b *Block) ShapeKey() string {
	return string(b.AppendShapeKey(nil))
}

// aliasIndex returns the FROM position of the first table bound under
// the alias, or -1. Blocks have a handful of tables, so a linear scan
// beats building a map per encoding.
func (b *Block) aliasIndex(alias string) int {
	for i := range b.Tables {
		if b.Tables[i].Alias == alias {
			return i
		}
	}
	return -1
}

// AppendShapeKey appends the block's canonical positional encoding (see
// ShapeKey) to dst and returns the extended slice. It allocates nothing
// beyond dst growth, so hot paths can reuse one scratch buffer across
// encodings and key maps by string(dst) lookups, which the compiler
// keeps allocation-free.
func (b *Block) AppendShapeKey(dst []byte) []byte {
	for i := range b.Tables {
		dst = append(dst, 'T')
		dst = append(dst, b.Tables[i].Table...)
		dst = append(dst, 0)
	}
	ref := func(dst []byte, c ColumnRef) []byte {
		if i := b.aliasIndex(c.Alias); i >= 0 {
			dst = strconv.AppendInt(dst, int64(i), 10)
		} else {
			// An alias not bound in FROM (malformed block): keep it
			// verbatim so the encoding stays injective.
			dst = append(dst, '?')
			dst = append(dst, c.Alias...)
		}
		dst = append(dst, '.')
		dst = append(dst, c.Column...)
		return append(dst, 0)
	}
	for _, j := range b.Joins {
		dst = append(dst, 'J')
		dst = ref(dst, j.Left)
		dst = ref(dst, j.Right)
	}
	for _, f := range b.Filters {
		dst = append(dst, 'F')
		dst = ref(dst, f.Col)
		dst = append(dst, f.Op.String()...)
		dst = append(dst, 0)
		if f.RightCol != nil {
			dst = append(dst, 'C')
			dst = ref(dst, *f.RightCol)
		} else {
			dst = append(dst, 'L')
			dst = f.Value.appendString(dst)
			dst = append(dst, 0)
		}
	}
	for _, p := range b.Projects {
		dst = append(dst, 'P')
		dst = ref(dst, p)
	}
	return dst
}

// SQL renders the block as a SELECT statement.
func (b *Block) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if len(b.Projects) == 0 {
		sb.WriteString("*")
	} else {
		parts := make([]string, len(b.Projects))
		for i, p := range b.Projects {
			parts[i] = p.String()
		}
		sb.WriteString(strings.Join(parts, ", "))
	}
	sb.WriteString("\nFROM ")
	tabs := make([]string, len(b.Tables))
	for i, t := range b.Tables {
		tabs[i] = fmt.Sprintf("%s %s", t.Table, t.Alias)
	}
	sb.WriteString(strings.Join(tabs, ", "))
	var conds []string
	for _, j := range b.Joins {
		conds = append(conds, fmt.Sprintf("%s = %s", j.Left, j.Right))
	}
	for _, f := range b.Filters {
		conds = append(conds, f.String())
	}
	if len(conds) > 0 {
		sb.WriteString("\nWHERE ")
		sb.WriteString(strings.Join(conds, "\n  AND "))
	}
	return sb.String()
}

// SQL renders the query: blocks separated by UNION ALL (the sorted outer
// union skeleton of a publishing query).
func (q *Query) SQL() string {
	parts := make([]string, len(q.Blocks))
	for i, b := range q.Blocks {
		parts[i] = b.SQL()
	}
	return strings.Join(parts, "\nUNION ALL\n")
}

// String is SQL with the query name as a comment header.
func (q *Query) String() string {
	if q.Name == "" {
		return q.SQL()
	}
	return "-- " + q.Name + "\n" + q.SQL()
}
