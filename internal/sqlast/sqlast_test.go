package sqlast

import (
	"strings"
	"testing"
)

func sampleBlock() *Block {
	b := &Block{}
	b.AddTable("Show", "s")
	b.AddTable("Review", "r")
	b.Joins = append(b.Joins, Join{
		Left:  ColumnRef{Alias: "r", Column: "parent_Show"},
		Right: ColumnRef{Alias: "s", Column: "Show_id"},
	})
	b.Filters = append(b.Filters,
		Filter{Col: ColumnRef{Alias: "s", Column: "year"}, Op: OpEq, Value: Literal{IsInt: true, Int: 1999}},
		Filter{Col: ColumnRef{Alias: "r", Column: "tilde"}, Op: OpEq, Value: Literal{Str: "nyt"}},
	)
	b.Projects = append(b.Projects,
		ColumnRef{Alias: "s", Column: "title"},
		ColumnRef{Alias: "r", Column: "data"},
	)
	return b
}

func TestBlockSQL(t *testing.T) {
	sql := sampleBlock().SQL()
	for _, want := range []string{
		"SELECT s.title, r.data",
		"FROM Show s, Review r",
		"r.parent_Show = s.Show_id",
		"s.year = 1999",
		"r.tilde = 'nyt'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestQuerySQLUnion(t *testing.T) {
	q := &Query{Name: "Q", Blocks: []*Block{sampleBlock(), sampleBlock()}}
	sql := q.SQL()
	if strings.Count(sql, "UNION ALL") != 1 {
		t.Fatalf("expected one UNION ALL:\n%s", sql)
	}
	if !strings.HasPrefix(q.String(), "-- Q\n") {
		t.Fatalf("String() header missing: %q", q.String()[:20])
	}
}

func TestEmptyProjectsRenderStar(t *testing.T) {
	b := &Block{}
	b.AddTable("Show", "s")
	if !strings.Contains(b.SQL(), "SELECT *") {
		t.Fatalf("SQL = %q", b.SQL())
	}
}

func TestOperators(t *testing.T) {
	cases := map[CmpOp]string{
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(op), got, want)
		}
	}
	if got := CmpOp(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown op = %q", got)
	}
}

func TestLiteralRendering(t *testing.T) {
	cases := []struct {
		lit  Literal
		want string
	}{
		{Literal{IsInt: true, Int: -5}, "-5"},
		{Literal{Str: "abc"}, "'abc'"},
		{Literal{Str: "o'brien"}, "'o''brien'"},
		{Literal{IsParam: true, Param: "c1"}, ":c1"},
	}
	for _, c := range cases {
		if got := c.lit.String(); got != c.want {
			t.Errorf("Literal = %q, want %q", got, c.want)
		}
	}
}

func TestFilterColumnComparison(t *testing.T) {
	right := ColumnRef{Alias: "d", Column: "name"}
	f := Filter{Col: ColumnRef{Alias: "a", Column: "name"}, Op: OpEq, RightCol: &right}
	if got := f.String(); got != "a.name = d.name" {
		t.Fatalf("filter = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := sampleBlock()
	cp := b.Clone()
	cp.Tables[0].Alias = "changed"
	cp.Filters[0].Value.Int = 7
	cp.Projects[0].Column = "changed"
	if b.Tables[0].Alias != "s" || b.Filters[0].Value.Int != 1999 || b.Projects[0].Column != "title" {
		t.Fatal("Clone shares state with original")
	}
	// RightCol pointers must not be shared either.
	right := ColumnRef{Alias: "x", Column: "y"}
	b2 := &Block{Filters: []Filter{{Col: ColumnRef{Alias: "a", Column: "b"}, RightCol: &right}}}
	cp2 := b2.Clone()
	cp2.Filters[0].RightCol.Column = "z"
	if b2.Filters[0].RightCol.Column != "y" {
		t.Fatal("Clone shares RightCol pointer")
	}
}

func TestHasTable(t *testing.T) {
	b := sampleBlock()
	if !b.HasTable("s") || b.HasTable("nope") {
		t.Fatal("HasTable broken")
	}
}
