package sqlast

import (
	"strings"
	"testing"
)

func sampleBlock() *Block {
	b := &Block{}
	b.AddTable("Show", "s")
	b.AddTable("Review", "r")
	b.Joins = append(b.Joins, Join{
		Left:  ColumnRef{Alias: "r", Column: "parent_Show"},
		Right: ColumnRef{Alias: "s", Column: "Show_id"},
	})
	b.Filters = append(b.Filters,
		Filter{Col: ColumnRef{Alias: "s", Column: "year"}, Op: OpEq, Value: Literal{IsInt: true, Int: 1999}},
		Filter{Col: ColumnRef{Alias: "r", Column: "tilde"}, Op: OpEq, Value: Literal{Str: "nyt"}},
	)
	b.Projects = append(b.Projects,
		ColumnRef{Alias: "s", Column: "title"},
		ColumnRef{Alias: "r", Column: "data"},
	)
	return b
}

func TestBlockSQL(t *testing.T) {
	sql := sampleBlock().SQL()
	for _, want := range []string{
		"SELECT s.title, r.data",
		"FROM Show s, Review r",
		"r.parent_Show = s.Show_id",
		"s.year = 1999",
		"r.tilde = 'nyt'",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestQuerySQLUnion(t *testing.T) {
	q := &Query{Name: "Q", Blocks: []*Block{sampleBlock(), sampleBlock()}}
	sql := q.SQL()
	if strings.Count(sql, "UNION ALL") != 1 {
		t.Fatalf("expected one UNION ALL:\n%s", sql)
	}
	if !strings.HasPrefix(q.String(), "-- Q\n") {
		t.Fatalf("String() header missing: %q", q.String()[:20])
	}
}

func TestEmptyProjectsRenderStar(t *testing.T) {
	b := &Block{}
	b.AddTable("Show", "s")
	if !strings.Contains(b.SQL(), "SELECT *") {
		t.Fatalf("SQL = %q", b.SQL())
	}
}

func TestOperators(t *testing.T) {
	cases := map[CmpOp]string{
		OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", int(op), got, want)
		}
	}
	if got := CmpOp(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown op = %q", got)
	}
}

func TestLiteralRendering(t *testing.T) {
	cases := []struct {
		lit  Literal
		want string
	}{
		{Literal{IsInt: true, Int: -5}, "-5"},
		{Literal{Str: "abc"}, "'abc'"},
		{Literal{Str: "o'brien"}, "'o''brien'"},
		{Literal{IsParam: true, Param: "c1"}, ":c1"},
	}
	for _, c := range cases {
		if got := c.lit.String(); got != c.want {
			t.Errorf("Literal = %q, want %q", got, c.want)
		}
	}
}

func TestFilterColumnComparison(t *testing.T) {
	right := ColumnRef{Alias: "d", Column: "name"}
	f := Filter{Col: ColumnRef{Alias: "a", Column: "name"}, Op: OpEq, RightCol: &right}
	if got := f.String(); got != "a.name = d.name" {
		t.Fatalf("filter = %q", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	b := sampleBlock()
	cp := b.Clone()
	cp.Tables[0].Alias = "changed"
	cp.Filters[0].Value.Int = 7
	cp.Projects[0].Column = "changed"
	if b.Tables[0].Alias != "s" || b.Filters[0].Value.Int != 1999 || b.Projects[0].Column != "title" {
		t.Fatal("Clone shares state with original")
	}
	// RightCol pointers must not be shared either.
	right := ColumnRef{Alias: "x", Column: "y"}
	b2 := &Block{Filters: []Filter{{Col: ColumnRef{Alias: "a", Column: "b"}, RightCol: &right}}}
	cp2 := b2.Clone()
	cp2.Filters[0].RightCol.Column = "z"
	if b2.Filters[0].RightCol.Column != "y" {
		t.Fatal("Clone shares RightCol pointer")
	}
}

func TestHasTable(t *testing.T) {
	b := sampleBlock()
	if !b.HasTable("s") || b.HasTable("nope") {
		t.Fatal("HasTable broken")
	}
}

// renamed returns sampleBlock with every alias consistently renamed.
func renamedSampleBlock() *Block {
	b := sampleBlock()
	ren := map[string]string{"s": "show_alias", "r": "rev_alias"}
	for i := range b.Tables {
		b.Tables[i].Alias = ren[b.Tables[i].Alias]
	}
	for i := range b.Joins {
		b.Joins[i].Left.Alias = ren[b.Joins[i].Left.Alias]
		b.Joins[i].Right.Alias = ren[b.Joins[i].Right.Alias]
	}
	for i := range b.Filters {
		b.Filters[i].Col.Alias = ren[b.Filters[i].Col.Alias]
		if b.Filters[i].RightCol != nil {
			b.Filters[i].RightCol.Alias = ren[b.Filters[i].RightCol.Alias]
		}
	}
	for i := range b.Projects {
		b.Projects[i].Alias = ren[b.Projects[i].Alias]
	}
	return b
}

func TestShapeKeyIgnoresAliasNames(t *testing.T) {
	if sampleBlock().ShapeKey() != renamedSampleBlock().ShapeKey() {
		t.Fatal("alias renaming changed the shape key")
	}
	if sampleBlock().SQL() == renamedSampleBlock().SQL() {
		t.Fatal("renaming did not reach the rendered SQL; the test is vacuous")
	}
}

func TestShapeKeySensitiveToStructure(t *testing.T) {
	base := sampleBlock().ShapeKey()
	edits := map[string]func(*Block){
		"table":           func(b *Block) { b.Tables[1].Table = "Aka" },
		"join column":     func(b *Block) { b.Joins[0].Left.Column = "parent_Aka" },
		"filter operator": func(b *Block) { b.Filters[0].Op = OpLt },
		"filter constant": func(b *Block) { b.Filters[0].Value.Int = 2000 },
		"projection":      func(b *Block) { b.Projects[0].Column = "year" },
		"table order":     func(b *Block) { b.Tables[0], b.Tables[1] = b.Tables[1], b.Tables[0] },
		"filter order":    func(b *Block) { b.Filters[0], b.Filters[1] = b.Filters[1], b.Filters[0] },
	}
	for name, edit := range edits {
		b := sampleBlock()
		edit(b)
		if b.ShapeKey() == base {
			t.Errorf("editing the %s went unnoticed by the shape key", name)
		}
	}
}

// TestShapeKeyUnboundAlias: a malformed block referencing an alias not in
// FROM must still encode injectively rather than collide.
func TestShapeKeyUnboundAlias(t *testing.T) {
	b := sampleBlock()
	b.Filters[0].Col.Alias = "ghost1"
	k1 := b.ShapeKey()
	b.Filters[0].Col.Alias = "ghost2"
	if b.ShapeKey() == k1 {
		t.Fatal("distinct unbound aliases collided")
	}
}

// TestCloneDetachesShapeAndSQL: a cloned-then-mutated block must leave
// the original's canonical identity and rendered SQL untouched — the
// guarantee the plan layer's intern table is built on.
func TestCloneDetachesShapeAndSQL(t *testing.T) {
	b := sampleBlock()
	shape, sql := b.ShapeKey(), b.SQL()
	cp := b.Clone()
	cp.Tables[0].Table = "Mutated"
	cp.Joins[0].Left.Column = "mutated"
	cp.Filters[0].Value.Int = 7
	cp.Filters[1].Value.Str = "mutated"
	cp.Projects[0].Column = "mutated"
	if b.ShapeKey() != shape {
		t.Fatal("mutating a clone changed the original's shape key")
	}
	if b.SQL() != sql {
		t.Fatal("mutating a clone changed the original's SQL")
	}
	if cp.ShapeKey() == shape {
		t.Fatal("the mutated clone kept the original's shape key")
	}
}

// TestQuerySQLStableUnderBlockCloning: Query.SQL over cloned blocks must
// render byte-identically to the original query.
func TestQuerySQLStableUnderBlockCloning(t *testing.T) {
	q := &Query{Name: "Q", Blocks: []*Block{sampleBlock(), renamedSampleBlock()}}
	cloned := &Query{Name: "Q"}
	for _, b := range q.Blocks {
		cloned.Blocks = append(cloned.Blocks, b.Clone())
	}
	if q.SQL() != cloned.SQL() {
		t.Fatal("cloned query renders differently")
	}
}
