package plan

import (
	"fmt"
	"sync"

	"legodb/internal/faults"
	"legodb/internal/optimizer"
	"legodb/internal/sqlast"
)

// Key identifies one memoized block costing: 128 bits over the block's
// positional shape, the content digests of its referenced tables, the
// scan state projected onto those tables, and the cost model. Everything
// the optimizer's block costing reads is a function of the key, so the
// memoized outcome replays bit-identically.
type Key struct {
	Hi, Lo uint64
}

// Outcome is one memoized block costing: the block's best-plan cost and
// the scan-state entries the chosen plan added (table names and
// "hash:"-prefixed shared hash builds). Both are deterministic functions
// of the Key, so concurrent writers racing on one key store equal values.
type Outcome struct {
	Cost float64
	Adds []string
}

// StoreStats is a point-in-time snapshot of a Store's counters.
type StoreStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Sub returns the counter deltas since an earlier snapshot.
func (s StoreStats) Sub(prev StoreStats) StoreStats {
	return StoreStats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Entries:   s.Entries,
	}
}

// DefaultStoreCap bounds a Store that was not given an explicit capacity.
const DefaultStoreCap = 1 << 16

// Store is a bounded, thread-safe memo of block costings, shared by every
// Space of a search (and, through core.CostCache, across searches over
// the same statistics). The zero value is ready to use with the default
// capacity. Eviction is FIFO; like the per-query cost cache, entries are
// pure functions of their key, so losing one costs recomputation, never
// correctness — and snapshots (CostCache.Save) deliberately exclude it.
type Store struct {
	mu        sync.Mutex
	entries   map[Key]Outcome
	order     []Key
	capacity  int
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewStore returns a store bounded to capacity entries (0 means
// DefaultStoreCap).
func NewStore(capacity int) *Store {
	return &Store{capacity: capacity}
}

func (s *Store) cap() int {
	if s.capacity > 0 {
		return s.capacity
	}
	return DefaultStoreCap
}

func (s *Store) get(k Key) (Outcome, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out, ok := s.entries[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return out, ok
}

func (s *Store) put(k Key, out Outcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.entries == nil {
		s.entries = make(map[Key]Outcome)
	}
	if _, ok := s.entries[k]; ok {
		s.entries[k] = out
		return
	}
	for len(s.entries) >= s.cap() {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, victim)
		s.evictions++
	}
	s.entries[k] = out
	s.order = append(s.order, k)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{Hits: s.hits, Misses: s.misses, Evictions: s.evictions, Entries: len(s.entries)}
}

// Space composes query costs for one configuration evaluation from
// shared block costings. Translated queries flow in through QueryCost;
// every block is interned under its positional shape, structurally
// identical blocks across queries and union branches dedup, and each
// distinct (shape, table digests, scan context) is costed once via
// optimizer.BlockCostShared — within this evaluation and, through the
// shared Store, across sibling candidates whose tables did not change.
//
// Interning is copy-free: the Space records the caller's *sqlast.Block
// instance, never a clone. The contract is that blocks are immutable
// once handed to QueryCost — the translator builds each block exactly
// once and nothing downstream writes to it. Mutating a block after
// costing cannot corrupt the memo (Store entries are keyed by an
// immutable shape string captured at intern time), it only makes the
// intern table's view of that one Space stale; the mutated block would
// simply re-intern under its new shape on the next request. The
// plan-package tests pin both properties.
//
// A Space is not safe for concurrent use; each evaluation owns one. The
// Store it feeds is safe to share across Spaces.
type Space struct {
	opt     *optimizer.Optimizer
	store   *Store
	modelID uint64

	// Requested counts block costings asked for; Computed counts those
	// that missed every memo and ran the optimizer. Requested − Computed
	// is the work the plan layer absorbed.
	Requested uint64
	Computed  uint64

	blocks map[string]*sqlast.Block

	// Per-Space scratch, reused across blockCost calls so the hot hit
	// path (shape encoding, table-name collection, scan threading)
	// allocates nothing.
	keyBuf []byte
	names  []string
	scan   map[string]bool
}

// NewSpace returns a plan space costing against opt, memoizing into
// store (nil for a private store). modelID must digest opt.Model (see
// core.ModelID); it scopes memo entries to the cost model.
func NewSpace(opt *optimizer.Optimizer, modelID uint64, store *Store) *Space {
	if store == nil {
		store = NewStore(0)
	}
	return &Space{opt: opt, store: store, modelID: modelID, blocks: make(map[string]*sqlast.Block)}
}

// Distinct returns the number of structurally distinct blocks interned so
// far (alias-invariant; the dedup denominator for sharing ratios).
func (sp *Space) Distinct() int { return len(sp.blocks) }

// Interned returns the canonical instance interned for the block's
// shape, or nil. The instance is the first block costed with that shape
// (interning is copy-free; see the Space doc for the immutability
// contract).
func (sp *Space) Interned(b *sqlast.Block) *sqlast.Block {
	return sp.blocks[b.ShapeKey()]
}

// QueryCost composes the query's cost from shared block costings,
// threading the same cross-block scan-sharing state optimizer.QueryCost
// threads: bit-identical to it, block memo aside. The query's blocks
// must not be mutated afterwards (they are interned without copying).
func (sp *Space) QueryCost(q *sqlast.Query) (float64, error) {
	if err := faults.Inject(faults.SiteQueryCost); err != nil {
		return 0, err
	}
	total := 0.0
	if sp.scan == nil {
		sp.scan = make(map[string]bool, 8)
	}
	scanned := sp.scan
	clear(scanned)
	for _, b := range q.Blocks {
		cost, err := sp.blockCost(b, scanned)
		if err != nil {
			return 0, fmt.Errorf("plan: %s: %w", q.Name, err)
		}
		total += cost
	}
	return total, nil
}

// blockCost returns the block's cost in the given scan context, from the
// memo when possible. On a hit the memoized plan's scan-state additions
// replay into scanned; on a miss the optimizer runs against scanned
// directly and the (cost, additions) pair is stored. Blocks whose tables
// are unknown to the catalog are costed directly (the optimizer reports
// the error; there is no digest to key on).
func (sp *Space) blockCost(b *sqlast.Block, scanned map[string]bool) (float64, error) {
	sp.Requested++
	sp.keyBuf = b.AppendShapeKey(sp.keyBuf[:0])
	shape := sp.keyBuf
	// Copy-free intern: record the first instance seen per shape. The
	// string(shape) map index is allocation-free on lookup; the key
	// string is materialized only on first insert.
	if _, ok := sp.blocks[string(shape)]; !ok {
		sp.blocks[string(shape)] = b
	}
	names := sp.blockTableNames(b)
	key, keyable := sp.keyFor(shape, names, scanned)
	if keyable {
		if out, hit := sp.store.get(key); hit {
			for _, add := range out.Adds {
				scanned[add] = true
			}
			return out.Cost, nil
		}
	}
	var before map[string]bool
	if keyable {
		before = make(map[string]bool, 2*len(names))
		for _, n := range names {
			before[n] = scanned[n]
			before["hash:"+n] = scanned["hash:"+n]
		}
	}
	est, err := sp.opt.BlockCostShared(b, scanned)
	if err != nil {
		return 0, err
	}
	sp.Computed++
	if keyable {
		var adds []string
		for _, n := range names {
			if scanned[n] && !before[n] {
				adds = append(adds, n)
			}
			if h := "hash:" + n; scanned[h] && !before[h] {
				adds = append(adds, h)
			}
		}
		sp.store.put(key, Outcome{Cost: est.Cost, Adds: adds})
	}
	return est.Cost, nil
}

// keyFor builds the memo key for costing a block of this shape in the
// given scan context. The scan state enters only through the entries for
// the block's own tables (the only ones block costing reads), so two
// queries whose earlier blocks scanned different unrelated tables still
// share. Returns keyable=false when a referenced table is not in the
// catalog.
func (sp *Space) keyFor(shape []byte, names []string, scanned map[string]bool) (Key, bool) {
	h := newHash2()
	h.u64(sp.modelID)
	h.bytes(shape)
	for _, n := range names {
		t := sp.opt.Cat.Table(n)
		if t == nil {
			return Key{}, false
		}
		h.str(n)
		h.u64(t.Digest)
		h.bit(scanned[n])
		h.bit(scanned["hash:"+n])
	}
	return h.key(), true
}

// blockTableNames returns the block's distinct table names, sorted,
// into the Space's reusable scratch slice (valid until the next call).
// Blocks reference a handful of tables, so the quadratic dedup and
// insertion sort beat a map and sort.Strings without allocating.
func (sp *Space) blockTableNames(b *sqlast.Block) []string {
	names := sp.names[:0]
	for i := range b.Tables {
		name := b.Tables[i].Table
		dup := false
		for _, n := range names {
			if n == name {
				dup = true
				break
			}
		}
		if !dup {
			names = append(names, name)
		}
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	sp.names = names
	return names
}

// hash2 folds key material into two independently-seeded FNV-64a streams;
// the pair forms the 128-bit memo key.
type hash2 struct {
	a, b uint64
}

func newHash2() hash2 {
	return hash2{a: fnvOffset64, b: fnvOffset64 ^ 0x9e3779b97f4a7c15}
}

func (h *hash2) byte(v byte) {
	h.a = (h.a ^ uint64(v)) * fnvPrime64
	h.b = (h.b ^ uint64(v)) * fnvPrime64
}

func (h *hash2) str(s string) {
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
	h.byte(0xff)
}

func (h *hash2) bytes(p []byte) {
	for _, c := range p {
		h.byte(c)
	}
	h.byte(0xff)
}

func (h *hash2) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v))
		v >>= 8
	}
}

func (h *hash2) bit(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

func (h hash2) key() Key { return Key{Hi: h.a, Lo: h.b} }
