package plan

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

const imdbFixture = `
type IMDB = imdb[ Show{0,*}<#34798> ]
type Show = show [ @type[ String<#8,#2> ],
    title[ String<#50,#34798> ],
    year[ Integer<#4,#1800,#2100,#300> ],
    Aka{1,10}<#3>,
    Review*<#2>,
    ( Movie | TV ) ]
type Aka = aka[ String<#40,#13641> ]
type Review = review[ ~[ String<#800,#11000> ] ]
type Movie = box_office[ Integer<#4,#10000,#100000000,#7000> ], video_sales[ Integer<#4,#10000,#100000000,#7000> ]
type TV = seasons[ Integer<#4,#1,#60,#50> ], description[ String<#120,#3500> ], Episode*<#9>
type Episode = episode[ name[ String<#40,#31250> ], guest_director[ String<#40,#5000> ] ]
`

var fixtureQueries = []string{
	`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`,
	`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title`,
	`FOR $v IN imdb/show, $e IN $v/episode WHERE $e/name = c1 RETURN $v/title`,
	`FOR $v IN imdb/show, $a IN $v/aka RETURN $v/title, $a`,
	`FOR $v IN imdb/show RETURN $v`,
}

type env struct {
	schema *xschema.Schema
	cat    *relational.Catalog
	opt    *optimizer.Optimizer
}

func buildEnv(t *testing.T) *env {
	t.Helper()
	s := xschema.MustParseSchema(imdbFixture)
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return &env{schema: s, cat: cat, opt: optimizer.New(cat)}
}

func (e *env) translate(t *testing.T, query string) *sqlast.Query {
	t.Helper()
	sq, err := xquery.Translate(xquery.MustParse(query), e.schema, e.cat)
	if err != nil {
		t.Fatalf("Translate %s: %v", query, err)
	}
	return sq
}

// TestSpaceMatchesQueryCost: costing through a Space must be bit-identical
// to optimizer.QueryCost — on a cold store (every block computed), and
// again on a warm store (every block replayed from the memo).
func TestSpaceMatchesQueryCost(t *testing.T) {
	e := buildEnv(t)
	store := NewStore(0)
	cold := NewSpace(e.opt, 1, store)
	warm := NewSpace(e.opt, 1, store)
	for _, query := range fixtureQueries {
		sq := e.translate(t, query)
		want, err := e.opt.QueryCost(sq)
		if err != nil {
			t.Fatalf("QueryCost %s: %v", query, err)
		}
		got, err := cold.QueryCost(sq)
		if err != nil {
			t.Fatalf("Space.QueryCost %s: %v", query, err)
		}
		if got != want.Cost {
			t.Errorf("%s: cold space cost %x, optimizer %x", query, got, want.Cost)
		}
		replayed, err := warm.QueryCost(sq)
		if err != nil {
			t.Fatalf("warm Space.QueryCost %s: %v", query, err)
		}
		if replayed != want.Cost {
			t.Errorf("%s: warm space cost %x, optimizer %x", query, replayed, want.Cost)
		}
	}
	if cold.Computed == 0 || cold.Computed > cold.Requested {
		t.Fatalf("cold space computed %d of %d requested", cold.Computed, cold.Requested)
	}
	if warm.Computed != 0 {
		t.Errorf("warm space recomputed %d blocks; want pure replay", warm.Computed)
	}
	if warm.Requested != cold.Requested {
		t.Errorf("warm space requested %d blocks, cold %d", warm.Requested, cold.Requested)
	}
}

// TestSpaceSharesAcrossQueries: structurally identical blocks arising in
// different queries of one workload must be costed once.
func TestSpaceSharesAcrossQueries(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	// The same publishing query translated twice yields structurally
	// identical blocks; the second pass must be answered entirely from
	// the memo.
	first := e.translate(t, `FOR $v IN imdb/show RETURN $v`)
	second := e.translate(t, `FOR $v IN imdb/show RETURN $v`)
	c1, err := sp.QueryCost(first)
	if err != nil {
		t.Fatal(err)
	}
	computedAfterFirst := sp.Computed
	c2, err := sp.QueryCost(second)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("identical queries costed differently: %x vs %x", c1, c2)
	}
	if sp.Computed != computedAfterFirst {
		t.Errorf("second pass recomputed %d blocks; want full sharing", sp.Computed-computedAfterFirst)
	}
	if sp.Distinct() >= int(sp.Requested) {
		t.Errorf("no structural dedup: %d distinct of %d requested", sp.Distinct(), sp.Requested)
	}
}

// TestMemoImmuneToCallerMutation (the copy-free interning guard):
// interning stores the caller's block instance without cloning, so the
// safety property moved from "the interned copy cannot change" to "the
// shared memo cannot be corrupted". Mutating a caller's blocks after
// costing must leave the Store's memoized outcomes intact: a fresh,
// identically-translated query costed through a new Space over the same
// Store must replay the original cost without recomputation, and
// re-costing the mutated block must key under its new shape (recomputed
// honestly, never served the stale entry).
func TestMemoImmuneToCallerMutation(t *testing.T) {
	e := buildEnv(t)
	store := NewStore(0)
	sp := NewSpace(e.opt, 1, store)
	const query = `FOR $v IN imdb/show, $e IN $v/episode WHERE $e/name = c1 RETURN $v/title`
	sq := e.translate(t, query)
	want, err := sp.QueryCost(sq)
	if err != nil {
		t.Fatal(err)
	}
	b := sq.Blocks[0]
	if sp.Interned(b) != b {
		t.Fatal("copy-free interning must record the caller's instance")
	}
	oldShape := b.ShapeKey()
	// Violate the immutability contract on purpose: mutate the caller's
	// block in positions that feed the shape encoding.
	b.Tables[0].Table = "mutated"
	for i := range b.Filters {
		b.Filters[i].Value = sqlast.Literal{Str: "mutated"}
		if b.Filters[i].RightCol != nil {
			b.Filters[i].RightCol.Column = "mutated"
		}
	}
	if b.ShapeKey() == oldShape {
		t.Fatal("mutation did not change the shape; test is vacuous")
	}
	// The memo must still replay the original query bit-identically,
	// with zero recomputation, through a fresh Space on the same Store.
	fresh := NewSpace(e.opt, 1, store)
	again, err := fresh.QueryCost(e.translate(t, query))
	if err != nil {
		t.Fatal(err)
	}
	if again != want {
		t.Fatalf("caller mutation corrupted the memo: replay %x, original %x", again, want)
	}
	if fresh.Computed != 0 {
		t.Errorf("replay recomputed %d blocks; want pure memo hits", fresh.Computed)
	}
	// The mutated block re-interns under its new shape and is recomputed
	// (its table no longer exists, so costing must fail — proving the
	// stale memo entry was not served for the new shape).
	if _, err := fresh.blockCost(b, map[string]bool{}); err == nil {
		t.Fatal("mutated block with an unknown table was served from the memo")
	}
}

// TestOutcomeAddsReplayRoundTrip (testing/quick): for random scan
// contexts over the catalog's tables, a memo hit must leave the scan
// state exactly where a fresh computation would have — same cost, same
// final scan set. This is the invariant that makes Outcome.Adds replay
// sound: hit and miss paths are observationally identical.
func TestOutcomeAddsReplayRoundTrip(t *testing.T) {
	e := buildEnv(t)
	sq := e.translate(t, `FOR $v IN imdb/show RETURN $v`)
	var tables []string
	seen := map[string]bool{}
	for _, b := range sq.Blocks {
		for _, tr := range b.Tables {
			if !seen[tr.Table] {
				seen[tr.Table] = true
				tables = append(tables, tr.Table)
			}
		}
	}
	sort.Strings(tables)
	scanFrom := func(bits []bool) map[string]bool {
		m := make(map[string]bool, len(tables))
		for i, name := range tables {
			if i < len(bits) && bits[i] {
				m[name] = true
			}
		}
		return m
	}
	property := func(bits []bool, blockIdx uint8) bool {
		b := sq.Blocks[int(blockIdx)%len(sq.Blocks)]
		// Miss path: fresh store, fresh space.
		store := NewStore(0)
		miss := NewSpace(e.opt, 1, store)
		missScan := scanFrom(bits)
		missCost, err := miss.blockCost(b, missScan)
		if err != nil {
			t.Fatalf("miss blockCost: %v", err)
		}
		// Hit path: same store, new space, identical starting context —
		// must replay Adds into the scan map, not recompute.
		hit := NewSpace(e.opt, 1, store)
		hitScan := scanFrom(bits)
		hitCost, err := hit.blockCost(b, hitScan)
		if err != nil {
			t.Fatalf("hit blockCost: %v", err)
		}
		if hit.Computed != 0 {
			t.Fatalf("hit path recomputed (computed=%d)", hit.Computed)
		}
		if hitCost != missCost {
			return false
		}
		if len(hitScan) != len(missScan) {
			return false
		}
		for k, v := range missScan {
			if hitScan[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreEvictionFIFO: the bounded store evicts oldest-first and keeps
// serving the surviving entries.
func TestStoreEvictionFIFO(t *testing.T) {
	s := NewStore(2)
	k := func(i uint64) Key { return Key{Hi: i, Lo: ^i} }
	s.put(k(1), Outcome{Cost: 1})
	s.put(k(2), Outcome{Cost: 2})
	s.put(k(3), Outcome{Cost: 3})
	if _, ok := s.get(k(1)); ok {
		t.Error("oldest entry survived eviction")
	}
	for i := uint64(2); i <= 3; i++ {
		out, ok := s.get(k(i))
		if !ok || out.Cost != float64(i) {
			t.Errorf("entry %d: got %v %v", i, out, ok)
		}
	}
	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats %+v; want 2 entries, 1 eviction", st)
	}
	// Overwriting an existing key must not grow the store.
	s.put(k(3), Outcome{Cost: 3})
	if st := s.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("idempotent put changed stats: %+v", st)
	}
}

// TestZeroValueStoreUsable: the zero value (as embedded in
// core.CostCache) must be usable without construction.
func TestZeroValueStoreUsable(t *testing.T) {
	var s Store
	if _, ok := s.get(Key{Hi: 1}); ok {
		t.Fatal("empty store hit")
	}
	s.put(Key{Hi: 1}, Outcome{Cost: 42})
	if out, ok := s.get(Key{Hi: 1}); !ok || out.Cost != 42 {
		t.Fatalf("zero-value store round trip failed: %v %v", out, ok)
	}
}

// TestScanContextKeysApart: the same block costed in different scan
// contexts (its table already scanned by an earlier block vs. not) must
// not share one memo entry — the costs legitimately differ.
func TestScanContextKeysApart(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	sq := e.translate(t, `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`)
	if len(sq.Blocks) != 1 {
		t.Fatalf("want a single-block query, got %d blocks", len(sq.Blocks))
	}
	b := sq.Blocks[0]
	freshScan := map[string]bool{}
	costFresh, err := sp.blockCost(b, freshScan)
	if err != nil {
		t.Fatal(err)
	}
	warmScan := map[string]bool{}
	for _, tr := range b.Tables {
		warmScan[tr.Table] = true
	}
	costWarm, err := sp.blockCost(b, warmScan)
	if err != nil {
		t.Fatal(err)
	}
	if costFresh == costWarm {
		t.Fatal("scanned and unscanned contexts cost the same; scan state is not reaching the cost")
	}
	// And replaying each context again must reproduce each cost exactly.
	again, err := sp.blockCost(b, map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if again != costFresh {
		t.Fatalf("fresh-context replay %x, first run %x", again, costFresh)
	}
}

// TestSpaceErrorParity: unknown tables must surface the optimizer's
// error through the space, wrapped with the query name.
func TestSpaceErrorParity(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	q := &sqlast.Query{Name: "broken", Blocks: []*sqlast.Block{{
		Tables: []sqlast.TableRef{{Table: "no_such_table", Alias: "t1"}},
	}}}
	if _, err := sp.QueryCost(q); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("want a named error for an unknown table, got %v", err)
	}
}
