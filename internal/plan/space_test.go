package plan

import (
	"strings"
	"testing"

	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

const imdbFixture = `
type IMDB = imdb[ Show{0,*}<#34798> ]
type Show = show [ @type[ String<#8,#2> ],
    title[ String<#50,#34798> ],
    year[ Integer<#4,#1800,#2100,#300> ],
    Aka{1,10}<#3>,
    Review*<#2>,
    ( Movie | TV ) ]
type Aka = aka[ String<#40,#13641> ]
type Review = review[ ~[ String<#800,#11000> ] ]
type Movie = box_office[ Integer<#4,#10000,#100000000,#7000> ], video_sales[ Integer<#4,#10000,#100000000,#7000> ]
type TV = seasons[ Integer<#4,#1,#60,#50> ], description[ String<#120,#3500> ], Episode*<#9>
type Episode = episode[ name[ String<#40,#31250> ], guest_director[ String<#40,#5000> ] ]
`

var fixtureQueries = []string{
	`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`,
	`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title`,
	`FOR $v IN imdb/show, $e IN $v/episode WHERE $e/name = c1 RETURN $v/title`,
	`FOR $v IN imdb/show, $a IN $v/aka RETURN $v/title, $a`,
	`FOR $v IN imdb/show RETURN $v`,
}

type env struct {
	schema *xschema.Schema
	cat    *relational.Catalog
	opt    *optimizer.Optimizer
}

func buildEnv(t *testing.T) *env {
	t.Helper()
	s := xschema.MustParseSchema(imdbFixture)
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return &env{schema: s, cat: cat, opt: optimizer.New(cat)}
}

func (e *env) translate(t *testing.T, query string) *sqlast.Query {
	t.Helper()
	sq, err := xquery.Translate(xquery.MustParse(query), e.schema, e.cat)
	if err != nil {
		t.Fatalf("Translate %s: %v", query, err)
	}
	return sq
}

// TestSpaceMatchesQueryCost: costing through a Space must be bit-identical
// to optimizer.QueryCost — on a cold store (every block computed), and
// again on a warm store (every block replayed from the memo).
func TestSpaceMatchesQueryCost(t *testing.T) {
	e := buildEnv(t)
	store := NewStore(0)
	cold := NewSpace(e.opt, 1, store)
	warm := NewSpace(e.opt, 1, store)
	for _, query := range fixtureQueries {
		sq := e.translate(t, query)
		want, err := e.opt.QueryCost(sq)
		if err != nil {
			t.Fatalf("QueryCost %s: %v", query, err)
		}
		got, err := cold.QueryCost(sq)
		if err != nil {
			t.Fatalf("Space.QueryCost %s: %v", query, err)
		}
		if got != want.Cost {
			t.Errorf("%s: cold space cost %x, optimizer %x", query, got, want.Cost)
		}
		replayed, err := warm.QueryCost(sq)
		if err != nil {
			t.Fatalf("warm Space.QueryCost %s: %v", query, err)
		}
		if replayed != want.Cost {
			t.Errorf("%s: warm space cost %x, optimizer %x", query, replayed, want.Cost)
		}
	}
	if cold.Computed == 0 || cold.Computed > cold.Requested {
		t.Fatalf("cold space computed %d of %d requested", cold.Computed, cold.Requested)
	}
	if warm.Computed != 0 {
		t.Errorf("warm space recomputed %d blocks; want pure replay", warm.Computed)
	}
	if warm.Requested != cold.Requested {
		t.Errorf("warm space requested %d blocks, cold %d", warm.Requested, cold.Requested)
	}
}

// TestSpaceSharesAcrossQueries: structurally identical blocks arising in
// different queries of one workload must be costed once.
func TestSpaceSharesAcrossQueries(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	// The same publishing query translated twice yields structurally
	// identical blocks; the second pass must be answered entirely from
	// the memo.
	first := e.translate(t, `FOR $v IN imdb/show RETURN $v`)
	second := e.translate(t, `FOR $v IN imdb/show RETURN $v`)
	c1, err := sp.QueryCost(first)
	if err != nil {
		t.Fatal(err)
	}
	computedAfterFirst := sp.Computed
	c2, err := sp.QueryCost(second)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("identical queries costed differently: %x vs %x", c1, c2)
	}
	if sp.Computed != computedAfterFirst {
		t.Errorf("second pass recomputed %d blocks; want full sharing", sp.Computed-computedAfterFirst)
	}
	if sp.Distinct() >= int(sp.Requested) {
		t.Errorf("no structural dedup: %d distinct of %d requested", sp.Distinct(), sp.Requested)
	}
}

// TestInternedEntriesImmuneToCallerMutation (the deep-copy aliasing
// guard): mutating a block after it was interned — tables, filter
// literals, the RightCol pointer Clone must have deep-copied — must not
// perturb the Space's interned entry.
func TestInternedEntriesImmuneToCallerMutation(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	sq := e.translate(t, `FOR $v IN imdb/show, $e IN $v/episode WHERE $e/name = c1 RETURN $v/title`)
	if _, err := sp.QueryCost(sq); err != nil {
		t.Fatal(err)
	}
	b := sq.Blocks[0]
	interned := sp.Interned(b)
	if interned == nil {
		t.Fatal("block not interned")
	}
	if interned == b {
		t.Fatal("space interned the caller's block instance, not a copy")
	}
	before := interned.SQL()
	shape := interned.ShapeKey()
	// Mutate the caller's block in every aliasable position.
	b.Tables[0].Table = "mutated"
	for i := range b.Filters {
		b.Filters[i].Value = sqlast.Literal{Str: "mutated"}
		if b.Filters[i].RightCol != nil {
			b.Filters[i].RightCol.Column = "mutated"
		}
	}
	if len(b.Projects) > 0 {
		b.Projects[0].Column = "mutated"
	}
	if got := interned.SQL(); got != before {
		t.Fatalf("caller mutation reached the interned entry:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if interned.ShapeKey() != shape {
		t.Fatal("caller mutation changed the interned entry's shape")
	}
}

// TestStoreEvictionFIFO: the bounded store evicts oldest-first and keeps
// serving the surviving entries.
func TestStoreEvictionFIFO(t *testing.T) {
	s := NewStore(2)
	k := func(i uint64) Key { return Key{Hi: i, Lo: ^i} }
	s.put(k(1), Outcome{Cost: 1})
	s.put(k(2), Outcome{Cost: 2})
	s.put(k(3), Outcome{Cost: 3})
	if _, ok := s.get(k(1)); ok {
		t.Error("oldest entry survived eviction")
	}
	for i := uint64(2); i <= 3; i++ {
		out, ok := s.get(k(i))
		if !ok || out.Cost != float64(i) {
			t.Errorf("entry %d: got %v %v", i, out, ok)
		}
	}
	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("stats %+v; want 2 entries, 1 eviction", st)
	}
	// Overwriting an existing key must not grow the store.
	s.put(k(3), Outcome{Cost: 3})
	if st := s.Stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Errorf("idempotent put changed stats: %+v", st)
	}
}

// TestZeroValueStoreUsable: the zero value (as embedded in
// core.CostCache) must be usable without construction.
func TestZeroValueStoreUsable(t *testing.T) {
	var s Store
	if _, ok := s.get(Key{Hi: 1}); ok {
		t.Fatal("empty store hit")
	}
	s.put(Key{Hi: 1}, Outcome{Cost: 42})
	if out, ok := s.get(Key{Hi: 1}); !ok || out.Cost != 42 {
		t.Fatalf("zero-value store round trip failed: %v %v", out, ok)
	}
}

// TestScanContextKeysApart: the same block costed in different scan
// contexts (its table already scanned by an earlier block vs. not) must
// not share one memo entry — the costs legitimately differ.
func TestScanContextKeysApart(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	sq := e.translate(t, `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`)
	if len(sq.Blocks) != 1 {
		t.Fatalf("want a single-block query, got %d blocks", len(sq.Blocks))
	}
	b := sq.Blocks[0]
	freshScan := map[string]bool{}
	costFresh, err := sp.blockCost(b, freshScan)
	if err != nil {
		t.Fatal(err)
	}
	warmScan := map[string]bool{}
	for _, tr := range b.Tables {
		warmScan[tr.Table] = true
	}
	costWarm, err := sp.blockCost(b, warmScan)
	if err != nil {
		t.Fatal(err)
	}
	if costFresh == costWarm {
		t.Fatal("scanned and unscanned contexts cost the same; scan state is not reaching the cost")
	}
	// And replaying each context again must reproduce each cost exactly.
	again, err := sp.blockCost(b, map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if again != costFresh {
		t.Fatalf("fresh-context replay %x, first run %x", again, costFresh)
	}
}

// TestSpaceErrorParity: unknown tables must surface the optimizer's
// error through the space, wrapped with the query name.
func TestSpaceErrorParity(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	q := &sqlast.Query{Name: "broken", Blocks: []*sqlast.Block{{
		Tables: []sqlast.TableRef{{Table: "no_such_table", Alias: "t1"}},
	}}}
	if _, err := sp.QueryCost(q); err == nil || !strings.Contains(err.Error(), "broken") {
		t.Fatalf("want a named error for an unknown table, got %v", err)
	}
}
