// Package plan is the logical-plan layer between the XQuery translator
// and the cost-based optimizer. It gives translated SPJ blocks a
// canonical identity — an alias- and order-invariant Fingerprint over
// tables, join edges, filters and projections — and a per-configuration
// Space that interns every block the workload translates to, costs each
// distinct block once via optimizer.BlockCostShared, and composes
// per-query costs from the shared block costings.
//
// Two identities with different guarantees coexist on purpose:
//
//   - sqlast.Block.ShapeKey is alias-invariant but order-preserving. The
//     optimizer's block costing is itself alias-independent (no cost term
//     reads an alias string) but order-dependent in the low bits (float
//     selectivities multiply in filter order; greedy ties break by FROM
//     position), so the cost memo keys on ShapeKey and replayed costs are
//     bit-identical to recomputation — sharing on and off produce the
//     same bytes.
//   - Fingerprint is additionally order-invariant (signature refinement
//     over the join graph), the right identity for structural dedup
//     statistics and for asking "is this the same logical block". A
//     fingerprint collision between order-variants can never corrupt a
//     cost: costs are keyed on ShapeKey alone.
package plan

import (
	"fmt"
	"sort"

	"legodb/internal/sqlast"
)

// Fingerprint is the canonical, alias- and order-invariant identity of
// an SPJ block.
type Fingerprint uint64

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return (h ^ 0xff) * fnvPrime64 // terminator: "ab"+"c" ≠ "a"+"bc"
}

func hashU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// BlockFingerprint computes the canonical fingerprint of a block.
//
// The construction is a Weisfeiler-Lehman-style signature refinement over
// the block's join graph. Each FROM entry starts from a local signature
// (table name, sorted single-alias filters, sorted projected columns);
// len(Tables) refinement rounds then fold in the sorted multiset of
// (edge label, neighbour signature) pairs, where join predicates and
// cross-alias comparison filters contribute the edges. The final hash
// folds the nodes in canonical signature order together with every join,
// filter and projection re-encoded against that order, so the result does
// not depend on alias names, FROM order, or the order of the join, filter
// and projection lists — but changes when any table, join edge column,
// filter operator or constant, or projected column changes.
func BlockFingerprint(b *sqlast.Block) Fingerprint {
	n := len(b.Tables)
	if n == 0 {
		return Fingerprint(fnvOffset64)
	}
	index := make(map[string]int, n)
	for i, t := range b.Tables {
		if _, ok := index[t.Alias]; !ok {
			index[t.Alias] = i
		}
	}
	// Local node signatures.
	local := make([][]string, n)
	for _, f := range b.Filters {
		if f.RightCol == nil || f.RightCol.Alias == f.Col.Alias {
			if i, ok := index[f.Col.Alias]; ok {
				local[i] = append(local[i], localFilterKey(f))
			}
		}
	}
	for _, p := range b.Projects {
		if i, ok := index[p.Alias]; ok {
			local[i] = append(local[i], "p\x00"+p.Column)
		}
	}
	sig := make([]uint64, n)
	for i, t := range b.Tables {
		h := hashStr(uint64(fnvOffset64), t.Table)
		sort.Strings(local[i])
		for _, s := range local[i] {
			h = hashStr(h, s)
		}
		sig[i] = h
	}
	// Edges of the join graph, labelled from each endpoint's perspective.
	type gedge struct {
		a, b   int
		la, lb string
	}
	var edges []gedge
	addEdge := func(l, r sqlast.ColumnRef, la, lb string) {
		i, iok := index[l.Alias]
		j, jok := index[r.Alias]
		if !iok || !jok {
			return
		}
		edges = append(edges, gedge{a: i, b: j, la: la, lb: lb})
	}
	for _, j := range b.Joins {
		addEdge(j.Left, j.Right,
			"j\x00"+j.Left.Column+"\x00"+j.Right.Column,
			"j\x00"+j.Right.Column+"\x00"+j.Left.Column)
	}
	for _, f := range b.Filters {
		if f.RightCol != nil && f.RightCol.Alias != f.Col.Alias {
			op := f.Op.String()
			addEdge(f.Col, *f.RightCol,
				"fl\x00"+op+"\x00"+f.Col.Column+"\x00"+f.RightCol.Column,
				"fr\x00"+op+"\x00"+f.RightCol.Column+"\x00"+f.Col.Column)
		}
	}
	// Refinement rounds.
	for round := 0; round < n; round++ {
		adj := make([][]uint64, n)
		for _, e := range edges {
			adj[e.a] = append(adj[e.a], hashU64(hashStr(uint64(fnvOffset64), e.la), sig[e.b]))
			adj[e.b] = append(adj[e.b], hashU64(hashStr(uint64(fnvOffset64), e.lb), sig[e.a]))
		}
		next := make([]uint64, n)
		for i := range next {
			sort.Slice(adj[i], func(x, y int) bool { return adj[i][x] < adj[i][y] })
			h := sig[i]
			for _, v := range adj[i] {
				h = hashU64(h, v)
			}
			next[i] = h
		}
		sig = next
	}
	// Canonical node order: by refined signature, table name as tie-break.
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(x, y int) bool {
		if sig[ord[x]] != sig[ord[y]] {
			return sig[ord[x]] < sig[ord[y]]
		}
		return b.Tables[ord[x]].Table < b.Tables[ord[y]].Table
	})
	rank := make(map[string]int, n)
	for r, i := range ord {
		if _, ok := rank[b.Tables[i].Alias]; !ok {
			rank[b.Tables[i].Alias] = r
		}
	}
	cref := func(c sqlast.ColumnRef) string {
		if r, ok := rank[c.Alias]; ok {
			return fmt.Sprintf("%d.%s", r, c.Column)
		}
		return "?" + c.Alias + "." + c.Column
	}
	// Final hash: canonical nodes, then the sorted re-encoded clause set.
	h := uint64(fnvOffset64)
	for _, i := range ord {
		h = hashU64(hashStr(h, b.Tables[i].Table), sig[i])
	}
	var parts []string
	for _, j := range b.Joins {
		l, r := cref(j.Left), cref(j.Right)
		if r < l { // equi-joins are symmetric
			l, r = r, l
		}
		parts = append(parts, "J\x00"+l+"\x00"+r)
	}
	for _, f := range b.Filters {
		if f.RightCol != nil {
			parts = append(parts, "F\x00"+cref(f.Col)+"\x00"+f.Op.String()+"\x00"+cref(*f.RightCol))
		} else {
			parts = append(parts, "F\x00"+cref(f.Col)+"\x00"+f.Op.String()+"\x00"+f.Value.String())
		}
	}
	for _, p := range b.Projects {
		parts = append(parts, "P\x00"+cref(p))
	}
	sort.Strings(parts)
	for _, s := range parts {
		h = hashStr(h, s)
	}
	return Fingerprint(h)
}

// localFilterKey encodes a single-alias filter for the node signature.
func localFilterKey(f sqlast.Filter) string {
	if f.RightCol != nil {
		return "f\x00" + f.Col.Column + "\x00" + f.Op.String() + "\x00" + f.RightCol.Column
	}
	return "f\x00" + f.Col.Column + "\x00" + f.Op.String() + "\x00" + f.Value.String()
}

// QueryFingerprint folds the fingerprints of a query's blocks as an
// unordered multiset: invariant under union-branch reordering and under
// anything BlockFingerprint is invariant under.
func QueryFingerprint(q *sqlast.Query) Fingerprint {
	fps := make([]uint64, len(q.Blocks))
	for i, b := range q.Blocks {
		fps[i] = uint64(BlockFingerprint(b))
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	h := uint64(fnvOffset64)
	for _, fp := range fps {
		h = hashU64(h, fp)
	}
	return Fingerprint(h)
}
