package plan

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"legodb/internal/sqlast"
)

// genBlock builds a random connected SPJ block: 1–4 tables from a small
// pool, a spanning set of equi-joins, random local and cross-alias
// filters, random projections.
func genBlock(r *rand.Rand) *sqlast.Block {
	tables := []string{"show", "review", "aka", "episode", "seasons", "movie"}
	columns := []string{"c0", "c1", "c2", "c3"}
	b := &sqlast.Block{}
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		b.AddTable(tables[r.Intn(len(tables))], fmt.Sprintf("t%d", i+1))
	}
	col := func(i int) sqlast.ColumnRef {
		return sqlast.ColumnRef{Alias: b.Tables[i].Alias, Column: columns[r.Intn(len(columns))]}
	}
	for i := 1; i < n; i++ {
		b.Joins = append(b.Joins, sqlast.Join{Left: col(i), Right: col(r.Intn(i))})
	}
	ops := []sqlast.CmpOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}
	for k := r.Intn(4); k > 0; k-- {
		f := sqlast.Filter{Col: col(r.Intn(n)), Op: ops[r.Intn(len(ops))]}
		switch r.Intn(3) {
		case 0:
			f.Value = sqlast.Literal{IsInt: true, Int: int64(r.Intn(1000))}
		case 1:
			f.Value = sqlast.Literal{Str: fmt.Sprintf("s%d", r.Intn(100))}
		default:
			rc := col(r.Intn(n))
			f.RightCol = &rc
		}
		b.Filters = append(b.Filters, f)
	}
	for k := r.Intn(4); k > 0; k-- {
		b.Projects = append(b.Projects, col(r.Intn(n)))
	}
	return b
}

// randomBlock adapts genBlock to testing/quick.
type randomBlock struct {
	b    *sqlast.Block
	seed int64
}

func (randomBlock) Generate(r *rand.Rand, _ int) reflect.Value {
	seed := r.Int63()
	return reflect.ValueOf(randomBlock{b: genBlock(rand.New(rand.NewSource(seed))), seed: seed})
}

// renameAliases returns the block with every alias consistently replaced
// through the mapping.
func renameAliases(b *sqlast.Block, names map[string]string) *sqlast.Block {
	out := b.Clone()
	ren := func(c *sqlast.ColumnRef) {
		if n, ok := names[c.Alias]; ok {
			c.Alias = n
		}
	}
	for i := range out.Tables {
		if n, ok := names[out.Tables[i].Alias]; ok {
			out.Tables[i].Alias = n
		}
	}
	for i := range out.Joins {
		ren(&out.Joins[i].Left)
		ren(&out.Joins[i].Right)
	}
	for i := range out.Filters {
		ren(&out.Filters[i].Col)
		if out.Filters[i].RightCol != nil {
			ren(out.Filters[i].RightCol)
		}
	}
	for i := range out.Projects {
		ren(&out.Projects[i])
	}
	return out
}

// shuffle returns the block with all four clause lists independently
// permuted (aliases travel with their table refs, so semantics are
// preserved).
func shuffle(b *sqlast.Block, r *rand.Rand) *sqlast.Block {
	out := b.Clone()
	r.Shuffle(len(out.Tables), func(i, j int) { out.Tables[i], out.Tables[j] = out.Tables[j], out.Tables[i] })
	r.Shuffle(len(out.Joins), func(i, j int) { out.Joins[i], out.Joins[j] = out.Joins[j], out.Joins[i] })
	r.Shuffle(len(out.Filters), func(i, j int) { out.Filters[i], out.Filters[j] = out.Filters[j], out.Filters[i] })
	r.Shuffle(len(out.Projects), func(i, j int) { out.Projects[i], out.Projects[j] = out.Projects[j], out.Projects[i] })
	return out
}

// TestFingerprintInvariantUnderRenamingAndReordering: the canonical
// fingerprint must not change when aliases are renamed or the table,
// join, filter and projection lists are permuted.
func TestFingerprintInvariantUnderRenamingAndReordering(t *testing.T) {
	prop := func(rb randomBlock) bool {
		r := rand.New(rand.NewSource(rb.seed + 1))
		fp := BlockFingerprint(rb.b)
		names := make(map[string]string, len(rb.b.Tables))
		for i, tr := range rb.b.Tables {
			names[tr.Alias] = fmt.Sprintf("renamed_%c%d", 'a'+r.Intn(26), i)
		}
		if BlockFingerprint(renameAliases(rb.b, names)) != fp {
			t.Logf("seed %d: alias renaming changed the fingerprint of\n%s", rb.seed, rb.b.SQL())
			return false
		}
		for round := 0; round < 4; round++ {
			if BlockFingerprint(shuffle(rb.b, r)) != fp {
				t.Logf("seed %d: reordering changed the fingerprint of\n%s", rb.seed, rb.b.SQL())
				return false
			}
		}
		if BlockFingerprint(shuffle(renameAliases(rb.b, names), r)) != fp {
			t.Logf("seed %d: rename+reorder changed the fingerprint of\n%s", rb.seed, rb.b.SQL())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFingerprintDistinguishesEditedBlocks: changing any join edge column
// or any filter constant must change the fingerprint.
func TestFingerprintDistinguishesEditedBlocks(t *testing.T) {
	prop := func(rb randomBlock) bool {
		fp := BlockFingerprint(rb.b)
		for i := range rb.b.Joins {
			edited := rb.b.Clone()
			edited.Joins[i].Left.Column = "edited_" + edited.Joins[i].Left.Column
			if BlockFingerprint(edited) == fp {
				t.Logf("seed %d: editing join %d went unnoticed in\n%s", rb.seed, i, rb.b.SQL())
				return false
			}
		}
		for i := range rb.b.Filters {
			edited := rb.b.Clone()
			f := &edited.Filters[i]
			switch {
			case f.RightCol != nil:
				f.RightCol.Column = "edited_" + f.RightCol.Column
			case f.Value.IsInt:
				f.Value.Int++
			default:
				f.Value.Str += "'edited"
			}
			if BlockFingerprint(edited) == fp {
				t.Logf("seed %d: editing filter %d went unnoticed in\n%s", rb.seed, i, rb.b.SQL())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestShapeKeyAliasInvariantOrderSensitive pins the contract split
// between the two identities: ShapeKey ignores alias names (like the
// fingerprint) but preserves clause order (unlike it) — the property
// that makes it a sound key for the order-sensitive cost memo.
func TestShapeKeyAliasInvariantOrderSensitive(t *testing.T) {
	prop := func(rb randomBlock) bool {
		shape := rb.b.ShapeKey()
		names := make(map[string]string, len(rb.b.Tables))
		for i, tr := range rb.b.Tables {
			names[tr.Alias] = fmt.Sprintf("other%d", i)
		}
		if renameAliases(rb.b, names).ShapeKey() != shape {
			t.Logf("seed %d: alias renaming changed the shape of\n%s", rb.seed, rb.b.SQL())
			return false
		}
		if len(rb.b.Tables) > 1 {
			swapped := rb.b.Clone()
			swapped.Tables[0], swapped.Tables[1] = swapped.Tables[1], swapped.Tables[0]
			if swapped.ShapeKey() == shape && swapped.Tables[0] != rb.b.Tables[0] {
				t.Logf("seed %d: FROM reordering went unnoticed by the shape of\n%s", rb.seed, rb.b.SQL())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQueryFingerprintIgnoresBranchOrder: a query fingerprint is a
// multiset fold, so permuting union branches must not change it.
func TestQueryFingerprintIgnoresBranchOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	q := &sqlast.Query{Name: "Q"}
	for i := 0; i < 4; i++ {
		q.Blocks = append(q.Blocks, genBlock(r))
	}
	fp := QueryFingerprint(q)
	rev := &sqlast.Query{Name: "Q"}
	for i := len(q.Blocks) - 1; i >= 0; i-- {
		rev.Blocks = append(rev.Blocks, q.Blocks[i])
	}
	if QueryFingerprint(rev) != fp {
		t.Fatal("reversing union branches changed the query fingerprint")
	}
	edited := &sqlast.Query{Name: "Q", Blocks: append([]*sqlast.Block(nil), q.Blocks...)}
	edited.Blocks[0] = edited.Blocks[0].Clone()
	edited.Blocks[0].Tables[0].Table = "edited"
	if QueryFingerprint(edited) == fp {
		t.Fatal("editing a branch went unnoticed by the query fingerprint")
	}
}
