package plan

import (
	"testing"
)

// Allocation budgets for the logical-plan hot path (skipped under the
// race detector, whose instrumentation allocates; CI runs them in the
// plain-build robustness job).
func assertAllocs(t *testing.T, what string, budget float64, f func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation budgets only hold without the race detector")
	}
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.1f", what, got, budget)
	}
}

// TestAllocsAppendShapeKey: encoding a block's shape into a reused
// buffer must not allocate — it runs once per block per costing
// request, hit or miss.
func TestAllocsAppendShapeKey(t *testing.T) {
	e := buildEnv(t)
	sq := e.translate(t, fixtureQueries[2])
	b := sq.Blocks[0]
	buf := b.AppendShapeKey(nil)
	assertAllocs(t, "Block.AppendShapeKey", 0, func() {
		buf = b.AppendShapeKey(buf[:0])
	})
}

// TestAllocsSpaceQueryCostHit: re-costing a query whose blocks are all
// memoized must not allocate — the warm path runs for every shared
// block of every candidate in the search inner loop.
func TestAllocsSpaceQueryCostHit(t *testing.T) {
	e := buildEnv(t)
	sp := NewSpace(e.opt, 1, nil)
	sq := e.translate(t, fixtureQueries[2])
	if _, err := sp.QueryCost(sq); err != nil {
		t.Fatal(err)
	}
	assertAllocs(t, "Space.QueryCost warm", 0, func() {
		if _, err := sp.QueryCost(sq); err != nil {
			t.Fatal(err)
		}
	})
}
