package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"legodb/internal/faults"
	"legodb/internal/imdb"
)

const lookupQuery = `FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testTenantSpec(name string) TenantSpec {
	return TenantSpec{
		Name:   name,
		Schema: imdb.SchemaText,
		Stats:  imdb.StatsText,
		Config: "all-inlined",
		Queries: []TenantQuery{
			{Name: "lookup", Text: lookupQuery, Weight: 1},
		},
	}
}

// newTestServer builds a server with an all-inlined "imdb" tenant
// preloaded with a small synthetic document.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.AddTenant(context.Background(), testTenantSpec("imdb")); err != nil {
		t.Fatalf("AddTenant: %v", err)
	}
	if err := s.LoadDocument("imdb", imdb.Generate(imdb.GenOptions{Shows: 30, Seed: 7})); err != nil {
		t.Fatalf("LoadDocument: %v", err)
	}
	return s
}

func postQuery(t *testing.T, base, query string, params map[string]string, timeoutMs int) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(queryRequest{Query: query, Params: params, TimeoutMs: timeoutMs})
	resp, err := http.Post(base+"/tenants/imdb/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST query: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// waitFor polls cond for up to 5s; serving-state transitions (a request
// reaching its in-flight hook, a drain flipping) are observed this way
// instead of with sleeps.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestServeQueryEndToEnd(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}

	resp, body := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	if len(qr.Columns) != 2 {
		t.Fatalf("columns = %v, want 2", qr.Columns)
	}

	st := s.StatsSnapshot()
	if st.Served == 0 {
		t.Fatal("served counter not bumped")
	}
	tn := st.Tenants["imdb"]
	if !tn.Ready || tn.Rows == 0 || tn.Tables == 0 {
		t.Fatalf("tenant stats = %+v, want ready with rows", tn)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var hs Stats
	if err := json.NewDecoder(resp.Body).Decode(&hs); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if hs.Tenants["imdb"].Rows != tn.Rows {
		t.Fatalf("http stats rows = %d, snapshot = %d", hs.Tenants["imdb"].Rows, tn.Rows)
	}
}

func TestCreateLoadQueryOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ts2 := testTenantSpec("imdb2")
	ts2.Config = "all-outlined"
	spec, _ := json.Marshal(ts2)
	resp, err := http.Post(ts.URL+"/tenants", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatalf("POST tenants: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create tenant = %d, want 201", resp.StatusCode)
	}
	// Duplicate names are rejected, not replaced.
	resp, err = http.Post(ts.URL+"/tenants", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate tenant = %d, want 400", resp.StatusCode)
	}

	doc := imdb.Generate(imdb.GenOptions{Shows: 5, Seed: 3})
	resp, err = http.Post(ts.URL+"/tenants/imdb2/load", "application/xml",
		strings.NewReader(doc.String()))
	if err != nil {
		t.Fatalf("POST load: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load = %d: %s", resp.StatusCode, b)
	}

	body, _ := json.Marshal(queryRequest{Query: `FOR $v IN imdb/show RETURN $v/title`})
	resp, err = http.Post(ts.URL+"/tenants/imdb2/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query on created tenant = %d: %s", resp.StatusCode, b)
	}
}

func TestUnknownTenantAndBadQuery(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(queryRequest{Query: lookupQuery})
	resp, err := http.Post(ts.URL+"/tenants/nosuch/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant = %d, want 404", resp.StatusCode)
	}

	resp, b := postQuery(t, ts.URL, "THIS IS NOT XQUERY", nil, 0)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query = %d: %s", resp.StatusCode, b)
	}
	var eb errBody
	if err := json.Unmarshal(b, &eb); err != nil || eb.Error == "" {
		t.Fatalf("bad query error body = %q (%v)", b, err)
	}
}

// TestInjectedExecFaultRecovers arms the executor failpoint for two
// hits: both requests get structured 500s, the third succeeds, and the
// server never counts a panic.
func TestInjectedExecFaultRecovers(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	restore := faults.Enable(faults.SiteExec, 2, false)
	defer restore()
	for i := 0; i < 2; i++ {
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("faulted query %d = %d: %s", i, resp.StatusCode, b)
		}
		var eb errBody
		if err := json.Unmarshal(b, &eb); err != nil || !strings.Contains(eb.Error, "injected") {
			t.Fatalf("faulted query %d body = %q", i, b)
		}
	}
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered query = %d: %s", resp.StatusCode, b)
	}
	if p := s.StatsSnapshot().Panics; p != 0 {
		t.Fatalf("panics = %d, want 0", p)
	}
}

// TestInjectedShredFaultOnLoad proves a faulted document load reports a
// 500 and the tenant keeps serving loads afterwards.
func TestInjectedShredFaultOnLoad(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	doc := imdb.Generate(imdb.GenOptions{Shows: 2, Seed: 11})
	restore := faults.Enable(faults.SiteShred, 1, false)
	defer restore()
	resp, err := http.Post(ts.URL+"/tenants/imdb/load", "application/xml", strings.NewReader(doc.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("faulted load = %d, want 500", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/tenants/imdb/load", "application/xml", strings.NewReader(doc.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered load = %d, want 200", resp.StatusCode)
	}
}

// TestPanicIsolation injects a panic into the executor: the request
// gets a 500, the panic counter bumps, and the next request serves.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	restore := faults.Enable(faults.SiteExec, 1, true)
	defer restore()
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked query = %d: %s", resp.StatusCode, b)
	}
	if p := s.StatsSnapshot().Panics; p != 1 {
		t.Fatalf("panics = %d, want 1", p)
	}
	resp, b = postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after panic = %d: %s", resp.StatusCode, b)
	}
}

// TestSaturationSheds holds the single slot with a gated request and
// checks the next request is shed with 429 + Retry-After rather than
// queued (QueueDepth < 0) or blocked.
func TestSaturationSheds(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteServe, 1, func() {
		close(entered)
		<-gate
	})
	defer restore()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held query = %d: %s", resp.StatusCode, b)
		}
	}()
	<-entered

	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated query = %d: %s", resp.StatusCode, b)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	close(gate)
	wg.Wait()
	if st := s.StatsSnapshot(); st.Shed != 1 {
		t.Fatalf("shed = %d, want 1", st.Shed)
	}
}

// TestQueueAdmitsWhenSlotFrees saturates the one slot, queues a second
// request within the queue budget, frees the slot, and expects the
// queued request to be admitted rather than shed.
func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, QueueWait: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteServe, 1, func() {
		close(entered)
		<-gate
	})
	defer restore()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held query = %d: %s", resp.StatusCode, b)
		}
	}()
	<-entered
	go func() {
		defer wg.Done()
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("queued query = %d: %s", resp.StatusCode, b)
		}
	}()
	waitFor(t, "second request to queue", func() bool { return s.waiting.Load() == 1 })
	close(gate)
	wg.Wait()
	if st := s.StatsSnapshot(); st.Shed != 0 {
		t.Fatalf("shed = %d, want 0", st.Shed)
	}
}

// TestPerTenantCapSheds blocks one query inside the tenant's executor
// and checks a second query for the same tenant is shed by the
// per-tenant cap even though global slots remain.
func TestPerTenantCapSheds(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 8, PerTenantInflight: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteExec, 1, func() {
		close(entered)
		<-gate
	})
	defer restore()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held query = %d: %s", resp.StatusCode, b)
		}
	}()
	<-entered

	resp, _ := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap query = %d, want 429", resp.StatusCode)
	}
	close(gate)
	wg.Wait()
	if shed := s.StatsSnapshot().Tenants["imdb"].Shed; shed != 1 {
		t.Fatalf("tenant shed = %d, want 1", shed)
	}
}

// TestRequestDeadline504 holds the executor past the request's own
// timeout_ms: the response is a 504 and the timeout counter bumps.
func TestRequestDeadline504(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	restore := faults.EnableHook(faults.SiteExec, 1, func() {
		time.Sleep(150 * time.Millisecond)
	})
	defer restore()
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 30)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("slow query = %d: %s", resp.StatusCode, b)
	}
	if n := s.StatsSnapshot().Timeouts; n != 1 {
		t.Fatalf("timeouts = %d, want 1", n)
	}
	resp, b = postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after timeout = %d: %s", resp.StatusCode, b)
	}
}

// TestClientCancellationReleasesSlot cancels the client mid-execution
// and checks the in-flight slot is returned and the server keeps
// serving — a dropped connection must not leak admission tokens.
func TestClientCancellationReleasesSlot(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteExec, 1, func() {
		close(entered)
		time.Sleep(100 * time.Millisecond) // past the client's cancel
	})
	defer restore()

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(queryRequest{Query: lookupQuery, Params: map[string]string{"c1": "1999"}})
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/tenants/imdb/query", bytes.NewReader(body))
	errc := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		errc <- err
	}()
	<-entered
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned no error")
	}
	waitFor(t, "slot release", func() bool { return s.inflight.Load() == 0 })
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after cancellation = %d: %s", resp.StatusCode, b)
	}
}

// TestDrainCompletesInflight holds a request, starts a drain, checks new
// requests bounce with 503 while the held one completes, and that the
// drain snapshots the cost cache for the next boot.
func TestDrainCompletesInflight(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cache.snap")
	s := newTestServer(t, Config{SnapshotPath: snap, DrainTimeout: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteServe, 1, func() {
		close(entered)
		<-gate
	})
	defer restore()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held query = %d: %s", resp.StatusCode, b)
		}
	}()
	<-entered

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitFor(t, "draining flag", s.isDraining)

	resp, _ := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", hresp.StatusCode)
	}

	close(gate)
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	// The snapshot boots the next server warm.
	s2, err := New(Config{SnapshotPath: snap, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("New from snapshot: %v", err)
	}
	if w := s2.BootWarning(); w != "" {
		t.Fatalf("clean snapshot produced warning %q", w)
	}
	if s2.Registry().Stats().Cache.Entries == 0 {
		t.Fatal("snapshot reloaded zero cache entries")
	}
}

// TestDrainForcedByDeadline holds a request past a tiny drain deadline
// and expects ErrDrainForced (and still a snapshot attempt).
func TestDrainForcedByDeadline(t *testing.T) {
	s := newTestServer(t, Config{DrainTimeout: 50 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteServe, 1, func() {
		close(entered)
		<-gate
	})
	defer restore()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		resp.Body.Close()
	}()
	<-entered
	err := s.Drain(context.Background())
	close(gate)
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "drain deadline") {
		t.Fatalf("forced drain err = %v, want drain deadline error", err)
	}
}

// TestBootQuarantinesCorruptSnapshot writes garbage where the snapshot
// should be: the server must quarantine it to .corrupt, report the
// warning, and serve cold.
func TestBootQuarantinesCorruptSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "cache.snap")
	if err := os.WriteFile(snap, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{SnapshotPath: snap, Logger: quietLogger()})
	if err != nil {
		t.Fatalf("New over corrupt snapshot: %v", err)
	}
	if s.BootWarning() == "" {
		t.Fatal("corrupt snapshot produced no boot warning")
	}
	if _, err := os.Stat(snap + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(snap); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in place: %v", err)
	}
	// Cold server still takes a tenant and serves.
	if err := s.AddTenant(context.Background(), testTenantSpec("imdb")); err != nil {
		t.Fatalf("AddTenant after quarantine: %v", err)
	}
	if err := s.LoadDocument("imdb", imdb.Generate(imdb.GenOptions{Shows: 3, Seed: 5})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after quarantine = %d: %s", resp.StatusCode, b)
	}
	if st := s.StatsSnapshot(); st.BootWarning == "" {
		t.Fatal("boot warning not surfaced in stats")
	}
}

// TestMutationsOverHTTP runs delete and insert through their endpoints.
func TestMutationsOverHTTP(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, req mutateRequest) (int, map[string]any) {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	code, out := post("/tenants/imdb/insert", mutateRequest{
		Query:    `FOR $s IN imdb/show WHERE $s/year = c1 RETURN $s`,
		Params:   map[string]string{"c1": "1999"},
		Fragment: `<aka>served alias</aka>`,
	})
	if code != http.StatusOK {
		t.Fatalf("insert = %d: %v", code, out)
	}
	code, out = post("/tenants/imdb/delete", mutateRequest{
		Query:  `FOR $s IN imdb/show WHERE $s/year = c1 RETURN $s`,
		Params: map[string]string{"c1": "1999"},
	})
	if code != http.StatusOK {
		t.Fatalf("delete = %d: %v", code, out)
	}
	if n, ok := out["deleted"].(float64); !ok || n < 0 {
		t.Fatalf("delete reported %v", out)
	}
}

// TestConcurrentTrafficUnderFaults hammers the server with concurrent
// queries while the executor failpoint fires transiently: every request
// terminates with 200 or a structured 500, nothing wedges, and the
// server serves cleanly afterwards. Run with -race in CI.
func TestConcurrentTrafficUnderFaults(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 4, QueueDepth: 64, QueueWait: 2 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	restore := faults.Enable(faults.SiteExec, 10, false)
	defer restore()

	const clients = 8
	const perClient = 10
	var wg sync.WaitGroup
	errs := make(chan string, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, b := postQuery(t, ts.URL, lookupQuery,
					map[string]string{"c1": fmt.Sprint(1990 + i%20)}, 0)
				switch resp.StatusCode {
				case http.StatusOK, http.StatusInternalServerError:
				default:
					errs <- fmt.Sprintf("client %d req %d: status %d body %s", c, i, resp.StatusCode, b)
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if s.inflight.Load() != 0 {
		t.Fatalf("inflight = %d after traffic, want 0", s.inflight.Load())
	}
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after hammering = %d: %s", resp.StatusCode, b)
	}
}

// TestStoreDirPersistsTenantsAcrossDrain closes the persistence loop
// at the serving layer: a drained server saves every tenant's store
// into StoreDir as a crash-consistent colfile snapshot, and a second
// server with the same StoreDir reopens the image at AddTenant —
// skipping the advise search — with the data intact.
func TestStoreDirPersistsTenantsAcrossDrain(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{StoreDir: dir})
	wantRows := s.TenantStore("imdb").TotalRows()
	if wantRows == 0 {
		t.Fatal("fixture loaded no rows")
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "imdb.store")); err != nil {
		t.Fatalf("drain left no tenant snapshot: %v", err)
	}

	s2, err := New(Config{StoreDir: dir, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.AddTenant(context.Background(), testTenantSpec("imdb")); err != nil {
		t.Fatalf("AddTenant on reboot: %v", err)
	}
	if got := s2.TenantStore("imdb").TotalRows(); got != wantRows {
		t.Fatalf("reopened tenant holds %d rows, want %d", got, wantRows)
	}
	// The reopened image serves queries over HTTP.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	resp, body := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1990"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query on reopened store: %d %s", resp.StatusCode, body)
	}
}

// TestStoreDirQuarantinesCorruptTenantSnapshot proves boot resilience:
// a corrupt tenant snapshot is quarantined and the tenant starts empty
// through the advise path instead of failing AddTenant.
func TestStoreDirQuarantinesCorruptTenantSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "imdb.store")
	if err := os.WriteFile(path, []byte("not a snapshot at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{StoreDir: dir, Logger: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddTenant(context.Background(), testTenantSpec("imdb")); err != nil {
		t.Fatalf("AddTenant with corrupt snapshot: %v", err)
	}
	if got := s.TenantStore("imdb").TotalRows(); got != 0 {
		t.Fatalf("tenant started with %d rows from a corrupt snapshot", got)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}
}
