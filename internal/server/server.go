// Package server is legodbd's resident serving layer: a fleet of
// per-tenant legodb.Engines and loaded Stores held in memory behind an
// HTTP/JSON API, sharing one cost-cache Registry. Robustness under
// concurrent traffic is the design center, in four layers:
//
//   - Admission control: a bounded-concurrency slot semaphore with a
//     small wait queue. A request that cannot get a slot within the
//     queue budget is shed with 429 + Retry-After instead of piling up,
//     and each tenant has its own in-flight cap so one hot tenant
//     cannot starve the rest.
//   - Deadlines: every data-plane request runs under a context deadline
//     plumbed down to the engine's executor loops, so a timed-out or
//     client-cancelled request stops consuming engine work mid-plan.
//   - Panic isolation: a recovered handler panic becomes a structured
//     500 and a log line; the server keeps serving.
//   - Graceful drain: BeginDrain stops admitting (503), in-flight
//     requests finish under the drain deadline, and the registry's cost
//     cache is snapshotted with the framed+CRC format. At boot a
//     corrupt snapshot is quarantined to path+".corrupt" and the server
//     starts cold instead of refusing to start.
//
// The admission state machine per request:
//
//	draining? ──yes──► 503
//	   │no
//	slot free? ──yes──► admitted
//	   │no
//	queue full? ──yes──► 429 (shed)
//	   │no
//	wait ≤ QueueWait ──slot──► admitted
//	   │timeout                  │
//	   ▼                         ▼
//	 429 (shed)        tenant over cap? ──yes──► 429 (shed)
//	                             │no
//	                             ▼
//	                      handler (deadline, panic guard)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"legodb"
	"legodb/internal/adapt"
	"legodb/internal/faults"
	"legodb/internal/xmltree"
)

// Config tunes the server; the zero value serves with the defaults
// noted per field.
type Config struct {
	// MaxInflight bounds concurrently admitted data-plane requests
	// (default 64).
	MaxInflight int
	// QueueDepth bounds requests waiting for a slot beyond MaxInflight
	// before shedding starts (0 = default 2×MaxInflight, negative = no
	// queue: saturation sheds immediately).
	QueueDepth int
	// QueueWait bounds how long a queued request waits for a slot before
	// it is shed (default 100ms).
	QueueWait time.Duration
	// RequestTimeout is the per-request execution deadline (default 5s).
	// A request may ask for less via timeout_ms, never for more.
	RequestTimeout time.Duration
	// DrainTimeout bounds the graceful drain: in-flight requests get
	// this long to finish after drain starts (default 10s).
	DrainTimeout time.Duration
	// PerTenantInflight caps one tenant's admitted requests (default
	// MaxInflight, i.e. no per-tenant throttling beyond the global cap).
	PerTenantInflight int
	// SnapshotPath persists the registry's cost cache: loaded leniently
	// at boot (missing = cold, corrupt = quarantined + cold), saved on
	// drain. Empty = no persistence.
	SnapshotPath string
	// StoreDir persists tenant stores as column-chunked snapshots
	// (<dir>/<tenant>.store): a tenant whose snapshot exists reopens it
	// instead of advising a fresh empty store (corrupt snapshots are
	// quarantined and the tenant starts empty), and every tenant's
	// store is saved on drain. Empty = stores live and die in memory.
	StoreDir string
	// AdviseIterations bounds the greedy search run when a tenant is
	// created with an advised configuration (default 3).
	AdviseIterations int
	// AdaptInterval enables the adaptation auto mode: every interval,
	// each tenant's controller checks observed-workload drift and — when
	// the hysteresis gates open and a cheaper configuration is found —
	// migrates the store live. 0 disables the loop; POST
	// /tenants/{t}/readvise triggers a check manually either way.
	AdaptInterval time.Duration
	// Adapt tunes the per-tenant adaptation controllers (drift
	// threshold, cost margin, search budget); the zero value uses the
	// adapt package defaults.
	Adapt adapt.Config
	// Logger receives structured serving logs (default: text to stderr).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 2 * c.MaxInflight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.PerTenantInflight <= 0 {
		c.PerTenantInflight = c.MaxInflight
	}
	if c.AdviseIterations <= 0 {
		c.AdviseIterations = 3
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	return c
}

// tenant is one resident engine+store pair with its adaptation
// controller.
type tenant struct {
	name     string
	eng      *legodb.Engine
	store    *legodb.Store
	ctrl     *adapt.Controller
	inflight atomic.Int64
	served   atomic.Int64
	shed     atomic.Int64
}

// Server holds the tenant fleet and the admission machinery. Create
// with New; serve via Handler (any http.Server or test harness) or Run
// (listener + signal-driven drain).
type Server struct {
	cfg Config
	log *slog.Logger
	reg *legodb.Registry

	// slots is the admission semaphore; holding a token = admitted.
	slots   chan struct{}
	waiting atomic.Int64

	// admitMu orders admission bookkeeping against drain: admitted
	// requests register with inflightWG under the read side, BeginDrain
	// flips draining under the write side, so after BeginDrain returns
	// every in-flight request is either in inflightWG or will bounce.
	admitMu  sync.RWMutex
	draining bool

	inflightWG sync.WaitGroup
	inflight   atomic.Int64

	served   atomic.Int64
	shed     atomic.Int64
	rejected atomic.Int64
	panics   atomic.Int64
	timeouts atomic.Int64

	tmu     sync.RWMutex
	tenants map[string]*tenant

	bootWarning string
	mux         *http.ServeMux
}

// New builds a server: a fresh cost-cache registry (warmed leniently
// from cfg.SnapshotPath when set — a corrupt snapshot is quarantined to
// path+".corrupt", logged, and the server boots cold) and the HTTP
// routes. No tenants exist yet; add them with AddTenant or POST
// /tenants.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		reg:     legodb.NewRegistry(),
		slots:   make(chan struct{}, cfg.MaxInflight),
		tenants: make(map[string]*tenant),
	}
	if cfg.StoreDir != "" {
		if err := os.MkdirAll(cfg.StoreDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: create store dir: %w", err)
		}
	}
	if cfg.SnapshotPath != "" {
		n, warning, err := s.reg.LoadSnapshotFile(cfg.SnapshotPath)
		if err != nil {
			return nil, fmt.Errorf("server: load snapshot: %w", err)
		}
		if warning != "" {
			s.bootWarning = warning
			s.log.Warn("cost-cache snapshot quarantined; starting cold", "warning", warning)
		} else if n > 0 {
			s.log.Info("cost-cache snapshot loaded", "entries", n, "path", cfg.SnapshotPath)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.guarded(s.handleHealthz))
	mux.HandleFunc("GET /stats", s.guarded(s.handleStats))
	mux.HandleFunc("POST /tenants", s.admitted(s.handleCreateTenant))
	mux.HandleFunc("POST /tenants/{tenant}/load", s.tenantFunc((*Server).handleLoad))
	mux.HandleFunc("POST /tenants/{tenant}/query", s.tenantFunc((*Server).handleQuery))
	mux.HandleFunc("POST /tenants/{tenant}/delete", s.tenantFunc((*Server).handleDelete))
	mux.HandleFunc("POST /tenants/{tenant}/insert", s.tenantFunc((*Server).handleInsert))
	mux.HandleFunc("POST /tenants/{tenant}/readvise", s.tenantFunc((*Server).handleReadvise))
	s.mux = mux
	return s, nil
}

// BootWarning reports the lenient-load warning from boot ("" when the
// snapshot was absent or loaded cleanly).
func (s *Server) BootWarning() string { return s.bootWarning }

// Registry exposes the fleet's shared cost-cache registry.
func (s *Server) Registry() *legodb.Registry { return s.reg }

// Handler returns the server's HTTP handler (admission, deadlines and
// panic isolation included), for mounting under any http.Server or
// httptest harness.
func (s *Server) Handler() http.Handler { return s.mux }

// TenantQuery is one weighted workload query of a TenantSpec.
type TenantQuery struct {
	Name   string  `json:"name"`
	Text   string  `json:"text"`
	Weight float64 `json:"weight"`
}

// TenantSpec describes a tenant to create: its schema (algebra
// notation), optional statistics, and how to choose the storage
// configuration — "advised" (the default) runs the cost-based search
// over Queries, "all-inlined"/"all-outlined" instantiate a fixed
// baseline without searching. Every config prices the workload, so at
// least one query is required.
type TenantSpec struct {
	Name      string        `json:"name"`
	Schema    string        `json:"schema"`
	Stats     string        `json:"stats,omitempty"`
	Config    string        `json:"config,omitempty"`
	Queries   []TenantQuery `json:"queries,omitempty"`
	Documents float64       `json:"documents,omitempty"`
}

// AddTenant creates a tenant: engine attached to the shared registry,
// configuration chosen per the spec, store opened empty.
func (s *Server) AddTenant(ctx context.Context, spec TenantSpec) error {
	if spec.Name == "" {
		return fmt.Errorf("server: tenant name must not be empty")
	}
	if len(spec.Queries) == 0 {
		// Both the advised search and the fixed baselines price a
		// workload; a spec without one cannot be costed.
		return fmt.Errorf("server: tenant %q: spec needs at least one workload query", spec.Name)
	}
	eng, err := s.reg.Engine(spec.Schema)
	if err != nil {
		return fmt.Errorf("server: tenant %q schema: %w", spec.Name, err)
	}
	if spec.Stats != "" {
		if err := eng.SetStatisticsText(spec.Stats); err != nil {
			return fmt.Errorf("server: tenant %q stats: %w", spec.Name, err)
		}
	}
	for _, q := range spec.Queries {
		w := q.Weight
		if w <= 0 {
			w = 1
		}
		if err := eng.AddQuery(q.Name, q.Text, w); err != nil {
			return fmt.Errorf("server: tenant %q query %q: %w", spec.Name, q.Name, err)
		}
	}
	config := spec.Config
	if config == "" {
		config = "advised"
	}
	switch config {
	case "advised", "all-inlined", "all-outlined":
	default:
		return fmt.Errorf("server: tenant %q: unknown config %q", spec.Name, spec.Config)
	}
	// A persisted store snapshot is authoritative: it carries the
	// configuration it was advised into, so reopening skips the search
	// entirely. A corrupt snapshot is quarantined by OpenStoreFile and
	// the tenant starts empty through the advise path.
	var store *legodb.Store
	if s.cfg.StoreDir != "" {
		path := s.tenantStorePath(spec.Name)
		st, err := legodb.OpenStoreFile(path)
		switch {
		case err == nil:
			store = st
			s.log.Info("tenant store reopened", "tenant", spec.Name,
				"path", path, "rows", st.TotalRows())
		case errors.Is(err, os.ErrNotExist):
			// Cold start: no snapshot yet.
		case errors.Is(err, legodb.ErrCorruptStoreSnapshot):
			s.log.Warn("tenant store snapshot quarantined; starting empty",
				"tenant", spec.Name, "error", err)
		default:
			return fmt.Errorf("server: tenant %q store: %w", spec.Name, err)
		}
	}
	if store == nil {
		var advice *legodb.Advice
		switch config {
		case "advised":
			advice, err = eng.AdviseContext(ctx, legodb.AdviseOptions{
				MaxIterations: s.cfg.AdviseIterations,
				Documents:     spec.Documents,
			})
		default:
			advice, err = eng.EvaluateFixed(config, legodb.AdviseOptions{Documents: spec.Documents})
		}
		if err != nil {
			return fmt.Errorf("server: tenant %q: %w", spec.Name, err)
		}
		store, err = advice.Open()
		if err != nil {
			return fmt.Errorf("server: tenant %q: %w", spec.Name, err)
		}
	}
	tn := &tenant{
		name:  spec.Name,
		eng:   eng,
		store: store,
		// The declared workload the configuration was just chosen for is
		// the controller's drift baseline.
		ctrl: adapt.New(eng, store, eng.Workload(), s.cfg.Adapt),
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if _, dup := s.tenants[spec.Name]; dup {
		return fmt.Errorf("server: tenant %q already exists", spec.Name)
	}
	s.tenants[spec.Name] = tn
	s.log.Info("tenant created", "tenant", spec.Name, "config", config,
		"tables", len(store.Tables()))
	return nil
}

// LoadDocument shreds a document into a tenant's store (the in-process
// twin of POST /tenants/{t}/load, used by bench and boot preloading).
func (s *Server) LoadDocument(name string, doc *xmltree.Node) error {
	tn := s.tenant(name)
	if tn == nil {
		return fmt.Errorf("server: unknown tenant %q", name)
	}
	return tn.store.Load(doc)
}

// TenantStore returns a tenant's store (nil when absent) for in-process
// harnesses.
func (s *Server) TenantStore(name string) *legodb.Store {
	if tn := s.tenant(name); tn != nil {
		return tn.store
	}
	return nil
}

func (s *Server) tenant(name string) *tenant {
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	return s.tenants[name]
}

// tenantStorePath is the snapshot path for one tenant's store.
func (s *Server) tenantStorePath(name string) string {
	return filepath.Join(s.cfg.StoreDir, name+".store")
}

// saveTenantStores snapshots every tenant's store into StoreDir. Each
// SaveFile is crash-consistent on its own, so a failure (or a crash)
// mid-fleet loses at most the tenants not yet saved — never a torn
// file. The first error is returned after every tenant was attempted.
func (s *Server) saveTenantStores() error {
	s.tmu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, tn := range s.tenants {
		tenants = append(tenants, tn)
	}
	s.tmu.RUnlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	var firstErr error
	for _, tn := range tenants {
		path := s.tenantStorePath(tn.name)
		if err := tn.store.SaveFile(path); err != nil {
			s.log.Error("tenant store save failed", "tenant", tn.name, "error", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("server: save tenant %q store: %w", tn.name, err)
			}
			continue
		}
		s.log.Info("tenant store saved", "tenant", tn.name, "path", path)
	}
	return firstErr
}

// ---- admission ----

func (s *Server) isDraining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// guarded wraps a handler with panic isolation: a panic becomes a
// structured 500 and the server keeps serving.
func (s *Server) guarded(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.panics.Add(1)
				s.log.Error("request panic recovered", "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				writeJSON(w, http.StatusInternalServerError,
					errBody{Error: fmt.Sprintf("internal error: %v", p)})
			}
		}()
		h(w, r)
	}
}

// admitted wraps a data-plane handler with the admission state machine
// and the SiteServe failpoint (which fires admitted — inside the slot
// and the drain gate — so gated-hook tests hold a genuinely in-flight
// request).
func (s *Server) admitted(h http.HandlerFunc) http.HandlerFunc {
	return s.guarded(func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admit(w, r)
		if !ok {
			return
		}
		defer release()
		if err := faults.Inject(faults.SiteServe); err != nil {
			writeJSON(w, http.StatusInternalServerError, errBody{Error: err.Error()})
			return
		}
		h(w, r)
	})
}

// admit runs the admission state machine. On success it returns a
// release func and true; otherwise it has already written the 503/429
// response (or the client vanished) and returns false.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if s.isDraining() {
		s.bounceDraining(w)
		return nil, false
	}
	select {
	case s.slots <- struct{}{}:
	default:
		// Saturated: wait in the bounded queue, or shed. The waiter count
		// check is advisory (racy by a request or two under a thundering
		// herd), which is fine — the queue bound is a shedding heuristic,
		// not a resource limit; the slot semaphore is the hard cap.
		if s.cfg.QueueDepth < 0 || s.waiting.Load() >= int64(s.cfg.QueueDepth) {
			s.shedReq(w, nil)
			return nil, false
		}
		s.waiting.Add(1)
		t := time.NewTimer(s.cfg.QueueWait)
		select {
		case s.slots <- struct{}{}:
			s.waiting.Add(-1)
			t.Stop()
		case <-t.C:
			s.waiting.Add(-1)
			s.shedReq(w, nil)
			return nil, false
		case <-r.Context().Done():
			s.waiting.Add(-1)
			t.Stop()
			return nil, false
		}
	}
	// Slot held: register with the drain gate. A drain that began while
	// we queued bounces the request; one that begins after this point
	// waits for it.
	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		<-s.slots
		s.bounceDraining(w)
		return nil, false
	}
	s.inflightWG.Add(1)
	s.admitMu.RUnlock()
	s.inflight.Add(1)
	return func() {
		<-s.slots
		s.inflight.Add(-1)
		s.inflightWG.Done()
	}, true
}

func (s *Server) bounceDraining(w http.ResponseWriter) {
	s.rejected.Add(1)
	writeJSON(w, http.StatusServiceUnavailable, errBody{Error: "draining"})
}

// shedRetryAfterMax bounds the jittered Retry-After hint (seconds).
const shedRetryAfterMax = 3

func (s *Server) shedReq(w http.ResponseWriter, tn *tenant) {
	s.shed.Add(1)
	if tn != nil {
		tn.shed.Add(1)
	}
	// Jitter the retry hint across [1, shedRetryAfterMax] so the clients
	// shed at a saturation spike do not all stampede back in the same
	// second and re-create the spike they were shed from.
	w.Header().Set("Retry-After", strconv.Itoa(1+rand.Intn(shedRetryAfterMax)))
	writeJSON(w, http.StatusTooManyRequests, errBody{Error: "overloaded; retry with backoff"})
}

// tenantFunc is admitted plus tenant resolution and the per-tenant
// in-flight cap.
func (s *Server) tenantFunc(h func(*Server, http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return s.admitted(func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		tn := s.tenant(name)
		if tn == nil {
			writeJSON(w, http.StatusNotFound, errBody{Error: fmt.Sprintf("unknown tenant %q", name)})
			return
		}
		if tn.inflight.Add(1) > int64(s.cfg.PerTenantInflight) {
			tn.inflight.Add(-1)
			s.shedReq(w, tn)
			return
		}
		defer tn.inflight.Add(-1)
		h(s, w, r, tn)
	})
}

// ---- handlers ----

type errBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// maxBodyBytes bounds request bodies (schemas, documents, queries) so a
// hostile payload cannot balloon memory before parsing rejects it.
const maxBodyBytes = 8 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	s.tmu.RLock()
	ready := true
	for _, tn := range s.tenants {
		if !tn.eng.Ready() {
			ready = false
			break
		}
	}
	n := len(s.tenants)
	s.tmu.RUnlock()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "tenant not ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "tenants": n})
}

// TenantStats is one tenant's slice of the /stats payload.
type TenantStats struct {
	Ready    bool              `json:"ready"`
	Inflight int64             `json:"inflight"`
	Served   int64             `json:"served"`
	Shed     int64             `json:"shed"`
	Tables   int               `json:"tables"`
	Rows     int               `json:"rows"`
	Cache    legodb.CacheStats `json:"cache"`
	// Adaptation-loop counters: drift checks run, background
	// re-advises, live migrations completed, and the last drift score.
	DriftChecks uint64  `json:"drift_checks"`
	ReAdvises   uint64  `json:"readvises"`
	Migrations  uint64  `json:"migrations"`
	LastDrift   float64 `json:"last_drift"`
}

// Stats is the /stats payload: serving counters, the fleet registry's
// cost-cache counters, and per-tenant health.
type Stats struct {
	Draining    bool                   `json:"draining"`
	Inflight    int64                  `json:"inflight"`
	Waiting     int64                  `json:"waiting"`
	Served      int64                  `json:"served"`
	Shed        int64                  `json:"shed"`
	Rejected    int64                  `json:"rejected"`
	Panics      int64                  `json:"panics"`
	Timeouts    int64                  `json:"timeouts"`
	BootWarning string                 `json:"boot_warning,omitempty"`
	Registry    legodb.RegistryStats   `json:"registry"`
	Tenants     map[string]TenantStats `json:"tenants"`
}

// StatsSnapshot assembles the /stats payload (also used in-process by
// tests and the load generator).
func (s *Server) StatsSnapshot() Stats {
	st := Stats{
		Draining:    s.isDraining(),
		Inflight:    s.inflight.Load(),
		Waiting:     s.waiting.Load(),
		Served:      s.served.Load(),
		Shed:        s.shed.Load(),
		Rejected:    s.rejected.Load(),
		Panics:      s.panics.Load(),
		Timeouts:    s.timeouts.Load(),
		BootWarning: s.bootWarning,
		Registry:    s.reg.Stats(),
		Tenants:     make(map[string]TenantStats),
	}
	s.tmu.RLock()
	defer s.tmu.RUnlock()
	for name, tn := range s.tenants {
		ad := tn.ctrl.Stats()
		st.Tenants[name] = TenantStats{
			Ready:       tn.eng.Ready(),
			Inflight:    tn.inflight.Load(),
			Served:      tn.served.Load(),
			Shed:        tn.shed.Load(),
			Tables:      len(tn.store.Tables()),
			Rows:        tn.store.TotalRows(),
			Cache:       tn.eng.CacheStats(),
			DriftChecks: ad.Checks,
			ReAdvises:   ad.ReAdvises,
			Migrations:  ad.Migrations,
			LastDrift:   ad.LastDrift,
		}
	}
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

func (s *Server) handleCreateTenant(w http.ResponseWriter, r *http.Request) {
	var spec TenantSpec
	if !decodeJSON(w, r, &spec) {
		return
	}
	if err := s.AddTenant(r.Context(), spec); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, errBody{Error: err.Error()})
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusCreated, map[string]any{"created": spec.Name})
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request, tn *tenant) {
	if err := tn.store.LoadXML(io.LimitReader(r.Body, maxBodyBytes)); err != nil {
		writeJSON(w, statusForError(err), errBody{Error: err.Error()})
		return
	}
	tn.served.Add(1)
	s.served.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"rows": tn.store.TotalRows()})
}

// queryRequest is the /query body. TimeoutMs may shorten (never extend)
// the server's per-request deadline.
type queryRequest struct {
	Query     string            `json:"query"`
	Params    map[string]string `json:"params,omitempty"`
	TimeoutMs int               `json:"timeout_ms,omitempty"`
}

type queryResponse struct {
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	ElapsedMs float64    `json:"elapsed_ms"`
}

func (s *Server) requestDeadline(ms int) time.Duration {
	d := s.cfg.RequestTimeout
	if ms > 0 {
		if req := time.Duration(ms) * time.Millisecond; req < d {
			d = req
		}
	}
	return d
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, tn *tenant) {
	var req queryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// Parse/translate errors are the client's fault and are not worth an
	// executor dispatch; split them from execution failures.
	pq, err := tn.store.Prepare(req.Query)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errBody{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.requestDeadline(req.TimeoutMs))
	defer cancel()
	start := time.Now()
	res, err := pq.RunContext(ctx, legodb.Params(req.Params))
	if err != nil {
		s.writeExecError(w, r, err)
		return
	}
	tn.served.Add(1)
	s.served.Add(1)
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:   res.Columns,
		Rows:      res.Rows,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

type mutateRequest struct {
	Query     string            `json:"query"`
	Params    map[string]string `json:"params,omitempty"`
	Fragment  string            `json:"fragment,omitempty"`
	TimeoutMs int               `json:"timeout_ms,omitempty"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request, tn *tenant) {
	var req mutateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	n, err := tn.store.DeleteWhere(req.Query, legodb.Params(req.Params))
	if err != nil {
		s.writeExecError(w, r, err)
		return
	}
	tn.served.Add(1)
	s.served.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"deleted": n})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request, tn *tenant) {
	var req mutateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	n, err := tn.store.InsertChild(req.Query, legodb.Params(req.Params), req.Fragment)
	if err != nil {
		s.writeExecError(w, r, err)
		return
	}
	tn.served.Add(1)
	s.served.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"inserted": n})
}

// readviseRequest is the /readvise body (optional). Force defaults to
// true — a manual trigger means "check now", bypassing the
// observation-count and drift gates (the cost margin still applies:
// nothing migrates unless the re-advised configuration actually wins).
type readviseRequest struct {
	Force *bool `json:"force,omitempty"`
}

// readviseResponse mirrors adapt.Decision over the wire.
type readviseResponse struct {
	Drift        float64 `json:"drift"`
	Observations uint64  `json:"observations"`
	ReAdvised    bool    `json:"readvised"`
	Migrated     bool    `json:"migrated"`
	CurrentCost  float64 `json:"current_cost,omitempty"`
	NewCost      float64 `json:"new_cost,omitempty"`
	Reason       string  `json:"reason"`
	CutoverMs    float64 `json:"cutover_ms,omitempty"`
	Groups       int     `json:"groups,omitempty"`
	Restarts     int     `json:"restarts,omitempty"`
}

func (s *Server) handleReadvise(w http.ResponseWriter, r *http.Request, tn *tenant) {
	req := readviseRequest{}
	if r.ContentLength > 0 && !decodeJSON(w, r, &req) {
		return
	}
	force := true
	if req.Force != nil {
		force = *req.Force
	}
	// The check runs under the client's context (not the data-plane
	// deadline): the background search budget is the adapt config's,
	// and a dropped client cancels it.
	dec, err := tn.ctrl.Check(r.Context(), force)
	if err != nil {
		s.writeExecError(w, r, err)
		return
	}
	tn.served.Add(1)
	s.served.Add(1)
	resp := readviseResponse{
		Drift:        dec.Drift,
		Observations: dec.Observations,
		ReAdvised:    dec.ReAdvised,
		Migrated:     dec.Migrated,
		CurrentCost:  dec.CurrentCost,
		NewCost:      dec.NewCost,
		Reason:       dec.Reason,
	}
	if dec.Migration != nil {
		resp.CutoverMs = float64(dec.Migration.Cutover.Microseconds()) / 1000
		resp.Groups = dec.Migration.Groups
		resp.Restarts = dec.Migration.Restarts
	}
	if dec.Migrated {
		s.log.Info("tenant migrated", "tenant", tn.name, "drift", dec.Drift,
			"current_cost", dec.CurrentCost, "new_cost", dec.NewCost,
			"cutover", dec.Migration.Cutover)
	}
	writeJSON(w, http.StatusOK, resp)
}

// AdaptTick runs one adaptation check for every tenant (the auto-mode
// loop body, exported so tests and harnesses can drive it
// deterministically). Checks run with force=false: the hysteresis gates
// decide. Errors are logged, never fatal — a failed or aborted check
// leaves the tenant serving its current image.
func (s *Server) AdaptTick(ctx context.Context) {
	s.tmu.RLock()
	tenants := make([]*tenant, 0, len(s.tenants))
	for _, tn := range s.tenants {
		tenants = append(tenants, tn)
	}
	s.tmu.RUnlock()
	for _, tn := range tenants {
		dec, err := tn.ctrl.Check(ctx, false)
		if err != nil {
			s.log.Error("adapt check failed", "tenant", tn.name, "error", err)
			continue
		}
		if dec.Migrated {
			s.log.Info("tenant migrated", "tenant", tn.name, "drift", dec.Drift,
				"current_cost", dec.CurrentCost, "new_cost", dec.NewCost,
				"cutover", dec.Migration.Cutover)
		}
	}
}

// adaptLoop ticks AdaptTick every AdaptInterval until ctx is cancelled.
func (s *Server) adaptLoop(ctx context.Context) {
	t := time.NewTicker(s.cfg.AdaptInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if s.isDraining() {
				return
			}
			s.AdaptTick(ctx)
		}
	}
}

// writeExecError maps an execution failure to a structured response:
// deadline → 504 (counted), client cancellation → log only (the
// connection is gone), anything else → 500 with the error text.
func (s *Server) writeExecError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, errBody{Error: "deadline exceeded"})
	case errors.Is(err, context.Canceled):
		s.log.Debug("request cancelled by client", "path", r.URL.Path)
	default:
		writeJSON(w, statusForError(err), errBody{Error: err.Error()})
	}
}

// statusForError distinguishes injected/engine faults (500) from
// validation failures (400). Engine errors carry the "engine:" prefix
// or wrap the failpoint sentinel; everything else came from parsing or
// schema validation of caller input.
func statusForError(err error) int {
	if errors.Is(err, faults.ErrInjected) {
		return http.StatusInternalServerError
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// ---- drain ----

// ErrDrainForced reports a drain that hit its deadline with requests
// still in flight; callers (legodbd) exit non-zero on it so operators
// can tell a forced stop from a clean one.
var ErrDrainForced = errors.New("drain deadline exceeded")

// BeginDrain flips the server into draining: no new requests are
// admitted (503), /healthz reports draining. Idempotent.
func (s *Server) BeginDrain() {
	s.admitMu.Lock()
	was := s.draining
	s.draining = true
	s.admitMu.Unlock()
	if !was {
		s.log.Info("drain started", "inflight", s.inflight.Load())
	}
}

// Drain performs the graceful shutdown: stop admitting, wait for
// in-flight requests under the drain deadline, then snapshot the
// registry's cost cache (even after a forced drain — a partial fleet's
// cache is still worth warming the next boot with). It returns nil on a
// clean drain; a non-nil error means the deadline forced it or the
// snapshot failed.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.inflightWG.Wait()
		close(done)
	}()
	t := time.NewTimer(s.cfg.DrainTimeout)
	defer t.Stop()
	var drainErr error
	select {
	case <-done:
		s.log.Info("drain complete")
	case <-t.C:
		drainErr = fmt.Errorf("server: %w: %s with %d requests in flight",
			ErrDrainForced, s.cfg.DrainTimeout, s.inflight.Load())
		s.log.Error("drain forced", "inflight", s.inflight.Load())
	case <-ctx.Done():
		drainErr = fmt.Errorf("server: drain cancelled: %w", ctx.Err())
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.reg.SaveSnapshotFile(s.cfg.SnapshotPath); err != nil {
			err = fmt.Errorf("server: save snapshot: %w", err)
			s.log.Error("snapshot save failed", "error", err)
			if drainErr == nil {
				drainErr = err
			}
		} else {
			s.log.Info("cost-cache snapshot saved", "path", s.cfg.SnapshotPath)
		}
	}
	if s.cfg.StoreDir != "" {
		if err := s.saveTenantStores(); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}

// Run serves on ln until ctx is cancelled (typically by SIGTERM via
// signal.NotifyContext), then drains gracefully: stop admitting, finish
// in-flight requests under the drain deadline, snapshot, close the
// listener. It returns nil on a clean drain.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	if s.cfg.AdaptInterval > 0 {
		go s.adaptLoop(ctx)
	}
	select {
	case err := <-serveErr:
		return fmt.Errorf("server: serve: %w", err)
	case <-ctx.Done():
	}
	s.log.Info("shutdown requested; draining", "inflight", s.inflight.Load())
	drainErr := s.Drain(context.Background())
	shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil && drainErr == nil {
		drainErr = fmt.Errorf("server: shutdown: %w", err)
	}
	<-serveErr // http.ErrServerClosed from the Serve goroutine
	return drainErr
}
