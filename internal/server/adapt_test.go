package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"legodb/internal/faults"
	"legodb/internal/imdb"
)

// driftedServer builds a server whose "imdb" tenant serves under the
// all-outlined baseline (declared workload: whole-element publish) and
// then pushes lookup traffic through the query endpoint — maximal
// drift, and a configuration the re-advisor will certainly beat.
func driftedServer(t *testing.T, cfg Config, lookups int) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := TenantSpec{
		Name:   "imdb",
		Schema: imdb.SchemaText,
		Stats:  imdb.StatsText,
		Config: "all-outlined",
		Queries: []TenantQuery{
			{Name: "publish", Text: `FOR $v IN imdb/show RETURN $v`, Weight: 1},
		},
	}
	if err := s.AddTenant(context.Background(), spec); err != nil {
		t.Fatalf("AddTenant: %v", err)
	}
	if err := s.LoadDocument("imdb", imdb.Generate(imdb.GenOptions{Shows: 30, Seed: 7})); err != nil {
		t.Fatalf("LoadDocument: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < lookups; i++ {
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": fmt.Sprint(1990 + i%20)}, 0)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("lookup %d = %d: %s", i, resp.StatusCode, b)
		}
	}
	return s, ts
}

func postReadvise(t *testing.T, base string, body string) (int, readviseResponse) {
	t.Helper()
	resp, err := http.Post(base+"/tenants/imdb/readvise", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST readvise: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var out readviseResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("readvise response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, out
}

// TestReadviseEndpointMigrates drives the whole loop over HTTP: drifted
// traffic, then a manual /readvise that must re-advise, migrate live,
// and report the new configuration in /stats.
func TestReadviseEndpointMigrates(t *testing.T) {
	s, ts := driftedServer(t, Config{}, 40)

	code, dec := postReadvise(t, ts.URL, `{}`)
	if code != http.StatusOK {
		t.Fatalf("readvise = %d", code)
	}
	if !dec.ReAdvised || !dec.Migrated {
		t.Fatalf("manual readvise did not migrate: %+v", dec)
	}
	if dec.Drift != 1 {
		t.Errorf("disjoint traffic drift = %v, want 1", dec.Drift)
	}
	if dec.NewCost >= dec.CurrentCost {
		t.Errorf("migrated without a cost win: %v -> %v", dec.CurrentCost, dec.NewCost)
	}
	if dec.Groups == 0 {
		t.Errorf("no migration report: %+v", dec)
	}

	// The migrated tenant keeps serving.
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1995"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after migration = %d: %s", resp.StatusCode, b)
	}

	st := s.StatsSnapshot().Tenants["imdb"]
	if st.DriftChecks != 1 || st.ReAdvises != 1 || st.Migrations != 1 {
		t.Errorf("adaptation counters: %+v", st)
	}
	if st.LastDrift != 1 {
		t.Errorf("last_drift = %v", st.LastDrift)
	}
}

// TestReadviseRespectsGatesWithoutForce: force=false runs the hysteresis
// gates — with traffic below MinObservations nothing happens.
func TestReadviseRespectsGatesWithoutForce(t *testing.T) {
	_, ts := driftedServer(t, Config{}, 5)
	code, dec := postReadvise(t, ts.URL, `{"force": false}`)
	if code != http.StatusOK {
		t.Fatalf("readvise = %d", code)
	}
	if dec.ReAdvised || dec.Migrated {
		t.Fatalf("gated readvise acted: %+v", dec)
	}
	if dec.Reason != "too few observations" {
		t.Errorf("reason = %q", dec.Reason)
	}
}

// TestReadviseSurvivesInjectedMigrationFault: the endpoint surfaces the
// abort as an execution error and the tenant keeps serving the old
// configuration.
func TestReadviseSurvivesInjectedMigrationFault(t *testing.T) {
	s, ts := driftedServer(t, Config{}, 40)
	defer faults.Enable(faults.SiteMigrate, 1, false)()

	code, _ := postReadvise(t, ts.URL, `{}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("readvise with injected fault = %d, want 500", code)
	}
	if st := s.StatsSnapshot().Tenants["imdb"]; st.Migrations != 0 {
		t.Errorf("aborted migration counted: %+v", st)
	}
	resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1995"}, 0)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after aborted migration = %d: %s", resp.StatusCode, b)
	}
	// The fault is spent; the retry completes.
	code, dec := postReadvise(t, ts.URL, `{}`)
	if code != http.StatusOK || !dec.Migrated {
		t.Fatalf("retry readvise = %d, %+v", code, dec)
	}
}

// TestAdaptTickMigratesDriftedTenant drives the auto-mode loop body
// directly: one tick over a drifted tenant must migrate it under the
// default gates, and a second tick must be quiet.
func TestAdaptTickMigratesDriftedTenant(t *testing.T) {
	s, _ := driftedServer(t, Config{}, 40)

	s.AdaptTick(context.Background())
	st := s.StatsSnapshot().Tenants["imdb"]
	if st.Migrations != 1 {
		t.Fatalf("tick did not migrate: %+v", st)
	}
	s.AdaptTick(context.Background())
	st = s.StatsSnapshot().Tenants["imdb"]
	if st.Migrations != 1 || st.DriftChecks != 2 {
		t.Errorf("second tick churned: %+v", st)
	}
}

// TestShedRetryAfterJitter saturates the server and samples shed
// responses: every Retry-After hint must be an integer in [1, 3], and
// across enough samples more than one value must appear — synchronized
// client retry stampedes are the failure mode being prevented.
func TestShedRetryAfterJitter(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	entered := make(chan struct{})
	restore := faults.EnableHook(faults.SiteServe, 1, func() {
		close(entered)
		<-gate
	})
	defer restore()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
	}()
	<-entered

	seen := map[int]bool{}
	for i := 0; i < 24; i++ {
		resp, b := postQuery(t, ts.URL, lookupQuery, map[string]string{"c1": "1999"}, 0)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("saturated query %d = %d: %s", i, resp.StatusCode, b)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
		}
		if ra < 1 || ra > 3 {
			t.Fatalf("Retry-After = %d, want [1, 3]", ra)
		}
		seen[ra] = true
	}
	if len(seen) < 2 {
		t.Errorf("24 shed responses all carried the same hint %v — no jitter", seen)
	}
	close(gate)
	wg.Wait()
}
