package xquery

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse parses a FLWR query in the package's concrete syntax.
func Parse(src string) (*Query, error) {
	p := &qparser{src: src}
	p.skipSpace()
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errorf("trailing input %q", p.rest(20))
	}
	return q, nil
}

// MustParse is Parse that panics on error; for embedded workloads.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type qparser struct {
	src string
	pos int
}

func (p *qparser) errorf(format string, args ...any) error {
	return fmt.Errorf("xquery: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *qparser) rest(n int) string {
	r := p.src[p.pos:]
	if len(r) > n {
		r = r[:n]
	}
	return r
}

func (p *qparser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		// XQuery comments (: ... :).
		if strings.HasPrefix(p.src[p.pos:], "(:") {
			if end := strings.Index(p.src[p.pos:], ":)"); end >= 0 {
				p.pos += end + 2
				continue
			}
		}
		break
	}
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive), without consuming it.
func (p *qparser) peekKeyword(kw string) bool {
	p.skipSpace()
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	after := p.pos + len(kw)
	if after < len(p.src) && isWordByte(p.src[after]) {
		return false
	}
	return true
}

func (p *qparser) keyword(kw string) bool {
	if !p.peekKeyword(kw) {
		return false
	}
	p.pos += len(kw)
	return true
}

func isWordByte(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *qparser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	// Identifiers must not start with a digit: a digits-only name is
	// indistinguishable from an integer literal once printed, so it
	// could not survive a print/re-parse round trip.
	if p.pos < len(p.src) && isWordByte(p.src[p.pos]) && !unicode.IsDigit(rune(p.src[p.pos])) {
		p.pos++
		for p.pos < len(p.src) && isWordByte(p.src[p.pos]) {
			p.pos++
		}
	}
	if p.pos == start {
		return "", p.errorf("expected identifier, got %q", p.rest(10))
	}
	return p.src[start:p.pos], nil
}

func (p *qparser) expect(lit string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], lit) {
		return p.errorf("expected %q, got %q", lit, p.rest(10))
	}
	p.pos += len(lit)
	return nil
}

func (p *qparser) parseQuery() (*Query, error) {
	q := &Query{}
	if !p.keyword("FOR") {
		return nil, p.errorf("expected FOR, got %q", p.rest(10))
	}
	for {
		b, err := p.parseBinding()
		if err != nil {
			return nil, err
		}
		q.Bindings = append(q.Bindings, b)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			// Allow an optional FOR repeat before the next binding.
			p.keyword("FOR")
			continue
		}
		if p.peekKeyword("FOR") { // "FOR $a..., FOR $b..." or newline style
			p.keyword("FOR")
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		for {
			c, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if !p.keyword("RETURN") {
		return nil, p.errorf("expected RETURN, got %q", p.rest(10))
	}
	items, err := p.parseItems("")
	if err != nil {
		return nil, err
	}
	q.Return = items
	return q, nil
}

func (p *qparser) parseBinding() (Binding, error) {
	p.skipSpace()
	if err := p.expect("$"); err != nil {
		return Binding{}, err
	}
	name, err := p.ident()
	if err != nil {
		return Binding{}, err
	}
	if !p.keyword("IN") {
		return Binding{}, p.errorf("expected IN after $%s", name)
	}
	path, err := p.parsePath()
	if err != nil {
		return Binding{}, err
	}
	return Binding{Var: name, Path: path}, nil
}

func (p *qparser) parsePath() (Path, error) {
	p.skipSpace()
	var path Path
	switch {
	case p.pos < len(p.src) && p.src[p.pos] == '$':
		p.pos++
		v, err := p.ident()
		if err != nil {
			return Path{}, err
		}
		path.Var = v
	case p.keyword("document"):
		if err := p.expect("("); err != nil {
			return Path{}, err
		}
		for p.pos < len(p.src) && p.src[p.pos] != ')' {
			p.pos++
		}
		if err := p.expect(")"); err != nil {
			return Path{}, err
		}
	case p.keyword("doc"):
		// bare "doc" root marker
	default:
		// document-rooted path starting directly with a step or '/'
	}
	for {
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != '/' {
			break
		}
		p.pos++
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == '@' {
			p.pos++
			step, err := p.ident()
			if err != nil {
				return Path{}, err
			}
			path.Steps = append(path.Steps, "@"+step)
			continue
		}
		step, err := p.ident()
		if err != nil {
			return Path{}, err
		}
		path.Steps = append(path.Steps, step)
	}
	if path.Var == "" && len(path.Steps) == 0 {
		// A document-rooted path may begin with its first step directly
		// (e.g. "imdb/show" without a leading document(...)).
		step, err := p.ident()
		if err != nil {
			return Path{}, p.errorf("expected path")
		}
		path.Steps = append(path.Steps, step)
		for {
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '/' {
				break
			}
			p.pos++
			next, err := p.ident()
			if err != nil {
				return Path{}, err
			}
			path.Steps = append(path.Steps, next)
		}
	}
	return path, nil
}

func (p *qparser) parseComparison() (Comparison, error) {
	left, err := p.parsePath()
	if err != nil {
		return Comparison{}, err
	}
	if left.Var == "" {
		return Comparison{}, p.errorf("comparison left side must be a variable path")
	}
	p.skipSpace()
	var op string
	for _, candidate := range []string{"!=", "<=", ">=", "<>", "=", "<", ">"} {
		if strings.HasPrefix(p.src[p.pos:], candidate) {
			op = candidate
			p.pos += len(candidate)
			break
		}
	}
	if op == "" {
		return Comparison{}, p.errorf("expected comparison operator, got %q", p.rest(10))
	}
	if op == "<>" {
		op = "!="
	}
	right, err := p.parseOperand()
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{Left: left, Op: op, Right: right}, nil
}

func (p *qparser) parseOperand() (Operand, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Operand{}, p.errorf("expected operand")
	}
	c := p.src[p.pos]
	switch {
	case c == '$':
		path, err := p.parsePath()
		if err != nil {
			return Operand{}, err
		}
		if len(path.Steps) == 0 {
			// A bare $c is an unbound parameter, as in the paper's Q4.
			return Operand{Param: path.Var}, nil
		}
		return Operand{Path: &path}, nil
	case c == '\'' || c == '"':
		quote := c
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != quote {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return Operand{}, p.errorf("unterminated string")
		}
		s := p.src[start:p.pos]
		p.pos++
		return Operand{Str: s}, nil
	case c == '-' || (c >= '0' && c <= '9'):
		start := p.pos
		p.pos++
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return Operand{}, p.errorf("bad number %q", p.src[start:p.pos])
		}
		return Operand{IsInt: true, Int: n}, nil
	default:
		// Bare identifier: an unbound parameter (c1, c2, ...).
		name, err := p.ident()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Param: name}, nil
	}
}

// parseItems parses a comma-separated RETURN item list, stopping at the
// closing tag of the enclosing constructor (closeTag non-empty) or at end
// of input.
func (p *qparser) parseItems(closeTag string) ([]ReturnItem, error) {
	var items []ReturnItem
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			if closeTag != "" {
				return nil, p.errorf("missing </%s>", closeTag)
			}
			return items, nil
		}
		if closeTag != "" && strings.HasPrefix(p.src[p.pos:], "</") {
			if err := p.expect("</" + closeTag + ">"); err != nil {
				return nil, err
			}
			return items, nil
		}
		switch {
		case p.src[p.pos] == '<' && p.pos+1 < len(p.src) && isWordByte(p.src[p.pos+1]):
			p.pos++
			tag, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expect(">"); err != nil {
				return nil, err
			}
			inner, err := p.parseItems(tag)
			if err != nil {
				return nil, err
			}
			items = append(items, ReturnItem{Element: &ElementConstructor{Tag: tag, Items: inner}})
		case p.peekKeyword("FOR"):
			nested, err := p.parseNested(closeTag)
			if err != nil {
				return nil, err
			}
			items = append(items, ReturnItem{Nested: nested})
			// A nested query consumes the rest of the group; continue the
			// loop to pick up the closing tag or end of input.
		case p.src[p.pos] == '$':
			path, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			items = append(items, ReturnItem{Path: &path})
		default:
			return nil, p.errorf("unexpected return item %q", p.rest(10))
		}
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
	}
}

// parseNested parses a nested FLWR expression inside a RETURN group. The
// nested RETURN's items extend to the group's closing tag (or end of
// input), matching the paper's layout.
func (p *qparser) parseNested(closeTag string) (*Query, error) {
	q := &Query{}
	if !p.keyword("FOR") {
		return nil, p.errorf("expected FOR")
	}
	for {
		b, err := p.parseBinding()
		if err != nil {
			return nil, err
		}
		q.Bindings = append(q.Bindings, b)
		p.skipSpace()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	if p.keyword("WHERE") {
		for {
			c, err := p.parseComparison()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, c)
			if !p.keyword("AND") {
				break
			}
		}
	}
	if !p.keyword("RETURN") {
		return nil, p.errorf("expected RETURN in nested query")
	}
	items, err := p.parseItems(closeTag)
	if err != nil {
		return nil, err
	}
	q.Return = items
	// parseItems consumed the enclosing close tag; signal the caller by
	// rewinding? Instead the caller treats the nested query as the last
	// item of its group — re-emit the close tag for the caller.
	if closeTag != "" {
		p.pos -= len(closeTag) + 3 // restore "</tag>" for the caller
	}
	return q, nil
}
