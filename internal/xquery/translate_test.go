package xquery

import (
	"fmt"
	"strings"
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/transform"
	"legodb/internal/xschema"
)

// fixture builds a p-schema and its catalog from algebra notation.
func fixture(t *testing.T, src string) (*xschema.Schema, *relational.Catalog) {
	t.Helper()
	s := xschema.MustParseSchema(src)
	if err := pschema.Check(s); err != nil {
		t.Fatalf("fixture not physical: %v", err)
	}
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	return s, cat
}

const imdbFixture = `
type IMDB = imdb[ Show{0,*}<#1000> ]
type Show = show [ @type[ String<#8,#2> ],
    title[ String<#50,#1000> ],
    year[ Integer<#4,#1800,#2100,#300> ],
    Aka{1,10}<#3>,
    Review*<#2>,
    ( Movie | TV ) ]
type Aka = aka[ String<#40,#900> ]
type Review = review[ ~[ String<#800,#500> ] ]
type Movie = box_office[ Integer ], video_sales[ Integer ]
type TV = seasons[ Integer ], description[ String<#120,#300> ], Episode*<#9>
type Episode = episode[ name[ String<#40,#800> ], guest_director[ String<#40,#200> ] ]
`

func translate(t *testing.T, src, query string) *sqlast.Query {
	t.Helper()
	s, cat := fixture(t, imdbFixture)
	_ = src
	q := MustParse(query)
	out, err := Translate(q, s, cat)
	if err != nil {
		t.Fatalf("Translate: %v\nquery: %s", err, query)
	}
	return out
}

func TestTranslateSimpleLookup(t *testing.T) {
	out := translate(t, imdbFixture, `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`)
	if len(out.Blocks) != 1 {
		t.Fatalf("blocks = %d\n%s", len(out.Blocks), out.SQL())
	}
	b := out.Blocks[0]
	if len(b.Tables) != 2 { // IMDB + Show
		t.Fatalf("tables = %+v", b.Tables)
	}
	if len(b.Filters) != 1 || b.Filters[0].Col.Column != "title" {
		t.Fatalf("filters = %+v", b.Filters)
	}
	if len(b.Projects) != 2 {
		t.Fatalf("projects = %+v", b.Projects)
	}
}

func TestTranslateOutlinedStepAddsJoin(t *testing.T) {
	out := translate(t, imdbFixture, `FOR $v IN imdb/show, $a IN $v/aka RETURN $a`)
	if len(out.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(out.Blocks))
	}
	b := out.Blocks[0]
	// IMDB -> Show -> Aka: two joins.
	if len(b.Joins) != 2 {
		t.Fatalf("joins = %+v", b.Joins)
	}
	sql := b.SQL()
	if !strings.Contains(sql, "parent_Show") {
		t.Fatalf("missing FK join:\n%s", sql)
	}
}

func TestTranslateUnionExpansion(t *testing.T) {
	// After union distribution, a query over show expands into one block
	// per partition.
	s := xschema.MustParseSchema(imdbFixture)
	cands := transform.Candidates(s, transform.Options{Kinds: []transform.Kind{transform.KindUnionDistribute}})
	if len(cands) != 1 {
		t.Fatalf("distribute candidates = %v", cands)
	}
	dist, err := transform.Apply(s, cands[0])
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(dist)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`)
	out, err := Translate(q, dist, cat)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if len(out.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2 (one per partition)\n%s", len(out.Blocks), out.SQL())
	}
	sql := out.SQL()
	if !strings.Contains(sql, "Show_Part1") || !strings.Contains(sql, "Show_Part2") {
		t.Fatalf("partitions missing:\n%s", sql)
	}
}

func TestTranslatePartitionPruning(t *testing.T) {
	// Only TV shows have a description: after distribution, a query on
	// description must touch only the TV partition (the paper's Q3/Q4
	// effect, cost ratio 0.17).
	s := xschema.MustParseSchema(imdbFixture)
	dist, err := transform.Apply(s, transform.Candidates(s,
		transform.Options{Kinds: []transform.Kind{transform.KindUnionDistribute}})[0])
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(dist)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/description`)
	out, err := Translate(q, dist, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (movie partition pruned)\n%s", len(out.Blocks), out.SQL())
	}
	if !strings.Contains(out.SQL(), "Show_Part2") {
		t.Fatalf("wrong partition:\n%s", out.SQL())
	}
}

func TestTranslateWildcardTagFilter(t *testing.T) {
	out := translate(t, imdbFixture, `FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/review/nyt`)
	sql := out.SQL()
	if !strings.Contains(sql, "tilde = 'nyt'") {
		t.Fatalf("missing tag filter:\n%s", sql)
	}
	// The nyt item is a publish of the wildcard element: a block joining
	// Show and Review with the tag filter.
	found := false
	for _, b := range out.Blocks {
		hasReview := false
		for _, tb := range b.Tables {
			if tb.Table == "Review" {
				hasReview = true
			}
		}
		if hasReview {
			for _, f := range b.Filters {
				if f.Col.Column == "tilde" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatalf("no review block with tag filter:\n%s", sql)
	}
}

func TestTranslatePublishShow(t *testing.T) {
	out := translate(t, imdbFixture, `FOR $s IN imdb/show RETURN $s`)
	// Publishing a show touches Show itself plus Aka, Review, Movie, TV,
	// Episode: 6 blocks.
	if len(out.Blocks) != 6 {
		t.Fatalf("blocks = %d, want 6\n%s", len(out.Blocks), out.SQL())
	}
	// The Episode block must join through TV (its parent), giving a
	// 4-table chain IMDB->Show->TV->Episode.
	var episodeBlock *sqlast.Block
	for _, b := range out.Blocks {
		for _, tb := range b.Tables {
			if tb.Table == "Episode" {
				episodeBlock = b
			}
		}
	}
	if episodeBlock == nil {
		t.Fatalf("no episode block:\n%s", out.SQL())
	}
	if len(episodeBlock.Tables) != 4 {
		t.Fatalf("episode chain = %+v", episodeBlock.Tables)
	}
}

func TestTranslateAttributeAccess(t *testing.T) {
	out := translate(t, imdbFixture, `FOR $v IN imdb/show RETURN $v/@type, $v/type`)
	b := out.Blocks[0]
	if len(b.Projects) != 2 {
		t.Fatalf("projects = %+v", b.Projects)
	}
	for _, p := range b.Projects {
		if p.Column != "type" {
			t.Fatalf("attribute column = %+v", p)
		}
	}
}

func TestTranslateInlinedNestedElement(t *testing.T) {
	s, cat := fixture(t, `
type Actor = actor[ name[ String<#40,#100> ],
    biography[ birthday[ String<#10,#50> ], text[ String<#30,#90> ] ]? ]`)
	q := MustParse(`FOR $a IN actor WHERE $a/biography/birthday = c1 RETURN $a/name`)
	out, err := Translate(q, s, cat)
	if err != nil {
		t.Fatal(err)
	}
	b := out.Blocks[0]
	if len(b.Tables) != 1 {
		t.Fatalf("inlined access should not join: %+v", b.Tables)
	}
	if b.Filters[0].Col.Column != "biography_birthday" {
		t.Fatalf("filter column = %+v", b.Filters[0])
	}
}

func TestTranslateNestedQuery(t *testing.T) {
	out := translate(t, imdbFixture, `FOR $v IN imdb/show
RETURN <result> $v/title, $v/year
  FOR $e IN $v/episode WHERE $e/guest_director = c4 RETURN $e/name
</result>`)
	// Main block (title, year) + nested block (episode name with filter).
	if len(out.Blocks) != 2 {
		t.Fatalf("blocks = %d\n%s", len(out.Blocks), out.SQL())
	}
	nested := out.Blocks[1]
	hasEpisode := false
	for _, tb := range nested.Tables {
		if tb.Table == "Episode" {
			hasEpisode = true
		}
	}
	if !hasEpisode {
		t.Fatalf("nested block lacks Episode:\n%s", nested.SQL())
	}
	if len(nested.Filters) != 1 || !nested.Filters[0].Value.IsParam {
		t.Fatalf("nested filter = %+v", nested.Filters)
	}
}

func TestTranslateValueJoin(t *testing.T) {
	s, cat := fixture(t, `
type IMDB = imdb[ Actor*<#100>, Director*<#20> ]
type Actor = actor[ name[ String<#40,#90> ] ]
type Director = director[ name[ String<#40,#18> ] ]`)
	q := MustParse(`FOR $i IN imdb, $a IN $i/actor, $d IN $i/director
WHERE $a/name = $d/name RETURN $a/name`)
	out, err := Translate(q, s, cat)
	if err != nil {
		t.Fatal(err)
	}
	b := out.Blocks[0]
	if len(b.Tables) != 3 {
		t.Fatalf("tables = %+v", b.Tables)
	}
	var valueJoin bool
	for _, f := range b.Filters {
		if f.RightCol != nil && f.Col.Column == "name" && f.RightCol.Column == "name" {
			valueJoin = true
		}
	}
	if !valueJoin {
		t.Fatalf("missing value join: %+v", b.Filters)
	}
}

func TestTranslateMissingPathErrors(t *testing.T) {
	s, cat := fixture(t, imdbFixture)
	for _, src := range []string{
		`FOR $v IN imdb/nosuch RETURN $v`,
		`FOR $v IN imdb/show WHERE $v/nosuch = 1 RETURN $v/title`,
		`FOR $v IN imdb/show RETURN $v/nosuch`,
	} {
		q := MustParse(src)
		if _, err := Translate(q, s, cat); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}

func TestTranslateAllInlinedConfiguration(t *testing.T) {
	// The ALL-INLINED configuration stores movie/TV fields as nullable
	// columns; queries touch a single wide table.
	s := xschema.MustParseSchema(imdbFixture)
	flat, err := pschema.AllInlined(s)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(flat)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/description, $v/box_office`)
	out, err := Translate(q, flat, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Blocks) != 1 {
		t.Fatalf("blocks = %d\n%s", len(out.Blocks), out.SQL())
	}
	if len(out.Blocks[0].Tables) != 2 { // IMDB + Show only
		t.Fatalf("tables = %+v", out.Blocks[0].Tables)
	}
}

func TestTranslateSQLRendering(t *testing.T) {
	out := translate(t, imdbFixture, `FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title`)
	sql := out.SQL()
	for _, want := range []string{"SELECT", "FROM", "WHERE", "year = 1999", "title"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

// TestAliasAssignmentIsPositional: alias assignment has no counter state
// — every translated block numbers its FROM entries t1, t2, ... by
// position, regardless of which query, union branch or descendant chain
// produced the block. This is what makes structurally identical blocks
// byte-identical inputs for the plan layer's fingerprinting.
func TestAliasAssignmentIsPositional(t *testing.T) {
	queries := []string{
		`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title`,
		`FOR $v IN imdb/show, $e IN $v/episode WHERE $e/name = c1 RETURN $v/title`,
		`FOR $v IN imdb/show, $a IN $v/aka RETURN $v/title, $a`,
		`FOR $v IN imdb/show RETURN $v`,
		`FOR $v IN imdb/show WHERE $v/seasons > 2 RETURN $v/description`,
	}
	for _, query := range queries {
		out := translate(t, imdbFixture, query)
		for bi, b := range out.Blocks {
			for i, tr := range b.Tables {
				if want := fmt.Sprintf("t%d", i+1); tr.Alias != want {
					t.Errorf("%s block %d: Tables[%d].Alias = %q, want %q",
						query, bi, i, tr.Alias, want)
				}
			}
		}
	}
}

// TestTranslateTwiceIsByteIdentical: translating the same query twice
// (fresh parses, same catalog) must yield byte-identical sqlast output —
// the regression guard for hidden translator state.
func TestTranslateTwiceIsByteIdentical(t *testing.T) {
	s, cat := fixture(t, imdbFixture)
	for _, query := range []string{
		`FOR $v IN imdb/show RETURN $v`,
		`FOR $v IN imdb/show, $e IN $v/episode WHERE $e/name = c1 RETURN $v/title`,
		`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/review/nyt`,
	} {
		first, err := Translate(MustParse(query), s, cat)
		if err != nil {
			t.Fatalf("Translate %s: %v", query, err)
		}
		second, err := Translate(MustParse(query), s, cat)
		if err != nil {
			t.Fatalf("re-Translate %s: %v", query, err)
		}
		if first.String() != second.String() {
			t.Errorf("translating %s twice diverged:\n--- first\n%s\n--- second\n%s",
				query, first, second)
		}
	}
}
