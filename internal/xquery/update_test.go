package xquery

import (
	"testing"

	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/transform"
	"legodb/internal/xschema"
)

func TestParseUpdate(t *testing.T) {
	u, err := ParseUpdate("INSERT imdb/show/aka")
	if err != nil {
		t.Fatal(err)
	}
	if u.Kind != InsertUpdate || len(u.Path.Steps) != 3 {
		t.Fatalf("update = %+v", u)
	}
	if u.String() != "INSERT doc/imdb/show/aka" {
		t.Fatalf("String = %q", u.String())
	}
	if _, err := ParseUpdate("UPSERT a/b"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ParseUpdate("INSERT"); err == nil {
		t.Fatal("missing path accepted")
	}
	for _, kind := range []string{"delete", "Modify"} {
		if _, err := ParseUpdate(kind + " imdb/show"); err != nil {
			t.Errorf("case-insensitive kind %q rejected: %v", kind, err)
		}
	}
}

func TestResolveUpdateOutlined(t *testing.T) {
	s, cat := fixture(t, imdbFixture)
	u := MustParseUpdate("INSERT imdb/show/aka")
	targets, err := ResolveUpdate(u, s, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("targets = %+v", targets)
	}
	if targets[0].Table != "Aka" || targets[0].Inlined {
		t.Fatalf("target = %+v", targets[0])
	}
	if len(targets[0].Subtree) != 0 {
		t.Fatalf("aka has no descendants: %+v", targets[0].Subtree)
	}
}

func TestResolveUpdateSubtree(t *testing.T) {
	s, cat := fixture(t, imdbFixture)
	u := MustParseUpdate("INSERT imdb/show")
	targets, err := ResolveUpdate(u, s, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("targets = %+v", targets)
	}
	tgt := targets[0]
	if tgt.Table != "Show" {
		t.Fatalf("target = %+v", tgt)
	}
	// A show's subtree spans Aka, Review, Movie, TV, Episode.
	if len(tgt.Subtree) != 5 {
		t.Fatalf("subtree = %v", tgt.Subtree)
	}
}

func TestResolveUpdateInlinedValue(t *testing.T) {
	base := xschema.MustParseSchema(imdbFixture)
	flat, err := pschema.AllInlined(base)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(flat)
	if err != nil {
		t.Fatal(err)
	}
	u := MustParseUpdate("MODIFY imdb/show/description")
	targets, err := ResolveUpdate(u, flat, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 || !targets[0].Inlined || targets[0].Table != "Show" {
		t.Fatalf("targets = %+v", targets)
	}
}

func TestResolveUpdatePartitioned(t *testing.T) {
	base := xschema.MustParseSchema(imdbFixture)
	dist, err := transform.Apply(base, transform.Candidates(base,
		transform.Options{Kinds: []transform.Kind{transform.KindUnionDistribute}})[0])
	if err != nil {
		t.Fatal(err)
	}
	cat, err := relational.Map(dist)
	if err != nil {
		t.Fatal(err)
	}
	u := MustParseUpdate("INSERT imdb/show")
	targets, err := ResolveUpdate(u, dist, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("partitioned insert should have 2 targets: %+v", targets)
	}
}

func TestResolveUpdateUnknownPath(t *testing.T) {
	s, cat := fixture(t, imdbFixture)
	u := MustParseUpdate("DELETE imdb/nosuch")
	if _, err := ResolveUpdate(u, s, cat); err == nil {
		t.Fatal("unknown path resolved")
	}
}
