package xquery

import (
	"strings"
	"testing"
)

func TestParseSimpleLookup(t *testing.T) {
	q, err := Parse(`FOR $v IN document("imdbdata")/imdb/show
WHERE $v/title = c1
RETURN $v/title, $v/year, $v/type`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Bindings) != 1 || q.Bindings[0].Var != "v" {
		t.Fatalf("bindings = %+v", q.Bindings)
	}
	if got := strings.Join(q.Bindings[0].Path.Steps, "/"); got != "imdb/show" {
		t.Fatalf("path = %q", got)
	}
	if len(q.Where) != 1 || q.Where[0].Right.Param != "c1" {
		t.Fatalf("where = %+v", q.Where)
	}
	if len(q.Return) != 3 {
		t.Fatalf("return = %+v", q.Return)
	}
}

func TestParseWithoutDocumentWrapper(t *testing.T) {
	q, err := Parse(`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := strings.Join(q.Bindings[0].Path.Steps, "/"); got != "imdb/show" {
		t.Fatalf("path = %q", got)
	}
	w := q.Where[0]
	if !w.Right.IsInt || w.Right.Int != 1999 {
		t.Fatalf("where right = %+v", w.Right)
	}
}

func TestParseOperators(t *testing.T) {
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		q, err := Parse(`FOR $v IN imdb/show WHERE $v/year ` + op + ` 1999 RETURN $v/title`)
		if err != nil {
			t.Fatalf("op %q: %v", op, err)
		}
		if q.Where[0].Op != op {
			t.Fatalf("op = %q, want %q", q.Where[0].Op, op)
		}
	}
}

func TestParseMultipleBindings(t *testing.T) {
	q, err := Parse(`FOR $i IN document("imdbdata")/imdb,
    $a IN $i/actor,
    $m1 IN $a/played,
    $d IN $i/director,
    $m2 IN $d/directed
WHERE $a/name = $d/name AND $m1/title = $m2/title
RETURN $a/name, $m1/title, $m1/year`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Bindings) != 5 {
		t.Fatalf("bindings = %d", len(q.Bindings))
	}
	if q.Bindings[2].Path.Var != "a" {
		t.Fatalf("m1 source = %+v", q.Bindings[2].Path)
	}
	if q.Where[1].Right.Path == nil {
		t.Fatalf("second cond should be path-path: %+v", q.Where[1])
	}
}

func TestParseElementConstructorAndNested(t *testing.T) {
	q, err := Parse(`FOR $v IN imdb/actor
RETURN <result> $v/name
  FOR $p IN $v/played WHERE $p/character = c1
  RETURN $p/order_of_appearance
</result>`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Return) != 1 || q.Return[0].Element == nil {
		t.Fatalf("return = %+v", q.Return)
	}
	el := q.Return[0].Element
	if el.Tag != "result" || len(el.Items) != 2 {
		t.Fatalf("constructor = %+v", el)
	}
	nested := el.Items[1].Nested
	if nested == nil || nested.Bindings[0].Var != "p" {
		t.Fatalf("nested = %+v", el.Items[1])
	}
	if len(nested.Where) != 1 || len(nested.Return) != 1 {
		t.Fatalf("nested body = %+v", nested)
	}
}

func TestParsePublishWholeVariable(t *testing.T) {
	q, err := Parse(`FOR $s IN imdb/show RETURN $s`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Return[0].Path == nil || len(q.Return[0].Path.Steps) != 0 {
		t.Fatalf("return = %+v", q.Return[0])
	}
}

func TestParseAttributeStep(t *testing.T) {
	q, err := Parse(`FOR $v IN imdb/show RETURN $v/@type`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := q.Return[0].Path.Steps[0]; got != "@type" {
		t.Fatalf("step = %q", got)
	}
}

func TestParseStringConstant(t *testing.T) {
	q, err := Parse(`FOR $v IN imdb/show WHERE $v/title = 'Fugitive, The' RETURN $v/year`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if q.Where[0].Right.Str != "Fugitive, The" {
		t.Fatalf("string const = %+v", q.Where[0].Right)
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse(`(: Q3: shows of a year :)
FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(q.Return) != 2 {
		t.Fatalf("return = %+v", q.Return)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"RETURN $v",
		"FOR v IN imdb/show RETURN $v",
		"FOR $v IN imdb/show WHERE RETURN $v",
		"FOR $v IN imdb/show",
		"FOR $v IN imdb/show RETURN <result> $v",
		"FOR $v IN imdb/show WHERE doc/imdb = 3 RETURN $v",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := `FOR $v IN imdb/show WHERE $v/year = 1999 AND $v/title = c2 RETURN $v/title, <r> $v/year </r>`
	q := MustParse(src)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", q.String(), err)
	}
	if len(q2.Where) != 2 || len(q2.Return) != 2 {
		t.Fatalf("round trip lost structure: %s", q2)
	}
}
