package xquery

import (
	"fmt"
	"strings"

	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xschema"
)

// Update support — the paper lists "including updates in our workload"
// as future work (Section 7); this implements it. An update names a
// document path and an operation kind; resolving it against a physical
// schema yields the relations the operation must write, which the cost
// model prices (fragmented configurations pay one seek per relation on
// insert; wide inlined relations pay more bytes per rewrite).

// UpdateKind enumerates update operations.
type UpdateKind int

const (
	// InsertUpdate adds a new element (and its subtree) at the path.
	InsertUpdate UpdateKind = iota
	// DeleteUpdate removes an element (and its subtree) at the path.
	DeleteUpdate
	// ModifyUpdate rewrites the value of an existing element.
	ModifyUpdate
)

func (k UpdateKind) String() string {
	switch k {
	case InsertUpdate:
		return "INSERT"
	case DeleteUpdate:
		return "DELETE"
	case ModifyUpdate:
		return "MODIFY"
	default:
		return fmt.Sprintf("UpdateKind(%d)", int(k))
	}
}

// Update is one update operation in a workload.
type Update struct {
	Name string
	Kind UpdateKind
	Path Path
}

func (u *Update) String() string {
	return fmt.Sprintf("%s %s", u.Kind, u.Path)
}

// ParseUpdate parses "INSERT imdb/show/aka", "DELETE imdb/show" or
// "MODIFY imdb/show/description". A leading "(: name :)" comment — the
// same report-label idiom queries use — becomes the update's Name; the
// name never participates in the canonical String rendering, so labeled
// and unlabeled texts share one shape.
func ParseUpdate(src string) (*Update, error) {
	src = strings.TrimSpace(src)
	u := &Update{}
	if strings.HasPrefix(src, "(:") {
		end := strings.Index(src, ":)")
		if end < 0 {
			return nil, fmt.Errorf("xquery: unterminated comment in update %q", src)
		}
		u.Name = strings.TrimSpace(src[2:end])
		src = strings.TrimSpace(src[end+2:])
	}
	fields := strings.Fields(src)
	if len(fields) != 2 {
		return nil, fmt.Errorf("xquery: update must be '<KIND> <path>', got %q", src)
	}
	switch strings.ToUpper(fields[0]) {
	case "INSERT":
		u.Kind = InsertUpdate
	case "DELETE":
		u.Kind = DeleteUpdate
	case "MODIFY":
		u.Kind = ModifyUpdate
	default:
		return nil, fmt.Errorf("xquery: unknown update kind %q", fields[0])
	}
	steps := xschema.ParsePath(fields[1])
	if len(steps) == 0 {
		return nil, fmt.Errorf("xquery: update path is empty")
	}
	u.Path = Path{Steps: steps}
	return u, nil
}

// MustParseUpdate is ParseUpdate that panics on error.
func MustParseUpdate(src string) *Update {
	u, err := ParseUpdate(src)
	if err != nil {
		panic(err)
	}
	return u
}

// UpdateTarget describes, for one schema alternative of the update path,
// where the operation writes: the relation holding the element's direct
// content and the relations of its descendant content.
type UpdateTarget struct {
	// Table holds the element's own row (or the ancestor row its content
	// is inlined into).
	Table string
	// Inlined is true when the element has no row of its own (its
	// content lives in columns of Table); inserts then rewrite the
	// ancestor row instead of adding one.
	Inlined bool
	// Subtree lists the distinct relations storing descendant content
	// (excluding Table itself); an insert or delete of the element
	// writes them too.
	Subtree []string
}

// ResolveUpdate binds the update path against a physical schema and
// returns one target per alternative (union-partitioned types produce
// several).
func ResolveUpdate(u *Update, s *xschema.Schema, cat *relational.Catalog) ([]UpdateTarget, error) {
	targets, _, err := resolveUpdate(u, s, cat, false)
	return targets, err
}

// ResolveUpdateDeps is ResolveUpdate, additionally reporting the named
// types the resolution examined — the same dependency contract as
// TranslateDeps (update costs are a function of the root name, the
// examined definitions and their tables).
func ResolveUpdateDeps(u *Update, s *xschema.Schema, cat *relational.Catalog) ([]UpdateTarget, []string, error) {
	return resolveUpdate(u, s, cat, true)
}

func resolveUpdate(u *Update, s *xschema.Schema, cat *relational.Catalog, track bool) ([]UpdateTarget, []string, error) {
	tr := &translator{schema: s, cat: cat, track: track}
	// resolvePath records joins in a scratch block; only the reached
	// targets matter here.
	base := &context{block: &sqlast.Block{}, vars: map[string]target{}}
	resolutions, err := tr.resolvePath(base, u.Path)
	if err != nil {
		return nil, nil, fmt.Errorf("xquery: update %s: %w", u, err)
	}
	if len(resolutions) == 0 {
		return nil, nil, fmt.Errorf("xquery: update %s: path matches nothing in the schema", u)
	}
	var out []UpdateTarget
	for _, r := range resolutions {
		ut := UpdateTarget{
			Table:   cat.TableOf[r.tgt.typeName],
			Inlined: len(r.tgt.prefix) > 0,
		}
		content, err := tr.contentAt(r.tgt.typeName, r.tgt.prefix)
		if err != nil {
			return nil, nil, err
		}
		var chains [][]string
		tr.collectDescendants(content, nil, &chains, map[string]int{})
		seen := map[string]bool{ut.Table: true}
		for _, chain := range chains {
			tbl := cat.TableOf[chain[len(chain)-1]]
			if tbl != "" && !seen[tbl] {
				seen[tbl] = true
				ut.Subtree = append(ut.Subtree, tbl)
			}
		}
		out = append(out, ut)
	}
	return out, tr.deps, nil
}

// TargetBlock is the executable form of a whole-element target: an SPJ
// block projecting the target relation's key, one per schema
// alternative. Executing the block yields the ids of the matched
// instances — the handles mutations operate on.
type TargetBlock struct {
	Block    *sqlast.Block
	TypeName string
}

// TranslateTargets resolves a query whose RETURN is a single
// whole-element path into target blocks: the bindings and WHERE clause
// apply, and each block projects the target relation's key column.
// Inlined targets (content without a row of its own) are rejected.
func TranslateTargets(q *Query, s *xschema.Schema, cat *relational.Catalog) ([]TargetBlock, error) {
	if len(q.Return) != 1 || q.Return[0].Path == nil {
		return nil, fmt.Errorf("xquery: %s: target queries must RETURN exactly one path", q.Name)
	}
	tr := &translator{schema: s, cat: cat}
	base := &context{block: &sqlast.Block{}, vars: map[string]target{}}
	ctxs, err := tr.applyBindings([]*context{base}, q.Bindings)
	if err != nil {
		return nil, fmt.Errorf("xquery: %s: %w", q.Name, err)
	}
	ctxs, err = tr.applyWhere(ctxs, q.Where)
	if err != nil {
		return nil, fmt.Errorf("xquery: %s: %w", q.Name, err)
	}
	var out []TargetBlock
	for _, ctx := range ctxs {
		resolutions, err := tr.resolvePath(ctx, *q.Return[0].Path)
		if err != nil {
			return nil, err
		}
		for _, r := range resolutions {
			if len(r.tgt.prefix) > 0 {
				return nil, fmt.Errorf("xquery: %s: target %s is inlined content, not an element instance",
					q.Name, q.Return[0].Path)
			}
			table := cat.Table(cat.TableOf[r.tgt.typeName])
			if table == nil {
				return nil, fmt.Errorf("xquery: %s: no table for type %s", q.Name, r.tgt.typeName)
			}
			b := r.ctx.block.Clone()
			b.Projects = []sqlast.ColumnRef{{Alias: r.tgt.alias, Column: table.Key()}}
			out = append(out, TargetBlock{Block: b, TypeName: r.tgt.typeName})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("xquery: %s: target path matches nothing", q.Name)
	}
	return out, nil
}
