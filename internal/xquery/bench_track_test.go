package xquery_test

import (
	"testing"

	"legodb/internal/core"
	"legodb/internal/imdb"
	"legodb/internal/relational"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

func trackFixture(b *testing.B) (*xschema.Schema, *relational.Catalog, *xquery.Workload) {
	b.Helper()
	s := imdb.Schema().Clone()
	if err := xstats.Annotate(s, imdb.Stats()); err != nil {
		b.Fatal(err)
	}
	ps, err := core.InitialSchema(s, core.GreedySI)
	if err != nil {
		b.Fatal(err)
	}
	cat, err := relational.MapWith(ps, relational.Options{RootCount: 1})
	if err != nil {
		b.Fatal(err)
	}
	return ps, cat, imdb.LookupWorkload()
}

func BenchmarkTranslate(b *testing.B) {
	ps, cat, wl := trackFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, en := range wl.Entries {
			if _, err := xquery.Translate(en.Query, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkTranslateDeps(b *testing.B) {
	ps, cat, wl := trackFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, en := range wl.Entries {
			if _, _, err := xquery.TranslateDeps(en.Query, ps, cat); err != nil {
				b.Fatal(err)
			}
		}
	}
}
