package xquery

import (
	"fmt"

	"legodb/internal/faults"
	"legodb/internal/pschema"
	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xschema"
)

// Translate converts a FLWR query into logical SQL over the relational
// image of the given physical schema:
//
//   - a path step into an outlined type adds a key/foreign-key join;
//   - a step into content inlined in the current table stays in place;
//   - a step over a union of types expands the query into one block per
//     alternative (the paper's "union of two subqueries");
//   - a step naming a concrete element into a wildcard adds an equality
//     filter on the wildcard's tag column;
//   - returning a whole element expands into one block per relation
//     reachable from it (publishing, in the style of SilkRoute).
func Translate(q *Query, s *xschema.Schema, cat *relational.Catalog) (*sqlast.Query, error) {
	sq, _, err := translateTracked(q, s, cat, false)
	return sq, err
}

// TranslateDeps is Translate, additionally reporting every named type
// the translation examined (looked up in the schema), in first-lookup
// order. The translation is a deterministic function of the root name,
// the examined definitions and those types' catalog tables: if all of
// them are unchanged between two schemas, re-translating yields an
// identical query with an identical cost. The per-query cost cache in
// core builds its keys from exactly this dependency list.
func TranslateDeps(q *Query, s *xschema.Schema, cat *relational.Catalog) (*sqlast.Query, []string, error) {
	return translateTracked(q, s, cat, true)
}

func translateTracked(q *Query, s *xschema.Schema, cat *relational.Catalog, track bool) (*sqlast.Query, []string, error) {
	if err := faults.Inject(faults.SiteTranslate); err != nil {
		return nil, nil, err
	}
	tr := &translator{schema: s, cat: cat, track: track}
	base := &context{block: &sqlast.Block{}, vars: map[string]target{}}
	ctxs, err := tr.applyBindings([]*context{base}, q.Bindings)
	if err != nil {
		return nil, nil, fmt.Errorf("xquery: %s: %w", q.Name, err)
	}
	ctxs, err = tr.applyWhere(ctxs, q.Where)
	if err != nil {
		return nil, nil, fmt.Errorf("xquery: %s: %w", q.Name, err)
	}
	blocks, err := tr.processReturn(ctxs, q.Return)
	if err != nil {
		return nil, nil, fmt.Errorf("xquery: %s: %w", q.Name, err)
	}
	if len(blocks) == 0 {
		return nil, nil, fmt.Errorf("xquery: %s: no part of the query is answerable on this schema", q.Name)
	}
	return &sqlast.Query{Name: q.Name, Blocks: blocks}, tr.deps, nil
}

// target is a bound node set: rows of one relation, plus the element path
// of the node inside the relation's type (empty = the type's own
// instance element).
type target struct {
	typeName string
	alias    string
	prefix   []string
}

// context is one alternative expansion of the query: a partially built
// block plus variable bindings and accumulated scalar projections.
type context struct {
	block    *sqlast.Block
	vars     map[string]target
	projects []sqlast.ColumnRef
}

func (c *context) clone() *context {
	vars := make(map[string]target, len(c.vars))
	for k, v := range c.vars {
		vars[k] = v
	}
	return &context{
		block:    c.block.Clone(),
		vars:     vars,
		projects: append([]sqlast.ColumnRef(nil), c.projects...),
	}
}

type translator struct {
	schema *xschema.Schema
	cat    *relational.Catalog
	// deps records the named types examined during translation (every
	// schema lookup), in first-lookup order. The list is the
	// translation's complete read set of the schema: all catalog
	// accesses use type names that went through lookup first. depSeen
	// mirrors deps as a set so each lookup dedups in O(1) — lookups are
	// far more frequent than distinct names, and the incremental
	// evaluator calls TranslateDeps on every cache miss, so per-lookup
	// cost is on the search hot path.
	deps    []string
	depSeen map[string]struct{}
	track   bool
}

// nextAlias returns the alias for the next FROM entry of a block. The
// assignment is purely positional — t1, t2, ... by position in the
// block's own FROM list, with no counter shared across blocks or union
// branches — so Tables[i].Alias == "t<i+1>" always holds, structurally
// identical blocks carry byte-identical aliases wherever they arise, and
// translated blocks are deterministic inputs for plan fingerprinting.
func nextAlias(b *sqlast.Block) string {
	return fmt.Sprintf("t%d", len(b.Tables)+1)
}

// lookup resolves a named type, recording it as a dependency.
func (tr *translator) lookup(name string) (xschema.Type, bool) {
	if tr.track {
		if _, seen := tr.depSeen[name]; !seen {
			if tr.depSeen == nil {
				tr.depSeen = make(map[string]struct{}, 8)
			}
			tr.depSeen[name] = struct{}{}
			tr.deps = append(tr.deps, name)
		}
	}
	return tr.schema.Lookup(name)
}

// resolution is one alternative outcome of resolving a path.
type resolution struct {
	ctx *context
	tgt target
}

// match describes how a step name binds inside some content: either
// inlined (chain empty, prefix extends within the current table) or
// through a chain of outlined types.
type match struct {
	chain     []string
	prefix    []string
	tagFilter bool
}

func (tr *translator) applyBindings(ctxs []*context, bindings []Binding) ([]*context, error) {
	for _, b := range bindings {
		var next []*context
		for _, ctx := range ctxs {
			resolutions, err := tr.resolvePath(ctx, b.Path)
			if err != nil {
				return nil, err
			}
			for _, r := range resolutions {
				r.ctx.vars[b.Var] = r.tgt
				next = append(next, r.ctx)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("binding $%s: path %s matches nothing in the schema", b.Var, b.Path)
		}
		ctxs = next
	}
	return ctxs, nil
}

// resolvePath binds a path expression, returning one resolution per
// schema alternative. Each resolution's context has the necessary tables,
// joins and tag filters added.
func (tr *translator) resolvePath(ctx *context, p Path) ([]resolution, error) {
	var current []resolution
	steps := p.Steps
	if p.Var == "" {
		if len(steps) == 0 {
			return nil, fmt.Errorf("empty document path")
		}
		// The first step must match the root element.
		var matches []match
		tr.namedMatches(&xschema.Ref{Name: tr.schema.Root}, steps[0], &matches, map[string]int{})
		if len(matches) == 0 {
			return nil, fmt.Errorf("step %q does not match the document root", steps[0])
		}
		for _, m := range matches {
			c := ctx.clone()
			tgt, ok := tr.applyMatch(c, target{}, m, steps[0])
			if !ok {
				continue
			}
			current = append(current, resolution{ctx: c, tgt: tgt})
		}
		steps = steps[1:]
	} else {
		tgt, ok := ctx.vars[p.Var]
		if !ok {
			return nil, fmt.Errorf("unbound variable $%s", p.Var)
		}
		current = []resolution{{ctx: ctx.clone(), tgt: tgt}}
	}
	for _, step := range steps {
		var next []resolution
		for _, r := range current {
			content, err := tr.contentAt(r.tgt.typeName, r.tgt.prefix)
			if err != nil {
				return nil, err
			}
			var matches []match
			tr.scanUnits(content, step, &matches, map[string]int{})
			for _, m := range matches {
				c := r.ctx.clone()
				tgt, ok := tr.applyMatch(c, r.tgt, m, step)
				if !ok {
					continue
				}
				next = append(next, resolution{ctx: c, tgt: tgt})
			}
		}
		current = next
		if len(current) == 0 {
			return nil, nil // path names nothing on this alternative
		}
	}
	return current, nil
}

// applyMatch materializes a match in the context: joins through the
// outlined chain, tag filters for wildcard steps. The boolean result is
// false when a required column or table is missing (malformed catalog).
func (tr *translator) applyMatch(ctx *context, from target, m match, step string) (target, bool) {
	tgt := from
	for _, hop := range m.chain {
		childTable := tr.cat.TableOf[hop]
		child := tr.cat.Table(childTable)
		if child == nil {
			return target{}, false
		}
		alias := nextAlias(ctx.block)
		ctx.block.AddTable(childTable, alias)
		if tgt.typeName != "" {
			parentTable := tr.cat.TableOf[tgt.typeName]
			fk := ""
			for _, e := range child.Parents {
				if e.Parent == parentTable {
					fk = e.FKColumn
					break
				}
			}
			if fk == "" {
				return target{}, false
			}
			ctx.block.Joins = append(ctx.block.Joins, sqlast.Join{
				Left:  sqlast.ColumnRef{Alias: alias, Column: fk},
				Right: sqlast.ColumnRef{Alias: tgt.alias, Column: tr.cat.Table(parentTable).Key()},
			})
		}
		tgt = target{typeName: hop, alias: alias}
	}
	tgt.prefix = append(append([]string(nil), tgt.prefix...), m.prefix...)
	if m.tagFilter {
		tagCol := tr.columnAt(tgt, "#tag")
		if tagCol == nil {
			return target{}, false
		}
		ctx.block.Filters = append(ctx.block.Filters, sqlast.Filter{
			Col:   sqlast.ColumnRef{Alias: tgt.alias, Column: tagCol.Name},
			Op:    sqlast.OpEq,
			Value: sqlast.Literal{Str: step},
		})
	}
	return tgt, true
}

// contentAt returns the content type reached by following prefix inside
// the named type's body.
func (tr *translator) contentAt(typeName string, prefix []string) (xschema.Type, error) {
	body, ok := tr.lookup(typeName)
	if !ok {
		return nil, fmt.Errorf("undefined type %q", typeName)
	}
	t := body
	switch b := t.(type) {
	case *xschema.Element:
		t = b.Content
	case *xschema.Wildcard:
		t = b.Content
	}
	for _, comp := range prefix {
		child := findChild(t, comp)
		if child == nil {
			return nil, fmt.Errorf("no %q inside type %s", comp, typeName)
		}
		t = child
	}
	return t, nil
}

// findChild locates the content of the element (or wildcard, comp "~")
// named comp among the top-level units of t.
func findChild(t xschema.Type, comp string) xschema.Type {
	switch t := t.(type) {
	case *xschema.Sequence:
		for _, it := range t.Items {
			if c := findChild(it, comp); c != nil {
				return c
			}
		}
	case *xschema.Repeat:
		if t.Min == 0 && t.Max == 1 {
			return findChild(t.Inner, comp)
		}
	case *xschema.Element:
		if t.Name == comp {
			return t.Content
		}
	case *xschema.Wildcard:
		if comp == "~" {
			return t.Content
		}
	}
	return nil
}

// scanUnits finds step matches among the immediate children described by
// content: inlined elements, attributes, wildcards, and outlined types
// through named expressions.
func (tr *translator) scanUnits(content xschema.Type, step string, out *[]match, seen map[string]int) {
	switch t := content.(type) {
	case *xschema.Sequence:
		for _, it := range t.Items {
			tr.scanUnits(it, step, out, seen)
		}
	case *xschema.Repeat:
		if t.Min == 0 && t.Max == 1 && !pschema.IsNamedExpr(t.Inner) {
			tr.scanUnits(t.Inner, step, out, seen)
			return
		}
		tr.namedMatches(t.Inner, step, out, seen)
	case *xschema.Element:
		if t.Name == step {
			*out = append(*out, match{prefix: []string{step}})
		}
	case *xschema.Attribute:
		if step == t.Name || step == "@"+t.Name {
			*out = append(*out, match{prefix: []string{"@" + t.Name}})
		}
	case *xschema.Wildcard:
		if !excludes(t, step) {
			*out = append(*out, match{prefix: []string{"~"}, tagFilter: true})
		}
	case *xschema.Ref, *xschema.Choice:
		tr.namedMatches(content, step, out, seen)
	}
}

func excludes(w *xschema.Wildcard, name string) bool {
	for _, e := range w.Exclude {
		if e == name {
			return true
		}
	}
	return false
}

// namedMatches resolves a named-type expression against a step,
// producing outlined matches with their join chains.
func (tr *translator) namedMatches(expr xschema.Type, step string, out *[]match, seen map[string]int) {
	switch t := expr.(type) {
	case *xschema.Repeat:
		tr.namedMatches(t.Inner, step, out, seen)
	case *xschema.Choice:
		for _, alt := range t.Alts {
			tr.namedMatches(alt, step, out, seen)
		}
	case *xschema.Sequence:
		for _, it := range t.Items {
			tr.namedMatches(it, step, out, seen)
		}
	case *xschema.Ref:
		if seen[t.Name] >= 1 {
			return
		}
		seen[t.Name]++
		defer func() { seen[t.Name]-- }()
		def, ok := tr.lookup(t.Name)
		if !ok {
			return
		}
		if pschema.IsAlias(def) {
			tr.namedMatches(def, step, out, seen)
			return
		}
		switch body := def.(type) {
		case *xschema.Element:
			if body.Name == step {
				*out = append(*out, match{chain: []string{t.Name}})
			}
		case *xschema.Wildcard:
			if !excludes(body, step) {
				*out = append(*out, match{chain: []string{t.Name}, tagFilter: true})
			}
		case *xschema.Scalar:
			// Scalar-bodied types have no element name; unreachable by a
			// name step.
		default:
			// Group type: its content splices into the parent element, so
			// the step matches inside it; results join through this type.
			var sub []match
			tr.scanUnits(def, step, &sub, seen)
			for _, m := range sub {
				*out = append(*out, match{
					chain:     append([]string{t.Name}, m.chain...),
					prefix:    m.prefix,
					tagFilter: m.tagFilter,
				})
			}
		}
	}
}

// columnAt finds the column of the target's table whose XMLPath is the
// target prefix extended by the given terminal ("" for exact,
// "#text"/"#tag" for node text and wildcard tags).
func (tr *translator) columnAt(tgt target, terminal string) *relational.Column {
	tbl := tr.cat.Table(tr.cat.TableOf[tgt.typeName])
	if tbl == nil {
		return nil
	}
	want := tgt.prefix
	if terminal != "" {
		want = append(append([]string(nil), tgt.prefix...), terminal)
	}
	for _, c := range tbl.Columns {
		if pathEqual(c.XMLPath, want) {
			return c
		}
	}
	return nil
}

func pathEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// valueColumn returns the column holding the target's scalar value, or
// nil when the target is not a value.
func (tr *translator) valueColumn(tgt target) *relational.Column {
	if len(tgt.prefix) > 0 {
		if c := tr.columnAt(tgt, ""); c != nil {
			return c
		}
	}
	return tr.columnAt(tgt, "#text")
}

func (tr *translator) applyWhere(ctxs []*context, conds []Comparison) ([]*context, error) {
	for _, cond := range conds {
		op, err := cmpOp(cond.Op)
		if err != nil {
			return nil, err
		}
		var next []*context
		for _, ctx := range ctxs {
			resolutions, err := tr.resolvePath(ctx, cond.Left)
			if err != nil {
				return nil, err
			}
			for _, r := range resolutions {
				col := tr.valueColumn(r.tgt)
				if col == nil {
					continue
				}
				left := sqlast.ColumnRef{Alias: r.tgt.alias, Column: col.Name}
				if cond.Right.Path != nil {
					rres, err := tr.resolvePath(r.ctx, *cond.Right.Path)
					if err != nil {
						return nil, err
					}
					for _, rr := range rres {
						rcol := tr.valueColumn(rr.tgt)
						if rcol == nil {
							continue
						}
						right := sqlast.ColumnRef{Alias: rr.tgt.alias, Column: rcol.Name}
						rr.ctx.block.Filters = append(rr.ctx.block.Filters, sqlast.Filter{
							Col: left, Op: op, RightCol: &right,
						})
						next = append(next, rr.ctx)
					}
					continue
				}
				r.ctx.block.Filters = append(r.ctx.block.Filters, sqlast.Filter{
					Col: left, Op: op, Value: literal(cond.Right),
				})
				next = append(next, r.ctx)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("condition %s matches nothing in the schema", cond)
		}
		ctxs = next
	}
	return ctxs, nil
}

func cmpOp(op string) (sqlast.CmpOp, error) {
	switch op {
	case "=":
		return sqlast.OpEq, nil
	case "!=":
		return sqlast.OpNe, nil
	case "<":
		return sqlast.OpLt, nil
	case "<=":
		return sqlast.OpLe, nil
	case ">":
		return sqlast.OpGt, nil
	case ">=":
		return sqlast.OpGe, nil
	default:
		return 0, fmt.Errorf("unknown comparison operator %q", op)
	}
}

func literal(o Operand) sqlast.Literal {
	switch {
	case o.Param != "":
		return sqlast.Literal{IsParam: true, Param: o.Param}
	case o.IsInt:
		return sqlast.Literal{IsInt: true, Int: o.Int}
	default:
		return sqlast.Literal{Str: o.Str}
	}
}

// processReturn turns the RETURN clause into blocks: one main block per
// context carrying the scalar projections, one block per reachable
// relation for each whole-element item (publishing), and the recursive
// expansion of nested FLWR items.
func (tr *translator) processReturn(ctxs []*context, items []ReturnItem) ([]*sqlast.Block, error) {
	var paths []Path
	var nested []*Query
	var flatten func(items []ReturnItem)
	flatten = func(items []ReturnItem) {
		for _, it := range items {
			switch {
			case it.Path != nil:
				paths = append(paths, *it.Path)
			case it.Element != nil:
				flatten(it.Element.Items)
			case it.Nested != nil:
				nested = append(nested, it.Nested)
			}
		}
	}
	flatten(items)

	// Scalar projections expand the main contexts; whole-element paths
	// are collected for publishing.
	var publish []Path
	scalarCtxs := ctxs
	anyScalar := false
	for _, p := range paths {
		// Classify on the first context where the path resolves.
		kind, err := tr.classifyPath(ctxs, p)
		if err != nil {
			return nil, err
		}
		if kind == pathPublish {
			publish = append(publish, p)
			continue
		}
		anyScalar = true
		var next []*context
		for _, ctx := range scalarCtxs {
			resolutions, err := tr.resolvePath(ctx, p)
			if err != nil {
				return nil, err
			}
			if len(resolutions) == 0 {
				// The path names nothing on this alternative (e.g. a TV
				// field on the movie partition): the item is simply
				// absent from this part of the union.
				next = append(next, ctx)
				continue
			}
			for _, r := range resolutions {
				if col := tr.valueColumn(r.tgt); col != nil {
					r.ctx.projects = append(r.ctx.projects, sqlast.ColumnRef{Alias: r.tgt.alias, Column: col.Name})
				}
				next = append(next, r.ctx)
			}
		}
		scalarCtxs = next
	}

	var blocks []*sqlast.Block
	if anyScalar {
		for _, ctx := range scalarCtxs {
			if len(ctx.projects) == 0 {
				continue
			}
			b := ctx.block.Clone()
			b.Projects = ctx.projects
			blocks = append(blocks, b)
		}
	}
	for _, p := range publish {
		for _, ctx := range ctxs {
			resolutions, err := tr.resolvePath(ctx, p)
			if err != nil {
				return nil, err
			}
			for _, r := range resolutions {
				pb, err := tr.publishBlocks(r.ctx, r.tgt)
				if err != nil {
					return nil, err
				}
				blocks = append(blocks, pb...)
			}
		}
	}
	for _, nq := range nested {
		nctxs, err := tr.applyBindings(cloneAll(ctxs), nq.Bindings)
		if err != nil {
			return nil, err
		}
		nctxs, err = tr.applyWhere(nctxs, nq.Where)
		if err != nil {
			return nil, err
		}
		nb, err := tr.processReturn(nctxs, nq.Return)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, nb...)
	}
	return blocks, nil
}

func cloneAll(ctxs []*context) []*context {
	out := make([]*context, len(ctxs))
	for i, c := range ctxs {
		out[i] = c.clone()
	}
	return out
}

type pathKind int

const (
	pathScalar pathKind = iota
	pathPublish
)

// classifyPath decides whether a return path is a scalar value or a
// whole-element (publish) item, using the first context in which it
// resolves.
func (tr *translator) classifyPath(ctxs []*context, p Path) (pathKind, error) {
	if len(p.Steps) == 0 {
		return pathPublish, nil
	}
	for _, ctx := range ctxs {
		resolutions, err := tr.resolvePath(ctx, p)
		if err != nil {
			return 0, err
		}
		for _, r := range resolutions {
			if tr.valueColumn(r.tgt) != nil {
				return pathScalar, nil
			}
			return pathPublish, nil
		}
	}
	return 0, fmt.Errorf("return path %s matches nothing in the schema", p)
}

// publishBlocks emits the sorted-outer-union skeleton for publishing a
// target: one block projecting the target's own columns, plus one block
// per relation reachable below it.
func (tr *translator) publishBlocks(ctx *context, tgt target) ([]*sqlast.Block, error) {
	var blocks []*sqlast.Block

	self := ctx.block.Clone()
	tbl := tr.cat.Table(tr.cat.TableOf[tgt.typeName])
	if tbl == nil {
		return nil, fmt.Errorf("no table for type %s", tgt.typeName)
	}
	for _, c := range tbl.Columns {
		if len(tgt.prefix) == 0 || pathHasPrefix(c.XMLPath, tgt.prefix) {
			self.Projects = append(self.Projects, sqlast.ColumnRef{Alias: tgt.alias, Column: c.Name})
		}
	}
	if len(self.Projects) > 0 {
		blocks = append(blocks, self)
	}

	content, err := tr.contentAt(tgt.typeName, tgt.prefix)
	if err != nil {
		return nil, err
	}
	var chains [][]string
	tr.collectDescendants(content, nil, &chains, map[string]int{})
	for _, chain := range chains {
		b := ctx.block.Clone()
		parentAlias := tgt.alias
		parentTable := tr.cat.TableOf[tgt.typeName]
		ok := true
		var lastAlias string
		var lastTable *relational.Table
		for _, hop := range chain {
			childName := tr.cat.TableOf[hop]
			child := tr.cat.Table(childName)
			if child == nil {
				ok = false
				break
			}
			alias := nextAlias(b)
			b.AddTable(childName, alias)
			fk := ""
			for _, e := range child.Parents {
				if e.Parent == parentTable {
					fk = e.FKColumn
					break
				}
			}
			if fk == "" {
				ok = false
				break
			}
			b.Joins = append(b.Joins, sqlast.Join{
				Left:  sqlast.ColumnRef{Alias: alias, Column: fk},
				Right: sqlast.ColumnRef{Alias: parentAlias, Column: tr.cat.Table(parentTable).Key()},
			})
			parentAlias, parentTable = alias, childName
			lastAlias, lastTable = alias, child
		}
		if !ok || lastTable == nil {
			continue
		}
		for _, c := range lastTable.Columns {
			b.Projects = append(b.Projects, sqlast.ColumnRef{Alias: lastAlias, Column: c.Name})
		}
		blocks = append(blocks, b)
	}
	return blocks, nil
}

func pathHasPrefix(path, prefix []string) bool {
	if len(path) < len(prefix) {
		return false
	}
	for i := range prefix {
		if path[i] != prefix[i] {
			return false
		}
	}
	return true
}

// collectDescendants gathers the chains of concrete types reachable from
// content, transitively, looking through aliases. Recursive types are
// expanded once.
func (tr *translator) collectDescendants(content xschema.Type, chain []string, out *[][]string, seen map[string]int) {
	switch t := content.(type) {
	case *xschema.Sequence:
		for _, it := range t.Items {
			tr.collectDescendants(it, chain, out, seen)
		}
	case *xschema.Repeat:
		tr.collectDescendants(t.Inner, chain, out, seen)
	case *xschema.Choice:
		for _, alt := range t.Alts {
			tr.collectDescendants(alt, chain, out, seen)
		}
	case *xschema.Element:
		tr.collectDescendants(t.Content, chain, out, seen)
	case *xschema.Wildcard:
		tr.collectDescendants(t.Content, chain, out, seen)
	case *xschema.Ref:
		if seen[t.Name] >= 1 {
			return
		}
		seen[t.Name]++
		defer func() { seen[t.Name]-- }()
		def, ok := tr.lookup(t.Name)
		if !ok {
			return
		}
		if pschema.IsAlias(def) {
			tr.collectDescendants(def, chain, out, seen)
			return
		}
		next := append(append([]string(nil), chain...), t.Name)
		*out = append(*out, next)
		tr.collectDescendants(def, next, out, seen)
	}
}
