// Package xquery implements the XQuery subset used by the paper's
// workloads (Appendix C): FLWR expressions with multiple FOR bindings,
// conjunctive WHERE clauses comparing paths to constants or other paths,
// and RETURN lists of paths, element constructors and nested FLWR
// expressions.
//
// Concrete syntax (keywords are case-insensitive):
//
//	FOR $v IN document("imdb")/imdb/show, $e IN $v/episode
//	WHERE $v/year = 1999 AND $e/guest_director = c4
//	RETURN $v/title, $v/year,
//	       <result> $v/aka FOR $p IN $v/review RETURN $p/nyt </result>
//
// Bare identifiers in comparisons (c1, c2, ...) are unbound parameters,
// as in the paper. `<tag>` immediately followed by a letter opens an
// element constructor; `<` followed by space or digit is the less-than
// operator.
//
// The Translate function binds paths against a physical schema and its
// relational catalog, producing the logical SQL of package sqlast:
// outlined steps become key/foreign-key joins, union-partitioned types
// expand into one block per partition, wildcard steps become tag-column
// filters, and whole-element returns expand into one block per reachable
// relation (publishing).
package xquery

import (
	"fmt"
	"strings"
)

// Path is a variable-rooted or document-rooted sequence of child steps.
type Path struct {
	// Var is the source variable; empty means the document root.
	Var   string
	Steps []string
}

func (p Path) String() string {
	base := "doc"
	if p.Var != "" {
		base = "$" + p.Var
	}
	if len(p.Steps) == 0 {
		return base
	}
	return base + "/" + strings.Join(p.Steps, "/")
}

// Binding is one FOR clause: the variable iterates over the nodes the
// path reaches.
type Binding struct {
	Var  string
	Path Path
}

// Operand is a comparison operand: a path or a literal.
type Operand struct {
	Path  *Path
	IsInt bool
	Int   int64
	Str   string
	// Param is a named unbound parameter (the paper's c1, c2...).
	Param string
}

func (o Operand) String() string {
	switch {
	case o.Path != nil:
		return o.Path.String()
	case o.Param != "":
		return o.Param
	case o.IsInt:
		return fmt.Sprintf("%d", o.Int)
	default:
		return "'" + o.Str + "'"
	}
}

// Comparison is one conjunct of a WHERE clause.
type Comparison struct {
	Left  Path
	Op    string // =, !=, <, <=, >, >=
	Right Operand
}

func (c Comparison) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// ReturnItem is a component of a RETURN clause: exactly one of the fields
// is set.
type ReturnItem struct {
	// Path returns the nodes (or value) the path reaches.
	Path *Path
	// Element wraps nested items in a constructed element.
	Element *ElementConstructor
	// Nested is an embedded FLWR expression.
	Nested *Query
}

// ElementConstructor is <tag> items </tag>.
type ElementConstructor struct {
	Tag   string
	Items []ReturnItem
}

// Query is a FLWR expression.
type Query struct {
	Name     string // label for reports (Q1, Q2, ...)
	Bindings []Binding
	Where    []Comparison
	Return   []ReturnItem
}

// String renders the query in the package's concrete syntax.
func (q *Query) String() string {
	var b strings.Builder
	if q.Name != "" {
		fmt.Fprintf(&b, "(: %s :) ", q.Name)
	}
	b.WriteString("FOR ")
	for i, bind := range q.Bindings {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%s IN %s", bind.Var, bind.Path)
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, c := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(c.String())
		}
	}
	b.WriteString(" RETURN ")
	writeItems(&b, q.Return)
	return b.String()
}

func writeItems(b *strings.Builder, items []ReturnItem) {
	for i, it := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Path != nil:
			b.WriteString(it.Path.String())
		case it.Element != nil:
			fmt.Fprintf(b, "<%s> ", it.Element.Tag)
			writeItems(b, it.Element.Items)
			fmt.Fprintf(b, " </%s>", it.Element.Tag)
		case it.Nested != nil:
			b.WriteString(it.Nested.String())
		}
	}
}

// Workload is a weighted set of queries (and, as an extension of the
// paper's future work, update operations), as in Section 2's W1/W2.
type Workload struct {
	Entries []WorkloadEntry
	Updates []UpdateEntry
}

// WorkloadEntry pairs a query with its relative weight.
type WorkloadEntry struct {
	Query  *Query
	Weight float64
}

// UpdateEntry pairs an update operation with its relative weight.
type UpdateEntry struct {
	Update *Update
	Weight float64
}

// Add appends a weighted query and returns the workload for chaining.
func (w *Workload) Add(q *Query, weight float64) *Workload {
	w.Entries = append(w.Entries, WorkloadEntry{Query: q, Weight: weight})
	return w
}

// AddUpdate appends a weighted update operation.
func (w *Workload) AddUpdate(u *Update, weight float64) *Workload {
	w.Updates = append(w.Updates, UpdateEntry{Update: u, Weight: weight})
	return w
}

// Copy returns a workload whose entry slices are independent of w:
// appending to either afterwards never disturbs the other. The queries
// and updates themselves are shared (immutable once parsed), so a copy
// digests identically to its original.
func (w *Workload) Copy() *Workload {
	return &Workload{
		Entries: append([]WorkloadEntry(nil), w.Entries...),
		Updates: append([]UpdateEntry(nil), w.Updates...),
	}
}

// TotalWeight sums the entry weights (queries and updates).
func (w *Workload) TotalWeight() float64 {
	total := 0.0
	for _, e := range w.Entries {
		total += e.Weight
	}
	for _, u := range w.Updates {
		total += u.Weight
	}
	return total
}
