package xquery_test

import (
	"testing"

	"legodb/internal/imdb"
	"legodb/internal/xquery"
)

// FuzzParseQuery drives the FLWR query parser with arbitrary inputs,
// mirroring FuzzParseSchema over the schema parser. Three guarantees
// are checked on every input the parser accepts:
//
//  1. no panic anywhere in parse → print → re-parse;
//  2. the printed form re-parses (String is a faithful serialization);
//  3. the re-parse prints identically — String is a fixed point, so the
//     rendered query is a stable identity for workload digests.
func FuzzParseQuery(f *testing.F) {
	// Every embedded workload query is a seed: the fuzzer starts from
	// the full concrete syntax the paper's workloads exercise (FOR/IN,
	// WHERE with parameters, nested FLWR, element constructors, paths).
	for _, name := range imdb.QueryNames() {
		f.Add(imdb.Query(name).String())
	}
	seeds := []string{
		`FOR $v IN imdb/show RETURN $v/title`,
		`FOR $v IN imdb/show WHERE $v/year = c1 RETURN $v/title, $v/year`,
		`FOR $v IN imdb/show, $r IN $v/reviews RETURN $r`,
		`FOR $v IN imdb/show
		 RETURN <result> $v/title
		   FOR $e IN $v/episodes WHERE $e/name = c2 RETURN $e/name
		 </result>`,
		// Near-miss inputs steer the fuzzer toward error paths.
		`FOR $v IN imdb/show RETURN`,
		`FOR v IN imdb/show RETURN $v`,
		`FOR $v IN RETURN $v`,
		`FOR $v IN imdb/show WHERE RETURN $v`,
		`FOR $v IN imdb/show RETURN <result> $v`,
		`FOR $v IN imdb/show RETURN $v trailing`,
		`RETURN $v`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := xquery.Parse(src)
		if err != nil {
			return // rejected input; only panics count as failures
		}
		printed := q.String()
		q2, err := xquery.Parse(printed)
		if err != nil {
			t.Fatalf("printed query does not re-parse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if again := q2.String(); again != printed {
			t.Fatalf("String not a fixed point across re-parse\ninput: %q\nprinted: %q\nre-printed: %q", src, printed, again)
		}
	})
}
