package experiments

import (
	"context"
	"fmt"

	"legodb/internal/core"
	"legodb/internal/imdb"
	"legodb/internal/xquery"
)

// AblationBeam compares the paper's greedy search (Algorithm 4.1) with
// the beam-search extension at several widths: final cost, levels, and
// the number of configurations evaluated. The paper's Section 7 suggests
// richer ("dynamic programming") search strategies; the question is
// whether greedy's single path leaves cost on the table.
func AblationBeam(ctx context.Context) (*Table, error) {
	t := &Table{
		Name:   "ablation-beam",
		Title:  "Greedy vs beam search (greedy-so starting point)",
		Header: []string{"workload", "search", "final cost", "vs greedy", "evaluations"},
		Notes:  "evaluations = configurations costed during the search",
	}
	for _, wl := range []struct {
		name string
		w    func() *xquery.Workload
	}{{"lookup", imdb.LookupWorkload}, {"publish", imdb.PublishWorkload}} {
		greedy, err := core.GreedySearch(ctx, imdb.Schema(), wl.w(), imdb.Stats(), searchOptions(core.GreedySO))
		if err != nil {
			return nil, err
		}
		gEvals := 0
		for _, it := range greedy.Trace {
			gEvals += it.Candidates
		}
		t.AddRow(wl.name, "greedy", f1(greedy.Best.Cost), "1.00", fmt.Sprintf("%d", gEvals))
		for _, width := range []int{2, 4} {
			beam, err := core.BeamSearch(ctx, imdb.Schema(), wl.w(), imdb.Stats(), core.BeamOptions{
				Options: searchOptions(core.GreedySO),
				Width:   width,
			})
			if err != nil {
				return nil, err
			}
			bEvals := 0
			for _, it := range beam.Trace {
				bEvals += it.Candidates
			}
			t.AddRow(wl.name, fmt.Sprintf("beam-%d", width),
				f1(beam.Best.Cost), f2(beam.Best.Cost/greedy.Best.Cost), fmt.Sprintf("%d", bEvals))
		}
	}
	return t, nil
}

// AblationUpdates demonstrates the update-workload extension (the
// paper's Section 7 future work): the same lookup workload is searched
// with increasing insert rates; as inserts dominate, the chosen
// configuration keeps fewer relations (fragmentation pays one seek and
// one index maintenance per relation per insert).
func AblationUpdates(ctx context.Context) (*Table, error) {
	t := &Table{
		Name:   "ablation-updates",
		Title:  "Effect of insert rate on the chosen configuration (lookup workload + INSERT imdb/show)",
		Header: []string{"insert weight", "final cost", "relations", "insert cost share"},
	}
	for _, weight := range []float64{0, 5, 20, 80} {
		w := imdb.LookupWorkload()
		if weight > 0 {
			w.AddUpdate(xquery.MustParseUpdate("INSERT imdb/show"), weight)
			w.AddUpdate(xquery.MustParseUpdate("INSERT imdb/actor"), weight)
		}
		res, err := core.GreedySearch(ctx, imdb.Schema(), w, imdb.Stats(), searchOptions(core.GreedySO))
		if err != nil {
			return nil, err
		}
		// Estimate the share of the weighted cost coming from updates by
		// re-costing the queries alone on the chosen schema.
		queriesOnly := imdb.LookupWorkload()
		qCost, err := core.GetPSchemaCostWith(res.Best.Schema, queriesOnly, 1, nil, costCache())
		if err != nil {
			return nil, err
		}
		totalW := w.TotalWeight()
		queryShare := qCost * queriesOnly.TotalWeight() / totalW
		share := 0.0
		if res.Best.Cost > 0 {
			share = 1 - queryShare/res.Best.Cost
		}
		t.AddRow(fmt.Sprintf("%.0f", weight), f1(res.Best.Cost),
			fmt.Sprintf("%d", len(res.Best.Schema.Names)), f2(share))
	}
	return t, nil
}
