package experiments

import (
	"context"
	"fmt"

	"legodb/internal/pschema"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// fig14Schema gives every show at least one alternate title (Aka{1,10},
// as in Figure 2(b)), the precondition of the repetition-split rewriting.
const fig14Schema = `
type IMDB = imdb [ Show{0,*} ]
type Show = show [ @type[ String ],
    title [ String ],
    year [ Integer ],
    Aka{1,10},
    ( box_office [ Integer ], video_sales [ Integer ]
    | seasons [ Integer ], description [ String ] ) ]
type Aka = aka[ String ]
`

// Fig14 reproduces Figure 14: the cost of a lookup query (alternate
// titles of a given show) and a publishing query (all information for
// all shows) under the all-inlined and the repetition-split
// configurations, as the total number of akas grows.
//
// The paper's observations to reproduce: the split configuration is
// cheaper for both queries; the gain is larger for the publishing query;
// and the gap narrows as the Aka table grows much larger than Show.
func Fig14(ctx context.Context) (*Table, error) {
	shows := 34798.0
	lookup := xquery.MustParse(`FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/aka`)
	lookup.Name = "lookup"
	publish := xquery.MustParse(`FOR $v IN imdb/show RETURN $v`)
	publish.Name = "publish"

	t := &Table{
		Name:   "fig14",
		Title:  "All-inlined vs repetition-split vs total akas",
		Header: []string{"total akas", "lookup/inlined", "lookup/split", "publish/inlined", "publish/split"},
		Notes:  "split = aka{1,10} rewritten to aka, Aka{0,9} with the first occurrence inlined",
	}
	for _, mult := range []float64{1, 2, 4, 8, 16} {
		totalAkas := shows * mult
		base := xschema.MustParseSchema(fig14Schema)
		stats := xstats.NewSet()
		stats.SetCount(1, "imdb")
		stats.SetCount(shows, "imdb", "show")
		stats.SetSize(50, "imdb", "show", "title")
		stats.SetBase(0, 0, int64(shows), "imdb", "show", "title")
		stats.SetBase(1800, 2100, 300, "imdb", "show", "year")
		stats.SetCount(totalAkas, "imdb", "show", "aka")
		stats.SetSize(40, "imdb", "show", "aka")
		stats.SetCount(7000.0/10500*shows, "imdb", "show", "box_office")
		stats.SetCount(3500.0/10500*shows, "imdb", "show", "seasons")
		stats.SetSize(120, "imdb", "show", "description")
		if err := xstats.Annotate(base, stats); err != nil {
			return nil, err
		}
		inlined, err := pschema.AllInlined(base)
		if err != nil {
			return nil, err
		}
		split, err := splitAndInlineAka(inlined)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%.0f", totalAkas)}
		for _, q := range []*xquery.Query{lookup, publish} {
			ci, err := costOn(inlined, q)
			if err != nil {
				return nil, err
			}
			cs, err := costOn(split, q)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(ci), f1(cs))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// splitAndInlineAka applies the repetition-split rewriting to the Aka
// repetition and inlines the resulting mandatory first occurrence.
func splitAndInlineAka(ps *xschema.Schema) (*xschema.Schema, error) {
	cands := transform.Candidates(ps, transform.Options{Kinds: []transform.Kind{transform.KindRepetitionSplit}})
	if len(cands) == 0 {
		return nil, fmt.Errorf("no repetition to split")
	}
	out, err := transform.Apply(ps, cands[0])
	if err != nil {
		return nil, err
	}
	inl := transform.Candidates(out, transform.Options{Kinds: []transform.Kind{transform.KindInline}})
	if len(inl) == 0 {
		return nil, fmt.Errorf("no inline candidate after split")
	}
	return transform.Apply(out, inl[0])
}
