package experiments

import (
	"context"
	"fmt"
	"time"

	"legodb/internal/colfile"
	"legodb/internal/core"
	"legodb/internal/engine"
	"legodb/internal/imdb"
	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/shred"
	"legodb/internal/sqlast"
	"legodb/internal/xquery"
	"legodb/internal/xstats"
)

// AblationThreshold quantifies the early-stopping optimization Section
// 5.2 suggests ("stop the search as soon as the improvement falls below
// a threshold"): iterations and final cost for several thresholds, on
// both paper workloads with greedy-so.
func AblationThreshold(ctx context.Context) (*Table, error) {
	t := &Table{
		Name:   "ablation-threshold",
		Title:  "Greedy early-stopping: threshold vs iterations and final cost (greedy-so)",
		Header: []string{"workload", "threshold", "iterations", "final cost", "vs converged"},
	}
	for _, wl := range []struct {
		name string
		w    *xquery.Workload
	}{{"lookup", imdb.LookupWorkload()}, {"publish", imdb.PublishWorkload()}} {
		converged := 0.0
		for _, threshold := range []float64{0, 0.01, 0.05, 0.2} {
			opts := searchOptions(core.GreedySO)
			opts.Threshold = threshold
			res, err := core.GreedySearch(ctx, imdb.Schema(), wl.w, imdb.Stats(), opts)
			if err != nil {
				return nil, err
			}
			if threshold == 0 {
				converged = res.Best.Cost
			}
			t.AddRow(wl.name, fmt.Sprintf("%.2f", threshold),
				fmt.Sprintf("%d", len(res.Trace)), f1(res.Best.Cost),
				f2(res.Best.Cost/converged))
		}
	}
	return t, nil
}

// AblationSIvsSO compares the two greedy starting points on both
// workloads: iterations to converge and final cost (the paper observes
// greedy-so converges faster on lookup, greedy-si on publish, and both
// reach similar costs).
func AblationSIvsSO(ctx context.Context) (*Table, error) {
	t := &Table{
		Name:   "ablation-si-vs-so",
		Title:  "greedy-si vs greedy-so: convergence and final costs",
		Header: []string{"workload", "strategy", "initial cost", "iterations", "final cost"},
	}
	for _, wl := range []struct {
		name string
		w    func() *xquery.Workload
	}{{"lookup", imdb.LookupWorkload}, {"publish", imdb.PublishWorkload}} {
		for _, st := range []core.Strategy{core.GreedySO, core.GreedySI} {
			res, err := core.GreedySearch(ctx, imdb.Schema(), wl.w(), imdb.Stats(), searchOptions(st))
			if err != nil {
				return nil, err
			}
			t.AddRow(wl.name, st.String(), f1(res.InitialCost),
				fmt.Sprintf("%d", len(res.Trace)), f1(res.Best.Cost))
		}
	}
	return t, nil
}

// costModelFixture is the shared setup of the cost-model validation
// ablations: generated IMDB data shredded into the map-1 (all-inlined)
// configuration, the workload queries, and their parameter bindings.
type costModelFixture struct {
	shows   int
	db      *engine.Database
	cat     *relational.Catalog
	opt     *optimizer.Optimizer
	queries []costModelQuery
	params  engine.Params
}

// freeze round-trips every fixture table through the colfile binary
// format and returns a second database serving the decoded chunks as
// frozen columnar bases — the persistent engine a reopened store
// snapshot runs on. Scans of it charge encoded chunk bytes instead of
// the catalog's estimated row widths, which is exactly where the
// measured cost (and therefore the est/meas calibration) shifts.
func (fx *costModelFixture) freeze() (*engine.Database, error) {
	frozen := engine.NewDatabase(fx.cat)
	for _, name := range fx.cat.Order {
		src := fx.db.Table(name)
		cols := make([]string, len(src.Def.Columns))
		for i, c := range src.Def.Columns {
			cols[i] = c.Name
		}
		data, err := colfile.Encode(&colfile.Table{
			Name:    name,
			Columns: cols,
			Rows:    src.LiveRows(),
			NextID:  src.PeekNextID(),
			Cols:    src.SnapshotColumns(),
		})
		if err != nil {
			return nil, fmt.Errorf("freeze %s: %w", name, err)
		}
		ct, err := colfile.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("freeze %s: %w", name, err)
		}
		base, err := engine.NewColumnBase(ct.Cols, float64(ct.DataBytes))
		if err != nil {
			return nil, fmt.Errorf("freeze %s: %w", name, err)
		}
		dst := frozen.Table(name)
		if err := dst.SetColumnBase(base); err != nil {
			return nil, fmt.Errorf("freeze %s: %w", name, err)
		}
		dst.SetNextID(ct.NextID)
	}
	return frozen, nil
}

// costModelQuery is one translated workload query of the fixture.
type costModelQuery struct {
	name string
	sql  *sqlast.Query
	est  float64
}

func newCostModelFixture() (*costModelFixture, error) {
	const shows = 400
	doc := imdb.Generate(imdb.GenOptions{Shows: shows, Seed: 17})
	s := imdb.Schema()
	stats := xstats.Collect(doc)
	if err := xstats.Annotate(s, stats); err != nil {
		return nil, err
	}
	ps, err := storageMap1(s)
	if err != nil {
		return nil, err
	}
	cat, err := relational.Map(ps)
	if err != nil {
		return nil, err
	}
	db := engine.NewDatabase(cat)
	if err := shred.New(ps, cat, db).Shred(doc); err != nil {
		return nil, err
	}
	opt := optimizer.New(cat)

	title := doc.Path("show", "title")[0].Text
	year := doc.Path("show", "year")[0].Text
	gd := ""
	if g := doc.Path("show", "episodes", "guest_director"); len(g) > 0 {
		gd = g[0].Text
	}
	fx := &costModelFixture{
		shows: shows,
		db:    db,
		cat:   cat,
		opt:   opt,
		params: engine.Params{
			"c1": engine.StrVal(title),
			"c2": engine.StrVal(title),
			"c4": engine.StrVal(gd),
		},
	}
	for _, q := range []struct {
		name string
		src  string
	}{
		{"lookup-title", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`},
		{"lookup-year", `FOR $v IN imdb/show WHERE $v/year = ` + year + ` RETURN $v/title`},
		{"episodes", `FOR $v IN imdb/show RETURN <r> $v/title FOR $e IN $v/episodes WHERE $e/guest_director = c4 RETURN $e/name </r>`},
		{"publish-shows", `FOR $v IN imdb/show RETURN $v`},
	} {
		parsed := xquery.MustParse(q.src)
		parsed.Name = q.name
		sq, err := xquery.Translate(parsed, ps, cat)
		if err != nil {
			return nil, err
		}
		est, err := opt.QueryCost(sq)
		if err != nil {
			return nil, err
		}
		fx.queries = append(fx.queries, costModelQuery{name: q.name, sql: sq, est: est.Cost})
	}
	return fx, nil
}

// costModelTimingIters is how many executions the wall-clock timing of
// measure averages over: the lookup queries finish in microseconds, so
// a single sample is dominated by scheduler noise.
const costModelTimingIters = 20

// measure executes one fixture query and converts the engine's counter
// deltas into cost units with the model's own constants; elapsed is the
// wall clock per execution, averaged over costModelTimingIters runs.
func (fx *costModelFixture) measure(q costModelQuery) (measured float64, elapsed time.Duration, err error) {
	m := fx.opt.Model
	before := fx.db.Stats
	start := time.Now()
	for i := 0; i < costModelTimingIters; i++ {
		if _, err := fx.db.Execute(q.sql, fx.params); err != nil {
			return 0, 0, err
		}
	}
	elapsed = time.Since(start) / costModelTimingIters
	d := fx.db.Stats
	d.BytesRead -= before.BytesRead
	d.TuplesRead -= before.TuplesRead
	d.Probes -= before.Probes
	d.Scans -= before.Scans
	measured = m.SeekCost*float64(d.Scans) +
		d.BytesRead/m.PageSize*m.PageIOCost +
		float64(d.TuplesRead)*m.CPUTupleCost +
		float64(d.Probes)*m.ProbeCost
	// The delta covers all timing iterations of identical work; report
	// the per-execution cost the estimates are compared against.
	return measured / costModelTimingIters, elapsed, nil
}

// AblationCostModel validates the cost model against the execution
// engine, in the spirit of the paper's SQL-Server comparison: generated
// IMDB data is shredded into the all-inlined configuration, the workload
// queries are executed, and the measured work (converted with the same
// cost constants) is compared with the optimizer's estimates. The claim
// to check is agreement in *ranking* and rough magnitude, not identical
// numbers.
func AblationCostModel(ctx context.Context) (*Table, error) {
	fx, err := newCostModelFixture()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "ablation-costmodel",
		Title:  fmt.Sprintf("Estimated vs engine-measured cost (all-inlined, %d shows)", fx.shows),
		Header: []string{"query", "estimated", "measured", "est/meas"},
		Notes:  "measured = seeks+pages+tuples+probes of the engine, weighted with the model's constants",
	}
	for _, q := range fx.queries {
		measured, _, err := fx.measure(q)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if measured > 0 {
			ratio = q.est / measured
		}
		t.AddRow(q.name, f1(q.est), f1(measured), f2(ratio))
	}
	return t, nil
}

// AblationExecModes re-validates the cost model against both executor
// implementations and both storage engines. The vectorized batch
// executor maintains the same Counters as the reference row-at-a-time
// path, so the measured cost — counter deltas weighted with the model's
// constants — must come out identical in both modes on either storage;
// what vectorization shifts is the wall clock per unit of measured
// work. Storage is the second axis: the heap rows the fixture shreds
// into, and the persistent engine (the same image frozen through the
// colfile binary format, as a reopened snapshot serves it). Persistent
// scans charge encoded chunk bytes instead of the catalog's estimated
// row widths, so the est/meas ratio — the cost-model calibration —
// shifts between the storage rows; EXPERIMENTS.md records the shift.
func AblationExecModes(ctx context.Context) (*Table, error) {
	fx, err := newCostModelFixture()
	if err != nil {
		return nil, err
	}
	frozen, err := fx.freeze()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "ablation-execmodes",
		Title:  fmt.Sprintf("Cost model vs executors x storages (all-inlined, %d shows)", fx.shows),
		Header: []string{"query", "storage", "estimated", "meas batch", "meas rows", "est/meas", "speedup"},
		Notes:  "meas batch and meas rows are counter deltas in cost units and must agree exactly per storage; est/meas shifts between heap and colfile because persistent scans charge encoded bytes; speedup is row-at-a-time wall clock over batch",
	}
	heap := fx.db
	for _, q := range fx.queries {
		for _, storage := range []struct {
			name string
			db   *engine.Database
		}{{"heap", heap}, {"colfile", frozen}} {
			fx.db = storage.db
			fx.db.Exec = engine.Options{}
			mb, eb, err := fx.measure(q)
			if err != nil {
				return nil, err
			}
			fx.db.Exec = engine.Options{RowAtATime: true}
			mr, er, err := fx.measure(q)
			if err != nil {
				return nil, err
			}
			if mb != mr {
				return nil, fmt.Errorf("ablation-execmodes: %s/%s: measured cost diverges between executors: batch=%v rows=%v",
					q.name, storage.name, mb, mr)
			}
			ratio, speedup := 0.0, 0.0
			if mb > 0 {
				ratio = q.est / mb
			}
			if eb > 0 {
				speedup = float64(er) / float64(eb)
			}
			t.AddRow(q.name, storage.name, f1(q.est), f1(mb), f1(mr), f2(ratio), f2(speedup))
			fx.db.Exec = engine.Options{}
		}
	}
	fx.db = heap
	return t, nil
}
