package experiments

import (
	"context"
	"fmt"

	"legodb/internal/core"
	"legodb/internal/engine"
	"legodb/internal/imdb"
	"legodb/internal/optimizer"
	"legodb/internal/relational"
	"legodb/internal/shred"
	"legodb/internal/xquery"
	"legodb/internal/xstats"
)

// AblationThreshold quantifies the early-stopping optimization Section
// 5.2 suggests ("stop the search as soon as the improvement falls below
// a threshold"): iterations and final cost for several thresholds, on
// both paper workloads with greedy-so.
func AblationThreshold(ctx context.Context) (*Table, error) {
	t := &Table{
		Name:   "ablation-threshold",
		Title:  "Greedy early-stopping: threshold vs iterations and final cost (greedy-so)",
		Header: []string{"workload", "threshold", "iterations", "final cost", "vs converged"},
	}
	for _, wl := range []struct {
		name string
		w    *xquery.Workload
	}{{"lookup", imdb.LookupWorkload()}, {"publish", imdb.PublishWorkload()}} {
		converged := 0.0
		for _, threshold := range []float64{0, 0.01, 0.05, 0.2} {
			opts := searchOptions(core.GreedySO)
			opts.Threshold = threshold
			res, err := core.GreedySearch(ctx, imdb.Schema(), wl.w, imdb.Stats(), opts)
			if err != nil {
				return nil, err
			}
			if threshold == 0 {
				converged = res.Best.Cost
			}
			t.AddRow(wl.name, fmt.Sprintf("%.2f", threshold),
				fmt.Sprintf("%d", len(res.Trace)), f1(res.Best.Cost),
				f2(res.Best.Cost/converged))
		}
	}
	return t, nil
}

// AblationSIvsSO compares the two greedy starting points on both
// workloads: iterations to converge and final cost (the paper observes
// greedy-so converges faster on lookup, greedy-si on publish, and both
// reach similar costs).
func AblationSIvsSO(ctx context.Context) (*Table, error) {
	t := &Table{
		Name:   "ablation-si-vs-so",
		Title:  "greedy-si vs greedy-so: convergence and final costs",
		Header: []string{"workload", "strategy", "initial cost", "iterations", "final cost"},
	}
	for _, wl := range []struct {
		name string
		w    func() *xquery.Workload
	}{{"lookup", imdb.LookupWorkload}, {"publish", imdb.PublishWorkload}} {
		for _, st := range []core.Strategy{core.GreedySO, core.GreedySI} {
			res, err := core.GreedySearch(ctx, imdb.Schema(), wl.w(), imdb.Stats(), searchOptions(st))
			if err != nil {
				return nil, err
			}
			t.AddRow(wl.name, st.String(), f1(res.InitialCost),
				fmt.Sprintf("%d", len(res.Trace)), f1(res.Best.Cost))
		}
	}
	return t, nil
}

// AblationCostModel validates the cost model against the execution
// engine, in the spirit of the paper's SQL-Server comparison: generated
// IMDB data is shredded into the all-inlined configuration, the workload
// queries are executed, and the measured work (converted with the same
// cost constants) is compared with the optimizer's estimates. The claim
// to check is agreement in *ranking* and rough magnitude, not identical
// numbers.
func AblationCostModel(ctx context.Context) (*Table, error) {
	const shows = 400
	doc := imdb.Generate(imdb.GenOptions{Shows: shows, Seed: 17})
	s := imdb.Schema()
	stats := xstats.Collect(doc)
	if err := xstats.Annotate(s, stats); err != nil {
		return nil, err
	}
	ps, err := storageMap1(s)
	if err != nil {
		return nil, err
	}
	cat, err := relational.Map(ps)
	if err != nil {
		return nil, err
	}
	db := engine.NewDatabase(cat)
	if err := shred.New(ps, cat, db).Shred(doc); err != nil {
		return nil, err
	}
	opt := optimizer.New(cat)

	title := doc.Path("show", "title")[0].Text
	year := doc.Path("show", "year")[0].Text
	gd := ""
	if g := doc.Path("show", "episodes", "guest_director"); len(g) > 0 {
		gd = g[0].Text
	}
	params := engine.Params{
		"c1": engine.StrVal(title),
		"c2": engine.StrVal(title),
		"c4": engine.StrVal(gd),
	}
	queries := []struct {
		name string
		src  string
	}{
		{"lookup-title", `FOR $v IN imdb/show WHERE $v/title = c1 RETURN $v/title, $v/year`},
		{"lookup-year", `FOR $v IN imdb/show WHERE $v/year = ` + year + ` RETURN $v/title`},
		{"episodes", `FOR $v IN imdb/show RETURN <r> $v/title FOR $e IN $v/episodes WHERE $e/guest_director = c4 RETURN $e/name </r>`},
		{"publish-shows", `FOR $v IN imdb/show RETURN $v`},
	}
	t := &Table{
		Name:   "ablation-costmodel",
		Title:  fmt.Sprintf("Estimated vs engine-measured cost (all-inlined, %d shows)", shows),
		Header: []string{"query", "estimated", "measured", "est/meas"},
		Notes:  "measured = seeks+pages+tuples+probes of the engine, weighted with the model's constants",
	}
	m := opt.Model
	for _, q := range queries {
		parsed := xquery.MustParse(q.src)
		parsed.Name = q.name
		sq, err := xquery.Translate(parsed, ps, cat)
		if err != nil {
			return nil, err
		}
		est, err := opt.QueryCost(sq)
		if err != nil {
			return nil, err
		}
		before := db.Stats
		if _, err := db.Execute(sq, params); err != nil {
			return nil, err
		}
		d := db.Stats
		d.BytesRead -= before.BytesRead
		d.TuplesRead -= before.TuplesRead
		d.Probes -= before.Probes
		d.Scans -= before.Scans
		measured := m.SeekCost*float64(d.Scans) +
			d.BytesRead/m.PageSize*m.PageIOCost +
			float64(d.TuplesRead)*m.CPUTupleCost +
			float64(d.Probes)*m.ProbeCost
		ratio := 0.0
		if measured > 0 {
			ratio = est.Cost / measured
		}
		t.AddRow(q.name, f1(est.Cost), f1(measured), f2(ratio))
	}
	return t, nil
}
