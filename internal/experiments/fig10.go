package experiments

import (
	"context"
	"fmt"

	"legodb/internal/core"
	"legodb/internal/imdb"
	"legodb/internal/xquery"
)

// Fig10 reproduces Figure 10: the estimated workload cost after each
// greedy iteration, for greedy-so (all outlined, inlining moves) and
// greedy-si (all inlined, outlining moves), on the lookup workload
// (Q8, Q9, Q11, Q12, Q13) and the publish workload (Q15, Q16, Q17).
//
// The paper's observations to reproduce: greedy-so starts much higher
// (many joins) on both workloads; greedy-so converges in fewer
// iterations on lookup, greedy-si on publish; both end at similar costs.
func Fig10(ctx context.Context) (*Table, error) {
	t := &Table{
		Name:   "fig10",
		Title:  "Cost at each greedy iteration",
		Header: []string{"iter", "lookup/greedy-so", "lookup/greedy-si", "publish/greedy-so", "publish/greedy-si"},
		Notes:  "iteration 0 is the initial configuration's cost",
	}
	type run struct {
		wl       *xquery.Workload
		strategy core.Strategy
	}
	runs := []run{
		{imdb.LookupWorkload(), core.GreedySO},
		{imdb.LookupWorkload(), core.GreedySI},
		{imdb.PublishWorkload(), core.GreedySO},
		{imdb.PublishWorkload(), core.GreedySI},
	}
	var traces [][]float64
	maxLen := 0
	for _, r := range runs {
		res, err := core.GreedySearch(ctx, imdb.Schema(), r.wl, imdb.Stats(), searchOptions(r.strategy))
		if err != nil {
			return nil, err
		}
		trace := []float64{res.InitialCost}
		for _, it := range res.Trace {
			trace = append(trace, it.Cost)
		}
		traces = append(traces, trace)
		if len(trace) > maxLen {
			maxLen = len(trace)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		for _, trace := range traces {
			if i < len(trace) {
				row = append(row, f1(trace[i]))
			} else {
				row = append(row, f1(trace[len(trace)-1])) // converged
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}
