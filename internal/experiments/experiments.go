// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the motivating cost table of Figure 6, the
// greedy-convergence curves of Figure 10, the workload-sensitivity sweep
// of Figure 11, the union-distribution comparison of Figure 13, the
// repetition-split sweep of Figure 14, and the wildcard costs of Table 2
// — plus ablations for the design choices DESIGN.md calls out.
//
// Each experiment returns a Table whose rows mirror what the paper
// reports. Absolute numbers are in this repository's cost units; the
// comparisons the paper draws (who wins, by roughly what factor, where
// crossovers fall) are the reproduced artifact. EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	Name   string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		b.WriteString(c)
	}
	b.WriteByte('\n')
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", t.Name, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	return b.String()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Runner produces one experiment. The context bounds its searches:
// cancellation or an expired deadline makes them return their anytime
// best-so-far rather than run to convergence.
type Runner func(ctx context.Context) (*Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig6":               Fig6,
	"fig10":              Fig10,
	"fig11":              Fig11,
	"fig13":              Fig13,
	"fig14":              Fig14,
	"tab2":               Table2,
	"ablation-threshold": AblationThreshold,
	"ablation-si-vs-so":  AblationSIvsSO,
	"ablation-costmodel": AblationCostModel,
	"ablation-execmodes": AblationExecModes,
	"ablation-beam":      AblationBeam,
	"ablation-updates":   AblationUpdates,
}

// Names lists experiment ids in a stable order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id under a background context.
func Run(name string) (*Table, error) {
	return RunContext(context.Background(), name)
}

// RunContext executes one experiment by id; ctx bounds its searches.
func RunContext(ctx context.Context, name string) (*Table, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return r(ctx)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
