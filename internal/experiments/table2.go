package experiments

import (
	"context"
	"fmt"

	"legodb/internal/xquery"
	"legodb/internal/xstats"
)

// Table2 reproduces Table 2: the cost of "find the NYTimes reviews for
// all shows produced in 1999" on the all-inlined configuration (a single
// reviews table filtered on its tag column) versus the
// wildcard-transformed configuration (a dedicated nyt_reviews table), for
// 10,000 and 100,000 total reviews and NYT percentages of 50, 25 and
// 12.5.
//
// The paper's observations to reproduce: the inlined cost is constant in
// the NYT percentage (the reviews table is scanned either way), while
// the wildcard-transformed cost shrinks proportionally with the
// nyt_reviews table; at 100,000 reviews the transformation wins by 2–5x.
func Table2(ctx context.Context) (*Table, error) {
	query := xquery.MustParse(`FOR $v IN imdb/show WHERE $v/year = 1999 RETURN $v/title, $v/reviews/nyt`)
	query.Name = "nyt-reviews-1999"

	t := &Table{
		Name:   "tab2",
		Title:  "All-inlined vs wildcard-transformed (NYT reviews of 1999 shows)",
		Header: []string{"total reviews", "NYT %", "inlined", "wild"},
		Notes:  "paper: 10k reviews {5.42 vs 6.3/5.1/4.4}; 100k reviews {48 vs 26.3/15/9.4}",
	}
	for _, total := range []float64{10000, 100000} {
		for _, pct := range []float64{50, 25, 12.5} {
			adjust := func(set *xstats.Set) {
				set.ScaleCounts(total/set.Count("imdb", "show", "reviews"), "imdb", "show", "reviews")
			}
			annotated, err := annotatedIMDB(adjust)
			if err != nil {
				return nil, err
			}
			inlined, err := storageMap1(annotated)
			if err != nil {
				return nil, err
			}
			wild, err := storageMap2(annotated, pct/100)
			if err != nil {
				return nil, err
			}
			ci, err := costOn(inlined, query)
			if err != nil {
				return nil, err
			}
			cw, err := costOn(wild, query)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.0f", total), fmt.Sprintf("%.1f", pct), f1(ci), f1(cw))
		}
	}
	return t, nil
}
