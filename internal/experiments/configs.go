package experiments

import (
	"context"
	"fmt"

	"legodb/internal/core"
	"legodb/internal/imdb"
	"legodb/internal/plan"
	"legodb/internal/pschema"
	"legodb/internal/transform"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
	"legodb/internal/xstats"
)

// sharedCache memoizes configuration costs across every experiment run
// in this process: the fig10/fig11 sweeps and the ablations re-search
// overlapping configuration spaces (the same workloads, the same
// greedy/beam trajectories), so later runs answer most costings from the
// cache instead of re-running the evaluator pipeline. Keys include the
// workload and cost-model digests, so experiments with different
// workloads never collide. Disable with EnableCache(false) (or
// cmd/experiments -nocache) to measure the uncached baseline.
var sharedCache = core.NewCostCache(1 << 16)

// cacheEnabled gates all memoization in this package (searches fall back
// to fully uncached evaluation when false, as the paper's prototype ran).
var cacheEnabled = true

// EnableCache switches the package-wide cost memoization on or off.
func EnableCache(on bool) { cacheEnabled = on }

// cacheRegistry, when enabled, backs the package's shared cache with a
// cross-engine CacheRegistry: every experiment attaches as one fleet
// engine, so the run exercises (and reports through) the same surface a
// multi-tenant service uses. Off (the default), experiments share the
// process-private sharedCache directly; costs and outputs are identical
// either way.
var cacheRegistry *core.CacheRegistry

// EnableRegistry routes all experiment costings through a cross-engine
// cache registry (cmd/experiments -registry).
func EnableRegistry(on bool) {
	if !on {
		cacheRegistry = nil
		return
	}
	cacheRegistry = core.NewCacheRegistry(1 << 16)
	sharedCache = cacheRegistry.Attach()
}

// RegistryEnabled reports whether a registry backs the shared cache.
func RegistryEnabled() bool { return cacheRegistry != nil }

// RegistryStats snapshots the fleet-wide registry counters (the zero
// value when -registry is off).
func RegistryStats() core.RegistryStats { return cacheRegistry.Stats() }

// AttachEngine registers one more fleet engine with the registry — each
// experiment run counts as a tenant in the fleet view. A no-op without
// -registry.
func AttachEngine() {
	if cacheRegistry != nil {
		cacheRegistry.Attach()
	}
}

// CacheStats snapshots the shared cache's hit/miss/eviction counters.
func CacheStats() core.CacheStats { return sharedCache.Stats() }

// MaxIterations, when positive, bounds every search's greedy loop /
// beam levels — used by CI smoke runs to keep wall-clock short.
var MaxIterations int

// incrementalEnabled gates the evaluator's incremental layers (delta
// re-mapping, per-query cost reuse, catalog caching). Off measures the
// full-pipeline baseline; results are identical either way.
var incrementalEnabled = true

// EnableIncremental switches incremental candidate evaluation on or off
// (cmd/experiments -noincremental).
func EnableIncremental(on bool) { incrementalEnabled = on }

// workerBound bounds the candidate-evaluation worker pool of every
// search (0 = GOMAXPROCS, 1 = sequential). Results are byte-identical
// at any bound — the worker-sweep determinism test in internal/core
// pins that — so the knob only trades wall clock for concurrency.
var workerBound int

// SetWorkers sets the per-search worker-pool bound
// (cmd/experiments -workers).
func SetWorkers(n int) { workerBound = n }

// sharingEnabled gates the logical-plan layer (internal/plan): off, every
// translated SPJ block is costed by the optimizer directly instead of
// structurally identical blocks sharing one costing. Results are
// byte-identical either way — the -noshare escape hatch exists to prove
// exactly that, and to measure the unshared baseline.
var sharingEnabled = true

// EnableSharing switches shared subplan costing on or off
// (cmd/experiments -noshare).
func EnableSharing(on bool) { sharingEnabled = on }

// PlanStats snapshots the shared block-costing memo's counters.
func PlanStats() plan.StoreStats { return sharedCache.BlockStats() }

// LoadCacheFile merges a cost-cache snapshot file into the shared
// cache, returning the number of entries added. A missing file is not
// an error (first run warms the cache that later runs load), and a
// corrupt file is quarantined to path+".corrupt" and reported in the
// returned warning — the runs continue with a cold cache.
func LoadCacheFile(path string) (n int, warning string, err error) {
	return sharedCache.LoadSnapshotFile(path)
}

// SaveCacheFile writes the shared cache's contents to a snapshot file
// (atomically, via a sibling temp file).
func SaveCacheFile(path string) error {
	return sharedCache.SaveSnapshotFile(path)
}

// searchOptions builds the core search options every experiment uses:
// the requested strategy plus the package-wide cache and iteration
// budget.
func searchOptions(strategy core.Strategy) core.Options {
	opts := core.Options{Strategy: strategy, MaxIterations: MaxIterations,
		Workers:            workerBound,
		DisableIncremental: !incrementalEnabled, DisableSharing: !sharingEnabled}
	if cacheEnabled {
		opts.Cache = sharedCache
	} else {
		opts.DisableCache = true
	}
	return opts
}

// costCache returns the cache plain costings should use (nil when
// disabled).
func costCache() *core.CostCache {
	if cacheEnabled {
		return sharedCache
	}
	return nil
}

// annotatedIMDB returns the IMDB schema annotated with (optionally
// rescaled) statistics.
func annotatedIMDB(adjust func(*xstats.Set)) (*xschema.Schema, error) {
	s := imdb.Schema()
	stats := imdb.Stats()
	if adjust != nil {
		adjust(stats)
	}
	if err := xstats.Annotate(s, stats); err != nil {
		return nil, err
	}
	return s, nil
}

// storageMap1 is Figure 4(a): everything inlined, unions flattened to
// nullable columns.
func storageMap1(annotated *xschema.Schema) (*xschema.Schema, error) {
	return pschema.AllInlined(annotated)
}

// storageMap2 is Figure 4(b): map 1 with the review wildcard partitioned
// into NYT reviews and the rest.
func storageMap2(annotated *xschema.Schema, nytFraction float64) (*xschema.Schema, error) {
	m1, err := storageMap1(annotated)
	if err != nil {
		return nil, err
	}
	cands := transform.Candidates(m1, transform.Options{
		Kinds:          []transform.Kind{transform.KindWildcardMaterialize},
		WildcardLabels: map[string]float64{"nyt": nytFraction},
	})
	for _, tr := range cands {
		if tr.Loc.Type == "Reviews" {
			return transform.Apply(m1, tr)
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("no wildcard to materialize in map 1")
	}
	return transform.Apply(m1, cands[0])
}

// storageMap3 is Figure 4(c): unions kept and distributed over show, the
// partition references inlined.
func storageMap3(annotated *xschema.Schema) (*xschema.Schema, error) {
	base, err := pschema.InitialInlined(annotated, pschema.InlineOptions{})
	if err != nil {
		return nil, err
	}
	cands := transform.Candidates(base, transform.Options{
		Kinds: []transform.Kind{transform.KindUnionDistribute},
	})
	if len(cands) == 0 {
		return nil, fmt.Errorf("no union to distribute")
	}
	out, err := transform.Apply(base, cands[0])
	if err != nil {
		return nil, err
	}
	// Inline the Movie/TV branch references inside the partitions.
	for guard := 0; guard < 100; guard++ {
		inl := transform.Candidates(out, transform.Options{Kinds: []transform.Kind{transform.KindInline}})
		if len(inl) == 0 {
			break
		}
		out, err = transform.Apply(out, inl[0])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// costOn evaluates a single query's estimated cost on a configuration.
func costOn(ps *xschema.Schema, q *xquery.Query) (float64, error) {
	w := &xquery.Workload{}
	w.Add(q, 1)
	return workloadCostOn(ps, w)
}

// workloadCostOn evaluates a workload's weighted cost on a configuration,
// honoring the package-wide cache/sharing switches.
func workloadCostOn(ps *xschema.Schema, w *xquery.Workload) (float64, error) {
	e := &core.Evaluator{Workload: w, RootCount: 1, Cache: costCache(),
		DisableSharing: !sharingEnabled}
	cfg, _, err := e.EvaluateCached(context.Background(), ps)
	if err != nil {
		return 0, err
	}
	return cfg.Cost, nil
}
