package experiments

import (
	"context"
	"fmt"

	"legodb/internal/core"
	"legodb/internal/imdb"
	"legodb/internal/xschema"
)

// Fig11 reproduces Figure 11: sensitivity of fixed configurations to
// workload variation. Configurations C[0.25], C[0.50], C[0.75] are
// obtained by searching with lookup:publish ratios k = 0.25, 0.50, 0.75;
// each (plus ALL-INLINED) is then evaluated across the whole spectrum
// k ∈ {0, 0.1, ..., 1}, against the OPT curve (a fresh search per point).
//
// The paper's observations to reproduce: C[0.25] tracks OPT on the
// publish-heavy side and C[0.75] on the lookup-heavy side, the two cross
// at a small angle mid-spectrum, and ALL-INLINED is 2–5x worse than OPT
// over much of the spectrum.
func Fig11(ctx context.Context) (*Table, error) {
	search := func(k float64) (*xschema.Schema, error) {
		res, err := core.GreedySearch(ctx, imdb.Schema(), imdb.MixedWorkload(k), imdb.Stats(),
			searchOptions(core.GreedySI))
		if err != nil {
			return nil, err
		}
		return res.Best.Schema, nil
	}
	c25, err := search(0.25)
	if err != nil {
		return nil, err
	}
	c50, err := search(0.50)
	if err != nil {
		return nil, err
	}
	c75, err := search(0.75)
	if err != nil {
		return nil, err
	}
	annotated, err := annotatedIMDB(nil)
	if err != nil {
		return nil, err
	}
	allInlined, err := storageMap1(annotated)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Name:   "fig11",
		Title:  "Sensitivity to variations in the workload (cost per workload mix k = lookup fraction)",
		Header: []string{"k", "C[0.25]", "C[0.50]", "C[0.75]", "ALL-INLINED", "OPT"},
		Notes:  "OPT re-runs the search at each k (not a fixed schema)",
	}
	for k := 0.0; k <= 1.0001; k += 0.1 {
		w := imdb.MixedWorkload(k)
		row := []string{fmt.Sprintf("%.1f", k)}
		for _, cfg := range []*xschema.Schema{c25, c50, c75, allInlined} {
			c, err := workloadCostOn(cfg, w)
			if err != nil {
				return nil, err
			}
			row = append(row, f1(c))
		}
		opt, err := search(k)
		if err != nil {
			return nil, err
		}
		oc, err := workloadCostOn(opt, w)
		if err != nil {
			return nil, err
		}
		row = append(row, f1(oc))
		t.AddRow(row...)
	}
	return t, nil
}
