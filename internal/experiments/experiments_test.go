package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func run(t *testing.T, name string) *Table {
	t.Helper()
	tbl, err := Run(name)
	if err != nil {
		t.Fatalf("Run(%s): %v", name, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", name)
	}
	t.Logf("\n%s", tbl)
	return tbl
}

func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tbl.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, tbl.Rows[row][col])
	}
	return v
}

// TestFig6Shape checks the qualitative claims of Figure 6: map 3 wins on
// the lookup-style queries Q3/Q4 and on workload W2; no configuration is
// dominated for every query.
func TestFig6Shape(t *testing.T) {
	tbl := run(t, "fig6")
	rows := map[string]int{}
	for i, r := range tbl.Rows {
		rows[r[0]] = i
	}
	// Q3 (description lookup): map3 must be dramatically cheaper.
	if v := cell(t, tbl, rows["Q3"], 3); v > 0.6 {
		t.Errorf("fig6 Q3 map3 = %.2f, want well below 1 (paper: 0.17)", v)
	}
	// Q4 (episodes by guest director): map3 cheaper (paper: 0.40; our
	// optimizer's probe-up plans narrow the baseline's disadvantage).
	if v := cell(t, tbl, rows["Q4"], 3); v >= 1 {
		t.Errorf("fig6 Q4 map3 = %.2f, want below 1 (paper: 0.40)", v)
	}
	// W2 (lookup-heavy): map3 wins.
	if v := cell(t, tbl, rows["W2"], 3); v >= 1 {
		t.Errorf("fig6 W2 map3 = %.2f, want < 1 (paper: 0.40)", v)
	}
	// Q1 (nyt reviews): map2 must beat map1.
	if v := cell(t, tbl, rows["Q1"], 2); v >= 1 {
		t.Errorf("fig6 Q1 map2 = %.2f, want < 1 (paper: 0.83)", v)
	}
}

// TestFig10Shape: greedy-so starts far above greedy-si on both workloads
// and both strategies descend monotonically.
func TestFig10Shape(t *testing.T) {
	tbl := run(t, "fig10")
	first := tbl.Rows[0]
	soLookup := mustFloat(t, first[1])
	siLookup := mustFloat(t, first[2])
	soPublish := mustFloat(t, first[3])
	siPublish := mustFloat(t, first[4])
	if soLookup <= siLookup {
		t.Errorf("greedy-so initial lookup cost %.1f should exceed greedy-si %.1f", soLookup, siLookup)
	}
	if soPublish <= siPublish {
		t.Errorf("greedy-so initial publish cost %.1f should exceed greedy-si %.1f", soPublish, siPublish)
	}
	for col := 1; col <= 4; col++ {
		prev := mustFloat(t, tbl.Rows[0][col])
		for r := 1; r < len(tbl.Rows); r++ {
			cur := mustFloat(t, tbl.Rows[r][col])
			if cur > prev+1e-9 {
				t.Errorf("fig10 column %d not monotone at row %d: %.1f -> %.1f", col, r, prev, cur)
			}
			prev = cur
		}
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not numeric: %q", s)
	}
	return v
}

// TestFig13Shape: the union-transformed configuration is cheaper for the
// Figure 12 queries. Q13 is exempt: its six-way join is duplicated per
// partition by this repository's translator, where the paper's
// multi-query optimizer factors the union (deviation recorded in
// EXPERIMENTS.md).
func TestFig13Shape(t *testing.T) {
	tbl := run(t, "fig13")
	for i, row := range tbl.Rows {
		if row[0] == "Q13" {
			continue
		}
		pct := cell(t, tbl, i, 3)
		if pct >= 100 {
			t.Errorf("fig13 %s: union-transformed at %.1f%% of all-inlined, want < 100%%", row[0], pct)
		}
	}
}

// TestFig14Shape: split wins everywhere; the publish-side gap narrows as
// akas grow.
func TestFig14Shape(t *testing.T) {
	tbl := run(t, "fig14")
	for i := range tbl.Rows {
		li, ls := cell(t, tbl, i, 1), cell(t, tbl, i, 2)
		pi, ps := cell(t, tbl, i, 3), cell(t, tbl, i, 4)
		if ls > li {
			t.Errorf("fig14 row %d: split lookup %.1f > inlined %.1f", i, ls, li)
		}
		if ps > pi {
			t.Errorf("fig14 row %d: split publish %.1f > inlined %.1f", i, ps, pi)
		}
	}
	firstGap := cell(t, tbl, 0, 3) / cell(t, tbl, 0, 4)
	lastGap := cell(t, tbl, len(tbl.Rows)-1, 3) / cell(t, tbl, len(tbl.Rows)-1, 4)
	if lastGap > firstGap {
		t.Errorf("fig14: publish gap should narrow as akas grow (%.2fx -> %.2fx)", firstGap, lastGap)
	}
}

// TestTable2Shape: inlined cost constant in NYT%, wild cost decreasing;
// wild wins clearly at 100k reviews.
func TestTable2Shape(t *testing.T) {
	tbl := run(t, "tab2")
	// Rows 0-2: 10k reviews; rows 3-5: 100k.
	for _, base := range []int{0, 3} {
		i0 := cell(t, tbl, base, 2)
		for r := base + 1; r < base+3; r++ {
			if v := cell(t, tbl, r, 2); v < i0*0.95 || v > i0*1.05 {
				t.Errorf("tab2 inlined cost should be constant in NYT%%: %.1f vs %.1f", i0, v)
			}
		}
		w0, w1, w2 := cell(t, tbl, base, 3), cell(t, tbl, base+1, 3), cell(t, tbl, base+2, 3)
		if !(w0 > w1 && w1 > w2) {
			t.Errorf("tab2 wild cost should fall with NYT%%: %.1f, %.1f, %.1f", w0, w1, w2)
		}
	}
	// At 100k reviews and 12.5%, wild wins by a wide margin.
	if inl, wild := cell(t, tbl, 5, 2), cell(t, tbl, 5, 3); wild >= inl {
		t.Errorf("tab2 100k/12.5%%: wild %.1f should beat inlined %.1f", wild, inl)
	}
}

func TestAblationThreshold(t *testing.T) {
	tbl := run(t, "ablation-threshold")
	// Larger thresholds never take more iterations.
	for base := 0; base < len(tbl.Rows); base += 4 {
		prev := cell(t, tbl, base, 2)
		for r := base + 1; r < base+4; r++ {
			cur := cell(t, tbl, r, 2)
			if cur > prev {
				t.Errorf("threshold increased iterations at row %d", r)
			}
			prev = cur
		}
	}
}

func TestAblationSIvsSO(t *testing.T) {
	tbl := run(t, "ablation-si-vs-so")
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationCostModel(t *testing.T) {
	tbl := run(t, "ablation-costmodel")
	// Estimates and measurements agree within an order of magnitude, and
	// the most expensive query by estimate is also the most expensive by
	// measurement.
	maxEstRow, maxMeasRow := 0, 0
	for i := range tbl.Rows {
		ratio := cell(t, tbl, i, 3)
		if ratio < 0.05 || ratio > 20 {
			t.Errorf("cost model off by more than 20x on %s: ratio %.2f", tbl.Rows[i][0], ratio)
		}
		if cell(t, tbl, i, 1) > cell(t, tbl, maxEstRow, 1) {
			maxEstRow = i
		}
		if cell(t, tbl, i, 2) > cell(t, tbl, maxMeasRow, 2) {
			maxMeasRow = i
		}
	}
	if maxEstRow != maxMeasRow {
		t.Errorf("estimate and measurement disagree on the most expensive query: %s vs %s",
			tbl.Rows[maxEstRow][0], tbl.Rows[maxMeasRow][0])
	}
}

func TestAblationExecModes(t *testing.T) {
	tbl := run(t, "ablation-execmodes")
	// 4 queries x 2 storages (heap rows, colfile-frozen persistent image).
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	storages := map[string]int{}
	for i := range tbl.Rows {
		label := tbl.Rows[i][0] + "/" + tbl.Rows[i][1]
		storages[tbl.Rows[i][1]]++
		// The batch executor maintains the reference path's counters, so
		// the measured costs must match and the model's calibration (the
		// est/meas ratio) is unchanged by vectorization.
		if batch, rows := tbl.Rows[i][3], tbl.Rows[i][4]; batch != rows {
			t.Errorf("%s: measured cost diverges: batch=%s rows=%s", label, batch, rows)
		}
		if ratio := cell(t, tbl, i, 5); ratio < 0.05 || ratio > 20 {
			t.Errorf("cost model off by more than 20x on %s: ratio %.2f", label, ratio)
		}
	}
	if storages["heap"] != 4 || storages["colfile"] != 4 {
		t.Errorf("storage rows = %v, want 4 heap + 4 colfile", storages)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 12 {
		t.Fatalf("names = %v", names)
	}
}

func TestAblationBeam(t *testing.T) {
	tbl := run(t, "ablation-beam")
	// Beam never ends worse than greedy, and evaluates at least as many
	// configurations.
	for i, row := range tbl.Rows {
		if row[1] == "greedy" {
			continue
		}
		if ratio := cell(t, tbl, i, 3); ratio > 1.0001 {
			t.Errorf("%s %s worse than greedy: ratio %.3f", row[0], row[1], ratio)
		}
	}
}

func TestAblationUpdates(t *testing.T) {
	tbl := run(t, "ablation-updates")
	// Relations kept must be non-increasing as the insert rate grows.
	prev := cell(t, tbl, 0, 2)
	for i := 1; i < len(tbl.Rows); i++ {
		cur := cell(t, tbl, i, 2)
		if cur > prev {
			t.Errorf("row %d: relations grew with insert rate (%.0f -> %.0f)", i, prev, cur)
		}
		prev = cur
	}
}

func TestTableFormats(t *testing.T) {
	tbl := &Table{
		Name:   "x",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  "n",
	}
	tbl.AddRow("1", "has,comma")
	csv := tbl.CSV()
	if !strings.Contains(csv, "\"has,comma\"") {
		t.Fatalf("CSV quoting broken: %q", csv)
	}
	md := tbl.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "*n*") {
		t.Fatalf("Markdown = %q", md)
	}
}
