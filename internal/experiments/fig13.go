package experiments

import (
	"context"
	"legodb/internal/imdb"
)

// Fig13 reproduces Figure 13: the cost of the union-transformed
// configuration (Figure 4(c), Show split into movie/TV partitions) as a
// percentage of the all-inlined configuration (Figure 4(a)), for the
// queries of Figure 12: Q4–Q7, Q13, Q16, Q19.
//
// The paper's observation to reproduce: the union-transformed
// configuration is cheaper for every one of these queries — dramatically
// so for queries touching one branch only (Q4 on description, Q7 on
// episodes), and still cheaper for queries touching both branches (Q6),
// because each partition is smaller and narrower.
func Fig13(ctx context.Context) (*Table, error) {
	annotated, err := annotatedIMDB(nil)
	if err != nil {
		return nil, err
	}
	m1, err := storageMap1(annotated)
	if err != nil {
		return nil, err
	}
	m3, err := storageMap3(annotated)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:   "fig13",
		Title:  "Union-transformed cost as % of all-inlined",
		Header: []string{"query", "all-inlined", "union-transformed", "percent"},
		Notes: "queries from Figure 12 (Appendix C numbering); Q13's six-way join is " +
			"duplicated per partition by this translator (the paper's MQO optimizer factors it)",
	}
	for _, name := range []string{"Q4", "Q5", "Q6", "Q7", "Q13", "Q16", "Q19"} {
		q := imdb.Query(name)
		base, err := costOn(m1, q)
		if err != nil {
			return nil, err
		}
		dist, err := costOn(m3, q)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, f1(base), f1(dist), f1(100*dist/base)+"%")
	}
	return t, nil
}
