package experiments

import (
	"context"
	"legodb/internal/imdb"
	"legodb/internal/xquery"
	"legodb/internal/xschema"
)

// Fig6 reproduces Figure 6: estimated costs of the Figure 5 queries
// (Q1–Q4) and the workloads W1/W2 under the three storage mappings of
// Figure 4, normalized by storage map 1 (all-inlined).
//
// Paper values for reference:
//
//	      Map1  Map2  Map3
//	Q1    1.00  0.83  1.27
//	Q2    1.00  0.50  0.48
//	Q3    1.00  1.00  0.17
//	Q4    1.00  1.19  0.40
//	W1    1.00  0.75  0.75
//	W2    1.00  1.01  0.40
func Fig6(ctx context.Context) (*Table, error) {
	annotated, err := annotatedIMDB(nil)
	if err != nil {
		return nil, err
	}
	m1, err := storageMap1(annotated)
	if err != nil {
		return nil, err
	}
	m2, err := storageMap2(annotated, 0.25)
	if err != nil {
		return nil, err
	}
	m3, err := storageMap3(annotated)
	if err != nil {
		return nil, err
	}
	maps := []*xschema.Schema{m1, m2, m3}

	t := &Table{
		Name:   "fig6",
		Title:  "Estimated costs for queries and workloads (normalized by storage map 1)",
		Header: []string{"", "Map1(4a)", "Map2(4b)", "Map3(4c)"},
		Notes:  "Q1–Q4 are the Figure 5 queries; W1={.4,.4,.1,.1}, W2={.1,.1,.4,.4}",
	}
	queries := []struct {
		label string
		name  string
	}{
		{"Q1", "F1"}, {"Q2", "F2"}, {"Q3", "F3"}, {"Q4", "F4"},
	}
	for _, q := range queries {
		base := 0.0
		row := []string{q.label}
		for i, m := range maps {
			c, err := costOn(m, imdb.Query(q.name))
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = c
			}
			row = append(row, f2(c/base))
		}
		t.AddRow(row...)
	}
	for _, w := range []struct {
		label string
		wl    *xquery.Workload
	}{{"W1", imdb.W1()}, {"W2", imdb.W2()}} {
		base := 0.0
		row := []string{w.label}
		for i, m := range maps {
			c, err := workloadCostOn(m, w.wl)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base = c
			}
			row = append(row, f2(c/base))
		}
		t.AddRow(row...)
	}
	return t, nil
}
