package engine

import (
	"testing"

	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xschema"
)

// The engine's first microbenchmarks: the three physical shapes the
// executor runs (filtered scan, index nested-loop through a key, hash
// join on data columns), each under both implementations, so the
// vectorization speedup is measured rather than asserted. cmd/bench's
// engine-exec scenario reports the same comparison on the IMDB workload
// shapes into BENCH_search.json.

// benchDB builds R (nR rows) with children A (nA rows) and B (nB rows);
// A.x and B.y cycle through `values` distinct integers, A.parent_R
// spreads across the R rows.
func benchDB(tb testing.TB, nR, nA, nB, values int) *Database {
	tb.Helper()
	s := xschema.MustParseSchema(`
type R = r[ A*<#3>, B*<#3> ]
type A = a[ x[ Integer ] ]
type B = b[ y[ Integer ] ]`)
	cat, err := relational.Map(s)
	if err != nil {
		tb.Fatal(err)
	}
	db := NewDatabase(cat)
	r := db.Table("R")
	for i := 0; i < nR; i++ {
		row := make(Row, len(r.Def.Columns))
		row[r.ColumnIndex("R_id")] = IntVal(r.NextID())
		if err := r.Insert(row); err != nil {
			tb.Fatal(err)
		}
	}
	for _, spec := range []struct {
		table, col string
		n          int
	}{{"A", "x", nA}, {"B", "y", nB}} {
		t := db.Table(spec.table)
		for i := 0; i < spec.n; i++ {
			row := make(Row, len(t.Def.Columns))
			row[t.ColumnIndex(spec.table+"_id")] = IntVal(t.NextID())
			row[t.ColumnIndex(spec.col)] = IntVal(int64(i % values))
			row[t.ColumnIndex("parent_R")] = IntVal(int64(i%nR) + 1)
			if err := t.Insert(row); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return db
}

func scanBlock() *sqlast.Block {
	b := &sqlast.Block{}
	b.AddTable("A", "a")
	b.Filters = []sqlast.Filter{{
		Col:   sqlast.ColumnRef{Alias: "a", Column: "x"},
		Op:    sqlast.OpGe,
		Value: sqlast.Literal{IsInt: true, Int: 500},
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}}
	return b
}

func inlBlock() *sqlast.Block {
	b := &sqlast.Block{}
	b.AddTable("A", "a")
	b.AddTable("R", "r")
	b.Joins = []sqlast.Join{{
		Left:  sqlast.ColumnRef{Alias: "a", Column: "parent_R"},
		Right: sqlast.ColumnRef{Alias: "r", Column: "R_id"},
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}, {Alias: "r", Column: "R_id"}}
	return b
}

func hashJoinBlock() *sqlast.Block {
	b := &sqlast.Block{}
	b.AddTable("A", "a")
	b.AddTable("B", "b")
	right := sqlast.ColumnRef{Alias: "b", Column: "y"}
	b.Filters = []sqlast.Filter{{
		Col: sqlast.ColumnRef{Alias: "a", Column: "x"}, Op: sqlast.OpEq, RightCol: &right,
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}, {Alias: "b", Column: "B_id"}}
	return b
}

func benchBlock(b *testing.B, db *Database, block *sqlast.Block) {
	for _, mode := range []struct {
		name string
		opts Options
	}{{"batch", Options{}}, {"rows", Options{RowAtATime: true}}} {
		b.Run(mode.name, func(b *testing.B) {
			db.Exec = mode.opts
			rows := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rs, err := db.ExecuteBlock(block, nil)
				if err != nil {
					b.Fatal(err)
				}
				rows = len(rs.Rows)
			}
			b.ReportMetric(float64(rows), "rows/op")
		})
	}
}

func BenchmarkExecuteBlockScan(b *testing.B) {
	db := benchDB(b, 16, 50000, 0, 1000)
	benchBlock(b, db, scanBlock())
}

func BenchmarkExecuteBlockINL(b *testing.B) {
	db := benchDB(b, 64, 20000, 0, 1000)
	benchBlock(b, db, inlBlock())
}

func BenchmarkExecuteBlockHashJoin(b *testing.B) {
	db := benchDB(b, 16, 10000, 10000, 5000)
	benchBlock(b, db, hashJoinBlock())
}
