package engine

import (
	"fmt"
	"math"
)

// Columnar base storage: a Table can carry a frozen, column-chunked base
// image — the decoded form of a colfile snapshot — underneath its mutable
// heap rows. Row positions are global: positions [0, base.Rows()) live in
// the chunks, positions from base.Rows() up index t.Rows. Scans gather
// chunk storage straight into Vectors (no Row materialization), inserts
// append to the heap tail exactly as before, and tombstones work on
// global positions. A table with no base behaves byte-for-byte as the
// pure heap table did.
//
// The base also carries its encoded size, so the IO counters charge what
// a scan of the persistent image actually reads — encoded chunk bytes —
// rather than the catalog's estimated row width. Both executors use the
// same accessors, so their Counters stay bit-identical (invariant: the
// executor mode is invisible).

// ColumnChunk is one decoded column chunk of up to BatchSize rows:
// typed storage (int64 or string) plus a null bitmap, with a boxed
// fallback for columns that mix kinds. At most one of Ints, Strs, Vals
// is non-nil; all nil means every row in the chunk is NULL.
type ColumnChunk struct {
	// N is the number of rows in the chunk (full chunks have BatchSize;
	// only a column's last chunk may be shorter).
	N int
	// Nulls is the null bitmap (bit set = NULL); nil when no row is NULL.
	Nulls []uint64
	Ints  []int64
	Strs  []string
	Vals  []Value
}

// IsNull reports whether row i of the chunk is NULL.
func (c *ColumnChunk) IsNull(i int) bool {
	return c.Nulls != nil && c.Nulls[i>>6]&(1<<(i&63)) != 0
}

// Value reboxes row i of the chunk.
func (c *ColumnChunk) Value(i int) Value {
	if c.IsNull(i) {
		return Null
	}
	switch {
	case c.Ints != nil:
		return Value{Kind: IntValue, Int: c.Ints[i]}
	case c.Strs != nil:
		return Value{Kind: StrValue, Str: c.Strs[i]}
	case c.Vals != nil:
		return c.Vals[i]
	default:
		return Null
	}
}

// BuildColumnChunks packs a column's values into chunks of BatchSize
// rows, detecting the typed encoding per chunk.
func BuildColumnChunks(vals []Value) []ColumnChunk {
	var chunks []ColumnChunk
	for base := 0; base < len(vals); base += BatchSize {
		end := min(base+BatchSize, len(vals))
		chunks = append(chunks, buildChunk(vals[base:end]))
	}
	return chunks
}

func buildChunk(vals []Value) ColumnChunk {
	c := ColumnChunk{N: len(vals)}
	kind := NullValue
	mixed := false
	nulls := 0
	for _, v := range vals {
		switch {
		case v.Kind == NullValue:
			nulls++
		case kind == NullValue:
			kind = v.Kind
		case v.Kind != kind:
			mixed = true
		}
	}
	if nulls > 0 {
		c.Nulls = make([]uint64, (len(vals)+63)/64)
		for i, v := range vals {
			if v.Kind == NullValue {
				c.Nulls[i>>6] |= 1 << (i & 63)
			}
		}
	}
	switch {
	case mixed:
		c.Vals = make([]Value, len(vals))
		copy(c.Vals, vals)
	case kind == IntValue:
		c.Ints = make([]int64, len(vals))
		for i, v := range vals {
			c.Ints[i] = v.Int
		}
	case kind == StrValue:
		c.Strs = make([]string, len(vals))
		for i, v := range vals {
			c.Strs[i] = v.Str
		}
	}
	return c
}

// ColumnBase is the frozen columnar image under a table: one chunk
// sequence per column, all columns the same length.
type ColumnBase struct {
	rows int
	cols [][]ColumnChunk
	// encodedBytes is the on-disk size of the chunk payloads this base
	// was decoded from; scans charge it as BytesRead.
	encodedBytes float64
	// rowBytes is the average encoded row width (encodedBytes / rows),
	// charged per probed base row.
	rowBytes float64
}

// NewColumnBase validates and freezes a chunked column set:
// every column must hold the same number of rows and chunk uniformly
// (full BatchSize chunks, short chunk only last). encodedBytes is the
// on-disk size of the image, used for IO accounting; pass the in-memory
// estimate if the chunks never lived on disk.
func NewColumnBase(cols [][]ColumnChunk, encodedBytes float64) (*ColumnBase, error) {
	rows := -1
	for ci, chunks := range cols {
		n := 0
		for k := range chunks {
			c := &chunks[k]
			if c.N <= 0 || c.N > BatchSize {
				return nil, fmt.Errorf("engine: column %d chunk %d has %d rows (batch size %d)", ci, k, c.N, BatchSize)
			}
			if c.N != BatchSize && k != len(chunks)-1 {
				return nil, fmt.Errorf("engine: column %d chunk %d is short (%d rows) but not last", ci, k, c.N)
			}
			if err := checkChunkStorage(c); err != nil {
				return nil, fmt.Errorf("engine: column %d chunk %d: %w", ci, k, err)
			}
			n += c.N
		}
		if rows < 0 {
			rows = n
		} else if n != rows {
			return nil, fmt.Errorf("engine: column %d has %d rows, column 0 has %d", ci, n, rows)
		}
	}
	if rows < 0 {
		rows = 0
	}
	b := &ColumnBase{rows: rows, cols: cols, encodedBytes: encodedBytes}
	if rows > 0 {
		// Whole bytes per row: integer-valued charges keep counter
		// accumulation exact, so the batch and row executors stay
		// bit-identical no matter what order they add in.
		b.rowBytes = math.Round(encodedBytes / float64(rows))
	}
	return b, nil
}

func checkChunkStorage(c *ColumnChunk) error {
	if c.Nulls != nil && len(c.Nulls) != (c.N+63)/64 {
		return fmt.Errorf("null bitmap has %d words for %d rows", len(c.Nulls), c.N)
	}
	stores := 0
	for _, n := range []int{len(c.Ints), len(c.Strs), len(c.Vals)} {
		if n > 0 {
			stores++
			if n != c.N {
				return fmt.Errorf("storage has %d values for %d rows", n, c.N)
			}
		}
	}
	if stores > 1 {
		return fmt.Errorf("chunk has more than one storage encoding")
	}
	return nil
}

// Rows returns the number of rows in the base image.
func (b *ColumnBase) Rows() int { return b.rows }

// EncodedBytes returns the on-disk size the base was decoded from.
func (b *ColumnBase) EncodedBytes() float64 { return b.encodedBytes }

// Columns returns the chunk sequences (shared, callers must not mutate).
func (b *ColumnBase) Columns() [][]ColumnChunk { return b.cols }

// value reads one cell of the base.
func (b *ColumnBase) value(pos, ci int) Value {
	ch := &b.cols[ci][pos/BatchSize]
	return ch.Value(pos % BatchSize)
}

// SetColumnBase installs a frozen columnar base under an empty table
// (no heap rows, no tombstones) and rebuilds the key/FK hash indexes
// over the base rows. A nil base clears back to pure heap storage.
func (t *Table) SetColumnBase(b *ColumnBase) error {
	if len(t.Rows) != 0 || len(t.dead) != 0 {
		return fmt.Errorf("engine: %s: column base requires an empty table", t.Def.Name)
	}
	if b != nil && len(b.cols) != len(t.Def.Columns) {
		return fmt.Errorf("engine: %s: base has %d columns, table has %d",
			t.Def.Name, len(b.cols), len(t.Def.Columns))
	}
	t.base = b
	for col := range t.indexes {
		t.indexes[col] = make(map[Value][]int)
	}
	if b == nil {
		return nil
	}
	for col, idx := range t.indexes {
		ci := t.colIdx[col]
		for pos := 0; pos < b.rows; pos++ {
			v := b.value(pos, ci)
			idx[v] = append(idx[v], pos)
		}
	}
	return nil
}

// ColumnBase returns the table's frozen base image, nil for pure heap
// tables.
func (t *Table) ColumnBase() *ColumnBase { return t.base }

// baseRows is the number of rows stored in the frozen base (0 without
// one); global position p maps to heap row t.Rows[p-baseRows()] when
// p >= baseRows().
func (t *Table) baseRows() int {
	if t.base == nil {
		return 0
	}
	return t.base.rows
}

// NumRows returns the total row count, tombstoned included: frozen base
// rows plus heap tail.
func (t *Table) NumRows() int { return t.baseRows() + len(t.Rows) }

// Cell reads one cell by global position without materializing the row.
func (t *Table) Cell(pos, ci int) Value {
	if br := t.baseRows(); pos < br {
		return t.base.value(pos, ci)
	} else {
		return t.Rows[pos-br][ci]
	}
}

// Row returns the tuple at a global position. Heap rows are returned
// without copying; base rows are materialized (use Cell when only one
// column is needed).
func (t *Table) Row(pos int) Row {
	br := t.baseRows()
	if pos >= br {
		return t.Rows[pos-br]
	}
	r := make(Row, len(t.Def.Columns))
	for ci := range r {
		r[ci] = t.base.value(pos, ci)
	}
	return r
}

// scanBytes is the IO a full scan reads: the base's encoded image plus
// the heap tail at the catalog's estimated row width. Without a base
// this is exactly the historical len(Rows)*RowBytes().
func (t *Table) scanBytes() float64 {
	heap := float64(len(t.Rows)) * t.Def.RowBytes()
	if t.base == nil {
		return heap
	}
	return t.base.encodedBytes + heap
}

// probeRowBytes is the IO one probed row costs: the average encoded row
// width for base rows, the catalog width for heap rows.
func (t *Table) probeRowBytes(pos int) float64 {
	if pos < t.baseRows() {
		return t.base.rowBytes
	}
	return t.Def.RowBytes()
}

// SnapshotColumns compacts the table's live rows (tombstones dropped,
// base and heap merged) into fresh column chunks, one sequence per
// column in definition order. This is the image a snapshot persists.
func (t *Table) SnapshotColumns() [][]ColumnChunk {
	n := t.NumRows()
	live := make([]int, 0, t.LiveRows())
	for pos := 0; pos < n; pos++ {
		if t.Alive(pos) {
			live = append(live, pos)
		}
	}
	cols := make([][]ColumnChunk, len(t.Def.Columns))
	vals := make([]Value, len(live))
	for ci := range cols {
		for i, pos := range live {
			vals[i] = t.Cell(pos, ci)
		}
		cols[ci] = BuildColumnChunks(vals)
	}
	return cols
}
