package engine

import (
	"context"
	"fmt"

	"legodb/internal/sqlast"
)

// This file is the vectorized batch executor: the intermediate result is
// a set of per-alias position vectors ([]int32 row positions, one column
// per bound alias, all the same length) instead of per-tuple
// map[string]int bindings. Scans and filters run in chunks of BatchSize
// rows through gathered column Vectors; joins emit (source-tuple, new-
// position) pairs and rebind the position columns with tight gather
// loops; hash joins build typed hash tables. Counter accrual points are
// identical to the row-at-a-time path in exec_rows.go — see the
// differential tests.

type batchExec struct {
	db     *Database
	ctx    context.Context
	stats  *Counters
	p      *blockPlan
	params Params
	// cols[slot] is the position vector for the alias at that slot, nil
	// while unbound. All non-nil columns have length n.
	cols [][]int32
	n    int
	// Scratch buffers reused across chunks.
	vec, vec2 Vector
	selBuf    []int32
}

func (db *Database) executeBlockBatch(ctx context.Context, p *blockPlan, params Params, stats *Counters) (*ResultSet, error) {
	e := &batchExec{
		db:     db,
		ctx:    ctx,
		stats:  stats,
		p:      p,
		params: params,
		cols:   make([][]int32, len(p.order)),
		selBuf: make([]int32, 0, BatchSize),
	}
	start, err := e.scanPositions(p.tables[p.start], p.startFilters)
	if err != nil {
		return nil, err
	}
	e.cols[p.slot[p.start]] = start
	e.n = len(start)

	for i := range p.steps {
		st := &p.steps[i]
		switch st.kind {
		case stepINL:
			err = e.stepINL(st)
		case stepHash:
			err = e.stepHash(st)
		case stepCartesian:
			err = e.stepCartesian(st)
		}
		if err != nil {
			return nil, err
		}
		if err := e.applyCross(st.cross); err != nil {
			return nil, err
		}
	}
	return e.project()
}

// scanPositions scans a table chunk by chunk, applying constant filters
// through gathered vectors, and returns the passing live row positions.
// Counter accrual matches scanFiltered: one scan, every heap row
// (tombstoned included) read.
func (e *batchExec) scanPositions(t *Table, filters []sqlast.Filter) ([]int32, error) {
	n := t.NumRows()
	e.stats.Scans++
	e.stats.TuplesRead += int64(n)
	e.stats.BytesRead += t.scanBytes()
	cf := compileFilters(t, filters, e.params)
	out := make([]int32, 0, n)
	for base := 0; base < n; base += BatchSize {
		if err := e.ctx.Err(); err != nil {
			return nil, err
		}
		end := min(base+BatchSize, n)
		sel := e.selBuf[:0]
		if len(t.dead) == 0 {
			for pos := base; pos < end; pos++ {
				sel = append(sel, int32(pos))
			}
		} else {
			for pos := base; pos < end; pos++ {
				if t.Alive(pos) {
					sel = append(sel, int32(pos))
				}
			}
		}
		sel, err := e.filterChunk(t, cf, sel)
		if err != nil {
			return nil, err
		}
		out = append(out, sel...)
	}
	return out, nil
}

// filterChunk narrows one chunk's selection through the compiled
// filters. Filters evaluate in order over the surviving selection, so a
// filter's deferred resolution error surfaces exactly when some row
// reaches it — the same short-circuit the per-row passes loop has.
func (e *batchExec) filterChunk(t *Table, cf []compiledFilter, sel []int32) ([]int32, error) {
	for i := range cf {
		if len(sel) == 0 {
			return sel, nil
		}
		f := &cf[i]
		if f.err != nil {
			return nil, f.err
		}
		e.vec.gather(t, f.colIdx, sel)
		if f.rightIdx >= 0 {
			e.vec2.gather(t, f.rightIdx, sel)
			sel = compactPair(&e.vec, &e.vec2, f.op, sel)
		} else {
			sel = compactLiteral(&e.vec, f.op, f.lit, sel)
		}
	}
	return sel, nil
}

// stepINL probes the new relation's key index once per intermediate
// tuple, collecting (source tuple, matched position) pairs.
func (e *batchExec) stepINL(st *planStep) error {
	// The new side's column index is unused (Lookup probes by name) but
	// is still resolved for error parity with the reference executor.
	_, oldCi, err := e.p.resolveJoinCols(st)
	if err != nil {
		return err
	}
	newTable := e.p.tables[st.alias]
	oldTable := e.p.tables[st.oldAlias]
	cf := compileFilters(newTable, st.filters, e.params)
	oldPos := e.cols[e.p.slot[st.oldAlias]]
	var src, newPos []int32
	for i := 0; i < e.n; i++ {
		if i&ctxCheckMask == 0 {
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
		v := oldTable.Cell(int(oldPos[i]), oldCi)
		positions, _ := newTable.Lookup(st.newCol, v)
		e.stats.Probes++
		for _, pos := range positions {
			e.stats.TuplesRead++
			e.stats.BytesRead += newTable.probeRowBytes(pos)
			ok, err := passesCompiledAt(newTable, pos, cf)
			if err != nil {
				return err
			}
			if !ok {
				continue
			}
			src = append(src, int32(i))
			newPos = append(newPos, int32(pos))
		}
	}
	e.rebind(st.alias, src, newPos)
	return nil
}

// stepHash scans + builds the new relation into a typed hash table, then
// probes it with each intermediate tuple's join value.
func (e *batchExec) stepHash(st *planStep) error {
	newCi, oldCi, err := e.p.resolveJoinCols(st)
	if err != nil {
		return err
	}
	newTable := e.p.tables[st.alias]
	oldTable := e.p.tables[st.oldAlias]
	build, err := e.scanPositions(newTable, st.filters)
	if err != nil {
		return err
	}
	ht := buildHash(newTable, newCi, build)
	oldPos := e.cols[e.p.slot[st.oldAlias]]
	var src, newPos []int32
	for i := 0; i < e.n; i++ {
		if i&ctxCheckMask == 0 {
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
		for _, pos := range ht.lookup(oldTable.Cell(int(oldPos[i]), oldCi)) {
			src = append(src, int32(i))
			newPos = append(newPos, pos)
		}
	}
	e.rebind(st.alias, src, newPos)
	return nil
}

// stepCartesian crosses the intermediate tuples with a filtered scan of
// a disconnected relation.
func (e *batchExec) stepCartesian(st *planStep) error {
	rows, err := e.scanPositions(e.p.tables[st.alias], st.filters)
	if err != nil {
		return err
	}
	src := make([]int32, 0, e.n*len(rows))
	newPos := make([]int32, 0, e.n*len(rows))
	for i := 0; i < e.n; i++ {
		if i&ctxCheckMask == 0 {
			if err := e.ctx.Err(); err != nil {
				return err
			}
		}
		for _, pos := range rows {
			src = append(src, int32(i))
			newPos = append(newPos, pos)
		}
	}
	e.rebind(st.alias, src, newPos)
	return nil
}

// rebind gathers every bound position column through src and installs
// newPos as the freshly bound alias's column.
func (e *batchExec) rebind(alias string, src, newPos []int32) {
	for s, c := range e.cols {
		if c == nil {
			continue
		}
		nc := make([]int32, len(src))
		for k, i := range src {
			nc[k] = c[i]
		}
		e.cols[s] = nc
	}
	e.cols[e.p.slot[alias]] = newPos
	e.n = len(newPos)
}

// applyCross filters the intermediate tuples by the scheduled cross
// filters, comparing gathered chunk vectors pairwise.
func (e *batchExec) applyCross(filters []sqlast.Filter) error {
	for _, f := range filters {
		lt, rt := e.p.tables[f.Col.Alias], e.p.tables[f.RightCol.Alias]
		li, ri := lt.ColumnIndex(f.Col.Column), rt.ColumnIndex(f.RightCol.Column)
		if li < 0 || ri < 0 {
			return fmt.Errorf("bad cross filter %s", f)
		}
		lcol := e.cols[e.p.slot[f.Col.Alias]]
		rcol := e.cols[e.p.slot[f.RightCol.Alias]]
		var keep []int32
		for base := 0; base < e.n; base += BatchSize {
			if err := e.ctx.Err(); err != nil {
				return err
			}
			end := min(base+BatchSize, e.n)
			e.vec.gather(lt, li, lcol[base:end])
			e.vec2.gather(rt, ri, rcol[base:end])
			for j := 0; j < end-base; j++ {
				if pairSatisfies(&e.vec, &e.vec2, j, f.Op) {
					keep = append(keep, int32(base+j))
				}
			}
		}
		if len(keep) == e.n {
			continue
		}
		for s, c := range e.cols {
			if c == nil {
				continue
			}
			nc := make([]int32, len(keep))
			for k, i := range keep {
				nc[k] = c[i]
			}
			e.cols[s] = nc
		}
		e.n = len(keep)
	}
	return nil
}

// project materializes the projected columns into result rows. Rows are
// carved from one backing array with full-capacity slices so the union
// padding in Execute can't overwrite a neighbor.
func (e *batchExec) project() (*ResultSet, error) {
	rs := &ResultSet{}
	projs := e.p.projs
	for _, pr := range projs {
		rs.Columns = append(rs.Columns, pr.Alias+"."+pr.Column)
	}
	if e.n == 0 {
		// Column resolution is skipped on empty results, matching the
		// reference executor's per-row resolution.
		return rs, nil
	}
	w := len(projs)
	cells := make([]Value, e.n*w)
	rows := make([]Row, e.n)
	for i := range rows {
		rows[i] = cells[i*w : (i+1)*w : (i+1)*w]
	}
	for k, pr := range projs {
		t := e.p.tables[pr.Alias]
		ci := t.ColumnIndex(pr.Column)
		if ci < 0 {
			return nil, fmt.Errorf("no column %s.%s", pr.Alias, pr.Column)
		}
		col := e.cols[e.p.slot[pr.Alias]]
		for i := 0; i < e.n; i++ {
			rows[i][k] = t.Cell(int(col[i]), ci)
		}
	}
	rs.Rows = rows
	return rs, nil
}
