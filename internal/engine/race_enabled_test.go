//go:build race

package engine

// raceEnabled reports whether the race detector is compiled in. The
// allocation-budget tests skip under it: race instrumentation adds its
// own allocations, so AllocsPerRun budgets only hold on plain builds.
const raceEnabled = true
