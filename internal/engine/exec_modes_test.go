package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"legodb/internal/sqlast"
)

// bothModes runs a subtest against each executor implementation.
func bothModes(t *testing.T, f func(t *testing.T, opts Options)) {
	t.Helper()
	for _, m := range []struct {
		name string
		opts Options
	}{{"batch", Options{}}, {"rows", Options{RowAtATime: true}}} {
		t.Run(m.name, func(t *testing.T) { f(t, m.opts) })
	}
}

// sortedRowKeys canonicalizes a result set as a sorted multiset of
// kind-tagged row keys.
func sortedRowKeys(rs *ResultSet) []string {
	keys := make([]string, len(rs.Rows))
	for i, r := range rs.Rows {
		var b strings.Builder
		for _, v := range r {
			switch v.Kind {
			case NullValue:
				b.WriteString("|N")
			case IntValue:
				fmt.Fprintf(&b, "|i%d", v.Int)
			default:
				b.WriteString("|s")
				b.WriteString(v.Str)
			}
		}
		keys[i] = b.String()
	}
	sort.Strings(keys)
	return keys
}

// TestEqCrossFilterBothAliasesBoundViaJoin is the regression test for
// the dropped-equality-cross-filter bug: when an eq cross filter's
// aliases both become bound through another join edge, the filter was
// skipped entirely ("it served as a join edge" — it never did), so the
// block returned every joined pair instead of only the equal ones.
func TestEqCrossFilterBothAliasesBoundViaJoin(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		db := NewDatabase(twoTableCatalog(t))
		db.Exec = opts
		loadAB(t, db)
		b := &sqlast.Block{}
		b.AddTable("A", "a")
		b.AddTable("B", "b")
		// The declared join binds both aliases (every row has
		// parent_R = 1, so it joins all pairs)...
		b.Joins = []sqlast.Join{{
			Left:  sqlast.ColumnRef{Alias: "a", Column: "parent_R"},
			Right: sqlast.ColumnRef{Alias: "b", Column: "parent_R"},
		}}
		// ...so this eq cross filter is never consumed as a join edge
		// and must run as a filter. Pre-fix it was dropped, returning
		// all 9 pairs.
		right := sqlast.ColumnRef{Alias: "b", Column: "y"}
		b.Filters = []sqlast.Filter{{
			Col: sqlast.ColumnRef{Alias: "a", Column: "x"}, Op: sqlast.OpEq, RightCol: &right,
		}}
		b.Projects = []sqlast.ColumnRef{
			{Alias: "a", Column: "x"},
			{Alias: "b", Column: "y"},
		}
		rs, err := db.ExecuteBlock(b, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Rows) != 2 { // x∈{2,3} matching y∈{2,3}
			t.Fatalf("rows = %v, want the 2 equal pairs", rs.Rows)
		}
		for _, r := range rs.Rows {
			if Compare(r[0], r[1]) != 0 {
				t.Fatalf("unequal pair %v survived the eq cross filter", r)
			}
		}
	})
}

// TestExecuteUnionPadsShortRows: a union of a 1-column and a 2-column
// block must pad the narrow block's rows with NULL so every row has
// len(Columns) cells.
func TestExecuteUnionPadsShortRows(t *testing.T) {
	bothModes(t, func(t *testing.T, opts Options) {
		db := NewDatabase(twoTableCatalog(t))
		db.Exec = opts
		loadAB(t, db)
		narrow := &sqlast.Block{}
		narrow.AddTable("A", "a")
		narrow.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}}
		wide := &sqlast.Block{}
		wide.AddTable("B", "b")
		wide.Projects = []sqlast.ColumnRef{
			{Alias: "b", Column: "B_id"},
			{Alias: "b", Column: "y"},
		}
		rs, err := db.Execute(&sqlast.Query{Blocks: []*sqlast.Block{narrow, wide}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs.Columns) != 2 || len(rs.Rows) != 6 {
			t.Fatalf("columns = %v, rows = %d", rs.Columns, len(rs.Rows))
		}
		padded := 0
		for _, r := range rs.Rows {
			if len(r) != len(rs.Columns) {
				t.Fatalf("row %v has %d cells, want %d", r, len(r), len(rs.Columns))
			}
			if r[1].IsNull() {
				padded++
			}
		}
		if padded != 3 { // the narrow block's three rows
			t.Fatalf("padded rows = %d, want 3", padded)
		}
	})
}

// TestModesAgreeOnSmallShapes cross-checks the two executors (results
// as sorted multisets, identical counter deltas) on the small shapes the
// unit tests above exercise individually — cartesian products,
// inequality cross filters, INL and hash joins, tombstoned rows.
func TestModesAgreeOnSmallShapes(t *testing.T) {
	type shape struct {
		name  string
		block func() *sqlast.Block
	}
	right := func(alias, col string) *sqlast.ColumnRef {
		return &sqlast.ColumnRef{Alias: alias, Column: col}
	}
	shapes := []shape{
		{"cartesian", func() *sqlast.Block {
			b := &sqlast.Block{}
			b.AddTable("A", "a")
			b.AddTable("B", "b")
			b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}, {Alias: "b", Column: "y"}}
			return b
		}},
		{"eq-cross-as-join", func() *sqlast.Block {
			b := &sqlast.Block{}
			b.AddTable("A", "a")
			b.AddTable("B", "b")
			b.Filters = []sqlast.Filter{{
				Col: sqlast.ColumnRef{Alias: "a", Column: "x"}, Op: sqlast.OpEq, RightCol: right("b", "y"),
			}}
			b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}}
			return b
		}},
		{"lt-cross", func() *sqlast.Block {
			b := &sqlast.Block{}
			b.AddTable("A", "a")
			b.AddTable("B", "b")
			b.Filters = []sqlast.Filter{{
				Col: sqlast.ColumnRef{Alias: "a", Column: "x"}, Op: sqlast.OpLt, RightCol: right("b", "y"),
			}}
			b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}, {Alias: "b", Column: "y"}}
			return b
		}},
		{"inl-through-key", func() *sqlast.Block {
			b := &sqlast.Block{}
			b.AddTable("A", "a")
			b.AddTable("R", "r")
			b.Joins = []sqlast.Join{{
				Left:  sqlast.ColumnRef{Alias: "a", Column: "parent_R"},
				Right: sqlast.ColumnRef{Alias: "r", Column: "R_id"},
			}}
			b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}}
			return b
		}},
		{"hash-into-fk", func() *sqlast.Block {
			b := &sqlast.Block{}
			b.AddTable("R", "r")
			b.AddTable("A", "a")
			b.Joins = []sqlast.Join{{
				Left:  sqlast.ColumnRef{Alias: "a", Column: "parent_R"},
				Right: sqlast.ColumnRef{Alias: "r", Column: "R_id"},
			}}
			b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}}
			return b
		}},
	}
	for _, tombstone := range []bool{false, true} {
		name := "live"
		if tombstone {
			name = "tombstoned"
		}
		t.Run(name, func(t *testing.T) {
			db := NewDatabase(twoTableCatalog(t))
			loadAB(t, db)
			r := db.Table("R")
			row := make(Row, len(r.Def.Columns))
			row[r.ColumnIndex("R_id")] = IntVal(r.NextID())
			if err := r.Insert(row); err != nil {
				t.Fatal(err)
			}
			if tombstone {
				db.Table("A").MarkDeleted(1)
				db.Table("B").MarkDeleted(0)
			}
			for _, sh := range shapes {
				t.Run(sh.name, func(t *testing.T) {
					db.Exec = Options{}
					before := db.Stats
					rsB, errB := db.ExecuteBlock(sh.block(), nil)
					deltaB := counterDelta(db.Stats, before)

					db.Exec = Options{RowAtATime: true}
					before = db.Stats
					rsR, errR := db.ExecuteBlock(sh.block(), nil)
					deltaR := counterDelta(db.Stats, before)

					if (errB != nil) != (errR != nil) {
						t.Fatalf("error mismatch: batch=%v rows=%v", errB, errR)
					}
					if errB != nil {
						return
					}
					if deltaB != deltaR {
						t.Errorf("counters diverge: batch=%+v rows=%+v", deltaB, deltaR)
					}
					kb, kr := sortedRowKeys(rsB), sortedRowKeys(rsR)
					if len(kb) != len(kr) {
						t.Fatalf("row counts diverge: batch=%d rows=%d", len(kb), len(kr))
					}
					for i := range kb {
						if kb[i] != kr[i] {
							t.Fatalf("row multiset diverges at %d: %q vs %q", i, kb[i], kr[i])
						}
					}
				})
			}
		})
	}
}

func counterDelta(after, before Counters) Counters {
	return Counters{
		BytesRead:  after.BytesRead - before.BytesRead,
		TuplesRead: after.TuplesRead - before.TuplesRead,
		Probes:     after.Probes - before.Probes,
		Scans:      after.Scans - before.Scans,
		TuplesOut:  after.TuplesOut - before.TuplesOut,
	}
}

// TestAllocsLookupProbe: the index-probe hot path must not allocate when
// no probed position is tombstoned — it runs once per intermediate tuple
// of every INL join.
func TestAllocsLookupProbe(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets only hold without the race detector")
	}
	db := NewDatabase(twoTableCatalog(t))
	loadAB(t, db)
	a := db.Table("A")
	probe := IntVal(1)
	if got := testing.AllocsPerRun(200, func() {
		positions, ok := a.Lookup("parent_R", probe)
		if !ok || len(positions) != 3 {
			t.Fatal("unexpected lookup result")
		}
	}); got > 0 {
		t.Errorf("Lookup (no tombstones): %.1f allocs/op, budget 0", got)
	}
	// Tombstoning an unrelated position must not cost the hot path its
	// zero-alloc property either: the dead scan allocates only when a
	// listed position is actually dead.
	a.MarkDeleted(len(a.Rows) - 1)
	key := IntVal(1)
	if got := testing.AllocsPerRun(200, func() {
		positions, ok := a.Lookup("A_id", key)
		if !ok || len(positions) != 1 {
			t.Fatal("unexpected keyed lookup result")
		}
	}); got > 0 {
		t.Errorf("Lookup (dead elsewhere): %.1f allocs/op, budget 0", got)
	}
}
