package engine

import (
	"testing"

	"legodb/internal/relational"
	"legodb/internal/sqlast"
	"legodb/internal/xschema"
)

// twoTableCatalog maps two unrelated child tables under one root, for
// cartesian and cross-filter scenarios.
func twoTableCatalog(t *testing.T) *relational.Catalog {
	t.Helper()
	s := xschema.MustParseSchema(`
type R = r[ A*<#3>, B*<#3> ]
type A = a[ x[ Integer ] ]
type B = b[ y[ Integer ] ]`)
	cat, err := relational.Map(s)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func loadAB(t *testing.T, db *Database) {
	t.Helper()
	for _, spec := range []struct {
		table, col string
		vals       []int64
	}{{"A", "x", []int64{1, 2, 3}}, {"B", "y", []int64{2, 3, 4}}} {
		tbl := db.Table(spec.table)
		for _, v := range spec.vals {
			row := make(Row, len(tbl.Def.Columns))
			row[tbl.ColumnIndex(spec.table+"_id")] = IntVal(tbl.NextID())
			row[tbl.ColumnIndex(spec.col)] = IntVal(v)
			row[tbl.ColumnIndex("parent_R")] = IntVal(1)
			if err := tbl.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestCartesianFallback(t *testing.T) {
	db := NewDatabase(twoTableCatalog(t))
	loadAB(t, db)
	b := &sqlast.Block{}
	b.AddTable("A", "a")
	b.AddTable("B", "b")
	b.Projects = []sqlast.ColumnRef{
		{Alias: "a", Column: "x"},
		{Alias: "b", Column: "y"},
	}
	rs, err := db.ExecuteBlock(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 9 {
		t.Fatalf("cartesian rows = %d, want 9", len(rs.Rows))
	}
}

func TestCrossFilterEqualityActsAsJoin(t *testing.T) {
	db := NewDatabase(twoTableCatalog(t))
	loadAB(t, db)
	b := &sqlast.Block{}
	b.AddTable("A", "a")
	b.AddTable("B", "b")
	right := sqlast.ColumnRef{Alias: "b", Column: "y"}
	b.Filters = []sqlast.Filter{{
		Col: sqlast.ColumnRef{Alias: "a", Column: "x"}, Op: sqlast.OpEq, RightCol: &right,
	}}
	b.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}}
	rs, err := db.ExecuteBlock(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 { // x∈{2,3} match y∈{2,3}
		t.Fatalf("value join rows = %v", rs.Rows)
	}
}

func TestCrossFilterInequality(t *testing.T) {
	db := NewDatabase(twoTableCatalog(t))
	loadAB(t, db)
	b := &sqlast.Block{}
	b.AddTable("A", "a")
	b.AddTable("B", "b")
	right := sqlast.ColumnRef{Alias: "b", Column: "y"}
	b.Filters = []sqlast.Filter{{
		Col: sqlast.ColumnRef{Alias: "a", Column: "x"}, Op: sqlast.OpLt, RightCol: &right,
	}}
	b.Projects = []sqlast.ColumnRef{
		{Alias: "a", Column: "x"},
		{Alias: "b", Column: "y"},
	}
	rs, err := db.ExecuteBlock(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	// pairs with x < y: (1,2)(1,3)(1,4)(2,3)(2,4)(3,4) = 6
	if len(rs.Rows) != 6 {
		t.Fatalf("inequality rows = %d, want 6", len(rs.Rows))
	}
}

func TestExecuteUnionTakesWidestColumns(t *testing.T) {
	db := NewDatabase(twoTableCatalog(t))
	loadAB(t, db)
	narrow := &sqlast.Block{}
	narrow.AddTable("A", "a")
	narrow.Projects = []sqlast.ColumnRef{{Alias: "a", Column: "x"}}
	wide := &sqlast.Block{}
	wide.AddTable("B", "b")
	wide.Projects = []sqlast.ColumnRef{
		{Alias: "b", Column: "B_id"},
		{Alias: "b", Column: "y"},
	}
	rs, err := db.Execute(&sqlast.Query{Blocks: []*sqlast.Block{narrow, wide}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Columns) != 2 {
		t.Fatalf("columns = %v", rs.Columns)
	}
	if len(rs.Rows) != 6 {
		t.Fatalf("union rows = %d", len(rs.Rows))
	}
	if db.Stats.TuplesOut != 6 {
		t.Fatalf("TuplesOut = %d", db.Stats.TuplesOut)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{BytesRead: 10, TuplesRead: 2, Probes: 1, Scans: 1, TuplesOut: 3}
	b := Counters{BytesRead: 5, TuplesRead: 1, Probes: 2, Scans: 1, TuplesOut: 1}
	a.Add(b)
	if a.BytesRead != 15 || a.TuplesRead != 3 || a.Probes != 3 || a.Scans != 2 || a.TuplesOut != 4 {
		t.Fatalf("Add = %+v", a)
	}
}

func TestRowCountAndString(t *testing.T) {
	db := NewDatabase(twoTableCatalog(t))
	loadAB(t, db)
	if got := db.RowCount(); got != 6 {
		t.Fatalf("RowCount = %d", got)
	}
	if db.String() == "" {
		t.Fatal("empty summary")
	}
	if db.Table("NoSuch") != nil {
		t.Fatal("phantom table")
	}
}

func TestFilterOnUnknownColumn(t *testing.T) {
	db := NewDatabase(twoTableCatalog(t))
	loadAB(t, db)
	b := &sqlast.Block{}
	b.AddTable("A", "a")
	b.Filters = []sqlast.Filter{{
		Col: sqlast.ColumnRef{Alias: "a", Column: "nosuch"}, Op: sqlast.OpEq,
		Value: sqlast.Literal{IsInt: true, Int: 1},
	}}
	if _, err := db.ExecuteBlock(b, nil); err == nil {
		t.Fatal("unknown filter column accepted")
	}
}

func TestValueStringAndNull(t *testing.T) {
	if Null.String() != "NULL" || !Null.IsNull() {
		t.Fatal("Null misbehaves")
	}
	if IntVal(5).String() != "5" || StrVal("x").String() != "x" {
		t.Fatal("value rendering broken")
	}
}

func TestMixedKindComparisonCoerces(t *testing.T) {
	// A DTD-imported column stores digits as strings; integer literals
	// coerce for comparison.
	if !satisfies(StrVal("42"), sqlast.OpEq, IntVal(42)) {
		t.Fatal("string/int equality failed")
	}
	if satisfies(StrVal("42"), sqlast.OpEq, IntVal(7)) {
		t.Fatal("wrong match")
	}
}
