package engine

import (
	"context"
	"fmt"

	"legodb/internal/faults"
	"legodb/internal/sqlast"
)

// Params binds the unbound parameters (c1, c2, ...) of a query to values
// at execution time.
type Params map[string]Value

// ResultSet is the output of executing a query: the union of its blocks'
// rows. Columns follow the widest block; rows from narrower blocks are
// padded with NULL so every row has len(Columns) cells.
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Execute runs all blocks of a query and unions their results, counting
// work in db.Stats. It is ExecuteContext with a background context.
func (db *Database) Execute(q *sqlast.Query, params Params) (*ResultSet, error) {
	return db.ExecuteContext(context.Background(), q, params)
}

// ExecuteContext is Execute under a caller-controlled context:
// cancelling ctx (or exceeding its deadline) aborts the execution at the
// next chunk or probe-loop boundary with the context's error, so a
// served query stops consuming engine work as soon as its request is
// cancelled. Counters accrue into an execution-local accumulator and are
// folded into db.Stats once at the end (partial work included on error),
// so concurrent executions never race on the shared counters.
func (db *Database) ExecuteContext(ctx context.Context, q *sqlast.Query, params Params) (*ResultSet, error) {
	var stats Counters
	out := &ResultSet{}
	for _, b := range q.Blocks {
		rs, err := db.executeBlock(ctx, b, params, &stats)
		if err != nil {
			db.addStats(stats)
			return nil, fmt.Errorf("engine: %s: %w", q.Name, err)
		}
		if len(rs.Columns) > len(out.Columns) {
			out.Columns = rs.Columns
		}
		out.Rows = append(out.Rows, rs.Rows...)
	}
	// Union blocks can differ in width (a publishing query's outer-union
	// skeleton); pad narrower blocks' rows with NULL so every row matches
	// the widest block's column list.
	for i, r := range out.Rows {
		for len(r) < len(out.Columns) {
			r = append(r, Null)
		}
		out.Rows[i] = r
	}
	stats.TuplesOut += int64(len(out.Rows))
	db.addStats(stats)
	return out, nil
}

// ExecuteBlock runs one SPJ block with a background context.
func (db *Database) ExecuteBlock(b *sqlast.Block, params Params) (*ResultSet, error) {
	return db.ExecuteBlockContext(context.Background(), b, params)
}

// ExecuteBlockContext runs one SPJ block: filtered scan of a start
// relation, then index-nested-loop or hash joins along the join graph,
// then projection. The physical plan (join order, join algorithm per
// edge, cross-filter schedule) is derived once by planBlock and shared by
// both executor implementations, so the batch and row-at-a-time paths do
// the same logical work and report identical Counters.
func (db *Database) ExecuteBlockContext(ctx context.Context, b *sqlast.Block, params Params) (*ResultSet, error) {
	var stats Counters
	rs, err := db.executeBlock(ctx, b, params, &stats)
	db.addStats(stats)
	return rs, err
}

func (db *Database) executeBlock(ctx context.Context, b *sqlast.Block, params Params, stats *Counters) (*ResultSet, error) {
	// SiteExec is the serving path's fault seam: tests arm it to prove an
	// injected executor failure surfaces as a structured error without
	// wedging or crashing the caller.
	if err := faults.Inject(faults.SiteExec); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := db.planBlock(b)
	if err != nil {
		return nil, err
	}
	if db.Exec.RowAtATime {
		return db.executeBlockRows(ctx, p, params, stats)
	}
	return db.executeBlockBatch(ctx, p, params, stats)
}

// ctxCheckMask bounds how often the executors' inner loops poll for
// cancellation: every (mask+1)th tuple, cheap enough to leave on
// unconditionally while still stopping runaway scans, probes and
// cartesian products within a fraction of a millisecond.
const ctxCheckMask = 511

// stepKind discriminates how a plan step binds its alias.
type stepKind int

const (
	// stepINL probes the new relation's key index once per intermediate
	// tuple (index nested-loop join).
	stepINL stepKind = iota
	// stepHash scans and builds the new relation into a hash table keyed
	// on the join column, then probes it with the intermediate tuples.
	stepHash
	// stepCartesian crosses the intermediate tuples with a filtered scan
	// of a disconnected relation.
	stepCartesian
)

// planStep binds one more alias into the intermediate result.
type planStep struct {
	kind  stepKind
	alias string
	// filters are the constant (and same-alias) filters on alias, applied
	// while scanning or probing it.
	filters []sqlast.Filter
	// Join edge (stepINL / stepHash): alias.newCol = oldAlias.oldCol with
	// oldAlias already bound.
	newCol   string
	oldAlias string
	oldCol   string
	// cross lists the cross filters that first become applicable (both
	// aliases bound) after this step. Equality cross filters that the
	// planner consumed as join edges are enforced by the join itself and
	// are not listed; the rest — including equality filters whose aliases
	// both became bound through other edges — are applied here exactly
	// once.
	cross []sqlast.Filter
}

// blockPlan is the shared physical plan of one SPJ block.
type blockPlan struct {
	tables map[string]*Table
	// order lists aliases in FROM order; slot maps an alias to its
	// position (the batch executor's column index for that alias).
	order []string
	slot  map[string]int
	start string
	// startFilters are the constant filters on the start alias.
	startFilters []sqlast.Filter
	steps        []planStep
	projs        []sqlast.ColumnRef
}

// planBlock derives the physical plan: the start relation (prefer one
// with constant filters), the deterministic join order (declared joins
// first, then equality cross filters, first applicable edge wins — the
// same order the seed executor produced), the join algorithm per edge
// (INL through a key index, hash otherwise), cartesian fallbacks for
// disconnected aliases, and the cross-filter schedule. Join order never
// depends on the data, only on the block and the catalog, so it can be
// fixed before execution.
func (db *Database) planBlock(b *sqlast.Block) (*blockPlan, error) {
	if len(b.Tables) == 0 {
		return nil, fmt.Errorf("block has no tables")
	}
	p := &blockPlan{
		tables: make(map[string]*Table, len(b.Tables)),
		slot:   make(map[string]int, len(b.Tables)),
	}
	for _, tref := range b.Tables {
		t := db.Table(tref.Table)
		if t == nil {
			return nil, fmt.Errorf("unknown table %q", tref.Table)
		}
		if _, dup := p.tables[tref.Alias]; !dup {
			p.slot[tref.Alias] = len(p.order)
			p.order = append(p.order, tref.Alias)
		}
		p.tables[tref.Alias] = t
	}

	constFilters := make(map[string][]sqlast.Filter)
	var cross []sqlast.Filter
	for _, f := range b.Filters {
		if f.RightCol != nil && f.RightCol.Alias != f.Col.Alias {
			cross = append(cross, f)
			continue
		}
		constFilters[f.Col.Alias] = append(constFilters[f.Col.Alias], f)
	}

	p.start = p.order[0]
	for _, a := range p.order {
		if len(constFilters[a]) > 0 {
			p.start = a
			break
		}
	}
	p.startFilters = constFilters[p.start]

	bound := map[string]bool{p.start: true}
	eqUsed := make([]bool, len(cross))
	crossDone := make([]bool, len(cross))
	// schedule returns the cross filters that just became applicable:
	// both aliases bound, not yet scheduled, and not consumed as a join
	// edge. Each filter is applied exactly once, at the earliest step
	// where it can be evaluated.
	schedule := func() []sqlast.Filter {
		var out []sqlast.Filter
		for i, f := range cross {
			if crossDone[i] || eqUsed[i] {
				continue
			}
			if bound[f.Col.Alias] && bound[f.RightCol.Alias] {
				crossDone[i] = true
				out = append(out, f)
			}
		}
		return out
	}

	for len(bound) < len(p.order) {
		st, crossIdx, found := nextEdge(b, cross, bound)
		if !found {
			// Disconnected: cartesian with the next unbound alias.
			for _, a := range p.order {
				if !bound[a] {
					st = planStep{kind: stepCartesian, alias: a}
					break
				}
			}
		} else if crossIdx >= 0 {
			// This equality cross filter is enforced by the join edge; it
			// must not be re-applied as a filter.
			eqUsed[crossIdx] = true
		}
		st.filters = constFilters[st.alias]
		if st.kind != stepCartesian {
			newTable := p.tables[st.alias]
			// Index nested-loop only through the new relation's key,
			// mirroring the optimizer's physical assumptions (FK hash
			// indexes exist for the publisher, but query plans join FK
			// edges with hash joins).
			_, hasIndex := newTable.indexes[st.newCol]
			keyCol := newTable.Def.Column(st.newCol)
			if hasIndex && keyCol != nil && keyCol.Key {
				st.kind = stepINL
			} else {
				st.kind = stepHash
			}
		}
		bound[st.alias] = true
		st.cross = schedule()
		p.steps = append(p.steps, st)
	}

	p.projs = b.Projects
	if len(p.projs) == 0 {
		p.projs = []sqlast.ColumnRef{{Alias: p.order[0], Column: p.tables[p.order[0]].Def.Key()}}
	}
	return p, nil
}

// nextEdge picks the next join edge: declared joins in order, then
// equality cross filters in order, the first with exactly one side
// bound. crossIdx reports which cross filter supplied the edge (-1 for
// declared joins).
func nextEdge(b *sqlast.Block, cross []sqlast.Filter, bound map[string]bool) (st planStep, crossIdx int, found bool) {
	for _, j := range b.Joins {
		switch {
		case bound[j.Left.Alias] && !bound[j.Right.Alias]:
			return planStep{alias: j.Right.Alias, newCol: j.Right.Column,
				oldAlias: j.Left.Alias, oldCol: j.Left.Column}, -1, true
		case bound[j.Right.Alias] && !bound[j.Left.Alias]:
			return planStep{alias: j.Left.Alias, newCol: j.Left.Column,
				oldAlias: j.Right.Alias, oldCol: j.Right.Column}, -1, true
		}
	}
	for i, f := range cross {
		if f.Op != sqlast.OpEq {
			continue
		}
		switch {
		case bound[f.Col.Alias] && !bound[f.RightCol.Alias]:
			return planStep{alias: f.RightCol.Alias, newCol: f.RightCol.Column,
				oldAlias: f.Col.Alias, oldCol: f.Col.Column}, i, true
		case bound[f.RightCol.Alias] && !bound[f.Col.Alias]:
			return planStep{alias: f.Col.Alias, newCol: f.Col.Column,
				oldAlias: f.RightCol.Alias, oldCol: f.RightCol.Column}, i, true
		}
	}
	return planStep{}, -1, false
}

// resolveJoinCols resolves a join step's column indices, with the new
// side checked first (matching the reference executor's error order).
func (p *blockPlan) resolveJoinCols(st *planStep) (newCi, oldCi int, err error) {
	newTable := p.tables[st.alias]
	newCi = newTable.ColumnIndex(st.newCol)
	if newCi < 0 {
		return 0, 0, fmt.Errorf("no column %s.%s", st.alias, st.newCol)
	}
	oldTable := p.tables[st.oldAlias]
	oldCi = oldTable.ColumnIndex(st.oldCol)
	if oldCi < 0 {
		return 0, 0, fmt.Errorf("no column %s.%s", st.oldAlias, st.oldCol)
	}
	return newCi, oldCi, nil
}

func literalValue(l sqlast.Literal, params Params) (Value, error) {
	if l.IsParam {
		v, ok := params[l.Param]
		if !ok {
			return Null, fmt.Errorf("unbound parameter %q", l.Param)
		}
		return v, nil
	}
	if l.IsInt {
		return IntVal(l.Int), nil
	}
	return StrVal(l.Str), nil
}

// opHolds evaluates a comparison operator against a Compare result.
func opHolds(op sqlast.CmpOp, c int) bool {
	switch op {
	case sqlast.OpEq:
		return c == 0
	case sqlast.OpNe:
		return c != 0
	case sqlast.OpLt:
		return c < 0
	case sqlast.OpLe:
		return c <= 0
	case sqlast.OpGt:
		return c > 0
	case sqlast.OpGe:
		return c >= 0
	default:
		return false
	}
}

// satisfies evaluates a comparison; NULL never satisfies anything, and
// integer/string values compare only with their own kind (an integer
// literal against a CHAR column coerces by formatting, matching the
// shredder's storage rules).
func satisfies(left Value, op sqlast.CmpOp, right Value) bool {
	if left.IsNull() || right.IsNull() {
		return false
	}
	if left.Kind != right.Kind {
		// Coerce integers to strings for mixed comparisons.
		if left.Kind == IntValue {
			left = StrVal(left.String())
		}
		if right.Kind == IntValue {
			right = StrVal(right.String())
		}
	}
	return opHolds(op, Compare(left, right))
}

// compiledFilter is one constant (or same-alias column-column) filter
// with its column indices and literal resolved once per block instead of
// once per row. Resolution errors are deferred: like the per-row
// reference path, a missing column or unbound parameter only surfaces
// when at least one row is actually evaluated.
type compiledFilter struct {
	op       sqlast.CmpOp
	colIdx   int
	rightIdx int // -1: compare against lit
	lit      Value
	err      error
}

func compileFilters(t *Table, filters []sqlast.Filter, params Params) []compiledFilter {
	if len(filters) == 0 {
		return nil
	}
	out := make([]compiledFilter, len(filters))
	for i, f := range filters {
		cf := compiledFilter{op: f.Op, rightIdx: -1}
		cf.colIdx = t.ColumnIndex(f.Col.Column)
		if cf.colIdx < 0 {
			cf.err = fmt.Errorf("no column %s", f.Col.Column)
		} else if f.RightCol != nil {
			cf.rightIdx = t.ColumnIndex(f.RightCol.Column)
			if cf.rightIdx < 0 {
				cf.err = fmt.Errorf("no column %s", f.RightCol.Column)
			}
		} else {
			cf.lit, cf.err = literalValue(f.Value, params)
		}
		out[i] = cf
	}
	return out
}

// passesCompiled evaluates compiled filters on one row (the scalar path
// used for probed rows, where gathering a vector per probe would cost
// more than it saves).
func passesCompiled(row Row, cf []compiledFilter) (bool, error) {
	for i := range cf {
		f := &cf[i]
		if f.err != nil {
			return false, f.err
		}
		right := f.lit
		if f.rightIdx >= 0 {
			right = row[f.rightIdx]
		}
		if !satisfies(row[f.colIdx], f.op, right) {
			return false, nil
		}
	}
	return true, nil
}

// passesCompiledAt is passesCompiled over a row addressed by global
// position: only the filtered cells are read, so probed base rows are
// never materialized.
func passesCompiledAt(t *Table, pos int, cf []compiledFilter) (bool, error) {
	for i := range cf {
		f := &cf[i]
		if f.err != nil {
			return false, f.err
		}
		right := f.lit
		if f.rightIdx >= 0 {
			right = t.Cell(pos, f.rightIdx)
		}
		if !satisfies(t.Cell(pos, f.colIdx), f.op, right) {
			return false, nil
		}
	}
	return true, nil
}
