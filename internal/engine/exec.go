package engine

import (
	"fmt"

	"legodb/internal/sqlast"
)

// Params binds the unbound parameters (c1, c2, ...) of a query to values
// at execution time.
type Params map[string]Value

// ResultSet is the output of executing a query: the union of its blocks'
// rows (columns follow the widest block; callers mostly count rows and
// bytes).
type ResultSet struct {
	Columns []string
	Rows    []Row
}

// Execute runs all blocks of a query and unions their results, counting
// work in db.Stats.
func (db *Database) Execute(q *sqlast.Query, params Params) (*ResultSet, error) {
	out := &ResultSet{}
	for _, b := range q.Blocks {
		rs, err := db.ExecuteBlock(b, params)
		if err != nil {
			return nil, fmt.Errorf("engine: %s: %w", q.Name, err)
		}
		if len(rs.Columns) > len(out.Columns) {
			out.Columns = rs.Columns
		}
		out.Rows = append(out.Rows, rs.Rows...)
	}
	db.Stats.TuplesOut += int64(len(out.Rows))
	return out, nil
}

// binding is one intermediate tuple: row positions per bound alias.
type binding map[string]int

// ExecuteBlock runs one SPJ block: filtered scan of a start relation,
// then index-nested-loop or hash joins along the join graph, then
// projection.
func (db *Database) ExecuteBlock(b *sqlast.Block, params Params) (*ResultSet, error) {
	if len(b.Tables) == 0 {
		return nil, fmt.Errorf("block has no tables")
	}
	tables := make(map[string]*Table, len(b.Tables))
	order := make([]string, 0, len(b.Tables))
	for _, tref := range b.Tables {
		t := db.Table(tref.Table)
		if t == nil {
			return nil, fmt.Errorf("unknown table %q", tref.Table)
		}
		tables[tref.Alias] = t
		order = append(order, tref.Alias)
	}

	constFilters := make(map[string][]sqlast.Filter)
	var crossFilters []sqlast.Filter
	for _, f := range b.Filters {
		if f.RightCol != nil && f.RightCol.Alias != f.Col.Alias {
			crossFilters = append(crossFilters, f)
			continue
		}
		constFilters[f.Col.Alias] = append(constFilters[f.Col.Alias], f)
	}

	// Choose the start alias: prefer one with constant filters.
	start := order[0]
	for _, a := range order {
		if len(constFilters[a]) > 0 {
			start = a
			break
		}
	}
	current, err := db.scanFiltered(tables[start], start, constFilters[start], params)
	if err != nil {
		return nil, err
	}
	bound := map[string]bool{start: true}

	type edge struct {
		newAlias, newCol, oldAlias, oldCol string
	}
	pendingEdges := func() []edge {
		var out []edge
		for _, j := range b.Joins {
			switch {
			case bound[j.Left.Alias] && !bound[j.Right.Alias]:
				out = append(out, edge{j.Right.Alias, j.Right.Column, j.Left.Alias, j.Left.Column})
			case bound[j.Right.Alias] && !bound[j.Left.Alias]:
				out = append(out, edge{j.Left.Alias, j.Left.Column, j.Right.Alias, j.Right.Column})
			}
		}
		for _, f := range crossFilters {
			if f.Op != sqlast.OpEq {
				continue
			}
			switch {
			case bound[f.Col.Alias] && !bound[f.RightCol.Alias]:
				out = append(out, edge{f.RightCol.Alias, f.RightCol.Column, f.Col.Alias, f.Col.Column})
			case bound[f.RightCol.Alias] && !bound[f.Col.Alias]:
				out = append(out, edge{f.Col.Alias, f.Col.Column, f.RightCol.Alias, f.RightCol.Column})
			}
		}
		return out
	}

	for len(bound) < len(order) {
		edges := pendingEdges()
		if len(edges) == 0 {
			// Disconnected: cartesian with the next unbound alias.
			next := ""
			for _, a := range order {
				if !bound[a] {
					next = a
					break
				}
			}
			rows, err := db.scanFiltered(tables[next], next, constFilters[next], params)
			if err != nil {
				return nil, err
			}
			var merged []binding
			for _, l := range current {
				for _, r := range rows {
					m := cloneBinding(l)
					m[next] = r[next]
					merged = append(merged, m)
				}
			}
			current = merged
			bound[next] = true
			current, err = db.applyCrossFilters(current, tables, crossFilters, bound)
			if err != nil {
				return nil, err
			}
			continue
		}
		e := edges[0]
		newTable := tables[e.newAlias]
		newColIdx := newTable.ColumnIndex(e.newCol)
		if newColIdx < 0 {
			return nil, fmt.Errorf("no column %s.%s", e.newAlias, e.newCol)
		}
		oldTable := tables[e.oldAlias]
		oldColIdx := oldTable.ColumnIndex(e.oldCol)
		if oldColIdx < 0 {
			return nil, fmt.Errorf("no column %s.%s", e.oldAlias, e.oldCol)
		}
		filters := constFilters[e.newAlias]

		_, hasIndex := newTable.indexes[e.newCol]
		keyCol := newTable.Def.Column(e.newCol)
		useINL := hasIndex && keyCol != nil && keyCol.Key
		var joined []binding
		if useINL {
			// Index nested-loop join: only through the new relation's
			// key, mirroring the optimizer's physical assumptions (FK
			// hash indexes exist for the publisher, but query plans join
			// FK edges with hash joins).
			width := newTable.Def.RowBytes()
			for _, l := range current {
				v := oldTable.Rows[l[e.oldAlias]][oldColIdx]
				positions, _ := newTable.Lookup(e.newCol, v)
				db.Stats.Probes++
				for _, pos := range positions {
					db.Stats.TuplesRead++
					db.Stats.BytesRead += width
					row := newTable.Rows[pos]
					if ok, err := db.passes(row, newTable, filters, params); err != nil {
						return nil, err
					} else if !ok {
						continue
					}
					m := cloneBinding(l)
					m[e.newAlias] = pos
					joined = append(joined, m)
				}
			}
		} else {
			// Hash join: scan + build the new relation, probe current.
			rows, err := db.scanFiltered(newTable, e.newAlias, filters, params)
			if err != nil {
				return nil, err
			}
			hash := make(map[Value][]int, len(rows))
			for _, r := range rows {
				pos := r[e.newAlias]
				v := newTable.Rows[pos][newColIdx]
				hash[v] = append(hash[v], pos)
			}
			for _, l := range current {
				v := oldTable.Rows[l[e.oldAlias]][oldColIdx]
				for _, pos := range hash[v] {
					m := cloneBinding(l)
					m[e.newAlias] = pos
					joined = append(joined, m)
				}
			}
		}
		current = joined
		bound[e.newAlias] = true

		// Apply any cross filters whose aliases are now both bound (the
		// equality ones already acted as join edges; apply the rest).
		current, err = db.applyCrossFilters(current, tables, crossFilters, bound)
		if err != nil {
			return nil, err
		}
	}

	// Projection.
	rs := &ResultSet{}
	projs := b.Projects
	if len(projs) == 0 {
		projs = []sqlast.ColumnRef{{Alias: order[0], Column: tables[order[0]].Def.Key()}}
	}
	for _, p := range projs {
		rs.Columns = append(rs.Columns, p.Alias+"."+p.Column)
	}
	for _, l := range current {
		row := make(Row, len(projs))
		for i, p := range projs {
			t := tables[p.Alias]
			ci := t.ColumnIndex(p.Column)
			if ci < 0 {
				return nil, fmt.Errorf("no column %s.%s", p.Alias, p.Column)
			}
			row[i] = t.Rows[l[p.Alias]][ci]
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// scanFiltered scans a table, applying constant filters, and returns one
// binding per passing row.
func (db *Database) scanFiltered(t *Table, alias string, filters []sqlast.Filter, params Params) ([]binding, error) {
	db.Stats.Scans++
	db.Stats.TuplesRead += int64(len(t.Rows))
	db.Stats.BytesRead += float64(len(t.Rows)) * t.Def.RowBytes()
	var out []binding
	for pos, row := range t.Rows {
		if !t.Alive(pos) {
			continue
		}
		ok, err := db.passes(row, t, filters, params)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, binding{alias: pos})
		}
	}
	return out, nil
}

// passes evaluates constant (and same-alias) filters on one row.
func (db *Database) passes(row Row, t *Table, filters []sqlast.Filter, params Params) (bool, error) {
	for _, f := range filters {
		li := t.ColumnIndex(f.Col.Column)
		if li < 0 {
			return false, fmt.Errorf("no column %s", f.Col.Column)
		}
		left := row[li]
		var right Value
		if f.RightCol != nil {
			ri := t.ColumnIndex(f.RightCol.Column)
			if ri < 0 {
				return false, fmt.Errorf("no column %s", f.RightCol.Column)
			}
			right = row[ri]
		} else {
			var err error
			right, err = literalValue(f.Value, params)
			if err != nil {
				return false, err
			}
		}
		if !satisfies(left, f.Op, right) {
			return false, nil
		}
	}
	return true, nil
}

func (db *Database) applyCrossFilters(current []binding, tables map[string]*Table, crossFilters []sqlast.Filter, bound map[string]bool) ([]binding, error) {
	for _, f := range crossFilters {
		if f.Op == sqlast.OpEq {
			continue // equality cross filters served as join edges
		}
		if !bound[f.Col.Alias] || !bound[f.RightCol.Alias] {
			continue
		}
		lt, rt := tables[f.Col.Alias], tables[f.RightCol.Alias]
		li, ri := lt.ColumnIndex(f.Col.Column), rt.ColumnIndex(f.RightCol.Column)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("bad cross filter %s", f)
		}
		var kept []binding
		for _, b := range current {
			if satisfies(lt.Rows[b[f.Col.Alias]][li], f.Op, rt.Rows[b[f.RightCol.Alias]][ri]) {
				kept = append(kept, b)
			}
		}
		current = kept
	}
	return current, nil
}

func cloneBinding(b binding) binding {
	m := make(binding, len(b)+1)
	for k, v := range b {
		m[k] = v
	}
	return m
}

func literalValue(l sqlast.Literal, params Params) (Value, error) {
	if l.IsParam {
		v, ok := params[l.Param]
		if !ok {
			return Null, fmt.Errorf("unbound parameter %q", l.Param)
		}
		return v, nil
	}
	if l.IsInt {
		return IntVal(l.Int), nil
	}
	return StrVal(l.Str), nil
}

// satisfies evaluates a comparison; NULL never satisfies anything, and
// integer/string values compare only with their own kind (an integer
// literal against a CHAR column coerces by formatting, matching the
// shredder's storage rules).
func satisfies(left Value, op sqlast.CmpOp, right Value) bool {
	if left.IsNull() || right.IsNull() {
		return false
	}
	if left.Kind != right.Kind {
		// Coerce integers to strings for mixed comparisons.
		if left.Kind == IntValue {
			left = StrVal(left.String())
		}
		if right.Kind == IntValue {
			right = StrVal(right.String())
		}
	}
	c := Compare(left, right)
	switch op {
	case sqlast.OpEq:
		return c == 0
	case sqlast.OpNe:
		return c != 0
	case sqlast.OpLt:
		return c < 0
	case sqlast.OpLe:
		return c <= 0
	case sqlast.OpGt:
		return c > 0
	case sqlast.OpGe:
		return c >= 0
	default:
		return false
	}
}
