package engine

import (
	"context"
	"fmt"

	"legodb/internal/sqlast"
)

// This file is the row-at-a-time executor: the original per-tuple
// iterator over binding maps, kept behind Options{RowAtATime: true} as
// the reference implementation for the batch executor's differential
// tests and speedup baseline. It consumes the same blockPlan, so both
// paths perform identical logical work and accrue identical Counters.

// binding is one intermediate tuple: row positions per bound alias.
type binding map[string]int

func (db *Database) executeBlockRows(ctx context.Context, p *blockPlan, params Params, stats *Counters) (*ResultSet, error) {
	current, err := db.scanFiltered(ctx, p.tables[p.start], p.start, p.startFilters, params, stats)
	if err != nil {
		return nil, err
	}

	for i := range p.steps {
		st := &p.steps[i]
		switch st.kind {
		case stepCartesian:
			rows, err := db.scanFiltered(ctx, p.tables[st.alias], st.alias, st.filters, params, stats)
			if err != nil {
				return nil, err
			}
			var merged []binding
			for li, l := range current {
				if li&ctxCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				for _, r := range rows {
					m := cloneBinding(l)
					m[st.alias] = r[st.alias]
					merged = append(merged, m)
				}
			}
			current = merged

		case stepINL:
			// The new side's column index is unused (Lookup probes by
			// name) but is still resolved for error parity.
			_, oldCi, err := p.resolveJoinCols(st)
			if err != nil {
				return nil, err
			}
			newTable := p.tables[st.alias]
			oldTable := p.tables[st.oldAlias]
			// Index nested-loop join: probe the new relation's key index
			// once per intermediate tuple.
			var joined []binding
			for li, l := range current {
				if li&ctxCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				v := oldTable.Cell(l[st.oldAlias], oldCi)
				positions, _ := newTable.Lookup(st.newCol, v)
				stats.Probes++
				for _, pos := range positions {
					stats.TuplesRead++
					stats.BytesRead += newTable.probeRowBytes(pos)
					row := newTable.Row(pos)
					if ok, err := db.passes(row, newTable, st.filters, params); err != nil {
						return nil, err
					} else if !ok {
						continue
					}
					m := cloneBinding(l)
					m[st.alias] = pos
					joined = append(joined, m)
				}
			}
			current = joined

		case stepHash:
			newCi, oldCi, err := p.resolveJoinCols(st)
			if err != nil {
				return nil, err
			}
			newTable := p.tables[st.alias]
			oldTable := p.tables[st.oldAlias]
			// Hash join: scan + build the new relation, probe current.
			rows, err := db.scanFiltered(ctx, newTable, st.alias, st.filters, params, stats)
			if err != nil {
				return nil, err
			}
			hash := make(map[Value][]int, len(rows))
			for _, r := range rows {
				pos := r[st.alias]
				v := newTable.Cell(pos, newCi)
				hash[v] = append(hash[v], pos)
			}
			var joined []binding
			for li, l := range current {
				if li&ctxCheckMask == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				v := oldTable.Cell(l[st.oldAlias], oldCi)
				for _, pos := range hash[v] {
					m := cloneBinding(l)
					m[st.alias] = pos
					joined = append(joined, m)
				}
			}
			current = joined
		}

		current, err = db.applyCrossFilters(current, p.tables, st.cross)
		if err != nil {
			return nil, err
		}
	}

	// Projection.
	rs := &ResultSet{}
	for _, pr := range p.projs {
		rs.Columns = append(rs.Columns, pr.Alias+"."+pr.Column)
	}
	for _, l := range current {
		row := make(Row, len(p.projs))
		for i, pr := range p.projs {
			t := p.tables[pr.Alias]
			ci := t.ColumnIndex(pr.Column)
			if ci < 0 {
				return nil, fmt.Errorf("no column %s.%s", pr.Alias, pr.Column)
			}
			row[i] = t.Cell(l[pr.Alias], ci)
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// scanFiltered scans a table, applying constant filters, and returns one
// binding per passing row.
func (db *Database) scanFiltered(ctx context.Context, t *Table, alias string, filters []sqlast.Filter, params Params, stats *Counters) ([]binding, error) {
	n := t.NumRows()
	stats.Scans++
	stats.TuplesRead += int64(n)
	stats.BytesRead += t.scanBytes()
	var out []binding
	for pos := 0; pos < n; pos++ {
		if pos&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !t.Alive(pos) {
			continue
		}
		ok, err := db.passes(t.Row(pos), t, filters, params)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, binding{alias: pos})
		}
	}
	return out, nil
}

// passes evaluates constant (and same-alias) filters on one row,
// resolving columns and parameters lazily so a bad filter only errors
// when a row actually reaches it.
func (db *Database) passes(row Row, t *Table, filters []sqlast.Filter, params Params) (bool, error) {
	for _, f := range filters {
		li := t.ColumnIndex(f.Col.Column)
		if li < 0 {
			return false, fmt.Errorf("no column %s", f.Col.Column)
		}
		left := row[li]
		var right Value
		if f.RightCol != nil {
			ri := t.ColumnIndex(f.RightCol.Column)
			if ri < 0 {
				return false, fmt.Errorf("no column %s", f.RightCol.Column)
			}
			right = row[ri]
		} else {
			var err error
			right, err = literalValue(f.Value, params)
			if err != nil {
				return false, err
			}
		}
		if !satisfies(left, f.Op, right) {
			return false, nil
		}
	}
	return true, nil
}

// applyCrossFilters applies the cross filters the planner scheduled for
// this step (both aliases bound, not consumed as a join edge).
func (db *Database) applyCrossFilters(current []binding, tables map[string]*Table, filters []sqlast.Filter) ([]binding, error) {
	for _, f := range filters {
		lt, rt := tables[f.Col.Alias], tables[f.RightCol.Alias]
		li, ri := lt.ColumnIndex(f.Col.Column), rt.ColumnIndex(f.RightCol.Column)
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("bad cross filter %s", f)
		}
		var kept []binding
		for _, b := range current {
			if satisfies(lt.Cell(b[f.Col.Alias], li), f.Op, rt.Cell(b[f.RightCol.Alias], ri)) {
				kept = append(kept, b)
			}
		}
		current = kept
	}
	return current, nil
}

func cloneBinding(b binding) binding {
	m := make(binding, len(b)+1)
	for k, v := range b {
		m[k] = v
	}
	return m
}
