package engine

import (
	"math/rand"
	"strconv"
	"testing"

	"legodb/internal/relational"
	"legodb/internal/sqlast"
)

var allOps = []sqlast.CmpOp{
	sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe,
}

// FuzzSatisfiesCoercion pins the mixed-kind comparison contract to the
// shredder's storage rules: an integer coerces to its decimal string, so
// IntVal(7) equals StrVal("7") but stays distinct from "007" (the
// shredder stores digits verbatim in string columns and parsed in
// integer columns). It also cross-checks opHolds against satisfies and
// NULL's never-matching.
func FuzzSatisfiesCoercion(f *testing.F) {
	f.Add(int64(7), "7", uint8(0))
	f.Add(int64(7), "007", uint8(0))
	f.Add(int64(-3), "-3", uint8(1))
	f.Add(int64(42), "x42", uint8(4))
	f.Add(int64(0), "", uint8(2))
	f.Fuzz(func(t *testing.T, n int64, s string, opRaw uint8) {
		op := allOps[int(opRaw)%len(allOps)]
		iv, sv := IntVal(n), StrVal(s)
		// Mixed-kind comparison must behave exactly like comparing the
		// integer's decimal rendering against the string, both ways.
		want := opHolds(op, Compare(StrVal(strconv.FormatInt(n, 10)), sv))
		if got := satisfies(iv, op, sv); got != want {
			t.Fatalf("satisfies(%d, %v, %q) = %v, want %v", n, op, s, got, want)
		}
		flipped := map[sqlast.CmpOp]sqlast.CmpOp{
			sqlast.OpEq: sqlast.OpEq, sqlast.OpNe: sqlast.OpNe,
			sqlast.OpLt: sqlast.OpGt, sqlast.OpLe: sqlast.OpGe,
			sqlast.OpGt: sqlast.OpLt, sqlast.OpGe: sqlast.OpLe,
		}[op]
		if got := satisfies(sv, flipped, iv); got != want {
			t.Fatalf("satisfies(%q, %v, %d) = %v, want %v", s, flipped, n, got, want)
		}
		// Equality through coercion agrees with string identity of the
		// decimal rendering — "007" never equals 7.
		if satisfies(iv, sqlast.OpEq, sv) != (strconv.FormatInt(n, 10) == s) {
			t.Fatalf("eq coercion diverges for %d vs %q", n, s)
		}
		// NULL matches nothing under any operator.
		if satisfies(Null, op, sv) || satisfies(iv, op, Null) || satisfies(Null, op, Null) {
			t.Fatalf("NULL matched under %v", op)
		}
		// The zero-alloc byte comparator agrees with string comparison.
		buf := strconv.AppendInt(nil, n, 10)
		if sign(cmpBytesStr(buf, s)) != sign(Compare(StrVal(string(buf)), sv)) {
			t.Fatalf("cmpBytesStr(%q, %q) sign mismatch", buf, s)
		}
	})
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// randomValue draws from a pool that mixes kinds, NULLs, and colliding
// renderings ("7" vs 7 vs "007").
func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(6) {
	case 0:
		return Null
	case 1:
		return IntVal(int64(rng.Intn(10)))
	case 2:
		return IntVal(-int64(rng.Intn(10)))
	case 3:
		return StrVal(strconv.Itoa(rng.Intn(10)))
	case 4:
		return StrVal("00" + strconv.Itoa(rng.Intn(10)))
	default:
		return StrVal(string(rune('a' + rng.Intn(3))))
	}
}

// scratchTable builds a single-column heap table holding vals, the
// simplest host for gather-based kernels.
func scratchTable(vals []Value) *Table {
	def := &relational.Table{Name: "S", Columns: []*relational.Column{
		{Name: "c", Type: relational.VarCharCol, Size: 16},
	}}
	t := NewTable(def)
	for _, v := range vals {
		if err := t.Insert(Row{v}); err != nil {
			panic(err)
		}
	}
	return t
}

// TestVectorKernelsMatchSatisfies: the typed filter kernels
// (compactLiteral, compactPair / pairSatisfies) must agree with the
// scalar satisfies on every element, across homogeneous, null-bearing
// and mixed-kind columns — including the promote-to-boxed fallback.
func TestVectorKernelsMatchSatisfies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		left := make([]Value, n)
		rightv := make([]Value, n)
		for i := range left {
			left[i] = randomValue(rng)
			rightv[i] = randomValue(rng)
		}
		lt, rt := scratchTable(left), scratchTable(rightv)
		sel := make([]int32, n)
		var lv, rv Vector
		for _, op := range allOps {
			lit := randomValue(rng)
			// compactLiteral vs satisfies.
			for i := range sel {
				sel[i] = int32(i)
			}
			lv.gather(lt, 0, sel[:n])
			got := compactLiteral(&lv, op, lit, sel[:n])
			var want []int32
			for i := 0; i < n; i++ {
				if satisfies(left[i], op, lit) {
					want = append(want, int32(i))
				}
			}
			if !equalI32(got, want) {
				t.Fatalf("compactLiteral(%v, %v) = %v, want %v (col %v)", op, lit, got, want, left)
			}
			// compactPair vs satisfies.
			for i := range sel {
				sel[i] = int32(i)
			}
			lv.gather(lt, 0, sel[:n])
			rv.gather(rt, 0, sel[:n])
			got = compactPair(&lv, &rv, op, sel[:n])
			want = want[:0]
			for i := 0; i < n; i++ {
				if satisfies(left[i], op, rightv[i]) {
					want = append(want, int32(i))
				}
			}
			if !equalI32(got, want) {
				t.Fatalf("compactPair(%v) = %v, want %v (%v vs %v)", op, got, want, left, rightv)
			}
		}
		// Gathered vectors must rebox to the exact original values.
		for i := range sel {
			sel[i] = int32(i)
		}
		lv.gather(lt, 0, sel[:n])
		for i := 0; i < n; i++ {
			if lv.value(i) != left[i] {
				t.Fatalf("value(%d) = %v, want %v", i, lv.value(i), left[i])
			}
		}
	}
}

// TestHashTableMatchesValueMap: the typed hash-join build must return
// exactly the positions the reference map[Value][]int build returns, for
// every probe — including NULL probes matching NULL build keys and
// cross-kind probes matching nothing.
func TestHashTableMatchesValueMap(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(30)
		vals := make([]Value, n)
		for i := range vals {
			vals[i] = randomValue(rng)
		}
		tb := scratchTable(vals)
		positions := make([]int32, n)
		ref := make(map[Value][]int32, n)
		for i := range positions {
			positions[i] = int32(i)
			ref[vals[i]] = append(ref[vals[i]], int32(i))
		}
		ht := buildHash(tb, 0, positions)
		probes := append([]Value{Null, IntVal(7), StrVal("7"), StrVal("007")}, vals...)
		for i := 0; i < 10; i++ {
			probes = append(probes, randomValue(rng))
		}
		for _, p := range probes {
			if got, want := ht.lookup(p), ref[p]; !equalI32(got, want) {
				t.Fatalf("lookup(%v) = %v, want %v (build %v)", p, got, want, vals)
			}
		}
	}
}

func equalI32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
