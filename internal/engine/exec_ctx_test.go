package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"legodb/internal/sqlast"
)

// bigShowDB loads n shows so a self-cartesian produces n² pairs — large
// enough that a cancelled execution must stop mid-plan rather than run
// to completion.
func bigShowDB(t *testing.T, n int64) *Database {
	t.Helper()
	db := NewDatabase(testCatalog(t))
	imdbT := db.Table("IMDB")
	row := make(Row, len(imdbT.Def.Columns))
	row[imdbT.ColumnIndex("IMDB_id")] = IntVal(imdbT.NextID())
	if err := imdbT.Insert(row); err != nil {
		t.Fatal(err)
	}
	show := db.Table("Show")
	for i := int64(0); i < n; i++ {
		row := make(Row, len(show.Def.Columns))
		row[show.ColumnIndex("Show_id")] = IntVal(show.NextID())
		row[show.ColumnIndex("title")] = StrVal("t")
		row[show.ColumnIndex("year")] = IntVal(1900 + i%100)
		row[show.ColumnIndex("parent_IMDB")] = IntVal(1)
		if err := show.Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func cartesianBlock() *sqlast.Block {
	b := &sqlast.Block{}
	b.AddTable("Show", "a")
	b.AddTable("Show", "b")
	b.Projects = []sqlast.ColumnRef{
		{Alias: "a", Column: "title"},
		{Alias: "b", Column: "year"},
	}
	return b
}

func TestExecuteContextAlreadyCancelled(t *testing.T) {
	db := bigShowDB(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, rows := range []bool{false, true} {
		db.Exec = Options{RowAtATime: rows}
		_, err := db.ExecuteBlockContext(ctx, cartesianBlock(), nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("RowAtATime=%v: err = %v, want context.Canceled", rows, err)
		}
	}
}

// TestExecuteContextDeadlineStopsMidPlan gives a huge cartesian a tiny
// deadline: both executors must notice at a loop boundary and abort with
// the context error long before producing the n² result.
func TestExecuteContextDeadlineStopsMidPlan(t *testing.T) {
	db := bigShowDB(t, 3000) // 9M pairs: far more work than 5ms allows
	for _, rows := range []bool{false, true} {
		db.Exec = Options{RowAtATime: rows}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		start := time.Now()
		_, err := db.ExecuteBlockContext(ctx, cartesianBlock(), nil)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("RowAtATime=%v: err = %v, want DeadlineExceeded", rows, err)
		}
		// Generous bound: the point is that the executor polled the
		// context at chunk granularity instead of finishing the plan.
		if elapsed > 2*time.Second {
			t.Fatalf("RowAtATime=%v: aborted after %v, cancellation not honored mid-plan", rows, elapsed)
		}
	}
}
